// Audioeq walks through the paper's §3 application example end to end:
// the FIR-equalizer request of fig. 3 scored against the three-variant
// case base on all four implementations of the retrieval algorithm —
// float64 reference, 16-bit fixed point, the cycle-accurate hardware
// unit, and the MicroBlaze-class software baseline — reproducing the
// Table 1 numbers and the §4.2 speed comparison on the way.
package main

import (
	"fmt"
	"log"

	"qosalloc"
)

func main() {
	cb, err := qosalloc.PaperCaseBase()
	if err != nil {
		log.Fatal(err)
	}
	req := qosalloc.PaperRequest()
	fmt.Println("request: FIR equalizer, {bitwidth=16, output=stereo, 40 kS/s}, w=1/3 each")

	// Table 1: the float64 reference with the per-attribute breakdown.
	eng := qosalloc.NewEngine(cb, qosalloc.EngineOptions{KeepLocals: true})
	all, err := eng.RetrieveAll(req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTable 1 reproduction (float64 reference):")
	for _, r := range all {
		fmt.Printf("  impl %d %-12s S = %.2f\n", r.Impl, "("+r.Target.String()+")", r.Similarity)
		for _, l := range r.Locals {
			fmt.Printf("      attr %d: s_i = %.2f\n", l.ID, l.Sim)
		}
	}

	// The three fixed-point implementations must agree bit-exactly.
	fx, err := qosalloc.NewFixedEngine(cb).Retrieve(req)
	if err != nil {
		log.Fatal(err)
	}
	hw, err := qosalloc.HWRetrieve(cb, req, qosalloc.HWConfig{})
	if err != nil {
		log.Fatal(err)
	}
	sw, err := qosalloc.NewSWRunner().Retrieve(cb, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfixed engine: impl %d, Q15 %d\n", fx.Impl, fx.Similarity)
	fmt.Printf("hardware:     impl %d, Q15 %d, %d cycles\n", hw.ImplID, hw.Sim, hw.Cycles)
	fmt.Printf("software:     impl %d, Q15 %d, %d cycles\n", sw.ImplID, sw.Sim, sw.Cycles)
	fmt.Printf("speedup at equal clock: %.2fx (paper: ~8.5x vs compiled C)\n",
		float64(sw.Cycles)/float64(hw.Cycles))

	// §3 negotiation: a 0.5 threshold rejects the GP-Proc variant;
	// relaxing the bitwidth constraint readmits it.
	strict := qosalloc.NewEngine(cb, qosalloc.EngineOptions{Threshold: 0.5})
	n, err := strict.RetrieveN(req, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthreshold 0.5 admits %d of 3 variants\n", len(n))
	relaxed, _ := req.Relax(1) // drop the bitwidth constraint
	n2, err := strict.RetrieveN(relaxed, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after relaxing bitwidth: %d of 3 variants qualify\n", len(n2))

	// §5 block-compact fetch: same result, roughly half the cycles.
	cmp, err := qosalloc.HWRetrieve(cb, req, qosalloc.HWConfig{Compact: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompact fetch: %d -> %d cycles (%.2fx), same result: %v\n",
		hw.Cycles, cmp.Cycles, float64(hw.Cycles)/float64(cmp.Cycles),
		cmp.ImplID == hw.ImplID && cmp.Sim == hw.Sim)
}
