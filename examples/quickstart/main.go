// Quickstart: declare an attribute vocabulary, build a small case base,
// and retrieve the implementation variant that best matches a QoS
// request — the minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"qosalloc"
)

func main() {
	// 1. Design time: declare the attribute types with their global
	// bounds. The bounds fix each attribute's dmax in eq. (1).
	reg := qosalloc.NewRegistry()
	reg.MustDefine(qosalloc.AttrDef{ID: 1, Name: "bitwidth", Unit: "bits",
		Kind: qosalloc.Numeric, Lo: 8, Hi: 32})
	reg.MustDefine(qosalloc.AttrDef{ID: 2, Name: "throughput", Unit: "Mbit/s",
		Kind: qosalloc.Numeric, Lo: 1, Hi: 100})
	reg.MustDefine(qosalloc.AttrDef{ID: 3, Name: "mode",
		Kind: qosalloc.Ordinal, Lo: 0, Hi: 2, Symbols: []string{"eco", "normal", "turbo"}})

	// 2. Design time: the implementation tree — one function type, three
	// variants on different execution targets.
	b := qosalloc.NewCaseBaseBuilder(reg)
	b.AddType(1, "AES cipher")
	b.AddImpl(1, qosalloc.Implementation{
		ID: 1, Name: "aes-fpga", Target: qosalloc.TargetFPGA,
		Attrs: []qosalloc.AttrPair{{ID: 1, Value: 32}, {ID: 2, Value: 100}, {ID: 3, Value: 2}},
		Foot:  qosalloc.Footprint{Slices: 700, ConfigBytes: 48 * 1024, PowerMW: 280},
	})
	b.AddImpl(1, qosalloc.Implementation{
		ID: 2, Name: "aes-dsp", Target: qosalloc.TargetDSP,
		Attrs: []qosalloc.AttrPair{{ID: 1, Value: 32}, {ID: 2, Value: 40}, {ID: 3, Value: 1}},
		Foot:  qosalloc.Footprint{CPULoad: 400, MemBytes: 16 << 10, PowerMW: 190},
	})
	b.AddImpl(1, qosalloc.Implementation{
		ID: 3, Name: "aes-gpp", Target: qosalloc.TargetGPP,
		Attrs: []qosalloc.AttrPair{{ID: 1, Value: 16}, {ID: 2, Value: 8}, {ID: 3, Value: 0}},
		Foot:  qosalloc.Footprint{CPULoad: 650, MemBytes: 8 << 10, PowerMW: 120},
	})
	cb, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run time: an application asks for the function under QoS
	// constraints; the weights stress throughput most.
	req := qosalloc.NewRequest(1,
		qosalloc.Constraint{ID: 1, Value: 32, Weight: 0.2},
		qosalloc.Constraint{ID: 2, Value: 60, Weight: 0.6},
		qosalloc.Constraint{ID: 3, Value: 1, Weight: 0.2},
	).NormalizeWeights()

	eng := qosalloc.NewEngine(cb, qosalloc.EngineOptions{KeepLocals: true})
	ranked, err := eng.RetrieveN(req, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ranked variants for {32 bit, 60 Mbit/s, normal mode}:")
	for i, r := range ranked {
		fmt.Printf("  #%d %-9s (%s)  S = %.3f\n", i+1, r.Name, r.Target, r.Similarity)
	}

	// 4. The same request through the bit-exact 16-bit engine — the
	// arithmetic the paper's FPGA unit implements.
	fe := qosalloc.NewFixedEngine(cb)
	fx, err := fe.Retrieve(req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfixed-point engine agrees: impl %d, S = %.3f (Q15 = %d)\n",
		fx.Impl, fx.Float(), fx.Similarity)
}
