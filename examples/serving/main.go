// Serving: the v2 service layer (DESIGN.md §9). Many client goroutines
// share one qosalloc.Service — the case base sharded across retrieval
// engines, concurrent requests coalesced into deduplicated
// micro-batches, bounded admission queues — then a deterministic
// batched-allocation pass places a stream against the platform.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"

	"qosalloc"
)

func main() {
	// A Table-3-scale synthetic case base and a repeat-heavy request
	// stream: repeated signatures are what the service's singleflight
	// dedup and bypass-token caches exploit.
	cb, reg, err := qosalloc.GenCaseBase(qosalloc.PaperScaleSpec())
	if err != nil {
		log.Fatal(err)
	}
	reqs, err := qosalloc.GenRequests(cb, reg, qosalloc.RequestStreamSpec{
		N: 160, ConstraintsPer: 4, RepeatFraction: 0.5, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The fig. 1 style platform: a 3-slot FPGA, a DSP, a GPP.
	repo := qosalloc.NewRepository(20)
	if err := repo.PopulateFromCaseBase(cb); err != nil {
		log.Fatal(err)
	}
	rt := qosalloc.NewRuntime(repo,
		qosalloc.NewFPGADevice("fpga0", []qosalloc.FPGASlot{
			{Slices: 1500, BRAMs: 8, Multipliers: 16},
			{Slices: 1500, BRAMs: 8, Multipliers: 16},
			{Slices: 1500, BRAMs: 8, Multipliers: 16},
		}, 66),
		qosalloc.NewProcessorDevice("dsp0", qosalloc.TargetDSP, 2000, 1<<20),
		qosalloc.NewProcessorDevice("gpp0", qosalloc.TargetGPP, 2000, 1<<21),
	)

	// The service: 4 shards, instrumented on a metric registry.
	obs := qosalloc.NewObsRegistry()
	svc := qosalloc.NewService(cb, rt,
		qosalloc.WithShards(4),
		qosalloc.WithPreemption(true),
		qosalloc.WithRegistry(obs),
	)
	defer svc.Close()

	// Phase 1: 16 concurrent clients retrieve through the shard queues.
	// Overload comes back as a typed error with a retry-after hint; a
	// real client would back off — here the queues are deep enough.
	ctx := context.Background()
	var wg sync.WaitGroup
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < len(reqs); i += 16 {
				if _, err := svc.Retrieve(ctx, reqs[i]); err != nil {
					var ov *qosalloc.ErrOverload
					if errors.As(err, &ov) {
						fmt.Printf("client %d shed from shard %d, retry after %d µs\n",
							c, ov.Shard, ov.RetryAfter)
						continue
					}
					log.Fatal(err)
				}
			}
		}(c)
	}
	wg.Wait()
	st := svc.Stats()
	fmt.Printf("16 clients retrieved %d requests: %d engine walks, %d dedup hits, %d token hits\n",
		len(reqs), st.EngineRetrievals, st.DedupHits, st.TokenHits)

	// Phase 2: the same stream as pre-formed allocation batches —
	// deterministic: batch composition follows input order, placement
	// happens in input order under one lock.
	placed, infeasible := 0, 0
	for lo := 0; lo < len(reqs); lo += 20 {
		hi := min(lo+20, len(reqs))
		out, err := svc.AllocateBatch(ctx, fmt.Sprintf("app%d", lo/20), reqs[lo:hi], 5)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range out {
			if r.Err != nil {
				infeasible++
				continue
			}
			placed++
			if err := svc.Release(r.Decision.Task.ID); err != nil {
				log.Fatal(err)
			}
		}
		if err := svc.Advance(rt.Now() + 1000); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("batched allocation: %d placed, %d without a feasible variant\n", placed, infeasible)

	// The registry collected the service counters alongside the manager
	// and retrieval metrics.
	for _, name := range []string{
		"qos_serve_batches_total", "qos_serve_dedup_hits_total", "qos_serve_token_hits_total",
	} {
		if v, ok := obs.CounterValue(name); ok {
			fmt.Printf("%-28s %d\n", name, v)
		}
	}

	// Cancellation is first-class: a dead context never queues work.
	dead, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := svc.Retrieve(dead, reqs[0]); errors.Is(err, qosalloc.ErrCanceled) {
		fmt.Println("canceled context rejected up front:", err)
	}
}
