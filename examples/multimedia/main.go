// Multimedia drives a contended infotainment platform: an MP3 player and
// a video player compete for a DSP and one FPGA. The scenario shows the
// allocation manager falling back to second-best variants when the best
// match has no capacity, offering alternatives when nothing fits, and
// skipping retrieval on repeated calls via bypass tokens.
package main

import (
	"errors"
	"fmt"
	"log"

	"qosalloc"
)

func main() {
	cb, _, err := qosalloc.InfotainmentCaseBase()
	if err != nil {
		log.Fatal(err)
	}
	repo := qosalloc.NewRepository(20)
	if err := repo.PopulateFromCaseBase(cb); err != nil {
		log.Fatal(err)
	}
	// A deliberately tight platform: one FPGA slot, one half-loaded DSP.
	rt := qosalloc.NewRuntime(repo,
		qosalloc.NewFPGADevice("fpga0", []qosalloc.FPGASlot{
			{Slices: 1500, BRAMs: 8, Multipliers: 16},
		}, 66),
		qosalloc.NewProcessorDevice("dsp0", qosalloc.TargetDSP, 800, 128<<10),
		qosalloc.NewProcessorDevice("gpp0", qosalloc.TargetGPP, 1000, 256<<10),
	)
	m := qosalloc.NewManager(cb, rt, qosalloc.ManagerOptions{
		Threshold: 0.3, NBest: 3, UseBypassTokens: true,
	})

	eqReq := qosalloc.NewRequest(1, // audio equalizer
		qosalloc.Constraint{ID: 1, Value: 16},
		qosalloc.Constraint{ID: 3, Value: 1},
		qosalloc.Constraint{ID: 4, Value: 44},
	).EqualWeights()
	videoReq := qosalloc.NewRequest(3, // video decoder
		qosalloc.Constraint{ID: 1, Value: 16},
		qosalloc.Constraint{ID: 5, Value: 30},
		qosalloc.Constraint{ID: 6, Value: 10},
	).EqualWeights()

	// 1. The MP3 player grabs the equalizer: the DSP variant wins.
	d1, err := m.Request("mp3-player", eqReq, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("eq #1   -> impl %d on %s (S=%.2f)\n", d1.Impl, d1.Device, d1.Similarity)

	// 2. The video player needs its decoder: DSP is now too loaded for
	// the DSP variant, so the FPGA variant places.
	d2, err := m.Request("video-player", videoReq, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("video   -> impl %d on %s (S=%.2f)\n", d2.Impl, d2.Device, d2.Similarity)

	// 3. A second equalizer: DSP full, FPGA slot taken — the manager
	// falls back down the n-best list to the GPP variant.
	d3, err := m.Request("mp3-player-2", eqReq, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("eq #2   -> impl %d on %s (S=%.2f)  [fallback]\n", d3.Impl, d3.Device, d3.Similarity)

	// 4. A second video decode cannot fit anywhere: the manager offers
	// the scored alternatives so the application can decide.
	_, err = m.Request("video-player-2", videoReq, 4)
	var nf *qosalloc.ErrNoFeasible
	if errors.As(err, &nf) {
		fmt.Printf("video#2 -> infeasible; %d alternatives offered:\n", len(nf.Alternatives))
		for _, a := range nf.Alternatives {
			fmt.Printf("            impl %d (%s) S=%.2f\n", a.Impl, a.Target, a.Similarity)
		}
	} else if err != nil {
		log.Fatal(err)
	}

	// 5. The first player releases and re-requests the identical
	// equalizer. The cached token still pins eq #2's fallback variant,
	// whose GPP is busy — so this call transparently falls back to a
	// full retrieval and refreshes the token with the DSP variant.
	if err := m.Release(d1.Task.ID); err != nil {
		log.Fatal(err)
	}
	d5, err := m.Request("mp3-player", eqReq, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("eq #3   -> impl %d on %s via bypass token: %v (stale token refreshed)\n",
		d5.Impl, d5.Device, d5.ViaToken)

	// 6. The next identical call hits the refreshed token: the variant
	// is pinned and no retrieval runs — "only an availability check on
	// the function and its allocated resources" (§3).
	if err := m.Release(d5.Task.ID); err != nil {
		log.Fatal(err)
	}
	d6, err := m.Request("mp3-player", eqReq, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("eq #4   -> impl %d on %s via bypass token: %v\n", d6.Impl, d6.Device, d6.ViaToken)

	st := m.Stats()
	fmt.Printf("\nmanager stats: %d requests, %d retrievals, %d token hits, %d infeasible\n",
		st.Requests, st.Retrievals, st.TokenHits, st.Infeasible)
}
