// Automotive demonstrates priority-driven preemption and recovery: a
// safety-critical engine-control task arrives on a platform whose only
// suitable FPGA slot is occupied by an infotainment task. The allocation
// manager preempts the lower-priority task; once capacity frees up, the
// victim returns through the adaptive-priority wait pool (the FPL'04
// scheme the run-time layer implements).
package main

import (
	"fmt"
	"log"

	"qosalloc"
)

func main() {
	cb, _, err := qosalloc.InfotainmentCaseBase()
	if err != nil {
		log.Fatal(err)
	}
	repo := qosalloc.NewRepository(20)
	if err := repo.PopulateFromCaseBase(cb); err != nil {
		log.Fatal(err)
	}
	// One FPGA slot only, and a GPP too small to host the ECU's
	// software fallback: hardware tasks must fight over the slot.
	rt := qosalloc.NewRuntime(repo,
		qosalloc.NewFPGADevice("fpga0", []qosalloc.FPGASlot{
			{Slices: 1500, BRAMs: 8, Multipliers: 16},
		}, 66),
		qosalloc.NewProcessorDevice("gpp0", qosalloc.TargetGPP, 200, 256<<10),
	)
	m := qosalloc.NewManager(cb, rt, qosalloc.ManagerOptions{
		NBest: 2, AllowPreemption: true,
	})

	videoReq := qosalloc.NewRequest(3, // video decoder — wants the FPGA
		qosalloc.Constraint{ID: 1, Value: 16},
		qosalloc.Constraint{ID: 5, Value: 60},
		qosalloc.Constraint{ID: 6, Value: 3},
	).EqualWeights()
	ecuReq := qosalloc.NewRequest(5, // engine control — hard latency
		qosalloc.Constraint{ID: 1, Value: 16},
		qosalloc.Constraint{ID: 6, Value: 1},
	).EqualWeights()

	// 1. Infotainment fills the FPGA slot at priority 4.
	video, err := m.Request("video-player", videoReq, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=0      video  -> impl %d on %s (prio 4)\n", video.Impl, video.Device)
	if err := rt.AdvanceTo(video.ReadyAt); err != nil {
		log.Fatal(err)
	}

	// 2. The ECU arrives at priority 9; its latency-1 constraint only
	// the FPGA variant satisfies well, so the video task is evicted.
	ecu, err := m.Request("automotive-ecu", ecuReq, 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=%-7d ecu    -> impl %d on %s (prio 9), preempted %d task(s)\n",
		rt.Now(), ecu.Impl, ecu.Device, len(ecu.Preempted))
	vt, _ := rt.Task(video.Task.ID)
	fmt.Printf("         video task is now %v (preemptions: %d)\n", vt.State, vt.Preemptions)

	// 3. While waiting, the victim's effective priority climbs: the
	// adaptive-priority rule guards it against starvation.
	before := rt.EffectivePriority(vt)
	if err := rt.Advance(50_000); err != nil {
		log.Fatal(err)
	}
	after := rt.EffectivePriority(vt)
	fmt.Printf("         victim priority aged %d -> %d over 50 ms of waiting\n", before, after)

	// 4. The ECU's control burst ends; the recovery sweep re-places the
	// victim on the freed slot.
	if err := m.Release(ecu.Task.ID); err != nil {
		log.Fatal(err)
	}
	if n := m.ReplacePending(); n != 1 {
		log.Fatalf("expected the video task back, re-placed %d", n)
	}
	fmt.Printf("t=%-7d ecu released; video task re-placed, now %v on %s\n",
		rt.Now(), vt.State, vt.Dev)

	met := rt.Metrics()
	fmt.Printf("\nrun-time metrics: %d created, %d completed, %d preemptions, %d us total wait\n",
		met.Created, met.Completed, met.Preemptions, met.TotalWait)
}
