// Selflearning demonstrates the paper's §5 outlook — "dynamic update
// mechanisms of Case-Base-data structures and function repositories at
// run-time enabling for a self-learning system" — end to end through the
// public API: an implementation's real QoS degrades below its
// advertisement, run-time observations revise the case base, a new
// variant is retained from a repository update, and the allocation
// manager hot-swaps the rebuilt tree (invalidating its bypass tokens).
package main

import (
	"fmt"
	"log"

	"qosalloc"
)

func main() {
	cb, err := qosalloc.PaperCaseBase()
	if err != nil {
		log.Fatal(err)
	}
	repo := qosalloc.NewRepository(20)
	if err := repo.PopulateFromCaseBase(cb); err != nil {
		log.Fatal(err)
	}
	rt := qosalloc.NewRuntime(repo,
		qosalloc.NewFPGADevice("fpga0", []qosalloc.FPGASlot{
			{Slices: 1500, BRAMs: 8, Multipliers: 16},
		}, 66),
		qosalloc.NewProcessorDevice("dsp0", qosalloc.TargetDSP, 1000, 192<<10),
		qosalloc.NewProcessorDevice("gpp0", qosalloc.TargetGPP, 1000, 256<<10),
	)
	m := qosalloc.NewManager(cb, rt, qosalloc.ManagerOptions{UseBypassTokens: true})
	req := qosalloc.PaperRequest()

	// 1. Normal operation: the DSP equalizer wins (Table 1).
	d, err := m.Request("mp3", req, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before learning: impl %d on %s (S=%.2f)\n", d.Impl, d.Device, d.Similarity)
	if err := m.Release(d.Task.ID); err != nil {
		log.Fatal(err)
	}

	// 2. Monitors keep observing that the DSP variant only sustains
	// 20 kS/s instead of the advertised 44 — the revise step.
	learner, err := qosalloc.NewLearner(cb, 0.6)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := learner.Observe(qosalloc.Observation{
			Type: 1, Impl: 2,
			Measured: []qosalloc.AttrPair{{ID: 4, Value: 20}}, // sample-rate
		}); err != nil {
			log.Fatal(err)
		}
	}

	// 3. Meanwhile a new, better DSP build lands in the repository —
	// the retain step.
	newID, err := learner.Retain(1, qosalloc.Implementation{
		Name: "fir-eq-dsp-v2", Target: qosalloc.TargetDSP,
		Attrs: []qosalloc.AttrPair{
			{ID: 1, Value: 16}, // bitwidth
			{ID: 3, Value: 1},  // stereo
			{ID: 4, Value: 40}, // exactly the requested rate
		},
		Foot: qosalloc.Footprint{CPULoad: 420, MemBytes: 24 << 10, PowerMW: 210, ConfigBytes: 20 << 10},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retained new variant: impl %d\n", newID)

	// 4. Rebuild and hot-swap: the manager's engine and tokens follow.
	cb2, changed, err := learner.Rebuild()
	if err != nil {
		log.Fatal(err)
	}
	if err := repo.Store(1, newID, qosalloc.Blob{
		Target: qosalloc.TargetDSP, Bytes: 20 << 10,
	}); err != nil {
		log.Fatal(err)
	}
	m.UpdateCaseBase(cb2)
	fmt.Printf("case base rebuilt: %d entries changed, tokens invalidated\n", changed)

	// 5. The same request now retrieves the revised tree: the degraded
	// DSP variant lost its lead and the freshly retained v2 wins.
	d2, err := m.Request("mp3", req, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after learning:  impl %d on %s (S=%.2f, via token: %v)\n",
		d2.Impl, d2.Device, d2.Similarity, d2.ViaToken)
	if d2.Impl != newID {
		log.Fatalf("expected the retained variant %d to win", newID)
	}
}
