// Negotiation demonstrates the Application-API level of fig. 1: an
// application opens a session, declares which constraints it is willing
// to give up, and issues QoS function calls; the session automates the
// §3 negotiation protocol — threshold rejection, constraint relaxation,
// counter-offers — and returns the full trail of what happened.
package main

import (
	"errors"
	"fmt"
	"log"

	"qosalloc"
)

func main() {
	cb, err := qosalloc.PaperCaseBase()
	if err != nil {
		log.Fatal(err)
	}
	repo := qosalloc.NewRepository(20)
	if err := repo.PopulateFromCaseBase(cb); err != nil {
		log.Fatal(err)
	}
	rt := qosalloc.NewRuntime(repo,
		qosalloc.NewFPGADevice("fpga0", []qosalloc.FPGASlot{
			{Slices: 1500, BRAMs: 8, Multipliers: 16},
		}, 66),
		qosalloc.NewProcessorDevice("dsp0", qosalloc.TargetDSP, 1000, 192<<10),
		qosalloc.NewProcessorDevice("gpp0", qosalloc.TargetGPP, 1000, 256<<10),
	)
	// A demanding manager: only near-perfect matches are accepted.
	m := qosalloc.NewManager(cb, rt, qosalloc.ManagerOptions{Threshold: 0.97})
	mon := qosalloc.NewPlatformMonitor(rt, 16)

	// The application would rather lose sample-rate than stereo.
	sess := qosalloc.OpenSession(m, "mp3-player", 5, qosalloc.AppSessionOptions{
		RelaxOrder: []qosalloc.AttrID{4 /* sample-rate */, 3 /* output-mode */},
	})

	// The paper request's best match scores 0.96 — below the 0.97
	// threshold — so the session negotiates.
	call, err := sess.Call(qosalloc.PaperRequest())
	if err != nil {
		var nf *qosalloc.ErrNegotiationFailed
		if errors.As(err, &nf) {
			log.Fatalf("negotiation failed after %d rounds", len(nf.Trail))
		}
		log.Fatal(err)
	}
	fmt.Printf("allocated impl %d on %s at S=%.2f after %d relaxation(s)\n",
		call.Impl, call.Device, call.Similarity, call.Relaxations)
	for i, step := range call.Trail {
		dropped := "-"
		if step.Relaxed != 0 {
			dropped = fmt.Sprintf("dropped attr %d", step.Relaxed)
		}
		fmt.Printf("  round %d: %d constraints -> %s (%s)\n",
			i, len(step.Request.Constraints), step.Outcome, dropped)
	}

	// The HW-Layer API reports what the negotiation committed.
	fmt.Printf("\nplatform status after allocation:\n%s", mon.Sample())

	if err := sess.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session closed; power back to %d mW\n",
		qosalloc.PlatformSnapshot(rt).TotalPowerMW)
}
