package qosalloc_test

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"qosalloc"
)

// Example reproduces the paper's headline retrieval through the public
// API alone.
func Example() {
	cb, err := qosalloc.PaperCaseBase()
	if err != nil {
		panic(err)
	}
	eng := qosalloc.NewEngine(cb, qosalloc.EngineOptions{})
	best, err := eng.Retrieve(qosalloc.PaperRequest())
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s on %s, S = %.2f\n", best.Name, best.Target, best.Similarity)
	// Output: fir-eq-dsp on DSP, S = 0.96
}

// ExampleNewCaseBaseBuilder shows declaring a custom function library.
func ExampleNewCaseBaseBuilder() {
	reg := qosalloc.NewRegistry()
	reg.MustDefine(qosalloc.AttrDef{ID: 1, Name: "bitwidth", Unit: "bits",
		Kind: qosalloc.Numeric, Lo: 8, Hi: 32})

	b := qosalloc.NewCaseBaseBuilder(reg)
	b.AddType(1, "filter")
	b.AddImpl(1, qosalloc.Implementation{
		ID: 1, Name: "filter-hw", Target: qosalloc.TargetFPGA,
		Attrs: []qosalloc.AttrPair{{ID: 1, Value: 16}},
	})
	cb, err := b.Build()
	if err != nil {
		panic(err)
	}
	fmt.Println(cb.NumTypes(), cb.NumImpls())
	// Output: 1 1
}

// ExampleHWRetrieve runs the cycle-accurate hardware unit.
func ExampleHWRetrieve() {
	cb, _ := qosalloc.PaperCaseBase()
	res, err := qosalloc.HWRetrieve(cb, qosalloc.PaperRequest(), qosalloc.HWConfig{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("impl %d, S = %.2f\n", res.ImplID, res.Sim.Float())
	// Output: impl 2, S = 0.96
}

func TestFacadeFourEnginesAgree(t *testing.T) {
	cb, err := qosalloc.PaperCaseBase()
	if err != nil {
		t.Fatal(err)
	}
	req := qosalloc.PaperRequest()

	eng := qosalloc.NewEngine(cb, qosalloc.EngineOptions{})
	ref, err := eng.Retrieve(req)
	if err != nil {
		t.Fatal(err)
	}
	fe := qosalloc.NewFixedEngine(cb)
	fx, err := fe.Retrieve(req)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := qosalloc.HWRetrieve(cb, req, qosalloc.HWConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := qosalloc.NewSWRunner().Retrieve(cb, req)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Impl != 2 || fx.Impl != 2 || hw.ImplID != 2 || sw.ImplID != 2 {
		t.Errorf("engines disagree on best: float=%d fixed=%d hw=%d sw=%d",
			ref.Impl, fx.Impl, hw.ImplID, sw.ImplID)
	}
	if fx.Similarity != qosalloc.Q15(hw.Sim) || hw.Sim != sw.Sim {
		t.Errorf("fixed-point similarities differ: fixed=%d hw=%d sw=%d",
			fx.Similarity, hw.Sim, sw.Sim)
	}
	if math.Abs(ref.Similarity-fx.Similarity.Float()) > 0.001 {
		t.Errorf("float %.4f vs fixed %.4f", ref.Similarity, fx.Similarity.Float())
	}
}

func TestFacadeMemoryImages(t *testing.T) {
	cb, _ := qosalloc.PaperCaseBase()
	tree, err := qosalloc.EncodeTree(cb)
	if err != nil {
		t.Fatal(err)
	}
	req, err := qosalloc.EncodeRequest(qosalloc.PaperRequest())
	if err != nil {
		t.Fatal(err)
	}
	supp := qosalloc.EncodeSupplemental(cb.Registry())
	u := qosalloc.NewHWUnit(tree, supp, req, qosalloc.HWConfig{})
	res, err := u.Run(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.ImplID != 2 {
		t.Errorf("unit over explicit images: best = %d", res.ImplID)
	}
	rep := qosalloc.MemoryFootprint(15, 10, 10, 10, 10)
	if rep.RequestBytes != 64 {
		t.Errorf("request bytes = %d", rep.RequestBytes)
	}
}

func TestFacadeSynthesis(t *testing.T) {
	r := qosalloc.EstimateSynthesis(qosalloc.XC2V3000)
	if r.BRAMs != 2 || r.Mults != 2 {
		t.Errorf("synthesis = %+v", r)
	}
	if !strings.Contains(r.String(), "XC2V3000") {
		t.Error("report rendering broken")
	}
}

func TestFacadeSystemStack(t *testing.T) {
	cb, _, err := qosalloc.InfotainmentCaseBase()
	if err != nil {
		t.Fatal(err)
	}
	repo := qosalloc.NewRepository(20)
	if err := repo.PopulateFromCaseBase(cb); err != nil {
		t.Fatal(err)
	}
	fpga := qosalloc.NewFPGADevice("fpga0", []qosalloc.FPGASlot{
		{Slices: 1500, BRAMs: 8, Multipliers: 16},
	}, 66)
	dsp := qosalloc.NewProcessorDevice("dsp0", qosalloc.TargetDSP, 1000, 192*1024)
	gpp := qosalloc.NewProcessorDevice("gpp0", qosalloc.TargetGPP, 1000, 512*1024)
	rt := qosalloc.NewRuntime(repo, fpga, dsp, gpp)
	m := qosalloc.NewManager(cb, rt, qosalloc.ManagerOptions{UseBypassTokens: true})

	apps := qosalloc.FigureOneApps()
	if len(apps) != 4 {
		t.Fatalf("apps = %d", len(apps))
	}
	d, err := m.Request(apps[0].Name, apps[0].Steps[0].Req, apps[0].Prio)
	if err != nil {
		t.Fatal(err)
	}
	if d.Device == "" || d.Similarity <= 0 {
		t.Errorf("decision = %+v", d)
	}
	if err := m.Release(d.Task.ID); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeWorkloads(t *testing.T) {
	cb, reg, err := qosalloc.GenCaseBase(qosalloc.PaperScaleSpec())
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := qosalloc.GenRequests(cb, reg, qosalloc.RequestStreamSpec{N: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 5 {
		t.Fatalf("requests = %d", len(reqs))
	}
}

func TestFacadeMeasureLookups(t *testing.T) {
	if _, err := qosalloc.LocalMeasureByName("at-least"); err != nil {
		t.Error(err)
	}
	if _, err := qosalloc.AmalgamationByName("minimum"); err != nil {
		t.Error(err)
	}
}

func TestFacadeExperiments(t *testing.T) {
	all := qosalloc.Experiments()
	if len(all) != 21 {
		t.Fatalf("experiments = %d, want 21", len(all))
	}
	e, ok := qosalloc.ExperimentByID("table1")
	if !ok {
		t.Fatal("table1 missing")
	}
	var buf bytes.Buffer
	if err := e.Run(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "best") {
		t.Error("table1 output lacks the best marker")
	}
}

func TestFacadeSWCostModels(t *testing.T) {
	cb, _ := qosalloc.PaperCaseBase()
	req := qosalloc.PaperRequest()
	base, err := qosalloc.NewSWRunner().Retrieve(cb, req)
	if err != nil {
		t.Fatal(err)
	}
	barrel, err := qosalloc.NewSWRunnerWithCosts(qosalloc.MicroBlazeCosts()).Retrieve(cb, req)
	if err != nil {
		t.Fatal(err)
	}
	if barrel.Cycles >= base.Cycles {
		t.Errorf("barrel shifter core (%d cyc) must beat the base core (%d cyc)",
			barrel.Cycles, base.Cycles)
	}
	if base.ImplID != barrel.ImplID {
		t.Error("cost model must not change results")
	}
}

func TestFacadeSessionAndMonitor(t *testing.T) {
	cb, err := qosalloc.PaperCaseBase()
	if err != nil {
		t.Fatal(err)
	}
	repo := qosalloc.NewRepository(20)
	if err := repo.PopulateFromCaseBase(cb); err != nil {
		t.Fatal(err)
	}
	rt := qosalloc.NewRuntime(repo,
		qosalloc.NewProcessorDevice("dsp0", qosalloc.TargetDSP, 1000, 128<<10),
		qosalloc.NewProcessorDevice("gpp0", qosalloc.TargetGPP, 1000, 256<<10),
	)
	m := qosalloc.NewManager(cb, rt, qosalloc.ManagerOptions{})
	mon := qosalloc.NewPlatformMonitor(rt, 8)

	sess := qosalloc.OpenSession(m, "mp3", 5, qosalloc.AppSessionOptions{
		RelaxOrder: []qosalloc.AttrID{4},
	})
	c, err := sess.Call(qosalloc.PaperRequest())
	if err != nil {
		t.Fatal(err)
	}
	if c.Trail[len(c.Trail)-1].Outcome != qosalloc.OutcomePlaced {
		t.Errorf("trail = %+v", c.Trail)
	}
	st := mon.Sample()
	if st.TotalPowerMW == 0 {
		t.Error("monitor should see the placed task's power")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	after := qosalloc.PlatformSnapshot(rt)
	if after.TotalPowerMW != 0 {
		t.Errorf("power after close = %d", after.TotalPowerMW)
	}
}

// ExampleEngine_RetrieveN shows the §5 n-most-similar extension.
func ExampleEngine_RetrieveN() {
	cb, _ := qosalloc.PaperCaseBase()
	eng := qosalloc.NewEngine(cb, qosalloc.EngineOptions{})
	top, _ := eng.RetrieveN(qosalloc.PaperRequest(), 2)
	for _, r := range top {
		fmt.Printf("%s S=%.2f\n", r.Name, r.Similarity)
	}
	// Output:
	// fir-eq-dsp S=0.96
	// fir-eq-fpga S=0.85
}

// ExampleNewLearner shows the fig. 2 revise step: observed QoS folds
// back into the case base.
func ExampleNewLearner() {
	cb, _ := qosalloc.PaperCaseBase()
	learner, _ := qosalloc.NewLearner(cb, 1.0)
	// The DSP equalizer is observed delivering only 20 kS/s.
	_ = learner.Observe(qosalloc.Observation{
		Type: 1, Impl: 2,
		Measured: []qosalloc.AttrPair{{ID: 4, Value: 20}},
	})
	revised, changed, _ := learner.Rebuild()
	best, _ := qosalloc.NewEngine(revised, qosalloc.EngineOptions{}).Retrieve(qosalloc.PaperRequest())
	fmt.Println(changed, best.Name)
	// Output: 1 fir-eq-fpga
}

// ExampleRequest_Relax shows the §3 constraint-relaxation step.
func ExampleRequest_Relax() {
	req := qosalloc.PaperRequest()
	relaxed, ok := req.Relax(1) // drop the bitwidth constraint
	fmt.Println(ok, len(req.Constraints), len(relaxed.Constraints))
	// Output: true 3 2
}

func TestFacadeEnginePool(t *testing.T) {
	cb, _ := qosalloc.PaperCaseBase()
	p := qosalloc.NewEnginePool(cb, qosalloc.EngineOptions{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			best, err := p.Retrieve(qosalloc.PaperRequest())
			if err != nil || best.Impl != 2 {
				t.Errorf("pool retrieval = %+v, %v", best, err)
			}
		}()
	}
	wg.Wait()
	if p.Stats().Retrievals != 8 {
		t.Errorf("pool stats = %+v", p.Stats())
	}
}
