package qosalloc_test

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"qosalloc"
)

// TestCommandsRun smoke-tests every CLI end to end: assemble the
// documented invocations, run them, and check for the expected output
// markers — the commands are the product surface a downstream user
// touches first.
func TestCommandsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("commands run the go tool; skipped in -short mode")
	}
	tmp := t.TempDir()
	cbJSON := filepath.Join(tmp, "cb.json")
	cbImg := filepath.Join(tmp, "cb.bin")
	asm := filepath.Join(tmp, "t.s")
	if err := os.WriteFile(asm, []byte("addi r1, r0, 7\nhalt\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// cbrquery -load reads this fixture; write it up front so the
	// parallel subtests carry no ordering dependency on cbrgen.
	cb, err := qosalloc.PaperCaseBase()
	if err != nil {
		t.Fatal(err)
	}
	jf, err := os.Create(cbJSON)
	if err != nil {
		t.Fatal(err)
	}
	if err := qosalloc.SaveCaseBase(jf, cb); err != nil {
		t.Fatal(err)
	}
	if err := jf.Close(); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args []string
		want []string
	}{
		{"repro-list", []string{"run", "./cmd/repro", "-list"},
			[]string{"table1", "speedup", "bitwidth"}},
		{"repro-table1", []string{"run", "./cmd/repro", "-exp", "table1"},
			[]string{"S_global = 0.96", "best"}},
		{"cbrgen-paper", []string{"run", "./cmd/cbrgen", "-paper", "-dump", "-json", filepath.Join(tmp, "cb2.json"), "-image", cbImg},
			[]string{"2 types, 5 implementations", "FIR Equalizer", "wrote JSON"}},
		{"cbrquery-names", []string{"run", "./cmd/cbrquery", "-load", cbJSON,
			"-type", "1", "-c", "bitwidth=16", "-c", "output-mode=stereo", "-c", "sample-rate=40", "-n", "3"},
			[]string{"impl 2", "S = 0.9640"}},
		{"cbrquery-hw", []string{"run", "./cmd/cbrquery", "-engine", "hw",
			"-type", "1", "-c", "1=16", "-c", "3=1", "-c", "4=40"},
			[]string{"157 cycles"}},
		{"cbrquery-sw", []string{"run", "./cmd/cbrquery", "-engine", "sw",
			"-type", "1", "-c", "1=16", "-c", "3=1", "-c", "4=40"},
			[]string{"66 MHz"}},
		{"mbrun", []string{"run", "./cmd/mbrun", "-mem", "64", asm},
			[]string{"halted after", "r1", "CPI"}},
		{"mbrun-listing", []string{"run", "./cmd/mbrun", "-retrieval", "-list"},
			[]string{"lhu r3, r21, 0"}},
		{"sysim", []string{"run", "./cmd/sysim", "-stream", "50"},
			[]string{"fig. 1 application-mix", "retrievals:", "preemptions:"}},
		// The robustness acceptance scenario: permanent FPGA-slot
		// failures mid-run plus transient configuration errors must
		// complete with zero tasks dropped without a report.
		{"sysim-faults", []string{"run", "./cmd/sysim", "-stream", "60",
			"-faults", "20500:configerr:fpga0;30500:slotfail:fpga0:0;45500:slotfail:fpga0:1;50500:configerr:dsp0"},
			[]string{"scripted faults", "[fault]", "0 dropped", "fault path:"}},
		// The service layer (DESIGN.md §9): concurrent clients against
		// the sharded batching front end, then a deterministic batched
		// allocation pass — the placement count is seed-pinned.
		{"sysim-serve", []string{"run", "./cmd/sysim", "-serve", "-clients", "8", "-shards", "4", "-stream", "120"},
			[]string{"service mode: 8 clients, 4 shards", "retrieved:   120 ok, 0 failed",
				"batching:", "placed:      95 of 120"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			defer cancel()
			out, err := exec.CommandContext(ctx, "go", tc.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("%v failed: %v\n%s", tc.args, err, out)
			}
			for _, want := range tc.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
}
