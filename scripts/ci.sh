#!/bin/sh
# CI gate: build, vet, the qosvet invariant suite, the full test suite
# under the race detector, the observability golden tests, and a
# one-iteration benchmark smoke pass. Mirrors `make ci` for
# environments without make.
set -eux

go build ./...
go vet ./...
# qosvet: the project invariant suite (internal/lint) run through the
# standard vet driver, before the race pass — deadlocks and goroutine
# leaks are exactly what -race can't see. Gates determinism
# (wall-clock/map-order), Q15 saturation, obs metric conventions, error
# wrapping, the declared lock hierarchy (locklint, cross-package via
# vetx facts), goroutine lifecycle discipline (leaklint), and stale
# //qosvet:ignore directives (audit mode).
go build -o bin/qosvet ./cmd/qosvet
go vet -vettool="$(pwd)/bin/qosvet" ./...
go test -race ./...
# Observability goldens: deterministic counters and bit-exact replay.
go test -run 'TestObs' ./internal/experiments/
# Every benchmark must still compile and survive one iteration.
go test -run xxx -bench . -benchtime 1x ./...
# Block-compacted retrieval must not be slower than the pointer-walking
# baseline (PR 7 gate; the committed BENCH_compact_retrieval.json is
# refreshed deliberately with `make bench-compact OUT=...`).
QOS_BENCH_COMPACT=1 go test -run TestCompactRetrievalSpeedup -count=1 .
# Enabling the live-mutation layer must not slow the batched read path
# beyond noise (PR 9 gate; the committed BENCH_learn_churn.json is
# refreshed deliberately with `make bench-learn OUT=...`).
QOS_BENCH_LEARN=1 go test -run TestServeLearnReadPathNoRegression -count=1 .
# API-surface gate: the exported facade must match the committed
# snapshot. Regenerate deliberately with `make api` after an intended
# surface change.
go doc -all . | diff -u api.txt - || {
	echo "api.txt is stale: exported API changed; run 'make api' and commit" >&2
	exit 1
}
# Multi-tenant isolation gate: the noisy-neighbor scenario must leave
# the degraded tenant's recovery identical to the no-neighbor baseline
# and reproduce the pinned fleet journal hash (mirrors `make fleetcheck`).
go test -run 'TestFleetNoisyNeighborIsolation|TestFleetCheckGolden|TestFleetReplayBitIdentical' -count=1 ./internal/fleet/
# Live case-base mutation gate (mirrors `make learncheck`): the pinned
# E21 epoch journal replays bit-identically at any shard count, retiring
# a tokenized variant never serves a stale bypass, and the churn stress
# passes under the race detector.
go test -run 'TestLearnChurnGoldenReplay|TestLearnChurnShardInvariance' -count=1 ./internal/experiments/
go test -race -run 'TestReplayShardInvariant|TestRetireInvalidatesBypassTokens|TestSwapMatchesFromScratchRebuild|TestLearnChurnRaceStress' -count=1 ./internal/serve/
# qosd/qosload end-to-end smoke: scenario reports validate against the
# wire schema, lockstep replay is outcome-identical, SIGTERM drains
# cleanly. Writes its reports to a temp dir (the committed
# BENCH_qosd_*.json are refreshed deliberately with loadcheck.sh .).
scripts/loadcheck.sh
