#!/bin/sh
# loadcheck: the qosd/qosload end-to-end smoke. Builds both binaries,
# boots a lockstep daemon on a loopback port, runs the two committed
# bench scenarios (zipf hotkey and uniform client mixes), validates the
# emitted BENCH_qosd_*.json against the wire schema, replays the zipf
# schedule against a FRESH daemon and requires identical outcome hashes
# (the determinism acceptance check), and finally SIGTERMs a daemon
# with traffic behind it and requires a clean drain (exit 0).
#
# Usage: scripts/loadcheck.sh [outdir]
#   outdir defaults to a temp dir; pass "." to refresh the committed
#   BENCH_qosd_*.json reports at the repo root.
set -eu

PORT="${QOSD_PORT:-7351}"
ADDR="127.0.0.1:$PORT"
URL="http://$ADDR"
OUT="${1:-$(mktemp -d)}"
mkdir -p "$OUT"
# Scratch artifacts (daemon log, replay + drain-probe reports) never go
# to $OUT, so `scripts/loadcheck.sh .` refreshes exactly the two
# committed reports and nothing else.
TMP="$(mktemp -d)"
REQS=600
SEED=1
# Tight admission so the zipf hot client actually sheds: the schedule
# arrives at 2000 req/s of sim time against a 500/s per-client refill.
DAEMON_FLAGS="-lockstep -rate 500 -burst 50"

go build -o bin/qosd ./cmd/qosd
go build -o bin/qosload ./cmd/qosload

DPID=""
cleanup() {
	[ -n "$DPID" ] && kill "$DPID" 2>/dev/null || true
}
trap cleanup EXIT INT TERM

boot() {
	./bin/qosd -addr "$ADDR" $DAEMON_FLAGS >"$TMP/qosd.log" 2>&1 &
	DPID=$!
}

stop() {
	kill -TERM "$DPID"
	wait "$DPID" # a failed drain exits non-zero and fails the script
	DPID=""
}

run_scenario() { # $1 = scenario name, $2 = output file
	./bin/qosload -addr "$URL" -scenario "$1" -mode lockstep \
		-seed "$SEED" -requests "$REQS" -out "$2"
	./bin/qosload -validate "$2"
}

# Scenario runs: each against a fresh daemon so reports are reproducible.
boot
run_scenario zipf "$OUT/BENCH_qosd_zipf.json"
stop

boot
run_scenario uniform "$OUT/BENCH_qosd_uniform.json"
stop

# Determinism acceptance: replaying the same seed against a fresh
# daemon must yield the exact same per-request outcomes (latency aside).
boot
run_scenario zipf "$TMP/BENCH_qosd_zipf_replay.json"
stop
./bin/qosload -compare "$OUT/BENCH_qosd_zipf.json,$TMP/BENCH_qosd_zipf_replay.json"

# Churn determinism: the same zipf schedule with a 20% mutation mix
# interleaved (-churn) against a learning daemon must also replay to
# identical per-request outcomes — fold-point commits are part of the
# deterministic pipeline, not a source of divergence. Reports go to
# $TMP: churn runs are a gate, not a committed artifact.
run_churn() { # $1 = output file
	./bin/qosload -addr "$URL" -scenario zipf -mode lockstep \
		-seed "$SEED" -requests "$REQS" -churn 20 -out "$1"
	./bin/qosload -validate "$1"
}
DAEMON_FLAGS="$DAEMON_FLAGS -learn -learn-fold 32"
boot
run_churn "$TMP/BENCH_qosd_churn.json"
stop
boot
run_churn "$TMP/BENCH_qosd_churn_replay.json"
stop
./bin/qosload -compare "$TMP/BENCH_qosd_churn.json,$TMP/BENCH_qosd_churn_replay.json"
DAEMON_FLAGS="-lockstep -rate 500 -burst 50"

# Drain acceptance: SIGTERM with traffic just behind it must exit 0
# within the drain deadline (stop() already asserts the exit status),
# and the daemon must log its final metrics snapshot.
boot
./bin/qosload -addr "$URL" -scenario uniform -mode lockstep \
	-seed 2 -requests 100 -out "$TMP/BENCH_qosd_drain_probe.json"
stop
grep -q "final metrics snapshot" "$TMP/qosd.log" || {
	echo "loadcheck: drain did not write the final metrics snapshot" >&2
	exit 1
}

echo "loadcheck: ok (reports in $OUT)"
