# Standard development targets. `make ci` is the gate every change must
# pass: build, vet, and the full test suite under the race detector.

GO ?= go

.PHONY: all build vet qosvet lint test race bench bench-smoke bench-compact bench-learn fuzz api api-check loadcheck fleetcheck learncheck ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# qosvet is the project-specific invariant suite (internal/lint):
# determinism, Q15 saturation, obs naming, error wrapping, lock order,
# goroutine lifecycles. bin/qosvet is a real file target so lint reuses
# the cached binary when neither the analyzers nor the driver changed;
# lint runs it through the standard vet driver so diagnostics carry
# file:line and the run is cached per package.
bin/qosvet: $(wildcard internal/lint/*.go cmd/qosvet/*.go) go.mod
	$(GO) build -o bin/qosvet ./cmd/qosvet

qosvet: bin/qosvet

lint: bin/qosvet
	$(GO) vet -vettool=$(CURDIR)/bin/qosvet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .

# One iteration of every benchmark in the repo: catches benchmark code
# rot without paying for real measurements. Part of the CI gate.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# Compacted-vs-uncompacted retrieval gate: measures both kernels at
# paper scale and fails if the block-compacted path is slower than the
# pointer-walking baseline. `make bench-compact OUT=BENCH_compact_retrieval.json`
# refreshes the committed report.
bench-compact:
	QOS_BENCH_COMPACT=1 QOS_BENCH_OUT=$(OUT) $(GO) test -run TestCompactRetrievalSpeedup -count=1 -v .

# Live-mutation read-path gate: measures the batched read path frozen
# vs with the epoch-snapshot layer enabled (idle and under churn) and
# fails if enabling learning slows reads beyond noise.
# `make bench-learn OUT=BENCH_learn_churn.json` refreshes the report.
bench-learn:
	QOS_BENCH_LEARN=1 QOS_BENCH_OUT=$(OUT) $(GO) test -run TestServeLearnReadPathNoRegression -count=1 -v .

# Short fuzz pass over the decoder; lengthen FUZZTIME for a real hunt.
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/cbjson/ -run xxx -fuzz FuzzDecodeCaseBase -fuzztime $(FUZZTIME)

# Regenerate the committed API-surface snapshot after a deliberate
# exported-surface change; api-check is the CI half that fails on drift.
api:
	$(GO) doc -all . > api.txt

api-check:
	$(GO) doc -all . | diff -u api.txt -

# End-to-end qosd/qosload smoke: boots the daemon, runs both bench
# scenarios, checks the BENCH_qosd_*.json schema, replays for identical
# outcome hashes, and SIGTERM-drains cleanly. `make loadcheck OUT=.`
# refreshes the committed reports.
OUT ?=
loadcheck:
	scripts/loadcheck.sh $(OUT)

# Multi-tenant isolation gate: the seeded noisy-neighbor scenario (one
# tenant flooding at ~10× its class budget during a scoped fault storm)
# must leave the degraded tenant's recovery bit-identical to the
# no-neighbor baseline, and the journal hash must match the pinned
# golden (internal/fleet).
fleetcheck:
	$(GO) test -run 'TestFleetNoisyNeighborIsolation|TestFleetCheckGolden|TestFleetReplayBitIdentical' -count=1 ./internal/fleet/

# Live case-base mutation gate (DESIGN.md §14): the pinned E21 epoch
# journal replays bit-identically at any shard count, retiring a
# tokenized variant never serves a stale bypass, and the churn-under-
# load stress passes under the race detector.
learncheck:
	$(GO) test -run 'TestLearnChurnGoldenReplay|TestLearnChurnShardInvariance' -count=1 ./internal/experiments/
	$(GO) test -race -run 'TestReplayShardInvariant|TestRetireInvalidatesBypassTokens|TestSwapMatchesFromScratchRebuild|TestLearnChurnRaceStress' -count=1 ./internal/serve/

ci: build vet lint race bench-smoke bench-compact bench-learn api-check fleetcheck learncheck loadcheck
