# Standard development targets. `make ci` is the gate every change must
# pass: build, vet, and the full test suite under the race detector.

GO ?= go

.PHONY: all build vet test race bench fuzz ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .

# Short fuzz pass over the decoder; lengthen FUZZTIME for a real hunt.
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/cbjson/ -run xxx -fuzz FuzzDecodeCaseBase -fuzztime $(FUZZTIME)

ci: build vet race
