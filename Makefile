# Standard development targets. `make ci` is the gate every change must
# pass: build, vet, and the full test suite under the race detector.

GO ?= go

.PHONY: all build vet qosvet lint test race bench bench-smoke bench-compact fuzz api api-check loadcheck fleetcheck ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# qosvet is the project-specific invariant suite (internal/lint):
# determinism, Q15 saturation, obs naming, error wrapping. lint runs it
# through the standard vet driver so diagnostics carry file:line and
# the run is cached per package.
qosvet:
	$(GO) build -o bin/qosvet ./cmd/qosvet

lint: qosvet
	$(GO) vet -vettool=$(CURDIR)/bin/qosvet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .

# One iteration of every benchmark in the repo: catches benchmark code
# rot without paying for real measurements. Part of the CI gate.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# Compacted-vs-uncompacted retrieval gate: measures both kernels at
# paper scale and fails if the block-compacted path is slower than the
# pointer-walking baseline. `make bench-compact OUT=BENCH_compact_retrieval.json`
# refreshes the committed report.
bench-compact:
	QOS_BENCH_COMPACT=1 QOS_BENCH_OUT=$(OUT) $(GO) test -run TestCompactRetrievalSpeedup -count=1 -v .

# Short fuzz pass over the decoder; lengthen FUZZTIME for a real hunt.
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/cbjson/ -run xxx -fuzz FuzzDecodeCaseBase -fuzztime $(FUZZTIME)

# Regenerate the committed API-surface snapshot after a deliberate
# exported-surface change; api-check is the CI half that fails on drift.
api:
	$(GO) doc -all . > api.txt

api-check:
	$(GO) doc -all . | diff -u api.txt -

# End-to-end qosd/qosload smoke: boots the daemon, runs both bench
# scenarios, checks the BENCH_qosd_*.json schema, replays for identical
# outcome hashes, and SIGTERM-drains cleanly. `make loadcheck OUT=.`
# refreshes the committed reports.
OUT ?=
loadcheck:
	scripts/loadcheck.sh $(OUT)

# Multi-tenant isolation gate: the seeded noisy-neighbor scenario (one
# tenant flooding at ~10× its class budget during a scoped fault storm)
# must leave the degraded tenant's recovery bit-identical to the
# no-neighbor baseline, and the journal hash must match the pinned
# golden (internal/fleet).
fleetcheck:
	$(GO) test -run 'TestFleetNoisyNeighborIsolation|TestFleetCheckGolden|TestFleetReplayBitIdentical' -count=1 ./internal/fleet/

ci: build vet lint race bench-smoke bench-compact api-check fleetcheck loadcheck
