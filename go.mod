module qosalloc

go 1.22
