package qosalloc

// Compacted-layout retrieval benchmark (§5's projected ~2× speedup, the
// software half). BenchmarkCompactVsFixedRetrieval reports both paths
// under the normal -bench flow; TestCompactRetrievalSpeedup is the
// `make bench-compact` CI gate — it measures both paths with
// testing.Benchmark, FAILS if the compacted path is slower than the
// uncompacted baseline, and refreshes BENCH_compact_retrieval.json when
// pointed at an output file.

import (
	"encoding/json"
	"os"
	"testing"

	"qosalloc/internal/memlist"
	"qosalloc/internal/retrieval"
)

// BenchmarkCompactVsFixedRetrieval (E-compact): the same paper-scale
// request stream through the uncompacted FixedEngine and the compacted
// kernel. Both produce bit-identical Q15 results (gated in
// internal/retrieval tests); this measures only the fetch-path cost.
func BenchmarkCompactVsFixedRetrieval(b *testing.B) {
	cb, reqs := paperScaleFixtures(b)
	b.Run("fixed", func(b *testing.B) {
		fe := retrieval.NewFixedEngine(cb)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := fe.Retrieve(reqs[i%len(reqs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compact", func(b *testing.B) {
		ce, err := retrieval.NewCompactEngine(cb)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ce.Retrieve(reqs[i%len(reqs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// compactBenchReport is the BENCH_compact_retrieval.json schema.
type compactBenchReport struct {
	Benchmark        string  `json:"benchmark"`
	Types            int     `json:"types"`
	ImplsPerType     int     `json:"impls_per_type"`
	AttrsPerImpl     int     `json:"attrs_per_impl"`
	Requests         int     `json:"requests"`
	FixedNsPerOp     int64   `json:"fixed_ns_per_op"`
	CompactNsPerOp   int64   `json:"compact_ns_per_op"`
	Speedup          float64 `json:"speedup"`
	UncompactedWords int     `json:"uncompacted_words"`
	CompactWords     int     `json:"compact_words"`
	SavedWords       int     `json:"saved_words"`
}

// TestCompactRetrievalSpeedup is the bench-compact gate. It is skipped
// unless QOS_BENCH_COMPACT=1 so the regular test suite stays fast and
// timing-independent; `make bench-compact` sets the variable. With
// QOS_BENCH_OUT set, the measured report is written there
// (BENCH_compact_retrieval.json at the repo root is the committed
// copy).
func TestCompactRetrievalSpeedup(t *testing.T) {
	if os.Getenv("QOS_BENCH_COMPACT") != "1" {
		t.Skip("set QOS_BENCH_COMPACT=1 (make bench-compact) to run the timing gate")
	}
	res := testing.Benchmark(func(b *testing.B) {
		cb, reqs := paperScaleFixtures(b)
		fe := retrieval.NewFixedEngine(cb)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := fe.Retrieve(reqs[i%len(reqs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	resC := testing.Benchmark(func(b *testing.B) {
		cb, reqs := paperScaleFixtures(b)
		ce, err := retrieval.NewCompactEngine(cb)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ce.Retrieve(reqs[i%len(reqs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	fixedNs, compactNs := res.NsPerOp(), resC.NsPerOp()
	if fixedNs <= 0 || compactNs <= 0 {
		t.Fatalf("degenerate timings: fixed %d ns/op, compact %d ns/op", fixedNs, compactNs)
	}
	speedup := float64(fixedNs) / float64(compactNs)
	mr := memlist.CompactReport(15, 10, 10, 10)
	rep := compactBenchReport{
		Benchmark: "compact_retrieval",
		Types:     15, ImplsPerType: 10, AttrsPerImpl: 10, Requests: 64,
		FixedNsPerOp: fixedNs, CompactNsPerOp: compactNs, Speedup: speedup,
		UncompactedWords: mr.UncompactedWords, CompactWords: mr.CompactWords,
		SavedWords: mr.SavedWords,
	}
	t.Logf("fixed %d ns/op, compact %d ns/op, speedup %.2fx, footprint %d→%d words",
		fixedNs, compactNs, speedup, mr.UncompactedWords, mr.CompactWords)
	if out := os.Getenv("QOS_BENCH_OUT"); out != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if compactNs >= fixedNs {
		t.Fatalf("compacted retrieval (%d ns/op) is not faster than the uncompacted baseline (%d ns/op)",
			compactNs, fixedNs)
	}
}
