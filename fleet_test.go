package qosalloc_test

import (
	"errors"
	"testing"

	"qosalloc"
)

// fleetDevs builds one node's device set through the public facade.
func fleetDevs(name string) []qosalloc.Device {
	return []qosalloc.Device{
		qosalloc.NewFPGADevice(qosalloc.DeviceID(name+"-fpga"), []qosalloc.FPGASlot{
			{Slices: 1500, BRAMs: 8, Multipliers: 16},
			{Slices: 1500, BRAMs: 8, Multipliers: 16},
		}, 66),
		qosalloc.NewProcessorDevice(qosalloc.DeviceID(name+"-dsp"), qosalloc.TargetDSP, 1000, 128*1024),
		qosalloc.NewProcessorDevice(qosalloc.DeviceID(name+"-gpp"), qosalloc.TargetGPP, 1000, 256*1024),
	}
}

// TestFacadeFleet drives the multi-tenant quickstart end to end:
// topology and tenancy from options, a metered placement, a typed
// budget rejection, release, and the replay hash.
func TestFacadeFleet(t *testing.T) {
	cb, err := qosalloc.PaperCaseBase()
	if err != nil {
		t.Fatal(err)
	}
	build := func() *qosalloc.Fleet {
		fl, err := qosalloc.NewFleet(cb,
			qosalloc.WithFleetNode("node0", 20, fleetDevs("node0")...),
			qosalloc.WithFleetNode("node1", 20, fleetDevs("node1")...),
			qosalloc.WithClassBudget("bronze", qosalloc.ClassBudget{
				ConfigBytesPerSec: 1, ConfigBurstBytes: 18 * 1024,
			}),
			qosalloc.WithTenant("batch", "bronze"),
			qosalloc.WithRegistry(qosalloc.NewObsRegistry()),
			qosalloc.WithThreshold(0.5))
		if err != nil {
			t.Fatal(err)
		}
		return fl
	}
	fl := build()

	p, err := fl.Allocate("batch", "mp3", qosalloc.PaperRequest(), 5)
	if err != nil {
		t.Fatalf("metered allocate: %v", err)
	}
	if p.Node != "node0" || p.Tenant != "batch" {
		t.Fatalf("placement %+v", p)
	}

	// The bronze bandwidth bucket is one DSP bitstream deep: the second
	// allocation is a typed budget rejection naming the resource.
	_, err = fl.Allocate("batch", "mp3", qosalloc.PaperRequest(), 5)
	var be *qosalloc.ErrBudgetExceeded
	if !errors.As(err, &be) || be.Resource != "config_bytes" {
		t.Fatalf("over-budget allocate: %v", err)
	}

	// An unbound tenant is unmetered and lands on the other best node.
	if _, err := fl.Allocate("free", "mp3b", qosalloc.PaperRequest(), 5); err != nil {
		t.Fatalf("unmetered allocate: %v", err)
	}
	if err := fl.Release(p.Node, p.Task); err != nil {
		t.Fatalf("release: %v", err)
	}

	// The same option list replays to the same journal hash.
	fl2 := build()
	for _, tenant := range []string{"batch", "free"} {
		if _, err := fl2.Allocate(tenant, "app-"+tenant, qosalloc.PaperRequest(), 5); err != nil &&
			!errors.As(err, &be) {
			t.Fatalf("replay allocate(%s): %v", tenant, err)
		}
	}
	fl3 := build()
	for _, tenant := range []string{"batch", "free"} {
		if _, err := fl3.Allocate(tenant, "app-"+tenant, qosalloc.PaperRequest(), 5); err != nil &&
			!errors.As(err, &be) {
			t.Fatalf("replay allocate(%s): %v", tenant, err)
		}
	}
	if fl2.ReplayHash() != fl3.ReplayHash() {
		t.Fatalf("replay hashes differ: %s vs %s", fl2.ReplayHash(), fl3.ReplayHash())
	}
}

func TestFacadeParseClassBudgets(t *testing.T) {
	m, err := qosalloc.ParseClassBudgets("gold=slices:2000;bronze=cfgbps:1024")
	if err != nil {
		t.Fatal(err)
	}
	if m["gold"].Slices != 2000 || m["bronze"].ConfigBytesPerSec != 1024 {
		t.Fatalf("parsed %+v", m)
	}
}
