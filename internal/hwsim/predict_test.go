package hwsim

import (
	"math/rand"
	"testing"

	"qosalloc/internal/attr"
	"qosalloc/internal/casebase"
	"qosalloc/internal/memlist"
	"qosalloc/internal/workload"
)

// TestPredictGoldenMinimal pins the predictor to the golden FSM
// sequence: the minimal case base costs exactly 25 base cycles (the
// TestGoldenStateSequence trace) and 12 compact cycles.
func TestPredictGoldenMinimal(t *testing.T) {
	reg := attr.NewRegistry()
	reg.MustDefine(attr.Def{ID: 1, Name: "a", Lo: 0, Hi: 10})
	b := casebase.NewBuilder(reg)
	b.AddType(1, "t")
	b.AddImpl(1, casebase.Implementation{ID: 1, Attrs: []attr.Pair{{ID: 1, Value: 5}}})
	cb, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	req := casebase.NewRequest(1, casebase.Constraint{ID: 1, Value: 5}).EqualWeights()
	cc, err := memlist.CompactFromCaseBase(cb)
	if err != nil {
		t.Fatal(err)
	}
	base, err := PredictCycles(cc, req, false)
	if err != nil {
		t.Fatal(err)
	}
	if base.Total != 25 {
		t.Errorf("predicted base total = %d, want 25 (golden trace)", base.Total)
	}
	comp, err := PredictCycles(cc, req, true)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Total != 12 {
		t.Errorf("predicted compact total = %d, want 12", comp.Total)
	}
	if base.Shared != comp.Shared {
		t.Errorf("shared share differs between modes: %d vs %d", base.Shared, comp.Shared)
	}
}

// TestPredictMatchesSimulator is the tentpole's hardware gate: across
// randomized case bases, the cycle count derived from the compacted
// encoding must equal the simulated unit's measured cycles exactly —
// for both fetch modes — and the fetch shares must satisfy the paper's
// factor-2 claim (§5) on every instance, not just on average.
func TestPredictMatchesSimulator(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 80; trial++ {
		cb, reg := randomCaseBase(r, 1+r.Intn(4), 1+r.Intn(8), 1+r.Intn(6), 8)
		req := randomRequest(r, cb, reg, 1+r.Intn(5))
		cc, err := memlist.CompactFromCaseBase(cb)
		if err != nil {
			t.Fatal(err)
		}
		var pred [2]CyclePrediction
		for mi, compact := range []bool{false, true} {
			p, err := PredictCycles(cc, req, compact)
			if err != nil {
				t.Fatal(err)
			}
			pred[mi] = p
			if p.Total != p.Fetch+p.Shared {
				t.Fatalf("trial %d: prediction shares do not sum", trial)
			}
			res, err := Retrieve(cb, req, Config{Compact: compact})
			if err != nil {
				t.Fatalf("trial %d compact=%v: %v", trial, compact, err)
			}
			if res.Cycles != p.Total {
				t.Fatalf("trial %d compact=%v: simulated %d cycles, predicted %d",
					trial, compact, res.Cycles, p.Total)
			}
		}
		if pred[0].Shared != pred[1].Shared {
			t.Fatalf("trial %d: shared share differs between modes: %d vs %d",
				trial, pred[0].Shared, pred[1].Shared)
		}
		if pred[0].Fetch < 2*pred[1].Fetch {
			t.Fatalf("trial %d: fetch share %d is not ≥ 2× the compacted %d — §5 claim violated",
				trial, pred[0].Fetch, pred[1].Fetch)
		}
	}
}

// TestPredictPaperScaleTwoX measures the §5 claim at the Table 3
// capacity point (15 types × 10 impls × 10 attrs): the memory-fetch
// share must compact by at least 2×, and because fetches dominate at
// scale, the end-to-end cycle count must land near the paper's
// projected overall ~2× as well.
func TestPredictPaperScaleTwoX(t *testing.T) {
	cb, reg, err := workload.GenCaseBase(workload.PaperScale())
	if err != nil {
		t.Fatal(err)
	}
	cc, err := memlist.CompactFromCaseBase(cb)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.GenRequests(cb, reg, workload.RequestStreamSpec{N: 32, ConstraintsPer: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var baseTotal, compTotal, baseFetch, compFetch uint64
	for _, req := range reqs {
		pb, err := PredictCycles(cc, req, false)
		if err != nil {
			t.Fatal(err)
		}
		pc, err := PredictCycles(cc, req, true)
		if err != nil {
			t.Fatal(err)
		}
		// Spot-check the prediction against the simulator on the
		// stream's head; simulating all 32 at paper scale is slow.
		baseTotal += pb.Total
		compTotal += pc.Total
		baseFetch += pb.Fetch
		compFetch += pc.Fetch
	}
	res, err := Retrieve(cb, reqs[0], Config{})
	if err != nil {
		t.Fatal(err)
	}
	pb0, _ := PredictCycles(cc, reqs[0], false)
	if res.Cycles != pb0.Total {
		t.Fatalf("paper-scale spot check: simulated %d, predicted %d", res.Cycles, pb0.Total)
	}
	fetchRatio := float64(baseFetch) / float64(compFetch)
	totalRatio := float64(baseTotal) / float64(compTotal)
	t.Logf("paper scale over %d requests: fetch %.2fx, end-to-end %.2fx (%d → %d cycles)",
		len(reqs), fetchRatio, totalRatio, baseTotal, compTotal)
	if fetchRatio < 2.0 {
		t.Errorf("fetch-share compaction %.2fx < 2.0x: §5 claim fails on the new encoding", fetchRatio)
	}
	if totalRatio < 1.8 {
		t.Errorf("end-to-end compaction %.2fx below the paper's projected ~2x", totalRatio)
	}
}
