package hwsim

import (
	"math"
	"math/rand"
	"testing"

	"qosalloc/internal/attr"
	"qosalloc/internal/casebase"
	"qosalloc/internal/memlist"
	"qosalloc/internal/retrieval"
	"qosalloc/internal/rtl"
)

func TestHardwareTableOne(t *testing.T) {
	cb, err := casebase.PaperCaseBase()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Retrieve(cb, casebase.PaperRequest(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ImplID != 2 {
		t.Errorf("hardware best = %d, want DSP (2)", res.ImplID)
	}
	if math.Abs(res.Sim.Float()-0.96) > 0.01 {
		t.Errorf("hardware S = %v, want ≈0.96", res.Sim.Float())
	}
	if res.Cycles == 0 {
		t.Error("cycle count must be positive")
	}
	t.Logf("paper example: %d cycles, S=%.4f", res.Cycles, res.Sim.Float())
}

func TestHardwareMatchesFixedEngine(t *testing.T) {
	// The cycle-accurate unit and the fixed-point software twin must
	// produce the identical (ID, Q15 similarity) pair — they implement
	// the same datapath.
	cb, _ := casebase.PaperCaseBase()
	fe := retrieval.NewFixedEngine(cb)
	req := casebase.PaperRequest()
	hw, err := Retrieve(cb, req, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := fe.Retrieve(req)
	if err != nil {
		t.Fatal(err)
	}
	if hw.ImplID != uint16(sw.Impl) {
		t.Errorf("hw best %d, fixed engine best %d", hw.ImplID, sw.Impl)
	}
	if hw.Sim != sw.Similarity {
		t.Errorf("hw S=%d, fixed engine S=%d (must be bit-identical)", hw.Sim, sw.Similarity)
	}
}

func TestHardwareTypeNotFound(t *testing.T) {
	// Bypass request validation to exercise the FSM's error path: the
	// image encodes a type the tree does not contain.
	cb, _ := casebase.PaperCaseBase()
	tree, err := memlist.EncodeTree(cb)
	if err != nil {
		t.Fatal(err)
	}
	supp := memlist.EncodeSupplemental(cb.Registry())
	reqImg, err := memlist.EncodeRequest(casebase.PaperRequest())
	if err != nil {
		t.Fatal(err)
	}
	reqImg.Words[0] = 77 // unknown type
	u := New(tree, supp, reqImg, Config{})
	if _, err := u.Run(100000); err == nil {
		t.Error("unknown type must error")
	}
	if u.StateQ() != StError {
		t.Errorf("state = %v, want Error", u.StateQ())
	}
}

func TestHardwareCompactAgrees(t *testing.T) {
	cb, _ := casebase.PaperCaseBase()
	req := casebase.PaperRequest()
	base, err := Retrieve(cb, req, Config{})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Retrieve(cb, req, Config{Compact: true})
	if err != nil {
		t.Fatal(err)
	}
	if base.ImplID != comp.ImplID || base.Sim != comp.Sim {
		t.Errorf("compact mode changed the result: %+v vs %+v", base, comp)
	}
	if comp.Cycles >= base.Cycles {
		t.Errorf("compact (%d cycles) must beat baseline (%d cycles)", comp.Cycles, base.Cycles)
	}
	speedup := float64(base.Cycles) / float64(comp.Cycles)
	t.Logf("compact fetch speedup: %.2fx (%d → %d cycles)", speedup, base.Cycles, comp.Cycles)
	// §5: "speeding everything up at least by factor 2" refers to the
	// memory-fetch share; end-to-end we demand a solid improvement.
	if speedup < 1.3 {
		t.Errorf("compact speedup %.2fx is implausibly low", speedup)
	}
}

func TestHardwareRestartScanAblation(t *testing.T) {
	// The naive restart-from-top scan must return identical results
	// while consuming more cycles — quantifying the §4.1 pre-sorting
	// rationale.
	r := rand.New(rand.NewSource(5))
	cb, reg := randomCaseBase(r, 2, 6, 6, 8)
	req := randomRequest(r, cb, reg, 5)
	base, err := Retrieve(cb, req, Config{})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Retrieve(cb, req, Config{RestartScan: true})
	if err != nil {
		t.Fatal(err)
	}
	if base.ImplID != naive.ImplID || base.Sim != naive.Sim {
		t.Errorf("restart scan changed the result: %+v vs %+v", base, naive)
	}
	if naive.Cycles <= base.Cycles {
		t.Errorf("restart scan (%d cycles) should cost more than resumable (%d cycles)",
			naive.Cycles, base.Cycles)
	}
	t.Logf("resumable %d cycles, restart %d cycles (%.2fx)",
		base.Cycles, naive.Cycles, float64(naive.Cycles)/float64(base.Cycles))
}

func TestHardwareTrace(t *testing.T) {
	cb, _ := casebase.PaperCaseBase()
	tr := rtl.NewTrace()
	u, err := Build(cb, casebase.PaperRequest(), Config{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("trace recorded nothing")
	}
	// The FSM must have passed through the calculation states.
	seen := map[uint64]bool{}
	for _, e := range tr.Events() {
		if e.Signal == "state" {
			seen[e.Value] = true
		}
	}
	for _, st := range []State{StTypeCheck, StImplCheck, StSi, StAcc, StBestCmp} {
		if !seen[uint64(st)] {
			t.Errorf("state %v never reached", st)
		}
	}
	// The clock stops the cycle Done latches, so the terminal state
	// shows on the state register rather than in the trace.
	if u.StateQ() != StDone {
		t.Errorf("final state = %v, want Done", u.StateQ())
	}
}

func TestHardwareCounters(t *testing.T) {
	cb, _ := casebase.PaperCaseBase()
	u, _ := Build(cb, casebase.PaperRequest(), Config{})
	res, err := u.Run(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if u.BRAMReads() == 0 {
		t.Error("BRAM read counter dead")
	}
	// 3 impls × 3 matched attrs × 2 multipliers = 18 products.
	if got := u.MultUses(); got != 18 {
		t.Errorf("multiplier uses = %d, want 18", got)
	}
	if u.BRAMReads() >= res.Cycles {
		t.Errorf("reads (%d) should be below total cycles (%d)", u.BRAMReads(), res.Cycles)
	}
}

func TestHardwareMissingAttribute(t *testing.T) {
	// FFT variants carry no output-mode attribute; the unit must score
	// s_i = 0 for it and still deliver a best match.
	cb, _ := casebase.PaperCaseBase()
	req := casebase.NewRequest(casebase.Type1DFFT,
		casebase.Constraint{ID: casebase.AttrBitwidth, Value: 16},
		casebase.Constraint{ID: casebase.AttrOutputMode, Value: 1},
	).EqualWeights()
	res, err := Retrieve(cb, req, Config{})
	if err != nil {
		t.Fatal(err)
	}
	fe := retrieval.NewFixedEngine(cb)
	sw, _ := fe.Retrieve(req)
	if res.ImplID != uint16(sw.Impl) || res.Sim != sw.Similarity {
		t.Errorf("hw %+v disagrees with fixed engine %+v", res, sw)
	}
	if res.Sim.Float() > 0.5 {
		t.Errorf("S = %v, missing attribute must cap it at 1 - w", res.Sim.Float())
	}
}

// TestHardwareRandomAgreement is the central four-way equivalence
// property at hwsim level: across randomized case bases the hardware
// unit (both fetch modes) and the fixed-point engine return identical
// results.
func TestHardwareRandomAgreement(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		cb, reg := randomCaseBase(r, 1+r.Intn(4), 1+r.Intn(8), 1+r.Intn(6), 8)
		fe := retrieval.NewFixedEngine(cb)
		req := randomRequest(r, cb, reg, 1+r.Intn(5))
		sw, err := fe.Retrieve(req)
		if err != nil {
			t.Fatal(err)
		}
		for _, compact := range []bool{false, true} {
			hw, err := Retrieve(cb, req, Config{Compact: compact})
			if err != nil {
				t.Fatalf("trial %d compact=%v: %v", trial, compact, err)
			}
			if hw.ImplID != uint16(sw.Impl) || hw.Sim != sw.Similarity {
				t.Errorf("trial %d compact=%v: hw (%d, %d) vs sw (%d, %d)",
					trial, compact, hw.ImplID, hw.Sim, sw.Impl, sw.Similarity)
			}
		}
	}
}

// --- helpers ---------------------------------------------------------

func randomCaseBase(r *rand.Rand, nTypes, implsPer, attrsPer, attrUniverse int) (*casebase.CaseBase, *attr.Registry) {
	reg := attr.NewRegistry()
	for i := 1; i <= attrUniverse; i++ {
		lo := attr.Value(r.Intn(50))
		hi := lo + attr.Value(1+r.Intn(200))
		reg.MustDefine(attr.Def{ID: attr.ID(i), Name: "a", Lo: lo, Hi: hi})
	}
	if attrsPer > attrUniverse {
		attrsPer = attrUniverse
	}
	b := casebase.NewBuilder(reg)
	for ti := 1; ti <= nTypes; ti++ {
		b.AddType(casebase.TypeID(ti), "t")
		for ii := 1; ii <= implsPer; ii++ {
			perm := r.Perm(attrUniverse)[:attrsPer]
			var ps []attr.Pair
			for _, ai := range perm {
				d, _ := reg.Lookup(attr.ID(ai + 1))
				v := d.Lo + attr.Value(r.Intn(int(d.Hi-d.Lo)+1))
				ps = append(ps, attr.Pair{ID: d.ID, Value: v})
			}
			b.AddImpl(casebase.TypeID(ti), casebase.Implementation{ID: casebase.ImplID(ii), Attrs: ps})
		}
	}
	cb, err := b.Build()
	if err != nil {
		panic(err)
	}
	return cb, reg
}

func randomRequest(r *rand.Rand, cb *casebase.CaseBase, reg *attr.Registry, nConstraints int) casebase.Request {
	types := cb.Types()
	ft := types[r.Intn(len(types))]
	ids := reg.IDs()
	if nConstraints > len(ids) {
		nConstraints = len(ids)
	}
	perm := r.Perm(len(ids))[:nConstraints]
	var cs []casebase.Constraint
	for _, i := range perm {
		d, _ := reg.Lookup(ids[i])
		v := d.Lo + attr.Value(r.Intn(int(d.Hi-d.Lo)+1))
		cs = append(cs, casebase.Constraint{ID: d.ID, Value: v})
	}
	return casebase.NewRequest(ft.ID, cs...).EqualWeights()
}

// TestGoldenStateSequence pins the exact FSM behavior on a minimal case:
// one type, one implementation, one attribute, one constraint. Any
// change to the cycle-level protocol shows up here first.
func TestGoldenStateSequence(t *testing.T) {
	reg := attr.NewRegistry()
	reg.MustDefine(attr.Def{ID: 1, Name: "a", Lo: 0, Hi: 10})
	b := casebase.NewBuilder(reg)
	b.AddType(1, "t")
	b.AddImpl(1, casebase.Implementation{ID: 1, Attrs: []attr.Pair{{ID: 1, Value: 5}}})
	cb, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	req := casebase.NewRequest(1, casebase.Constraint{ID: 1, Value: 5}).EqualWeights()

	tr := rtl.NewTrace()
	u, err := Build(cb, req, Config{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	res, err := u.Run(10_000)
	if err != nil {
		t.Fatal(err)
	}
	// A perfect single-constraint match scores w·s = 0x7FFF·0x7FFF>>15
	// = 0x7FFE: the one-LSB truncation of the weight multiply.
	if res.ImplID != 1 || res.Sim != 0x7FFE {
		t.Fatalf("result = %+v, want impl 1 at Q15 0x7FFE", res)
	}

	var states []State
	for _, e := range tr.Events() {
		if e.Signal == "state" {
			states = append(states, State(e.Value))
		}
	}
	want := []State{
		StReqType, StReqTypeWait,
		StTypeScan, StTypeCheck, StTypePtrWait,
		StImplScan, StImplCheck, StImplPtrWait,
		StReqAttr, StReqAttrCheck, StReqAttrVal, StReqAttrWeight,
		StSuppScan, StSuppCheck, StSuppRecipWait,
		StCBAttrScan, StCBAttrCheck, StCBAttrVal,
		StSi, StAcc,
		StReqAttr, StReqAttrCheck, // terminator fetch
		StBestCmp,
		StImplScan, StImplCheck, // end of sub-list
	}
	if len(states) != len(want) {
		t.Fatalf("state sequence length %d, want %d:\n%v", len(states), len(want), states)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("state %d = %v, want %v\nfull: %v", i, states[i], want[i], states)
		}
	}
	// One cycle per visible compute state; Done latches on the last
	// state's own clock edge.
	if res.Cycles != uint64(len(want)) {
		t.Errorf("cycles = %d, want %d", res.Cycles, len(want))
	}
}
