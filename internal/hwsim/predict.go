package hwsim

// Cycle prediction from the block-compacted encoding. The §5 claim —
// the compacted attribute-block representation "speeds everything up at
// least by factor 2" — concerns the memory-fetch share of the FSM
// schedule. PredictCycles derives, for either fetch mode, the exact
// cycle count of a retrieval by walking memlist.CompactCaseBase: the
// compacted encoding carries precisely the information the fetch
// schedule depends on (ID sequences and extents; the paper's NULL
// terminators correspond to extent boundaries), so the claim can be
// checked against the new encoding analytically and then pinned against
// the simulated unit cycle for cycle.
//
// The prediction splits into two shares:
//
//   - Fetch: scan, check and wait states — everything whose cost the
//     dual-port block fetch changes.
//   - Shared: states identical in both modes — the request strobe
//     (ReqType/ReqTypeWait), the arithmetic pipeline (Si, Acc) and the
//     best comparator (BestCmp).
//
// Structurally, every fetch component costs at least twice as much in
// base mode as in compact mode (2-cycle scan/check pairs and dedicated
// wait states versus single-cycle dual-port probes), so the predicted
// Fetch shares must satisfy the factor-2 claim exactly; tests assert
// both that inequality and Total equality against the simulator.

import (
	"fmt"

	"qosalloc/internal/casebase"
	"qosalloc/internal/memlist"
)

// CyclePrediction is the predicted cycle budget of one retrieval.
type CyclePrediction struct {
	Total  uint64 // Fetch + Shared, the Result.Cycles the unit reports
	Fetch  uint64 // memory-bound share, halved-or-better by compaction
	Shared uint64 // mode-independent share (strobe, arithmetic, compare)
}

// PredictCycles computes the exact cycle count of a retrieval of req
// over the compacted encoding cc, for the base (compact=false) or
// block-compacted (compact=true) fetch mode of the unit, assuming the
// default resumable-scan configuration with single-best output.
// Request constraints must be strictly ascending by attribute ID, the
// order memlist.EncodeRequest requires.
func PredictCycles(cc *memlist.CompactCaseBase, req casebase.Request, compact bool) (CyclePrediction, error) {
	var p CyclePrediction

	tIdx := -1
	for i, id := range cc.TypeIDs {
		if id == uint16(req.Type) {
			tIdx = i
			break
		}
	}
	if tIdx < 0 {
		return p, fmt.Errorf("hwsim: type %d not in compacted encoding", req.Type)
	}
	for i := 1; i < len(req.Constraints); i++ {
		if req.Constraints[i].ID <= req.Constraints[i-1].ID {
			return p, fmt.Errorf("hwsim: request constraints not strictly ascending")
		}
	}

	// fetch prices one fetch primitive: base mode pays the full cost,
	// compact mode the dual-port cost.
	fetch := func(base, comp uint64) {
		if compact {
			p.Fetch += comp
		} else {
			p.Fetch += base
		}
	}

	// Request strobe: ReqType + ReqTypeWait, identical in both modes.
	p.Shared += 2

	// Type-list scan: tIdx+1 probes. Base pays a Scan+Check pair per
	// probe plus the TypePtrWait on the hit; compact checks directly
	// off the dual-port fetch and gets the pointer on port B.
	fetch(2*uint64(tIdx+1)+1, uint64(tIdx+1))

	iLo, iHi := int(cc.ImplOff[tIdx]), int(cc.ImplOff[tIdx+1])
	for i := iLo; i < iHi; i++ {
		// Implementation entry probe: base Scan+Check+PtrWait, compact
		// a single check with the attribute-list pointer on port B.
		fetch(3, 1)
		p.Shared++ // BestCmp after this implementation's request pass

		cp, cpEnd := int(cc.AttrOff[i]), int(cc.AttrOff[i+1])
		sp, spEnd := 0, len(cc.SuppIDs)
		for _, c := range req.Constraints {
			id := uint16(c.ID)
			// Request block: base ReqAttr+Check+Val+Weight; compact
			// Check (value on port B) + Weight (first supplemental
			// probe absorbed into the Weight cycle).
			fetch(4, 2)

			// Supplemental scan: resumable; the pointer rests on the
			// last probed entry, so each probe below id skips forward
			// and one closing probe matches, overshoots or hits the
			// terminator.
			skips := uint64(0)
			for sp < spEnd && cc.SuppIDs[sp] < id {
				sp++
				skips++
			}
			probes := skips + 1
			match := sp < spEnd && cc.SuppIDs[sp] == id
			if compact {
				// First probe rides the Weight cycle; the rest are
				// single-cycle SuppCheck states, match included.
				fetch(0, probes-1)
			} else {
				// Scan+Check pair per probe, plus SuppRecipWait on a
				// match.
				cost := 2 * probes
				if match {
					cost++
				}
				fetch(cost, 0)
			}
			if !match {
				// Supplemental miss: the FSM scores the constraint
				// unsatisfiable and moves on without touching the
				// attribute list or the arithmetic pipeline.
				continue
			}

			// Case-base attribute scan: same resumable structure; a
			// match additionally pays the CBAttrVal wait in base mode
			// and two shared arithmetic cycles (Si, Acc) in both.
			passes := uint64(0)
			for cp < cpEnd && cc.AttrIDs[cp] < id {
				cp++
				passes++
			}
			probes = passes + 1
			attrMatch := cp < cpEnd && cc.AttrIDs[cp] == id
			if attrMatch {
				cp++
			}
			if compact {
				fetch(0, probes)
			} else {
				cost := 2 * probes
				if attrMatch {
					cost++
				}
				fetch(cost, 0)
			}
			if attrMatch {
				p.Shared += 2 // Si + Acc
			}
		}
		// Request terminator probe closing this implementation.
		fetch(2, 1)
	}
	// Implementation-list terminator probe raising Done.
	fetch(2, 1)

	p.Total = p.Fetch + p.Shared
	return p, nil
}
