package hwsim

import "qosalloc/internal/fixed"

// n-best retrieval — the §5 extension: "Our next step will be an
// extension for getting n most similar solutions from retrieval which
// offers the possibility for checking out the feasibility of different
// matching variants."
//
// The hardware keeps a small ordered register file of the n best
// (S, ID) pairs. After each implementation's similarity is final, a
// sequential comparator walks the kept list (one comparison per cycle,
// like the single-best "S > SBest?" stage repeated) to find the
// insertion point; the insert itself is a parallel shift-register
// operation costing one further cycle. Area cost grows linearly in n
// (n × 32 bits of registers plus the comparator mux); cycle cost grows
// by at most n+1 cycles per implementation.

// TopEntry is one kept (similarity, implementation) pair.
type TopEntry struct {
	ImplID uint16
	Sim    fixed.Q15
}

// TopN returns the n-best register file contents after a completed run,
// best first. With NBest ≤ 1 it returns just the single best.
func (u *Unit) TopN() []TopEntry {
	if u.cfg.NBest <= 1 {
		if !u.haveBest {
			return nil
		}
		return []TopEntry{{ImplID: u.bestID, Sim: u.best}}
	}
	out := make([]TopEntry, u.nbestCount)
	for i := 0; i < u.nbestCount; i++ {
		out[i] = TopEntry{ImplID: u.nbestID[i], Sim: u.nbestS[i]}
	}
	return out
}

// resetNBest clears the register file at Start.
func (u *Unit) resetNBest() {
	if u.cfg.NBest > 1 {
		u.nbestS = make([]fixed.Q15, u.cfg.NBest)
		u.nbestID = make([]uint16, u.cfg.NBest)
		u.nbestCount = 0
		u.insIdx = 0
	}
}

// bestScanStep is the per-cycle sequential comparison of StBestScan.
// It reports true when the insertion point is found.
func (u *Unit) bestScanStep() bool {
	if u.insIdx < u.nbestCount && u.acc <= u.nbestS[u.insIdx] {
		u.insIdx++
		return false
	}
	return true
}

// bestInsert performs the one-cycle parallel shift-register insert of
// StBestShift, then mirrors entry 0 into the single-best outputs so
// Result stays meaningful.
func (u *Unit) bestInsert() {
	n := u.cfg.NBest
	if u.insIdx < n {
		for j := n - 1; j > u.insIdx; j-- {
			u.nbestS[j] = u.nbestS[j-1]
			u.nbestID[j] = u.nbestID[j-1]
		}
		u.nbestS[u.insIdx] = u.acc
		u.nbestID[u.insIdx] = u.implID
		if u.nbestCount < n {
			u.nbestCount++
		}
	}
	u.best = u.nbestS[0]
	u.bestID = u.nbestID[0]
	u.haveBest = u.nbestCount > 0
}
