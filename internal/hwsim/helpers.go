package hwsim

import (
	"fmt"

	"qosalloc/internal/casebase"
	"qosalloc/internal/memlist"
)

// Build encodes the case base and request into memory images and
// constructs a unit over them — the software equivalent of generating
// BRAM initialization data at design time and strobing New_Req.
func Build(cb *casebase.CaseBase, req casebase.Request, cfg Config) (*Unit, error) {
	if err := req.Validate(cb); err != nil {
		return nil, err
	}
	tree, err := memlist.EncodeTree(cb)
	if err != nil {
		return nil, err
	}
	supp := memlist.EncodeSupplemental(cb.Registry())
	reqImg, err := memlist.EncodeRequest(req)
	if err != nil {
		return nil, err
	}
	return New(tree, supp, reqImg, cfg), nil
}

// LoadRequest overwrites the Req-MEM contents with a new request image
// and advances the clock by the write-burst length — the steady-state
// usage of the deployed unit: the case base stays resident while the
// host streams in one request list per function call. The image must
// fit the Req-MEM the unit was built with.
func (u *Unit) LoadRequest(img *memlist.Image) error {
	if len(img.Words) > u.reqMem.Depth() {
		return fmt.Errorf("hwsim: request image of %d words exceeds Req-MEM depth %d",
			len(img.Words), u.reqMem.Depth())
	}
	// Clear the tail so a shorter request cannot alias the previous
	// one's entries past its terminator.
	padded := make([]uint16, u.reqMem.Depth())
	copy(padded, img.Words)
	cycles := u.reqMem.LoadBurst(0, padded)
	for i := 0; i < cycles; i++ {
		u.sim.Step()
	}
	return nil
}

// Retrieve runs one complete hardware retrieval for req against cb and
// returns the best-matching implementation with its cycle count.
func Retrieve(cb *casebase.CaseBase, req casebase.Request, cfg Config) (Result, error) {
	u, err := Build(cb, req, cfg)
	if err != nil {
		return Result{}, err
	}
	res, err := u.Run(maxCyclesFor(cb, req))
	if err != nil {
		return Result{}, err
	}
	if u.SuppMiss() {
		return res, fmt.Errorf("hwsim: supplemental table missing a requested attribute type")
	}
	return res, nil
}

// maxCyclesFor bounds a retrieval generously: a handful of cycles per
// word of both memories per implementation could never be exceeded by
// the linear scans.
func maxCyclesFor(cb *casebase.CaseBase, req casebase.Request) uint64 {
	s := cb.Stats()
	words := uint64(memlist.TreeWords(s.Types, s.MaxImpls, s.MaxAttrs) +
		memlist.SupplementalWords(s.AttrTypeUniv) +
		memlist.RequestWords(len(req.Constraints)))
	return 16 * words * uint64(s.MaxImpls+1)
}
