// Package hwsim is a cycle-accurate simulation of the paper's hardware
// retrieval unit: the finite state machine of fig. 6 driving the datapath
// of fig. 7. It is built on the rtl kit's synchronous primitives, so
// every memory access costs a real BRAM cycle and every multiplication
// passes through a registered MULT18X18 — the cycle counts it reports are
// the cycle counts the synthesized unit would take.
//
// Memory organization matches §4.1: the case base lives in one BRAM
// (CB-MEM) as the fig. 5 implementation tree followed by the fig. 4
// attribute-supplemental list; the request list occupies a second BRAM
// (Req-MEM). Both memories hold pre-sorted lists, which is what makes the
// unit's scans resumable and the total search effort linear.
//
// The unit supports the §5 "compacted attribute block representation"
// as an option (Compact): entry pairs are fetched through both BRAM
// ports in a single cycle and the request-weight fetch overlaps the
// supplemental scan, "speeding everything up at least by factor 2".
package hwsim

import (
	"fmt"

	"qosalloc/internal/fixed"
	"qosalloc/internal/memlist"
	"qosalloc/internal/rtl"
)

// State enumerates the retrieval FSM states (fig. 6).
type State uint8

// FSM states. The names follow the fig. 6 boxes.
const (
	StIdle          State = iota // waiting for a request strobe
	StReqType                    // fetch function type from request list
	StReqTypeWait                // capture it
	StTypeScan                   // fetch next case-base type entry
	StTypeCheck                  // compare with requested type
	StTypePtrWait                // capture implementation-list pointer
	StImplScan                   // fetch next implementation entry
	StImplCheck                  // end of sub-list? otherwise fetch pointer
	StImplPtrWait                // capture attribute-list pointer
	StReqAttr                    // fetch next request attribute ID
	StReqAttrCheck               // end of request? otherwise fetch value
	StReqAttrVal                 // capture value, fetch weight
	StReqAttrWeight              // capture weight
	StSuppScan                   // fetch supplemental entry ID
	StSuppCheck                  // match against request attribute ID
	StSuppRecipWait              // capture (1+dmax)^-1
	StCBAttrScan                 // fetch implementation attribute ID
	StCBAttrCheck                // match / pass / miss decision
	StCBAttrVal                  // capture value, d = |Areq-Acb|, start d×recip
	StSi                         // s_i = 1 - d·recip, start w×s_i
	StAcc                        // S += w·s_i
	StBestCmp                    // S > Sbest ? keep (S, ID)
	StDone                       // deliver most similar implementation
	StError                      // requested type not in case base
	StBestScan                   // n-best: sequential insertion-point scan
	StBestShift                  // n-best: parallel shift-register insert
)

var stateNames = [...]string{
	"Idle", "ReqType", "ReqTypeWait", "TypeScan", "TypeCheck", "TypePtrWait",
	"ImplScan", "ImplCheck", "ImplPtrWait", "ReqAttr", "ReqAttrCheck",
	"ReqAttrVal", "ReqAttrWeight", "SuppScan", "SuppCheck", "SuppRecipWait",
	"CBAttrScan", "CBAttrCheck", "CBAttrVal", "Si", "Acc", "BestCmp",
	"Done", "Error", "BestScan", "BestShift",
}

// String returns the fig. 6 style state name.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Config selects unit variants.
type Config struct {
	// Compact enables the §5 block-compacted fetch: dual-port BRAM
	// reads deliver (ID, value) entry pairs in one cycle.
	Compact bool
	// NBest, when > 1, enables the §5 n-most-similar extension: the
	// unit keeps an ordered register file of the NBest (S, ID) pairs,
	// read back through TopN after the run.
	NBest int
	// RestartScan disables the §4.1 resumable sorted-list scans: every
	// request attribute restarts its supplemental and attribute-list
	// searches from the list heads. This is the naive variant the
	// paper's pre-sorting eliminates; it exists for the ablation
	// benchmark only.
	RestartScan bool
	// Trace, when non-nil, records state and accumulator activity.
	Trace *rtl.Trace
}

// Result is the unit's output: the most similar implementation of the
// requested type, exactly the "ID and similarity value of the best
// matching implementation" the paper's unit delivers.
type Result struct {
	ImplID uint16
	Sim    fixed.Q15
	Cycles uint64
}

// Unit is the retrieval unit. Create one with New, load a request with
// Start, then clock it via the rtl.Simulator until Done.
type Unit struct {
	cfg Config

	cbMem  *rtl.BRAM16 // CB-MEM: tree ++ supplemental
	reqMem *rtl.BRAM16 // Req-MEM: request list
	mulD   *rtl.Mult18 // d × recip
	mulW   *rtl.Mult18 // w × s_i

	suppBase int // word address of the supplemental list inside CB-MEM

	// Architectural registers (fig. 7). Committed two-phase via
	// rtl.Reg so external observers see clock-edge values.
	state *rtl.Reg[State]
	done  *rtl.Reg[bool]

	// Internal FSM registers. Only the FSM itself reads them, so they
	// are plain fields updated during Compute; BRAM and multiplier
	// timing still gates every data movement.
	reqType  uint16
	tp       int // type-list scan pointer
	ip       int // implementation-list scan pointer
	ap       int // attribute-list base of current implementation
	cp       int // attribute-list scan pointer (resumable)
	sp       int // supplemental-list scan pointer (resumable)
	rp       int // request-list scan pointer
	implID   uint16
	attrID   uint16
	reqVal   uint16
	weight   fixed.Q15
	recip    fixed.UQ16
	acc      fixed.Q15
	best     fixed.Q15
	bestID   uint16
	haveBest bool

	// n-best register file (§5 extension).
	nbestS     []fixed.Q15
	nbestID    []uint16
	nbestCount int
	insIdx     int

	startCycle uint64
	cycles     uint64
	suppMiss   bool

	sim *rtl.Simulator
}

// New builds a retrieval unit over the given memory images. The CB BRAM
// is sized to tree+supplemental; the request BRAM to the request image.
func New(tree, supp, req *memlist.Image, cfg Config) *Unit {
	cbWords := append(append([]uint16(nil), tree.Words...), supp.Words...)
	u := &Unit{
		cfg:      cfg,
		cbMem:    rtl.NewBRAM16(len(cbWords), cbWords),
		reqMem:   rtl.NewBRAM16(len(req.Words), req.Words),
		mulD:     &rtl.Mult18{},
		mulW:     &rtl.Mult18{},
		suppBase: len(tree.Words),
		state:    rtl.NewReg(StIdle),
		done:     rtl.NewReg(false),
	}
	u.sim = rtl.NewSimulator()
	u.sim.Add(u, u.cbMem, u.reqMem, u.mulD, u.mulW, u.state, u.done)
	return u
}

// Done reports whether the unit has delivered a result (or failed).
func (u *Unit) Done() bool { return u.done.Q() }

// StateQ returns the registered FSM state, for tests and tracing.
func (u *Unit) StateQ() State { return u.state.Q() }

// SuppMiss reports whether any request attribute was absent from the
// supplemental list — a design-time table generation error.
func (u *Unit) SuppMiss() bool { return u.suppMiss }

// BRAMReads returns total BRAM read-port activations, the memory-bound
// share of the runtime.
func (u *Unit) BRAMReads() uint64 { return u.cbMem.Reads() + u.reqMem.Reads() }

// MultUses returns total multiplier activations.
func (u *Unit) MultUses() uint64 { return u.mulD.Uses() + u.mulW.Uses() }

// Start arms the unit for a new retrieval. The request image is already
// loaded; Start corresponds to the New_Req strobe in fig. 7.
func (u *Unit) Start() {
	u.state.Reset(StReqType)
	u.done.Reset(false)
	u.tp, u.ip, u.ap, u.cp, u.rp = 0, 0, 0, 0, 0
	u.sp = u.suppBase
	u.acc, u.best, u.bestID, u.haveBest = 0, 0, 0, false
	u.resetNBest()
	u.suppMiss = false
	u.startCycle = u.sim.Cycle()
}

// Run clocks the unit until completion and returns the result. maxCycles
// bounds runaway FSMs (corrupt images).
func (u *Unit) Run(maxCycles uint64) (Result, error) {
	u.Start()
	if _, err := u.sim.Run(u.Done, maxCycles); err != nil {
		return Result{}, err
	}
	u.cycles = u.sim.Cycle() - u.startCycle
	if u.state.Q() == StError {
		return Result{Cycles: u.cycles}, fmt.Errorf("hwsim: requested type %d not found in case base", u.reqType)
	}
	if !u.haveBest {
		return Result{Cycles: u.cycles}, fmt.Errorf("hwsim: type %d has no implementations", u.reqType)
	}
	return Result{ImplID: u.bestID, Sim: u.best, Cycles: u.cycles}, nil
}

// Commit implements rtl.Component. All unit state is either in rtl.Reg
// registers (committed by the simulator) or internal-only.
func (u *Unit) Commit() {}

// Compute implements rtl.Component: one FSM step per clock. BRAM data
// captured here was addressed in an earlier cycle, so every list probe
// costs its true memory latency.
func (u *Unit) Compute() {
	if u.cfg.Trace != nil {
		u.cfg.Trace.Sample(u.sim.Cycle(), "state", uint64(u.state.Q()))
		u.cfg.Trace.Sample(u.sim.Cycle(), "acc", uint64(uint16(u.acc)))
		u.cfg.Trace.Sample(u.sim.Cycle(), "impl_id", uint64(u.implID))
		u.cfg.Trace.Sample(u.sim.Cycle(), "best", uint64(uint16(u.best)))
		u.cfg.Trace.Sample(u.sim.Cycle(), "best_id", uint64(u.bestID))
	}
	switch u.state.Q() {
	case StIdle, StDone, StError:
		// hold

	case StReqType:
		u.reqMem.ReadA(0)
		u.state.Set(StReqTypeWait)

	case StReqTypeWait:
		u.reqType = u.reqMem.DoutA()
		u.tp = 0
		u.issueTypeScan()

	case StTypeScan:
		// address already issued by issueTypeScan
		u.state.Set(StTypeCheck)

	case StTypeCheck:
		id := u.cbMem.DoutA()
		switch {
		case id == memlist.EndMarker:
			u.state.Set(StError)
			u.done.Set(true)
		case id == u.reqType && u.cfg.Compact:
			// pointer arrived on port B in the same fetch
			u.ip = int(u.cbMem.DoutB())
			u.issueImplScan()
		case id == u.reqType:
			u.cbMem.ReadA(u.tp + 1)
			u.state.Set(StTypePtrWait)
		default:
			u.tp += 2
			u.issueTypeScan()
		}

	case StTypePtrWait:
		u.ip = int(u.cbMem.DoutA())
		u.issueImplScan()

	case StImplScan:
		u.state.Set(StImplCheck)

	case StImplCheck:
		id := u.cbMem.DoutA()
		if id == memlist.EndMarker {
			u.finish()
			return
		}
		u.implID = id
		if u.cfg.Compact {
			u.ap = int(u.cbMem.DoutB())
			u.beginImpl()
			return
		}
		u.cbMem.ReadA(u.ip + 1)
		u.state.Set(StImplPtrWait)

	case StImplPtrWait:
		u.ap = int(u.cbMem.DoutA())
		u.beginImpl()

	case StReqAttr:
		u.state.Set(StReqAttrCheck)

	case StReqAttrCheck:
		id := u.reqMem.DoutA()
		if id == memlist.EndMarker {
			// Last attribute of the request processed (fig. 6).
			u.updateBest()
			return
		}
		u.attrID = id
		if u.cfg.Compact {
			// Value arrived on port B; fetch the weight while the
			// supplemental scan starts on CB-MEM — two different
			// BRAMs, so the accesses genuinely overlap.
			u.reqVal = u.reqMem.DoutB()
			u.reqMem.ReadA(u.rp + 2)
			u.cbMem.ReadA(u.sp)
			u.cbMem.ReadB(u.sp + 3)
			u.state.Set(StReqAttrWeight)
			return
		}
		u.reqMem.ReadA(u.rp + 1)
		u.state.Set(StReqAttrVal)

	case StReqAttrVal:
		u.reqVal = u.reqMem.DoutA()
		u.reqMem.ReadA(u.rp + 2)
		u.state.Set(StReqAttrWeight)

	case StReqAttrWeight:
		u.weight = fixed.Q15(u.reqMem.DoutA())
		if u.cfg.Compact {
			// Supplemental ID (and candidate reciprocal) are already
			// on the CB-MEM output registers.
			u.checkSupp()
			return
		}
		u.cbMem.ReadA(u.sp)
		u.state.Set(StSuppScan)

	case StSuppScan:
		u.state.Set(StSuppCheck)

	case StSuppCheck:
		u.checkSupp()

	case StSuppRecipWait:
		u.recip = fixed.UQ16(u.cbMem.DoutA())
		u.issueCBAttrScan()

	case StCBAttrScan:
		u.state.Set(StCBAttrCheck)

	case StCBAttrCheck:
		id := u.cbMem.DoutA()
		switch {
		case id == memlist.EndMarker || id > u.attrID:
			// Attribute not offered by this implementation:
			// s_i = 0, nothing to accumulate (fig. 6 right branch).
			// The scan pointer stays for the next, larger request ID.
			u.nextReqAttr()
		case id == u.attrID && u.cfg.Compact:
			u.startCalc(u.cbMem.DoutB())
			u.cp += 2
		case id == u.attrID:
			u.cbMem.ReadA(u.cp + 1)
			u.cp += 2
			u.state.Set(StCBAttrVal)
		default: // id < attrID: pass, resume forward
			u.cp += 2
			u.issueCBAttrScan()
		}

	case StCBAttrVal:
		u.startCalc(u.cbMem.DoutA())

	case StSi:
		// d×recip product is registered; finish eq. (1) and launch
		// the weight multiply.
		si := fixed.SubSat(fixed.OneQ15, satQ15(u.mulD.P()>>1))
		u.mulW.Set(uint32(u.weight), uint32(si))
		u.state.Set(StAcc)

	case StAcc:
		u.acc = fixed.AddSat(u.acc, satQ15(u.mulW.P()>>15))
		u.nextReqAttr()

	case StBestCmp:
		if u.cfg.NBest > 1 {
			u.insIdx = 0
			u.state.Set(StBestScan)
			return
		}
		// "S > SBest ? keep S and implementation ID" (fig. 6).
		if !u.haveBest || u.acc > u.best {
			u.best = u.acc
			u.bestID = u.implID
			u.haveBest = true
		}
		u.ip += 2
		u.issueImplScan()

	case StBestScan:
		// One kept entry compared per cycle, like the single-best
		// comparator replicated sequentially.
		if u.bestScanStep() {
			u.state.Set(StBestShift)
		}

	case StBestShift:
		u.bestInsert()
		u.ip += 2
		u.issueImplScan()
	}
}

// satQ15 clamps an unsigned product shift into Q15.
func satQ15(v uint64) fixed.Q15 {
	if v > uint64(fixed.OneQ15) {
		return fixed.OneQ15
	}
	return fixed.Q15(v)
}

func (u *Unit) issueTypeScan() {
	u.cbMem.ReadA(u.tp)
	if u.cfg.Compact {
		// Block fetch (§5): pointer word through port B, and the
		// check state follows the issue directly — the BRAM's
		// one-cycle latency needs no extra wait state.
		u.cbMem.ReadB(u.tp + 1)
		u.state.Set(StTypeCheck)
		return
	}
	u.state.Set(StTypeScan)
}

func (u *Unit) issueImplScan() {
	u.cbMem.ReadA(u.ip)
	if u.cfg.Compact {
		u.cbMem.ReadB(u.ip + 1)
		u.state.Set(StImplCheck)
		return
	}
	u.state.Set(StImplScan)
}

func (u *Unit) issueCBAttrScan() {
	u.cbMem.ReadA(u.cp)
	if u.cfg.Compact {
		u.cbMem.ReadB(u.cp + 1)
		u.state.Set(StCBAttrCheck)
		return
	}
	u.state.Set(StCBAttrScan)
}

func (u *Unit) issueReqAttr() {
	u.reqMem.ReadA(u.rp)
	if u.cfg.Compact {
		u.reqMem.ReadB(u.rp + 1)
		u.state.Set(StReqAttrCheck)
		return
	}
	u.state.Set(StReqAttr)
}

// beginImpl resets the per-implementation scan registers and starts on
// the request's first attribute.
func (u *Unit) beginImpl() {
	u.cp = u.ap
	u.sp = u.suppBase
	u.rp = 1
	u.acc = 0
	u.issueReqAttr()
}

// nextReqAttr advances to the next request attribute block. In the
// ablation's restart mode the scan pointers fall back to their list
// heads, costing the "repeated search from the top" §4.1 avoids.
func (u *Unit) nextReqAttr() {
	u.rp += 3
	if u.cfg.RestartScan {
		u.cp = u.ap
		u.sp = u.suppBase
	}
	u.issueReqAttr()
}

// updateBest transitions to the best-comparison state; the comparison
// itself costs the one StBestCmp cycle, like the fig. 7 comparator stage.
func (u *Unit) updateBest() {
	u.state.Set(StBestCmp)
}

// checkSupp processes a supplemental-list probe whose ID is on DoutA
// (and, in compact mode, whose reciprocal candidate is on DoutB).
func (u *Unit) checkSupp() {
	id := u.cbMem.DoutA()
	switch {
	case id == u.attrID && u.cfg.Compact:
		u.recip = fixed.UQ16(u.cbMem.DoutB())
		u.issueCBAttrScan()
	case id == u.attrID:
		u.cbMem.ReadA(u.sp + 3)
		u.state.Set(StSuppRecipWait)
	case id != memlist.EndMarker && id < u.attrID:
		u.sp += 4
		u.cbMem.ReadA(u.sp)
		if u.cfg.Compact {
			u.cbMem.ReadB(u.sp + 3)
			u.state.Set(StSuppCheck)
			return
		}
		u.state.Set(StSuppScan)
	default:
		// Design error: request references an attribute type missing
		// from the supplemental table. Score it unsatisfiable.
		u.suppMiss = true
		u.nextReqAttr()
	}
}

// startCalc captures the implementation attribute value and launches the
// fig. 7 arithmetic pipeline: ABS → ×recip → 1-x → ×w → Σ.
func (u *Unit) startCalc(cbVal uint16) {
	d := fixed.Dist(u.reqVal, cbVal)
	u.mulD.Set(d, uint32(u.recip))
	u.state.Set(StSi)
}

// finish latches the final best comparison result and raises Done.
func (u *Unit) finish() {
	u.state.Set(StDone)
	u.done.Set(true)
}
