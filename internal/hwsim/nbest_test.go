package hwsim

import (
	"math/rand"
	"testing"

	"qosalloc/internal/casebase"
	"qosalloc/internal/retrieval"
)

func runNBest(t *testing.T, cb *casebase.CaseBase, req casebase.Request, n int) (*Unit, Result) {
	t.Helper()
	u, err := Build(cb, req, Config{NBest: n})
	if err != nil {
		t.Fatal(err)
	}
	res, err := u.Run(1 << 22)
	if err != nil {
		t.Fatal(err)
	}
	return u, res
}

func TestNBestPaperExample(t *testing.T) {
	cb, _ := casebase.PaperCaseBase()
	u, res := runNBest(t, cb, casebase.PaperRequest(), 3)
	top := u.TopN()
	if len(top) != 3 {
		t.Fatalf("TopN = %d entries, want 3", len(top))
	}
	// Table 1 order: DSP (2), FPGA (1), GP-Proc (3).
	wantIDs := []uint16{2, 1, 3}
	for i, w := range wantIDs {
		if top[i].ImplID != w {
			t.Errorf("TopN[%d] = impl %d, want %d", i, top[i].ImplID, w)
		}
	}
	for i := 1; i < len(top); i++ {
		if top[i].Sim > top[i-1].Sim {
			t.Error("TopN must be descending")
		}
	}
	if res.ImplID != 2 || res.Sim != top[0].Sim {
		t.Errorf("Result (%d, %d) must mirror TopN[0] (%d, %d)",
			res.ImplID, res.Sim, top[0].ImplID, top[0].Sim)
	}
}

func TestNBestSingleFallback(t *testing.T) {
	cb, _ := casebase.PaperCaseBase()
	u, res := runNBest(t, cb, casebase.PaperRequest(), 1)
	top := u.TopN()
	if len(top) != 1 || top[0].ImplID != res.ImplID {
		t.Errorf("NBest=1 TopN = %+v", top)
	}
}

func TestNBestFewerImplsThanN(t *testing.T) {
	cb, _ := casebase.PaperCaseBase()
	u, _ := runNBest(t, cb, casebase.PaperRequest(), 10)
	if got := len(u.TopN()); got != 3 {
		t.Errorf("TopN with n>impls = %d entries, want 3", got)
	}
}

// TestNBestMatchesFixedEngine: the hardware register file must agree
// with the fixed engine's RetrieveN across randomized inputs, including
// tie ordering.
func TestNBestMatchesFixedEngine(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		cb, reg := randomCaseBase(r, 2, 2+r.Intn(8), 1+r.Intn(5), 8)
		req := randomRequest(r, cb, reg, 1+r.Intn(4))
		n := 1 + r.Intn(5)
		fe := retrieval.NewFixedEngine(cb)
		want, err := fe.RetrieveN(req, n)
		if err != nil {
			t.Fatal(err)
		}
		u, err := Build(cb, req, Config{NBest: n})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := u.Run(1 << 22); err != nil {
			t.Fatal(err)
		}
		got := u.TopN()
		if n == 1 {
			// single-best path
			if got[0].ImplID != uint16(want[0].Impl) || got[0].Sim != want[0].Similarity {
				t.Errorf("trial %d: n=1 mismatch", trial)
			}
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: TopN %d entries, engine %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].ImplID != uint16(want[i].Impl) || got[i].Sim != want[i].Similarity {
				t.Errorf("trial %d entry %d: hw (%d, %d) vs engine (%d, %d)",
					trial, i, got[i].ImplID, got[i].Sim, want[i].Impl, want[i].Similarity)
			}
		}
	}
}

func TestNBestCycleOverheadModest(t *testing.T) {
	cb, _ := casebase.PaperCaseBase()
	_, single := runNBest(t, cb, casebase.PaperRequest(), 1)
	_, triple := runNBest(t, cb, casebase.PaperRequest(), 3)
	if triple.Cycles <= single.Cycles {
		t.Error("n-best bookkeeping must cost something")
	}
	// At most n+1 extra cycles per implementation (3 impls here).
	if triple.Cycles > single.Cycles+3*4 {
		t.Errorf("n-best overhead too high: %d vs %d", triple.Cycles, single.Cycles)
	}
	t.Logf("single %d cycles, 3-best %d cycles", single.Cycles, triple.Cycles)
}
