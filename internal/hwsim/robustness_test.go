package hwsim

import (
	"math/rand"
	"testing"

	"qosalloc/internal/casebase"
	"qosalloc/internal/memlist"
)

// TestCorruptImagesTerminate is failure injection at the memory level:
// whatever garbage the BRAMs hold, the unit must either deliver a result
// or report an error within its cycle budget — never panic, never hang
// forever. Wild pointers land in zeroed/out-of-range words which read as
// the end marker, and the scan pointers only move forward, so the FSM
// always makes progress.
func TestCorruptImagesTerminate(t *testing.T) {
	r := rand.New(rand.NewSource(404))
	for trial := 0; trial < 300; trial++ {
		tree := &memlist.Image{Words: randomWords(r, 1+r.Intn(64))}
		supp := &memlist.Image{Words: randomWords(r, 1+r.Intn(16))}
		req := &memlist.Image{Words: randomWords(r, 1+r.Intn(16))}
		for _, cfg := range []Config{{}, {Compact: true}, {NBest: 3}} {
			u := New(tree, supp, req, cfg)
			_, err := u.Run(200_000)
			// Any outcome is fine; the property is termination
			// without panic. A budget overrun would surface as
			// ErrMaxCycles wrapped in err.
			_ = err
			if !u.Done() && err == nil {
				t.Fatalf("trial %d: run returned without completing", trial)
			}
		}
	}
}

// TestZeroImagesError: all-zero memories must fail cleanly (type list is
// empty from word 0).
func TestZeroImagesError(t *testing.T) {
	tree := &memlist.Image{Words: make([]uint16, 32)}
	supp := &memlist.Image{Words: make([]uint16, 8)}
	req := &memlist.Image{Words: []uint16{1, memlist.EndMarker}}
	u := New(tree, supp, req, Config{})
	if _, err := u.Run(10_000); err == nil {
		t.Error("empty case base must error")
	}
	if u.StateQ() != StError {
		t.Errorf("state = %v", u.StateQ())
	}
}

// TestSelfReferencingPointers: a tree whose pointers point at themselves
// must still terminate (the scan pointer advances past the entry or the
// check reads a terminator).
func TestSelfReferencingPointers(t *testing.T) {
	// Type 1's impl list pointer targets the type entry itself.
	tree := &memlist.Image{Words: []uint16{1, 0, memlist.EndMarker}}
	supp := &memlist.Image{Words: []uint16{memlist.EndMarker}}
	req := &memlist.Image{Words: []uint16{1, memlist.EndMarker}}
	u := New(tree, supp, req, Config{})
	_, err := u.Run(100_000)
	// The impl scan starts at word 0, reads ID 1 with "pointer" 0,
	// whose attribute list at word 0 reads entry (1, 0)... all scans
	// advance monotonically, so this terminates one way or the other.
	_ = err
	if !u.Done() && err == nil {
		t.Fatal("self-referencing image did not terminate")
	}
}

// TestBackToBackRetrievals exercises the deployed usage: one resident
// unit, many requests streamed through LoadRequest, each retrieval
// starting from the previous one's final state.
func TestBackToBackRetrievals(t *testing.T) {
	cb, err := casebase.PaperCaseBase()
	if err != nil {
		t.Fatal(err)
	}
	tree, _ := memlist.EncodeTree(cb)
	supp := memlist.EncodeSupplemental(cb.Registry())

	relaxed, _ := casebase.PaperRequest().Relax(casebase.AttrBitwidth)
	reqs := []casebase.Request{
		casebase.PaperRequest(),
		relaxed,
		casebase.PaperRequest(), // repeat: same answer expected again
	}
	// Size Req-MEM for the largest request.
	maxWords := 0
	var imgs []*memlist.Image
	for _, rq := range reqs {
		img, err := memlist.EncodeRequest(rq)
		if err != nil {
			t.Fatal(err)
		}
		if len(img.Words) > maxWords {
			maxWords = len(img.Words)
		}
		imgs = append(imgs, img)
	}
	first := &memlist.Image{Words: make([]uint16, maxWords)}
	u := New(tree, supp, first, Config{})

	var got []uint16
	for i, img := range imgs {
		if err := u.LoadRequest(img); err != nil {
			t.Fatal(err)
		}
		res, err := u.Run(1 << 20)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		got = append(got, res.ImplID)
	}
	if got[0] != 2 || got[2] != 2 {
		t.Errorf("paper request best = %d/%d, want 2", got[0], got[2])
	}
	if got[0] != got[2] {
		t.Error("repeated request must repeat the answer")
	}
	// The unit rejects oversized requests.
	big := &memlist.Image{Words: make([]uint16, maxWords+10)}
	if err := u.LoadRequest(big); err == nil {
		t.Error("oversized request image must be rejected")
	}
}

func randomWords(r *rand.Rand, n int) []uint16 {
	w := make([]uint16, n)
	for i := range w {
		w[i] = uint16(r.Intn(1 << 16))
	}
	return w
}
