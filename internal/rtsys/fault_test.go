package rtsys

import (
	"errors"
	"testing"

	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
)

// TestTransitionMatrix drives every lifecycle event against every state
// it does NOT accept and checks the typed guard error. Accepted
// combinations are exercised by the lifecycle/preemption/fault tests;
// here we only care that illegal ones are rejected with a
// TransitionError wrapping ErrBadTransition (and never touch a device).
func TestTransitionMatrix(t *testing.T) {
	allStates := []State{Pending, Configuring, Running, Preempted, Done, Failed, Recovering}
	events := []struct {
		name    string
		allowed map[State]bool
		fire    func(s *System, cb *casebase.CaseBase, task *Task) error
	}{
		{
			name:    "place",
			allowed: map[State]bool{Pending: true, Preempted: true},
			fire: func(s *System, cb *casebase.CaseBase, task *Task) error {
				ft, _ := cb.Type(casebase.TypeFIREqualizer)
				im, _ := ft.Impl(2)
				return s.Place(task, s.DevicesByKind(casebase.TargetDSP)[0], im)
			},
		},
		{
			name:    "preempt",
			allowed: map[State]bool{Running: true, Configuring: true},
			fire:    func(s *System, _ *casebase.CaseBase, task *Task) error { return s.Preempt(task) },
		},
		{
			name: "complete",
			allowed: map[State]bool{
				Pending: true, Configuring: true, Running: true,
				Preempted: true, Recovering: true, Failed: true,
			},
			fire: func(s *System, _ *casebase.CaseBase, task *Task) error { return s.Complete(task) },
		},
		{
			name:    "config-error",
			allowed: map[State]bool{Configuring: true},
			fire:    func(s *System, _ *casebase.CaseBase, task *Task) error { return s.ConfigError(task) },
		},
		{
			name:    "seu",
			allowed: map[State]bool{Running: true},
			fire:    func(s *System, _ *casebase.CaseBase, task *Task) error { return s.SEU(task) },
		},
		{
			name:    "requeue",
			allowed: map[State]bool{Failed: true},
			fire:    func(s *System, _ *casebase.CaseBase, task *Task) error { return s.Requeue(task) },
		},
	}
	for _, ev := range events {
		for _, st := range allStates {
			if ev.allowed[st] {
				continue
			}
			s, cb := paperPlatform(t)
			task := s.CreateTask("x", casebase.TypeFIREqualizer, 1)
			task.State = st
			err := ev.fire(s, cb, task)
			if err == nil {
				t.Errorf("%s from %v: want guard error, got nil", ev.name, st)
				continue
			}
			if !errors.Is(err, ErrBadTransition) {
				t.Errorf("%s from %v: error %v does not wrap ErrBadTransition", ev.name, st, err)
			}
			var te *TransitionError
			if !errors.As(err, &te) {
				t.Errorf("%s from %v: error %v is not a *TransitionError", ev.name, st, err)
				continue
			}
			if te.Task != task.ID || te.From != st || te.Event != ev.name {
				t.Errorf("%s from %v: fields = %+v", ev.name, st, te)
			}
			if task.State != st {
				t.Errorf("%s from %v: rejected event changed state to %v", ev.name, st, task.State)
			}
		}
	}
}

func TestBackoffIsBoundedExponential(t *testing.T) {
	s, _ := paperPlatform(t)
	s.RetryBase, s.RetryCeil = 500, 16_000
	want := []device.Micros{500, 1000, 2000, 4000, 8000, 16_000, 16_000, 16_000}
	for i, w := range want {
		if got := s.backoff(i + 1); got != w {
			t.Errorf("backoff(%d) = %d, want %d", i+1, got, w)
		}
	}
	// Zero base degrades to 1 tick, never 0.
	s.RetryBase = 0
	if got := s.backoff(1); got != 1 {
		t.Errorf("backoff with zero base = %d, want 1", got)
	}
	// Zero ceiling means unbounded doubling.
	s.RetryBase, s.RetryCeil = 500, 0
	if got := s.backoff(8); got != 500<<7 {
		t.Errorf("unbounded backoff(8) = %d, want %d", got, 500<<7)
	}
}

func TestConfigErrorRetryAndExhaustion(t *testing.T) {
	s, cb := paperPlatform(t)
	s.RetryLimit = 2
	task := s.CreateTask("mp3", casebase.TypeFIREqualizer, 5)
	im := implOf(t, cb, casebase.TypeFIREqualizer, 2)
	dsp := s.DevicesByKind(casebase.TargetDSP)[0]
	if err := s.Place(task, dsp, im); err != nil {
		t.Fatal(err)
	}
	cost := task.ConfigCost

	// First error: backoff RetryBase, placement held.
	if err := s.ConfigError(task); err != nil {
		t.Fatal(err)
	}
	if task.State != Recovering || task.NextRetryAt != s.Now()+s.RetryBase {
		t.Fatalf("after error 1: %+v", task)
	}
	if dsp.CanPlace(im.Foot) != true && len(dsp.Placements()) != 1 {
		t.Fatal("placement must be held while recovering")
	}
	// Retry fires at NextRetryAt; ReadyAt re-adds the full config cost.
	if err := s.AdvanceTo(task.NextRetryAt); err != nil {
		t.Fatal(err)
	}
	if task.State != Configuring || task.ReadyAt != task.NextRetryAt+cost {
		t.Fatalf("after retry 1: %+v", task)
	}

	// Second error: doubled backoff.
	if err := s.ConfigError(task); err != nil {
		t.Fatal(err)
	}
	if task.NextRetryAt != s.Now()+s.RetryBase*2 {
		t.Fatalf("after error 2: backoff not doubled: %+v", task)
	}
	if err := s.AdvanceTo(task.NextRetryAt); err != nil {
		t.Fatal(err)
	}

	// Third error exhausts the budget (limit 2): placement released,
	// task Failed.
	if err := s.ConfigError(task); err != nil {
		t.Fatal(err)
	}
	if task.State != Failed || task.Dev != "" {
		t.Fatalf("after exhaustion: %+v", task)
	}
	if len(dsp.Placements()) != 0 {
		t.Error("exhausted placement must release capacity")
	}
	m := s.Metrics()
	if m.ConfigErrors != 3 || m.Retries != 2 {
		t.Errorf("metrics = %+v", m)
	}

	// A failed task re-queues and can be placed again.
	if err := s.Requeue(task); err != nil {
		t.Fatal(err)
	}
	if task.State != Pending || task.ConfigRetries != 0 {
		t.Fatalf("after requeue: %+v", task)
	}
	if err := s.Place(task, dsp, im); err != nil {
		t.Fatalf("re-place after requeue: %v", err)
	}
	// Requeue only accepts Failed tasks.
	if err := s.Requeue(task); !errors.Is(err, ErrBadTransition) {
		t.Errorf("requeue of a placed task: %v", err)
	}
}

func TestZeroRetryLimitFailsFast(t *testing.T) {
	s, cb := paperPlatform(t)
	s.RetryLimit = 0
	task := s.CreateTask("a", casebase.TypeFIREqualizer, 5)
	im := implOf(t, cb, casebase.TypeFIREqualizer, 2)
	if err := s.Place(task, s.DevicesByKind(casebase.TargetDSP)[0], im); err != nil {
		t.Fatal(err)
	}
	if err := s.ConfigError(task); err != nil {
		t.Fatal(err)
	}
	if task.State != Failed {
		t.Errorf("zero retry budget must fail on first error, got %v", task.State)
	}
}

func TestFailDeviceStrandsAndRequeues(t *testing.T) {
	s, cb := paperPlatform(t)
	im := implOf(t, cb, casebase.TypeFIREqualizer, 2)
	dsp := s.DevicesByKind(casebase.TargetDSP)[0]
	t1 := s.CreateTask("a", casebase.TypeFIREqualizer, 5)
	t2 := s.CreateTask("b", casebase.TypeFIREqualizer, 5)
	for _, task := range []*Task{t1, t2} {
		if err := s.Place(task, dsp, im); err != nil {
			t.Fatal(err)
		}
	}
	stranded, err := s.FailDevice("dsp0")
	if err != nil {
		t.Fatal(err)
	}
	if len(stranded) != 2 || stranded[0] != t1 || stranded[1] != t2 {
		t.Fatalf("stranded = %+v", stranded)
	}
	for _, task := range stranded {
		if task.State != Pending || task.Dev != "" || task.Faults != 1 {
			t.Errorf("stranded task not requeued: %+v", task)
		}
	}
	if dsp.Health() != device.Failed {
		t.Errorf("health = %v", dsp.Health())
	}
	m := s.Metrics()
	if m.DeviceFaults != 1 || m.Stranded != 2 || m.Requeued != 2 {
		t.Errorf("metrics = %+v", m)
	}
	// Placing on the dead device now fails with the sentinel.
	t3 := s.CreateTask("c", casebase.TypeFIREqualizer, 5)
	if err := s.Place(t3, dsp, im); !errors.Is(err, device.ErrDeviceFailed) {
		t.Errorf("place on failed device: %v", err)
	}
	if _, err := s.FailDevice("nosuch"); err == nil {
		t.Error("unknown device must error")
	}
}

func TestFailSlot(t *testing.T) {
	s, cb := paperPlatform(t)
	im := implOf(t, cb, casebase.TypeFIREqualizer, 1) // FPGA variant
	fpga := s.DevicesByKind(casebase.TargetFPGA)[0]
	task := s.CreateTask("a", casebase.TypeFIREqualizer, 5)
	if err := s.Place(task, fpga, im); err != nil {
		t.Fatal(err)
	}
	// Empty slot: fault lands on idle capacity, no victim.
	victim, err := s.FailSlot("fpga0", 1)
	if err != nil {
		t.Fatal(err)
	}
	if victim != nil {
		t.Errorf("empty slot produced victim %+v", victim)
	}
	// Occupied slot: the task is stranded and requeued.
	victim, err = s.FailSlot("fpga0", 0)
	if err != nil {
		t.Fatal(err)
	}
	if victim != task || task.State != Pending || task.Faults != 1 {
		t.Errorf("victim = %+v", victim)
	}
	// Both slots dead: the FPGA is failed as a whole.
	if fpga.Health() != device.Failed {
		t.Errorf("health = %v", fpga.Health())
	}
	if m := s.Metrics(); m.SlotFaults != 2 {
		t.Errorf("metrics = %+v", m)
	}
	// Slot faults only make sense on FPGAs.
	if _, err := s.FailSlot("dsp0", 0); err == nil {
		t.Error("slot failure on a processor must error")
	}
	if _, err := s.FailSlot("fpga0", 99); err == nil {
		t.Error("out-of-range slot must error")
	}
}

func TestSEURetryKeepsPlacement(t *testing.T) {
	s, cb := paperPlatform(t)
	im := implOf(t, cb, casebase.TypeFIREqualizer, 1)
	fpga := s.DevicesByKind(casebase.TargetFPGA)[0]
	task := s.CreateTask("a", casebase.TypeFIREqualizer, 5)
	if err := s.Place(task, fpga, im); err != nil {
		t.Fatal(err)
	}
	if err := s.AdvanceTo(task.ReadyAt); err != nil {
		t.Fatal(err)
	}
	if err := s.SEU(task); err != nil {
		t.Fatal(err)
	}
	if task.State != Recovering || task.Dev != "fpga0" {
		t.Fatalf("scrubbing must keep the placement: %+v", task)
	}
	if len(fpga.Placements()) != 1 {
		t.Error("slot released during scrub")
	}
	if err := s.AdvanceTo(task.NextRetryAt + task.ConfigCost); err != nil {
		t.Fatal(err)
	}
	if task.State != Running {
		t.Errorf("state after scrub = %v", task.State)
	}
}

func TestCompleteRecoveringAndFailedTasks(t *testing.T) {
	s, cb := paperPlatform(t)
	im := implOf(t, cb, casebase.TypeFIREqualizer, 2)
	dsp := s.DevicesByKind(casebase.TargetDSP)[0]

	// Recovering → Done releases the held placement.
	rec := s.CreateTask("a", casebase.TypeFIREqualizer, 5)
	if err := s.Place(rec, dsp, im); err != nil {
		t.Fatal(err)
	}
	if err := s.ConfigError(rec); err != nil {
		t.Fatal(err)
	}
	if err := s.Complete(rec); err != nil {
		t.Fatal(err)
	}
	if rec.State != Done || len(dsp.Placements()) != 0 {
		t.Errorf("complete of recovering task: %+v, %d placements", rec, len(dsp.Placements()))
	}

	// Failed → Done has nothing to release and must not error.
	failed := s.CreateTask("b", casebase.TypeFIREqualizer, 5)
	failed.State = Failed
	if err := s.Complete(failed); err != nil {
		t.Fatal(err)
	}
	if failed.State != Done {
		t.Errorf("state = %v", failed.State)
	}
}
