// Package rtsys is the run-time system underneath the allocation layer:
// it owns the system timeline, the hardware/software task lifecycles and
// the adaptive task priorities of the authors' earlier on-demand FPGA
// run-time system ("On-Demand FPGA Run-Time System for Dynamical
// Reconfiguration with Adaptive Priorities", FPL'04 — reference [7] of
// the paper), which fig. 1 shows as the "Local Run-Time Control" layer.
//
// The model is event-free discrete time: the owner advances the clock
// explicitly and the system resolves state transitions (configuration
// completing, waiting tasks aging) at each advance. That keeps the
// simulation deterministic and directly scriptable from experiments.
package rtsys

import (
	"fmt"
	"sort"

	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
)

// TaskID is a run-time task handle.
type TaskID int

// State is a task lifecycle state.
type State uint8

// Task lifecycle: Pending (not placed), Configuring (placed, bitstream /
// opcode loading), Running, Preempted (evicted, awaiting re-placement),
// Done.
const (
	Pending State = iota
	Configuring
	Running
	Preempted
	Done
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Configuring:
		return "configuring"
	case Running:
		return "running"
	case Preempted:
		return "preempted"
	case Done:
		return "done"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Task is one function instantiation managed by the run-time system.
type Task struct {
	ID       TaskID
	App      string // owning application, for reports
	Type     casebase.TypeID
	Impl     casebase.ImplID
	Dev      device.ID // empty while not placed
	BasePrio int
	State    State

	Created  device.Micros
	ReadyAt  device.Micros // configuration completion time
	Started  device.Micros // first entered Running
	Finished device.Micros

	// WaitingSince tracks the start of the current Pending/Preempted
	// span, the input to priority aging.
	WaitingSince device.Micros
	Preemptions  int
}

// Metrics aggregates system activity.
type Metrics struct {
	Created     int
	Completed   int
	Preemptions int
	// TotalWait accumulates time tasks spent Pending or Preempted.
	TotalWait device.Micros
	// TotalConfig accumulates time spent in Configuring.
	TotalConfig device.Micros
}

// System is the run-time system instance.
type System struct {
	now     device.Micros
	devices []device.Device
	repo    *device.Repository
	tasks   map[TaskID]*Task
	nextID  TaskID
	metrics Metrics

	// AgingNumerator/AgingDenominator set the adaptive-priority boost:
	// effective priority = base + waited*num/den. The FPL'04 scheme
	// raises priorities of starved tasks so they eventually win a
	// slot. Denominator 0 disables aging.
	AgingNumerator   int
	AgingDenominator int
}

// NewSystem builds a run-time system over the given devices and
// repository. Default aging: +1 priority level per 10 ms waited.
func NewSystem(repo *device.Repository, devs ...device.Device) *System {
	return &System{
		devices: devs, repo: repo,
		tasks:            make(map[TaskID]*Task),
		nextID:           1,
		AgingNumerator:   1,
		AgingDenominator: 10_000,
	}
}

// Now returns the current simulation time.
func (s *System) Now() device.Micros { return s.now }

// Devices returns the managed devices.
func (s *System) Devices() []device.Device { return s.devices }

// Repository returns the configuration repository.
func (s *System) Repository() *device.Repository { return s.repo }

// Metrics returns a copy of the counters.
func (s *System) Metrics() Metrics { return s.metrics }

// DevicesByKind returns the devices hosting the given target class.
func (s *System) DevicesByKind(k casebase.Target) []device.Device {
	var out []device.Device
	for _, d := range s.devices {
		if d.Kind() == k {
			out = append(out, d)
		}
	}
	return out
}

// Task returns a task by handle.
func (s *System) Task(id TaskID) (*Task, bool) {
	t, ok := s.tasks[id]
	return t, ok
}

// Tasks returns all tasks sorted by ID.
func (s *System) Tasks() []*Task {
	out := make([]*Task, 0, len(s.tasks))
	for _, t := range s.tasks {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CreateTask registers a new pending task for a function request.
func (s *System) CreateTask(app string, ty casebase.TypeID, basePrio int) *Task {
	t := &Task{
		ID: s.nextID, App: app, Type: ty, BasePrio: basePrio,
		State: Pending, Created: s.now, WaitingSince: s.now,
	}
	s.nextID++
	s.tasks[t.ID] = t
	s.metrics.Created++
	return t
}

// EffectivePriority returns the task's aged priority: tasks that have
// waited longer bid higher, the FPL'04 adaptive-priority rule.
func (s *System) EffectivePriority(t *Task) int {
	p := t.BasePrio
	if s.AgingDenominator > 0 && (t.State == Pending || t.State == Preempted) {
		waited := int(s.now - t.WaitingSince)
		p += waited * s.AgingNumerator / s.AgingDenominator
	}
	return p
}

// Place commits a task onto a device with the chosen implementation.
// The ready time accounts for fetching the configuration from the
// repository and the device's own setup latency (reconfiguration port or
// program load).
func (s *System) Place(t *Task, dev device.Device, im *casebase.Implementation) error {
	if t.State != Pending && t.State != Preempted {
		return fmt.Errorf("rtsys: task %d is %v, cannot place", t.ID, t.State)
	}
	if dev.Kind() != im.Target {
		return fmt.Errorf("rtsys: %s hosts %v, implementation targets %v", dev.Name(), dev.Kind(), im.Target)
	}
	fetch := device.Micros(0)
	if s.repo != nil {
		var err error
		fetch, err = s.repo.FetchTime(t.Type, im.ID)
		if err != nil {
			return fmt.Errorf("rtsys: %w", err)
		}
	}
	pl, err := dev.Place(int(t.ID), t.Type, im.ID, im.Foot, s.EffectivePriority(t), s.now)
	if err != nil {
		return err
	}
	s.metrics.TotalWait += s.now - t.WaitingSince
	t.Impl = im.ID
	t.Dev = dev.Name()
	t.State = Configuring
	t.ReadyAt = pl.Ready + fetch
	return nil
}

// Preempt evicts a running or configuring task from its device; it
// returns to the wait pool with its preemption count bumped ("it is
// possible that the best matching implementation is not currently
// feasible without preempting other active (hardware) tasks", §2).
func (s *System) Preempt(t *Task) error {
	if t.State != Running && t.State != Configuring {
		return fmt.Errorf("rtsys: task %d is %v, cannot preempt", t.ID, t.State)
	}
	dev, err := s.deviceByName(t.Dev)
	if err != nil {
		return err
	}
	if err := dev.Remove(int(t.ID)); err != nil {
		return err
	}
	t.State = Preempted
	t.Dev = ""
	t.WaitingSince = s.now
	t.Preemptions++
	s.metrics.Preemptions++
	return nil
}

// Complete finishes a task and releases its device capacity.
func (s *System) Complete(t *Task) error {
	switch t.State {
	case Running, Configuring:
		dev, err := s.deviceByName(t.Dev)
		if err != nil {
			return err
		}
		if err := dev.Remove(int(t.ID)); err != nil {
			return err
		}
	case Pending, Preempted:
		s.metrics.TotalWait += s.now - t.WaitingSince
	default:
		return fmt.Errorf("rtsys: task %d already %v", t.ID, t.State)
	}
	t.State = Done
	t.Finished = s.now
	s.metrics.Completed++
	return nil
}

// AdvanceTo moves the clock forward and resolves Configuring→Running
// transitions whose ready times have passed.
func (s *System) AdvanceTo(t device.Micros) error {
	if t < s.now {
		return fmt.Errorf("rtsys: cannot rewind clock from %d to %d", s.now, t)
	}
	s.now = t
	for _, task := range s.tasks {
		if task.State == Configuring && task.ReadyAt <= s.now {
			task.State = Running
			task.Started = task.ReadyAt
			s.metrics.TotalConfig += task.ReadyAt - task.Created
		}
	}
	return nil
}

// Advance moves the clock forward by dt.
func (s *System) Advance(dt device.Micros) error { return s.AdvanceTo(s.now + dt) }

// PowerMW returns the platform's current total power.
func (s *System) PowerMW() int {
	p := 0
	for _, d := range s.devices {
		p += d.PowerMW()
	}
	return p
}

func (s *System) deviceByName(id device.ID) (device.Device, error) {
	for _, d := range s.devices {
		if d.Name() == id {
			return d, nil
		}
	}
	return nil, fmt.Errorf("rtsys: unknown device %q", id)
}
