// Package rtsys is the run-time system underneath the allocation layer:
// it owns the system timeline, the hardware/software task lifecycles and
// the adaptive task priorities of the authors' earlier on-demand FPGA
// run-time system ("On-Demand FPGA Run-Time System for Dynamical
// Reconfiguration with Adaptive Priorities", FPL'04 — reference [7] of
// the paper), which fig. 1 shows as the "Local Run-Time Control" layer.
//
// The model is event-free discrete time: the owner advances the clock
// explicitly and the system resolves state transitions (configuration
// completing, waiting tasks aging) at each advance. That keeps the
// simulation deterministic and directly scriptable from experiments.
package rtsys

import (
	"errors"
	"fmt"
	"sort"

	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
	"qosalloc/internal/obs"
)

// TaskID is a run-time task handle.
type TaskID int

// State is a task lifecycle state.
type State uint8

// Task lifecycle: Pending (not placed), Configuring (placed, bitstream /
// opcode loading), Running, Preempted (evicted, awaiting re-placement),
// Done, Failed (placement lost to a fault, or configuration retries
// exhausted), Recovering (configuration error or SEU hit; the placement
// is held while a bounded-backoff reconfiguration retry is scheduled).
const (
	Pending State = iota
	Configuring
	Running
	Preempted
	Done
	Failed
	Recovering
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Configuring:
		return "configuring"
	case Running:
		return "running"
	case Preempted:
		return "preempted"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Recovering:
		return "recovering"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// ErrBadTransition is the sentinel wrapped by every state-guard error,
// so callers can distinguish lifecycle misuse from device/repository
// failures with errors.Is.
var ErrBadTransition = errors.New("rtsys: invalid state transition")

// TransitionError reports a lifecycle event applied in a state that does
// not accept it.
type TransitionError struct {
	Task  TaskID
	From  State
	Event string
}

func (e *TransitionError) Error() string {
	return fmt.Sprintf("rtsys: task %d is %v, cannot %s", e.Task, e.From, e.Event)
}

// Unwrap makes errors.Is(err, ErrBadTransition) work.
func (e *TransitionError) Unwrap() error { return ErrBadTransition }

// Task is one function instantiation managed by the run-time system.
type Task struct {
	ID       TaskID
	App      string // owning application, for reports
	Type     casebase.TypeID
	Impl     casebase.ImplID
	Dev      device.ID // empty while not placed
	BasePrio int
	State    State

	Created  device.Micros
	ReadyAt  device.Micros // configuration completion time
	Started  device.Micros // first entered Running
	Finished device.Micros

	// WaitingSince tracks the start of the current Pending/Preempted
	// span, the input to priority aging.
	WaitingSince device.Micros
	Preemptions  int

	// ConfigCost is the fetch + configuration latency of the current
	// placement, remembered so a retry can recompute ReadyAt.
	ConfigCost device.Micros
	// ConfigRetries counts configuration attempts burned on the
	// current placement (reset on every fresh Place).
	ConfigRetries int
	// NextRetryAt is when a Recovering task re-enters Configuring.
	NextRetryAt device.Micros
	// Faults counts device/slot failures that stranded this task.
	Faults int
}

// Metrics aggregates system activity.
type Metrics struct {
	Created     int
	Completed   int
	Preemptions int
	// TotalWait accumulates time tasks spent Pending or Preempted.
	TotalWait device.Micros
	// TotalConfig accumulates time spent in Configuring.
	TotalConfig device.Micros

	// Fault-path counters.
	ConfigErrors int // transient configuration errors injected
	SEUs         int // single-event upsets injected into running tasks
	Retries      int // reconfiguration retries that actually fired
	DeviceFaults int // whole-device permanent failures
	SlotFaults   int // FPGA slot permanent failures
	Stranded     int // tasks knocked off a device by a fault
	Requeued     int // stranded/failed tasks returned to the wait pool
}

// System is the run-time system instance.
type System struct {
	now     device.Micros
	devices []device.Device
	repo    *device.Repository
	tasks   map[TaskID]*Task
	nextID  TaskID
	metrics Metrics
	met     *rtMetrics
	devObs  *device.Observer

	// AgingNumerator/AgingDenominator set the adaptive-priority boost:
	// effective priority = base + waited*num/den. The FPL'04 scheme
	// raises priorities of starved tasks so they eventually win a
	// slot. Denominator 0 disables aging.
	AgingNumerator   int
	AgingDenominator int

	// RetryBase is the first reconfiguration-retry backoff; attempt k
	// waits RetryBase<<(k-1) clock ticks, capped at RetryCeil.
	RetryBase device.Micros
	// RetryCeil bounds the exponential backoff.
	RetryCeil device.Micros
	// RetryLimit is how many configuration attempts a placement gets
	// before the task is marked Failed. Zero disables retries: the
	// first configuration error fails the task.
	RetryLimit int
}

// NewSystem builds a run-time system over the given devices and
// repository. Default aging: +1 priority level per 10 ms waited.
func NewSystem(repo *device.Repository, devs ...device.Device) *System {
	return &System{
		devices: devs, repo: repo,
		tasks:            make(map[TaskID]*Task),
		nextID:           1,
		met:              newRTMetrics(nil),
		devObs:           device.NewObserver(nil),
		AgingNumerator:   1,
		AgingDenominator: 10_000,
		RetryBase:        500,
		RetryCeil:        16_000,
		RetryLimit:       3,
	}
}

// Now returns the current simulation time.
func (s *System) Now() device.Micros { return s.now }

// Devices returns the managed devices.
func (s *System) Devices() []device.Device { return s.devices }

// Repository returns the configuration repository.
func (s *System) Repository() *device.Repository { return s.repo }

// Metrics returns a copy of the counters.
func (s *System) Metrics() Metrics { return s.metrics }

// DevicesByKind returns the devices hosting the given target class.
func (s *System) DevicesByKind(k casebase.Target) []device.Device {
	var out []device.Device
	for _, d := range s.devices {
		if d.Kind() == k {
			out = append(out, d)
		}
	}
	return out
}

// Task returns a task by handle.
func (s *System) Task(id TaskID) (*Task, bool) {
	t, ok := s.tasks[id]
	return t, ok
}

// Tasks returns all tasks sorted by ID.
func (s *System) Tasks() []*Task {
	out := make([]*Task, 0, len(s.tasks))
	for _, t := range s.tasks {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CreateTask registers a new pending task for a function request.
func (s *System) CreateTask(app string, ty casebase.TypeID, basePrio int) *Task {
	t := &Task{
		ID: s.nextID, App: app, Type: ty, BasePrio: basePrio,
		State: Pending, Created: s.now, WaitingSince: s.now,
	}
	s.nextID++
	s.tasks[t.ID] = t
	s.metrics.Created++
	s.met.tasksByState[Pending].Add(1)
	s.met.transitions["create"].Inc()
	if s.met.enabled {
		s.met.trace.Append(obs.Event{At: int64(s.now), Kind: "create",
			Detail: fmt.Sprintf("task %d: %s type %d", t.ID, app, ty)})
	}
	return t
}

// EffectivePriority returns the task's aged priority: tasks that have
// waited longer bid higher, the FPL'04 adaptive-priority rule.
func (s *System) EffectivePriority(t *Task) int {
	p := t.BasePrio
	if s.AgingDenominator > 0 && (t.State == Pending || t.State == Preempted) {
		waited := int(s.now - t.WaitingSince)
		p += waited * s.AgingNumerator / s.AgingDenominator
	}
	return p
}

// Place commits a task onto a device with the chosen implementation.
// The ready time accounts for fetching the configuration from the
// repository and the device's own setup latency (reconfiguration port or
// program load).
func (s *System) Place(t *Task, dev device.Device, im *casebase.Implementation) error {
	if t.State != Pending && t.State != Preempted {
		return &TransitionError{Task: t.ID, From: t.State, Event: "place"}
	}
	if dev.Kind() != im.Target {
		return fmt.Errorf("rtsys: %s hosts %v, implementation targets %v", dev.Name(), dev.Kind(), im.Target)
	}
	fetch := device.Micros(0)
	if s.repo != nil {
		var err error
		fetch, err = s.repo.FetchTime(t.Type, im.ID)
		if err != nil {
			return fmt.Errorf("rtsys: fetch (%d, %d): %w", t.Type, im.ID, err)
		}
	}
	pl, err := dev.Place(int(t.ID), t.Type, im.ID, im.Foot, s.EffectivePriority(t), s.now)
	if err != nil {
		return fmt.Errorf("rtsys: place task %d on %s: %w", t.ID, dev.Name(), err)
	}
	s.metrics.TotalWait += s.now - t.WaitingSince
	s.met.waitMicros.Observe(int64(s.now - t.WaitingSince))
	t.Impl = im.ID
	t.Dev = dev.Name()
	s.setState(t, Configuring, "place")
	t.ReadyAt = pl.Ready + fetch
	t.ConfigCost = t.ReadyAt - s.now
	t.ConfigRetries = 0
	s.devSync()
	return nil
}

// Preempt evicts a running or configuring task from its device; it
// returns to the wait pool with its preemption count bumped ("it is
// possible that the best matching implementation is not currently
// feasible without preempting other active (hardware) tasks", §2).
func (s *System) Preempt(t *Task) error {
	if t.State != Running && t.State != Configuring {
		return &TransitionError{Task: t.ID, From: t.State, Event: "preempt"}
	}
	dev, err := s.deviceByName(t.Dev)
	if err != nil {
		return err
	}
	if err := dev.Remove(int(t.ID)); err != nil {
		return fmt.Errorf("rtsys: preempt task %d: %w", t.ID, err)
	}
	s.setState(t, Preempted, "preempt")
	t.Dev = ""
	t.WaitingSince = s.now
	t.Preemptions++
	s.metrics.Preemptions++
	s.devSync()
	return nil
}

// Complete finishes a task and releases its device capacity. Failed
// tasks may be completed too (the application gives up on them); their
// capacity was already released when the fault hit.
func (s *System) Complete(t *Task) error {
	switch t.State {
	case Running, Configuring, Recovering:
		dev, err := s.deviceByName(t.Dev)
		if err != nil {
			return err
		}
		if err := dev.Remove(int(t.ID)); err != nil {
			return fmt.Errorf("rtsys: complete task %d: %w", t.ID, err)
		}
	case Pending, Preempted:
		s.metrics.TotalWait += s.now - t.WaitingSince
		s.met.waitMicros.Observe(int64(s.now - t.WaitingSince))
	case Failed:
		// Nothing to release.
	default:
		return &TransitionError{Task: t.ID, From: t.State, Event: "complete"}
	}
	s.setState(t, Done, "complete")
	t.Finished = s.now
	s.metrics.Completed++
	s.devSync()
	return nil
}

// AdvanceTo moves the clock forward and resolves Configuring→Running
// and Recovering→Configuring(→Running) transitions whose ready/retry
// times have passed.
func (s *System) AdvanceTo(t device.Micros) error {
	if t < s.now {
		return fmt.Errorf("rtsys: cannot rewind clock from %d to %d", s.now, t)
	}
	s.now = t
	// Resolve in task-ID order, not map order: same-tick transitions must
	// land in the trace ring identically on every replay.
	for _, task := range s.Tasks() {
		if task.State == Recovering && task.NextRetryAt <= s.now {
			// The retried configuration re-streams the image from
			// the repository at the original cost.
			s.setState(task, Configuring, "retry")
			task.ReadyAt = task.NextRetryAt + task.ConfigCost
			s.metrics.Retries++
		}
		if task.State == Configuring && task.ReadyAt <= s.now {
			s.setState(task, Running, "run")
			task.Started = task.ReadyAt
			s.metrics.TotalConfig += task.ReadyAt - task.Created
			s.met.configMicros.Observe(int64(task.ConfigCost))
		}
	}
	return nil
}

// Advance moves the clock forward by dt.
func (s *System) Advance(dt device.Micros) error { return s.AdvanceTo(s.now + dt) }

// PowerMW returns the platform's current total power.
func (s *System) PowerMW() int {
	p := 0
	for _, d := range s.devices {
		p += d.PowerMW()
	}
	return p
}

// --- Fault path -------------------------------------------------------

// backoff returns the bounded exponential backoff for the given attempt
// number (1-based): RetryBase << (attempt-1), capped at RetryCeil.
func (s *System) backoff(attempt int) device.Micros {
	d := s.RetryBase
	if d == 0 {
		d = 1
	}
	for i := 1; i < attempt; i++ {
		d <<= 1
		if d >= s.RetryCeil && s.RetryCeil > 0 {
			return s.RetryCeil
		}
	}
	if s.RetryCeil > 0 && d > s.RetryCeil {
		d = s.RetryCeil
	}
	return d
}

// ConfigError injects a transient configuration error into a Configuring
// task: the bitstream/opcode transfer was corrupted and must be retried.
// While retry budget remains the task holds its placement and moves to
// Recovering with a bounded exponential backoff; once the budget is
// exhausted the placement is released and the task is marked Failed
// (callers re-queue it through Requeue or the allocation layer's
// degrade-and-retry policy).
func (s *System) ConfigError(t *Task) error {
	if t.State != Configuring {
		return &TransitionError{Task: t.ID, From: t.State, Event: "config-error"}
	}
	s.metrics.ConfigErrors++
	t.ConfigRetries++
	if t.ConfigRetries > s.RetryLimit {
		return s.failPlacement(t)
	}
	s.setState(t, Recovering, "config-error")
	t.NextRetryAt = s.now + s.backoff(t.ConfigRetries)
	return nil
}

// SEU injects a single-event upset into a Running task: the configuration
// memory of its region (or its opcode image) is corrupted and the task
// must be re-configured in place — scrubbing. The placement is kept; the
// task re-enters the retry path with the same bounded backoff.
func (s *System) SEU(t *Task) error {
	if t.State != Running {
		return &TransitionError{Task: t.ID, From: t.State, Event: "seu"}
	}
	s.metrics.SEUs++
	t.ConfigRetries++
	if t.ConfigRetries > s.RetryLimit {
		return s.failPlacement(t)
	}
	s.setState(t, Recovering, "seu")
	t.NextRetryAt = s.now + s.backoff(t.ConfigRetries)
	return nil
}

// failPlacement releases a task's device capacity and marks it Failed.
func (s *System) failPlacement(t *Task) error {
	if t.Dev != "" {
		dev, err := s.deviceByName(t.Dev)
		if err != nil {
			return err
		}
		if err := dev.Remove(int(t.ID)); err != nil {
			return fmt.Errorf("rtsys: fail task %d: %w", t.ID, err)
		}
	}
	s.setState(t, Failed, "fail")
	t.Dev = ""
	s.devSync()
	return nil
}

// FailDevice marks a device permanently failed. Every task placed on it
// is stranded: marked Failed, counted, and automatically re-queued to
// Pending so the allocation layer can negotiate an alternative. The
// stranded tasks are returned sorted by ID.
func (s *System) FailDevice(id device.ID) ([]*Task, error) {
	dev, err := s.deviceByName(id)
	if err != nil {
		return nil, err
	}
	s.metrics.DeviceFaults++
	s.met.deviceFaults.Inc()
	var out []*Task
	for _, pl := range dev.Fail() {
		if t := s.strand(pl.Task); t != nil {
			out = append(out, t)
		}
	}
	s.devSync()
	return out, nil
}

// FailSlot marks one slot of an FPGA permanently failed. The stranded
// task, if the slot was occupied, is failed and re-queued like in
// FailDevice and returned (nil for an empty slot).
func (s *System) FailSlot(id device.ID, slot int) (*Task, error) {
	dev, err := s.deviceByName(id)
	if err != nil {
		return nil, err
	}
	fpga, ok := dev.(*device.FPGA)
	if !ok {
		return nil, fmt.Errorf("rtsys: %s is not an FPGA, has no slots", id)
	}
	pl, err := fpga.FailSlot(slot)
	if err != nil {
		return nil, err
	}
	s.metrics.SlotFaults++
	s.met.slotFaults.Inc()
	defer s.devSync()
	if pl == nil {
		return nil, nil
	}
	return s.strand(pl.Task), nil
}

// strand records a fault-stranded task and re-queues it.
func (s *System) strand(taskHandle int) *Task {
	t, ok := s.tasks[TaskID(taskHandle)]
	if !ok {
		return nil
	}
	t.Faults++
	s.metrics.Stranded++
	s.setState(t, Failed, "strand")
	t.Dev = ""
	_ = s.Requeue(t)
	return t
}

// Requeue returns a Failed task to the wait pool: it becomes Pending
// again (its aged-priority clock restarting now) and will re-bid for
// capacity through the allocation layer.
func (s *System) Requeue(t *Task) error {
	if t.State != Failed {
		return &TransitionError{Task: t.ID, From: t.State, Event: "requeue"}
	}
	s.setState(t, Pending, "requeue")
	t.Dev = ""
	t.WaitingSince = s.now
	t.ConfigRetries = 0
	s.metrics.Requeued++
	return nil
}

func (s *System) deviceByName(id device.ID) (device.Device, error) {
	for _, d := range s.devices {
		if d.Name() == id {
			return d, nil
		}
	}
	return nil, fmt.Errorf("rtsys: unknown device %q", id)
}
