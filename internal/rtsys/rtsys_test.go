package rtsys

import (
	"testing"

	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
)

// paperPlatform builds a small fig. 1 style platform: one two-slot FPGA,
// one DSP, one GPP, and a repository filled from the paper case base.
func paperPlatform(t *testing.T) (*System, *casebase.CaseBase) {
	t.Helper()
	cb, err := casebase.PaperCaseBase()
	if err != nil {
		t.Fatal(err)
	}
	repo := device.NewRepository(20)
	if err := repo.PopulateFromCaseBase(cb); err != nil {
		t.Fatal(err)
	}
	fpga := device.NewFPGA("fpga0", []device.Slot{
		{Slices: 1500, BRAMs: 8, Multipliers: 16},
		{Slices: 1500, BRAMs: 8, Multipliers: 16},
	}, 66)
	dsp := device.NewProcessor("dsp0", casebase.TargetDSP, 1000, 128*1024)
	gpp := device.NewProcessor("gpp0", casebase.TargetGPP, 1000, 256*1024)
	return NewSystem(repo, fpga, dsp, gpp), cb
}

func implOf(t *testing.T, cb *casebase.CaseBase, ty casebase.TypeID, id casebase.ImplID) *casebase.Implementation {
	t.Helper()
	ft, ok := cb.Type(ty)
	if !ok {
		t.Fatalf("type %d missing", ty)
	}
	im, ok := ft.Impl(id)
	if !ok {
		t.Fatalf("impl %d missing", id)
	}
	return im
}

func TestTaskLifecycle(t *testing.T) {
	s, cb := paperPlatform(t)
	task := s.CreateTask("mp3", casebase.TypeFIREqualizer, 5)
	if task.State != Pending {
		t.Fatal("new tasks are pending")
	}
	im := implOf(t, cb, casebase.TypeFIREqualizer, 2) // DSP variant
	dsp := s.DevicesByKind(casebase.TargetDSP)[0]
	if err := s.Place(task, dsp, im); err != nil {
		t.Fatal(err)
	}
	if task.State != Configuring {
		t.Fatalf("state = %v", task.State)
	}
	// 18 kB opcode: fetch 18*1024/20 ≈ 922us, load 18 KiB × 50us/KiB = 900us.
	if task.ReadyAt == 0 {
		t.Fatal("ready time not set")
	}
	if err := s.AdvanceTo(task.ReadyAt); err != nil {
		t.Fatal(err)
	}
	if task.State != Running {
		t.Fatalf("state after ready = %v", task.State)
	}
	if err := s.Complete(task); err != nil {
		t.Fatal(err)
	}
	if task.State != Done {
		t.Fatal("complete must finish the task")
	}
	m := s.Metrics()
	if m.Created != 1 || m.Completed != 1 {
		t.Errorf("metrics = %+v", m)
	}
	// Device capacity returned.
	if !dsp.CanPlace(im.Foot) {
		t.Error("capacity not released")
	}
}

func TestPlaceRejectsWrongTarget(t *testing.T) {
	s, cb := paperPlatform(t)
	task := s.CreateTask("mp3", casebase.TypeFIREqualizer, 5)
	im := implOf(t, cb, casebase.TypeFIREqualizer, 1) // FPGA variant
	dsp := s.DevicesByKind(casebase.TargetDSP)[0]
	if err := s.Place(task, dsp, im); err == nil {
		t.Error("FPGA bitstream on a DSP must fail")
	}
}

func TestPlaceStateGuards(t *testing.T) {
	s, cb := paperPlatform(t)
	task := s.CreateTask("a", casebase.TypeFIREqualizer, 5)
	im := implOf(t, cb, casebase.TypeFIREqualizer, 2)
	dsp := s.DevicesByKind(casebase.TargetDSP)[0]
	if err := s.Place(task, dsp, im); err != nil {
		t.Fatal(err)
	}
	if err := s.Place(task, dsp, im); err == nil {
		t.Error("double place must fail")
	}
	if err := s.Complete(task); err != nil {
		t.Fatal(err)
	}
	if err := s.Complete(task); err == nil {
		t.Error("double complete must fail")
	}
}

func TestPreemption(t *testing.T) {
	s, cb := paperPlatform(t)
	task := s.CreateTask("video", casebase.TypeFIREqualizer, 3)
	im := implOf(t, cb, casebase.TypeFIREqualizer, 1) // FPGA
	fpga := s.DevicesByKind(casebase.TargetFPGA)[0]
	if err := s.Place(task, fpga, im); err != nil {
		t.Fatal(err)
	}
	if err := s.AdvanceTo(task.ReadyAt); err != nil {
		t.Fatal(err)
	}
	if err := s.Preempt(task); err != nil {
		t.Fatal(err)
	}
	if task.State != Preempted || task.Dev != "" || task.Preemptions != 1 {
		t.Errorf("task after preempt = %+v", task)
	}
	if s.Metrics().Preemptions != 1 {
		t.Error("preemption metric")
	}
	// Preempted tasks can be re-placed.
	if err := s.Place(task, fpga, im); err != nil {
		t.Fatalf("re-place after preemption: %v", err)
	}
	// Pending tasks cannot be preempted.
	other := s.CreateTask("x", casebase.TypeFIREqualizer, 1)
	if err := s.Preempt(other); err == nil {
		t.Error("preempting a pending task must fail")
	}
}

func TestAdaptivePriorityAging(t *testing.T) {
	s, cb := paperPlatform(t)
	low := s.CreateTask("bg", casebase.TypeFIREqualizer, 1)
	high := s.CreateTask("fg", casebase.TypeFIREqualizer, 5)
	// The high-priority task runs; the low one starves in the wait
	// pool. Running tasks do not age.
	im := implOf(t, cb, casebase.TypeFIREqualizer, 2)
	if err := s.Place(high, s.DevicesByKind(casebase.TargetDSP)[0], im); err != nil {
		t.Fatal(err)
	}
	if s.EffectivePriority(low) >= s.EffectivePriority(high) {
		t.Fatal("base priorities must order initially")
	}
	// After 100 ms of waiting, the starved task gains 10 levels (1 per
	// 10 ms) and overtakes — the FPL'04 starvation guard.
	if err := s.Advance(100_000); err != nil {
		t.Fatal(err)
	}
	if s.EffectivePriority(low) != 1+10 {
		t.Errorf("low aged to %d, want 11", s.EffectivePriority(low))
	}
	if s.EffectivePriority(high) != 5 {
		t.Errorf("running task aged to %d, want base 5", s.EffectivePriority(high))
	}
	if s.EffectivePriority(low) <= s.EffectivePriority(high) {
		t.Error("starved task must overtake")
	}
	// Aging disabled.
	s.AgingDenominator = 0
	if s.EffectivePriority(low) != 1 {
		t.Error("disabled aging must return base priority")
	}
}

func TestClockGuards(t *testing.T) {
	s, _ := paperPlatform(t)
	if err := s.AdvanceTo(100); err != nil {
		t.Fatal(err)
	}
	if err := s.AdvanceTo(50); err == nil {
		t.Error("rewinding must fail")
	}
	if s.Now() != 100 {
		t.Error("failed rewind must not move clock")
	}
}

func TestPowerAccounting(t *testing.T) {
	s, cb := paperPlatform(t)
	base := s.PowerMW()
	task := s.CreateTask("mp3", casebase.TypeFIREqualizer, 5)
	im := implOf(t, cb, casebase.TypeFIREqualizer, 2) // 220 mW
	if err := s.Place(task, s.DevicesByKind(casebase.TargetDSP)[0], im); err != nil {
		t.Fatal(err)
	}
	if s.PowerMW() != base+220 {
		t.Errorf("power = %d, want %d", s.PowerMW(), base+220)
	}
}

func TestTaskListingAndLookup(t *testing.T) {
	s, _ := paperPlatform(t)
	t2 := s.CreateTask("b", 1, 0)
	t1 := s.CreateTask("a", 1, 0)
	_ = t1
	ts := s.Tasks()
	if len(ts) != 2 || ts[0].ID >= ts[1].ID {
		t.Errorf("tasks = %+v", ts)
	}
	if got, ok := s.Task(t2.ID); !ok || got != t2 {
		t.Error("Task lookup broken")
	}
	if _, ok := s.Task(999); ok {
		t.Error("unknown task must miss")
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{
		Pending: "pending", Configuring: "configuring", Running: "running",
		Preempted: "preempted", Done: "done", Failed: "failed",
		Recovering: "recovering", State(200): "State(200)",
	} {
		if st.String() != want {
			t.Errorf("%d → %q", st, st.String())
		}
	}
}
