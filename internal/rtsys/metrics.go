package rtsys

import (
	"fmt"

	"qosalloc/internal/device"
	"qosalloc/internal/obs"
)

// transition event names, the label values of
// qos_rtsys_transitions_total. Pre-enumerated so the bundle can create
// every counter up front and the hot path stays allocation-free.
var transitionEvents = []string{
	"create", "place", "run", "preempt", "complete",
	"config-error", "seu", "retry", "fail", "strand", "requeue",
}

// rtMetrics is the run-time system's observability bundle. Like the
// allocation manager's, a dangling bundle (nil registry) backs every
// uninstrumented system so transition sites never branch; only trace
// formatting checks enabled.
type rtMetrics struct {
	enabled bool

	transitions map[string]*obs.Counter
	// tasksByState are queue-depth gauges, one per lifecycle state,
	// maintained incrementally on every transition.
	tasksByState [Recovering + 1]*obs.Gauge

	deviceFaults *obs.Counter
	slotFaults   *obs.Counter

	// waitMicros observes Pending/Preempted span lengths as they end —
	// the queueing delay the adaptive-priority aging fights.
	waitMicros *obs.Histogram
	// configMicros observes the fetch+configuration latency of each
	// placement that reached Running.
	configMicros *obs.Histogram

	trace *obs.Ring
}

func newRTMetrics(reg *obs.Registry) *rtMetrics {
	m := &rtMetrics{
		enabled:     reg != nil,
		transitions: make(map[string]*obs.Counter, len(transitionEvents)),
		deviceFaults: reg.Counter("qos_rtsys_device_faults_total",
			"whole-device permanent failures"),
		slotFaults: reg.Counter("qos_rtsys_slot_faults_total",
			"FPGA slot permanent failures"),
		waitMicros: reg.Histogram("qos_rtsys_wait_micros",
			"task wait-span lengths (Pending/Preempted) in sim micros", obs.LatencyBucketsMicros),
		configMicros: reg.Histogram("qos_rtsys_config_micros",
			"fetch+configuration latency of completed configurations in sim micros", obs.LatencyBucketsMicros),
		trace: reg.Ring("qos_rtsys_trace", "task state-transition trace (sim micros)", 512),
	}
	for _, ev := range transitionEvents {
		m.transitions[ev] = reg.Counter(
			fmt.Sprintf("qos_rtsys_transitions_total{event=%q}", ev),
			"task lifecycle transitions by event")
	}
	for st := Pending; st <= Recovering; st++ {
		m.tasksByState[st] = reg.Gauge(
			fmt.Sprintf("qos_rtsys_tasks{state=%q}", st.String()),
			"tasks currently in each lifecycle state")
	}
	return m
}

// setState moves a task to a new lifecycle state, keeping the queue-depth
// gauges, the transition counter and the trace ring coherent. Every
// t.State assignment in the package goes through here.
func (s *System) setState(t *Task, to State, event string) {
	from := t.State
	s.met.tasksByState[from].Add(-1)
	s.met.tasksByState[to].Add(1)
	t.State = to
	if c, ok := s.met.transitions[event]; ok {
		c.Inc()
	}
	if s.met.enabled {
		s.met.trace.Append(obs.Event{
			At: int64(s.now), Kind: event,
			Detail: fmt.Sprintf("task %d: %v -> %v", t.ID, from, to),
		})
	}
}

// devSync refreshes the device-layer gauges after a mutating operation.
func (s *System) devSync() {
	if s.devObs.Enabled() {
		s.devObs.Sync(s.now, s.devices)
	}
}

// Instrument registers the run-time system's metric set — task lifecycle
// transitions, queue depths, wait/configuration latency histograms, the
// transition trace ring — and the per-device health/occupancy gauges on
// reg, then primes the device gauges with the current state.
func (s *System) Instrument(reg *obs.Registry) {
	s.met = newRTMetrics(reg)
	s.devObs = device.NewObserver(reg)
	// Prime queue depths for tasks that predate instrumentation.
	var depth [Recovering + 1]int64
	for _, t := range s.tasks {
		depth[t.State]++
	}
	for st := Pending; st <= Recovering; st++ {
		s.met.tasksByState[st].Set(depth[st])
	}
	s.devSync()
}
