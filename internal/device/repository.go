package device

import (
	"fmt"

	"qosalloc/internal/casebase"
)

// Repository models the fig. 1 "Opcode/Bitstream-Repository (FLASH)":
// every available function realization, addressed by its unique
// (function type, implementation) identifier, stores its configuration
// data — "since every available function realization has a unique
// identifier it will be possible to retrieve the function's corresponding
// configuration data (CPU opcode / FPGA bitstream) from a global function
// repository for reconfiguration" (§3).
type Repository struct {
	// BytesPerMicro is the FLASH streaming bandwidth (bytes per
	// microsecond; 20 ≈ a 20 MB/s parallel NOR FLASH).
	BytesPerMicro int

	blobs map[repoKey]Blob
}

type repoKey struct {
	Type casebase.TypeID
	Impl casebase.ImplID
}

// Blob is one stored configuration image. Data may be nil when only the
// size matters (capacity planning and timing).
type Blob struct {
	Target casebase.Target
	Bytes  int
	Data   []byte
}

// NewRepository returns an empty repository with the given bandwidth.
func NewRepository(bytesPerMicro int) *Repository {
	return &Repository{BytesPerMicro: bytesPerMicro, blobs: make(map[repoKey]Blob)}
}

// Store registers configuration data for an implementation.
func (r *Repository) Store(ty casebase.TypeID, im casebase.ImplID, b Blob) error {
	k := repoKey{ty, im}
	if _, dup := r.blobs[k]; dup {
		return fmt.Errorf("device: repository already holds (%d, %d)", ty, im)
	}
	if b.Data != nil && b.Bytes != len(b.Data) {
		return fmt.Errorf("device: blob size %d disagrees with data length %d", b.Bytes, len(b.Data))
	}
	r.blobs[k] = b
	return nil
}

// Lookup returns the blob for an implementation.
func (r *Repository) Lookup(ty casebase.TypeID, im casebase.ImplID) (Blob, bool) {
	b, ok := r.blobs[repoKey{ty, im}]
	return b, ok
}

// FetchTime returns how long streaming the blob out of FLASH takes.
func (r *Repository) FetchTime(ty casebase.TypeID, im casebase.ImplID) (Micros, error) {
	b, ok := r.blobs[repoKey{ty, im}]
	if !ok {
		return 0, fmt.Errorf("device: repository has no entry (%d, %d)", ty, im)
	}
	if r.BytesPerMicro <= 0 {
		return 0, nil
	}
	return Micros((b.Bytes + r.BytesPerMicro - 1) / r.BytesPerMicro), nil
}

// Len returns the number of stored blobs.
func (r *Repository) Len() int { return len(r.blobs) }

// TotalBytes returns the repository's total storage demand.
func (r *Repository) TotalBytes() int {
	n := 0
	for _, b := range r.blobs {
		n += b.Bytes
	}
	return n
}

// PopulateFromCaseBase registers a blob for every implementation in the
// case base, sized by its footprint's ConfigBytes — the design-time step
// that fills the FLASH with bitstreams and opcode images.
func (r *Repository) PopulateFromCaseBase(cb *casebase.CaseBase) error {
	for _, ft := range cb.Types() {
		for i := range ft.Impls {
			im := &ft.Impls[i]
			if err := r.Store(ft.ID, im.ID, Blob{Target: im.Target, Bytes: im.Foot.ConfigBytes}); err != nil {
				return err
			}
		}
	}
	return nil
}
