package device

import (
	"testing"

	"qosalloc/internal/casebase"
)

func twoSlotFPGA() *FPGA {
	return NewFPGA("fpga0", []Slot{
		{Slices: 1500, BRAMs: 8, Multipliers: 16},
		{Slices: 1500, BRAMs: 8, Multipliers: 16},
	}, 66)
}

func TestFPGAPlaceAndRemove(t *testing.T) {
	f := twoSlotFPGA()
	fp := casebase.Footprint{Slices: 900, BRAMs: 4, Multipliers: 8, PowerMW: 300, ConfigBytes: 66_000}
	if !f.CanPlace(fp) {
		t.Fatal("empty FPGA must accept a fitting footprint")
	}
	p, err := f.Place(1, 1, 1, fp, 5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if p.Slot != 0 {
		t.Errorf("slot = %d, want 0 (first fit)", p.Slot)
	}
	// 66 kB over 66 B/us = 1000 us.
	if p.Ready != 2000 {
		t.Errorf("ready = %d, want 2000 (1000 + 1000us reconfig)", p.Ready)
	}
	if f.FreeSlots() != 1 {
		t.Errorf("free slots = %d", f.FreeSlots())
	}
	if f.PowerMW() != 300 {
		t.Errorf("power = %d", f.PowerMW())
	}
	if err := f.Remove(1); err != nil {
		t.Fatal(err)
	}
	if f.FreeSlots() != 2 {
		t.Error("remove must free the slot")
	}
	if err := f.Remove(1); err == nil {
		t.Error("double remove must fail")
	}
}

func TestFPGARejectsOversizeAndFull(t *testing.T) {
	f := twoSlotFPGA()
	big := casebase.Footprint{Slices: 99999}
	if f.CanPlace(big) {
		t.Error("oversize footprint must not fit")
	}
	if _, err := f.Place(1, 1, 1, big, 0, 0); err == nil {
		t.Error("oversize place must fail")
	}
	small := casebase.Footprint{Slices: 100}
	mustPlace(t, f, 1, small, 0)
	mustPlace(t, f, 2, small, 0)
	if f.CanPlace(small) {
		t.Error("full FPGA must reject")
	}
	if _, err := f.Place(3, 1, 1, small, 0, 0); err == nil {
		t.Error("placing on a full FPGA must fail")
	}
	if _, err := f.Place(2, 1, 1, small, 0, 0); err == nil {
		t.Error("duplicate task placement must fail")
	}
}

func mustPlace(t *testing.T, d Device, task int, fp casebase.Footprint, now Micros) *Placement {
	t.Helper()
	p, err := d.Place(task, 1, casebase.ImplID(task), fp, 0, now)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFPGAReconfigPortSerializes(t *testing.T) {
	f := twoSlotFPGA()
	fp := casebase.Footprint{Slices: 100, ConfigBytes: 6600} // 100 us
	a := mustPlace(t, f, 1, fp, 0)
	b := mustPlace(t, f, 2, fp, 0)
	if a.Ready != 100 {
		t.Errorf("first ready = %d", a.Ready)
	}
	if b.Ready != 200 {
		t.Errorf("second ready = %d, want 200 (port busy until 100)", b.Ready)
	}
}

func TestFPGAHeterogeneousSlots(t *testing.T) {
	f := NewFPGA("f", []Slot{
		{Slices: 200, BRAMs: 1, Multipliers: 0},
		{Slices: 2000, BRAMs: 8, Multipliers: 8},
	}, 66)
	needsMult := casebase.Footprint{Slices: 150, Multipliers: 2}
	p := mustPlace(t, f, 1, needsMult, 0)
	if p.Slot != 1 {
		t.Errorf("multiplier-hungry footprint landed in slot %d, want 1", p.Slot)
	}
}

func TestProcessorCapacity(t *testing.T) {
	p := NewProcessor("dsp0", casebase.TargetDSP, 1000, 64*1024)
	fp := casebase.Footprint{CPULoad: 450, MemBytes: 24 * 1024, PowerMW: 220, ConfigBytes: 2048}
	pl := mustPlace(t, p, 1, fp, 0)
	if pl.Slot != -1 {
		t.Error("processors have no slots")
	}
	if pl.Ready != 100 { // 2 KiB × 50us
		t.Errorf("ready = %d, want 100", pl.Ready)
	}
	if p.Load() != 450 {
		t.Errorf("load = %d", p.Load())
	}
	mustPlace(t, p, 2, fp, 0)
	if p.CanPlace(fp) {
		t.Error("third 450-permille task must not fit a 1000-permille budget")
	}
	if _, err := p.Place(3, 1, 3, fp, 0, 0); err == nil {
		t.Error("over-capacity place must fail")
	}
	if err := p.Remove(1); err != nil {
		t.Fatal(err)
	}
	if !p.CanPlace(fp) {
		t.Error("capacity must return after removal")
	}
	if err := p.Remove(99); err == nil {
		t.Error("removing unknown task must fail")
	}
}

func TestProcessorMemoryBound(t *testing.T) {
	p := NewProcessor("gpp0", casebase.TargetGPP, 1000, 16*1024)
	fat := casebase.Footprint{CPULoad: 10, MemBytes: 32 * 1024}
	if p.CanPlace(fat) {
		t.Error("memory-bound footprint must be rejected")
	}
}

func TestPlacementsSortedAndPower(t *testing.T) {
	p := NewProcessor("gpp0", casebase.TargetGPP, 1000, 1<<20)
	p.StaticPowerMW = 50
	mustPlace(t, p, 3, casebase.Footprint{CPULoad: 1, PowerMW: 10}, 0)
	mustPlace(t, p, 1, casebase.Footprint{CPULoad: 1, PowerMW: 20}, 0)
	pls := p.Placements()
	if len(pls) != 2 || pls[0].Task != 1 || pls[1].Task != 3 {
		t.Errorf("placements = %+v", pls)
	}
	if p.PowerMW() != 80 {
		t.Errorf("power = %d, want 80", p.PowerMW())
	}
}

func TestDeviceKinds(t *testing.T) {
	if twoSlotFPGA().Kind() != casebase.TargetFPGA {
		t.Error("FPGA kind")
	}
	if NewProcessor("d", casebase.TargetDSP, 1, 1).Kind() != casebase.TargetDSP {
		t.Error("DSP kind")
	}
}

func TestRepository(t *testing.T) {
	r := NewRepository(20)
	if err := r.Store(1, 1, Blob{Target: casebase.TargetFPGA, Bytes: 2000}); err != nil {
		t.Fatal(err)
	}
	if err := r.Store(1, 1, Blob{Bytes: 5}); err == nil {
		t.Error("duplicate store must fail")
	}
	if err := r.Store(1, 2, Blob{Bytes: 3, Data: []byte{1, 2}}); err == nil {
		t.Error("size/data mismatch must fail")
	}
	b, ok := r.Lookup(1, 1)
	if !ok || b.Bytes != 2000 {
		t.Errorf("lookup = %+v, %v", b, ok)
	}
	ft, err := r.FetchTime(1, 1)
	if err != nil || ft != 100 {
		t.Errorf("fetch time = %d, %v (want 100us)", ft, err)
	}
	if _, err := r.FetchTime(9, 9); err == nil {
		t.Error("fetch of missing blob must fail")
	}
	if r.Len() != 1 || r.TotalBytes() != 2000 {
		t.Errorf("len=%d total=%d", r.Len(), r.TotalBytes())
	}
}

func TestRepositoryFromCaseBase(t *testing.T) {
	cb, err := casebase.PaperCaseBase()
	if err != nil {
		t.Fatal(err)
	}
	r := NewRepository(20)
	if err := r.PopulateFromCaseBase(cb); err != nil {
		t.Fatal(err)
	}
	if r.Len() != cb.NumImpls() {
		t.Errorf("repository holds %d blobs, want %d", r.Len(), cb.NumImpls())
	}
	// The paper's FPGA FIR equalizer is a 96 kB bitstream.
	b, ok := r.Lookup(casebase.TypeFIREqualizer, 1)
	if !ok || b.Bytes != 96*1024 {
		t.Errorf("FIR FPGA blob = %+v, %v", b, ok)
	}
}
