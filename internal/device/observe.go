package device

import (
	"fmt"

	"qosalloc/internal/obs"
)

// Observer publishes per-device gauges (health, occupancy, slot state)
// and a health-transition counter onto an obs registry. Devices are
// passive capacity models with no clock of their own, so the observer is
// pull-based: the run-time system calls Sync after every mutating
// operation (place, remove, fault), giving the gauges transaction-level
// freshness without touching the device hot paths themselves.
type Observer struct {
	reg  *obs.Registry
	prev map[ID]Health

	transitions *obs.Counter
	trace       *obs.Ring

	gauges map[ID]*devGauges
}

// devGauges is one device's labeled gauge series, registered together
// the first time Sync sees the device. Slot gauges exist only for
// FPGAs and the load gauge only for processors, so the exposition
// carries no meaningless series.
type devGauges struct {
	health    *obs.Gauge
	occupancy *obs.Gauge
	slotsFree *obs.Gauge
	slotsBad  *obs.Gauge
	load      *obs.Gauge
}

// NewObserver returns an observer publishing to reg. A nil registry
// yields an observer whose Sync is a no-op.
func NewObserver(reg *obs.Registry) *Observer {
	// Constructor fast-path, not an instrumentation branch: every
	// uninstrumented rtsys.System carries a zero observer, so skipping
	// the map allocations here keeps New cheap. Sync no-ops via Enabled.
	//qosvet:ignore obslint constructor fast-path for the uninstrumented zero observer
	if reg == nil {
		return &Observer{}
	}
	return &Observer{
		reg:  reg,
		prev: make(map[ID]Health),
		transitions: reg.Counter("qos_device_health_transitions_total",
			"device health-state changes observed"),
		trace:  reg.Ring("qos_device_trace", "device health-transition trace (sim micros)", 64),
		gauges: make(map[ID]*devGauges),
	}
}

// Enabled reports whether the observer publishes anywhere.
func (o *Observer) Enabled() bool { return o != nil && o.reg != nil }

// gaugesFor returns dev's gauge bundle, registering its series on
// first sight. Names are constant formats so the exposition surface is
// auditable (obslint's metric-name invariant).
func (o *Observer) gaugesFor(d Device) *devGauges {
	name := d.Name()
	if g, ok := o.gauges[name]; ok {
		return g
	}
	dev := string(name)
	g := &devGauges{
		health: o.reg.Gauge(fmt.Sprintf("qos_device_health{device=%q}", dev),
			"device health (0 healthy, 1 degraded, 2 failed)"),
		occupancy: o.reg.Gauge(fmt.Sprintf("qos_device_placements{device=%q}", dev),
			"live placements on the device"),
	}
	switch d.(type) {
	case *FPGA:
		g.slotsFree = o.reg.Gauge(fmt.Sprintf("qos_device_slots_free{device=%q}", dev),
			"unoccupied healthy FPGA slots")
		g.slotsBad = o.reg.Gauge(fmt.Sprintf("qos_device_slots_failed{device=%q}", dev),
			"permanently failed FPGA slots")
	case *Processor:
		g.load = o.reg.Gauge(fmt.Sprintf("qos_device_load_permille{device=%q}", dev),
			"committed processor load in permille")
	}
	o.gauges[name] = g
	return g
}

// Sync refreshes every gauge from the devices' current state and counts
// health transitions since the previous Sync. now timestamps trace
// events (simulation microseconds in deterministic runs).
func (o *Observer) Sync(now Micros, devs []Device) {
	if !o.Enabled() {
		return
	}
	for _, d := range devs {
		name := d.Name()
		h := d.Health()
		if prev, seen := o.prev[name]; seen && prev != h {
			o.transitions.Inc()
			o.trace.Append(obs.Event{
				At: int64(now), Kind: "health",
				Detail: fmt.Sprintf("%s: %v -> %v", name, prev, h),
			})
		}
		o.prev[name] = h
		g := o.gaugesFor(d)
		g.health.Set(int64(h))
		g.occupancy.Set(int64(len(d.Placements())))
		switch dd := d.(type) {
		case *FPGA:
			g.slotsFree.Set(int64(dd.FreeSlots()))
			g.slotsBad.Set(int64(dd.FailedSlots()))
		case *Processor:
			g.load.Set(int64(dd.Load()))
		}
	}
}
