package device

import (
	"fmt"

	"qosalloc/internal/obs"
)

// Observer publishes per-device gauges (health, occupancy, slot state)
// and a health-transition counter onto an obs registry. Devices are
// passive capacity models with no clock of their own, so the observer is
// pull-based: the run-time system calls Sync after every mutating
// operation (place, remove, fault), giving the gauges transaction-level
// freshness without touching the device hot paths themselves.
type Observer struct {
	reg  *obs.Registry
	prev map[ID]Health

	transitions *obs.Counter
	trace       *obs.Ring

	health    map[ID]*obs.Gauge
	occupancy map[ID]*obs.Gauge
	slotsFree map[ID]*obs.Gauge
	slotsBad  map[ID]*obs.Gauge
	load      map[ID]*obs.Gauge
}

// NewObserver returns an observer publishing to reg. A nil registry
// yields an observer whose Sync is a no-op.
func NewObserver(reg *obs.Registry) *Observer {
	if reg == nil {
		return &Observer{}
	}
	return &Observer{
		reg:  reg,
		prev: make(map[ID]Health),
		transitions: reg.Counter("qos_device_health_transitions_total",
			"device health-state changes observed"),
		trace:     reg.Ring("qos_device_trace", "device health-transition trace (sim micros)", 64),
		health:    make(map[ID]*obs.Gauge),
		occupancy: make(map[ID]*obs.Gauge),
		slotsFree: make(map[ID]*obs.Gauge),
		slotsBad:  make(map[ID]*obs.Gauge),
		load:      make(map[ID]*obs.Gauge),
	}
}

// Enabled reports whether the observer publishes anywhere.
func (o *Observer) Enabled() bool { return o != nil && o.reg != nil }

func (o *Observer) gauge(m map[ID]*obs.Gauge, metric string, dev ID, help string) *obs.Gauge {
	g, ok := m[dev]
	if !ok {
		g = o.reg.Gauge(fmt.Sprintf("%s{device=%q}", metric, string(dev)), help)
		m[dev] = g
	}
	return g
}

// Sync refreshes every gauge from the devices' current state and counts
// health transitions since the previous Sync. now timestamps trace
// events (simulation microseconds in deterministic runs).
func (o *Observer) Sync(now Micros, devs []Device) {
	if !o.Enabled() {
		return
	}
	for _, d := range devs {
		name := d.Name()
		h := d.Health()
		if prev, seen := o.prev[name]; seen && prev != h {
			o.transitions.Inc()
			o.trace.Append(obs.Event{
				At: int64(now), Kind: "health",
				Detail: fmt.Sprintf("%s: %v -> %v", name, prev, h),
			})
		}
		o.prev[name] = h
		o.gauge(o.health, "qos_device_health", name,
			"device health (0 healthy, 1 degraded, 2 failed)").Set(int64(h))
		o.gauge(o.occupancy, "qos_device_placements", name,
			"live placements on the device").Set(int64(len(d.Placements())))
		switch dd := d.(type) {
		case *FPGA:
			o.gauge(o.slotsFree, "qos_device_slots_free", name,
				"unoccupied healthy FPGA slots").Set(int64(dd.FreeSlots()))
			o.gauge(o.slotsBad, "qos_device_slots_failed", name,
				"permanently failed FPGA slots").Set(int64(dd.FailedSlots()))
		case *Processor:
			o.gauge(o.load, "qos_device_load_permille", name,
				"committed processor load in permille").Set(int64(dd.Load()))
		}
	}
}
