package device

import (
	"errors"
	"testing"

	"qosalloc/internal/casebase"
)

func TestHealthString(t *testing.T) {
	for h, want := range map[Health]string{
		Healthy: "healthy", Degraded: "degraded", Failed: "failed",
		Health(7): "Health(7)",
	} {
		if h.String() != want {
			t.Errorf("%d → %q, want %q", h, h.String(), want)
		}
	}
}

func TestFPGAHealthTransitions(t *testing.T) {
	f := NewFPGA("f", []Slot{
		{Slices: 1000}, {Slices: 1000}, {Slices: 1000},
	}, 66)
	if f.Health() != Healthy || f.FreeSlots() != 3 {
		t.Fatalf("fresh FPGA: %v, %d free", f.Health(), f.FreeSlots())
	}
	if _, err := f.FailSlot(0); err != nil {
		t.Fatal(err)
	}
	if f.Health() != Degraded || f.FreeSlots() != 2 || f.FailedSlots() != 1 {
		t.Errorf("after one slot: %v, %d free, %d failed", f.Health(), f.FreeSlots(), f.FailedSlots())
	}
	// A degraded FPGA still places into surviving slots — and never into
	// the failed one.
	foot := casebase.Footprint{Slices: 500, ConfigBytes: 1024}
	pl, err := f.Place(1, 1, 1, foot, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Slot == 0 {
		t.Error("placement landed in the failed slot")
	}
	for _, s := range []int{1, 2} {
		if _, err := f.FailSlot(s); err != nil {
			t.Fatal(err)
		}
	}
	if f.Health() != Failed || f.FreeSlots() != 0 {
		t.Errorf("all slots dead: %v, %d free", f.Health(), f.FreeSlots())
	}
	if f.CanPlace(foot) {
		t.Error("failed FPGA must refuse placements")
	}
	if _, err := f.Place(2, 1, 1, foot, 0, 0); !errors.Is(err, ErrDeviceFailed) {
		t.Errorf("place on failed FPGA: %v, want ErrDeviceFailed", err)
	}
	// Slotless FPGAs count as failed outright.
	if NewFPGA("empty", nil, 66).Health() != Failed {
		t.Error("slotless FPGA must report failed")
	}
}

func TestFPGAFailSlotReleasesStrandedPlacement(t *testing.T) {
	f := NewFPGA("f", []Slot{{Slices: 1000}, {Slices: 1000}}, 66)
	foot := casebase.Footprint{Slices: 500, PowerMW: 100, ConfigBytes: 1024}
	pl, err := f.Place(7, 1, 1, foot, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.FailSlot(pl.Slot)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Task != 7 {
		t.Fatalf("stranded = %+v", got)
	}
	if len(f.Placements()) != 0 || f.PowerMW() != 0 {
		t.Error("stranded placement not released")
	}
	// The task handle is gone: removing again errors.
	if err := f.Remove(7); err == nil {
		t.Error("stranded task should no longer be on the device")
	}
	if _, err := f.FailSlot(-1); err == nil {
		t.Error("negative slot must error")
	}
}

func TestFPGAFailStrandsEverything(t *testing.T) {
	f := NewFPGA("f", []Slot{{Slices: 1000}, {Slices: 1000}}, 66)
	foot := casebase.Footprint{Slices: 500, ConfigBytes: 1024}
	for task := 1; task <= 2; task++ {
		if _, err := f.Place(task, 1, 1, foot, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	stranded := f.Fail()
	if len(stranded) != 2 || stranded[0].Task != 1 || stranded[1].Task != 2 {
		t.Fatalf("stranded = %+v", stranded)
	}
	if f.Health() != Failed || len(f.Placements()) != 0 {
		t.Errorf("after Fail: %v, %d placements", f.Health(), len(f.Placements()))
	}
}

func TestProcessorHealth(t *testing.T) {
	p := NewProcessor("p", casebase.TargetDSP, 1000, 1<<20)
	if p.Health() != Healthy {
		t.Fatalf("fresh processor: %v", p.Health())
	}
	foot := casebase.Footprint{CPULoad: 300, MemBytes: 1024, PowerMW: 50, ConfigBytes: 1024}
	if _, err := p.Place(1, 1, 1, foot, 0, 0); err != nil {
		t.Fatal(err)
	}
	stranded := p.Fail()
	if len(stranded) != 1 || stranded[0].Task != 1 {
		t.Fatalf("stranded = %+v", stranded)
	}
	if p.Health() != Failed || p.Load() != 0 || p.PowerMW() != 0 {
		t.Errorf("after Fail: %v, load %d, power %d", p.Health(), p.Load(), p.PowerMW())
	}
	if p.CanPlace(foot) {
		t.Error("failed processor must refuse placements")
	}
	if _, err := p.Place(2, 1, 1, foot, 0, 0); !errors.Is(err, ErrDeviceFailed) {
		t.Errorf("place on failed processor: %v, want ErrDeviceFailed", err)
	}
}
