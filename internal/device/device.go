// Package device models the execution resources of the paper's fig. 1
// platform: run-time reconfigurable FPGAs with partially reconfigurable
// slots, DSPs, general-purpose processors, and the FLASH
// "Opcode/Bitstream-Repository" that feeds them. The allocation manager
// (package alloc) consults these models for its feasibility check —
// "checking the current system load and resource consumption state
// concerning the feasibility of a best matching implementation" (§2).
//
// Time is modeled in microseconds so reconfiguration latencies (tens of
// milliseconds for Virtex-II partial bitstreams) and task lifetimes
// compose in one integer timeline.
package device

import (
	"fmt"
	"sort"

	"qosalloc/internal/casebase"
)

// Micros is a time quantity in microseconds.
type Micros uint64

// ID names a device instance.
type ID string

// Placement is a live occupancy record: which implementation of which
// function type occupies which capacity, on behalf of which task.
type Placement struct {
	Task  int // task handle issued by the run-time system
	Type  casebase.TypeID
	Impl  casebase.ImplID
	Foot  casebase.Footprint
	Slot  int // FPGA slot index; -1 on processors
	Since Micros
	Ready Micros // when configuration completed / will complete
	Prio  int    // scheduling priority (higher = more important)
}

// Device is an execution resource that can host function
// implementations.
type Device interface {
	// Name returns the device instance name.
	Name() ID
	// Kind returns the implementation target class this device hosts.
	Kind() casebase.Target
	// CanPlace reports whether the footprint fits right now, without
	// preemption.
	CanPlace(f casebase.Footprint) bool
	// Place commits the footprint at time now and returns the
	// placement (with its Ready time). It fails when CanPlace would
	// be false.
	Place(task int, ty casebase.TypeID, im casebase.ImplID, f casebase.Footprint, prio int, now Micros) (*Placement, error)
	// Remove releases a placement by task handle.
	Remove(task int) error
	// Placements returns live placements, ordered by task handle.
	Placements() []*Placement
	// PowerMW returns current dynamic power: the sum over placements.
	PowerMW() int
}

// --- FPGA -------------------------------------------------------------

// Slot is one partially reconfigurable region of an FPGA, the unit of
// hardware-task placement in the paper's earlier run-time system [7].
type Slot struct {
	Slices      int
	BRAMs       int
	Multipliers int
}

// Fits reports whether a footprint fits the slot's resources.
func (s Slot) Fits(f casebase.Footprint) bool {
	return f.Slices <= s.Slices && f.BRAMs <= s.BRAMs && f.Multipliers <= s.Multipliers
}

// FPGA is a run-time reconfigurable device with uniform or heterogeneous
// slots and a single reconfiguration port: concurrent reconfigurations
// serialize, as on the Virtex-II ICAP.
type FPGA struct {
	name  ID
	slots []Slot
	// ConfigBytesPerMicro is the reconfiguration-port bandwidth
	// (bytes per microsecond; 66 ≈ the 8-bit ICAP at 66 MHz).
	ConfigBytesPerMicro int
	// StaticPowerMW is the idle power of the device.
	StaticPowerMW int

	occupied map[int]*Placement // slot index → placement
	byTask   map[int]*Placement
	portBusy Micros // reconfiguration port free-at time
}

// NewFPGA builds an FPGA with the given slots.
func NewFPGA(name ID, slots []Slot, configBytesPerMicro int) *FPGA {
	return &FPGA{
		name: name, slots: append([]Slot(nil), slots...),
		ConfigBytesPerMicro: configBytesPerMicro,
		occupied:            make(map[int]*Placement),
		byTask:              make(map[int]*Placement),
	}
}

// Name implements Device.
func (f *FPGA) Name() ID { return f.name }

// Kind implements Device.
func (f *FPGA) Kind() casebase.Target { return casebase.TargetFPGA }

// NumSlots returns the slot count.
func (f *FPGA) NumSlots() int { return len(f.slots) }

// FreeSlots returns how many slots are unoccupied.
func (f *FPGA) FreeSlots() int { return len(f.slots) - len(f.occupied) }

// findSlot returns the first free slot fitting the footprint.
func (f *FPGA) findSlot(fp casebase.Footprint) (int, bool) {
	for i, s := range f.slots {
		if _, busy := f.occupied[i]; busy {
			continue
		}
		if s.Fits(fp) {
			return i, true
		}
	}
	return 0, false
}

// CanPlace implements Device.
func (f *FPGA) CanPlace(fp casebase.Footprint) bool {
	_, ok := f.findSlot(fp)
	return ok
}

// ReconfigTime returns the partial-reconfiguration latency for a
// bitstream of the given size.
func (f *FPGA) ReconfigTime(configBytes int) Micros {
	if f.ConfigBytesPerMicro <= 0 {
		return 0
	}
	return Micros((configBytes + f.ConfigBytesPerMicro - 1) / f.ConfigBytesPerMicro)
}

// Place implements Device. The Ready time accounts for both the
// bitstream transfer and the port being busy with an earlier
// reconfiguration.
func (f *FPGA) Place(task int, ty casebase.TypeID, im casebase.ImplID, fp casebase.Footprint, prio int, now Micros) (*Placement, error) {
	if _, dup := f.byTask[task]; dup {
		return nil, fmt.Errorf("device: task %d already placed on %s", task, f.name)
	}
	slot, ok := f.findSlot(fp)
	if !ok {
		return nil, fmt.Errorf("device: no free slot on %s fits %d slices", f.name, fp.Slices)
	}
	start := now
	if f.portBusy > start {
		start = f.portBusy
	}
	ready := start + f.ReconfigTime(fp.ConfigBytes)
	f.portBusy = ready
	p := &Placement{
		Task: task, Type: ty, Impl: im, Foot: fp, Slot: slot,
		Since: now, Ready: ready, Prio: prio,
	}
	f.occupied[slot] = p
	f.byTask[task] = p
	return p, nil
}

// Remove implements Device.
func (f *FPGA) Remove(task int) error {
	p, ok := f.byTask[task]
	if !ok {
		return fmt.Errorf("device: task %d not on %s", task, f.name)
	}
	delete(f.byTask, task)
	delete(f.occupied, p.Slot)
	return nil
}

// Placements implements Device.
func (f *FPGA) Placements() []*Placement { return sortedPlacements(f.byTask) }

// PowerMW implements Device.
func (f *FPGA) PowerMW() int {
	p := f.StaticPowerMW
	for _, pl := range f.byTask {
		p += pl.Foot.PowerMW
	}
	return p
}

// --- Processor (DSP or GPP) -------------------------------------------

// Processor hosts software tasks against a CPU-load budget (permille)
// and a memory budget (bytes). DSPs and general-purpose processors share
// the model; Kind distinguishes them for target matching.
type Processor struct {
	name ID
	kind casebase.Target
	// LoadCapacity is the schedulable budget in permille (1000 = one
	// fully loaded core).
	LoadCapacity int
	// MemCapacity is available working memory in bytes.
	MemCapacity int
	// LoadTimePerKB is the task setup cost per KiB of opcode loaded
	// from the repository into local memory.
	LoadTimePerKB Micros
	// StaticPowerMW is the idle power of the device.
	StaticPowerMW int

	usedLoad int
	usedMem  int
	byTask   map[int]*Placement
}

// NewProcessor builds a processor device.
func NewProcessor(name ID, kind casebase.Target, loadCapacity, memCapacity int) *Processor {
	return &Processor{
		name: name, kind: kind,
		LoadCapacity: loadCapacity, MemCapacity: memCapacity,
		LoadTimePerKB: 50,
		byTask:        make(map[int]*Placement),
	}
}

// Name implements Device.
func (p *Processor) Name() ID { return p.name }

// Kind implements Device.
func (p *Processor) Kind() casebase.Target { return p.kind }

// Load returns the committed load in permille.
func (p *Processor) Load() int { return p.usedLoad }

// CanPlace implements Device.
func (p *Processor) CanPlace(f casebase.Footprint) bool {
	return p.usedLoad+f.CPULoad <= p.LoadCapacity && p.usedMem+f.MemBytes <= p.MemCapacity
}

// Place implements Device.
func (p *Processor) Place(task int, ty casebase.TypeID, im casebase.ImplID, f casebase.Footprint, prio int, now Micros) (*Placement, error) {
	if _, dup := p.byTask[task]; dup {
		return nil, fmt.Errorf("device: task %d already placed on %s", task, p.name)
	}
	if !p.CanPlace(f) {
		return nil, fmt.Errorf("device: %s lacks capacity (load %d+%d/%d, mem %d+%d/%d)",
			p.name, p.usedLoad, f.CPULoad, p.LoadCapacity, p.usedMem, f.MemBytes, p.MemCapacity)
	}
	ready := now + p.LoadTimePerKB*Micros((f.ConfigBytes+1023)/1024)
	pl := &Placement{
		Task: task, Type: ty, Impl: im, Foot: f, Slot: -1,
		Since: now, Ready: ready, Prio: prio,
	}
	p.usedLoad += f.CPULoad
	p.usedMem += f.MemBytes
	p.byTask[task] = pl
	return pl, nil
}

// Remove implements Device.
func (p *Processor) Remove(task int) error {
	pl, ok := p.byTask[task]
	if !ok {
		return fmt.Errorf("device: task %d not on %s", task, p.name)
	}
	p.usedLoad -= pl.Foot.CPULoad
	p.usedMem -= pl.Foot.MemBytes
	delete(p.byTask, task)
	return nil
}

// Placements implements Device.
func (p *Processor) Placements() []*Placement { return sortedPlacements(p.byTask) }

// PowerMW implements Device.
func (p *Processor) PowerMW() int {
	w := p.StaticPowerMW
	for _, pl := range p.byTask {
		w += pl.Foot.PowerMW
	}
	return w
}

func sortedPlacements(m map[int]*Placement) []*Placement {
	out := make([]*Placement, 0, len(m))
	for _, p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Task < out[j].Task })
	return out
}
