// Package device models the execution resources of the paper's fig. 1
// platform: run-time reconfigurable FPGAs with partially reconfigurable
// slots, DSPs, general-purpose processors, and the FLASH
// "Opcode/Bitstream-Repository" that feeds them. The allocation manager
// (package alloc) consults these models for its feasibility check —
// "checking the current system load and resource consumption state
// concerning the feasibility of a best matching implementation" (§2).
//
// Time is modeled in microseconds so reconfiguration latencies (tens of
// milliseconds for Virtex-II partial bitstreams) and task lifetimes
// compose in one integer timeline.
package device

import (
	"errors"
	"fmt"
	"sort"

	"qosalloc/internal/casebase"
)

// Micros is a time quantity in microseconds.
type Micros uint64

// ID names a device instance.
type ID string

// ErrDeviceFailed is the sentinel wrapped by placement errors on a
// failed (or fully degraded) device, so callers can `errors.Is` the
// fault path apart from ordinary capacity exhaustion.
var ErrDeviceFailed = errors.New("device failed")

// Health is a device's fault state. Faults are injected by the fault
// layer (package fault) and consulted by the allocation manager's
// degrade-and-retry policy.
type Health uint8

// Health states: a Healthy device has full capacity; a Degraded device
// lost part of it (failed FPGA slots) but still accepts placements; a
// Failed device accepts nothing.
const (
	Healthy Health = iota
	Degraded
	Failed
)

// String returns the health name.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("Health(%d)", uint8(h))
	}
}

// Placement is a live occupancy record: which implementation of which
// function type occupies which capacity, on behalf of which task.
type Placement struct {
	Task  int // task handle issued by the run-time system
	Type  casebase.TypeID
	Impl  casebase.ImplID
	Foot  casebase.Footprint
	Slot  int // FPGA slot index; -1 on processors
	Since Micros
	Ready Micros // when configuration completed / will complete
	Prio  int    // scheduling priority (higher = more important)
}

// Device is an execution resource that can host function
// implementations.
type Device interface {
	// Name returns the device instance name.
	Name() ID
	// Kind returns the implementation target class this device hosts.
	Kind() casebase.Target
	// CanPlace reports whether the footprint fits right now, without
	// preemption.
	CanPlace(f casebase.Footprint) bool
	// Place commits the footprint at time now and returns the
	// placement (with its Ready time). It fails when CanPlace would
	// be false.
	Place(task int, ty casebase.TypeID, im casebase.ImplID, f casebase.Footprint, prio int, now Micros) (*Placement, error)
	// Remove releases a placement by task handle.
	Remove(task int) error
	// Placements returns live placements, ordered by task handle.
	Placements() []*Placement
	// PowerMW returns current dynamic power: the sum over placements.
	PowerMW() int
	// Health reports the device's fault state.
	Health() Health
	// Fail marks the whole device permanently failed and returns the
	// placements stranded by the fault (capacity is released; the
	// run-time system re-queues the owning tasks).
	Fail() []*Placement
}

// --- FPGA -------------------------------------------------------------

// Slot is one partially reconfigurable region of an FPGA, the unit of
// hardware-task placement in the paper's earlier run-time system [7].
type Slot struct {
	Slices      int
	BRAMs       int
	Multipliers int
}

// Fits reports whether a footprint fits the slot's resources.
func (s Slot) Fits(f casebase.Footprint) bool {
	return f.Slices <= s.Slices && f.BRAMs <= s.BRAMs && f.Multipliers <= s.Multipliers
}

// FPGA is a run-time reconfigurable device with uniform or heterogeneous
// slots and a single reconfiguration port: concurrent reconfigurations
// serialize, as on the Virtex-II ICAP.
type FPGA struct {
	name  ID
	slots []Slot
	// ConfigBytesPerMicro is the reconfiguration-port bandwidth
	// (bytes per microsecond; 66 ≈ the 8-bit ICAP at 66 MHz).
	ConfigBytesPerMicro int
	// StaticPowerMW is the idle power of the device.
	StaticPowerMW int

	occupied map[int]*Placement // slot index → placement
	byTask   map[int]*Placement
	failed   map[int]bool // slot index → permanently failed
	portBusy Micros       // reconfiguration port free-at time
}

// NewFPGA builds an FPGA with the given slots.
func NewFPGA(name ID, slots []Slot, configBytesPerMicro int) *FPGA {
	return &FPGA{
		name: name, slots: append([]Slot(nil), slots...),
		ConfigBytesPerMicro: configBytesPerMicro,
		occupied:            make(map[int]*Placement),
		byTask:              make(map[int]*Placement),
		failed:              make(map[int]bool),
	}
}

// Name implements Device.
func (f *FPGA) Name() ID { return f.name }

// Kind implements Device.
func (f *FPGA) Kind() casebase.Target { return casebase.TargetFPGA }

// NumSlots returns the slot count.
func (f *FPGA) NumSlots() int { return len(f.slots) }

// FreeSlots returns how many slots are unoccupied and not failed.
func (f *FPGA) FreeSlots() int {
	free := 0
	for i := range f.slots {
		if !f.occupied0(i) && !f.failed[i] {
			free++
		}
	}
	return free
}

// FailedSlots returns how many slots are marked failed.
func (f *FPGA) FailedSlots() int { return len(f.failed) }

func (f *FPGA) occupied0(i int) bool { _, busy := f.occupied[i]; return busy }

// findSlot returns the first free, healthy slot fitting the footprint.
func (f *FPGA) findSlot(fp casebase.Footprint) (int, bool) {
	for i, s := range f.slots {
		if f.occupied0(i) || f.failed[i] {
			continue
		}
		if s.Fits(fp) {
			return i, true
		}
	}
	return 0, false
}

// CanPlace implements Device.
func (f *FPGA) CanPlace(fp casebase.Footprint) bool {
	_, ok := f.findSlot(fp)
	return ok
}

// ReconfigTime returns the partial-reconfiguration latency for a
// bitstream of the given size.
func (f *FPGA) ReconfigTime(configBytes int) Micros {
	if f.ConfigBytesPerMicro <= 0 {
		return 0
	}
	return Micros((configBytes + f.ConfigBytesPerMicro - 1) / f.ConfigBytesPerMicro)
}

// Place implements Device. The Ready time accounts for both the
// bitstream transfer and the port being busy with an earlier
// reconfiguration.
func (f *FPGA) Place(task int, ty casebase.TypeID, im casebase.ImplID, fp casebase.Footprint, prio int, now Micros) (*Placement, error) {
	if f.Health() == Failed {
		return nil, fmt.Errorf("device: %s: %w", f.name, ErrDeviceFailed)
	}
	if _, dup := f.byTask[task]; dup {
		return nil, fmt.Errorf("device: task %d already placed on %s", task, f.name)
	}
	slot, ok := f.findSlot(fp)
	if !ok {
		return nil, fmt.Errorf("device: no free slot on %s fits %d slices", f.name, fp.Slices)
	}
	start := now
	if f.portBusy > start {
		start = f.portBusy
	}
	ready := start + f.ReconfigTime(fp.ConfigBytes)
	f.portBusy = ready
	p := &Placement{
		Task: task, Type: ty, Impl: im, Foot: fp, Slot: slot,
		Since: now, Ready: ready, Prio: prio,
	}
	f.occupied[slot] = p
	f.byTask[task] = p
	return p, nil
}

// Remove implements Device.
func (f *FPGA) Remove(task int) error {
	p, ok := f.byTask[task]
	if !ok {
		return fmt.Errorf("device: task %d not on %s", task, f.name)
	}
	delete(f.byTask, task)
	delete(f.occupied, p.Slot)
	return nil
}

// Placements implements Device.
func (f *FPGA) Placements() []*Placement { return sortedPlacements(f.byTask) }

// Health implements Device: Failed when every slot is failed, Degraded
// when some are, Healthy otherwise.
func (f *FPGA) Health() Health {
	switch {
	case len(f.slots) == 0 || len(f.failed) == len(f.slots):
		return Failed
	case len(f.failed) > 0:
		return Degraded
	default:
		return Healthy
	}
}

// FailSlot marks one reconfigurable region permanently failed — a
// configuration-port defect or unrecoverable SEU in the region's static
// routing. The stranded placement, if any, is released and returned.
func (f *FPGA) FailSlot(slot int) (*Placement, error) {
	if slot < 0 || slot >= len(f.slots) {
		return nil, fmt.Errorf("device: %s has no slot %d", f.name, slot)
	}
	f.failed[slot] = true
	p, busy := f.occupied[slot]
	if !busy {
		return nil, nil
	}
	delete(f.occupied, slot)
	delete(f.byTask, p.Task)
	return p, nil
}

// Fail implements Device: every slot is marked failed and all stranded
// placements are released and returned.
func (f *FPGA) Fail() []*Placement {
	stranded := sortedPlacements(f.byTask)
	for i := range f.slots {
		f.failed[i] = true
	}
	f.occupied = make(map[int]*Placement)
	f.byTask = make(map[int]*Placement)
	return stranded
}

// PowerMW implements Device.
func (f *FPGA) PowerMW() int {
	p := f.StaticPowerMW
	for _, pl := range f.byTask {
		p += pl.Foot.PowerMW
	}
	return p
}

// --- Processor (DSP or GPP) -------------------------------------------

// Processor hosts software tasks against a CPU-load budget (permille)
// and a memory budget (bytes). DSPs and general-purpose processors share
// the model; Kind distinguishes them for target matching.
type Processor struct {
	name ID
	kind casebase.Target
	// LoadCapacity is the schedulable budget in permille (1000 = one
	// fully loaded core).
	LoadCapacity int
	// MemCapacity is available working memory in bytes.
	MemCapacity int
	// LoadTimePerKB is the task setup cost per KiB of opcode loaded
	// from the repository into local memory.
	LoadTimePerKB Micros
	// StaticPowerMW is the idle power of the device.
	StaticPowerMW int

	usedLoad int
	usedMem  int
	byTask   map[int]*Placement
	health   Health
}

// NewProcessor builds a processor device.
func NewProcessor(name ID, kind casebase.Target, loadCapacity, memCapacity int) *Processor {
	return &Processor{
		name: name, kind: kind,
		LoadCapacity: loadCapacity, MemCapacity: memCapacity,
		LoadTimePerKB: 50,
		byTask:        make(map[int]*Placement),
	}
}

// Name implements Device.
func (p *Processor) Name() ID { return p.name }

// Kind implements Device.
func (p *Processor) Kind() casebase.Target { return p.kind }

// Load returns the committed load in permille.
func (p *Processor) Load() int { return p.usedLoad }

// CanPlace implements Device.
func (p *Processor) CanPlace(f casebase.Footprint) bool {
	return p.health != Failed &&
		p.usedLoad+f.CPULoad <= p.LoadCapacity && p.usedMem+f.MemBytes <= p.MemCapacity
}

// Place implements Device.
func (p *Processor) Place(task int, ty casebase.TypeID, im casebase.ImplID, f casebase.Footprint, prio int, now Micros) (*Placement, error) {
	if p.health == Failed {
		return nil, fmt.Errorf("device: %s: %w", p.name, ErrDeviceFailed)
	}
	if _, dup := p.byTask[task]; dup {
		return nil, fmt.Errorf("device: task %d already placed on %s", task, p.name)
	}
	if !p.CanPlace(f) {
		return nil, fmt.Errorf("device: %s lacks capacity (load %d+%d/%d, mem %d+%d/%d)",
			p.name, p.usedLoad, f.CPULoad, p.LoadCapacity, p.usedMem, f.MemBytes, p.MemCapacity)
	}
	ready := now + p.LoadTimePerKB*Micros((f.ConfigBytes+1023)/1024)
	pl := &Placement{
		Task: task, Type: ty, Impl: im, Foot: f, Slot: -1,
		Since: now, Ready: ready, Prio: prio,
	}
	p.usedLoad += f.CPULoad
	p.usedMem += f.MemBytes
	p.byTask[task] = pl
	return pl, nil
}

// Remove implements Device.
func (p *Processor) Remove(task int) error {
	pl, ok := p.byTask[task]
	if !ok {
		return fmt.Errorf("device: task %d not on %s", task, p.name)
	}
	p.usedLoad -= pl.Foot.CPULoad
	p.usedMem -= pl.Foot.MemBytes
	delete(p.byTask, task)
	return nil
}

// Placements implements Device.
func (p *Processor) Placements() []*Placement { return sortedPlacements(p.byTask) }

// Health implements Device. Processors fail whole: there is no partial
// degradation analogue to losing an FPGA slot.
func (p *Processor) Health() Health { return p.health }

// Fail implements Device.
func (p *Processor) Fail() []*Placement {
	stranded := sortedPlacements(p.byTask)
	p.health = Failed
	p.usedLoad, p.usedMem = 0, 0
	p.byTask = make(map[int]*Placement)
	return stranded
}

// PowerMW implements Device.
func (p *Processor) PowerMW() int {
	w := p.StaticPowerMW
	for _, pl := range p.byTask {
		w += pl.Foot.PowerMW
	}
	return w
}

func sortedPlacements(m map[int]*Placement) []*Placement {
	out := make([]*Placement, 0, len(m))
	for _, p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Task < out[j].Task })
	return out
}
