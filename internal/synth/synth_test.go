package synth

import (
	"math"
	"strings"
	"testing"
)

func TestTableTwoReproduction(t *testing.T) {
	// Table 2: 441 CLB slices (3 %), 2 MULT18X18 (2 %), 2 BRAM (2 %),
	// 75 MHz on the XC2V3000.
	n := RetrievalUnitNetlist(13)
	r := Estimate(n, XC2V3000, VirtexII())
	if math.Abs(float64(r.Slices-441)) > 441*0.05 {
		t.Errorf("slices = %d, want 441 ± 5%%", r.Slices)
	}
	if r.BRAMs != 2 || r.Mults != 2 {
		t.Errorf("BRAMs=%d Mults=%d, want 2/2", r.BRAMs, r.Mults)
	}
	if math.Abs(r.FmaxMHz-75) > 5 {
		t.Errorf("fmax = %.1f MHz, want 75 ± 5", r.FmaxMHz)
	}
	if math.Round(r.UtilSlices()) != 3 {
		t.Errorf("slice utilization = %.1f %%, want 3 %%", r.UtilSlices())
	}
	if math.Round(r.UtilBRAMs()) != 2 || math.Round(r.UtilMults()) != 2 {
		t.Errorf("BRAM/MULT utilization = %.1f/%.1f %%, want 2/2",
			r.UtilBRAMs(), r.UtilMults())
	}
}

func TestRawBelowScaled(t *testing.T) {
	// Hand-written RTL would be substantially smaller than the
	// generated flow: the raw structural estimate must sit well below
	// the overhead-scaled one.
	n := RetrievalUnitNetlist(13)
	r := Estimate(n, XC2V3000, VirtexII())
	if r.RawSlices >= r.Slices {
		t.Errorf("raw %d should be below scaled %d", r.RawSlices, r.Slices)
	}
	if r.RawSlices < 100 {
		t.Errorf("raw %d implausibly small for this datapath", r.RawSlices)
	}
}

func TestNetlistBreakdownConsistent(t *testing.T) {
	n := RetrievalUnitNetlist(13)
	ffs, luts := 0, 0
	for _, it := range n.Items {
		ffs += it.FFs
		luts += it.LUTs
	}
	if ffs != n.FlipFlops || luts != n.LUT4s {
		t.Errorf("breakdown (%d FF, %d LUT) != totals (%d, %d)",
			ffs, luts, n.FlipFlops, n.LUT4s)
	}
	if n.FSMStates != 24 {
		t.Errorf("FSM states = %d", n.FSMStates)
	}
}

func TestAddressWidthScalesArea(t *testing.T) {
	small := Estimate(RetrievalUnitNetlist(10), XC2V3000, VirtexII())
	large := Estimate(RetrievalUnitNetlist(16), XC2V3000, VirtexII())
	if large.Slices <= small.Slices {
		t.Errorf("wider pointers must cost area: %d vs %d", large.Slices, small.Slices)
	}
}

func TestDeviceFit(t *testing.T) {
	// The unit fits even the smallest listed part with room to spare.
	r := Estimate(RetrievalUnitNetlist(13), XC2V1000, VirtexII())
	if r.UtilSlices() > 20 {
		t.Errorf("utilization on XC2V1000 = %.1f %%, implausibly high", r.UtilSlices())
	}
}

func TestReportString(t *testing.T) {
	r := Estimate(RetrievalUnitNetlist(13), XC2V3000, VirtexII())
	s := r.String()
	for _, want := range []string{"XC2V3000", "CLB-Slices", "MULT18X18s", "BRAMS(18Kbit)", "Max. Clock"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestFmaxCriticalPathSwitch(t *testing.T) {
	// With a slow BRAM and instant multiplier the comparator path must
	// become critical.
	tech := VirtexII()
	tech.TMult = 0.1
	tech.TClkToOut = 8
	_, crit := fmaxEstimate(tech)
	if crit != "BRAM→compare→FSM" {
		t.Errorf("critical path = %s", crit)
	}
	tech2 := VirtexII()
	tech2.TMult = 20
	_, crit2 := fmaxEstimate(tech2)
	if crit2 != "MULT→saturate→acc" {
		t.Errorf("critical path = %s", crit2)
	}
}

func TestNBestNetlistScalesLinearly(t *testing.T) {
	base := Estimate(RetrievalUnitNetlist(13), XC2V3000, VirtexII())
	n3 := Estimate(RetrievalUnitNetlistNBest(13, 3), XC2V3000, VirtexII())
	n8 := Estimate(RetrievalUnitNetlistNBest(13, 8), XC2V3000, VirtexII())
	if !(base.Slices < n3.Slices && n3.Slices < n8.Slices) {
		t.Errorf("area must grow with n: %d, %d, %d", base.Slices, n3.Slices, n8.Slices)
	}
	// The flip-flop register file dominates the cost: 3-best adds
	// roughly 40 %, 8-best roughly doubles the unit — a real finding
	// about the §5 extension (a BRAM-resident result list would be the
	// cheaper design for large n).
	if float64(n3.Slices) > 1.5*float64(base.Slices) {
		t.Errorf("3-best costs %d slices vs base %d", n3.Slices, base.Slices)
	}
	if float64(n8.Slices) > 2.2*float64(base.Slices) {
		t.Errorf("8-best costs %d slices vs base %d", n8.Slices, base.Slices)
	}
	// NBest ≤ 1 is the plain unit.
	n1 := RetrievalUnitNetlistNBest(13, 1)
	if n1.FlipFlops != RetrievalUnitNetlist(13).FlipFlops {
		t.Error("n=1 must not add hardware")
	}
	if n8.Netlist.FSMStates != 26 {
		t.Errorf("FSM states = %d, want 26", n8.Netlist.FSMStates)
	}
}
