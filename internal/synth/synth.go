// Package synth estimates FPGA resource consumption and clock rate for
// the retrieval unit, reproducing the role of the Xilinx ISE 6.2
// synthesis run behind Table 2 of the paper.
//
// The model is structural: a Netlist enumerates the datapath and control
// primitives of the design (registers, adders, comparators, multiplexers,
// the FSM, dedicated multipliers, BRAMs), and a Technology maps them to
// CLB slices using Virtex-II cell geometry (one slice = two 4-input LUTs
// + two flip-flops). Because the paper's VHDL was machine-generated from
// a Matlab Stateflow model by the JVHDLgen beta tool — a flow that
// produces markedly less compact logic than hand-written RTL — the
// technology carries a documented ToolOverhead factor calibrated to that
// flow. The structural estimate without the factor is also reported, so
// the gap between generated and hand-optimized logic (a real
// design-space signal) stays visible.
package synth

import (
	"fmt"
	"math"
	"strings"
)

// Netlist is a technology-independent inventory of synchronous-design
// primitives.
type Netlist struct {
	Name string
	// FlipFlops is the total architectural register bit count.
	FlipFlops int
	// LUT4s is the estimated 4-input LUT count of the combinational
	// logic (adders, comparators, muxes, FSM next-state logic).
	LUT4s int
	// FSMStates is the state count (one-hot encoded FFs are included
	// in FlipFlops by the builder; kept for reporting).
	FSMStates int
	// BRAMs is the number of 18 Kbit block RAMs.
	BRAMs int
	// Mult18x18s is the number of dedicated multipliers.
	Mult18x18s int
	// Items is a human-readable breakdown for reports.
	Items []NetlistItem
}

// NetlistItem is one breakdown row.
type NetlistItem struct {
	What string
	FFs  int
	LUTs int
}

// add accumulates an item into the netlist totals.
func (n *Netlist) add(what string, ffs, luts int) {
	n.FlipFlops += ffs
	n.LUT4s += luts
	n.Items = append(n.Items, NetlistItem{What: what, FFs: ffs, LUTs: luts})
}

// Device is an FPGA part with its resource totals.
type Device struct {
	Name   string
	Slices int
	BRAMs  int
	Mults  int
}

// Virtex-II parts relevant to the paper's platform (XC2V3000 is the
// device of Table 2).
var (
	XC2V1000 = Device{Name: "XC2V1000", Slices: 5120, BRAMs: 40, Mults: 40}
	XC2V3000 = Device{Name: "XC2V3000", Slices: 14336, BRAMs: 96, Mults: 96}
	XC2V6000 = Device{Name: "XC2V6000", Slices: 33792, BRAMs: 144, Mults: 144}
)

// Technology holds the mapping coefficients.
type Technology struct {
	// LUTsPerSlice and FFsPerSlice describe slice geometry.
	LUTsPerSlice, FFsPerSlice float64
	// Packing is the achievable slice packing efficiency (<1).
	Packing float64
	// ToolOverhead scales the structural estimate to account for the
	// Stateflow→JVHDLgen→ISE generated-code flow of the paper.
	ToolOverhead float64

	// Timing coefficients, nanoseconds.
	TClkToOut  float64 // BRAM / register clock-to-out
	TLUT       float64 // one LUT level
	TCarryBit  float64 // carry chain, per bit
	TMult      float64 // MULT18X18 clock-to-out
	TRouteFrac float64 // routing share of logic delay (fraction)
	TSetup     float64 // FF setup
}

// VirtexII returns the technology calibrated to the paper's flow: slice
// geometry from the Virtex-II data sheet, packing and overhead fitted to
// the Table 2 result for the retrieval unit.
func VirtexII() Technology {
	return Technology{
		LUTsPerSlice: 2, FFsPerSlice: 2,
		Packing:      0.80,
		ToolOverhead: 2.80,
		TClkToOut:    2.6,
		TLUT:         0.44,
		TCarryBit:    0.055,
		TMult:        4.1,
		TRouteFrac:   1.2,
		TSetup:       0.6,
	}
}

// Report is the Table 2 style synthesis result.
type Report struct {
	Netlist   Netlist
	Device    Device
	Slices    int // with tool overhead (the Table 2 figure)
	RawSlices int // structural estimate, hand-written-RTL quality
	BRAMs     int
	Mults     int
	FmaxMHz   float64 // maximum clock from the critical-path model
	CritPath  string  // name of the limiting path
}

// UtilSlices returns slice utilization in percent.
func (r Report) UtilSlices() float64 { return 100 * float64(r.Slices) / float64(r.Device.Slices) }

// UtilBRAMs returns BRAM utilization in percent.
func (r Report) UtilBRAMs() float64 { return 100 * float64(r.BRAMs) / float64(r.Device.BRAMs) }

// UtilMults returns multiplier utilization in percent.
func (r Report) UtilMults() float64 { return 100 * float64(r.Mults) / float64(r.Device.Mults) }

// String renders the report in the shape of Table 2.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Resources: Xilinx %s\n", r.Device.Name)
	fmt.Fprintf(&b, "  CLB-Slices:      %4d of %5d | %2.0f %%\n", r.Slices, r.Device.Slices, r.UtilSlices())
	fmt.Fprintf(&b, "  MULT18X18s:      %4d of %5d | %2.0f %%\n", r.Mults, r.Device.Mults, r.UtilMults())
	fmt.Fprintf(&b, "  BRAMS(18Kbit):   %4d of %5d | %2.0f %%\n", r.BRAMs, r.Device.BRAMs, r.UtilBRAMs())
	fmt.Fprintf(&b, "  Max. Clock:      %.0f MHz  (critical path: %s)\n", r.FmaxMHz, r.CritPath)
	return b.String()
}

// Estimate maps a netlist onto a device with the given technology.
func Estimate(n Netlist, d Device, t Technology) Report {
	lutSlices := float64(n.LUT4s) / (t.LUTsPerSlice * t.Packing)
	ffSlices := float64(n.FlipFlops) / (t.FFsPerSlice * t.Packing)
	raw := int(math.Ceil(math.Max(lutSlices, ffSlices)))
	scaled := int(math.Ceil(float64(raw) * t.ToolOverhead))

	fmax, crit := fmaxEstimate(t)
	return Report{
		Netlist: n, Device: d,
		Slices: scaled, RawSlices: raw,
		BRAMs: n.BRAMs, Mults: n.Mult18x18s,
		FmaxMHz: fmax, CritPath: crit,
	}
}

// fmaxEstimate evaluates the two candidate critical paths of the
// retrieval unit and returns the limiting clock rate.
func fmaxEstimate(t Technology) (float64, string) {
	// Path 1: BRAM → 16-bit ID comparator (carry chain) → FSM
	// next-state LUT level → mux → register.
	cmp := t.TClkToOut + 2*t.TLUT + 16*t.TCarryBit + t.TLUT + t.TSetup
	cmp *= 1 + t.TRouteFrac
	// Path 2: MULT18X18 product → saturating subtract/add (16-bit
	// carry) → accumulator register.
	mult := t.TMult + t.TLUT + 16*t.TCarryBit + t.TSetup
	mult *= 1 + t.TRouteFrac
	worst, name := cmp, "BRAM→compare→FSM"
	if mult > worst {
		worst, name = mult, "MULT→saturate→acc"
	}
	return 1000 / worst, name
}

// RetrievalUnitNetlist builds the primitive inventory of the fig. 6/7
// retrieval unit as implemented in package hwsim. addrBits sizes the
// memory pointers (13 bits covers the 8K-word BRAM pair of the paper's
// configuration).
func RetrievalUnitNetlist(addrBits int) Netlist {
	n := Netlist{Name: "retrieval-unit", FSMStates: 24, BRAMs: 2, Mult18x18s: 2}

	// Control: one-hot FSM — one FF per state, next-state decode and
	// output decode at roughly two LUTs per transition-rich state.
	n.add("FSM (24 states, one-hot)", 24, 48)

	// Memory pointers tp/ip/ap/cp/sp/rp with a shared incrementer and
	// per-pointer source multiplexers.
	n.add("address registers (6×)", 6*addrBits, 0)
	n.add("address incrementer + muxes", 0, addrBits+6*addrBits/2)

	// Data-side registers of fig. 7.
	n.add("reqType/implID/attrID regs", 3*16, 0)
	n.add("reqVal/weight/recip regs", 3*16, 0)
	n.add("acc/best/bestID regs", 3*16, 0)
	n.add("done/flags", 4, 0)

	// Arithmetic of eq. (1)/(2): ABS (subtract + conditional negate),
	// 1-x saturating subtract, accumulator saturating add, best-match
	// comparator, end-marker and ID comparators.
	n.add("ABS(X) 16-bit", 0, 16+16)
	n.add("1-x saturating subtract", 0, 16+8)
	n.add("accumulator saturating add", 0, 16+8)
	n.add("S > Sbest comparator", 0, 8)
	n.add("ID comparators (req/CB/supp)", 0, 3*8)
	n.add("end-marker zero detects", 0, 3*4)

	// Product alignment shifts are wiring; saturation detects cost a
	// few LUTs.
	n.add("product saturation detects", 0, 2*6)
	return n
}

// RetrievalUnitNetlistNBest extends the unit with the §5 n-best register
// file: n (similarity, ID) pairs, a sequential comparator stage and the
// shift-register insert network. Area grows linearly in n — the
// quantitative answer to whether the extension stays cheap.
func RetrievalUnitNetlistNBest(addrBits, nBest int) Netlist {
	n := RetrievalUnitNetlist(addrBits)
	if nBest <= 1 {
		return n
	}
	n.Name = fmt.Sprintf("retrieval-unit-n%d", nBest)
	n.FSMStates += 2 // BestScan, BestShift
	n.add("n-best FSM states", 2, 4)
	n.add(fmt.Sprintf("n-best register file (%dx32b)", nBest), nBest*32, 0)
	// One shared comparator (the scan is sequential) plus per-entry
	// shift-enable and input muxes.
	n.add("n-best comparator + index", 8, 16)
	n.add("n-best shift/insert muxes", 0, nBest*16)
	return n
}
