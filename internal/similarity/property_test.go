package similarity

import (
	"math"
	"math/rand"
	"testing"

	"qosalloc/internal/attr"
	"qosalloc/internal/fixed"
)

// TestLocalMeasuresAlwaysInUnitRange is the satellite bugfix's property
// test: every local measure must stay in [0, 1] for arbitrary value
// pairs — including pairs whose distance exceeds 1+dmax, which the
// unclamped eq. (1) formula maps below zero. Random dmax values are
// deliberately drawn smaller than the worst-case distance so the
// out-of-range branch is exercised constantly.
func TestLocalMeasuresAlwaysInUnitRange(t *testing.T) {
	measures := []Local{Linear{}, Quadratic{}, Exact{}, AtLeast{}}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		req := attr.Value(r.Uint32())
		impl := attr.Value(r.Uint32())
		dmax := uint16(r.Intn(1 << uint(1+r.Intn(16)))) // mostly small: forces d > 1+dmax
		for _, m := range measures {
			s := m.Similarity(req, impl, dmax)
			if s < 0 || s > 1 || math.IsNaN(s) {
				t.Fatalf("%s(%d, %d, dmax=%d) = %v, out of [0, 1]",
					m.Name(), req, impl, dmax, s)
			}
		}
	}
}

// TestLinearMatchesFixedPointUnderClamp cross-checks the float reference
// against the Q15 hardware datapath on random in- and out-of-range
// pairs. Before the clamp the two disagreed wildly whenever the distance
// exceeded 1+dmax (float went negative, hardware saturated at 0); now
// they must agree within Q15 quantization everywhere.
func TestLinearMatchesFixedPointUnderClamp(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	var lin Linear
	for i := 0; i < 20000; i++ {
		req := uint16(r.Uint32())
		impl := uint16(r.Uint32())
		dmax := uint16(r.Intn(1 << uint(1+r.Intn(16))))

		f := lin.Similarity(attr.Value(req), attr.Value(impl), dmax)
		q := fixed.LocalSim(fixed.Dist(req, impl), fixed.Recip(dmax)).Float()

		if q < 0 || q > 1 {
			t.Fatalf("fixed path out of range: LocalSim(|%d-%d|, recip(%d)) = %v",
				req, impl, dmax, q)
		}
		// The hardware stores 1/(1+dmax) rounded to UQ16, so its half-ULP
		// rounding error (≤ 2^-17) is amplified by the distance before
		// the subtract — the datapath's intrinsic precision limit, not a
		// bug. Everything else (Q15 truncation, the clamp) adds O(2^-15).
		tol := float64(fixed.Dist(req, impl))/(2*65536) + 2e-3
		if math.Abs(f-q) > tol {
			t.Fatalf("float %v vs fixed %v for |%d-%d|, dmax=%d (diff %v > tol %v)",
				f, q, req, impl, dmax, math.Abs(f-q), tol)
		}
	}
}
