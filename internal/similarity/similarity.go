// Package similarity implements the local similarity measures and global
// amalgamation functions of the paper's §2.2.
//
// The local measure of eq. (1) maps the Manhattan distance of two
// attribute values into [0, 1]:
//
//	s(xA, xB) = 1 - d(xA, xB) / (1 + max d)
//
// where max d is the design-global maximum distance of the attribute
// type. The global similarity of eq. (2) is the weighted sum of the local
// similarities ("amalgamation function"), monotonous in every argument
// with S(0,...,0)=0 and S(1,...,1)=1. The paper notes that "other
// approaches for similarity calculations are possible as well" and names
// the Mahalanobis distance as effective but computationally too large for
// hardware; this package provides the published measure plus the nearby
// alternatives so they can be compared in software.
package similarity

import (
	"fmt"
	"math"

	"qosalloc/internal/attr"
)

// Local computes the similarity of a requested value against an
// implementation value for one attribute type whose design-global maximum
// distance is dmax. Results are in [0, 1].
type Local interface {
	Similarity(req, impl attr.Value, dmax uint16) float64
	Name() string
}

// Linear is eq. (1): 1 - |a-b| / (1+dmax). This is the measure the
// hardware implements.
type Linear struct{}

// Similarity implements Local.
func (Linear) Similarity(req, impl attr.Value, dmax uint16) float64 {
	d := dist(req, impl)
	// Clamp: when the actual distance exceeds 1+dmax (dmax understated,
	// or an out-of-range request), the raw formula goes negative. The
	// hardware path saturates at 0 (swret's mb32 kernel and the Q15
	// fixed-point engine both do), so the float reference must too.
	return clamp01(1 - d/(1+float64(dmax)))
}

// Name implements Local.
func (Linear) Name() string { return "linear" }

// Quadratic replaces the Manhattan distance with the squared (Euclidean,
// per-dimension) distance normalized by dmax²: 1 - (d/dmax')², with
// dmax' = 1+dmax. It is gentler near exact matches and harsher far away.
type Quadratic struct{}

// Similarity implements Local.
func (Quadratic) Similarity(req, impl attr.Value, dmax uint16) float64 {
	d := dist(req, impl) / (1 + float64(dmax))
	// Clamped for the same reason as Linear: d > 1 must score 0, not < 0.
	return clamp01(1 - d*d)
}

// Name implements Local.
func (Quadratic) Name() string { return "quadratic" }

// Exact scores 1 for identical values and 0 otherwise — the natural
// measure for unordered mode flags.
type Exact struct{}

// Similarity implements Local.
func (Exact) Similarity(req, impl attr.Value, _ uint16) float64 {
	if req == impl {
		return 1
	}
	return 0
}

// Name implements Local.
func (Exact) Name() string { return "exact" }

// AtLeast treats the request as a lower bound: implementations meeting or
// exceeding the requested value are fully similar, shortfalls decay
// linearly as in eq. (1). This models QoS attributes like bitwidth or
// sample rate where over-provisioning costs nothing in quality. The
// shortfall branch inherits Linear's clamp, so results stay in [0, 1]
// even for out-of-range requests.
type AtLeast struct{}

// Similarity implements Local.
func (AtLeast) Similarity(req, impl attr.Value, dmax uint16) float64 {
	if impl >= req {
		return 1
	}
	return Linear{}.Similarity(req, impl, dmax)
}

// Name implements Local.
func (AtLeast) Name() string { return "at-least" }

func dist(a, b attr.Value) float64 {
	if a > b {
		return float64(a - b)
	}
	return float64(b - a)
}

// Amalgamation combines the local similarities s_i (with weights w_i,
// already normalized to sum to 1) into a global similarity in [0, 1].
type Amalgamation interface {
	Combine(sims, weights []float64) float64
	Name() string
}

// WeightedSum is eq. (2): S = Σ w_i·s_i. The measure implemented in
// hardware.
type WeightedSum struct{}

// Combine implements Amalgamation.
func (WeightedSum) Combine(sims, weights []float64) float64 {
	var s float64
	for i := range sims {
		s += weights[i] * sims[i]
	}
	return clamp01(s)
}

// Name implements Amalgamation.
func (WeightedSum) Name() string { return "weighted-sum" }

// Minimum is the pessimistic amalgamation: the worst local similarity
// dominates. Weights select which attributes participate (w_i = 0 drops
// the attribute).
type Minimum struct{}

// Combine implements Amalgamation.
func (Minimum) Combine(sims, weights []float64) float64 {
	s := 1.0
	any := false
	for i := range sims {
		if weights[i] <= 0 {
			continue
		}
		any = true
		if sims[i] < s {
			s = sims[i]
		}
	}
	if !any {
		return 0
	}
	return s
}

// Name implements Amalgamation.
func (Minimum) Name() string { return "minimum" }

// Maximum is the optimistic amalgamation: the best local similarity
// dominates.
type Maximum struct{}

// Combine implements Amalgamation.
func (Maximum) Combine(sims, weights []float64) float64 {
	s := 0.0
	for i := range sims {
		if weights[i] <= 0 {
			continue
		}
		if sims[i] > s {
			s = sims[i]
		}
	}
	return s
}

// Name implements Amalgamation.
func (Maximum) Name() string { return "maximum" }

// WeightedEuclid is S = sqrt(Σ w_i·s_i²), an L2 amalgamation. By Jensen's
// inequality it never scores below WeightedSum, making it the most
// forgiving option for mixed similarity vectors.
type WeightedEuclid struct{}

// Combine implements Amalgamation.
func (WeightedEuclid) Combine(sims, weights []float64) float64 {
	var s float64
	for i := range sims {
		s += weights[i] * sims[i] * sims[i]
	}
	return clamp01(math.Sqrt(s))
}

// Name implements Amalgamation.
func (WeightedEuclid) Name() string { return "weighted-euclid" }

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// LocalByName returns the local measure registered under name.
func LocalByName(name string) (Local, error) {
	switch name {
	case "linear", "":
		return Linear{}, nil
	case "quadratic":
		return Quadratic{}, nil
	case "exact":
		return Exact{}, nil
	case "at-least":
		return AtLeast{}, nil
	default:
		return nil, fmt.Errorf("similarity: unknown local measure %q", name)
	}
}

// AmalgamationByName returns the amalgamation registered under name.
func AmalgamationByName(name string) (Amalgamation, error) {
	switch name {
	case "weighted-sum", "":
		return WeightedSum{}, nil
	case "minimum":
		return Minimum{}, nil
	case "maximum":
		return Maximum{}, nil
	case "weighted-euclid":
		return WeightedEuclid{}, nil
	default:
		return nil, fmt.Errorf("similarity: unknown amalgamation %q", name)
	}
}
