package similarity

import (
	"fmt"
	"math"
)

// Mahalanobis implements the alternative similarity the paper describes
// and rejects for hardware: "a well known method comes from statistical
// decision theory and determines the Mahalanobis distance by calculating
// the co-variance matrix of the whole set of function attributes. This
// method is very effective concerning the results but the computational
// efforts would be too large so we decided to apply Manhattan distance
// metrics" (§2.2).
//
// It is provided here so the rejected design point can be measured: the
// constructor computes the covariance matrix of the implementation
// attribute vectors and inverts it (O(n³) at build, O(n²) per
// comparison, plus a square root — against the datapath's O(n)
// multiply-accumulate).
type Mahalanobis struct {
	inv  [][]float64 // inverse covariance
	dim  int
	dmax float64 // largest pairwise distance over the training set
}

// NewMahalanobis builds the measure from the attribute vectors of the
// case library (one row per implementation, one column per attribute
// type; missing attributes should be imputed by the caller). At least
// dim+1 samples are required for a meaningful covariance; singular
// covariance matrices are regularized by a small ridge.
func NewMahalanobis(samples [][]float64) (*Mahalanobis, error) {
	if len(samples) < 2 {
		return nil, fmt.Errorf("similarity: mahalanobis needs at least 2 samples, got %d", len(samples))
	}
	dim := len(samples[0])
	if dim == 0 {
		return nil, fmt.Errorf("similarity: mahalanobis needs at least 1 dimension")
	}
	for i, s := range samples {
		if len(s) != dim {
			return nil, fmt.Errorf("similarity: sample %d has %d dims, want %d", i, len(s), dim)
		}
	}

	// Mean.
	mean := make([]float64, dim)
	for _, s := range samples {
		for j, v := range s {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(len(samples))
	}

	// Covariance with a ridge for numerical safety.
	cov := make([][]float64, dim)
	for i := range cov {
		cov[i] = make([]float64, dim)
	}
	for _, s := range samples {
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				cov[i][j] += (s[i] - mean[i]) * (s[j] - mean[j])
			}
		}
	}
	n := float64(len(samples) - 1)
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			cov[i][j] /= n
		}
		cov[i][i] += 1e-6 // ridge
	}

	inv, err := invert(cov)
	if err != nil {
		return nil, err
	}
	m := &Mahalanobis{inv: inv, dim: dim}

	// Design-time dmax: the largest pairwise distance in the library,
	// the analogue of the supplemental table's max d.
	for i := range samples {
		for j := i + 1; j < len(samples); j++ {
			if d := m.Distance(samples[i], samples[j]); d > m.dmax {
				m.dmax = d
			}
		}
	}
	if m.dmax == 0 {
		m.dmax = 1
	}
	return m, nil
}

// Dim returns the attribute-vector dimensionality.
func (m *Mahalanobis) Dim() int { return m.dim }

// Distance returns the Mahalanobis distance sqrt((a-b)ᵀ Σ⁻¹ (a-b)).
func (m *Mahalanobis) Distance(a, b []float64) float64 {
	diff := make([]float64, m.dim)
	for i := range diff {
		diff[i] = a[i] - b[i]
	}
	var q float64
	for i := 0; i < m.dim; i++ {
		var row float64
		for j := 0; j < m.dim; j++ {
			row += m.inv[i][j] * diff[j]
		}
		q += diff[i] * row
	}
	if q < 0 {
		q = 0 // numerical noise on near-singular matrices
	}
	return math.Sqrt(q)
}

// Similarity maps the distance into [0, 1] with the same transformation
// shape as eq. (1): 1 - d/(1+dmax).
func (m *Mahalanobis) Similarity(a, b []float64) float64 {
	s := 1 - m.Distance(a, b)/(1+m.dmax)
	return clamp01(s)
}

// invert computes the inverse of a square matrix by Gauss-Jordan
// elimination with partial pivoting.
func invert(a [][]float64) ([][]float64, error) {
	n := len(a)
	// Augment [a | I].
	aug := make([][]float64, n)
	for i := range aug {
		aug[i] = make([]float64, 2*n)
		copy(aug[i], a[i])
		aug[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(aug[r][col]) > math.Abs(aug[p][col]) {
				p = r
			}
		}
		if math.Abs(aug[p][col]) < 1e-12 {
			return nil, fmt.Errorf("similarity: covariance matrix is singular")
		}
		aug[col], aug[p] = aug[p], aug[col]
		// Normalize and eliminate.
		pv := aug[col][col]
		for j := 0; j < 2*n; j++ {
			aug[col][j] /= pv
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := aug[r][col]
			if f == 0 {
				continue
			}
			for j := 0; j < 2*n; j++ {
				aug[r][j] -= f * aug[col][j]
			}
		}
	}
	inv := make([][]float64, n)
	for i := range inv {
		inv[i] = aug[i][n:]
	}
	return inv, nil
}
