package similarity

import (
	"math"
	"testing"
	"testing/quick"

	"qosalloc/internal/attr"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestLinearTableOneValues(t *testing.T) {
	// All nine local similarities from Table 1.
	cases := []struct {
		req, impl attr.Value
		dmax      uint16
		want      float64
	}{
		// Impl 1: FPGA
		{16, 16, 8, 1.0},
		{1, 2, 2, 1 - 1.0/3.0},
		{40, 44, 36, 1 - 4.0/37.0},
		// Impl 2: DSP
		{16, 16, 8, 1.0},
		{1, 1, 2, 1.0},
		{40, 44, 36, 1 - 4.0/37.0},
		// Impl 3: GP-Proc
		{16, 8, 8, 1 - 8.0/9.0},
		{1, 0, 2, 1 - 1.0/3.0},
		{40, 22, 36, 1 - 18.0/37.0},
	}
	for _, c := range cases {
		got := Linear{}.Similarity(c.req, c.impl, c.dmax)
		if !almost(got, c.want) {
			t.Errorf("Linear(%d,%d,dmax=%d) = %v, want %v", c.req, c.impl, c.dmax, got, c.want)
		}
	}
}

func TestWeightedSumTableOneGlobals(t *testing.T) {
	w := []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
	fpga := WeightedSum{}.Combine([]float64{1, 1 - 1.0/3, 1 - 4.0/37}, w)
	dsp := WeightedSum{}.Combine([]float64{1, 1, 1 - 4.0/37}, w)
	gpp := WeightedSum{}.Combine([]float64{1 - 8.0/9, 1 - 1.0/3, 1 - 18.0/37}, w)
	// Table 1 prints 0.85, 0.96, 0.43.
	if math.Abs(fpga-0.85) > 0.005 {
		t.Errorf("FPGA global = %v, want ≈0.85", fpga)
	}
	if math.Abs(dsp-0.96) > 0.005 {
		t.Errorf("DSP global = %v, want ≈0.96", dsp)
	}
	if math.Abs(gpp-0.43) > 0.005 {
		t.Errorf("GP-Proc global = %v, want ≈0.43", gpp)
	}
	if !(dsp > fpga && fpga > gpp) {
		t.Error("ranking must be DSP > FPGA > GP-Proc")
	}
}

func TestLinearBounds(t *testing.T) {
	if !almost(Linear{}.Similarity(5, 5, 10), 1) {
		t.Error("identical values must score 1")
	}
	// Max distance still leaves 1/(1+dmax) residue by construction.
	got := Linear{}.Similarity(0, 10, 10)
	if !almost(got, 1-10.0/11.0) {
		t.Errorf("max-distance similarity = %v", got)
	}
}

func TestQuadraticOrdering(t *testing.T) {
	q, l := Quadratic{}, Linear{}
	// Near a match, quadratic is more forgiving than linear...
	if q.Similarity(10, 11, 10) <= l.Similarity(10, 11, 10) {
		t.Error("quadratic should exceed linear near matches")
	}
	// ...and both agree at exact matches.
	if !almost(q.Similarity(7, 7, 10), 1) {
		t.Error("quadratic exact match must be 1")
	}
}

func TestExact(t *testing.T) {
	if (Exact{}).Similarity(3, 3, 100) != 1 || (Exact{}).Similarity(3, 4, 100) != 0 {
		t.Error("Exact is 1 iff equal")
	}
}

func TestAtLeast(t *testing.T) {
	a := AtLeast{}
	if a.Similarity(16, 24, 16) != 1 {
		t.Error("over-provision must be fully similar")
	}
	if a.Similarity(16, 16, 16) != 1 {
		t.Error("exact must be fully similar")
	}
	want := Linear{}.Similarity(16, 8, 16)
	if !almost(a.Similarity(16, 8, 16), want) {
		t.Error("shortfall must decay like eq. (1)")
	}
}

func TestMinimumMaximum(t *testing.T) {
	sims := []float64{0.9, 0.2, 0.7}
	w := []float64{0.5, 0.25, 0.25}
	if !almost(Minimum{}.Combine(sims, w), 0.2) {
		t.Error("Minimum picks the worst weighted-in similarity")
	}
	if !almost(Maximum{}.Combine(sims, w), 0.9) {
		t.Error("Maximum picks the best weighted-in similarity")
	}
	// Zero weight drops an attribute.
	w2 := []float64{0.5, 0, 0.5}
	if !almost(Minimum{}.Combine(sims, w2), 0.7) {
		t.Error("Minimum must ignore zero-weighted attributes")
	}
	if (Minimum{}).Combine(sims, []float64{0, 0, 0}) != 0 {
		t.Error("Minimum over empty participation is 0")
	}
}

func TestWeightedEuclidOrdering(t *testing.T) {
	// Root-mean-square dominates the mean (Jensen), so the L2
	// amalgamation is the most optimistic of the three for mixed
	// similarity vectors: min ≤ sum ≤ euclid.
	sims := []float64{1.0, 0.25}
	w := []float64{0.5, 0.5}
	sum := WeightedSum{}.Combine(sims, w)
	euc := WeightedEuclid{}.Combine(sims, w)
	min := Minimum{}.Combine(sims, w)
	if !(min <= sum && sum <= euc+1e-9) {
		t.Errorf("expected min ≤ sum ≤ euclid, got %v ≤ %v ≤ %v", min, sum, euc)
	}
}

func TestByNameLookups(t *testing.T) {
	for _, n := range []string{"linear", "quadratic", "exact", "at-least", ""} {
		if _, err := LocalByName(n); err != nil {
			t.Errorf("LocalByName(%q): %v", n, err)
		}
	}
	if _, err := LocalByName("nope"); err == nil {
		t.Error("unknown local name must fail")
	}
	for _, n := range []string{"weighted-sum", "minimum", "maximum", "weighted-euclid", ""} {
		if _, err := AmalgamationByName(n); err != nil {
			t.Errorf("AmalgamationByName(%q): %v", n, err)
		}
	}
	if _, err := AmalgamationByName("nope"); err == nil {
		t.Error("unknown amalgamation name must fail")
	}
}

func TestNames(t *testing.T) {
	if (Linear{}).Name() != "linear" || (Quadratic{}).Name() != "quadratic" ||
		(Exact{}).Name() != "exact" || (AtLeast{}).Name() != "at-least" {
		t.Error("local measure names wrong")
	}
	if (WeightedSum{}).Name() != "weighted-sum" || (Minimum{}).Name() != "minimum" ||
		(Maximum{}).Name() != "maximum" || (WeightedEuclid{}).Name() != "weighted-euclid" {
		t.Error("amalgamation names wrong")
	}
}

// Property: every local measure stays in [0,1] and scores 1 on identity.
func TestLocalMeasureProperties(t *testing.T) {
	measures := []Local{Linear{}, Quadratic{}, Exact{}, AtLeast{}}
	f := func(a, b uint16, dmaxRaw uint16) bool {
		dmax := dmaxRaw%1000 + 1
		av := attr.Value(a % (uint16(dmax) + 1))
		bv := attr.Value(b % (uint16(dmax) + 1))
		for _, m := range measures {
			s := m.Similarity(av, bv, dmax)
			if s < 0 || s > 1 {
				return false
			}
			if !almost(m.Similarity(av, av, dmax), 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: eq. (2) is monotonous in every argument (the paper states
// this as the defining property of the amalgamation).
func TestWeightedSumMonotone(t *testing.T) {
	f := func(raw [4]uint8, bump uint8, idx uint8) bool {
		sims := make([]float64, 4)
		for i, r := range raw {
			sims[i] = float64(r) / 255
		}
		w := []float64{0.25, 0.25, 0.25, 0.25}
		before := WeightedSum{}.Combine(sims, w)
		i := int(idx) % 4
		sims[i] = math.Min(1, sims[i]+float64(bump)/255)
		after := WeightedSum{}.Combine(sims, w)
		return after >= before-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: S(0,...,0)=0 and S(1,...,1)=1 for all amalgamations.
func TestAmalgamationBoundaryConditions(t *testing.T) {
	ams := []Amalgamation{WeightedSum{}, Minimum{}, Maximum{}, WeightedEuclid{}}
	zero := []float64{0, 0, 0}
	one := []float64{1, 1, 1}
	w := []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
	for _, a := range ams {
		if got := a.Combine(zero, w); !almost(got, 0) {
			t.Errorf("%s(0,0,0) = %v", a.Name(), got)
		}
		if got := a.Combine(one, w); !almost(got, 1) {
			t.Errorf("%s(1,1,1) = %v", a.Name(), got)
		}
	}
}
