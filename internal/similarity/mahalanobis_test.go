package similarity

import (
	"math"
	"math/rand"
	"testing"
)

func TestMahalanobisIdentityAndSymmetry(t *testing.T) {
	samples := [][]float64{
		{16, 0, 2, 44},
		{16, 0, 1, 44},
		{8, 0, 0, 22},
		{12, 1, 1, 32},
		{10, 0, 2, 40},
	}
	m, err := NewMahalanobis(samples)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim() != 4 {
		t.Errorf("dim = %d", m.Dim())
	}
	a, b := samples[0], samples[2]
	if d := m.Distance(a, a); d > 1e-9 {
		t.Errorf("d(a,a) = %v", d)
	}
	if math.Abs(m.Distance(a, b)-m.Distance(b, a)) > 1e-9 {
		t.Error("distance must be symmetric")
	}
	if m.Similarity(a, a) != 1 {
		t.Errorf("s(a,a) = %v", m.Similarity(a, a))
	}
	s := m.Similarity(a, b)
	if s <= 0 || s >= 1 {
		t.Errorf("s(a,b) = %v, want in (0,1)", s)
	}
}

func TestMahalanobisWhitensScale(t *testing.T) {
	// One dimension has 100× the variance of the other; Euclidean
	// distance would be dominated by it, Mahalanobis normalizes.
	r := rand.New(rand.NewSource(1))
	var samples [][]float64
	for i := 0; i < 200; i++ {
		samples = append(samples, []float64{r.NormFloat64() * 100, r.NormFloat64()})
	}
	m, err := NewMahalanobis(samples)
	if err != nil {
		t.Fatal(err)
	}
	origin := []float64{0, 0}
	// 100 units along the high-variance axis ≈ 1 std dev; 1 unit along
	// the low-variance axis ≈ 1 std dev. Their distances should match
	// within sampling noise.
	dBig := m.Distance(origin, []float64{100, 0})
	dSmall := m.Distance(origin, []float64{0, 1})
	if ratio := dBig / dSmall; ratio < 0.7 || ratio > 1.4 {
		t.Errorf("whitening failed: d(100 on wide)=%v vs d(1 on narrow)=%v", dBig, dSmall)
	}
}

func TestMahalanobisValidation(t *testing.T) {
	if _, err := NewMahalanobis(nil); err == nil {
		t.Error("no samples must fail")
	}
	if _, err := NewMahalanobis([][]float64{{1}}); err == nil {
		t.Error("one sample must fail")
	}
	if _, err := NewMahalanobis([][]float64{{}, {}}); err == nil {
		t.Error("zero dims must fail")
	}
	if _, err := NewMahalanobis([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged samples must fail")
	}
}

func TestMahalanobisDegenerateData(t *testing.T) {
	// All-identical samples: the ridge keeps the covariance invertible
	// and identical points stay at distance 0.
	samples := [][]float64{{5, 5}, {5, 5}, {5, 5}}
	m, err := NewMahalanobis(samples)
	if err != nil {
		t.Fatal(err)
	}
	if d := m.Distance([]float64{5, 5}, []float64{5, 5}); d != 0 {
		t.Errorf("d = %v", d)
	}
}

func TestInvertKnownMatrix(t *testing.T) {
	// [[4,7],[2,6]]⁻¹ = [[0.6,-0.7],[-0.2,0.4]]
	inv, err := invert([][]float64{{4, 7}, {2, 6}})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{0.6, -0.7}, {-0.2, 0.4}}
	for i := range want {
		for j := range want[i] {
			if math.Abs(inv[i][j]-want[i][j]) > 1e-9 {
				t.Errorf("inv[%d][%d] = %v, want %v", i, j, inv[i][j], want[i][j])
			}
		}
	}
	if _, err := invert([][]float64{{1, 1}, {1, 1}}); err == nil {
		t.Error("singular matrix must fail")
	}
}
