package retrieval

import (
	"math/rand"
	"reflect"
	"testing"

	"qosalloc/internal/casebase"
	"qosalloc/internal/workload"
)

// unsortRequest reverses the constraint order, bypassing the sorting
// NewRequest applies, to exercise the kernel's non-merge fallback.
// Validate still accepts such requests, so the engines must agree on
// them too.
func unsortRequest(req casebase.Request) casebase.Request {
	out := casebase.Request{Type: req.Type}
	for i := len(req.Constraints) - 1; i >= 0; i-- {
		out.Constraints = append(out.Constraints, req.Constraints[i])
	}
	return out
}

// TestCompactMatchesFixedBitIdentical is the tentpole gate on the
// software side: across randomized case bases and requests — sorted and
// unsorted constraint orders alike — the compacted kernel must return
// exactly the FixedEngine result, bit for bit: same implementation,
// same Q15 similarity, same n-best ranking.
func TestCompactMatchesFixedBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		cb, reg := randomCaseBase(r, 3, 8, 5, 10)
		fe := NewFixedEngine(cb)
		ce, err := NewCompactEngine(cb)
		if err != nil {
			t.Fatal(err)
		}
		req := randomRequest(r, cb, reg, 1+r.Intn(5))
		for _, rq := range []casebase.Request{req, unsortRequest(req)} {
			fbest, err := fe.Retrieve(rq)
			if err != nil {
				t.Fatal(err)
			}
			cbest, err := ce.Retrieve(rq)
			if err != nil {
				t.Fatal(err)
			}
			if fbest != cbest {
				t.Fatalf("trial %d: fixed %+v, compact %+v", trial, fbest, cbest)
			}
			fn, err := fe.RetrieveN(rq, 5)
			if err != nil {
				t.Fatal(err)
			}
			cn, err := ce.RetrieveN(rq, 5)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fn, cn) {
				t.Fatalf("trial %d: n-best diverges:\nfixed   %+v\ncompact %+v", trial, fn, cn)
			}
		}
	}
}

// TestCompactScoreTypeMatchesFixedScores pins the per-implementation
// Q15 column, not just the winner: every score in storage order must be
// bit-identical to FixedEngine.Score on the corresponding variant.
func TestCompactScoreTypeMatchesFixedScores(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		cb, reg := randomCaseBase(r, 2, 6, 4, 8)
		fe := NewFixedEngine(cb)
		ce, err := NewCompactEngine(cb)
		if err != nil {
			t.Fatal(err)
		}
		req := randomRequest(r, cb, reg, 3)
		qs, err := ce.ScoreType(req)
		if err != nil {
			t.Fatal(err)
		}
		ft, _ := cb.Type(req.Type)
		if len(qs) != len(ft.Impls) {
			t.Fatalf("scored %d impls, type has %d", len(qs), len(ft.Impls))
		}
		for i := range ft.Impls {
			if want := fe.Score(&ft.Impls[i], req); qs[i] != want {
				t.Fatalf("trial %d impl %d: compact %d, fixed %d", trial, ft.Impls[i].ID, qs[i], want)
			}
		}
	}
}

// TestCompactEngineValidation checks FixedEngine error parity on the
// rejection paths.
func TestCompactEngineValidation(t *testing.T) {
	cb, err := casebase.PaperCaseBase()
	if err != nil {
		t.Fatal(err)
	}
	ce, err := NewCompactEngine(cb)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ce.Retrieve(casebase.Request{Type: 99}); err == nil {
		t.Error("unknown type accepted")
	}
	if _, err := ce.Retrieve(casebase.Request{Type: 1}); err == nil {
		t.Error("empty constraint list accepted")
	}
	if _, err := ce.RetrieveN(casebase.PaperRequest(), 0); err == nil {
		t.Error("n=0 accepted")
	}
}

// TestEngineCompactLayoutBitIdentical gates the Engine integration: with
// CompactLayout set (and default measures), every similarity the float
// facade reports must be the exact Float() image of the FixedEngine Q15
// score, and the ranking must match the plain float engine's whenever
// similarities stay distinguishable at Q15 resolution.
func TestEngineCompactLayoutBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		cb, reg := randomCaseBase(r, 3, 8, 5, 10)
		fe := NewFixedEngine(cb)
		ec := NewEngine(cb, Options{CompactLayout: true})
		req := randomRequest(r, cb, reg, 4)
		all, err := ec.RetrieveAll(req)
		if err != nil {
			t.Fatal(err)
		}
		for _, res := range all {
			ft, _ := cb.Type(req.Type)
			var want float64
			found := false
			for i := range ft.Impls {
				if ft.Impls[i].ID == res.Impl {
					want = fe.Score(&ft.Impls[i], req).Float()
					found = true
				}
			}
			if !found {
				t.Fatalf("result names unknown impl %d", res.Impl)
			}
			if res.Similarity != want {
				t.Fatalf("trial %d impl %d: facade %v, datapath %v", trial, res.Impl, res.Similarity, want)
			}
			if res.Locals != nil {
				t.Fatal("compact path must not fabricate locals")
			}
		}
	}
}

// TestEngineCompactLayoutFallsBack pins the eligibility rule: custom
// measures or KeepLocals keep the floating-point path (locals present,
// full-precision similarities).
func TestEngineCompactLayoutFallsBack(t *testing.T) {
	cb, err := casebase.PaperCaseBase()
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(cb, Options{CompactLayout: true, KeepLocals: true})
	if e.compact != nil {
		t.Error("KeepLocals must disable the compact path")
	}
	all, err := e.RetrieveAll(casebase.PaperRequest())
	if err != nil {
		t.Fatal(err)
	}
	if all[0].Locals == nil {
		t.Error("fallback path lost the locals breakdown")
	}
}

// TestEngineCompactLayoutShardInvariant asserts the bit-identity
// property the serve layer relies on: the compact engine is
// deterministic across independently constructed engines over the same
// case base, so any shard fan-out serves identical similarities.
func TestEngineCompactLayoutShardInvariant(t *testing.T) {
	cb, reg, err := workload.GenCaseBase(workload.PaperScale())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(17))
	e1 := NewEngine(cb, Options{CompactLayout: true})
	e2 := NewEngine(cb, Options{CompactLayout: true})
	for trial := 0; trial < 50; trial++ {
		req := randomRequest(r, cb, reg, 4)
		a, err := e1.RetrieveAll(req)
		if err != nil {
			t.Fatal(err)
		}
		b, err := e2.RetrieveAll(req)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: engines over the same case base diverge", trial)
		}
	}
}
