package retrieval

import (
	"context"
	"errors"
	"fmt"

	"qosalloc/internal/casebase"
)

// ErrCanceled is the sentinel every context-aware retrieval path wraps
// when the caller's context dies: errors.Is(err, ErrCanceled) detects
// cancellation generically, while the wrapped context.Cause keeps
// errors.Is(err, context.Canceled) / context.DeadlineExceeded (or any
// custom cause passed to context.WithCancelCause) working too.
var ErrCanceled = errors.New("retrieval: canceled")

// Canceled reports ctx's cancellation as an error wrapping both
// ErrCanceled and context.Cause(ctx). It returns nil while ctx is live
// (or nil), so call sites can use it as a guard between list walks.
func Canceled(ctx context.Context) error {
	if ctx == nil || ctx.Err() == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrCanceled, context.Cause(ctx))
}

// RetrieveContext is Retrieve honoring cancellation: the engine checks
// ctx before walking the requested type's implementation list. A single
// list walk is never torn mid-scan — the datapath streams one sorted
// list atomically (fig. 6) — so cancellation lands on walk boundaries.
func (e *Engine) RetrieveContext(ctx context.Context, req casebase.Request) (Result, error) {
	if err := Canceled(ctx); err != nil {
		return Result{}, err
	}
	return e.Retrieve(req)
}

// RetrieveNContext is RetrieveN honoring cancellation between list walks.
func (e *Engine) RetrieveNContext(ctx context.Context, req casebase.Request, n int) ([]Result, error) {
	if err := Canceled(ctx); err != nil {
		return nil, err
	}
	return e.RetrieveN(req, n)
}

// RetrieveAllContext is RetrieveAll honoring cancellation between list
// walks.
func (e *Engine) RetrieveAllContext(ctx context.Context, req casebase.Request) ([]Result, error) {
	if err := Canceled(ctx); err != nil {
		return nil, err
	}
	return e.RetrieveAll(req)
}

// RetrieveContext is Pool.Retrieve honoring cancellation: the pool
// refuses to borrow an engine for a dead context and re-checks after the
// borrow, so a caller canceled while waiting on the pool lock does not
// pay for a list walk it no longer wants.
func (p *Pool) RetrieveContext(ctx context.Context, req casebase.Request) (Result, error) {
	if err := Canceled(ctx); err != nil {
		return Result{}, err
	}
	e := p.get()
	defer p.put(e)
	return e.RetrieveContext(ctx, req)
}

// RetrieveNContext is Pool.RetrieveN honoring cancellation.
func (p *Pool) RetrieveNContext(ctx context.Context, req casebase.Request, n int) ([]Result, error) {
	if err := Canceled(ctx); err != nil {
		return nil, err
	}
	e := p.get()
	defer p.put(e)
	return e.RetrieveNContext(ctx, req, n)
}

// RetrieveAllContext is Pool.RetrieveAll honoring cancellation.
func (p *Pool) RetrieveAllContext(ctx context.Context, req casebase.Request) ([]Result, error) {
	if err := Canceled(ctx); err != nil {
		return nil, err
	}
	e := p.get()
	defer p.put(e)
	return e.RetrieveAllContext(ctx, req)
}
