package retrieval

import (
	"container/list"
	"math"
	"strconv"

	"qosalloc/internal/casebase"
)

// DefaultMaxTokens is the retention cap of a TokenCache. Tokens are
// small, but the batching service layer deduplicates on request
// signatures drawn from an open-ended space (every distinct constraint
// vector is a new key), so an uncapped cache grows linearly with
// workload diversity. The cap bounds it to the hot working set; colder
// signatures fall off the LRU tail and simply pay retrieval again —
// mirroring the Pool.SetMaxIdle precedent of bounding steady-state
// footprint, not peak correctness.
const DefaultMaxTokens = 4096

// Token is the paper's bypass token (§3): "data on the previous selection
// which can be reused at repeated function calls so that only an
// availability check on the function and its allocated resources has to
// be done". It pins the implementation chosen for a request signature.
type Token struct {
	Type       casebase.TypeID
	Impl       casebase.ImplID
	Similarity float64
}

// tokenEntry is one LRU node: the signature key plus its token.
type tokenEntry struct {
	key string
	tok Token
}

// TokenCache maps request signatures to bypass tokens with LRU
// retention bounded by SetMaxTokens (DefaultMaxTokens initially). It is
// a plain cache: the allocation manager stores a token after a
// successful placement and invalidates it when the case base changes or
// the pinned implementation is evicted. Not safe for concurrent use;
// the allocation manager — and each serve shard — serializes access.
type TokenCache struct {
	tokens    map[string]*list.Element // value: *tokenEntry
	order     *list.List               // front = most recently used
	max       int
	epoch     uint64 // case-base epoch the live tokens were minted against
	hits      int
	misses    int
	evictions int
}

// NewTokenCache returns an empty cache capped at DefaultMaxTokens.
func NewTokenCache() *TokenCache {
	return &TokenCache{
		tokens: make(map[string]*list.Element),
		order:  list.New(),
		max:    DefaultMaxTokens,
	}
}

// SetMaxTokens bounds the cache to n tokens, evicting the least recently
// used beyond it (n < 1 keeps no tokens: every Store is immediately
// evicted, every Lookup misses).
func (tc *TokenCache) SetMaxTokens(n int) {
	if n < 0 {
		n = 0
	}
	tc.max = n
	for tc.order.Len() > n {
		tc.evictOldest()
	}
}

// evictOldest drops the LRU tail entry.
func (tc *TokenCache) evictOldest() {
	back := tc.order.Back()
	if back == nil {
		return
	}
	tc.order.Remove(back)
	delete(tc.tokens, back.Value.(*tokenEntry).key)
	tc.evictions++
}

// Signature derives the cache key from a request: function type plus the
// sorted (ID, value, weight) constraint list. Two requests with the same
// signature would retrieve the same implementation, so the retrieval can
// be bypassed for the second one. Weights participate via their exact
// bit pattern — the key sits on the hot batching path, so it is built
// with strconv appends, never fmt.
func Signature(req casebase.Request) string {
	b := make([]byte, 0, 8+24*len(req.Constraints))
	b = append(b, 't')
	b = strconv.AppendUint(b, uint64(req.Type), 10)
	for _, c := range req.Constraints {
		b = append(b, '|')
		b = strconv.AppendUint(b, uint64(c.ID), 10)
		b = append(b, '=')
		b = strconv.AppendUint(b, uint64(c.Value), 10)
		b = append(b, '*')
		b = strconv.AppendUint(b, math.Float64bits(c.Weight), 16)
	}
	return string(b)
}

// Lookup returns the token for req if one is cached, refreshing its
// recency.
func (tc *TokenCache) Lookup(req casebase.Request) (Token, bool) {
	return tc.LookupSig(Signature(req))
}

// LookupSig is Lookup keyed by a precomputed Signature — callers that
// already derived the signature (the serve batcher dedups on it) avoid
// recomputing it.
func (tc *TokenCache) LookupSig(sig string) (Token, bool) {
	el, ok := tc.tokens[sig]
	if !ok {
		tc.misses++
		return Token{}, false
	}
	tc.hits++
	tc.order.MoveToFront(el)
	return el.Value.(*tokenEntry).tok, true
}

// Store caches a token for req as the most recently used entry, evicting
// the LRU tail when the cap is exceeded.
func (tc *TokenCache) Store(req casebase.Request, t Token) {
	tc.StoreSig(Signature(req), t)
}

// StoreSig is Store keyed by a precomputed Signature.
func (tc *TokenCache) StoreSig(key string, t Token) {
	if el, ok := tc.tokens[key]; ok {
		el.Value.(*tokenEntry).tok = t
		tc.order.MoveToFront(el)
		return
	}
	tc.tokens[key] = tc.order.PushFront(&tokenEntry{key: key, tok: t})
	for tc.order.Len() > tc.max {
		tc.evictOldest()
	}
}

// InvalidateType drops every token pinned to function type t — the
// correct response when t's implementation sub-tree is updated at run
// time (the paper's future-work dynamic case-base update). Invalidations
// are not counted as evictions.
func (tc *TokenCache) InvalidateType(t casebase.TypeID) int {
	n := 0
	var next *list.Element
	for el := tc.order.Front(); el != nil; el = next {
		next = el.Next()
		ent := el.Value.(*tokenEntry)
		if ent.tok.Type == t {
			tc.order.Remove(el)
			delete(tc.tokens, ent.key)
			n++
		}
	}
	return n
}

// InvalidateAll empties the cache.
func (tc *TokenCache) InvalidateAll() {
	tc.tokens = make(map[string]*list.Element)
	tc.order.Init()
}

// Epoch returns the case-base epoch the live tokens were minted against
// (zero until SetEpoch is first called).
func (tc *TokenCache) Epoch() uint64 { return tc.epoch }

// SetEpoch binds the cache to a case-base epoch. Moving to a different
// epoch empties the cache first: a token minted against snapshot N must
// never bypass retrieval against snapshot N+1, because the pinned
// implementation may have been revised or retired in between. It
// returns how many stale tokens were dropped. Invalidations are not
// counted as evictions.
func (tc *TokenCache) SetEpoch(epoch uint64) int {
	if epoch == tc.epoch {
		return 0
	}
	n := tc.order.Len()
	tc.InvalidateAll()
	tc.epoch = epoch
	return n
}

// Len returns the number of live tokens.
func (tc *TokenCache) Len() int { return tc.order.Len() }

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (tc *TokenCache) HitRate() float64 {
	n := tc.hits + tc.misses
	if n == 0 {
		return 0
	}
	return float64(tc.hits) / float64(n)
}

// Counters returns the raw hit/miss counts.
func (tc *TokenCache) Counters() (hits, misses int) { return tc.hits, tc.misses }

// Evictions returns how many tokens the LRU cap has dropped.
func (tc *TokenCache) Evictions() int { return tc.evictions }
