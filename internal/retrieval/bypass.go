package retrieval

import (
	"fmt"
	"strings"

	"qosalloc/internal/casebase"
)

// Token is the paper's bypass token (§3): "data on the previous selection
// which can be reused at repeated function calls so that only an
// availability check on the function and its allocated resources has to
// be done". It pins the implementation chosen for a request signature.
type Token struct {
	Type       casebase.TypeID
	Impl       casebase.ImplID
	Similarity float64
}

// TokenCache maps request signatures to bypass tokens. It is a plain
// cache: the allocation manager stores a token after a successful
// placement and invalidates it when the case base changes or the pinned
// implementation is evicted. Not safe for concurrent use; the allocation
// manager serializes access.
type TokenCache struct {
	tokens map[string]Token
	hits   int
	misses int
}

// NewTokenCache returns an empty cache.
func NewTokenCache() *TokenCache {
	return &TokenCache{tokens: make(map[string]Token)}
}

// Signature derives the cache key from a request: function type plus the
// sorted (ID, value, weight) constraint list. Two requests with the same
// signature would retrieve the same implementation, so the retrieval can
// be bypassed for the second one.
func Signature(req casebase.Request) string {
	var b strings.Builder
	fmt.Fprintf(&b, "t%d", req.Type)
	for _, c := range req.Constraints {
		fmt.Fprintf(&b, "|%d=%d*%.6f", c.ID, c.Value, c.Weight)
	}
	return b.String()
}

// Lookup returns the token for req if one is cached.
func (tc *TokenCache) Lookup(req casebase.Request) (Token, bool) {
	t, ok := tc.tokens[Signature(req)]
	if ok {
		tc.hits++
	} else {
		tc.misses++
	}
	return t, ok
}

// Store caches a token for req.
func (tc *TokenCache) Store(req casebase.Request, t Token) {
	tc.tokens[Signature(req)] = t
}

// InvalidateType drops every token pinned to function type t — the
// correct response when t's implementation sub-tree is updated at run
// time (the paper's future-work dynamic case-base update).
func (tc *TokenCache) InvalidateType(t casebase.TypeID) int {
	n := 0
	for k, tok := range tc.tokens {
		if tok.Type == t {
			delete(tc.tokens, k)
			n++
		}
	}
	return n
}

// InvalidateAll empties the cache.
func (tc *TokenCache) InvalidateAll() {
	tc.tokens = make(map[string]Token)
}

// Len returns the number of live tokens.
func (tc *TokenCache) Len() int { return len(tc.tokens) }

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (tc *TokenCache) HitRate() float64 {
	n := tc.hits + tc.misses
	if n == 0 {
		return 0
	}
	return float64(tc.hits) / float64(n)
}

// Counters returns the raw hit/miss counts.
func (tc *TokenCache) Counters() (hits, misses int) { return tc.hits, tc.misses }
