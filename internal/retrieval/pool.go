package retrieval

import (
	"sync"

	"qosalloc/internal/casebase"
)

// Engine and FixedEngine are deliberately single-threaded, like the
// paper's FSM: per-retrieval statistics accumulate without locks. Pool
// is the concurrency layer for hosts that serve many applications at
// once — it hands each goroutine its own Engine over the shared
// (immutable) case base and merges the statistics on demand.
type Pool struct {
	cb  *casebase.CaseBase
	opt Options

	mu      sync.Mutex
	idle    []*Engine
	retired Stats // stats folded in from returned engines
}

// NewPool returns a concurrency-safe retrieval front end over cb.
func NewPool(cb *casebase.CaseBase, opt Options) *Pool {
	return &Pool{cb: cb, opt: opt}
}

// get borrows an engine.
func (p *Pool) get() *Engine {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.idle); n > 0 {
		e := p.idle[n-1]
		p.idle = p.idle[:n-1]
		return e
	}
	return NewEngine(p.cb, p.opt)
}

// put returns an engine, folding its stats into the pool totals so they
// are not double-counted on reuse.
func (p *Pool) put(e *Engine) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := e.Stats()
	p.retired.Retrievals += s.Retrievals
	p.retired.ImplsScored += s.ImplsScored
	p.retired.AttrsCompared += s.AttrsCompared
	p.retired.BelowThreshold += s.BelowThreshold
	e.stats = Stats{}
	p.idle = append(p.idle, e)
}

// Retrieve is Engine.Retrieve, safe for concurrent use.
func (p *Pool) Retrieve(req casebase.Request) (Result, error) {
	e := p.get()
	defer p.put(e)
	return e.Retrieve(req)
}

// RetrieveN is Engine.RetrieveN, safe for concurrent use.
func (p *Pool) RetrieveN(req casebase.Request, n int) ([]Result, error) {
	e := p.get()
	defer p.put(e)
	return e.RetrieveN(req, n)
}

// RetrieveAll is Engine.RetrieveAll, safe for concurrent use.
func (p *Pool) RetrieveAll(req casebase.Request) ([]Result, error) {
	e := p.get()
	defer p.put(e)
	return e.RetrieveAll(req)
}

// Stats returns the merged counters of every completed call.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.retired
}
