package retrieval

import (
	"sync"

	"qosalloc/internal/casebase"
)

// DefaultMaxIdle is the idle-list retention cap of a Pool. Engines are a
// few hundred bytes plus their options, so a burst of N concurrent
// callers would otherwise pin N engines forever; the cap bounds the
// steady-state footprint to the worst sustained (not peak) concurrency.
const DefaultMaxIdle = 16

// Engine and FixedEngine are deliberately single-threaded, like the
// paper's FSM: per-retrieval statistics accumulate without locks. Pool
// is the concurrency layer for hosts that serve many applications at
// once — it hands each goroutine its own Engine over the shared
// (immutable) case base and merges the statistics on demand.
type Pool struct {
	cb  *casebase.CaseBase
	opt Options
	met *Metrics

	mu       sync.Mutex
	idle     []*Engine
	maxIdle  int
	inFlight int
	borrows  int
	misses   int
	discards int
	retired  Stats // stats folded in from returned engines
}

// PoolStats extends the merged engine counters with the pool's own
// traffic accounting. Snapshot semantics: Merged folds in an engine's
// counters when the engine is returned, so a snapshot taken mid-burst
// excludes the partial work of the InFlight engines still checked out —
// Merged is exact over *completed* calls, and InFlight tells the reader
// how many calls are still unaccounted. (Folding at return, rather than
// sharing atomics across engines, keeps the single-threaded engine hot
// path free of synchronization.)
type PoolStats struct {
	Merged   Stats // counters of every completed call
	InFlight int   // engines currently checked out (work not yet folded)
	Idle     int   // engines parked for reuse
	Borrows  int   // total borrows (hits + misses)
	Misses   int   // borrows that constructed a new engine
	Discards int   // returned engines dropped by the idle cap
}

// NewPool returns a concurrency-safe retrieval front end over cb with
// the DefaultMaxIdle retention cap.
func NewPool(cb *casebase.CaseBase, opt Options) *Pool {
	return &Pool{cb: cb, opt: opt, maxIdle: DefaultMaxIdle, met: NewMetrics(nil)}
}

// SetMaxIdle bounds the idle list to n engines (n < 1 keeps no idle
// engines: every borrow constructs, every return discards).
func (p *Pool) SetMaxIdle(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n < 0 {
		n = 0
	}
	p.maxIdle = n
	if len(p.idle) > n {
		p.discards += len(p.idle) - n
		p.idle = p.idle[:n]
	}
	p.met.PoolIdle.Set(int64(len(p.idle)))
}

// Instrument points the pool's observability at the given bundle; the
// bundle is handed to every engine the pool constructs from now on.
func (p *Pool) Instrument(m *Metrics) {
	if m == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.met = m
	for _, e := range p.idle {
		e.Instrument(m)
	}
}

// get borrows an engine.
func (p *Pool) get() *Engine {
	p.mu.Lock()
	p.borrows++
	p.inFlight++
	if n := len(p.idle); n > 0 {
		e := p.idle[n-1]
		p.idle[n-1] = nil
		p.idle = p.idle[:n-1]
		p.met.PoolBorrowHits.Inc()
		p.met.PoolInFlight.Set(int64(p.inFlight))
		p.met.PoolIdle.Set(int64(len(p.idle)))
		p.mu.Unlock()
		return e
	}
	p.misses++
	p.met.PoolBorrowMisses.Inc()
	p.met.PoolInFlight.Set(int64(p.inFlight))
	met := p.met
	p.mu.Unlock()
	// Construct outside the lock: a burst of misses must not serialize
	// on engine construction.
	e := NewEngine(p.cb, p.opt)
	e.Instrument(met)
	return e
}

// put returns an engine, folding its stats into the pool totals so they
// are not double-counted on reuse. Engines beyond the idle cap are
// dropped for the garbage collector.
func (p *Pool) put(e *Engine) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := e.Stats()
	p.retired.Retrievals += s.Retrievals
	p.retired.ImplsScored += s.ImplsScored
	p.retired.AttrsCompared += s.AttrsCompared
	p.retired.BelowThreshold += s.BelowThreshold
	e.stats = Stats{}
	p.inFlight--
	if len(p.idle) < p.maxIdle {
		p.idle = append(p.idle, e)
	} else {
		p.discards++
		p.met.PoolDiscards.Inc()
	}
	p.met.PoolInFlight.Set(int64(p.inFlight))
	p.met.PoolIdle.Set(int64(len(p.idle)))
}

// Retrieve is Engine.Retrieve, safe for concurrent use.
func (p *Pool) Retrieve(req casebase.Request) (Result, error) {
	e := p.get()
	defer p.put(e)
	return e.Retrieve(req)
}

// RetrieveN is Engine.RetrieveN, safe for concurrent use.
func (p *Pool) RetrieveN(req casebase.Request, n int) ([]Result, error) {
	e := p.get()
	defer p.put(e)
	return e.RetrieveN(req, n)
}

// RetrieveAll is Engine.RetrieveAll, safe for concurrent use.
func (p *Pool) RetrieveAll(req casebase.Request) ([]Result, error) {
	e := p.get()
	defer p.put(e)
	return e.RetrieveAll(req)
}

// Stats returns the merged counters of every completed call. Partial
// work of engines still checked out is excluded; use PoolStats to see
// how many calls are in flight when reading mid-burst.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.retired
}

// PoolStats returns the merged counters plus the pool's own traffic
// accounting (see the PoolStats type for the snapshot semantics).
func (p *Pool) PoolStats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		Merged:   p.retired,
		InFlight: p.inFlight,
		Idle:     len(p.idle),
		Borrows:  p.borrows,
		Misses:   p.misses,
		Discards: p.discards,
	}
}
