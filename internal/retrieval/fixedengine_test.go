package retrieval

import (
	"math"
	"math/rand"
	"testing"

	"qosalloc/internal/attr"
	"qosalloc/internal/casebase"
)

func TestFixedTableOne(t *testing.T) {
	cb, err := casebase.PaperCaseBase()
	if err != nil {
		t.Fatal(err)
	}
	fe := NewFixedEngine(cb)
	best, err := fe.Retrieve(casebase.PaperRequest())
	if err != nil {
		t.Fatal(err)
	}
	if best.Impl != 2 {
		t.Errorf("fixed best = %d, want DSP (2)", best.Impl)
	}
	if math.Abs(best.Float()-0.96) > 0.01 {
		t.Errorf("fixed S = %v, want ≈0.96", best.Float())
	}
}

func TestFixedRetrieveNOrder(t *testing.T) {
	cb, _ := casebase.PaperCaseBase()
	fe := NewFixedEngine(cb)
	got, err := fe.RetrieveN(casebase.PaperRequest(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0].Impl != 2 || got[1].Impl != 1 || got[2].Impl != 3 {
		t.Errorf("order = %d,%d,%d, want 2,1,3", got[0].Impl, got[1].Impl, got[2].Impl)
	}
	if _, err := fe.RetrieveN(casebase.PaperRequest(), -1); err == nil {
		t.Error("negative n must error")
	}
}

func TestFixedRejectsInvalidRequest(t *testing.T) {
	cb, _ := casebase.PaperCaseBase()
	fe := NewFixedEngine(cb)
	bad := casebase.NewRequest(99, casebase.Constraint{ID: 1, Value: 16, Weight: 1})
	if _, err := fe.Retrieve(bad); err == nil {
		t.Error("unknown type must error")
	}
}

func TestRecipExposed(t *testing.T) {
	cb, _ := casebase.PaperCaseBase()
	fe := NewFixedEngine(cb)
	if _, ok := fe.Recip(uint16(casebase.AttrBitwidth)); !ok {
		t.Error("Recip for a defined attribute must exist")
	}
	if _, ok := fe.Recip(999); ok {
		t.Error("Recip for unknown attribute must be absent")
	}
}

// randomCaseBase builds a randomized registry + case base with nTypes
// function types, implsPer implementations each, drawing attrsPer
// attributes from a universe of attrUniverse attribute types. Shared with
// the paper-scale experiments via this test helper pattern (package
// workload provides the production generator).
func randomCaseBase(r *rand.Rand, nTypes, implsPer, attrsPer, attrUniverse int) (*casebase.CaseBase, *attr.Registry) {
	reg := attr.NewRegistry()
	for i := 1; i <= attrUniverse; i++ {
		lo := attr.Value(r.Intn(50))
		hi := lo + attr.Value(1+r.Intn(200))
		reg.MustDefine(attr.Def{ID: attr.ID(i), Name: "a", Lo: lo, Hi: hi})
	}
	b := casebase.NewBuilder(reg)
	for ti := 1; ti <= nTypes; ti++ {
		b.AddType(casebase.TypeID(ti), "t")
		for ii := 1; ii <= implsPer; ii++ {
			perm := r.Perm(attrUniverse)[:attrsPer]
			var ps []attr.Pair
			for _, ai := range perm {
				d, _ := reg.Lookup(attr.ID(ai + 1))
				v := d.Lo + attr.Value(r.Intn(int(d.Hi-d.Lo)+1))
				ps = append(ps, attr.Pair{ID: d.ID, Value: v})
			}
			b.AddImpl(casebase.TypeID(ti), casebase.Implementation{
				ID: casebase.ImplID(ii), Attrs: ps,
			})
		}
	}
	cb, err := b.Build()
	if err != nil {
		panic(err)
	}
	return cb, reg
}

func randomRequest(r *rand.Rand, cb *casebase.CaseBase, reg *attr.Registry, nConstraints int) casebase.Request {
	types := cb.Types()
	ft := types[r.Intn(len(types))]
	ids := reg.IDs()
	perm := r.Perm(len(ids))
	var cs []casebase.Constraint
	for _, i := range perm {
		if len(cs) == nConstraints {
			break
		}
		d, _ := reg.Lookup(ids[i])
		v := d.Lo + attr.Value(r.Intn(int(d.Hi-d.Lo)+1))
		cs = append(cs, casebase.Constraint{ID: d.ID, Value: v})
	}
	return casebase.NewRequest(ft.ID, cs...).EqualWeights()
}

// TestFixedMatchesFloat is the paper's §4.2 accuracy claim as a property:
// across randomized case bases, the 16-bit fixed-point engine and the
// float64 engine must pick the same best implementation whenever the
// float ranking is unambiguous beyond fixed-point resolution.
func TestFixedMatchesFloat(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	agree, ambiguous := 0, 0
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		cb, reg := randomCaseBase(r, 3, 8, 5, 10)
		fe := NewFixedEngine(cb)
		e := NewEngine(cb, Options{})
		req := randomRequest(r, cb, reg, 4)

		all, err := e.RetrieveAll(req)
		if err != nil {
			t.Fatal(err)
		}
		fbest, err := fe.Retrieve(req)
		if err != nil {
			t.Fatal(err)
		}
		// Margin below which fixed point may legitimately disagree:
		// accumulated rounding is bounded by a few Q15 LSBs per
		// attribute.
		const margin = 6.0 / 32768
		if len(all) > 1 && all[0].Similarity-all[1].Similarity < margin {
			ambiguous++
			continue
		}
		if fbest.Impl == all[0].Impl {
			agree++
		} else {
			t.Errorf("trial %d: float best %d (S=%.6f), fixed best %d (S=%.6f)",
				trial, all[0].Impl, all[0].Similarity, fbest.Impl, fbest.Float())
		}
	}
	if agree == 0 {
		t.Fatal("no unambiguous trials — generator is broken")
	}
	t.Logf("agree=%d ambiguous=%d of %d", agree, ambiguous, trials)
}

// TestFixedSimilarityError bounds the absolute similarity error of the
// fixed engine against float64.
func TestFixedSimilarityError(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	worst := 0.0
	for trial := 0; trial < 200; trial++ {
		cb, reg := randomCaseBase(r, 1, 5, 4, 8)
		fe := NewFixedEngine(cb)
		e := NewEngine(cb, Options{})
		req := randomRequest(r, cb, reg, 3)
		all, _ := e.RetrieveAll(req)
		ft, _ := cb.Type(req.Type)
		for _, res := range all {
			im, _ := ft.Impl(res.Impl)
			f := fe.Score(im, req).Float()
			if d := math.Abs(f - res.Similarity); d > worst {
				worst = d
			}
		}
	}
	// Reciprocal rounding error scales with d/dmax ratios but stays
	// well below a percent for realistic attribute ranges.
	if worst > 0.01 {
		t.Errorf("worst fixed-vs-float similarity error = %v, want < 0.01", worst)
	}
	t.Logf("worst error = %.6f", worst)
}
