package retrieval

import (
	"errors"
	"math"
	"testing"

	"qosalloc/internal/casebase"
	"qosalloc/internal/similarity"
)

func paperEngine(t *testing.T, opt Options) *Engine {
	t.Helper()
	cb, err := casebase.PaperCaseBase()
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(cb, opt)
}

// TestTableOne reproduces Table 1 of the paper end to end: the FIR
// equalizer request must score the DSP variant 0.96, the FPGA variant
// 0.85 and the GP-Proc variant 0.43, and the DSP variant must win.
func TestTableOne(t *testing.T) {
	e := paperEngine(t, Options{KeepLocals: true})
	all, err := e.RetrieveAll(casebase.PaperRequest())
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("scored %d impls, want 3", len(all))
	}
	byImpl := map[casebase.ImplID]Result{}
	for _, r := range all {
		byImpl[r.Impl] = r
	}
	want := map[casebase.ImplID]float64{1: 0.85, 2: 0.96, 3: 0.43}
	for id, s := range want {
		got := byImpl[id].Similarity
		if math.Abs(got-s) > 0.005 {
			t.Errorf("impl %d: S = %.4f, want ≈%.2f (Table 1)", id, got, s)
		}
	}
	if all[0].Impl != 2 || all[0].Target != casebase.TargetDSP {
		t.Errorf("best = impl %d (%v), want DSP impl 2", all[0].Impl, all[0].Target)
	}
	if all[1].Impl != 1 || all[2].Impl != 3 {
		t.Errorf("ranking = %d,%d,%d, want 2,1,3", all[0].Impl, all[1].Impl, all[2].Impl)
	}
}

// TestTableOneLocals checks the per-attribute breakdown against the
// printed local similarities.
func TestTableOneLocals(t *testing.T) {
	e := paperEngine(t, Options{KeepLocals: true})
	all, err := e.RetrieveAll(casebase.PaperRequest())
	if err != nil {
		t.Fatal(err)
	}
	var gpp Result
	for _, r := range all {
		if r.Impl == 3 {
			gpp = r
		}
	}
	// Table 1 GP-Proc rows print s = 0.11, 0.66, 0.51 for attrs 1, 3, 4
	// (truncated); compare against the exact eq. (1) fractions.
	wants := []struct {
		id  uint16
		sim float64
	}{{1, 1 - 8.0/9}, {3, 1 - 1.0/3}, {4, 1 - 18.0/37}}
	if len(gpp.Locals) != 3 {
		t.Fatalf("locals = %d, want 3", len(gpp.Locals))
	}
	for i, w := range wants {
		l := gpp.Locals[i]
		if l.ID != w.id {
			t.Errorf("local %d has ID %d, want %d", i, l.ID, w.id)
		}
		if math.Abs(l.Sim-w.sim) > 0.005 {
			t.Errorf("local s for attr %d = %.4f, want ≈%.2f", w.id, l.Sim, w.sim)
		}
		if !l.Found {
			t.Errorf("attr %d should be found", w.id)
		}
	}
}

func TestRetrieveBest(t *testing.T) {
	e := paperEngine(t, Options{})
	best, err := e.Retrieve(casebase.PaperRequest())
	if err != nil {
		t.Fatal(err)
	}
	if best.Impl != 2 {
		t.Errorf("best = %d, want DSP (2)", best.Impl)
	}
}

func TestThresholdRejection(t *testing.T) {
	e := paperEngine(t, Options{Threshold: 0.99})
	_, err := e.Retrieve(casebase.PaperRequest())
	var nm *ErrNoMatch
	if !errors.As(err, &nm) {
		t.Fatalf("want ErrNoMatch, got %v", err)
	}
	if math.Abs(nm.Best-0.96) > 0.01 {
		t.Errorf("ErrNoMatch.Best = %v, want ≈0.96", nm.Best)
	}
	if nm.Error() == "" {
		t.Error("ErrNoMatch must render a message")
	}
}

func TestThresholdFiltersN(t *testing.T) {
	// Threshold 0.5 admits DSP (0.96) and FPGA (0.85) but rejects
	// GP-Proc (0.43) — the §3 "reject all results below a given
	// threshold similarity".
	e := paperEngine(t, Options{Threshold: 0.5})
	got, err := e.RetrieveN(casebase.PaperRequest(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("n-best returned %d results, want 2", len(got))
	}
	if got[0].Impl != 2 || got[1].Impl != 1 {
		t.Errorf("n-best order = %d,%d, want 2,1", got[0].Impl, got[1].Impl)
	}
}

func TestRetrieveNLimits(t *testing.T) {
	e := paperEngine(t, Options{})
	got, err := e.RetrieveN(casebase.PaperRequest(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("n=2 returned %d", len(got))
	}
	if _, err := e.RetrieveN(casebase.PaperRequest(), 0); err == nil {
		t.Error("n=0 must error")
	}
}

func TestMissingAttributeScoresZero(t *testing.T) {
	// Request the FFT with an output-mode constraint; no FFT variant
	// describes output-mode, so that local similarity must be 0.
	e := paperEngine(t, Options{KeepLocals: true})
	req := casebase.NewRequest(casebase.Type1DFFT,
		casebase.Constraint{ID: casebase.AttrBitwidth, Value: 16},
		casebase.Constraint{ID: casebase.AttrOutputMode, Value: 1},
	).EqualWeights()
	all, err := e.RetrieveAll(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range all {
		var om *LocalScore
		for i := range r.Locals {
			if r.Locals[i].ID == uint16(casebase.AttrOutputMode) {
				om = &r.Locals[i]
			}
		}
		if om == nil {
			t.Fatal("output-mode local score missing")
		}
		if om.Found || om.Sim != 0 {
			t.Errorf("impl %d: missing attribute must score 0, got found=%v s=%v",
				r.Impl, om.Found, om.Sim)
		}
		// Global is bounded above by 1 - w_missing.
		if r.Similarity > 0.5+1e-9 {
			t.Errorf("impl %d: S = %v exceeds 1 - w_missing", r.Impl, r.Similarity)
		}
	}
}

func TestInvalidRequestRejected(t *testing.T) {
	e := paperEngine(t, Options{})
	bad := casebase.NewRequest(99, casebase.Constraint{ID: 1, Value: 16, Weight: 1})
	if _, err := e.Retrieve(bad); err == nil {
		t.Error("unknown type must error")
	}
	if _, err := e.RetrieveAll(bad); err == nil {
		t.Error("RetrieveAll must validate too")
	}
	if _, err := e.RetrieveN(bad, 3); err == nil {
		t.Error("RetrieveN must validate too")
	}
}

func TestStatsAccumulate(t *testing.T) {
	e := paperEngine(t, Options{})
	req := casebase.PaperRequest()
	if _, err := e.Retrieve(req); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Retrievals != 1 || st.ImplsScored != 3 || st.AttrsCompared != 9 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAlternativeMeasures(t *testing.T) {
	// With the pessimistic Minimum amalgamation the DSP variant still
	// wins Table 1 (its worst local similarity 0.89 beats FPGA's 0.66).
	e := paperEngine(t, Options{Amalgamation: similarity.Minimum{}})
	best, err := e.Retrieve(casebase.PaperRequest())
	if err != nil {
		t.Fatal(err)
	}
	if best.Impl != 2 {
		t.Errorf("minimum amalgamation best = %d, want 2", best.Impl)
	}
	// With AtLeast local measure, surround (2) satisfies a stereo (1)
	// request fully, so the FPGA variant ties the DSP variant; DSP
	// still wins on the sample-rate attribute equally — both reach the
	// same S, and the tie breaks to the lower impl ID (1, FPGA).
	e2 := paperEngine(t, Options{Local: similarity.AtLeast{}})
	best2, err := e2.Retrieve(casebase.PaperRequest())
	if err != nil {
		t.Fatal(err)
	}
	if best2.Impl != 1 {
		t.Errorf("at-least best = %d, want 1 (FPGA ties DSP, lower ID wins)", best2.Impl)
	}
}

// Property: the ranking is invariant to the order implementations were
// added to the case base — only IDs and attribute content matter.
func TestRankingInsertionOrderInvariant(t *testing.T) {
	build := func(order []int) *casebase.CaseBase {
		reg := casebase.PaperRegistry()
		b := casebase.NewBuilder(reg)
		b.AddType(casebase.TypeFIREqualizer, "FIR Equalizer")
		src, _ := casebase.PaperCaseBase()
		ft, _ := src.Type(casebase.TypeFIREqualizer)
		for _, i := range order {
			b.AddImpl(casebase.TypeFIREqualizer, ft.Impls[i])
		}
		cb, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return cb
	}
	orders := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 2, 0}}
	var first []casebase.ImplID
	for _, order := range orders {
		e := NewEngine(build(order), Options{})
		all, err := e.RetrieveAll(casebase.PaperRequest())
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]casebase.ImplID, len(all))
		for i, r := range all {
			ids[i] = r.Impl
		}
		if first == nil {
			first = ids
			continue
		}
		for i := range ids {
			if ids[i] != first[i] {
				t.Fatalf("order %v changed the ranking: %v vs %v", order, ids, first)
			}
		}
	}
}

// Property: raising the threshold can only shrink the n-best result
// set, never reorder it.
func TestThresholdMonotonicity(t *testing.T) {
	cb, _ := casebase.PaperCaseBase()
	req := casebase.PaperRequest()
	var prev []Result
	for _, th := range []float64{0, 0.3, 0.5, 0.9, 0.97} {
		e := NewEngine(cb, Options{Threshold: th})
		got, err := e.RetrieveN(req, 10)
		if err != nil {
			var nm *ErrNoMatch
			if errors.As(err, &nm) {
				got = nil
			} else {
				t.Fatal(err)
			}
		}
		if prev != nil {
			if len(got) > len(prev) {
				t.Fatalf("threshold %v grew the result set", th)
			}
			for i := range got {
				if got[i].Impl != prev[i].Impl {
					t.Fatalf("threshold %v reordered results", th)
				}
			}
		}
		if got != nil {
			prev = got
		}
	}
}
