package retrieval

import (
	"testing"

	"qosalloc/internal/attr"
	"qosalloc/internal/casebase"
)

func TestTokenCacheRoundTrip(t *testing.T) {
	tc := NewTokenCache()
	req := casebase.PaperRequest()
	if _, ok := tc.Lookup(req); ok {
		t.Fatal("empty cache must miss")
	}
	tok := Token{Type: req.Type, Impl: 2, Similarity: 0.96}
	tc.Store(req, tok)
	got, ok := tc.Lookup(req)
	if !ok || got != tok {
		t.Fatalf("Lookup = %+v, %v", got, ok)
	}
	if tc.Len() != 1 {
		t.Errorf("Len = %d", tc.Len())
	}
	hits, misses := tc.Counters()
	if hits != 1 || misses != 1 {
		t.Errorf("counters = %d, %d", hits, misses)
	}
	if tc.HitRate() != 0.5 {
		t.Errorf("HitRate = %v", tc.HitRate())
	}
}

func TestSignatureDistinguishesRequests(t *testing.T) {
	a := casebase.PaperRequest()
	b := casebase.NewRequest(casebase.TypeFIREqualizer,
		casebase.Constraint{ID: casebase.AttrBitwidth, Value: 8}, // differs
		casebase.Constraint{ID: casebase.AttrOutputMode, Value: 1},
		casebase.Constraint{ID: casebase.AttrSampleRate, Value: 40},
	).EqualWeights()
	if Signature(a) == Signature(b) {
		t.Error("different values must give different signatures")
	}
	// Same content, different construction order → same signature
	// (NewRequest sorts).
	c := casebase.NewRequest(casebase.TypeFIREqualizer,
		casebase.Constraint{ID: casebase.AttrSampleRate, Value: 40},
		casebase.Constraint{ID: casebase.AttrOutputMode, Value: 1},
		casebase.Constraint{ID: casebase.AttrBitwidth, Value: 16},
	).EqualWeights()
	if Signature(a) != Signature(c) {
		t.Error("order-insensitive requests must share a signature")
	}
	// Weight changes the signature: a reweighted request may retrieve
	// a different variant.
	d := a.NormalizeWeights()
	d.Constraints[0].Weight = 0.8
	d.Constraints[1].Weight = 0.1
	d.Constraints[2].Weight = 0.1
	if Signature(a) == Signature(d) {
		t.Error("weights must participate in the signature")
	}
}

func TestInvalidateType(t *testing.T) {
	tc := NewTokenCache()
	reqA := casebase.PaperRequest()
	reqB := casebase.NewRequest(casebase.Type1DFFT,
		casebase.Constraint{ID: casebase.AttrBitwidth, Value: 16},
	).EqualWeights()
	tc.Store(reqA, Token{Type: reqA.Type, Impl: 2})
	tc.Store(reqB, Token{Type: reqB.Type, Impl: 1})
	if n := tc.InvalidateType(casebase.TypeFIREqualizer); n != 1 {
		t.Errorf("InvalidateType dropped %d, want 1", n)
	}
	if _, ok := tc.Lookup(reqA); ok {
		t.Error("invalidated token still present")
	}
	if _, ok := tc.Lookup(reqB); !ok {
		t.Error("unrelated token lost")
	}
	tc.InvalidateAll()
	if tc.Len() != 0 {
		t.Error("InvalidateAll left tokens behind")
	}
}

func TestHitRateEmpty(t *testing.T) {
	if NewTokenCache().HitRate() != 0 {
		t.Error("HitRate before lookups must be 0")
	}
}

// lruReq builds a distinct request signature per i (the cache never
// validates requests, so synthetic constraint values are fine).
func lruReq(i int) casebase.Request {
	return casebase.NewRequest(casebase.TypeFIREqualizer,
		casebase.Constraint{ID: casebase.AttrBitwidth, Value: attr.Value(i)},
	).EqualWeights()
}

func TestTokenCacheLRUEviction(t *testing.T) {
	tc := NewTokenCache()
	tc.SetMaxTokens(3)
	for i := 0; i < 3; i++ {
		tc.Store(lruReq(i), Token{Type: 1, Impl: casebase.ImplID(i)})
	}
	// Touch 0 so 1 becomes the LRU tail.
	if _, ok := tc.Lookup(lruReq(0)); !ok {
		t.Fatal("token 0 missing before eviction")
	}
	tc.Store(lruReq(3), Token{Type: 1, Impl: 3})
	if tc.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tc.Len())
	}
	if _, ok := tc.Lookup(lruReq(1)); ok {
		t.Error("LRU entry 1 survived past the cap")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := tc.Lookup(lruReq(i)); !ok {
			t.Errorf("entry %d evicted out of LRU order", i)
		}
	}
	if tc.Evictions() != 1 {
		t.Errorf("Evictions = %d, want 1", tc.Evictions())
	}
}

func TestTokenCacheSetMaxTokensShrinks(t *testing.T) {
	tc := NewTokenCache()
	for i := 0; i < 8; i++ {
		tc.Store(lruReq(i), Token{Type: 1, Impl: casebase.ImplID(i)})
	}
	tc.SetMaxTokens(2)
	if tc.Len() != 2 {
		t.Fatalf("Len = %d after shrink, want 2", tc.Len())
	}
	// The two most recently stored entries survive.
	for _, i := range []int{6, 7} {
		if _, ok := tc.Lookup(lruReq(i)); !ok {
			t.Errorf("recent entry %d lost in shrink", i)
		}
	}
	if tc.Evictions() != 6 {
		t.Errorf("Evictions = %d, want 6", tc.Evictions())
	}
	// n < 1 keeps no tokens (the SetMaxIdle precedent).
	tc.SetMaxTokens(0)
	if tc.Len() != 0 {
		t.Errorf("Len = %d with cap 0, want 0", tc.Len())
	}
	tc.Store(lruReq(9), Token{Type: 1, Impl: 9})
	if tc.Len() != 0 {
		t.Error("cap-0 cache retained a stored token")
	}
}

func TestTokenCacheStoreRefreshesRecency(t *testing.T) {
	tc := NewTokenCache()
	tc.SetMaxTokens(2)
	tc.Store(lruReq(0), Token{Type: 1, Impl: 0})
	tc.Store(lruReq(1), Token{Type: 1, Impl: 1})
	// Re-storing 0 (an updated pin) must refresh it, making 1 the tail.
	tc.Store(lruReq(0), Token{Type: 1, Impl: 10})
	tc.Store(lruReq(2), Token{Type: 1, Impl: 2})
	if got, ok := tc.Lookup(lruReq(0)); !ok || got.Impl != 10 {
		t.Errorf("refreshed entry = %+v, %v; want impl 10 present", got, ok)
	}
	if _, ok := tc.Lookup(lruReq(1)); ok {
		t.Error("stale entry 1 survived past the refreshed one")
	}
	// InvalidateType keeps the LRU bookkeeping consistent.
	if n := tc.InvalidateType(1); n != 2 {
		t.Errorf("InvalidateType = %d, want 2", n)
	}
	if tc.Len() != 0 || tc.order.Len() != 0 {
		t.Errorf("map/list out of sync after invalidate: %d/%d", tc.Len(), tc.order.Len())
	}
}

func TestTokenCacheSetEpoch(t *testing.T) {
	tc := NewTokenCache()
	if tc.Epoch() != 0 {
		t.Fatalf("fresh cache epoch = %d, want 0", tc.Epoch())
	}
	tc.SetEpoch(1)
	req := casebase.PaperRequest()
	tc.Store(req, Token{Type: req.Type, Impl: 2, Similarity: 0.96})
	tc.Store(lruReq(7), Token{Type: 1, Impl: 1})

	// Re-binding to the same epoch is a no-op: tokens survive.
	if n := tc.SetEpoch(1); n != 0 {
		t.Fatalf("SetEpoch(same) dropped %d tokens", n)
	}
	if _, ok := tc.Lookup(req); !ok {
		t.Fatal("same-epoch rebind lost a token")
	}

	// A new epoch empties the cache: a token minted against epoch N
	// must never bypass retrieval against epoch N+1.
	if n := tc.SetEpoch(2); n != 2 {
		t.Fatalf("SetEpoch(new) dropped %d tokens, want 2", n)
	}
	if tc.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", tc.Epoch())
	}
	if tc.Len() != 0 {
		t.Fatalf("Len = %d after epoch change, want 0", tc.Len())
	}
	if _, ok := tc.Lookup(req); ok {
		t.Fatal("stale-epoch token still served")
	}
}
