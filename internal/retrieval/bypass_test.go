package retrieval

import (
	"testing"

	"qosalloc/internal/casebase"
)

func TestTokenCacheRoundTrip(t *testing.T) {
	tc := NewTokenCache()
	req := casebase.PaperRequest()
	if _, ok := tc.Lookup(req); ok {
		t.Fatal("empty cache must miss")
	}
	tok := Token{Type: req.Type, Impl: 2, Similarity: 0.96}
	tc.Store(req, tok)
	got, ok := tc.Lookup(req)
	if !ok || got != tok {
		t.Fatalf("Lookup = %+v, %v", got, ok)
	}
	if tc.Len() != 1 {
		t.Errorf("Len = %d", tc.Len())
	}
	hits, misses := tc.Counters()
	if hits != 1 || misses != 1 {
		t.Errorf("counters = %d, %d", hits, misses)
	}
	if tc.HitRate() != 0.5 {
		t.Errorf("HitRate = %v", tc.HitRate())
	}
}

func TestSignatureDistinguishesRequests(t *testing.T) {
	a := casebase.PaperRequest()
	b := casebase.NewRequest(casebase.TypeFIREqualizer,
		casebase.Constraint{ID: casebase.AttrBitwidth, Value: 8}, // differs
		casebase.Constraint{ID: casebase.AttrOutputMode, Value: 1},
		casebase.Constraint{ID: casebase.AttrSampleRate, Value: 40},
	).EqualWeights()
	if Signature(a) == Signature(b) {
		t.Error("different values must give different signatures")
	}
	// Same content, different construction order → same signature
	// (NewRequest sorts).
	c := casebase.NewRequest(casebase.TypeFIREqualizer,
		casebase.Constraint{ID: casebase.AttrSampleRate, Value: 40},
		casebase.Constraint{ID: casebase.AttrOutputMode, Value: 1},
		casebase.Constraint{ID: casebase.AttrBitwidth, Value: 16},
	).EqualWeights()
	if Signature(a) != Signature(c) {
		t.Error("order-insensitive requests must share a signature")
	}
	// Weight changes the signature: a reweighted request may retrieve
	// a different variant.
	d := a.NormalizeWeights()
	d.Constraints[0].Weight = 0.8
	d.Constraints[1].Weight = 0.1
	d.Constraints[2].Weight = 0.1
	if Signature(a) == Signature(d) {
		t.Error("weights must participate in the signature")
	}
}

func TestInvalidateType(t *testing.T) {
	tc := NewTokenCache()
	reqA := casebase.PaperRequest()
	reqB := casebase.NewRequest(casebase.Type1DFFT,
		casebase.Constraint{ID: casebase.AttrBitwidth, Value: 16},
	).EqualWeights()
	tc.Store(reqA, Token{Type: reqA.Type, Impl: 2})
	tc.Store(reqB, Token{Type: reqB.Type, Impl: 1})
	if n := tc.InvalidateType(casebase.TypeFIREqualizer); n != 1 {
		t.Errorf("InvalidateType dropped %d, want 1", n)
	}
	if _, ok := tc.Lookup(reqA); ok {
		t.Error("invalidated token still present")
	}
	if _, ok := tc.Lookup(reqB); !ok {
		t.Error("unrelated token lost")
	}
	tc.InvalidateAll()
	if tc.Len() != 0 {
		t.Error("InvalidateAll left tokens behind")
	}
}

func TestHitRateEmpty(t *testing.T) {
	if NewTokenCache().HitRate() != 0 {
		t.Error("HitRate before lookups must be 0")
	}
}
