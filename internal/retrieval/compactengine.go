package retrieval

import (
	"fmt"
	"sort"

	"qosalloc/internal/casebase"
	"qosalloc/internal/fixed"
	"qosalloc/internal/memlist"
)

// CompactEngine scores implementations over the block-compacted memory
// layout (memlist.CompactCaseBase) — the §5 "compacted representation
// of the attribute blocks" projected to roughly double retrieval
// speed. It computes exactly the FixedEngine arithmetic (fig. 7
// datapath: Manhattan distance, reciprocal multiply, Q15 weighted
// accumulation with saturation) but fetches operands from densely
// packed structure-of-arrays blocks instead of pointer-chased lists:
//
//   - attribute IDs and values stream from two parallel arrays, so the
//     per-implementation scan is a resumable two-pointer merge with no
//     pointer dereference and no interleaved non-key words;
//   - supplemental reciprocals are resolved once at construction into a
//     per-pair array, eliminating the per-probe supplemental lookup;
//   - request weights convert to Q15 once per retrieval, not once per
//     implementation.
//
// The inner accumulation is branch-free in the datapath sense: a match
// mask selects between the weighted term and zero via array indexing,
// mirroring the hardware's multiplexed accumulator enable rather than a
// skipped instruction. Bit-identity with FixedEngine is enforced by
// tests over random case bases, sorted and unsorted requests alike.
type CompactEngine struct {
	cb *casebase.CaseBase // request validation + impl metadata
	cc *memlist.CompactCaseBase
	// pairRecip[k] is the UQ16 reciprocal for attribute AttrIDs[k],
	// index-aligned with the packed attribute blocks. Attributes
	// absent from the supplemental table get 0, the same value the
	// FixedEngine map lookup yields.
	pairRecip []fixed.UQ16
	// typeAt maps a function type ID to its index in TypeIDs/ImplOff.
	typeAt map[uint16]int
}

// NewCompactEngine compacts the case base and builds the kernel's
// constant tables. It fails only when the case base exceeds the 16-bit
// word-address space of the compacted image.
func NewCompactEngine(cb *casebase.CaseBase) (*CompactEngine, error) {
	cc, err := memlist.CompactFromCaseBase(cb)
	if err != nil {
		return nil, err
	}
	ce := &CompactEngine{
		cb:        cb,
		cc:        cc,
		pairRecip: make([]fixed.UQ16, len(cc.AttrIDs)),
		typeAt:    make(map[uint16]int, len(cc.TypeIDs)),
	}
	recipOf := make(map[uint16]fixed.UQ16, len(cc.SuppIDs))
	for i, id := range cc.SuppIDs {
		recipOf[id] = fixed.UQ16(cc.SuppRecip[i])
	}
	for k, id := range cc.AttrIDs {
		ce.pairRecip[k] = recipOf[id]
	}
	for t, id := range cc.TypeIDs {
		ce.typeAt[id] = t
	}
	return ce, nil
}

// Compact exposes the underlying compacted case base, e.g. for encoding
// the BRAM image the engine's constants were derived from.
func (ce *CompactEngine) Compact() *memlist.CompactCaseBase { return ce.cc }

// compactQuery is the once-per-retrieval request preparation: constraint
// IDs and values widened to the 16-bit bus domain, weights converted to
// Q15 with the same policy as the memory-image encoder.
type compactQuery struct {
	ids    []uint16
	vals   []uint16
	ws     []fixed.Q15
	sorted bool // IDs strictly ascending → resumable merge applies
}

func makeQuery(req casebase.Request) compactQuery {
	n := len(req.Constraints)
	q := compactQuery{
		ids:    make([]uint16, n),
		vals:   make([]uint16, n),
		sorted: true,
	}
	fws := make([]float64, n)
	for i, c := range req.Constraints {
		q.ids[i] = uint16(c.ID)
		q.vals[i] = uint16(c.Value)
		fws[i] = c.Weight
		if i > 0 && q.ids[i] <= q.ids[i-1] {
			q.sorted = false
		}
	}
	q.ws = fixed.WeightsQ15(fws)
	return q
}

// scoreExtent computes the Q15 global similarity of the implementation
// whose attribute pairs occupy [lo, hi) in the packed blocks. The
// constraint loop runs in request order — the accumulation order the
// Q15 rounding remainder makes significant — while the attribute cursor
// advances monotonically through the extent (sorted requests never
// rescan; unsorted ones fall back to a bounded binary search per
// constraint). A miss accumulates a masked zero instead of branching
// around the accumulator.
func (ce *CompactEngine) scoreExtent(lo, hi int, q *compactQuery) fixed.Q15 {
	ids, vals, recips := ce.cc.AttrIDs, ce.cc.AttrVals, ce.pairRecip
	var acc fixed.Q15
	j := lo
	for i := range q.ids {
		id := q.ids[i]
		if q.sorted {
			for j < hi && ids[j] < id {
				j++
			}
		} else {
			j = lo + sort.Search(hi-lo, func(k int) bool { return ids[lo+k] >= id })
		}
		m := 0
		var s fixed.Q15
		if j < hi && ids[j] == id {
			d := fixed.Dist(q.vals[i], vals[j])
			s = fixed.LocalSim(d, recips[j])
			m = 1
		}
		sel := [2]fixed.Q15{0, fixed.Mul(q.ws[i], s)}
		acc = fixed.AddSat(acc, sel[m])
	}
	return acc
}

// ScoreType validates the request and returns the Q15 similarity of
// every implementation of the requested type, in storage order — the
// raw column the Engine integration zips with implementation metadata.
func (ce *CompactEngine) ScoreType(req casebase.Request) ([]fixed.Q15, error) {
	if err := req.Validate(ce.cb); err != nil {
		return nil, err
	}
	return ce.scoreType(req)
}

// scoreType is ScoreType without the request validation, for callers
// (Engine.RetrieveAll) that already validated.
func (ce *CompactEngine) scoreType(req casebase.Request) ([]fixed.Q15, error) {
	t, ok := ce.typeAt[uint16(req.Type)]
	if !ok {
		// Validate accepted the type against the case base, so the
		// compacted view must know it too; this is unreachable unless
		// the two drift apart.
		return nil, fmt.Errorf("retrieval: type %d missing from compacted layout", req.Type)
	}
	q := makeQuery(req)
	iLo, iHi := int(ce.cc.ImplOff[t]), int(ce.cc.ImplOff[t+1])
	out := make([]fixed.Q15, 0, iHi-iLo)
	for i := iLo; i < iHi; i++ {
		out = append(out, ce.scoreExtent(int(ce.cc.AttrOff[i]), int(ce.cc.AttrOff[i+1]), &q))
	}
	return out, nil
}

// Retrieve runs the fig. 6 most-similar scan over the compacted layout:
// storage order, running maximum, strict > so the first of equals wins
// — the same comparator semantics as FixedEngine.Retrieve, asserted
// bit-identical in tests.
func (ce *CompactEngine) Retrieve(req casebase.Request) (FixedResult, error) {
	if err := req.Validate(ce.cb); err != nil {
		return FixedResult{}, err
	}
	t, ok := ce.typeAt[uint16(req.Type)]
	if !ok {
		return FixedResult{}, fmt.Errorf("retrieval: type %d missing from compacted layout", req.Type)
	}
	q := makeQuery(req)
	iLo, iHi := int(ce.cc.ImplOff[t]), int(ce.cc.ImplOff[t+1])
	if iLo == iHi {
		return FixedResult{}, fmt.Errorf("retrieval: type %d has no implementations", req.Type)
	}
	best := FixedResult{Type: req.Type}
	haveBest := false
	for i := iLo; i < iHi; i++ {
		s := ce.scoreExtent(int(ce.cc.AttrOff[i]), int(ce.cc.AttrOff[i+1]), &q)
		if !haveBest || s > best.Similarity {
			best.Impl = casebase.ImplID(ce.cc.ImplIDs[i])
			best.Similarity = s
			haveBest = true
		}
	}
	return best, nil
}

// RetrieveN returns the n most similar implementations, best first, ties
// by ascending implementation ID — FixedEngine.RetrieveN over the
// compacted layout.
func (ce *CompactEngine) RetrieveN(req casebase.Request, n int) ([]FixedResult, error) {
	if n <= 0 {
		return nil, fmt.Errorf("retrieval: n must be positive, got %d", n)
	}
	if err := req.Validate(ce.cb); err != nil {
		return nil, err
	}
	t, ok := ce.typeAt[uint16(req.Type)]
	if !ok {
		return nil, fmt.Errorf("retrieval: type %d missing from compacted layout", req.Type)
	}
	q := makeQuery(req)
	iLo, iHi := int(ce.cc.ImplOff[t]), int(ce.cc.ImplOff[t+1])
	out := make([]FixedResult, 0, iHi-iLo)
	for i := iLo; i < iHi; i++ {
		out = append(out, FixedResult{
			Type: req.Type, Impl: casebase.ImplID(ce.cc.ImplIDs[i]),
			Similarity: ce.scoreExtent(int(ce.cc.AttrOff[i]), int(ce.cc.AttrOff[i+1]), &q),
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Similarity != out[j].Similarity {
			return out[i].Similarity > out[j].Similarity
		}
		return out[i].Impl < out[j].Impl
	})
	if len(out) > n {
		out = out[:n]
	}
	return out, nil
}
