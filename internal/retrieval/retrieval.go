// Package retrieval implements the paper's most-similar retrieval step
// (fig. 6): given a function request with QoS constraints, score every
// implementation variant of the requested function type against the
// request and return the best match(es).
//
// Two engines are provided. Engine is the double-precision reference —
// the role Matlab plays in §4.2 — supporting pluggable similarity
// measures. FixedEngine (fixedengine.go) reproduces the 16-bit datapath
// arithmetic bit-for-bit, so that the paper's claim "we get the same
// retrieval results in high precision floating point ... as we get from
// VHDL simulation" can be checked as a property over randomized case
// bases. The n-best extension sketched in §5 ("our next step will be an
// extension for getting n most similar solutions") is RetrieveN.
package retrieval

import (
	"fmt"
	"sort"

	"qosalloc/internal/casebase"
	"qosalloc/internal/similarity"
)

// LocalScore records one attribute comparison, a row of Table 1.
type LocalScore struct {
	ID     uint16  // attribute type ID
	Req    uint16  // requested value
	Impl   uint16  // implementation value (0 when missing)
	Found  bool    // implementation describes the attribute
	DMax   uint16  // design-global maximum distance
	Sim    float64 // local similarity s_i
	Weight float64 // weight w_i
}

// Result is one scored implementation variant.
type Result struct {
	Type       casebase.TypeID
	Impl       casebase.ImplID
	Target     casebase.Target
	Name       string
	Similarity float64      // global similarity S in [0, 1]
	Locals     []LocalScore // per-attribute breakdown, request order
}

// Options configure an Engine.
type Options struct {
	// Local is the per-attribute measure; nil means eq. (1) Linear.
	Local similarity.Local
	// Amalgamation combines local similarities; nil means eq. (2)
	// WeightedSum.
	Amalgamation similarity.Amalgamation
	// Threshold rejects results with S below it ("it's conceivable to
	// reject all results below a given threshold similarity", §3).
	// Zero admits everything.
	Threshold float64
	// KeepLocals retains the per-attribute breakdown in results.
	// Disable for large sweeps to avoid the allocations.
	KeepLocals bool
	// CompactLayout serves retrieval from the block-compacted memory
	// layout (§5): scores come from the branch-free Q15 kernel over
	// structure-of-arrays attribute blocks, converted to float64 at
	// datapath precision. It applies only with the paper's default
	// measures — a custom Local or Amalgamation, or KeepLocals, keeps
	// the floating-point path, since the compacted kernel computes
	// neither. Thresholding and n-best selection behave identically on
	// the quantized similarities.
	CompactLayout bool
}

// Engine performs floating-point retrieval over a case base.
type Engine struct {
	cb    *casebase.CaseBase
	opt   Options
	stats Stats
	met   *Metrics
	// compact is the block-compacted kernel, non-nil only when
	// Options.CompactLayout applies (default measures, no locals).
	compact *CompactEngine
}

// Stats counts engine activity.
type Stats struct {
	Retrievals     int // retrieval runs
	ImplsScored    int // implementation variants scored
	AttrsCompared  int // attribute comparisons performed
	BelowThreshold int // variants rejected by the threshold
}

// NewEngine returns an Engine over cb. Nil option fields get the paper's
// defaults (Linear local measure, WeightedSum amalgamation).
func NewEngine(cb *casebase.CaseBase, opt Options) *Engine {
	// Compact-layout eligibility is decided before the nil fields are
	// defaulted: a caller-supplied measure (or a locals request) means
	// the floating-point path must run, because the compacted kernel
	// hard-wires the paper's Linear/WeightedSum datapath arithmetic.
	var compact *CompactEngine
	if opt.CompactLayout && opt.Local == nil && opt.Amalgamation == nil && !opt.KeepLocals {
		// Construction fails only past the 16-bit word-address space
		// of the compacted image; such a case base cannot exist in
		// hardware, so the software engine falls back to the
		// floating-point path rather than refusing service.
		compact, _ = NewCompactEngine(cb)
	}
	if opt.Local == nil {
		opt.Local = similarity.Linear{}
	}
	if opt.Amalgamation == nil {
		opt.Amalgamation = similarity.WeightedSum{}
	}
	return &Engine{cb: cb, opt: opt, met: NewMetrics(nil), compact: compact}
}

// Instrument points the engine's observability at the given bundle
// (typically shared with the pool or the allocation manager's registry).
func (e *Engine) Instrument(m *Metrics) {
	if m != nil {
		e.met = m
	}
}

// CaseBase returns the engine's case base.
func (e *Engine) CaseBase() *casebase.CaseBase { return e.cb }

// Stats returns a copy of the activity counters.
func (e *Engine) Stats() Stats { return e.stats }

// ErrNoMatch is returned when no implementation survives the threshold.
type ErrNoMatch struct {
	Type      casebase.TypeID
	Threshold float64
	Best      float64 // best similarity seen (informative for relaxation)
}

func (e *ErrNoMatch) Error() string {
	return fmt.Sprintf("retrieval: no implementation of type %d reaches threshold %.3f (best %.3f)",
		e.Type, e.Threshold, e.Best)
}

// score computes the global similarity of one implementation against the
// request. Missing implementation attributes contribute s_i = 0 — "a
// missing attribute can be seen as unsatisfiable requirement" (§3).
func (e *Engine) score(im *casebase.Implementation, req casebase.Request) (float64, []LocalScore) {
	n := len(req.Constraints)
	sims := make([]float64, n)
	weights := make([]float64, n)
	var locals []LocalScore
	if e.opt.KeepLocals {
		locals = make([]LocalScore, n)
	}
	for i, c := range req.Constraints {
		weights[i] = c.Weight
		dmax, err := e.cb.Registry().DMax(c.ID)
		if err != nil {
			// Request validation catches this; scoring treats it
			// as unsatisfiable to stay total.
			dmax = 0
		}
		v, found := im.Attr(c.ID)
		var s float64
		if found {
			s = e.opt.Local.Similarity(c.Value, v, dmax)
		}
		sims[i] = s
		e.stats.AttrsCompared++
		e.met.AttrsCompared.Inc()
		if e.opt.KeepLocals {
			locals[i] = LocalScore{
				ID: uint16(c.ID), Req: uint16(c.Value), Impl: uint16(v),
				Found: found, DMax: dmax, Sim: s, Weight: c.Weight,
			}
		}
	}
	return e.opt.Amalgamation.Combine(sims, weights), locals
}

// RetrieveAll scores every implementation of the requested type and
// returns the results sorted by descending similarity (ties broken by
// ascending implementation ID, the order the hardware scan would keep).
// The threshold is NOT applied; callers see the full field.
func (e *Engine) RetrieveAll(req casebase.Request) ([]Result, error) {
	if err := req.Validate(e.cb); err != nil {
		return nil, err
	}
	start := e.met.start()
	ft, _ := e.cb.Type(req.Type)
	e.stats.Retrievals++
	e.met.Retrievals.Inc()
	e.met.ImplsPerRetrieval.Observe(int64(len(ft.Impls)))
	out := make([]Result, 0, len(ft.Impls))
	if e.compact != nil {
		// Compacted datapath: one kernel pass yields the Q15 column in
		// storage order; implementation metadata is zipped back in from
		// the case base, which shares that order.
		qs, err := e.compact.scoreType(req)
		if err != nil {
			return nil, err
		}
		for i := range ft.Impls {
			im := &ft.Impls[i]
			e.stats.ImplsScored++
			e.met.ImplsScored.Inc()
			e.stats.AttrsCompared += len(req.Constraints)
			e.met.AttrsCompared.Add(int64(len(req.Constraints)))
			out = append(out, Result{
				Type: req.Type, Impl: im.ID, Target: im.Target, Name: im.Name,
				Similarity: qs[i].Float(),
			})
		}
	} else {
		for i := range ft.Impls {
			im := &ft.Impls[i]
			s, locals := e.score(im, req)
			e.stats.ImplsScored++
			e.met.ImplsScored.Inc()
			out = append(out, Result{
				Type: req.Type, Impl: im.ID, Target: im.Target, Name: im.Name,
				Similarity: s, Locals: locals,
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Similarity != out[j].Similarity {
			return out[i].Similarity > out[j].Similarity
		}
		return out[i].Impl < out[j].Impl
	})
	e.met.observeLatency(start)
	return out, nil
}

// Retrieve returns the most similar implementation, applying the
// threshold. This is the fig. 6 algorithm: one pass over the
// implementation sub-list keeping the running best.
func (e *Engine) Retrieve(req casebase.Request) (Result, error) {
	all, err := e.RetrieveAll(req)
	if err != nil {
		return Result{}, err
	}
	best := all[0]
	if best.Similarity < e.opt.Threshold {
		e.stats.BelowThreshold += len(all)
		e.met.BelowThreshold.Add(int64(len(all)))
		e.met.NoMatch.Inc()
		return Result{}, &ErrNoMatch{Type: req.Type, Threshold: e.opt.Threshold, Best: best.Similarity}
	}
	for _, r := range all {
		if r.Similarity < e.opt.Threshold {
			e.stats.BelowThreshold++
			e.met.BelowThreshold.Inc()
		}
	}
	return best, nil
}

// RetrieveN returns the up-to-n most similar implementations that meet
// the threshold, best first — the §5 n-best extension. It returns
// ErrNoMatch when none qualifies, so the caller can relax constraints.
func (e *Engine) RetrieveN(req casebase.Request, n int) ([]Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("retrieval: n must be positive, got %d", n)
	}
	all, err := e.RetrieveAll(req)
	if err != nil {
		return nil, err
	}
	out := make([]Result, 0, n)
	for _, r := range all {
		if r.Similarity < e.opt.Threshold {
			e.stats.BelowThreshold++
			e.met.BelowThreshold.Inc()
			continue
		}
		if len(out) < n {
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		e.met.NoMatch.Inc()
		return nil, &ErrNoMatch{Type: req.Type, Threshold: e.opt.Threshold, Best: all[0].Similarity}
	}
	return out, nil
}
