package retrieval

import "qosalloc/internal/obs"

// Metrics is the observability bundle of the retrieval layer. Every
// engine and pool created by the package carries one; uninstrumented
// code gets a dangling bundle (built over a nil registry) whose atomic
// counters cost a few nanoseconds and surface nowhere — so the hot path
// never branches on "is observability on".
//
// The counter set mirrors the paper's cycle accounting: the hardware
// unit's run time is dominated by the per-attribute compare loop and the
// per-implementation scan (fig. 6), so attrs-compared and impls-scored
// are the software twins of those cycle drivers. The latency histogram
// is only fed when Now is set: deterministic sim drivers leave it nil
// (keeping golden counters exact) while real servers install a
// wall-clock source.
type Metrics struct {
	Retrievals     *obs.Counter
	ImplsScored    *obs.Counter
	AttrsCompared  *obs.Counter
	BelowThreshold *obs.Counter
	NoMatch        *obs.Counter

	// ImplsPerRetrieval observes the sub-list length scanned per
	// retrieval — the fig. 6 inner-loop trip count.
	ImplsPerRetrieval *obs.Histogram
	// Latency observes end-to-end Retrieve* time in Now's unit
	// (nanoseconds for the wall clock). Unfed while Now is nil.
	Latency *obs.Histogram
	// Now is the optional clock feeding Latency. Nil keeps the bundle
	// deterministic.
	Now func() int64

	// Pool traffic: a borrow "hit" reuses an idle engine, a "miss"
	// constructs a new one, a discard drops a returned engine that
	// exceeded the idle cap.
	PoolBorrowHits   *obs.Counter
	PoolBorrowMisses *obs.Counter
	PoolDiscards     *obs.Counter
	PoolInFlight     *obs.Gauge
	PoolIdle         *obs.Gauge
}

// NewMetrics registers the retrieval metric set on reg (nil yields a
// dangling bundle, valid but unexported anywhere).
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Retrievals:     reg.Counter("qos_retrieval_total", "retrieval runs started"),
		ImplsScored:    reg.Counter("qos_retrieval_impls_scored_total", "implementation variants scored"),
		AttrsCompared:  reg.Counter("qos_retrieval_attrs_compared_total", "attribute comparisons performed (eq. 1 evaluations)"),
		BelowThreshold: reg.Counter("qos_retrieval_below_threshold_total", "variants rejected by the similarity threshold"),
		NoMatch:        reg.Counter("qos_retrieval_no_match_total", "retrievals where nothing cleared the threshold"),
		ImplsPerRetrieval: reg.Histogram("qos_retrieval_impls_per_retrieval",
			"implementation sub-list length scanned per retrieval", obs.CountBuckets),
		Latency: reg.Histogram("qos_retrieval_latency",
			"end-to-end retrieval latency in the installed clock's unit", obs.LatencyBucketsMicros),
		PoolBorrowHits:   reg.Counter("qos_retrieval_pool_borrows_total{kind=\"hit\"}", "pool borrows served from the idle list"),
		PoolBorrowMisses: reg.Counter("qos_retrieval_pool_borrows_total{kind=\"miss\"}", "pool borrows that built a fresh engine"),
		PoolDiscards:     reg.Counter("qos_retrieval_pool_discards_total", "returned engines dropped by the idle cap"),
		PoolInFlight:     reg.Gauge("qos_retrieval_pool_in_flight", "engines currently checked out"),
		PoolIdle:         reg.Gauge("qos_retrieval_pool_idle", "engines parked on the idle list"),
	}
}

// start returns the clock reading for a latency sample, or 0 when no
// clock is installed.
func (m *Metrics) start() int64 {
	if m.Now == nil {
		return 0
	}
	return m.Now()
}

// observeLatency records one latency sample when a clock is installed.
func (m *Metrics) observeLatency(start int64) {
	if m.Now == nil {
		return
	}
	m.Latency.Observe(m.Now() - start)
}
