package retrieval

import (
	"context"
	"errors"
	"testing"

	"qosalloc/internal/casebase"
)

func TestEngineContextLiveAndCanceled(t *testing.T) {
	cb, err := casebase.PaperCaseBase()
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(cb, Options{})
	req := casebase.PaperRequest()

	// A live context behaves exactly like the plain call.
	want, err := e.Retrieve(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.RetrieveContext(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got.Impl != want.Impl || got.Similarity != want.Similarity {
		t.Errorf("RetrieveContext = %+v, want %+v", got, want)
	}

	// A dead context refuses the walk with ErrCanceled wrapping the cause.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.RetrieveContext(ctx, req); !errors.Is(err, ErrCanceled) {
		t.Errorf("RetrieveContext(dead) = %v, want ErrCanceled", err)
	} else if !errors.Is(err, context.Canceled) {
		t.Errorf("cause not preserved: %v", err)
	}
	if _, err := e.RetrieveNContext(ctx, req, 3); !errors.Is(err, ErrCanceled) {
		t.Errorf("RetrieveNContext(dead) = %v, want ErrCanceled", err)
	}
	if _, err := e.RetrieveAllContext(ctx, req); !errors.Is(err, ErrCanceled) {
		t.Errorf("RetrieveAllContext(dead) = %v, want ErrCanceled", err)
	}
}

func TestCanceledWrapsCustomCause(t *testing.T) {
	// context.Cause must surface through the wrap, so callers can carry
	// typed causes (admission deadlines, shutdown reasons) across the
	// retrieval layer.
	boom := errors.New("shard draining")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(boom)
	err := Canceled(ctx)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Canceled = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, boom) {
		t.Errorf("custom cause lost: %v", err)
	}
	// A live (or nil) context is a nil guard.
	if err := Canceled(context.Background()); err != nil {
		t.Errorf("Canceled(live) = %v, want nil", err)
	}
	if err := Canceled(nil); err != nil {
		t.Errorf("Canceled(nil) = %v, want nil", err)
	}
}

func TestPoolContext(t *testing.T) {
	cb, err := casebase.PaperCaseBase()
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(cb, Options{})
	req := casebase.PaperRequest()

	want, err := p.Retrieve(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.RetrieveContext(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got.Impl != want.Impl {
		t.Errorf("pool RetrieveContext impl = %d, want %d", got.Impl, want.Impl)
	}
	if _, err := p.RetrieveNContext(context.Background(), req, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := p.RetrieveAllContext(context.Background(), req); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.RetrieveContext(ctx, req); !errors.Is(err, ErrCanceled) {
		t.Errorf("pool RetrieveContext(dead) = %v, want ErrCanceled", err)
	}
	if _, err := p.RetrieveNContext(ctx, req, 2); !errors.Is(err, ErrCanceled) {
		t.Errorf("pool RetrieveNContext(dead) = %v, want ErrCanceled", err)
	}
	if _, err := p.RetrieveAllContext(ctx, req); !errors.Is(err, ErrCanceled) {
		t.Errorf("pool RetrieveAllContext(dead) = %v, want ErrCanceled", err)
	}
	// A canceled caller must not leak a borrow accounting entry.
	st := p.PoolStats()
	if st.InFlight != 0 {
		t.Errorf("InFlight = %d after canceled calls, want 0", st.InFlight)
	}
}
