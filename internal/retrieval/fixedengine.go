package retrieval

import (
	"fmt"
	"sort"

	"qosalloc/internal/casebase"
	"qosalloc/internal/fixed"
)

// FixedResult is a scored implementation in datapath precision.
type FixedResult struct {
	Type       casebase.TypeID
	Impl       casebase.ImplID
	Similarity fixed.Q15 // global similarity, Q1.15
}

// Float converts the fixed result to a Result-compatible similarity.
func (f FixedResult) Float() float64 { return f.Similarity.Float() }

// FixedEngine scores implementations with exactly the arithmetic of the
// fig. 7 datapath: 16-bit attribute values, Manhattan distance through
// the ABS block, multiplication by the pre-computed UQ16 reciprocal of
// (1+dmax) instead of division, Q15 weighted accumulation with
// saturation. It is the software twin of the hardware retrieval unit and
// must agree with it cycle-result-for-cycle-result (package hwsim tests
// enforce this).
type FixedEngine struct {
	cb *casebase.CaseBase
	// recips caches the supplemental-list constants: (1+dmax)^-1 per
	// attribute ID, generated once at construction — the design-time
	// table of fig. 4 (right).
	recips map[uint16]fixed.UQ16
}

// NewFixedEngine builds the engine and its reciprocal table from the case
// base's attribute registry.
func NewFixedEngine(cb *casebase.CaseBase) *FixedEngine {
	fe := &FixedEngine{cb: cb, recips: make(map[uint16]fixed.UQ16)}
	for _, id := range cb.Registry().IDs() {
		dmax, _ := cb.Registry().DMax(id)
		fe.recips[uint16(id)] = fixed.Recip(dmax)
	}
	return fe
}

// Recip exposes the supplemental-table constant for attribute id; the
// memory-image encoder uses it so BRAM contents and engine constants
// cannot drift apart.
func (fe *FixedEngine) Recip(id uint16) (fixed.UQ16, bool) {
	r, ok := fe.recips[id]
	return r, ok
}

// weightsQ15 converts the request weights to Q15 via fixed.WeightsQ15,
// the same conversion the memory-image encoder applies, so engine and
// BRAM image cannot disagree.
func weightsQ15(req casebase.Request) []fixed.Q15 {
	ws := make([]float64, len(req.Constraints))
	for i, c := range req.Constraints {
		ws[i] = c.Weight
	}
	return fixed.WeightsQ15(ws)
}

// Score computes the Q15 global similarity of one implementation exactly
// as the datapath does: for each requested attribute, look up the value
// (missing ⇒ s_i = 0), s_i = 1 - d·recip, acc += w_i·s_i with
// saturation.
func (fe *FixedEngine) Score(im *casebase.Implementation, req casebase.Request) fixed.Q15 {
	w := weightsQ15(req)
	var acc fixed.Q15
	for i, c := range req.Constraints {
		v, found := im.Attr(c.ID)
		if !found {
			continue // s_i = 0 contributes nothing
		}
		d := fixed.Dist(uint16(c.Value), uint16(v))
		recip := fe.recips[uint16(c.ID)]
		s := fixed.LocalSim(d, recip)
		acc = fixed.WeightedAcc(acc, w[i], s)
	}
	return acc
}

// Retrieve runs the fig. 6 most-similar scan in datapath arithmetic:
// iterate the implementation sub-list in storage order, keep (S, ID) of
// the running maximum, strict > so the first of equals wins — matching
// the hardware's "S > SBest?" comparator.
func (fe *FixedEngine) Retrieve(req casebase.Request) (FixedResult, error) {
	if err := req.Validate(fe.cb); err != nil {
		return FixedResult{}, err
	}
	ft, _ := fe.cb.Type(req.Type)
	best := FixedResult{Type: req.Type}
	haveBest := false
	for i := range ft.Impls {
		s := fe.Score(&ft.Impls[i], req)
		if !haveBest || s > best.Similarity {
			best.Impl = ft.Impls[i].ID
			best.Similarity = s
			haveBest = true
		}
	}
	if !haveBest {
		return FixedResult{}, fmt.Errorf("retrieval: type %d has no implementations", req.Type)
	}
	return best, nil
}

// RetrieveN returns the n most similar implementations in datapath
// arithmetic, best first (ties by ascending implementation ID). The
// paper's §5 envisions this as the next hardware extension; in software
// it is a partial sort over the scored sub-list.
func (fe *FixedEngine) RetrieveN(req casebase.Request, n int) ([]FixedResult, error) {
	if n <= 0 {
		return nil, fmt.Errorf("retrieval: n must be positive, got %d", n)
	}
	if err := req.Validate(fe.cb); err != nil {
		return nil, err
	}
	ft, _ := fe.cb.Type(req.Type)
	out := make([]FixedResult, 0, len(ft.Impls))
	for i := range ft.Impls {
		out = append(out, FixedResult{
			Type: req.Type, Impl: ft.Impls[i].ID,
			Similarity: fe.Score(&ft.Impls[i], req),
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Similarity != out[j].Similarity {
			return out[i].Similarity > out[j].Similarity
		}
		return out[i].Impl < out[j].Impl
	})
	if len(out) > n {
		out = out[:n]
	}
	return out, nil
}
