package retrieval

import (
	"sync"
	"testing"

	"qosalloc/internal/casebase"
)

func TestPoolSerialMatchesEngine(t *testing.T) {
	cb, _ := casebase.PaperCaseBase()
	p := NewPool(cb, Options{})
	e := NewEngine(cb, Options{})
	req := casebase.PaperRequest()
	want, err := e.Retrieve(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Retrieve(req)
	if err != nil {
		t.Fatal(err)
	}
	if got.Impl != want.Impl || got.Similarity != want.Similarity {
		t.Errorf("pool %+v vs engine %+v", got, want)
	}
	all, err := p.RetrieveAll(req)
	if err != nil || len(all) != 3 {
		t.Fatalf("RetrieveAll = %d, %v", len(all), err)
	}
	top, err := p.RetrieveN(req, 2)
	if err != nil || len(top) != 2 {
		t.Fatalf("RetrieveN = %d, %v", len(top), err)
	}
}

// TestPoolConcurrent hammers the pool from many goroutines; run with
// -race this verifies the concurrency contract, and the merged stats
// must account for every call exactly once.
func TestPoolConcurrent(t *testing.T) {
	cb, _ := casebase.PaperCaseBase()
	p := NewPool(cb, Options{})
	req := casebase.PaperRequest()

	const workers = 16
	const perWorker = 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				best, err := p.Retrieve(req)
				if err != nil {
					errs <- err
					return
				}
				if best.Impl != 2 {
					errs <- errWrongBest(best.Impl)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Retrievals != workers*perWorker {
		t.Errorf("merged retrievals = %d, want %d", st.Retrievals, workers*perWorker)
	}
	if st.ImplsScored != workers*perWorker*3 {
		t.Errorf("merged impls scored = %d", st.ImplsScored)
	}
}

type errWrongBest casebase.ImplID

func (e errWrongBest) Error() string { return "pool returned wrong best" }

func TestPoolReusesEngines(t *testing.T) {
	cb, _ := casebase.PaperCaseBase()
	p := NewPool(cb, Options{})
	req := casebase.PaperRequest()
	for i := 0; i < 10; i++ {
		if _, err := p.Retrieve(req); err != nil {
			t.Fatal(err)
		}
	}
	p.mu.Lock()
	idle := len(p.idle)
	p.mu.Unlock()
	if idle != 1 {
		t.Errorf("serial reuse should keep one idle engine, have %d", idle)
	}
}
