package retrieval

import (
	"sync"
	"testing"

	"qosalloc/internal/casebase"
	"qosalloc/internal/obs"
)

func TestPoolSerialMatchesEngine(t *testing.T) {
	cb, _ := casebase.PaperCaseBase()
	p := NewPool(cb, Options{})
	e := NewEngine(cb, Options{})
	req := casebase.PaperRequest()
	want, err := e.Retrieve(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Retrieve(req)
	if err != nil {
		t.Fatal(err)
	}
	if got.Impl != want.Impl || got.Similarity != want.Similarity {
		t.Errorf("pool %+v vs engine %+v", got, want)
	}
	all, err := p.RetrieveAll(req)
	if err != nil || len(all) != 3 {
		t.Fatalf("RetrieveAll = %d, %v", len(all), err)
	}
	top, err := p.RetrieveN(req, 2)
	if err != nil || len(top) != 2 {
		t.Fatalf("RetrieveN = %d, %v", len(top), err)
	}
}

// TestPoolConcurrent hammers the pool from many goroutines; run with
// -race this verifies the concurrency contract, and the merged stats
// must account for every call exactly once.
func TestPoolConcurrent(t *testing.T) {
	cb, _ := casebase.PaperCaseBase()
	p := NewPool(cb, Options{})
	req := casebase.PaperRequest()

	const workers = 16
	const perWorker = 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				best, err := p.Retrieve(req)
				if err != nil {
					errs <- err
					return
				}
				if best.Impl != 2 {
					errs <- errWrongBest(best.Impl)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Retrievals != workers*perWorker {
		t.Errorf("merged retrievals = %d, want %d", st.Retrievals, workers*perWorker)
	}
	if st.ImplsScored != workers*perWorker*3 {
		t.Errorf("merged impls scored = %d", st.ImplsScored)
	}
}

type errWrongBest casebase.ImplID

func (e errWrongBest) Error() string { return "pool returned wrong best" }

func TestPoolReusesEngines(t *testing.T) {
	cb, _ := casebase.PaperCaseBase()
	p := NewPool(cb, Options{})
	req := casebase.PaperRequest()
	for i := 0; i < 10; i++ {
		if _, err := p.Retrieve(req); err != nil {
			t.Fatal(err)
		}
	}
	p.mu.Lock()
	idle := len(p.idle)
	p.mu.Unlock()
	if idle != 1 {
		t.Errorf("serial reuse should keep one idle engine, have %d", idle)
	}
}

// TestPoolIdleListBounded is the satellite bugfix's regression test: a
// burst of concurrent borrows must not pin every engine forever. The
// idle list is capped, discards are counted, and the accounting
// identity Borrows = Misses + reuses holds.
func TestPoolIdleListBounded(t *testing.T) {
	cb, _ := casebase.PaperCaseBase()
	p := NewPool(cb, Options{})
	p.SetMaxIdle(4)
	req := casebase.PaperRequest()

	// Check out far more engines than the cap, then return them all.
	const burst = 32
	engines := make([]*Engine, burst)
	for i := range engines {
		engines[i] = p.get()
	}
	for _, e := range engines {
		if _, err := e.Retrieve(req); err != nil {
			t.Fatal(err)
		}
		p.put(e)
	}
	st := p.PoolStats()
	if st.Idle > 4 {
		t.Errorf("idle = %d, cap is 4", st.Idle)
	}
	if st.Discards != burst-4 {
		t.Errorf("discards = %d, want %d", st.Discards, burst-4)
	}
	if st.InFlight != 0 {
		t.Errorf("in flight = %d after full return", st.InFlight)
	}
	if st.Borrows != burst || st.Misses != burst {
		t.Errorf("borrows/misses = %d/%d, want %d/%d", st.Borrows, st.Misses, burst, burst)
	}
	if st.Merged.Retrievals != burst {
		t.Errorf("merged retrievals = %d, want %d", st.Merged.Retrievals, burst)
	}

	// Shrinking the cap truncates and counts the drop.
	p.SetMaxIdle(1)
	if st := p.PoolStats(); st.Idle != 1 || st.Discards != burst-4+3 {
		t.Errorf("after shrink: idle %d discards %d", st.Idle, st.Discards)
	}

	// A zero cap pools nothing.
	p.SetMaxIdle(0)
	if _, err := p.Retrieve(req); err != nil {
		t.Fatal(err)
	}
	if st := p.PoolStats(); st.Idle != 0 {
		t.Errorf("idle = %d with zero cap", st.Idle)
	}
}

// TestPoolMidBurstStatsSnapshot pins the documented snapshot semantics:
// mid-burst, Merged counts only completed calls and InFlight reports the
// engines still checked out, so readers can tell an undercount from a
// quiesced pool.
func TestPoolMidBurstStatsSnapshot(t *testing.T) {
	cb, _ := casebase.PaperCaseBase()
	p := NewPool(cb, Options{})
	req := casebase.PaperRequest()

	// Two engines held mid-call, one call completed.
	a, b := p.get(), p.get()
	if _, err := p.Retrieve(req); err != nil {
		t.Fatal(err)
	}
	st := p.PoolStats()
	if st.InFlight != 2 {
		t.Errorf("in flight = %d, want 2", st.InFlight)
	}
	if st.Merged.Retrievals != 1 {
		t.Errorf("merged mid-burst = %d, want 1 (completed calls only)", st.Merged.Retrievals)
	}
	// Work the held engines, return them: the totals catch up exactly.
	for _, e := range []*Engine{a, b} {
		if _, err := e.Retrieve(req); err != nil {
			t.Fatal(err)
		}
		p.put(e)
	}
	st = p.PoolStats()
	if st.InFlight != 0 || st.Merged.Retrievals != 3 {
		t.Errorf("after return: in flight %d, merged %d; want 0, 3", st.InFlight, st.Merged.Retrievals)
	}
}

// TestPoolConcurrentInstrumented hammers an instrumented pool under
// -race: the obs counters are atomic and must agree with the pool's own
// locked accounting once the burst drains.
func TestPoolConcurrentInstrumented(t *testing.T) {
	cb, _ := casebase.PaperCaseBase()
	p := NewPool(cb, Options{})
	reg := obs.NewRegistry()
	p.Instrument(NewMetrics(reg))
	req := casebase.PaperRequest()

	const workers = 8
	const perWorker = 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := p.Retrieve(req); err != nil {
					t.Error(err)
					return
				}
				// Interleave stats reads with traffic.
				_ = p.PoolStats()
			}
		}()
	}
	wg.Wait()

	st := p.PoolStats()
	hits, _ := reg.CounterValue(`qos_retrieval_pool_borrows_total{kind="hit"}`)
	misses, _ := reg.CounterValue(`qos_retrieval_pool_borrows_total{kind="miss"}`)
	if int(hits+misses) != st.Borrows || int(misses) != st.Misses {
		t.Errorf("obs borrows %d+%d disagree with pool accounting %+v", hits, misses, st)
	}
	retrievals, _ := reg.CounterValue("qos_retrieval_total")
	if retrievals != int64(workers*perWorker) {
		t.Errorf("obs retrievals = %d, want %d", retrievals, workers*perWorker)
	}
}

// BenchmarkPoolParallel measures the pool's hot path under contention —
// the bench-smoke CI target runs one iteration of this to catch
// regressions that only appear with -race or under parallelism.
func BenchmarkPoolParallel(b *testing.B) {
	cb, _ := casebase.PaperCaseBase()
	p := NewPool(cb, Options{})
	req := casebase.PaperRequest()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := p.Retrieve(req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPoolParallelInstrumented is the same path with a live
// registry, pinning the observability overhead.
func BenchmarkPoolParallelInstrumented(b *testing.B) {
	cb, _ := casebase.PaperCaseBase()
	p := NewPool(cb, Options{})
	p.Instrument(NewMetrics(obs.NewRegistry()))
	req := casebase.PaperRequest()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := p.Retrieve(req); err != nil {
				b.Fatal(err)
			}
		}
	})
}
