package admit

import (
	"fmt"

	"qosalloc/internal/obs"
)

// gateMetrics is the admission layer's observability bundle. Like the
// serve and retrieval bundles it dangles over a nil registry, so the
// admission path never branches on whether observability is on.
type gateMetrics struct {
	allowed     *obs.Counter
	rateLimited *obs.Counter
	breakerOpen *obs.Counter
	trips       *obs.Counter

	breakerState []*obs.Gauge // per shard: 0 closed, 1 open, 2 half-open
}

// newGateMetrics registers the qos_admit_* series for n shards on reg
// (nil yields a dangling bundle).
func newGateMetrics(reg *obs.Registry, n int) *gateMetrics {
	m := &gateMetrics{
		allowed:     reg.Counter("qos_admit_allowed_total", "requests passed by the admission gate"),
		rateLimited: reg.Counter("qos_admit_rate_limited_total", "requests refused by a client token bucket"),
		breakerOpen: reg.Counter("qos_admit_breaker_rejected_total", "requests refused by an open or probing shard breaker"),
		trips:       reg.Counter("qos_admit_breaker_trips_total", "times any shard breaker tripped open"),
	}
	for i := 0; i < n; i++ {
		m.breakerState = append(m.breakerState, reg.Gauge(
			fmt.Sprintf("qos_admit_breaker_state{shard=%q}", fmt.Sprint(i)),
			"shard breaker position: 0 closed, 1 open, 2 half-open"))
	}
	return m
}
