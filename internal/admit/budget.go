package admit

// Tenant QoS-class budgets: the fleet layer's class-of-service
// enforcement, modeled on how Intel RDT partitions shared hardware —
// each class of service owns an integer slice of cache ways / memory
// bandwidth, usage is attributed per class, and an over-budget class is
// throttled without touching its neighbors' slices. Here the shared
// hardware is the reconfigurable platform: FPGA slices and BRAMs are
// the space-shared resources (held for the lifetime of a placement),
// and reconfiguration bytes through the ICAP are the time-shared one
// (a deterministic rate bucket, same fixed-point arithmetic as the
// request Limiter). A tenant exceeding any dimension gets a typed
// *ErrBudgetExceeded naming the resource; tenants never queue on each
// other's budgets, which is what keeps a noisy neighbor from starving
// a degraded tenant's recovery.

import (
	"fmt"
	"sync"

	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
)

// QoSClass names a tenant service class bound to one ClassBudget.
type QoSClass string

// ClassBudget is the integer resource envelope of one QoS class. A
// zero field means that dimension is unmetered for the class.
type ClassBudget struct {
	// Slices bounds the FPGA slices a tenant may hold concurrently.
	Slices int
	// BRAMs bounds the block RAMs a tenant may hold concurrently.
	BRAMs int
	// ConfigBytesPerSec bounds the tenant's reconfiguration-port
	// bandwidth in bytes per second of sim time.
	ConfigBytesPerSec int64
	// ConfigBurstBytes is the bandwidth bucket's capacity; zero with a
	// nonzero rate defaults to one second's worth of bytes.
	ConfigBurstBytes int64
}

func (b ClassBudget) withDefaults() ClassBudget {
	if b.ConfigBytesPerSec > 0 && b.ConfigBurstBytes <= 0 {
		b.ConfigBurstBytes = b.ConfigBytesPerSec
	}
	return b
}

// Budget resource names used in ErrBudgetExceeded.Resource.
const (
	ResourceSlices      = "slices"
	ResourceBRAMs       = "brams"
	ResourceConfigBytes = "config_bytes"
)

// ErrBudgetExceeded is the typed per-tenant rejection: admitting the
// footprint would push the tenant's QoS class past its budget on
// Resource. RetryAfter is nonzero only for the bandwidth dimension,
// where waiting accrues headroom; space dimensions free up only when
// the tenant releases a placement.
type ErrBudgetExceeded struct {
	Tenant     string
	Class      QoSClass
	Resource   string
	Need       int64
	Used       int64
	Budget     int64
	RetryAfter device.Micros
}

func (e *ErrBudgetExceeded) Error() string {
	return fmt.Sprintf("admit: tenant %q (class %q) over %s budget: need %d, holding %d of %d",
		e.Tenant, e.Class, e.Resource, e.Need, e.Used, e.Budget)
}

// tenantUsage is one tenant's live holdings and bandwidth bucket.
type tenantUsage struct {
	slices int
	brams  int
	// bwMicro is the bandwidth bucket fill in micro-bytes (the
	// Limiter's fixed-point scale), capped at ConfigBurstBytes.
	bwMicro int64
	last    device.Micros
}

// Ledger attributes platform usage to tenants and enforces their QoS
// classes' budgets at admission time. Safe for concurrent use. All
// timestamps are sim time, so a fleet replay admits bit-identically.
type Ledger struct {
	mu      sync.Mutex
	classes map[QoSClass]ClassBudget
	tenants map[string]QoSClass
	usage   map[string]*tenantUsage
}

// NewLedger returns an empty ledger: no classes, no tenants, every
// admission unmetered until bindings are added.
func NewLedger() *Ledger {
	return &Ledger{
		classes: make(map[QoSClass]ClassBudget),
		tenants: make(map[string]QoSClass),
		usage:   make(map[string]*tenantUsage),
	}
}

// DefineClass registers (or replaces) a QoS class's budget.
func (l *Ledger) DefineClass(class QoSClass, b ClassBudget) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.classes[class] = b.withDefaults()
}

// BindTenant maps a tenant to a QoS class. A tenant bound to an
// undefined class is admitted unmetered until the class is defined.
func (l *Ledger) BindTenant(tenant string, class QoSClass) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.tenants[tenant] = class
}

// ClassOf returns the tenant's QoS class binding.
func (l *Ledger) ClassOf(tenant string) (QoSClass, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	c, ok := l.tenants[tenant]
	return c, ok
}

// Admit charges tenant for placing a variant with footprint f at sim
// time now: slices and BRAMs are held until Release; f.ConfigBytes is
// drawn from the class's bandwidth bucket. The charge is atomic — on
// any exceeded dimension nothing is charged and a typed
// *ErrBudgetExceeded names the first exceeded resource in canonical
// slices, BRAMs, config-bytes order. Unbound tenants are unmetered.
func (l *Ledger) Admit(tenant string, f casebase.Footprint, now device.Micros) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	class, bound := l.tenants[tenant]
	if !bound {
		return nil
	}
	budget, defined := l.classes[class]
	if !defined {
		return nil
	}
	u := l.usage[tenant]
	if u == nil {
		u = &tenantUsage{bwMicro: budget.ConfigBurstBytes * microPerToken, last: now}
		l.usage[tenant] = u
	}
	if budget.Slices > 0 && u.slices+f.Slices > budget.Slices {
		return &ErrBudgetExceeded{
			Tenant: tenant, Class: class, Resource: ResourceSlices,
			Need: int64(f.Slices), Used: int64(u.slices), Budget: int64(budget.Slices),
		}
	}
	if budget.BRAMs > 0 && u.brams+f.BRAMs > budget.BRAMs {
		return &ErrBudgetExceeded{
			Tenant: tenant, Class: class, Resource: ResourceBRAMs,
			Need: int64(f.BRAMs), Used: int64(u.brams), Budget: int64(budget.BRAMs),
		}
	}
	if budget.ConfigBytesPerSec > 0 && f.ConfigBytes > 0 {
		// Refill exactly like the request Limiter: elapsed µs × rate =
		// accrued micro-bytes, integer arithmetic, no drift.
		if now > u.last {
			u.bwMicro = min(u.bwMicro+int64(now-u.last)*budget.ConfigBytesPerSec,
				budget.ConfigBurstBytes*microPerToken)
			u.last = now
		}
		need := int64(f.ConfigBytes) * microPerToken
		if u.bwMicro < need {
			retry := device.Micros((need - u.bwMicro + budget.ConfigBytesPerSec - 1) / budget.ConfigBytesPerSec)
			return &ErrBudgetExceeded{
				Tenant: tenant, Class: class, Resource: ResourceConfigBytes,
				Need: int64(f.ConfigBytes), Used: (budget.ConfigBurstBytes*microPerToken - u.bwMicro) / microPerToken,
				Budget: budget.ConfigBurstBytes, RetryAfter: retry,
			}
		}
		u.bwMicro -= need
	}
	u.slices += f.Slices
	u.brams += f.BRAMs
	return nil
}

// Release returns a placement's space-shared holdings (slices, BRAMs)
// to the tenant. Bandwidth is never refunded: the configuration bytes
// were actually streamed through the port.
func (l *Ledger) Release(tenant string, f casebase.Footprint) {
	l.mu.Lock()
	defer l.mu.Unlock()
	u := l.usage[tenant]
	if u == nil {
		return
	}
	if u.slices -= f.Slices; u.slices < 0 {
		u.slices = 0
	}
	if u.brams -= f.BRAMs; u.brams < 0 {
		u.brams = 0
	}
}

// Refund undoes an Admit whose placement never happened: the space
// holdings are released and the bandwidth draw is returned to the
// bucket (no bitstream was streamed), capped at the class burst.
func (l *Ledger) Refund(tenant string, f casebase.Footprint) {
	l.mu.Lock()
	defer l.mu.Unlock()
	u := l.usage[tenant]
	if u == nil {
		return
	}
	if u.slices -= f.Slices; u.slices < 0 {
		u.slices = 0
	}
	if u.brams -= f.BRAMs; u.brams < 0 {
		u.brams = 0
	}
	budget, ok := l.classes[l.tenants[tenant]]
	if ok && budget.ConfigBytesPerSec > 0 && f.ConfigBytes > 0 {
		u.bwMicro = min(u.bwMicro+int64(f.ConfigBytes)*microPerToken,
			budget.ConfigBurstBytes*microPerToken)
	}
}

// ForceCharge records holdings without any budget check — the recovery
// path: a fault-stranded task being re-placed already owns its capacity
// envelope, so neither the tenant's own budget nor a noisy neighbor's
// pressure may block the substitute placement. Bandwidth is not drawn;
// fault recovery is the platform's doing, not tenant demand.
func (l *Ledger) ForceCharge(tenant string, f casebase.Footprint) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, bound := l.tenants[tenant]; !bound {
		return
	}
	u := l.usage[tenant]
	if u == nil {
		budget := l.classes[l.tenants[tenant]]
		u = &tenantUsage{bwMicro: budget.ConfigBurstBytes * microPerToken}
		l.usage[tenant] = u
	}
	u.slices += f.Slices
	u.brams += f.BRAMs
}

// Usage reports a tenant's current holdings (slices, BRAMs) for
// observability; zeros for tenants that never admitted anything.
func (l *Ledger) Usage(tenant string) (slices, brams int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if u := l.usage[tenant]; u != nil {
		return u.slices, u.brams
	}
	return 0, 0
}
