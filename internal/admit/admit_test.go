package admit

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
	"qosalloc/internal/obs"
)

// --- Limiter -----------------------------------------------------------

func TestLimiterBurstThenRefill(t *testing.T) {
	l := NewLimiter(LimiterConfig{RatePerSec: 1000, Burst: 3})
	now := device.Micros(0)
	for i := 0; i < 3; i++ {
		if err := l.Allow("a", now); err != nil {
			t.Fatalf("burst request %d: %v", i, err)
		}
	}
	err := l.Allow("a", now)
	var rl *ErrRateLimited
	if !errors.As(err, &rl) {
		t.Fatalf("want *ErrRateLimited after burst, got %v", err)
	}
	// 1000 tokens/s = one per 1000 µs, bucket empty: exactly 1000 µs out.
	if rl.RetryAfter != 1000 {
		t.Fatalf("RetryAfter = %d, want 1000", rl.RetryAfter)
	}
	if rl.Client != "a" {
		t.Fatalf("Client = %q, want %q", rl.Client, "a")
	}
	// Advancing exactly RetryAfter must admit again — the hint is honest.
	if err := l.Allow("a", now+rl.RetryAfter); err != nil {
		t.Fatalf("after honoring RetryAfter: %v", err)
	}
	// A second token at the same instant must still refuse: the refill
	// interval restarts once the accrued token is spent.
	if err := l.Allow("a", now+rl.RetryAfter); err == nil {
		t.Fatal("second token inside one refill interval admitted")
	}
}

func TestLimiterIsolatesClients(t *testing.T) {
	l := NewLimiter(LimiterConfig{RatePerSec: 1, Burst: 1})
	if err := l.Allow("a", 0); err != nil {
		t.Fatalf("client a: %v", err)
	}
	if err := l.Allow("a", 0); err == nil {
		t.Fatal("client a's second request admitted from an empty bucket")
	}
	if err := l.Allow("b", 0); err != nil {
		t.Fatalf("client b must not share a's bucket: %v", err)
	}
}

func TestLimiterRefillCapsAtBurst(t *testing.T) {
	l := NewLimiter(LimiterConfig{RatePerSec: 1000, Burst: 2})
	if err := l.Allow("a", 0); err != nil {
		t.Fatal(err)
	}
	// A huge idle gap must not bank more than Burst tokens.
	now := device.Micros(3_600_000_000)
	for i := 0; i < 2; i++ {
		if err := l.Allow("a", now); err != nil {
			t.Fatalf("banked token %d: %v", i, err)
		}
	}
	if err := l.Allow("a", now); err == nil {
		t.Fatal("bucket banked beyond Burst across an idle gap")
	}
}

func TestLimiterEvictsLRU(t *testing.T) {
	l := NewLimiter(LimiterConfig{RatePerSec: 1, Burst: 1, MaxClients: 2})
	if err := l.Allow("a", 0); err != nil {
		t.Fatal(err)
	}
	if err := l.Allow("b", 1); err != nil {
		t.Fatal(err)
	}
	l.Allow("a", 2) // refresh a; b is now least recently seen
	if err := l.Allow("c", 3); err != nil {
		t.Fatal(err)
	}
	if got := l.Clients(); got != 2 {
		t.Fatalf("Clients() = %d, want 2", got)
	}
	// c survived (it just drained its only token), so it stays refused.
	if err := l.Allow("c", 3); err == nil {
		t.Fatal("surviving client c kept tokens it already spent")
	}
	// b was evicted, so it returns with a fresh full bucket (displacing
	// the now-least-recent a — the bound holds at 2).
	if err := l.Allow("b", 3); err != nil {
		t.Fatalf("evicted client must restart with a full bucket: %v", err)
	}
	if got := l.Clients(); got != 2 {
		t.Fatalf("Clients() after re-insert = %d, want 2", got)
	}
}

func TestLimiterDeterministicReplay(t *testing.T) {
	run := func() []bool {
		l := NewLimiter(LimiterConfig{RatePerSec: 500, Burst: 4})
		var out []bool
		for i := 0; i < 200; i++ {
			client := fmt.Sprintf("c%d", i%3)
			now := device.Micros(i) * 700
			out = append(out, l.Allow(client, now) == nil)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at request %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// --- Breaker -----------------------------------------------------------

func TestBreakerTripsAndBacksOff(t *testing.T) {
	b := NewBreaker(3, BreakerConfig{Window: 8, TripRatio: 0.5, MinSamples: 4, Backoff: 100, MaxBackoff: 400})
	now := device.Micros(0)
	if got := b.State(now); got != Closed {
		t.Fatalf("initial state = %v, want closed", got)
	}
	// 4 failures in a row: ratio 1.0 ≥ 0.5 at MinSamples → trip.
	for i := 0; i < 4; i++ {
		if err := b.Allow(now); err != nil {
			t.Fatalf("closed breaker refused request %d: %v", i, err)
		}
		b.Record(now, true)
	}
	if got := b.State(now); got != Open {
		t.Fatalf("state after failure storm = %v, want open", got)
	}
	if got := b.Trips(); got != 1 {
		t.Fatalf("Trips = %d, want 1", got)
	}
	err := b.Allow(now + 50)
	var bo *ErrBreakerOpen
	if !errors.As(err, &bo) {
		t.Fatalf("open breaker returned %v, want *ErrBreakerOpen", err)
	}
	if bo.Shard != 3 {
		t.Fatalf("Shard = %d, want 3", bo.Shard)
	}
	if bo.RetryAfter != 50 {
		t.Fatalf("RetryAfter = %d, want the 50 µs left of the backoff", bo.RetryAfter)
	}

	// Backoff elapses → half-open admits exactly one probe.
	now += 100
	if got := b.State(now); got != HalfOpen {
		t.Fatalf("state after backoff = %v, want half-open", got)
	}
	if err := b.Allow(now); err != nil {
		t.Fatalf("half-open breaker refused the probe: %v", err)
	}
	if err := b.Allow(now); err == nil {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// Probe fails → re-open with doubled backoff.
	b.Record(now, true)
	if got := b.State(now + 199); got != Open {
		t.Fatal("backoff did not double after a failed probe")
	}
	if got := b.State(now + 200); got != HalfOpen {
		t.Fatal("doubled backoff did not elapse at 200 µs")
	}
	// Successful probe → closed, backoff reset.
	if err := b.Allow(now + 200); err != nil {
		t.Fatal(err)
	}
	b.Record(now+200, false)
	if got := b.State(now + 200); got != Closed {
		t.Fatalf("state after good probe = %v, want closed", got)
	}
	if got := b.Trips(); got != 2 {
		t.Fatalf("Trips = %d, want 2", got)
	}
}

func TestBreakerBackoffCapped(t *testing.T) {
	b := NewBreaker(0, BreakerConfig{Window: 4, TripRatio: 0.5, MinSamples: 2, Backoff: 100, MaxBackoff: 250})
	now := device.Micros(0)
	trip := func() {
		for b.State(now) != Open {
			if err := b.Allow(now); err != nil {
				t.Fatalf("could not feed breaker at %d: %v", now, err)
			}
			b.Record(now, true)
		}
	}
	trip() // backoff 100
	for i := 0; i < 5; i++ {
		// Fail every probe: backoff 100 → 200 → 250 (capped) ...
		for b.State(now) != HalfOpen {
			now++
		}
		if err := b.Allow(now); err != nil {
			t.Fatal(err)
		}
		b.Record(now, true)
		if b.State(now+249) == HalfOpen && i >= 2 {
			t.Fatalf("probe %d: backoff fell below the 250 µs cap", i)
		}
		if got := b.State(now + 250); got != HalfOpen {
			t.Fatalf("probe %d: backoff exceeded the 250 µs cap (state %v)", i, got)
		}
	}
}

func TestBreakerMinSamplesGate(t *testing.T) {
	b := NewBreaker(0, BreakerConfig{Window: 16, TripRatio: 0.5, MinSamples: 8})
	for i := 0; i < 7; i++ {
		b.Record(0, true)
	}
	if got := b.State(0); got != Closed {
		t.Fatalf("breaker tripped on %d samples below MinSamples=8", 7)
	}
	b.Record(0, true)
	if got := b.State(0); got != Open {
		t.Fatal("breaker did not trip once MinSamples was reached")
	}
}

func TestBreakerRollingWindowForgets(t *testing.T) {
	b := NewBreaker(0, BreakerConfig{Window: 4, TripRatio: 0.75, MinSamples: 4})
	// Two failures, then a steady stream of successes: the ring must
	// push the failures out and never trip.
	b.Record(0, true)
	b.Record(0, true)
	for i := 0; i < 16; i++ {
		b.Record(0, false)
		if got := b.State(0); got != Closed {
			t.Fatalf("breaker tripped on a healthy stream at step %d", i)
		}
	}
}

func TestBreakerRecordFaultTripsWithoutTraffic(t *testing.T) {
	b := NewBreaker(0, BreakerConfig{Window: 8, TripRatio: 0.5, MinSamples: 4})
	for i := 0; i < 4; i++ {
		b.RecordFault(device.Micros(i))
	}
	if got := b.State(4); got != Open {
		t.Fatalf("fault-storm signals alone did not trip the breaker (state %v)", got)
	}
}

// --- Gate --------------------------------------------------------------

func TestGateComposesLimiterAndBreakers(t *testing.T) {
	reg := obs.NewRegistry()
	g := NewGate(GateConfig{
		Shards:  2,
		Limiter: LimiterConfig{RatePerSec: 1000, Burst: 2},
		Breaker: BreakerConfig{Window: 8, TripRatio: 0.5, MinSamples: 2, Backoff: 1000},
	}, reg)

	// Burst exhaustion → rate limited.
	if err := g.Admit("a", 0, 0); err != nil {
		t.Fatal(err)
	}
	g.Record(0, 0, false)
	if err := g.Admit("a", 0, 0); err != nil {
		t.Fatal(err)
	}
	g.Record(0, 0, false)
	var rl *ErrRateLimited
	if err := g.Admit("a", 0, 0); !errors.As(err, &rl) {
		t.Fatalf("want *ErrRateLimited, got %v", err)
	}

	// Trip shard 1's breaker via fault signals; shard 0 stays open for
	// business and the fresh client is not rate limited.
	g.RecordFault(1, 0)
	g.RecordFault(1, 0)
	var bo *ErrBreakerOpen
	if err := g.Admit("b", 1, 0); !errors.As(err, &bo) {
		t.Fatalf("want *ErrBreakerOpen on shard 1, got %v", err)
	}
	if err := g.Admit("b", 0, 0); err != nil {
		t.Fatalf("shard 0 must be unaffected by shard 1's breaker: %v", err)
	}
	g.Record(0, 0, false)

	if got := g.Trips(); got != 1 {
		t.Fatalf("Trips = %d, want 1", got)
	}
	if got := g.BreakerState(1, 0); got != Open {
		t.Fatalf("shard 1 state = %v, want open", got)
	}

	for name, want := range map[string]int64{
		"qos_admit_allowed_total":          3,
		"qos_admit_rate_limited_total":     1,
		"qos_admit_breaker_rejected_total": 1,
		"qos_admit_breaker_trips_total":    1,
	} {
		got, ok := reg.CounterValue(name)
		if !ok || got != want {
			t.Errorf("%s = %d (present %v), want %d", name, got, ok, want)
		}
	}
}

func TestGateShardMirrorsServeRouting(t *testing.T) {
	g := NewGate(GateConfig{Shards: 4}, nil)
	for _, typ := range []casebase.TypeID{0, 1, 4, 7, 13} {
		if got, want := g.Shard(typ), int(typ)%4; got != want {
			t.Fatalf("Shard(%d) = %d, want %d", typ, got, want)
		}
	}
}

func TestGateNilRegistryAndConcurrency(t *testing.T) {
	g := NewGate(GateConfig{Shards: 3}, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := fmt.Sprintf("c%d", w)
			for i := 0; i < 200; i++ {
				now := device.Micros(i) * 10
				shard := i % g.Shards()
				if err := g.Admit(client, shard, now); err == nil {
					g.Record(shard, now, i%17 == 0)
				}
				if i%50 == 0 {
					g.RecordFault(shard, now)
					g.BreakerState(shard, now)
				}
			}
		}(w)
	}
	wg.Wait()
	g.Trips() // must not race or panic
}
