package admit

import (
	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
	"qosalloc/internal/obs"
)

// GateConfig composes the limiter and per-shard breaker tuning. Shards
// must match the serve.Service shard count so the gate's breaker
// routing (TypeID modulo shards) agrees with the service's.
type GateConfig struct {
	Shards  int
	Limiter LimiterConfig
	Breaker BreakerConfig
}

// Gate is the composed admission check run before a request reaches
// the service: the client's token bucket first, then the target
// shard's circuit breaker. Each admitted request must be settled with
// Record so half-open probes resolve and closed-state windows fill.
type Gate struct {
	limiter  *Limiter
	breakers []*Breaker
	met      *gateMetrics
}

// NewGate builds a gate with cfg, registering its qos_admit_* metrics
// on reg (nil yields a dangling, uninstrumented bundle).
func NewGate(cfg GateConfig, reg *obs.Registry) *Gate {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	g := &Gate{
		limiter: NewLimiter(cfg.Limiter),
		met:     newGateMetrics(reg, cfg.Shards),
	}
	for i := 0; i < cfg.Shards; i++ {
		g.breakers = append(g.breakers, NewBreaker(i, cfg.Breaker))
	}
	return g
}

// Shard maps a request type to its breaker index, mirroring the
// serve.Service routing (TypeID modulo shard count).
func (g *Gate) Shard(t casebase.TypeID) int {
	return int(t) % len(g.breakers)
}

// Shards returns the breaker count.
func (g *Gate) Shards() int { return len(g.breakers) }

// Admit runs the full admission check for client's request to shard at
// sim time now: nil on admission (the caller now owes a Record call),
// *ErrRateLimited if the client's bucket is empty, *ErrBreakerOpen if
// the shard's breaker rejects.
func (g *Gate) Admit(client string, shard int, now device.Micros) error {
	if err := g.limiter.Allow(client, now); err != nil {
		g.met.rateLimited.Inc()
		return err
	}
	if err := g.breakers[shard].Allow(now); err != nil {
		g.met.breakerOpen.Inc()
		g.refreshState(shard, now)
		return err
	}
	g.met.allowed.Inc()
	g.refreshState(shard, now)
	return nil
}

// Record settles an admitted request's outcome at sim time now,
// feeding the shard breaker's rolling window (and, in half-open,
// deciding the probe).
func (g *Gate) Record(shard int, now device.Micros, failed bool) {
	before := g.breakers[shard].Trips()
	g.breakers[shard].Record(now, failed)
	g.accountTrips(shard, before, now)
}

// RecordFault injects an external failure signal (a fault-storm event
// on a device backing shard) into the shard breaker's window. Wire the
// fault injector's Subscribe hook here so storms trip breakers even
// between requests.
func (g *Gate) RecordFault(shard int, now device.Micros) {
	before := g.breakers[shard].Trips()
	g.breakers[shard].RecordFault(now)
	g.accountTrips(shard, before, now)
}

// BreakerState reports shard's breaker position at sim time now.
func (g *Gate) BreakerState(shard int, now device.Micros) State {
	return g.breakers[shard].State(now)
}

// Trips returns the total breaker trips across all shards.
func (g *Gate) Trips() int64 {
	var n int64
	for _, b := range g.breakers {
		n += b.Trips()
	}
	return n
}

// accountTrips bumps the trip counter and state gauge after a Record
// that may have opened the breaker.
func (g *Gate) accountTrips(shard int, before int64, now device.Micros) {
	if d := g.breakers[shard].Trips() - before; d > 0 {
		g.met.trips.Add(d)
	}
	g.refreshState(shard, now)
}

// refreshState mirrors shard's breaker state into its gauge.
func (g *Gate) refreshState(shard int, now device.Micros) {
	g.met.breakerState[shard].Set(int64(g.breakers[shard].State(now)))
}
