package admit

import (
	"reflect"
	"testing"
)

func TestParseClassBudgets(t *testing.T) {
	got, err := ParseClassBudgets("gold=slices:2000,brams:8; bronze=slices:920,cfgbps:65536,cfgburst:131072")
	if err != nil {
		t.Fatalf("ParseClassBudgets: %v", err)
	}
	want := map[QoSClass]ClassBudget{
		"gold":   {Slices: 2000, BRAMs: 8},
		"bronze": {Slices: 920, ConfigBytesPerSec: 65536, ConfigBurstBytes: 131072},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v want %+v", got, want)
	}
	for _, bad := range []string{
		"", ";", "gold", "gold=", "=slices:1", "gold=slices",
		"gold=slices:0", "gold=slices:x", "gold=watts:5",
		"gold=slices:1;gold=slices:2",
	} {
		if _, err := ParseClassBudgets(bad); err == nil {
			t.Fatalf("ParseClassBudgets(%q) accepted", bad)
		}
	}
}
