// Package admit is the admission-control layer between a wire protocol
// and the serve.Service: per-client token-bucket rate limiting and
// per-shard circuit breaking, composed by a Gate.
//
// The paper's allocation manager negotiates QoS under scarcity — "an
// alternative implementation can be offered to the calling
// application" (§2) — and a serving frontend must make the same move
// one layer up: when demand exceeds what the platform can absorb, the
// system degrades *by contract* (typed rejections carrying retry
// hints), never by queuing without bound or timing out opaquely.
//
// Everything here runs on caller-supplied sim-time (device.Micros):
// buckets refill and breakers back off against timestamps threaded in
// by the caller, never against a wall clock, so an admission schedule
// replays bit-identically — the property the qosload lockstep harness
// pins. The daemon edge (cmd/qosd) is the only place wall time is
// mapped onto these timestamps.
//
// All types are safe for concurrent use.
package admit

import (
	"container/list"
	"fmt"
	"sync"

	"qosalloc/internal/device"
)

// Limiter defaults.
const (
	// DefaultRatePerSec refills each client bucket at this many
	// requests per second of sim time.
	DefaultRatePerSec = 1000
	// DefaultBurst is each client bucket's capacity.
	DefaultBurst = 100
	// DefaultMaxClients bounds the tracked-client table; the least
	// recently seen client is evicted beyond it.
	DefaultMaxClients = 4096
)

// microPerToken is the bucket's fixed-point scale: one request-token
// is one million micro-tokens, so a rate of R tokens per second adds
// exactly R micro-tokens per elapsed sim-microsecond — integer
// arithmetic, no drift, bit-identical replay.
const microPerToken = 1_000_000

// ErrRateLimited is the typed per-client rejection: the client's
// token bucket is empty. RetryAfter is the sim time until one token
// has accrued at the configured rate.
type ErrRateLimited struct {
	Client     string
	RetryAfter device.Micros
}

func (e *ErrRateLimited) Error() string {
	return fmt.Sprintf("admit: client %q rate limited; retry after ~%d µs", e.Client, e.RetryAfter)
}

// LimiterConfig tunes the per-client buckets. The zero value gives the
// defaults above.
type LimiterConfig struct {
	// RatePerSec is the refill rate per client in tokens (requests)
	// per second of sim time.
	RatePerSec int64
	// Burst is the bucket capacity in tokens: how far a quiet client
	// may run ahead of its steady-state rate.
	Burst int64
	// MaxClients bounds the client table (LRU eviction). An evicted
	// client that returns starts with a full bucket again — the bound
	// trades that small generosity for a hard memory ceiling.
	MaxClients int
}

func (c LimiterConfig) withDefaults() LimiterConfig {
	if c.RatePerSec <= 0 {
		c.RatePerSec = DefaultRatePerSec
	}
	if c.Burst <= 0 {
		c.Burst = DefaultBurst
	}
	if c.MaxClients <= 0 {
		c.MaxClients = DefaultMaxClients
	}
	return c
}

// bucket is one client's token bucket in micro-tokens.
type bucket struct {
	client string
	micro  int64         // current fill, 0..Burst*microPerToken
	last   device.Micros // sim time of the last refill
	elem   *list.Element // position in the LRU list
}

// Limiter is the per-client token-bucket table. Buckets refill
// deterministically from the sim timestamps passed to Allow; clients
// are tracked up to MaxClients with least-recently-seen eviction.
type Limiter struct {
	mu      sync.Mutex
	cfg     LimiterConfig
	clients map[string]*bucket
	lru     *list.List // front = most recently seen
}

// NewLimiter returns a limiter with cfg (zero fields take defaults).
func NewLimiter(cfg LimiterConfig) *Limiter {
	return &Limiter{
		cfg:     cfg.withDefaults(),
		clients: make(map[string]*bucket),
		lru:     list.New(),
	}
}

// Clients returns how many clients are currently tracked.
func (l *Limiter) Clients() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.clients)
}

// Allow spends one token from client's bucket at sim time now. It
// returns nil on admission or a typed *ErrRateLimited whose RetryAfter
// says when one token will have accrued. Timestamps must not move
// backwards per client; a stale now simply yields no refill.
func (l *Limiter) Allow(client string, now device.Micros) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.clients[client]
	if b == nil {
		b = l.insert(client, now)
	}
	l.lru.MoveToFront(b.elem)
	// Refill: elapsed µs × RatePerSec = accrued micro-tokens, exactly.
	if now > b.last {
		b.micro = min(b.micro+int64(now-b.last)*l.cfg.RatePerSec, l.cfg.Burst*microPerToken)
		b.last = now
	}
	if b.micro >= microPerToken {
		b.micro -= microPerToken
		return nil
	}
	need := microPerToken - b.micro
	retry := device.Micros((need + l.cfg.RatePerSec - 1) / l.cfg.RatePerSec)
	return &ErrRateLimited{Client: client, RetryAfter: retry}
}

// insert adds a fresh full bucket for client, evicting the least
// recently seen client if the table is at its bound. Caller holds mu.
func (l *Limiter) insert(client string, now device.Micros) *bucket {
	if len(l.clients) >= l.cfg.MaxClients {
		oldest := l.lru.Back()
		evicted := l.lru.Remove(oldest).(*bucket)
		delete(l.clients, evicted.client)
	}
	b := &bucket{client: client, micro: l.cfg.Burst * microPerToken, last: now}
	b.elem = l.lru.PushFront(b)
	l.clients[client] = b
	return b
}
