package admit

import (
	"fmt"
	"sync"

	"qosalloc/internal/device"
)

// Breaker defaults.
const (
	// DefaultWindow is the rolling outcome window per breaker.
	DefaultWindow = 32
	// DefaultTripRatio trips the breaker when failures/window meet it.
	DefaultTripRatio = 0.5
	// DefaultMinSamples is the fewest window entries before the ratio
	// is consulted; below it the breaker never trips.
	DefaultMinSamples = 8
	// DefaultBackoff is the first open interval; it doubles on every
	// failed half-open probe up to DefaultMaxBackoff.
	DefaultBackoff device.Micros = 50_000
	// DefaultMaxBackoff caps the doubling.
	DefaultMaxBackoff device.Micros = 1_600_000
)

// State is a breaker's position in the trip/probe/recover cycle.
type State uint8

const (
	// Closed admits traffic while watching the failure ratio.
	Closed State = iota
	// Open rejects traffic until the backoff interval elapses.
	Open
	// HalfOpen admits exactly one probe; its outcome decides whether
	// the breaker re-closes or re-opens with a doubled backoff.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// ErrBreakerOpen is the typed rejection for a tripped breaker.
// RetryAfter is the sim time until the breaker will next half-open.
type ErrBreakerOpen struct {
	Shard      int
	RetryAfter device.Micros
}

func (e *ErrBreakerOpen) Error() string {
	return fmt.Sprintf("admit: shard %d breaker open; retry after ~%d µs", e.Shard, e.RetryAfter)
}

// BreakerConfig tunes one breaker. The zero value gives the defaults
// above.
type BreakerConfig struct {
	// Window is the rolling outcome window length.
	Window int
	// TripRatio is the failure fraction over the window that opens the
	// breaker.
	TripRatio float64
	// MinSamples gates tripping until the window holds that many
	// outcomes, so one early failure can't open a cold breaker.
	MinSamples int
	// Backoff is the first open interval; each failed probe doubles it
	// up to MaxBackoff. A successful probe resets it.
	Backoff    device.Micros
	MaxBackoff device.Micros
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.TripRatio <= 0 || c.TripRatio > 1 {
		c.TripRatio = DefaultTripRatio
	}
	if c.MinSamples <= 0 {
		c.MinSamples = DefaultMinSamples
	}
	if c.Backoff <= 0 {
		c.Backoff = DefaultBackoff
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = DefaultMaxBackoff
	}
	if c.MaxBackoff < c.Backoff {
		c.MaxBackoff = c.Backoff
	}
	return c
}

// Breaker is one shard's circuit breaker: closed → (failure ratio over
// a rolling window) → open → (backoff elapses) → half-open → one probe
// decides between re-closing and re-opening with doubled backoff.
// Outcomes and fault signals are recorded against caller-supplied sim
// timestamps.
type Breaker struct {
	mu    sync.Mutex
	cfg   BreakerConfig
	shard int

	state   State
	window  []bool // true = failure; ring of the last cfg.Window outcomes
	next    int    // ring cursor
	filled  int    // entries populated, 0..len(window)
	fails   int    // failures currently in the window
	openAt  device.Micros
	backoff device.Micros
	probing bool // a half-open probe is in flight

	trips int64
}

// NewBreaker returns a closed breaker for shard with cfg (zero fields
// take defaults).
func NewBreaker(shard int, cfg BreakerConfig) *Breaker {
	c := cfg.withDefaults()
	return &Breaker{
		cfg:     c,
		shard:   shard,
		window:  make([]bool, c.Window),
		backoff: c.Backoff,
	}
}

// State reports the breaker position at sim time now, promoting Open
// to HalfOpen once the backoff interval has elapsed.
func (b *Breaker) State(now device.Micros) State {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advance(now)
	return b.state
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// Allow asks whether a request may pass at sim time now. Closed always
// admits; HalfOpen admits exactly one in-flight probe; Open rejects
// with a typed *ErrBreakerOpen carrying the time until the next
// half-open. Every admitted request must be matched by a Record call.
func (b *Breaker) Allow(now device.Micros) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advance(now)
	switch b.state {
	case Closed:
		return nil
	case HalfOpen:
		if !b.probing {
			b.probing = true
			return nil
		}
		// A probe is already out; everyone else waits for its verdict.
		return &ErrBreakerOpen{Shard: b.shard, RetryAfter: 1}
	default: // Open
		retry := device.Micros(1)
		if due := b.openAt + b.backoff; due > now {
			retry = due - now
		}
		return &ErrBreakerOpen{Shard: b.shard, RetryAfter: retry}
	}
}

// Record reports the outcome of an admitted request at sim time now.
// In HalfOpen it settles the probe: success re-closes the breaker and
// resets the backoff; failure re-opens it with the backoff doubled.
func (b *Breaker) Record(now device.Micros, failed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advance(now)
	if b.state == HalfOpen && b.probing {
		b.probing = false
		if failed {
			b.backoff = min(b.backoff*2, b.cfg.MaxBackoff)
			b.open(now)
		} else {
			b.reset()
		}
		return
	}
	if b.state != Closed {
		// Stragglers admitted before the trip; the window restarts on
		// re-close, so their outcomes carry no signal.
		return
	}
	b.push(failed)
	if b.filled >= b.cfg.MinSamples &&
		float64(b.fails) >= b.cfg.TripRatio*float64(b.filled) {
		b.open(now)
	}
}

// RecordFault injects an external failure signal — a fault-storm event
// on a device backing this shard — as a window sample, possibly
// tripping the breaker without any request traffic. No-op unless
// Closed.
func (b *Breaker) RecordFault(now device.Micros) {
	b.Record(now, true)
}

// advance promotes Open to HalfOpen once the backoff has elapsed.
// Caller holds mu.
func (b *Breaker) advance(now device.Micros) {
	if b.state == Open && now >= b.openAt+b.backoff {
		b.state = HalfOpen
		b.probing = false
	}
}

// open trips the breaker at now. Caller holds mu.
func (b *Breaker) open(now device.Micros) {
	b.state = Open
	b.openAt = now
	b.trips++
	b.clear()
}

// reset re-closes the breaker after a successful probe. Caller holds mu.
func (b *Breaker) reset() {
	b.state = Closed
	b.backoff = b.cfg.Backoff
	b.clear()
}

// clear empties the rolling window. Caller holds mu.
func (b *Breaker) clear() {
	for i := range b.window {
		b.window[i] = false
	}
	b.next, b.filled, b.fails = 0, 0, 0
}

// push records one outcome in the ring. Caller holds mu.
func (b *Breaker) push(failed bool) {
	if b.filled == len(b.window) {
		if b.window[b.next] {
			b.fails--
		}
	} else {
		b.filled++
	}
	b.window[b.next] = failed
	if failed {
		b.fails++
	}
	b.next = (b.next + 1) % len(b.window)
}
