package admit

import (
	"errors"
	"testing"

	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
)

func TestLedgerUnboundTenantUnmetered(t *testing.T) {
	l := NewLedger()
	f := casebase.Footprint{Slices: 1000, BRAMs: 1000, ConfigBytes: 1 << 30}
	for i := 0; i < 10; i++ {
		if err := l.Admit("anon", f, 0); err != nil {
			t.Fatalf("unbound tenant rejected: %v", err)
		}
	}
}

func TestLedgerSliceBudget(t *testing.T) {
	l := NewLedger()
	l.DefineClass("bronze", ClassBudget{Slices: 3})
	l.BindTenant("t1", "bronze")
	f := casebase.Footprint{Slices: 2}
	if err := l.Admit("t1", f, 0); err != nil {
		t.Fatalf("first admit: %v", err)
	}
	err := l.Admit("t1", f, 0)
	var be *ErrBudgetExceeded
	if !errors.As(err, &be) {
		t.Fatalf("second admit = %v, want *ErrBudgetExceeded", err)
	}
	if be.Resource != ResourceSlices || be.Used != 2 || be.Budget != 3 {
		t.Errorf("exceeded = %+v, want slices 2/3", be)
	}
	// Atomicity: the failed admit charged nothing.
	if s, _ := l.Usage("t1"); s != 2 {
		t.Errorf("usage after rejection = %d slices, want 2", s)
	}
	l.Release("t1", f)
	if err := l.Admit("t1", f, 0); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
}

func TestLedgerBRAMBudget(t *testing.T) {
	l := NewLedger()
	l.DefineClass("gold", ClassBudget{BRAMs: 4})
	l.BindTenant("t1", "gold")
	if err := l.Admit("t1", casebase.Footprint{BRAMs: 4}, 0); err != nil {
		t.Fatalf("admit at budget: %v", err)
	}
	err := l.Admit("t1", casebase.Footprint{BRAMs: 1}, 0)
	var be *ErrBudgetExceeded
	if !errors.As(err, &be) || be.Resource != ResourceBRAMs {
		t.Fatalf("over-BRAM admit = %v, want brams exceeded", err)
	}
}

func TestLedgerConfigBandwidth(t *testing.T) {
	l := NewLedger()
	l.DefineClass("silver", ClassBudget{ConfigBytesPerSec: 1000, ConfigBurstBytes: 1000})
	l.BindTenant("t1", "silver")
	f := casebase.Footprint{ConfigBytes: 600}
	if err := l.Admit("t1", f, 0); err != nil {
		t.Fatalf("first bitstream: %v", err)
	}
	// 600 of 1000 burst bytes remain accrued; the second 600-byte
	// bitstream must wait for 200 more bytes at 1000 B/s = 200 ms.
	err := l.Admit("t1", f, 0)
	var be *ErrBudgetExceeded
	if !errors.As(err, &be) || be.Resource != ResourceConfigBytes {
		t.Fatalf("second bitstream = %v, want config_bytes exceeded", err)
	}
	if be.RetryAfter != 200_000 {
		t.Errorf("RetryAfter = %d µs, want 200000", be.RetryAfter)
	}
	// After exactly RetryAfter the bucket has refilled just enough.
	if err := l.Admit("t1", f, 200_000); err != nil {
		t.Fatalf("bitstream after refill: %v", err)
	}
	// Bandwidth is not refunded on release.
	l.Release("t1", f)
	if err := l.Admit("t1", f, 200_000); err == nil {
		t.Fatal("release refunded bandwidth; bytes already streamed")
	}
}

func TestLedgerTenantsIsolated(t *testing.T) {
	l := NewLedger()
	l.DefineClass("bronze", ClassBudget{Slices: 2})
	l.BindTenant("noisy", "bronze")
	l.BindTenant("quiet", "bronze")
	f := casebase.Footprint{Slices: 2}
	if err := l.Admit("noisy", f, 0); err != nil {
		t.Fatalf("noisy admit: %v", err)
	}
	if err := l.Admit("noisy", f, 0); err == nil {
		t.Fatal("noisy tenant exceeded its class budget unchecked")
	}
	// Same class, separate envelope: quiet is untouched by noisy's spend.
	if err := l.Admit("quiet", f, 0); err != nil {
		t.Fatalf("quiet tenant throttled by noisy neighbor: %v", err)
	}
}

func TestLedgerReplayDeterminism(t *testing.T) {
	run := func() []string {
		l := NewLedger()
		l.DefineClass("c", ClassBudget{Slices: 3, ConfigBytesPerSec: 500})
		l.BindTenant("t", "c")
		var out []string
		f := casebase.Footprint{Slices: 1, ConfigBytes: 300}
		for i := 0; i < 8; i++ {
			err := l.Admit("t", f, device.Micros(i)*100_000)
			if err != nil {
				out = append(out, err.Error())
			} else {
				out = append(out, "ok")
			}
			if i%3 == 2 {
				l.Release("t", f)
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at step %d: %q vs %q", i, a[i], b[i])
		}
	}
}
