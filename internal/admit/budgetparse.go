package admit

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseClassBudgets parses the CLI class-budget syntax shared by qosd:
// ';'-separated "class=res:val,res:val" entries where res is one of
// slices, brams, cfgbps (config bytes per second of sim time) or
// cfgburst (bandwidth bucket capacity in bytes), e.g.
//
//	"gold=slices:2000,brams:8;bronze=slices:920,cfgbps:65536"
//
// Omitted resources stay unmetered (the ClassBudget zero value).
func ParseClassBudgets(s string) (map[QoSClass]ClassBudget, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("admit: empty class-budget spec")
	}
	out := make(map[QoSClass]ClassBudget)
	for _, entry := range strings.Split(s, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, spec, ok := strings.Cut(entry, "=")
		if !ok || name == "" || spec == "" {
			return nil, fmt.Errorf("admit: bad class entry %q (want class=res:val,...)", entry)
		}
		class := QoSClass(name)
		if _, dup := out[class]; dup {
			return nil, fmt.Errorf("admit: class %q listed twice", name)
		}
		var b ClassBudget
		for _, rv := range strings.Split(spec, ",") {
			rv = strings.TrimSpace(rv)
			res, val, ok := strings.Cut(rv, ":")
			if !ok {
				return nil, fmt.Errorf("admit: class %q: bad resource %q (want res:val)", name, rv)
			}
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("admit: class %q: bad %s value %q", name, res, val)
			}
			switch res {
			case "slices":
				b.Slices = int(n)
			case "brams":
				b.BRAMs = int(n)
			case "cfgbps":
				b.ConfigBytesPerSec = n
			case "cfgburst":
				b.ConfigBurstBytes = n
			default:
				return nil, fmt.Errorf("admit: class %q: unknown resource %q (want slices, brams, cfgbps or cfgburst)", name, res)
			}
		}
		out[class] = b
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("admit: empty class-budget spec")
	}
	return out, nil
}
