// Package hwapi is the paper's HW-Layer API (fig. 1): "the interface for
// all hardware relevant aspects like resource consumption, low-level
// communication and reconfiguration of system parts". The allocation
// layer "will need informations about the current system load and power
// consumption status, which are procured by the HW-Layer API one level
// below" (§1) — this package produces exactly those status snapshots,
// plus a bounded history so management policies can react to trends.
package hwapi

import (
	"fmt"
	"sort"
	"strings"

	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
	"qosalloc/internal/rtsys"
)

// DeviceStatus is the load/power snapshot of one device.
type DeviceStatus struct {
	Name    device.ID
	Kind    casebase.Target
	PowerMW int
	// Utilization is the committed share of the device's dominant
	// capacity in permille: occupied slots for FPGAs, CPU load for
	// processors.
	Utilization int
	// Tasks is the number of live placements.
	Tasks int
}

// Status is one platform-wide snapshot.
type Status struct {
	At           device.Micros
	Devices      []DeviceStatus
	TotalPowerMW int
	// Pending counts tasks waiting for capacity (Pending or
	// Preempted), the backlog signal a QoS manager watches.
	Pending int
}

// Snapshot queries the run-time system for the current load and power
// state.
func Snapshot(sys *rtsys.System) Status {
	st := Status{At: sys.Now()}
	for _, d := range sys.Devices() {
		ds := DeviceStatus{
			Name: d.Name(), Kind: d.Kind(),
			PowerMW: d.PowerMW(), Tasks: len(d.Placements()),
		}
		switch dev := d.(type) {
		case *device.FPGA:
			if n := dev.NumSlots(); n > 0 {
				ds.Utilization = 1000 * (n - dev.FreeSlots()) / n
			}
		case *device.Processor:
			if dev.LoadCapacity > 0 {
				ds.Utilization = 1000 * dev.Load() / dev.LoadCapacity
			}
		}
		st.TotalPowerMW += ds.PowerMW
		st.Devices = append(st.Devices, ds)
	}
	sort.Slice(st.Devices, func(i, j int) bool { return st.Devices[i].Name < st.Devices[j].Name })
	for _, t := range sys.Tasks() {
		if t.State == rtsys.Pending || t.State == rtsys.Preempted {
			st.Pending++
		}
	}
	return st
}

// String renders the snapshot as a compact status line per device.
func (s Status) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%dus power=%dmW pending=%d\n", s.At, s.TotalPowerMW, s.Pending)
	for _, d := range s.Devices {
		fmt.Fprintf(&b, "  %-8s %-8s util=%3d.%d%% power=%4dmW tasks=%d\n",
			d.Name, d.Kind, d.Utilization/10, d.Utilization%10, d.PowerMW, d.Tasks)
	}
	return b.String()
}

// Monitor keeps a bounded history of snapshots for trend queries.
type Monitor struct {
	sys     *rtsys.System
	history []Status
	// Capacity bounds the history length; older snapshots are dropped.
	Capacity int
}

// NewMonitor returns a monitor over sys keeping up to capacity
// snapshots (default 64 when capacity ≤ 0).
func NewMonitor(sys *rtsys.System, capacity int) *Monitor {
	if capacity <= 0 {
		capacity = 64
	}
	return &Monitor{sys: sys, Capacity: capacity}
}

// Sample takes and stores a snapshot, returning it.
func (m *Monitor) Sample() Status {
	s := Snapshot(m.sys)
	m.history = append(m.history, s)
	if len(m.history) > m.Capacity {
		m.history = m.history[len(m.history)-m.Capacity:]
	}
	return s
}

// History returns the stored snapshots, oldest first.
func (m *Monitor) History() []Status { return m.history }

// PeakPowerMW returns the highest total power observed.
func (m *Monitor) PeakPowerMW() int {
	p := 0
	for _, s := range m.history {
		if s.TotalPowerMW > p {
			p = s.TotalPowerMW
		}
	}
	return p
}

// MeanPowerMW returns the average total power over the history.
func (m *Monitor) MeanPowerMW() float64 {
	if len(m.history) == 0 {
		return 0
	}
	sum := 0
	for _, s := range m.history {
		sum += s.TotalPowerMW
	}
	return float64(sum) / float64(len(m.history))
}

// MaxUtilization returns the highest single-device utilization (permille)
// in the latest snapshot, the headroom signal for admission control.
func (m *Monitor) MaxUtilization() int {
	if len(m.history) == 0 {
		return 0
	}
	last := m.history[len(m.history)-1]
	max := 0
	for _, d := range last.Devices {
		if d.Utilization > max {
			max = d.Utilization
		}
	}
	return max
}
