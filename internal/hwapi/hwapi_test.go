package hwapi

import (
	"strings"
	"testing"

	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
	"qosalloc/internal/rtsys"
)

func testSystem(t *testing.T) (*rtsys.System, *casebase.CaseBase) {
	t.Helper()
	cb, err := casebase.PaperCaseBase()
	if err != nil {
		t.Fatal(err)
	}
	repo := device.NewRepository(20)
	if err := repo.PopulateFromCaseBase(cb); err != nil {
		t.Fatal(err)
	}
	fpga := device.NewFPGA("fpga0", []device.Slot{
		{Slices: 1500, BRAMs: 8, Multipliers: 16},
		{Slices: 1500, BRAMs: 8, Multipliers: 16},
	}, 66)
	fpga.StaticPowerMW = 100
	dsp := device.NewProcessor("dsp0", casebase.TargetDSP, 1000, 128*1024)
	return rtsys.NewSystem(repo, fpga, dsp), cb
}

func place(t *testing.T, sys *rtsys.System, cb *casebase.CaseBase, implID casebase.ImplID) *rtsys.Task {
	t.Helper()
	ft, _ := cb.Type(casebase.TypeFIREqualizer)
	im, _ := ft.Impl(implID)
	task := sys.CreateTask("app", casebase.TypeFIREqualizer, 5)
	var dev device.Device
	for _, d := range sys.Devices() {
		if d.Kind() == im.Target {
			dev = d
		}
	}
	if err := sys.Place(task, dev, im); err != nil {
		t.Fatal(err)
	}
	return task
}

func TestSnapshotIdle(t *testing.T) {
	sys, _ := testSystem(t)
	s := Snapshot(sys)
	if len(s.Devices) != 2 {
		t.Fatalf("devices = %d", len(s.Devices))
	}
	if s.TotalPowerMW != 100 {
		t.Errorf("idle power = %d, want the FPGA's static 100", s.TotalPowerMW)
	}
	for _, d := range s.Devices {
		if d.Utilization != 0 || d.Tasks != 0 {
			t.Errorf("idle device %s reports %+v", d.Name, d)
		}
	}
	if s.Pending != 0 {
		t.Error("no pending tasks expected")
	}
}

func TestSnapshotUnderLoad(t *testing.T) {
	sys, cb := testSystem(t)
	place(t, sys, cb, 1) // FPGA variant, 310 mW
	place(t, sys, cb, 2) // DSP variant, 220 mW, 450 permille
	waiting := sys.CreateTask("bg", casebase.TypeFIREqualizer, 1)
	_ = waiting

	s := Snapshot(sys)
	if s.TotalPowerMW != 100+310+220 {
		t.Errorf("power = %d", s.TotalPowerMW)
	}
	if s.Pending != 1 {
		t.Errorf("pending = %d", s.Pending)
	}
	byName := map[device.ID]DeviceStatus{}
	for _, d := range s.Devices {
		byName[d.Name] = d
	}
	if byName["fpga0"].Utilization != 500 {
		t.Errorf("fpga util = %d, want 500 (1 of 2 slots)", byName["fpga0"].Utilization)
	}
	if byName["dsp0"].Utilization != 450 {
		t.Errorf("dsp util = %d, want 450 permille", byName["dsp0"].Utilization)
	}
	if byName["fpga0"].Tasks != 1 || byName["dsp0"].Tasks != 1 {
		t.Error("task counts wrong")
	}
	out := s.String()
	for _, want := range []string{"fpga0", "dsp0", "power=630mW", "pending=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("status render missing %q:\n%s", want, out)
		}
	}
}

func TestMonitorHistoryAndStats(t *testing.T) {
	sys, cb := testSystem(t)
	m := NewMonitor(sys, 3)
	m.Sample() // idle: 100 mW
	place(t, sys, cb, 1)
	m.Sample() // 410 mW
	task := place(t, sys, cb, 2)
	m.Sample() // 630 mW
	if err := sys.Complete(task); err != nil {
		t.Fatal(err)
	}
	m.Sample() // 410 mW — history capacity 3 drops the idle sample

	if len(m.History()) != 3 {
		t.Fatalf("history = %d, want capacity 3", len(m.History()))
	}
	if m.PeakPowerMW() != 630 {
		t.Errorf("peak = %d", m.PeakPowerMW())
	}
	mean := m.MeanPowerMW()
	if mean < 410 || mean > 630 {
		t.Errorf("mean = %v", mean)
	}
	if m.MaxUtilization() != 500 {
		t.Errorf("max utilization = %d, want 500 (FPGA half full)", m.MaxUtilization())
	}
}

func TestMonitorEmpty(t *testing.T) {
	sys, _ := testSystem(t)
	m := NewMonitor(sys, 0) // default capacity
	if m.Capacity != 64 {
		t.Errorf("default capacity = %d", m.Capacity)
	}
	if m.PeakPowerMW() != 0 || m.MeanPowerMW() != 0 || m.MaxUtilization() != 0 {
		t.Error("empty monitor must report zeros")
	}
}
