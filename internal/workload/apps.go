package workload

import (
	"qosalloc/internal/attr"
	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
)

// Attribute vocabulary of the infotainment platform, a superset of the
// paper's §3 example covering the fig. 1 application mix.
const (
	AttrBitwidth   attr.ID = 1 // processing bitwidth, bits
	AttrProcMode   attr.ID = 2 // 0 integer, 1 float
	AttrOutputMode attr.ID = 3 // 0 mono, 1 stereo, 2 surround
	AttrSampleRate attr.ID = 4 // kSamples/s
	AttrFrameRate  attr.ID = 5 // frames/s
	AttrLatency    attr.ID = 6 // worst-case response, 100us units (lower better; encode as budget)
	AttrPower      attr.ID = 7 // power budget class, 10mW units
)

// Function types of the infotainment platform.
const (
	TypeAudioEq     casebase.TypeID = 1 // the paper's FIR equalizer
	TypeMP3Decode   casebase.TypeID = 2
	TypeVideoDecode casebase.TypeID = 3
	TypeCRC         casebase.TypeID = 4
	TypeEngineCtrl  casebase.TypeID = 5
	TypeCruiseCtrl  casebase.TypeID = 6
)

// InfotainmentRegistry defines the attribute dictionary of the demo
// platform.
func InfotainmentRegistry() *attr.Registry {
	r := attr.NewRegistry()
	r.MustDefine(attr.Def{ID: AttrBitwidth, Name: "bitwidth", Unit: "bits", Kind: attr.Numeric, Lo: 8, Hi: 32})
	r.MustDefine(attr.Def{ID: AttrProcMode, Name: "proc-mode", Kind: attr.Flag, Lo: 0, Hi: 1,
		Symbols: []string{"integer", "float"}})
	r.MustDefine(attr.Def{ID: AttrOutputMode, Name: "output-mode", Kind: attr.Ordinal, Lo: 0, Hi: 2,
		Symbols: []string{"mono", "stereo", "surround"}})
	r.MustDefine(attr.Def{ID: AttrSampleRate, Name: "sample-rate", Unit: "kS/s", Kind: attr.Numeric, Lo: 8, Hi: 96})
	r.MustDefine(attr.Def{ID: AttrFrameRate, Name: "frame-rate", Unit: "fps", Kind: attr.Numeric, Lo: 5, Hi: 60})
	r.MustDefine(attr.Def{ID: AttrLatency, Name: "latency", Unit: "×100us", Kind: attr.Numeric, Lo: 1, Hi: 200})
	r.MustDefine(attr.Def{ID: AttrPower, Name: "power-class", Unit: "×10mW", Kind: attr.Numeric, Lo: 5, Hi: 80})
	return r
}

// InfotainmentCaseBase builds the demo platform's implementation tree:
// six function types with FPGA/DSP/GPP variants whose QoS attributes
// and footprints span realistic trade-offs (hardware: fast, power-hungry
// to configure, cheap per sample; software: slow, instantly available).
func InfotainmentCaseBase() (*casebase.CaseBase, *attr.Registry, error) {
	reg := InfotainmentRegistry()
	b := casebase.NewBuilder(reg)

	pairs := func(ps ...attr.Pair) []attr.Pair { return ps }
	p := func(id attr.ID, v attr.Value) attr.Pair { return attr.Pair{ID: id, Value: v} }

	b.AddType(TypeAudioEq, "FIR Equalizer")
	b.AddImpl(TypeAudioEq, casebase.Implementation{
		ID: 1, Name: "eq-fpga", Target: casebase.TargetFPGA,
		Attrs: pairs(p(AttrBitwidth, 16), p(AttrProcMode, 0), p(AttrOutputMode, 2), p(AttrSampleRate, 96), p(AttrLatency, 2), p(AttrPower, 31)),
		Foot:  casebase.Footprint{Slices: 920, BRAMs: 4, Multipliers: 8, PowerMW: 310, ConfigBytes: 96 * 1024},
	})
	b.AddImpl(TypeAudioEq, casebase.Implementation{
		ID: 2, Name: "eq-dsp", Target: casebase.TargetDSP,
		Attrs: pairs(p(AttrBitwidth, 16), p(AttrProcMode, 0), p(AttrOutputMode, 1), p(AttrSampleRate, 48), p(AttrLatency, 8), p(AttrPower, 22)),
		Foot:  casebase.Footprint{CPULoad: 450, MemBytes: 24 * 1024, PowerMW: 220, ConfigBytes: 18 * 1024},
	})
	b.AddImpl(TypeAudioEq, casebase.Implementation{
		ID: 3, Name: "eq-gpp", Target: casebase.TargetGPP,
		Attrs: pairs(p(AttrBitwidth, 8), p(AttrProcMode, 0), p(AttrOutputMode, 0), p(AttrSampleRate, 22), p(AttrLatency, 40), p(AttrPower, 15)),
		Foot:  casebase.Footprint{CPULoad: 700, MemBytes: 8 * 1024, PowerMW: 150, ConfigBytes: 2 * 1024},
	})

	b.AddType(TypeMP3Decode, "MP3 Decoder")
	b.AddImpl(TypeMP3Decode, casebase.Implementation{
		ID: 1, Name: "mp3-dsp", Target: casebase.TargetDSP,
		Attrs: pairs(p(AttrBitwidth, 16), p(AttrProcMode, 0), p(AttrOutputMode, 1), p(AttrSampleRate, 48), p(AttrLatency, 10), p(AttrPower, 20)),
		Foot:  casebase.Footprint{CPULoad: 350, MemBytes: 32 * 1024, PowerMW: 200, ConfigBytes: 24 * 1024},
	})
	b.AddImpl(TypeMP3Decode, casebase.Implementation{
		ID: 2, Name: "mp3-gpp", Target: casebase.TargetGPP,
		Attrs: pairs(p(AttrBitwidth, 32), p(AttrProcMode, 1), p(AttrOutputMode, 1), p(AttrSampleRate, 48), p(AttrLatency, 25), p(AttrPower, 28)),
		Foot:  casebase.Footprint{CPULoad: 400, MemBytes: 64 * 1024, PowerMW: 180, ConfigBytes: 12 * 1024},
	})

	b.AddType(TypeVideoDecode, "Video Decoder")
	b.AddImpl(TypeVideoDecode, casebase.Implementation{
		ID: 1, Name: "video-fpga", Target: casebase.TargetFPGA,
		Attrs: pairs(p(AttrBitwidth, 16), p(AttrProcMode, 0), p(AttrFrameRate, 60), p(AttrLatency, 3), p(AttrPower, 45)),
		Foot:  casebase.Footprint{Slices: 1400, BRAMs: 8, Multipliers: 12, PowerMW: 450, ConfigBytes: 128 * 1024},
	})
	b.AddImpl(TypeVideoDecode, casebase.Implementation{
		ID: 2, Name: "video-dsp", Target: casebase.TargetDSP,
		Attrs: pairs(p(AttrBitwidth, 16), p(AttrProcMode, 0), p(AttrFrameRate, 30), p(AttrLatency, 12), p(AttrPower, 30)),
		Foot:  casebase.Footprint{CPULoad: 600, MemBytes: 96 * 1024, PowerMW: 300, ConfigBytes: 48 * 1024},
	})
	b.AddImpl(TypeVideoDecode, casebase.Implementation{
		ID: 3, Name: "video-gpp", Target: casebase.TargetGPP,
		Attrs: pairs(p(AttrBitwidth, 32), p(AttrProcMode, 1), p(AttrFrameRate, 15), p(AttrLatency, 60), p(AttrPower, 35)),
		Foot:  casebase.Footprint{CPULoad: 800, MemBytes: 128 * 1024, PowerMW: 250, ConfigBytes: 16 * 1024},
	})

	b.AddType(TypeCRC, "CRC/Checksum")
	b.AddImpl(TypeCRC, casebase.Implementation{
		ID: 1, Name: "crc-fpga", Target: casebase.TargetFPGA,
		Attrs: pairs(p(AttrBitwidth, 32), p(AttrProcMode, 0), p(AttrLatency, 1), p(AttrPower, 8)),
		Foot:  casebase.Footprint{Slices: 220, BRAMs: 0, Multipliers: 0, PowerMW: 80, ConfigBytes: 24 * 1024},
	})
	b.AddImpl(TypeCRC, casebase.Implementation{
		ID: 2, Name: "crc-gpp", Target: casebase.TargetGPP,
		Attrs: pairs(p(AttrBitwidth, 32), p(AttrProcMode, 0), p(AttrLatency, 15), p(AttrPower, 10)),
		Foot:  casebase.Footprint{CPULoad: 150, MemBytes: 4 * 1024, PowerMW: 90, ConfigBytes: 1 * 1024},
	})

	b.AddType(TypeEngineCtrl, "Engine Control Loop")
	b.AddImpl(TypeEngineCtrl, casebase.Implementation{
		ID: 1, Name: "ecu-fpga", Target: casebase.TargetFPGA,
		Attrs: pairs(p(AttrBitwidth, 16), p(AttrProcMode, 0), p(AttrLatency, 1), p(AttrPower, 25)),
		Foot:  casebase.Footprint{Slices: 800, BRAMs: 2, Multipliers: 4, PowerMW: 250, ConfigBytes: 64 * 1024},
	})
	b.AddImpl(TypeEngineCtrl, casebase.Implementation{
		ID: 2, Name: "ecu-gpp", Target: casebase.TargetGPP,
		Attrs: pairs(p(AttrBitwidth, 32), p(AttrProcMode, 1), p(AttrLatency, 10), p(AttrPower, 20)),
		Foot:  casebase.Footprint{CPULoad: 300, MemBytes: 16 * 1024, PowerMW: 160, ConfigBytes: 8 * 1024},
	})

	b.AddType(TypeCruiseCtrl, "Cruise Control")
	b.AddImpl(TypeCruiseCtrl, casebase.Implementation{
		ID: 1, Name: "cruise-gpp", Target: casebase.TargetGPP,
		Attrs: pairs(p(AttrBitwidth, 32), p(AttrProcMode, 1), p(AttrLatency, 20), p(AttrPower, 12)),
		Foot:  casebase.Footprint{CPULoad: 200, MemBytes: 12 * 1024, PowerMW: 110, ConfigBytes: 4 * 1024},
	})
	b.AddImpl(TypeCruiseCtrl, casebase.Implementation{
		ID: 2, Name: "cruise-dsp", Target: casebase.TargetDSP,
		Attrs: pairs(p(AttrBitwidth, 16), p(AttrProcMode, 0), p(AttrLatency, 5), p(AttrPower, 14)),
		Foot:  casebase.Footprint{CPULoad: 250, MemBytes: 8 * 1024, PowerMW: 140, ConfigBytes: 6 * 1024},
	})

	cb, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return cb, reg, nil
}

// Step is one timed request of an application profile.
type Step struct {
	At   device.Micros
	Req  casebase.Request
	Hold device.Micros // how long the function stays allocated
}

// AppProfile is one fig. 1 application: a priority and a script of
// requests against the Application-API.
type AppProfile struct {
	Name  string
	Prio  int
	Steps []Step
}

// con builds a constraint tersely.
func con(id attr.ID, v attr.Value) casebase.Constraint {
	return casebase.Constraint{ID: id, Value: v}
}

// Apps returns the fig. 1 application mix as timed profiles (times in
// microseconds over a one-second scenario).
func Apps() []AppProfile {
	return []AppProfile{
		{
			Name: "mp3-player", Prio: 3,
			Steps: []Step{
				{At: 1_000, Hold: 800_000, Req: casebase.NewRequest(TypeMP3Decode,
					con(AttrBitwidth, 16), con(AttrOutputMode, 1), con(AttrSampleRate, 44)).EqualWeights()},
				{At: 2_000, Hold: 800_000, Req: casebase.NewRequest(TypeAudioEq,
					con(AttrBitwidth, 16), con(AttrOutputMode, 1), con(AttrSampleRate, 44)).EqualWeights()},
			},
		},
		{
			Name: "video-player", Prio: 4,
			Steps: []Step{
				{At: 100_000, Hold: 700_000, Req: casebase.NewRequest(TypeVideoDecode,
					con(AttrBitwidth, 16), con(AttrFrameRate, 30), con(AttrLatency, 10)).EqualWeights()},
			},
		},
		{
			Name: "automotive-ecu", Prio: 9,
			Steps: []Step{
				{At: 200_000, Hold: 600_000, Req: casebase.NewRequest(TypeEngineCtrl,
					con(AttrBitwidth, 16), con(AttrLatency, 2)).EqualWeights()},
				{At: 210_000, Hold: 500_000, Req: casebase.NewRequest(TypeCRC,
					con(AttrBitwidth, 32), con(AttrLatency, 5)).EqualWeights()},
			},
		},
		{
			Name: "cruise-control", Prio: 7,
			Steps: []Step{
				{At: 300_000, Hold: 500_000, Req: casebase.NewRequest(TypeCruiseCtrl,
					con(AttrBitwidth, 16), con(AttrLatency, 8)).EqualWeights()},
			},
		},
	}
}
