package workload

// The per-tenant dimension of a workload: generated requests carry a
// tenant identity and that tenant's QoS class, so the fleet layer's
// class budgets (internal/admit.Ledger) and qosload's multi-tenant
// schedules are driven by the same deterministic draw. Tenants are
// assigned by weighted lottery from an explicit seed or source — the
// same discipline as the case-base and stream generators, so one seed
// replays the whole multi-tenant run bit-identically.

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"qosalloc/internal/attr"
	"qosalloc/internal/casebase"
)

// TenantSpec names one tenant with its QoS class and its relative
// weight in the request mix. A zero weight counts as 1.
type TenantSpec struct {
	ID     string
	Class  string
	Weight int
}

// TenantMixSpec parameterizes the tenant dimension of a stream.
type TenantMixSpec struct {
	Tenants []TenantSpec
	Seed    int64
	// Rand, when non-nil, takes precedence over Seed (see
	// CaseBaseSpec.Rand).
	Rand *rand.Rand
}

// TenantedRequest is one generated request with its tenant attribution.
type TenantedRequest struct {
	Tenant string
	Class  string
	Req    casebase.Request
}

// DefaultTenantMix is the three-class demo mix: a small premium
// tenant, a mid-weight standard one, and a heavy best-effort one.
func DefaultTenantMix() []TenantSpec {
	return []TenantSpec{
		{ID: "tenant-gold", Class: "gold", Weight: 1},
		{ID: "tenant-silver", Class: "silver", Weight: 2},
		{ID: "tenant-bronze", Class: "bronze", Weight: 4},
	}
}

// AssignTenants attributes each request to a tenant by weighted draw.
// The input slice is not modified; the output preserves request order.
func AssignTenants(reqs []casebase.Request, spec TenantMixSpec) ([]TenantedRequest, error) {
	if len(spec.Tenants) == 0 {
		return nil, fmt.Errorf("workload: tenant mix must name at least one tenant")
	}
	total := 0
	for i, t := range spec.Tenants {
		if t.ID == "" {
			return nil, fmt.Errorf("workload: tenant %d has an empty ID", i)
		}
		if t.Weight < 0 {
			return nil, fmt.Errorf("workload: tenant %q has negative weight %d", t.ID, t.Weight)
		}
		w := t.Weight
		if w == 0 {
			w = 1
		}
		total += w
	}
	r := spec.Rand
	if r == nil {
		r = rand.New(rand.NewSource(spec.Seed))
	}
	out := make([]TenantedRequest, len(reqs))
	for i, req := range reqs {
		draw := r.Intn(total)
		for _, t := range spec.Tenants {
			w := t.Weight
			if w == 0 {
				w = 1
			}
			if draw -= w; draw < 0 {
				out[i] = TenantedRequest{Tenant: t.ID, Class: t.Class, Req: req}
				break
			}
		}
	}
	return out, nil
}

// GenTenantedRequests composes GenRequests and AssignTenants: a full
// multi-tenant request stream from two specs. When stream.Rand is set
// and mix.Rand is nil, the mix draws from the same source, so a single
// threaded *rand.Rand still replays the whole schedule.
func GenTenantedRequests(cb *casebase.CaseBase, reg *attr.Registry, stream RequestStreamSpec, mix TenantMixSpec) ([]TenantedRequest, error) {
	reqs, err := GenRequests(cb, reg, stream)
	if err != nil {
		return nil, err
	}
	if mix.Rand == nil && stream.Rand != nil {
		mix.Rand = stream.Rand
	}
	return AssignTenants(reqs, mix)
}

// ParseTenantMix parses the CLI tenant-mix syntax shared by qosload:
// comma-separated "tenant=class" or "tenant=class:weight" entries,
// e.g. "alice=gold,bob=bronze:4". Entries keep their written order.
func ParseTenantMix(s string) ([]TenantSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("workload: empty tenant mix")
	}
	var out []TenantSpec
	seen := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, rest, ok := strings.Cut(part, "=")
		if !ok || id == "" || rest == "" {
			return nil, fmt.Errorf("workload: bad tenant entry %q (want tenant=class[:weight])", part)
		}
		class, wstr, hasW := strings.Cut(rest, ":")
		if class == "" {
			return nil, fmt.Errorf("workload: tenant %q has an empty class", id)
		}
		w := 1
		if hasW {
			v, err := strconv.Atoi(wstr)
			if err != nil || v < 1 {
				return nil, fmt.Errorf("workload: tenant %q has bad weight %q", id, wstr)
			}
			w = v
		}
		if seen[id] {
			return nil, fmt.Errorf("workload: tenant %q listed twice", id)
		}
		seen[id] = true
		out = append(out, TenantSpec{ID: id, Class: class, Weight: w})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workload: empty tenant mix")
	}
	return out, nil
}

// TenantCounts tallies a tenanted stream by tenant ID, sorted by ID —
// the deterministic summary qosload prints per run.
func TenantCounts(reqs []TenantedRequest) []TenantCount {
	byID := make(map[string]int)
	for _, tr := range reqs {
		byID[tr.Tenant]++
	}
	out := make([]TenantCount, 0, len(byID))
	for id, n := range byID {
		out = append(out, TenantCount{Tenant: id, N: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// TenantCount is one tenant's request tally.
type TenantCount struct {
	Tenant string
	N      int
}
