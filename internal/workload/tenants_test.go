package workload

import (
	"math/rand"
	"reflect"
	"testing"
)

func tenantTestStream(t *testing.T, n int, seed int64) []TenantedRequest {
	t.Helper()
	cb, reg, err := GenCaseBase(CaseBaseSpec{Types: 4, ImplsPerType: 3, AttrsPerImpl: 3, AttrUniverse: 5, Seed: 7})
	if err != nil {
		t.Fatalf("GenCaseBase: %v", err)
	}
	out, err := GenTenantedRequests(cb, reg,
		RequestStreamSpec{N: n, ConstraintsPer: 2, Seed: seed},
		TenantMixSpec{Tenants: DefaultTenantMix(), Seed: seed})
	if err != nil {
		t.Fatalf("GenTenantedRequests: %v", err)
	}
	return out
}

func TestAssignTenantsDeterministic(t *testing.T) {
	a := tenantTestStream(t, 200, 3)
	b := tenantTestStream(t, 200, 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different tenant assignments")
	}
	c := tenantTestStream(t, 200, 4)
	same := true
	for i := range a {
		if a[i].Tenant != c[i].Tenant {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical tenant sequences")
	}
}

func TestAssignTenantsRespectsWeights(t *testing.T) {
	reqs := tenantTestStream(t, 900, 1)
	counts := TenantCounts(reqs)
	byID := make(map[string]int)
	total := 0
	for _, c := range counts {
		byID[c.Tenant] = c.N
		total += c.N
	}
	if total != 900 {
		t.Fatalf("tally lost requests: %d of 900", total)
	}
	// Weights 1/2/4 over 900 draws: expect roughly 129/257/514. Allow a
	// generous band; the point is ordering and rough proportion, not a
	// statistical test.
	if !(byID["tenant-gold"] < byID["tenant-silver"] && byID["tenant-silver"] < byID["tenant-bronze"]) {
		t.Fatalf("weighted mix out of order: %+v", byID)
	}
	if byID["tenant-bronze"] < 350 || byID["tenant-gold"] > 300 {
		t.Fatalf("weighted mix far off 1:2:4 proportions: %+v", byID)
	}
	// Class labels ride along.
	for _, tr := range reqs {
		switch tr.Tenant {
		case "tenant-gold":
			if tr.Class != "gold" {
				t.Fatalf("tenant %s carries class %q", tr.Tenant, tr.Class)
			}
		case "tenant-bronze":
			if tr.Class != "bronze" {
				t.Fatalf("tenant %s carries class %q", tr.Tenant, tr.Class)
			}
		}
	}
}

func TestAssignTenantsSharedRand(t *testing.T) {
	cb, reg, err := GenCaseBase(CaseBaseSpec{Types: 3, ImplsPerType: 2, AttrsPerImpl: 2, AttrUniverse: 4, Seed: 1})
	if err != nil {
		t.Fatalf("GenCaseBase: %v", err)
	}
	gen := func() []TenantedRequest {
		r := rand.New(rand.NewSource(11))
		out, err := GenTenantedRequests(cb, reg,
			RequestStreamSpec{N: 50, ConstraintsPer: 2, Rand: r},
			TenantMixSpec{Tenants: DefaultTenantMix()}) // mix inherits r
		if err != nil {
			t.Fatalf("GenTenantedRequests: %v", err)
		}
		return out
	}
	if !reflect.DeepEqual(gen(), gen()) {
		t.Fatal("shared-source generation not replayable")
	}
}

func TestAssignTenantsValidation(t *testing.T) {
	if _, err := AssignTenants(nil, TenantMixSpec{}); err == nil {
		t.Fatal("empty mix accepted")
	}
	if _, err := AssignTenants(nil, TenantMixSpec{Tenants: []TenantSpec{{ID: "", Class: "c"}}}); err == nil {
		t.Fatal("empty tenant ID accepted")
	}
	if _, err := AssignTenants(nil, TenantMixSpec{Tenants: []TenantSpec{{ID: "a", Class: "c", Weight: -1}}}); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestParseTenantMix(t *testing.T) {
	got, err := ParseTenantMix("alice=gold, bob=bronze:4")
	if err != nil {
		t.Fatalf("ParseTenantMix: %v", err)
	}
	want := []TenantSpec{{ID: "alice", Class: "gold", Weight: 1}, {ID: "bob", Class: "bronze", Weight: 4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v want %+v", got, want)
	}
	for _, bad := range []string{"", "alice", "alice=", "=gold", "a=g:0", "a=g:x", "a=g,a=g"} {
		if _, err := ParseTenantMix(bad); err == nil {
			t.Fatalf("ParseTenantMix(%q) accepted", bad)
		}
	}
}
