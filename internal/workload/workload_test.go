package workload

import (
	"testing"

	"qosalloc/internal/casebase"
	"qosalloc/internal/retrieval"
)

func TestGenCaseBasePaperScale(t *testing.T) {
	cb, reg, err := GenCaseBase(PaperScale())
	if err != nil {
		t.Fatal(err)
	}
	s := cb.Stats()
	if s.Types != 15 || s.Impls != 150 {
		t.Errorf("stats = %+v", s)
	}
	if s.MaxAttrs != 10 {
		t.Errorf("attrs per impl = %d", s.MaxAttrs)
	}
	if reg.Len() != 10 {
		t.Errorf("attribute universe = %d", reg.Len())
	}
}

func TestGenCaseBaseDeterministic(t *testing.T) {
	a, _, _ := GenCaseBase(PaperScale())
	b, _, _ := GenCaseBase(PaperScale())
	at, bt := a.Types(), b.Types()
	for i := range at {
		if at[i].ID != bt[i].ID || len(at[i].Impls) != len(bt[i].Impls) {
			t.Fatal("same seed must give the same case base")
		}
		for j := range at[i].Impls {
			ai, bi := at[i].Impls[j], bt[i].Impls[j]
			if len(ai.Attrs) != len(bi.Attrs) {
				t.Fatal("impl shape differs")
			}
			for k := range ai.Attrs {
				if ai.Attrs[k] != bi.Attrs[k] {
					t.Fatal("attr values differ")
				}
			}
		}
	}
}

func TestGenCaseBaseRejectsBadSpec(t *testing.T) {
	if _, _, err := GenCaseBase(CaseBaseSpec{}); err == nil {
		t.Error("zero spec must fail")
	}
}

func TestGenCaseBaseFootprintsMatchTargets(t *testing.T) {
	cb, _, _ := GenCaseBase(PaperScale())
	for _, ft := range cb.Types() {
		for i := range ft.Impls {
			im := &ft.Impls[i]
			switch im.Target {
			case casebase.TargetFPGA:
				if im.Foot.Slices == 0 || im.Foot.CPULoad != 0 {
					t.Fatalf("FPGA footprint wrong: %+v", im.Foot)
				}
			default:
				if im.Foot.CPULoad == 0 || im.Foot.Slices != 0 {
					t.Fatalf("processor footprint wrong: %+v", im.Foot)
				}
			}
			if im.Foot.ConfigBytes == 0 {
				t.Fatal("config bytes missing")
			}
		}
	}
}

func TestGenRequestsValidAndRetrievable(t *testing.T) {
	cb, reg, _ := GenCaseBase(PaperScale())
	reqs, err := GenRequests(cb, reg, RequestStreamSpec{N: 50, ConstraintsPer: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 50 {
		t.Fatalf("stream length = %d", len(reqs))
	}
	e := retrieval.NewEngine(cb, retrieval.Options{})
	for i, r := range reqs {
		if err := r.Validate(cb); err != nil {
			t.Fatalf("request %d invalid: %v", i, err)
		}
		if _, err := e.Retrieve(r); err != nil {
			t.Fatalf("request %d not retrievable: %v", i, err)
		}
	}
}

func TestGenRequestsRepeats(t *testing.T) {
	cb, reg, _ := GenCaseBase(PaperScale())
	reqs, err := GenRequests(cb, reg, RequestStreamSpec{N: 200, RepeatFraction: 0.6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, r := range reqs {
		seen[retrieval.Signature(r)]++
	}
	repeats := len(reqs) - len(seen)
	if repeats < 60 {
		t.Errorf("repeat fraction too low: %d repeats of %d", repeats, len(reqs))
	}
	// Zero repeat fraction yields (almost surely) distinct requests.
	uniq, _ := GenRequests(cb, reg, RequestStreamSpec{N: 50, RepeatFraction: 0, Seed: 3})
	seen2 := map[string]bool{}
	for _, r := range uniq {
		seen2[retrieval.Signature(r)] = true
	}
	if len(seen2) < 45 {
		t.Errorf("unexpectedly many collisions without repeats: %d distinct", len(seen2))
	}
}

func TestGenRequestsRejectsBadSpec(t *testing.T) {
	cb, reg, _ := GenCaseBase(PaperScale())
	if _, err := GenRequests(cb, reg, RequestStreamSpec{N: 0}); err == nil {
		t.Error("empty stream must fail")
	}
}

func TestInfotainmentCaseBase(t *testing.T) {
	cb, reg, err := InfotainmentCaseBase()
	if err != nil {
		t.Fatal(err)
	}
	if cb.NumTypes() != 6 {
		t.Errorf("types = %d", cb.NumTypes())
	}
	if reg.Len() != 7 {
		t.Errorf("attributes = %d", reg.Len())
	}
	// The audio-eq subtree mirrors the paper's example: the DSP
	// variant must win the paper request shape.
	e := retrieval.NewEngine(cb, retrieval.Options{})
	req := casebase.NewRequest(TypeAudioEq,
		con(AttrBitwidth, 16), con(AttrOutputMode, 1), con(AttrSampleRate, 44),
	).EqualWeights()
	best, err := e.Retrieve(req)
	if err != nil {
		t.Fatal(err)
	}
	if best.Target != casebase.TargetDSP {
		t.Errorf("audio-eq best = %v, want DSP", best.Target)
	}
}

func TestAppsProfiles(t *testing.T) {
	cb, _, err := InfotainmentCaseBase()
	if err != nil {
		t.Fatal(err)
	}
	apps := Apps()
	if len(apps) != 4 {
		t.Fatalf("apps = %d, want the fig. 1 four", len(apps))
	}
	names := map[string]bool{}
	for _, a := range apps {
		names[a.Name] = true
		if a.Prio <= 0 {
			t.Errorf("%s has no priority", a.Name)
		}
		if len(a.Steps) == 0 {
			t.Errorf("%s has no steps", a.Name)
		}
		for _, s := range a.Steps {
			if err := s.Req.Validate(cb); err != nil {
				t.Errorf("%s request invalid: %v", a.Name, err)
			}
			if s.Hold == 0 {
				t.Errorf("%s step holds for zero time", a.Name)
			}
		}
	}
	for _, want := range []string{"mp3-player", "video-player", "automotive-ecu", "cruise-control"} {
		if !names[want] {
			t.Errorf("missing app %q", want)
		}
	}
	// The safety-critical app outranks infotainment.
	var ecu, mp3 int
	for _, a := range apps {
		switch a.Name {
		case "automotive-ecu":
			ecu = a.Prio
		case "mp3-player":
			mp3 = a.Prio
		}
	}
	if ecu <= mp3 {
		t.Error("ECU must outrank the MP3 player")
	}
}
