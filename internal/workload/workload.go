// Package workload generates case bases, request streams and application
// profiles for experiments at and beyond the paper's scale. The paper's
// capacity point (Table 3) is 15 function types × 10 implementations ×
// 10 attributes; the generators sweep around that point and synthesize
// the fig. 1 application mix (MP3 player, video, automotive ECU, cruise
// control) for end-to-end allocation runs.
package workload

import (
	"fmt"
	"math/rand"

	"qosalloc/internal/attr"
	"qosalloc/internal/casebase"
)

// CaseBaseSpec parameterizes a synthetic case base.
type CaseBaseSpec struct {
	Types        int
	ImplsPerType int
	AttrsPerImpl int
	// AttrUniverse is the number of distinct attribute types defined;
	// implementations draw AttrsPerImpl of them. Must be ≥
	// AttrsPerImpl.
	AttrUniverse int
	// ValueSpan bounds each attribute's design range (dmax ≤
	// ValueSpan). Zero means 200.
	ValueSpan int
	Seed      int64
	// Rand, when non-nil, supplies the random source directly and
	// takes precedence over Seed — callers composing several
	// generators (case base, stream, fault storm) thread one explicit
	// source through all of them so a whole run replays from a single
	// seed.
	Rand *rand.Rand
}

// PaperScale returns the Table 3 capacity point.
func PaperScale() CaseBaseSpec {
	return CaseBaseSpec{Types: 15, ImplsPerType: 10, AttrsPerImpl: 10, AttrUniverse: 10, Seed: 1}
}

// GenCaseBase synthesizes a validated case base. Implementations cycle
// through the FPGA/DSP/GPP targets with plausible footprints so the
// result also drives allocation experiments.
func GenCaseBase(spec CaseBaseSpec) (*casebase.CaseBase, *attr.Registry, error) {
	if spec.Types < 1 || spec.ImplsPerType < 1 || spec.AttrsPerImpl < 1 {
		return nil, nil, fmt.Errorf("workload: spec must be positive, got %+v", spec)
	}
	if spec.AttrUniverse < spec.AttrsPerImpl {
		spec.AttrUniverse = spec.AttrsPerImpl
	}
	span := spec.ValueSpan
	if span <= 0 {
		span = 200
	}
	r := spec.Rand
	if r == nil {
		r = rand.New(rand.NewSource(spec.Seed))
	}

	reg := attr.NewRegistry()
	for i := 1; i <= spec.AttrUniverse; i++ {
		lo := attr.Value(r.Intn(50))
		hi := lo + attr.Value(1+r.Intn(span))
		reg.MustDefine(attr.Def{
			ID: attr.ID(i), Name: fmt.Sprintf("attr%d", i),
			Kind: attr.Numeric, Lo: lo, Hi: hi,
		})
	}

	b := casebase.NewBuilder(reg)
	for ti := 1; ti <= spec.Types; ti++ {
		tid := casebase.TypeID(ti)
		b.AddType(tid, fmt.Sprintf("func%d", ti))
		for ii := 1; ii <= spec.ImplsPerType; ii++ {
			perm := r.Perm(spec.AttrUniverse)[:spec.AttrsPerImpl]
			ps := make([]attr.Pair, 0, spec.AttrsPerImpl)
			for _, ai := range perm {
				d, _ := reg.Lookup(attr.ID(ai + 1))
				v := d.Lo + attr.Value(r.Intn(int(d.Hi-d.Lo)+1))
				ps = append(ps, attr.Pair{ID: d.ID, Value: v})
			}
			target := casebase.Target(ii % 3)
			b.AddImpl(tid, casebase.Implementation{
				ID:     casebase.ImplID(ii),
				Name:   fmt.Sprintf("func%d-impl%d", ti, ii),
				Target: target,
				Attrs:  ps,
				Foot:   randomFootprint(r, target),
			})
		}
	}
	cb, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return cb, reg, nil
}

// randomFootprint draws a plausible resource footprint per target class.
func randomFootprint(r *rand.Rand, t casebase.Target) casebase.Footprint {
	switch t {
	case casebase.TargetFPGA:
		return casebase.Footprint{
			Slices:      200 + r.Intn(1200),
			BRAMs:       r.Intn(8),
			Multipliers: r.Intn(12),
			PowerMW:     150 + r.Intn(400),
			ConfigBytes: (32 + r.Intn(128)) * 1024,
		}
	case casebase.TargetDSP:
		return casebase.Footprint{
			CPULoad:     100 + r.Intn(500),
			MemBytes:    (4 + r.Intn(48)) * 1024,
			PowerMW:     80 + r.Intn(250),
			ConfigBytes: (4 + r.Intn(32)) * 1024,
		}
	default:
		return casebase.Footprint{
			CPULoad:     150 + r.Intn(700),
			MemBytes:    (4 + r.Intn(64)) * 1024,
			PowerMW:     50 + r.Intn(200),
			ConfigBytes: (1 + r.Intn(16)) * 1024,
		}
	}
}

// RequestStreamSpec parameterizes a request stream.
type RequestStreamSpec struct {
	N              int
	ConstraintsPer int
	// RepeatFraction is the probability that a request repeats an
	// earlier one verbatim — the bypass-token hit opportunity.
	RepeatFraction float64
	Seed           int64
	// Rand, when non-nil, takes precedence over Seed (see
	// CaseBaseSpec.Rand).
	Rand *rand.Rand
}

// GenRequests synthesizes a request stream over cb. Every request is
// valid (constraints reference defined attributes within bounds, equal
// weights).
func GenRequests(cb *casebase.CaseBase, reg *attr.Registry, spec RequestStreamSpec) ([]casebase.Request, error) {
	if spec.N < 1 {
		return nil, fmt.Errorf("workload: stream length must be positive")
	}
	if spec.ConstraintsPer < 1 {
		spec.ConstraintsPer = 3
	}
	r := spec.Rand
	if r == nil {
		r = rand.New(rand.NewSource(spec.Seed))
	}
	ids := reg.IDs()
	if spec.ConstraintsPer > len(ids) {
		spec.ConstraintsPer = len(ids)
	}
	types := cb.Types()
	out := make([]casebase.Request, 0, spec.N)
	for i := 0; i < spec.N; i++ {
		if len(out) > 0 && r.Float64() < spec.RepeatFraction {
			out = append(out, out[r.Intn(len(out))])
			continue
		}
		ft := types[r.Intn(len(types))]
		perm := r.Perm(len(ids))[:spec.ConstraintsPer]
		cs := make([]casebase.Constraint, 0, spec.ConstraintsPer)
		for _, pi := range perm {
			d, _ := reg.Lookup(ids[pi])
			v := d.Lo + attr.Value(r.Intn(int(d.Hi-d.Lo)+1))
			cs = append(cs, casebase.Constraint{ID: d.ID, Value: v})
		}
		req := casebase.NewRequest(ft.ID, cs...).EqualWeights()
		if err := req.Validate(cb); err != nil {
			return nil, fmt.Errorf("workload: generated invalid request: %w", err)
		}
		out = append(out, req)
	}
	return out, nil
}
