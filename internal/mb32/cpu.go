package mb32

import (
	"errors"
	"fmt"
)

// CostModel holds per-class cycle costs. Defaults follow the MicroBlaze
// three-stage pipeline on local memory (LMB): single-cycle ALU, two-cycle
// loads/stores, three-cycle multiplies and taken branches.
type CostModel struct {
	ALU         uint64
	Mul         uint64
	Shift       uint64 // barrel shifter, or base cost when serial
	ShiftPerBit uint64 // extra cycles per shifted bit (serial shifter)
	Load        uint64
	Store       uint64
	BranchTaken uint64
	BranchNot   uint64
}

// MicroBlazeCosts returns the cost model for a MicroBlaze with the
// optional barrel shifter enabled: single-cycle shifts of any distance.
func MicroBlazeCosts() CostModel {
	return CostModel{
		ALU: 1, Mul: 3, Shift: 1, Load: 2, Store: 2,
		BranchTaken: 3, BranchNot: 1,
	}
}

// MicroBlazeBaseCosts returns the 2004-era default core configuration:
// no barrel shifter, so multi-bit shifts decompose into single-bit steps
// — the configuration the paper's 66 MHz soft core most plausibly used.
func MicroBlazeBaseCosts() CostModel {
	c := MicroBlazeCosts()
	c.ShiftPerBit = 1
	return c
}

// Stats counts retired instructions per class.
type Stats struct {
	Retired  uint64
	ByClass  [ClassHalt + 1]uint64
	Branches uint64
	Taken    uint64
}

// CPU is the processor state.
type CPU struct {
	Regs  [32]int32
	PC    int
	Prog  []Instr
	Mem   []byte // byte-addressed local memory, little-endian
	Cost  CostModel
	Cyc   uint64
	Stats Stats
	halt  bool
}

// ErrMaxInstructions aborts runaway programs.
var ErrMaxInstructions = errors.New("mb32: instruction budget exhausted")

// New returns a CPU over the given program with memBytes of local
// memory, using the MicroBlaze cost model.
func New(prog []Instr, memBytes int) *CPU {
	return &CPU{Prog: prog, Mem: make([]byte, memBytes), Cost: MicroBlazeCosts()}
}

// Halted reports whether a HALT retired.
func (c *CPU) Halted() bool { return c.halt }

// LoadHalfwords copies 16-bit words into memory at the given byte
// address, little-endian — how BRAM-resident list images are made visible
// to the software retrieval routine.
func (c *CPU) LoadHalfwords(addr int, words []uint16) error {
	if addr < 0 || addr+2*len(words) > len(c.Mem) {
		return fmt.Errorf("mb32: image of %d halfwords at %#x exceeds memory", len(words), addr)
	}
	for i, w := range words {
		c.Mem[addr+2*i] = byte(w)
		c.Mem[addr+2*i+1] = byte(w >> 8)
	}
	return nil
}

func (c *CPU) loadU16(addr int32) (uint16, error) {
	if addr < 0 || int(addr)+1 >= len(c.Mem) || addr&1 != 0 {
		return 0, fmt.Errorf("mb32: misaligned or out-of-range halfword load at %#x", addr)
	}
	return uint16(c.Mem[addr]) | uint16(c.Mem[addr+1])<<8, nil
}

func (c *CPU) loadU32(addr int32) (uint32, error) {
	if addr < 0 || int(addr)+3 >= len(c.Mem) || addr&3 != 0 {
		return 0, fmt.Errorf("mb32: misaligned or out-of-range word load at %#x", addr)
	}
	return uint32(c.Mem[addr]) | uint32(c.Mem[addr+1])<<8 |
		uint32(c.Mem[addr+2])<<16 | uint32(c.Mem[addr+3])<<24, nil
}

func (c *CPU) storeU16(addr int32, v uint16) error {
	if addr < 0 || int(addr)+1 >= len(c.Mem) || addr&1 != 0 {
		return fmt.Errorf("mb32: misaligned or out-of-range halfword store at %#x", addr)
	}
	c.Mem[addr] = byte(v)
	c.Mem[addr+1] = byte(v >> 8)
	return nil
}

func (c *CPU) storeU32(addr int32, v uint32) error {
	if addr < 0 || int(addr)+3 >= len(c.Mem) || addr&3 != 0 {
		return fmt.Errorf("mb32: misaligned or out-of-range word store at %#x", addr)
	}
	c.Mem[addr] = byte(v)
	c.Mem[addr+1] = byte(v >> 8)
	c.Mem[addr+2] = byte(v >> 16)
	c.Mem[addr+3] = byte(v >> 24)
	return nil
}

// Step retires one instruction.
func (c *CPU) Step() error {
	if c.halt {
		return nil
	}
	if c.PC < 0 || c.PC >= len(c.Prog) {
		return fmt.Errorf("mb32: PC %d outside program (%d instructions)", c.PC, len(c.Prog))
	}
	in := c.Prog[c.PC]
	next := c.PC + 1
	cls := ClassOf(in.Op)
	cost := c.Cost.ALU

	switch cls {
	case ClassMul:
		cost = c.Cost.Mul
	case ClassShift:
		cost = c.Cost.Shift + c.Cost.ShiftPerBit*uint64(c.shiftAmount(in))
	case ClassLoad:
		cost = c.Cost.Load
	case ClassStore:
		cost = c.Cost.Store
	case ClassBranch:
		c.Stats.Branches++
	}

	ra, rb := c.Regs[in.Ra], c.Regs[in.Rb]
	var err error
	switch in.Op {
	case OpNop:
	case OpAdd:
		c.set(in.Rd, ra+rb)
	case OpSub:
		c.set(in.Rd, ra-rb)
	case OpAnd:
		c.set(in.Rd, ra&rb)
	case OpOr:
		c.set(in.Rd, ra|rb)
	case OpXor:
		c.set(in.Rd, ra^rb)
	case OpMul:
		c.set(in.Rd, int32(uint32(ra)*uint32(rb)))
	case OpSll:
		c.set(in.Rd, ra<<(uint32(rb)&31))
	case OpSrl:
		c.set(in.Rd, int32(uint32(ra)>>(uint32(rb)&31)))
	case OpSra:
		c.set(in.Rd, ra>>(uint32(rb)&31))
	case OpAddi:
		c.set(in.Rd, ra+in.Imm)
	case OpAndi:
		c.set(in.Rd, ra&in.Imm)
	case OpOri:
		c.set(in.Rd, ra|in.Imm)
	case OpXori:
		c.set(in.Rd, ra^in.Imm)
	case OpSlli:
		c.set(in.Rd, ra<<(uint32(in.Imm)&31))
	case OpSrli:
		c.set(in.Rd, int32(uint32(ra)>>(uint32(in.Imm)&31)))
	case OpSrai:
		c.set(in.Rd, ra>>(uint32(in.Imm)&31))
	case OpLhu:
		var v uint16
		v, err = c.loadU16(ra + in.Imm)
		c.set(in.Rd, int32(v))
	case OpLw:
		var v uint32
		v, err = c.loadU32(ra + in.Imm)
		c.set(in.Rd, int32(v))
	case OpSh:
		err = c.storeU16(ra+in.Imm, uint16(c.Regs[in.Rd]))
	case OpSw:
		err = c.storeU32(ra+in.Imm, uint32(c.Regs[in.Rd]))
	case OpBeqz:
		next, cost = c.branch(ra == 0, in.Imm, next)
	case OpBnez:
		next, cost = c.branch(ra != 0, in.Imm, next)
	case OpBltz:
		next, cost = c.branch(ra < 0, in.Imm, next)
	case OpBgez:
		next, cost = c.branch(ra >= 0, in.Imm, next)
	case OpBgtz:
		next, cost = c.branch(ra > 0, in.Imm, next)
	case OpBlez:
		next, cost = c.branch(ra <= 0, in.Imm, next)
	case OpBr:
		next, cost = c.branch(true, in.Imm, next)
	case OpCall:
		c.set(15, int32(next))
		next, cost = c.branch(true, in.Imm, next)
	case OpRet:
		next, cost = c.branch(true, c.Regs[15], next)
	case OpHalt:
		c.halt = true
	default:
		return fmt.Errorf("mb32: illegal opcode %v at PC %d", in.Op, c.PC)
	}
	if err != nil {
		return fmt.Errorf("mb32: at PC %d (%v): %w", c.PC, in, err)
	}

	c.PC = next
	c.Cyc += cost
	c.Stats.Retired++
	c.Stats.ByClass[cls]++
	return nil
}

// shiftAmount returns the effective shift distance of a shift
// instruction, for serial-shifter cycle costing.
func (c *CPU) shiftAmount(in Instr) uint32 {
	switch in.Op {
	case OpSlli, OpSrli, OpSrai:
		return uint32(in.Imm) & 31
	default:
		return uint32(c.Regs[in.Rb]) & 31
	}
}

// set writes a register; r0 stays hardwired to zero.
func (c *CPU) set(rd uint8, v int32) {
	if rd != 0 {
		c.Regs[rd] = v
	}
}

// branch resolves a transfer: returns the next PC and the cycle cost.
func (c *CPU) branch(taken bool, target int32, fallthru int) (int, uint64) {
	if taken {
		c.Stats.Taken++
		return int(target), c.Cost.BranchTaken
	}
	return fallthru, c.Cost.BranchNot
}

// Run retires instructions until HALT or the budget is exhausted, and
// returns the cycle count consumed.
func (c *CPU) Run(maxInstructions uint64) (uint64, error) {
	start := c.Cyc
	for n := uint64(0); !c.halt; n++ {
		if n >= maxInstructions {
			return c.Cyc - start, fmt.Errorf("%w (%d)", ErrMaxInstructions, maxInstructions)
		}
		if err := c.Step(); err != nil {
			return c.Cyc - start, err
		}
	}
	return c.Cyc - start, nil
}
