package mb32

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates assembler text into a program. Syntax, one
// instruction or label per line:
//
//	; comment            # comment
//	label:
//	add   r3, r4, r5     ; rd, ra, rb
//	addi  r3, r4, -12    ; rd, ra, imm (decimal or 0x hex)
//	lhu   r3, r4, 8      ; rd ← mem16[r4+8]
//	sh    r3, r4, 8      ; mem16[r4+8] ← r3
//	beqz  r3, loop       ; branch to label when r3 == 0
//	br    done
//	call  subroutine     ; link in r15
//	ret
//	halt
//
// Named constants may be defined with `.equ NAME value` and used in
// immediate positions. The assembler is two-pass: labels first, then
// encoding, so forward references work.
func Assemble(src string) ([]Instr, error) {
	type pending struct {
		line  int
		instr Instr
		label string // non-empty when Imm awaits a label address
	}

	labels := map[string]int{}
	consts := map[string]int32{}
	var items []pending

	// Pass 1: strip comments, record labels and constants, stage
	// instructions with unresolved label references.
	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			name := strings.TrimSpace(line[:i])
			if !isIdent(name) {
				return nil, fmt.Errorf("mb32: line %d: bad label %q", ln+1, name)
			}
			if _, dup := labels[name]; dup {
				return nil, fmt.Errorf("mb32: line %d: duplicate label %q", ln+1, name)
			}
			labels[name] = len(items)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, ".equ"); ok {
			f := strings.Fields(rest)
			if len(f) != 2 {
				return nil, fmt.Errorf("mb32: line %d: .equ wants NAME VALUE", ln+1)
			}
			v, err := parseImm(f[1], consts)
			if err != nil {
				return nil, fmt.Errorf("mb32: line %d: %w", ln+1, err)
			}
			consts[f[0]] = v
			continue
		}
		in, labelRef, err := parseInstr(line, consts)
		if err != nil {
			return nil, fmt.Errorf("mb32: line %d: %w", ln+1, err)
		}
		items = append(items, pending{line: ln + 1, instr: in, label: labelRef})
	}

	// Pass 2: resolve labels.
	prog := make([]Instr, len(items))
	for i, p := range items {
		if p.label != "" {
			t, ok := labels[p.label]
			if !ok {
				return nil, fmt.Errorf("mb32: line %d: undefined label %q", p.line, p.label)
			}
			p.instr.Imm = int32(t)
		}
		prog[i] = p.instr
	}
	return prog, nil
}

// MustAssemble is Assemble panicking on error, for programs whose
// correctness is established by tests.
func MustAssemble(src string) []Instr {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func parseReg(s string) (uint8, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 31 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

func parseImm(s string, consts map[string]int32) (int32, error) {
	s = strings.TrimSpace(s)
	if v, ok := consts[s]; ok {
		return v, nil
	}
	// NAME+off / NAME-off forms.
	for _, sep := range []string{"+", "-"} {
		if i := strings.LastIndex(s[1:], sep); i >= 0 {
			base, offs := s[:i+1], s[i+1:]
			if v, ok := consts[strings.TrimSpace(base)]; ok {
				o, err := strconv.ParseInt(strings.TrimSpace(offs), 0, 32)
				if err != nil {
					return 0, fmt.Errorf("bad immediate %q", s)
				}
				return v + int32(o), nil
			}
		}
	}
	v, err := strconv.ParseInt(s, 0, 32)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return int32(v), nil
}

var opByName = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, name := range opNames {
		m[name] = op
	}
	return m
}()

func parseInstr(line string, consts map[string]int32) (Instr, string, error) {
	mnemonic, rest, _ := strings.Cut(line, " ")
	op, ok := opByName[strings.ToLower(mnemonic)]
	if !ok {
		return Instr{}, "", fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	args := splitArgs(rest)
	in := Instr{Op: op}

	switch op {
	case OpNop, OpHalt, OpRet:
		if len(args) != 0 {
			return in, "", fmt.Errorf("%s takes no operands", op)
		}
		return in, "", nil

	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpMul, OpSll, OpSrl, OpSra:
		if len(args) != 3 {
			return in, "", fmt.Errorf("%s wants rd, ra, rb", op)
		}
		var err error
		if in.Rd, err = parseReg(args[0]); err != nil {
			return in, "", err
		}
		if in.Ra, err = parseReg(args[1]); err != nil {
			return in, "", err
		}
		if in.Rb, err = parseReg(args[2]); err != nil {
			return in, "", err
		}
		return in, "", nil

	case OpAddi, OpAndi, OpOri, OpXori, OpSlli, OpSrli, OpSrai,
		OpLhu, OpLw, OpSh, OpSw:
		if len(args) != 3 {
			return in, "", fmt.Errorf("%s wants rd, ra, imm", op)
		}
		var err error
		if in.Rd, err = parseReg(args[0]); err != nil {
			return in, "", err
		}
		if in.Ra, err = parseReg(args[1]); err != nil {
			return in, "", err
		}
		if in.Imm, err = parseImm(args[2], consts); err != nil {
			return in, "", err
		}
		return in, "", nil

	case OpBeqz, OpBnez, OpBltz, OpBgez, OpBgtz, OpBlez:
		if len(args) != 2 {
			return in, "", fmt.Errorf("%s wants ra, label", op)
		}
		var err error
		if in.Ra, err = parseReg(args[0]); err != nil {
			return in, "", err
		}
		return in, strings.TrimSpace(args[1]), nil

	case OpBr, OpCall:
		if len(args) != 1 {
			return in, "", fmt.Errorf("%s wants a label", op)
		}
		return in, strings.TrimSpace(args[0]), nil
	}
	return in, "", fmt.Errorf("unhandled opcode %v", op)
}

func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
