package mb32

import (
	"math/rand"
	"testing"
)

// TestRandomProgramsNeverPanic is failure injection at the instruction
// level: arbitrary 32-bit words decoded and executed must either retire,
// fault with an error, or exhaust the budget — never panic or corrupt
// the simulator.
func TestRandomProgramsNeverPanic(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 400; trial++ {
		words := make([]byte, 4*(1+r.Intn(64)))
		r.Read(words)
		prog, err := DecodeProgram(words)
		if err != nil {
			t.Fatalf("aligned stream must decode: %v", err)
		}
		c := New(prog, 256)
		_, _ = c.Run(5_000) // any outcome but a panic is acceptable
	}
}

// TestPCOutOfRangeFaults: falling off the end of the program is an
// error, not a crash.
func TestPCOutOfRangeFaults(t *testing.T) {
	c := New(MustAssemble("nop"), 64)
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if err := c.Step(); err == nil {
		t.Error("PC past the program must fault")
	}
}

// TestStepAfterHaltIsIdempotent: stepping a halted CPU does nothing.
func TestStepAfterHaltIsIdempotent(t *testing.T) {
	c := New(MustAssemble("halt"), 64)
	if _, err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	cyc := c.Cyc
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if c.Cyc != cyc {
		t.Error("halted CPU must not consume cycles")
	}
}

// TestWildJumpFaults: a branch to a negative or huge target faults on
// the next step.
func TestWildJumpFaults(t *testing.T) {
	prog := []Instr{{Op: OpBr, Imm: -5}}
	c := New(prog, 64)
	if err := c.Step(); err != nil {
		t.Fatal(err) // the branch itself retires
	}
	if err := c.Step(); err == nil {
		t.Error("negative PC must fault")
	}
}
