package mb32

import (
	"strings"
	"testing"
)

func TestDisassembleRoundText(t *testing.T) {
	prog := MustAssemble(`
		addi r1, r0, 5
		lhu  r2, r1, 8
		beqz r2, end
		add  r3, r2, r1
	end:	halt
	`)
	b, err := EncodeProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Disassemble(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"addi r1, r0, 5", "lhu r2, r1, 8", "beqz r2, 4", "halt"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
	if _, err := Disassemble([]byte{1, 2}); err == nil {
		t.Error("unaligned stream must fail")
	}
}

func TestListingLabels(t *testing.T) {
	prog := MustAssemble(`
		addi r1, r0, 3
	loop:	addi r1, r1, -1
		bgtz r1, loop
		halt
	`)
	out := Listing(prog)
	if !strings.Contains(out, "L1:") {
		t.Errorf("listing missing label:\n%s", out)
	}
	if !strings.Contains(out, "bgtz r1, L1") {
		t.Errorf("branch not rewritten to label:\n%s", out)
	}
}

func TestProfile(t *testing.T) {
	c := New(MustAssemble(`
		addi r1, r0, 3
	loop:	addi r1, r1, -1
		sh   r1, r0, 8
		lhu  r2, r0, 8
		bgtz r1, loop
		halt
	`), 64)
	if _, err := c.Run(1000); err != nil {
		t.Fatal(err)
	}
	p := c.Profile()
	for _, want := range []string{"retired", "CPI", "alu", "load", "store", "branch", "taken branches"} {
		if !strings.Contains(p, want) {
			t.Errorf("profile missing %q:\n%s", want, p)
		}
	}
}

func TestListingOfRetrievalKernelIsStable(t *testing.T) {
	// The swret kernel must produce a listing without panicking and
	// with every branch resolvable; exercised here via a local copy of
	// the grammar shapes it uses.
	prog := MustAssemble(`
	start:	lhu r3, r21, 0
	scan:	lhu r6, r5, 0
		beqz r6, fail
		sub r22, r6, r3
		beqz r22, found
		addi r5, r5, 4
		br scan
	found:	halt
	fail:	halt
	`)
	out := Listing(prog)
	if strings.Count(out, "L") < 3 {
		t.Errorf("expected several labels:\n%s", out)
	}
}
