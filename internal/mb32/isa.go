// Package mb32 implements a MicroBlaze-class 32-bit soft-core processor
// model: instruction set, binary encoding, a two-pass assembler and a
// cycle-cost simulator. It is the substrate for the paper's software
// baseline — §4.2 maps the retrieval algorithm "into a C program running
// on a Xilinx MicroBlaze soft-processor at 66 MHz" and compares cycle
// counts against the hardware unit. The cost table follows the MicroBlaze
// three-stage pipeline: single-cycle ALU operations, two-cycle local
// -memory loads/stores, three-cycle taken branches and multiplies (the
// hardware multiplier option maps to the same MULT18X18 blocks the
// retrieval unit uses), and an optional barrel shifter.
package mb32

import "fmt"

// Op is an instruction opcode.
type Op uint8

// The instruction set: a load/store RISC subset sufficient for systems
// code over 16-bit data structures.
const (
	OpNop Op = iota
	// Register-register ALU: rd ← ra op rb.
	OpAdd
	OpSub // rd ← ra - rb
	OpAnd
	OpOr
	OpXor
	OpMul // hardware multiplier, low 32 bits
	OpSll // rd ← ra << (rb&31), barrel shifter
	OpSrl // rd ← ra >> (rb&31) logical
	OpSra // rd ← ra >> (rb&31) arithmetic
	// Register-immediate ALU: rd ← ra op imm (imm is sign-extended
	// 16-bit except the shifts, which take a 5-bit amount).
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpSlli
	OpSrli
	OpSrai
	// Memory: halfword (zero-extended) and word forms; the effective
	// address is ra + imm (byte addressed).
	OpLhu
	OpLw
	OpSh
	OpSw
	// Control transfer: conditional branches compare ra against zero,
	// as the MicroBlaze beqi/bnei/... family does. The target is an
	// absolute instruction index resolved from a label.
	OpBeqz
	OpBnez
	OpBltz
	OpBgez
	OpBgtz
	OpBlez
	OpBr   // unconditional
	OpCall // link into r15, branch
	OpRet  // jump to r15
	OpHalt // stop simulation (models an exit syscall / idle loop)
)

var opNames = map[Op]string{
	OpNop: "nop", OpAdd: "add", OpSub: "sub", OpAnd: "and", OpOr: "or",
	OpXor: "xor", OpMul: "mul", OpSll: "sll", OpSrl: "srl", OpSra: "sra",
	OpAddi: "addi", OpAndi: "andi", OpOri: "ori", OpXori: "xori",
	OpSlli: "slli", OpSrli: "srli", OpSrai: "srai",
	OpLhu: "lhu", OpLw: "lw", OpSh: "sh", OpSw: "sw",
	OpBeqz: "beqz", OpBnez: "bnez", OpBltz: "bltz", OpBgez: "bgez",
	OpBgtz: "bgtz", OpBlez: "blez", OpBr: "br", OpCall: "call",
	OpRet: "ret", OpHalt: "halt",
}

// String returns the mnemonic.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// Class groups opcodes for cycle costing and statistics.
type Class uint8

// Instruction classes.
const (
	ClassALU Class = iota
	ClassMul
	ClassShift
	ClassLoad
	ClassStore
	ClassBranch
	ClassHalt
)

// ClassOf returns the cost class of an opcode.
func ClassOf(o Op) Class {
	switch o {
	case OpMul:
		return ClassMul
	case OpSll, OpSrl, OpSra, OpSlli, OpSrli, OpSrai:
		return ClassShift
	case OpLhu, OpLw:
		return ClassLoad
	case OpSh, OpSw:
		return ClassStore
	case OpBeqz, OpBnez, OpBltz, OpBgez, OpBgtz, OpBlez, OpBr, OpCall, OpRet:
		return ClassBranch
	case OpHalt:
		return ClassHalt
	default:
		return ClassALU
	}
}

// Instr is one decoded instruction. Rd/Ra/Rb are register numbers; Imm
// carries immediates and branch targets (instruction index).
type Instr struct {
	Op  Op
	Rd  uint8
	Ra  uint8
	Rb  uint8
	Imm int32
}

// String renders the instruction in assembler syntax.
func (i Instr) String() string {
	switch i.Op {
	case OpNop, OpHalt, OpRet:
		return i.Op.String()
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpMul, OpSll, OpSrl, OpSra:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Rd, i.Ra, i.Rb)
	case OpAddi, OpAndi, OpOri, OpXori, OpSlli, OpSrli, OpSrai:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rd, i.Ra, i.Imm)
	case OpLhu, OpLw:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rd, i.Ra, i.Imm)
	case OpSh, OpSw:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rd, i.Ra, i.Imm)
	case OpBeqz, OpBnez, OpBltz, OpBgez, OpBgtz, OpBlez:
		return fmt.Sprintf("%s r%d, %d", i.Op, i.Ra, i.Imm)
	case OpBr, OpCall:
		return fmt.Sprintf("%s %d", i.Op, i.Imm)
	default:
		return fmt.Sprintf("%s ?", i.Op)
	}
}
