package mb32

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func run(t *testing.T, src string, mem int) *CPU {
	t.Helper()
	prog, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c := New(prog, mem)
	if _, err := c.Run(1_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return c
}

func TestALUBasics(t *testing.T) {
	c := run(t, `
		addi r1, r0, 40
		addi r2, r0, 2
		add  r3, r1, r2
		sub  r4, r1, r2
		mul  r5, r1, r2
		and  r6, r1, r2
		or   r7, r1, r2
		xor  r8, r1, r2
		halt
	`, 64)
	want := map[int]int32{3: 42, 4: 38, 5: 80, 6: 0, 7: 42, 8: 42}
	for r, v := range want {
		if c.Regs[r] != v {
			t.Errorf("r%d = %d, want %d", r, c.Regs[r], v)
		}
	}
}

func TestR0Hardwired(t *testing.T) {
	c := run(t, `
		addi r0, r0, 99
		addi r1, r0, 7
		halt
	`, 64)
	if c.Regs[0] != 0 {
		t.Error("r0 must stay zero")
	}
	if c.Regs[1] != 7 {
		t.Error("r1 should read r0 as 0")
	}
}

func TestShifts(t *testing.T) {
	c := run(t, `
		addi r1, r0, -16
		srai r2, r1, 2
		srli r3, r1, 28
		slli r4, r1, 1
		addi r5, r0, 3
		sll  r6, r5, r5
		srl  r7, r6, r5
		sra  r8, r1, r5
		halt
	`, 64)
	if c.Regs[2] != -4 {
		t.Errorf("srai = %d", c.Regs[2])
	}
	if c.Regs[3] != 15 {
		t.Errorf("srli = %d", c.Regs[3])
	}
	if c.Regs[4] != -32 {
		t.Errorf("slli = %d", c.Regs[4])
	}
	if c.Regs[6] != 24 || c.Regs[7] != 3 || c.Regs[8] != -2 {
		t.Errorf("reg shifts = %d, %d, %d", c.Regs[6], c.Regs[7], c.Regs[8])
	}
}

func TestMemory(t *testing.T) {
	c := run(t, `
		addi r1, r0, 0x1234
		sh   r1, r0, 16
		lhu  r2, r0, 16
		addi r3, r0, -1
		sw   r3, r0, 32
		lw   r4, r0, 32
		halt
	`, 64)
	if c.Regs[2] != 0x1234 {
		t.Errorf("lhu = %#x", c.Regs[2])
	}
	if c.Regs[4] != -1 {
		t.Errorf("lw = %d", c.Regs[4])
	}
}

func TestLhuZeroExtends(t *testing.T) {
	c := run(t, `
		addi r1, r0, -2      ; 0xFFFFFFFE
		sh   r1, r0, 8       ; stores 0xFFFE
		lhu  r2, r0, 8
		halt
	`, 64)
	if c.Regs[2] != 0xFFFE {
		t.Errorf("lhu must zero-extend: %#x", c.Regs[2])
	}
}

func TestMemoryFaults(t *testing.T) {
	for _, src := range []string{
		"lhu r1, r0, 1\nhalt",   // misaligned halfword
		"lw  r1, r0, 2\nhalt",   // misaligned word
		"lhu r1, r0, 512\nhalt", // out of range
		"sh  r1, r0, -2\nhalt",  // negative
		"sw  r1, r0, 511\nhalt", // word straddles end
	} {
		prog := MustAssemble(src)
		c := New(prog, 512)
		if _, err := c.Run(10); err == nil {
			t.Errorf("no fault for %q", src)
		}
	}
}

func TestBranchesAndLoop(t *testing.T) {
	// Sum 1..10 with a counted loop.
	c := run(t, `
		addi r1, r0, 10
		addi r2, r0, 0
	loop:
		add  r2, r2, r1
		addi r1, r1, -1
		bgtz r1, loop
		halt
	`, 64)
	if c.Regs[2] != 55 {
		t.Errorf("sum = %d, want 55", c.Regs[2])
	}
	if c.Stats.Taken != 9 {
		t.Errorf("taken branches = %d, want 9", c.Stats.Taken)
	}
}

func TestAllBranchConditions(t *testing.T) {
	c := run(t, `
		addi r1, r0, -5
		addi r10, r0, 0
		bltz r1, a
		halt
	a:	addi r10, r10, 1
		bgez r1, bad
		blez r1, b
		halt
	b:	addi r10, r10, 1
		addi r1, r0, 5
		bgtz r1, c
		halt
	c:	addi r10, r10, 1
		bnez r1, d
		halt
	d:	addi r10, r10, 1
		addi r1, r0, 0
		beqz r1, e
		halt
	e:	addi r10, r10, 1
		br   out
	bad:	addi r10, r0, -1
		halt
	out:	halt
	`, 64)
	if c.Regs[10] != 5 {
		t.Errorf("branch chain executed %d legs, want 5", c.Regs[10])
	}
}

func TestCallRet(t *testing.T) {
	c := run(t, `
		addi r1, r0, 1
		call sub
		addi r1, r1, 100
		halt
	sub:	addi r1, r1, 10
		ret
	`, 64)
	if c.Regs[1] != 111 {
		t.Errorf("r1 = %d, want 111", c.Regs[1])
	}
}

func TestCycleCosts(t *testing.T) {
	// 2×ALU(1) + load(2) + store(2) + taken branch(3) + halt(1).
	c := run(t, `
		addi r1, r0, 4
		sh   r1, r0, 8
		lhu  r2, r0, 8
		addi r3, r0, 0
		br   end
	end:	halt
	`, 64)
	want := uint64(1 + 2 + 2 + 1 + 3 + 1)
	if c.Cyc != want {
		t.Errorf("cycles = %d, want %d", c.Cyc, want)
	}
	if c.Stats.Retired != 6 {
		t.Errorf("retired = %d", c.Stats.Retired)
	}
	if c.Stats.ByClass[ClassLoad] != 1 || c.Stats.ByClass[ClassStore] != 1 {
		t.Errorf("class stats = %+v", c.Stats.ByClass)
	}
}

func TestMulCost(t *testing.T) {
	c := run(t, `
		addi r1, r0, 3
		mul  r2, r1, r1
		halt
	`, 64)
	if c.Cyc != 1+3+1 {
		t.Errorf("cycles = %d", c.Cyc)
	}
}

func TestRunBudget(t *testing.T) {
	prog := MustAssemble(`
	loop:	br loop
	`)
	c := New(prog, 64)
	_, err := c.Run(100)
	if !errors.Is(err, ErrMaxInstructions) {
		t.Fatalf("want ErrMaxInstructions, got %v", err)
	}
}

func TestAssemblerErrors(t *testing.T) {
	bad := []string{
		"frobnicate r1, r2",      // unknown mnemonic
		"add r1, r2",             // wrong arity
		"addi r99, r0, 1",        // bad register
		"beqz r1, nowhere\nhalt", // undefined label
		"x: halt\nx: halt",       // duplicate label
		"addi r1, r0, bogus",     // bad immediate
		".equ\nhalt",             // malformed .equ
		"1bad: halt",             // bad label name
		"halt extra",             // operands on halt
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestEquConstants(t *testing.T) {
	c := run(t, `
		.equ BASE 0x20
		.equ COUNT 3
		addi r1, r0, BASE
		addi r2, r0, BASE+4
		addi r3, r0, COUNT
		lhu  r4, r1, BASE-24
		halt
	`, 128)
	if c.Regs[1] != 0x20 || c.Regs[2] != 0x24 || c.Regs[3] != 3 {
		t.Errorf("consts = %d, %d, %d", c.Regs[1], c.Regs[2], c.Regs[3])
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	prog := MustAssemble(`
		addi r1, r0, -42
		add  r2, r1, r1
		lhu  r3, r2, 16
		beqz r3, end
		mul  r4, r3, r1
	end:	halt
	`)
	b, err := EncodeProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 4*len(prog) {
		t.Fatalf("code bytes = %d", len(b))
	}
	back, err := DecodeProgram(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range prog {
		if prog[i] != back[i] {
			t.Errorf("instr %d: %v != %v", i, prog[i], back[i])
		}
	}
	if _, err := DecodeProgram([]byte{1, 2, 3}); err == nil {
		t.Error("unaligned program must fail")
	}
}

func TestEncodeRejectsBadInstr(t *testing.T) {
	if _, err := Encode(Instr{Op: OpAddi, Imm: 1 << 20}); err == nil {
		t.Error("oversized immediate must fail")
	}
	if _, err := Encode(Instr{Op: OpAdd, Rd: 77}); err == nil {
		t.Error("bad register must fail")
	}
}

// Property: Encode∘Decode is the identity on valid instructions.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(op uint8, rd, ra, rb uint8, imm int16) bool {
		o := Op(op % uint8(OpHalt+1))
		in := Instr{Op: o, Rd: rd % 32, Ra: ra % 32}
		if usesRb(o) {
			in.Rb = rb % 32
		} else {
			in.Imm = int32(imm)
		}
		w, err := Encode(in)
		if err != nil {
			return false
		}
		return Decode(w) == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInstrString(t *testing.T) {
	prog := MustAssemble(`
		add r1, r2, r3
		addi r1, r2, 5
		lhu r1, r2, 4
		sh r1, r2, 4
		beqz r1, l
	l:	br l
		call l
		ret
		nop
		halt
	`)
	for _, in := range prog {
		if s := in.String(); s == "" || strings.Contains(s, "?") {
			t.Errorf("bad render for %v: %q", in.Op, s)
		}
	}
}

func TestLoadHalfwords(t *testing.T) {
	c := New(nil, 64)
	if err := c.LoadHalfwords(4, []uint16{0xBEEF, 0x1234}); err != nil {
		t.Fatal(err)
	}
	v, err := c.loadU16(4)
	if err != nil || v != 0xBEEF {
		t.Errorf("word 0 = %#x, %v", v, err)
	}
	v, _ = c.loadU16(6)
	if v != 0x1234 {
		t.Errorf("word 1 = %#x", v)
	}
	if err := c.LoadHalfwords(62, []uint16{1, 2}); err == nil {
		t.Error("overflowing image must fail")
	}
}
