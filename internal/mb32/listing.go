package mb32

import (
	"fmt"
	"sort"
	"strings"
)

// Disassemble renders a binary instruction stream back to assembler
// text, one instruction per line with its index. It is the inverse of
// EncodeProgram up to formatting, and a debugging aid for programs
// loaded from images.
func Disassemble(b []byte) (string, error) {
	prog, err := DecodeProgram(b)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for i, in := range prog {
		fmt.Fprintf(&sb, "%4d: %s\n", i, in)
	}
	return sb.String(), nil
}

// Listing renders a program with branch targets annotated as synthetic
// labels (L<index>:), the human-readable form of a routine like the
// swret retrieval kernel.
func Listing(prog []Instr) string {
	// Collect branch targets.
	targets := map[int]bool{}
	for _, in := range prog {
		if ClassOf(in.Op) == ClassBranch && in.Op != OpRet {
			targets[int(in.Imm)] = true
		}
	}
	labels := make([]int, 0, len(targets))
	for t := range targets {
		labels = append(labels, t)
	}
	sort.Ints(labels)

	var sb strings.Builder
	for i, in := range prog {
		if targets[i] {
			fmt.Fprintf(&sb, "L%d:\n", i)
		}
		text := in.String()
		// Rewrite numeric branch targets as labels.
		if ClassOf(in.Op) == ClassBranch && in.Op != OpRet {
			if idx := strings.LastIndexByte(text, ' '); idx >= 0 {
				text = fmt.Sprintf("%s L%d", text[:idx], in.Imm)
			}
		}
		fmt.Fprintf(&sb, "\t%s\n", text)
	}
	return sb.String()
}

// Profile summarizes a CPU's retired-instruction mix after a run, for
// performance analysis of routines like the retrieval kernel.
func (c *CPU) Profile() string {
	names := [...]string{"alu", "mul", "shift", "load", "store", "branch", "halt"}
	var sb strings.Builder
	fmt.Fprintf(&sb, "retired %d instructions in %d cycles (CPI %.2f)\n",
		c.Stats.Retired, c.Cyc, float64(c.Cyc)/float64(max64(c.Stats.Retired, 1)))
	for cls, n := range c.Stats.ByClass {
		if n == 0 {
			continue
		}
		fmt.Fprintf(&sb, "  %-7s %6d (%4.1f%%)\n", names[cls], n,
			100*float64(n)/float64(c.Stats.Retired))
	}
	if c.Stats.Branches > 0 {
		fmt.Fprintf(&sb, "  taken branches: %d of %d (%.1f%%)\n",
			c.Stats.Taken, c.Stats.Branches,
			100*float64(c.Stats.Taken)/float64(c.Stats.Branches))
	}
	return sb.String()
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
