package mb32

import (
	"encoding/binary"
	"fmt"
)

// Binary instruction format, 32 bits:
//
//	[31:26] opcode   (6 bits)
//	[25:21] rd       (5 bits)
//	[20:16] ra       (5 bits)
//	[15:11] rb       (5 bits)  — register forms
//	[15:0]  imm      (16 bits, sign-extended) — immediate forms
//
// Branch targets are instruction indices and must fit the signed 16-bit
// immediate, bounding programs at 32768 instructions — far beyond the
// retrieval routine's needs (§4.2 reports 1984 bytes ≈ 500 instructions
// for the C version).

// Encode packs an instruction into its 32-bit word.
func Encode(i Instr) (uint32, error) {
	if i.Rd > 31 || i.Ra > 31 || i.Rb > 31 {
		return 0, fmt.Errorf("mb32: register out of range in %v", i)
	}
	w := uint32(i.Op)<<26 | uint32(i.Rd)<<21 | uint32(i.Ra)<<16
	if usesRb(i.Op) {
		w |= uint32(i.Rb) << 11
		return w, nil
	}
	if i.Imm < -32768 || i.Imm > 32767 {
		return 0, fmt.Errorf("mb32: immediate %d out of signed 16-bit range in %v", i.Imm, i)
	}
	w |= uint32(uint16(i.Imm))
	return w, nil
}

// Decode unpacks a 32-bit word.
func Decode(w uint32) Instr {
	i := Instr{
		Op: Op(w >> 26),
		Rd: uint8(w >> 21 & 31),
		Ra: uint8(w >> 16 & 31),
	}
	if usesRb(i.Op) {
		i.Rb = uint8(w >> 11 & 31)
		return i
	}
	i.Imm = int32(int16(uint16(w)))
	return i
}

func usesRb(o Op) bool {
	switch o {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpMul, OpSll, OpSrl, OpSra:
		return true
	}
	return false
}

// EncodeProgram serializes a program to little-endian bytes, four per
// instruction — the "opcode bytes" figure of §4.2.
func EncodeProgram(prog []Instr) ([]byte, error) {
	out := make([]byte, 4*len(prog))
	for n, i := range prog {
		w, err := Encode(i)
		if err != nil {
			return nil, fmt.Errorf("mb32: instruction %d: %w", n, err)
		}
		binary.LittleEndian.PutUint32(out[4*n:], w)
	}
	return out, nil
}

// DecodeProgram parses a little-endian instruction stream.
func DecodeProgram(b []byte) ([]Instr, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("mb32: program length %d not word-aligned", len(b))
	}
	prog := make([]Instr, len(b)/4)
	for n := range prog {
		prog[n] = Decode(binary.LittleEndian.Uint32(b[4*n:]))
	}
	return prog, nil
}
