// Package fleet scales the paper's single-platform allocation manager
// to N simulated nodes under multi-tenant QoS-class budgets. It is the
// first consumer of the policy/mechanism split (DESIGN.md §13) that
// composes the layers differently than alloc.Manager does: one shared
// retrieval engine scores candidates for the whole fleet, the pure
// policy package ranks nodes and picks victims, and each node's
// alloc.Mechanism executes placements against that node's devices and
// run-time system.
//
// Tenants are bound to QoS classes whose integer slice/BRAM/
// reconfiguration-bandwidth budgets (admit.Ledger) are enforced at
// admission: an over-budget tenant is thrown back with a typed
// *admit.ErrBudgetExceeded, never queued on its neighbors. Fault
// recovery deliberately bypasses admission — a stranded task already
// owns its capacity envelope — which is what keeps a noisy neighbor
// from starving a degraded tenant's recovery (the fleetcheck
// scenario).
//
// Everything runs on sim time with explicit seeds; the journal of
// placement events hashes to the same value on every run at any node
// count, the property the replay test pins.
package fleet

import (
	"fmt"
	"hash/fnv"

	"qosalloc/internal/admit"
	"qosalloc/internal/alloc"
	"qosalloc/internal/alloc/policy"
	"qosalloc/internal/attr"
	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
	"qosalloc/internal/fault"
	"qosalloc/internal/obs"
	"qosalloc/internal/retrieval"
	"qosalloc/internal/rtsys"
)

// Options tune fleet-wide allocation policy; the same knobs as the
// single-node manager where they overlap.
type Options struct {
	// Threshold rejects retrieval results below this global similarity.
	Threshold float64
	// NBest bounds how many candidates are checked per request. Zero
	// means 3.
	NBest int
	// PowerWeight trades QoS similarity against power when ranking
	// candidates (zero keeps the paper's pure-similarity ranking).
	PowerWeight float64
}

// Placement reports a successful fleet allocation.
type Placement struct {
	Node       string
	Task       rtsys.TaskID
	Tenant     string
	Impl       casebase.ImplID
	Target     casebase.Target
	Device     device.ID
	Similarity float64
	ReadyAt    device.Micros
}

// Recovery is the outcome of fleet degrade-and-retry for one stranded
// task: re-placed on its own node, migrated to another, or rejected.
type Recovery struct {
	Node   string // node the fault stranded the task on
	Task   rtsys.TaskID
	Tenant string
	// Placement is set when the task came back (same node or another);
	// nil means the task was rejected.
	Placement *Placement
	Degraded  bool
	Migrated  bool
}

// Stats counts fleet activity.
type Stats struct {
	Requests       int
	Placed         int
	BudgetRejected int // typed *admit.ErrBudgetExceeded rejections
	Infeasible     int

	Recovered     int // stranded tasks re-placed (either node)
	Migrated      int // …of which on a different node
	Degraded      int // …of which on a worse-matching variant
	FaultRejected int
	Rebalanced    int // waiting tasks re-placed by Rebalance
}

// taskRec is the fleet's per-task bookkeeping: who owns it, what it
// asked for, and what it holds — the inputs to recovery and release.
type taskRec struct {
	tenant string
	app    string
	req    casebase.Request
	impl   casebase.ImplID
	sim    float64
	foot   casebase.Footprint
	prio   int
}

// Node is one simulated platform: a device set with its own
// configuration repository, run-time system, mechanism, and
// (optionally) a scoped fault injector.
type Node struct {
	name  string
	sys   *rtsys.System
	mech  *alloc.Mechanism
	inj   *fault.Injector
	tasks map[rtsys.TaskID]*taskRec
}

// Name returns the node name.
func (n *Node) Name() string { return n.name }

// System returns the node's run-time system.
func (n *Node) System() *rtsys.System { return n.sys }

// Mechanism returns the node's execution layer.
func (n *Node) Mechanism() *alloc.Mechanism { return n.mech }

// Injector returns the node's fault injector, nil when none was wired.
func (n *Node) Injector() *fault.Injector { return n.inj }

// Fleet allocates QoS-constrained functions across nodes for tenants.
// Not safe for concurrent use: like the run-time systems it drives, it
// is single-threaded sim-time machinery; a serving layer must
// serialize into it (as serve does for the single-node manager).
type Fleet struct {
	cb *casebase.CaseBase
	// resolve is a system-less mechanism used only for implementation
	// records (ImplOf/PowerMW never touch a run-time system).
	resolve *alloc.Mechanism
	engine  *retrieval.Engine
	// locEngine keeps per-attribute breakdowns for degradation
	// accounting, exactly like the single-node manager.
	locEngine *retrieval.Engine
	nodes     []*Node
	byName    map[string]*Node
	ledger    *admit.Ledger
	opt       Options
	now       device.Micros
	met       *metrics
	stats     Stats
	journal   []string
}

// New builds an empty fleet over one shared case base; add platforms
// with AddNode.
func New(cb *casebase.CaseBase, opt Options) *Fleet {
	if opt.NBest <= 0 {
		opt.NBest = 3
	}
	return &Fleet{
		cb:        cb,
		resolve:   alloc.NewMechanism(cb, nil),
		engine:    retrieval.NewEngine(cb, retrieval.Options{Threshold: opt.Threshold}),
		locEngine: retrieval.NewEngine(cb, retrieval.Options{KeepLocals: true}),
		byName:    make(map[string]*Node),
		ledger:    admit.NewLedger(),
		opt:       opt,
		met:       newMetrics(nil),
	}
}

// Instrument registers the fleet's metric set on reg; per-node and
// per-tenant series materialize lazily as they are first touched.
func (f *Fleet) Instrument(reg *obs.Registry) { f.met = newMetrics(reg) }

// AddNode builds a node named name over devs: a fresh configuration
// repository populated from the shared case base, a run-time system,
// and a mechanism. Nodes keep insertion order everywhere the fleet
// iterates, so construction order is part of the replay contract.
func (f *Fleet) AddNode(name string, repoBandwidth int, devs ...device.Device) (*Node, error) {
	if name == "" {
		return nil, fmt.Errorf("fleet: node needs a name")
	}
	if _, dup := f.byName[name]; dup {
		return nil, fmt.Errorf("fleet: duplicate node %q", name)
	}
	repo := device.NewRepository(repoBandwidth)
	if err := repo.PopulateFromCaseBase(f.cb); err != nil {
		return nil, fmt.Errorf("fleet: node %q repository: %w", name, err)
	}
	sys := rtsys.NewSystem(repo, devs...)
	n := &Node{
		name:  name,
		sys:   sys,
		mech:  alloc.NewMechanism(f.cb, sys),
		tasks: make(map[rtsys.TaskID]*taskRec),
	}
	f.nodes = append(f.nodes, n)
	f.byName[name] = n
	return n, nil
}

// InjectFaults binds plan to the named node's run-time system. Use
// fault.Plan.ForDevices to scope a fleet-wide storm to one node.
func (f *Fleet) InjectFaults(node string, plan fault.Plan) (*fault.Injector, error) {
	n, ok := f.byName[node]
	if !ok {
		return nil, fmt.Errorf("fleet: unknown node %q", node)
	}
	n.inj = fault.NewInjector(n.sys, plan)
	return n.inj, nil
}

// Ledger returns the tenant budget ledger; define classes and bind
// tenants on it before traffic starts.
func (f *Fleet) Ledger() *admit.Ledger { return f.ledger }

// Node returns a node by name.
func (f *Fleet) Node(name string) (*Node, bool) {
	n, ok := f.byName[name]
	return n, ok
}

// NodeNames returns the node names in insertion order.
func (f *Fleet) NodeNames() []string {
	out := make([]string, len(f.nodes))
	for i, n := range f.nodes {
		out[i] = n.name
	}
	return out
}

// Now returns the fleet sim clock.
func (f *Fleet) Now() device.Micros { return f.now }

// Stats returns a copy of the counters.
func (f *Fleet) Stats() Stats { return f.stats }

// AdvanceTo advances every node's clock to t in insertion order,
// firing each node's due faults on the way.
func (f *Fleet) AdvanceTo(t device.Micros) error {
	for _, n := range f.nodes {
		if n.inj != nil {
			if _, err := n.inj.AdvanceTo(t); err != nil {
				return fmt.Errorf("fleet: node %q: %w", n.name, err)
			}
		} else if err := n.sys.AdvanceTo(t); err != nil {
			return fmt.Errorf("fleet: node %q: %w", n.name, err)
		}
	}
	f.now = t
	return nil
}

// views snapshots every node for policy ranking.
func (f *Fleet) views() []policy.NodeView {
	out := make([]policy.NodeView, len(f.nodes))
	for i, n := range f.nodes {
		out[i] = n.mech.View(n.name)
	}
	return out
}

// Allocate places the best-matching variant for a tenant's request on
// the best-ranked node with budget and capacity. The walk is: retrieve
// N-best on the shared engine, power-rank, score nodes once, then per
// candidate charge the tenant's budget (refunded if no node takes the
// variant) and try nodes best-first. An over-budget tenant gets the
// typed *admit.ErrBudgetExceeded for its best candidate; a tenant
// within budget but out of capacity gets *alloc.ErrNoFeasible.
func (f *Fleet) Allocate(tenant, app string, req casebase.Request, basePrio int) (*Placement, error) {
	f.stats.Requests++
	f.met.requests.Inc()
	candidates, err := f.engine.RetrieveN(req, f.opt.NBest)
	if err != nil {
		f.log("reject t=%d tenant=%s type=%d", f.now, tenant, req.Type)
		return nil, err
	}
	f.rankForPower(req.Type, candidates)
	order := policy.RankNodes(f.views())

	var budgetErr error
	for _, cand := range candidates {
		im, err := f.resolve.ImplOf(req.Type, cand.Impl)
		if err != nil {
			continue
		}
		if err := f.ledger.Admit(tenant, im.Foot, f.now); err != nil {
			if budgetErr == nil {
				budgetErr = err
			}
			continue
		}
		for _, ni := range order {
			n := f.nodes[ni]
			task, dev, err := n.mech.TryPlace(app, req.Type, im, basePrio)
			if err != nil {
				continue
			}
			n.tasks[task.ID] = &taskRec{
				tenant: tenant, app: app, req: req,
				impl: cand.Impl, sim: cand.Similarity, foot: im.Foot, prio: basePrio,
			}
			f.stats.Placed++
			f.met.placed.Inc()
			f.met.nodePlaced(n.name).Inc()
			f.met.tenantPlaced(tenant).Inc()
			f.observeTenant(tenant)
			f.log("place t=%d tenant=%s node=%s task=%d impl=%d dev=%s", f.now, tenant, n.name, task.ID, cand.Impl, dev.Name())
			return &Placement{
				Node: n.name, Task: task.ID, Tenant: tenant,
				Impl: cand.Impl, Target: im.Target, Device: dev.Name(),
				Similarity: cand.Similarity, ReadyAt: task.ReadyAt,
			}, nil
		}
		// No node took the variant; the charge covered nothing.
		f.ledger.Refund(tenant, im.Foot)
	}
	if budgetErr != nil {
		f.stats.BudgetRejected++
		f.met.budgetRejected.Inc()
		f.met.tenantThrottled(tenant).Inc()
		f.log("budget-reject t=%d tenant=%s type=%d", f.now, tenant, req.Type)
		return nil, budgetErr
	}
	f.stats.Infeasible++
	f.met.infeasible.Inc()
	f.log("infeasible t=%d tenant=%s type=%d candidates=%d", f.now, tenant, req.Type, len(candidates))
	return nil, &alloc.ErrNoFeasible{Alternatives: candidates}
}

// Release completes a task and returns its space holdings to the
// tenant's budget.
func (f *Fleet) Release(node string, id rtsys.TaskID) error {
	n, ok := f.byName[node]
	if !ok {
		return fmt.Errorf("fleet: unknown node %q", node)
	}
	t, ok := n.sys.Task(id)
	if !ok {
		return fmt.Errorf("fleet: node %q has no task %d", node, id)
	}
	if err := n.sys.Complete(t); err != nil {
		return fmt.Errorf("fleet: release task %d on %q: %w", id, node, err)
	}
	if tr := n.tasks[id]; tr != nil {
		f.ledger.Release(tr.tenant, tr.foot)
		f.observeTenant(tr.tenant)
		f.log("release t=%d tenant=%s node=%s task=%d", f.now, tr.tenant, node, id)
		delete(n.tasks, id)
	}
	return nil
}

// rankForPower re-orders candidates by the power-discounted score,
// identical to the single-node manager: records via the resolver,
// order via policy.PowerOrder.
func (f *Fleet) rankForPower(ty casebase.TypeID, candidates []retrieval.Result) {
	if f.opt.PowerWeight == 0 {
		return
	}
	sims := make([]float64, len(candidates))
	power := make([]int, len(candidates))
	for i, r := range candidates {
		sims[i] = r.Similarity
		power[i] = f.resolve.PowerMW(ty, r.Impl)
	}
	order := policy.PowerOrder(sims, power, f.opt.PowerWeight)
	reordered := make([]retrieval.Result, len(candidates))
	for i, j := range order {
		reordered[i] = candidates[j]
	}
	copy(candidates, reordered)
}

// RecoverAll sweeps every node (insertion order) for fault-stranded
// tasks and runs fleet degrade-and-retry on each: same node first
// (excluding dead target classes), then migration to the best-ranked
// other node, otherwise rejection. Recovery placements bypass the
// budget ledger — the capacity is already attributed to the tenant —
// so a noisy neighbor's admission pressure cannot starve them.
func (f *Fleet) RecoverAll() []Recovery {
	var out []Recovery
	for _, n := range f.nodes {
		for _, t := range n.sys.Tasks() {
			switch {
			case t.State == rtsys.Failed:
				if err := n.sys.Requeue(t); err != nil {
					continue
				}
			case t.State == rtsys.Pending && t.Faults > 0:
				// Auto-re-queued when its device failed.
			default:
				continue
			}
			out = append(out, f.recoverTask(n, t))
		}
	}
	return out
}

// recoverTask runs degrade-and-retry for one stranded task.
func (f *Fleet) recoverTask(n *Node, t *rtsys.Task) Recovery {
	tr := n.tasks[t.ID]
	if tr == nil {
		// Placed around the fleet; all we know is the type.
		tr = &taskRec{app: t.App, req: casebase.NewRequest(t.Type), impl: t.Impl, prio: t.BasePrio}
	}
	rec := Recovery{Node: n.name, Task: t.ID, Tenant: tr.tenant}
	seen, alive := n.mech.TargetHealth()
	excluded := policy.ExcludedTargets(seen, alive)
	candidates, err := f.locEngine.RetrieveN(tr.req, f.opt.NBest)
	if err != nil {
		f.rejectRecovery(n, t, tr)
		return rec
	}
	f.rankForPower(tr.req.Type, candidates)

	// Same node first: the storm-hit node's surviving capacity belongs
	// to its own stranded tenants.
	for _, cand := range candidates {
		im, err := f.resolve.ImplOf(tr.req.Type, cand.Impl)
		if err != nil || policy.TargetExcluded(excluded, im.Target) {
			continue
		}
		if dev, ok := n.mech.PlaceExisting(t, im); ok {
			f.settleRecovery(&rec, n, n, t.ID, tr, cand, im, dev.Name(), t.ReadyAt)
			return rec
		}
	}

	// Migrate: create a substitute task on the best-ranked other node.
	order := policy.RankNodes(f.views())
	for _, cand := range candidates {
		im, err := f.resolve.ImplOf(tr.req.Type, cand.Impl)
		if err != nil {
			continue
		}
		for _, ni := range order {
			dst := f.nodes[ni]
			if dst == n {
				continue
			}
			task, dev, err := dst.mech.TryPlace(tr.app, tr.req.Type, im, tr.prio)
			if err != nil {
				continue
			}
			_ = n.sys.Complete(t) // old shell: Pending, nothing to release
			delete(n.tasks, t.ID)
			f.settleRecovery(&rec, n, dst, task.ID, tr, cand, im, dev.Name(), task.ReadyAt)
			rec.Migrated = true
			f.stats.Migrated++
			f.met.migrated.Inc()
			return rec
		}
	}

	f.rejectRecovery(n, t, tr)
	return rec
}

// settleRecovery books a successful recovery placement: ledger
// transfer (old footprint out, new in, no budget check), degradation
// accounting against the original variant, journal, metrics.
func (f *Fleet) settleRecovery(rec *Recovery, from, to *Node, id rtsys.TaskID, tr *taskRec, cand retrieval.Result, im *casebase.Implementation, dev device.ID, readyAt device.Micros) {
	if tr.tenant != "" {
		f.ledger.Release(tr.tenant, tr.foot)
		f.ledger.ForceCharge(tr.tenant, im.Foot)
		f.observeTenant(tr.tenant)
	}
	if tr.impl != cand.Impl {
		lost := f.lostAttrs(tr.req, tr.impl, cand.Impl)
		if policy.IsDegradation(tr.sim, cand.Similarity, lost) {
			rec.Degraded = true
			f.stats.Degraded++
			f.met.degraded.Inc()
		}
	}
	nrec := &taskRec{
		tenant: tr.tenant, app: tr.app, req: tr.req,
		impl: cand.Impl, sim: cand.Similarity, foot: im.Foot, prio: tr.prio,
	}
	to.tasks[id] = nrec
	rec.Placement = &Placement{
		Node: to.name, Task: id, Tenant: tr.tenant,
		Impl: cand.Impl, Target: im.Target, Device: dev,
		Similarity: cand.Similarity, ReadyAt: readyAt,
	}
	f.stats.Recovered++
	f.met.recovered.Inc()
	f.met.nodeRecovered(to.name).Inc()
	f.log("recover t=%d tenant=%s from=%s to=%s task=%d impl=%d dev=%s", f.now, tr.tenant, from.name, to.name, id, cand.Impl, dev)
}

// rejectRecovery finalizes a stranded task nothing could host: the
// task completes (the application cannot call the function) and its
// holdings return to the tenant's budget.
func (f *Fleet) rejectRecovery(n *Node, t *rtsys.Task, tr *taskRec) {
	_ = n.sys.Complete(t)
	if tr.tenant != "" {
		f.ledger.Release(tr.tenant, tr.foot)
		f.observeTenant(tr.tenant)
	}
	delete(n.tasks, t.ID)
	f.stats.FaultRejected++
	f.met.faultRejected.Inc()
	f.log("fault-reject t=%d tenant=%s node=%s task=%d", f.now, tr.tenant, n.name, t.ID)
}

// lostAttrs compares the per-attribute similarity of two variants for
// the same request, exactly like the single-node manager: the locals
// engine supplies the breakdowns, policy.LostAttrs compares.
func (f *Fleet) lostAttrs(req casebase.Request, from, to casebase.ImplID) []attr.ID {
	all, err := f.locEngine.RetrieveAll(req)
	if err != nil {
		return nil
	}
	locals := func(id casebase.ImplID) []retrieval.LocalScore {
		for _, r := range all {
			if r.Impl == id {
				return r.Locals
			}
		}
		return nil
	}
	return policy.LostAttrs(locals(from), locals(to))
}

// Rebalance sweeps waiting (preempted) tasks in descending aged
// priority per node and re-places each on its own node first, then on
// the best-ranked other node — deterministic live rebalancing. It
// returns how many tasks came back.
func (f *Fleet) Rebalance() int {
	moved := 0
	for _, n := range f.nodes {
		for {
			occ, tasks := n.mech.Waiting()
			i, ok := policy.BestWaiting(occ)
			if !ok {
				break
			}
			t := tasks[i]
			if !f.rebalanceOne(n, t) {
				break
			}
			moved++
			f.stats.Rebalanced++
			f.met.rebalanced.Inc()
		}
	}
	return moved
}

// rebalanceOne re-places one waiting task: own node, then migration.
func (f *Fleet) rebalanceOne(n *Node, t *rtsys.Task) bool {
	tr := n.tasks[t.ID]
	if tr == nil {
		tr = &taskRec{app: t.App, req: casebase.NewRequest(t.Type), impl: t.Impl, prio: t.BasePrio}
	}
	im, err := f.resolve.ImplOf(t.Type, t.Impl)
	if err != nil {
		return false
	}
	if dev, ok := n.mech.PlaceExisting(t, im); ok {
		f.log("replace t=%d tenant=%s node=%s task=%d dev=%s", f.now, tr.tenant, n.name, t.ID, dev.Name())
		return true
	}
	order := policy.RankNodes(f.views())
	for _, ni := range order {
		dst := f.nodes[ni]
		if dst == n {
			continue
		}
		task, dev, err := dst.mech.TryPlace(tr.app, t.Type, im, tr.prio)
		if err != nil {
			continue
		}
		_ = n.sys.Complete(t)
		delete(n.tasks, t.ID)
		dst.tasks[task.ID] = &taskRec{
			tenant: tr.tenant, app: tr.app, req: tr.req,
			impl: t.Impl, sim: tr.sim, foot: im.Foot, prio: tr.prio,
		}
		f.stats.Migrated++
		f.met.migrated.Inc()
		f.log("rebalance t=%d tenant=%s from=%s to=%s task=%d dev=%s", f.now, tr.tenant, n.name, dst.name, task.ID, dev.Name())
		return true
	}
	return false
}

// log appends one journal line; the journal is the fleet's replay
// witness, hashed by ReplayHash.
func (f *Fleet) log(format string, args ...any) {
	f.journal = append(f.journal, fmt.Sprintf(format, args...))
}

// Journal returns the ordered placement-event log.
func (f *Fleet) Journal() []string { return append([]string(nil), f.journal...) }

// ReplayHash folds the journal into a printable fnv64a digest — two
// runs of the same schedule must produce the same value, the
// bit-identical-replay acceptance criterion.
func (f *Fleet) ReplayHash() string {
	h := fnv.New64a()
	for _, line := range f.journal {
		_, _ = h.Write([]byte(line))
		_, _ = h.Write([]byte{'\n'})
	}
	return fmt.Sprintf("fnv64a:%016x", h.Sum64())
}

// observeTenant refreshes the tenant's holdings gauges.
func (f *Fleet) observeTenant(tenant string) {
	if tenant == "" {
		return
	}
	slices, brams := f.ledger.Usage(tenant)
	f.met.tenantSlices(tenant).Set(int64(slices))
	f.met.tenantBRAMs(tenant).Set(int64(brams))
}
