package fleet

import (
	"errors"
	"fmt"
	"testing"

	"qosalloc/internal/admit"
	"qosalloc/internal/alloc"
	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
	"qosalloc/internal/fault"
	"qosalloc/internal/obs"
)

// newTestFleet builds n identical paper-style nodes (2-slot FPGA, DSP,
// GPP) over the table-1 case base.
func newTestFleet(t *testing.T, n int, opt Options) *Fleet {
	t.Helper()
	cb, err := casebase.PaperCaseBase()
	if err != nil {
		t.Fatal(err)
	}
	f := New(cb, opt)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("node%d", i)
		fpga := device.NewFPGA(device.ID(name+"-fpga"), []device.Slot{
			{Slices: 1500, BRAMs: 8, Multipliers: 16},
			{Slices: 1500, BRAMs: 8, Multipliers: 16},
		}, 66)
		dsp := device.NewProcessor(device.ID(name+"-dsp"), casebase.TargetDSP, 1000, 128*1024)
		gpp := device.NewProcessor(device.ID(name+"-gpp"), casebase.TargetGPP, 1000, 256*1024)
		if _, err := f.AddNode(name, 20, fpga, dsp, gpp); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func TestFleetAllocateSpreadsDeterministically(t *testing.T) {
	f := newTestFleet(t, 2, Options{})
	// Equal nodes: the name tie-break sends the first placement to
	// node0; the second node then has more free capacity.
	p1, err := f.Allocate("tA", "mp3", casebase.PaperRequest(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Node != "node0" || p1.Impl != 2 || p1.Target != casebase.TargetDSP {
		t.Errorf("first placement = %+v, want DSP impl 2 on node0", p1)
	}
	p2, err := f.Allocate("tA", "mp3", casebase.PaperRequest(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Node != "node1" {
		t.Errorf("second placement on %s, want node1 (more free capacity)", p2.Node)
	}
	if st := f.Stats(); st.Requests != 2 || st.Placed != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFleetReleaseReturnsBudget(t *testing.T) {
	f := newTestFleet(t, 1, Options{})
	f.Ledger().DefineClass("bronze", admit.ClassBudget{Slices: 1000})
	f.Ledger().BindTenant("tA", "bronze")
	// Saturate the DSP so the FPGA variant (920 slices) is chosen.
	if _, err := f.Allocate("free", "mp3", casebase.PaperRequest(), 5); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Allocate("free", "mp3", casebase.PaperRequest(), 5); err != nil {
		t.Fatal(err)
	}
	p, err := f.Allocate("tA", "mp3", casebase.PaperRequest(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Target != casebase.TargetFPGA {
		t.Fatalf("placement = %+v, want FPGA variant", p)
	}
	if s, _ := f.Ledger().Usage("tA"); s != 920 {
		t.Errorf("tenant holds %d slices, want 920", s)
	}
	// A second FPGA placement would exceed the 1000-slice budget; the
	// tenant gets the typed error and the GPP fallback is also checked
	// (it passes: zero slices), so saturate the GPPs first.
	if err := f.Release(p.Node, p.Task); err != nil {
		t.Fatal(err)
	}
	if s, _ := f.Ledger().Usage("tA"); s != 0 {
		t.Errorf("tenant still holds %d slices after release", s)
	}
}

func TestFleetBudgetTypedRejection(t *testing.T) {
	f := newTestFleet(t, 1, Options{})
	// Budget admits exactly one DSP-variant bitstream (18 KiB) and
	// nothing else: the FPGA (96 KiB) and GPP (2 KiB) fallbacks are
	// blocked by a drained bucket.
	f.Ledger().DefineClass("tight", admit.ClassBudget{ConfigBytesPerSec: 1, ConfigBurstBytes: 18 * 1024})
	f.Ledger().BindTenant("tA", "tight")
	if _, err := f.Allocate("tA", "mp3", casebase.PaperRequest(), 5); err != nil {
		t.Fatalf("first allocation within budget: %v", err)
	}
	_, err := f.Allocate("tA", "mp3", casebase.PaperRequest(), 5)
	var be *admit.ErrBudgetExceeded
	if !errors.As(err, &be) {
		t.Fatalf("second allocation = %v, want *admit.ErrBudgetExceeded", err)
	}
	if be.Resource != admit.ResourceConfigBytes || be.Tenant != "tA" {
		t.Errorf("rejection = %+v", be)
	}
	if st := f.Stats(); st.BudgetRejected != 1 {
		t.Errorf("stats = %+v, want BudgetRejected 1", st)
	}
}

func TestFleetInfeasibleKeepsAllocSentinel(t *testing.T) {
	f := newTestFleet(t, 1, Options{})
	// Fill the DSP (2×450 load), both FPGA slots, and the GPP (700).
	for i := 0; i < 5; i++ {
		if _, err := f.Allocate("tA", "mp3", casebase.PaperRequest(), 5); err != nil {
			t.Fatalf("fill allocation %d: %v", i, err)
		}
	}
	_, err := f.Allocate("tA", "mp3", casebase.PaperRequest(), 5)
	if err == nil {
		t.Fatal("overfull fleet still placed")
	}
	if !errors.Is(err, alloc.ErrNoViableVariant) {
		t.Errorf("err = %v, want wrapping alloc.ErrNoViableVariant", err)
	}
}

func TestFleetRecoveryMigratesAcrossNodes(t *testing.T) {
	f := newTestFleet(t, 2, Options{})
	p, err := f.Allocate("tA", "mp3", casebase.PaperRequest(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Node != "node0" {
		t.Fatalf("placement on %s, want node0", p.Node)
	}
	if err := f.AdvanceTo(1000); err != nil {
		t.Fatal(err)
	}
	// Kill every node0 device: same-node recovery is impossible.
	plan, err := fault.ParsePlan("2000:devfail:node0-dsp;2000:devfail:node0-fpga;2000:devfail:node0-gpp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.InjectFaults("node0", plan); err != nil {
		t.Fatal(err)
	}
	if err := f.AdvanceTo(3000); err != nil {
		t.Fatal(err)
	}
	recs := f.RecoverAll()
	if len(recs) != 1 {
		t.Fatalf("recoveries = %d, want 1", len(recs))
	}
	r := recs[0]
	if r.Placement == nil || !r.Migrated || r.Placement.Node != "node1" {
		t.Fatalf("recovery = %+v, want migration to node1", r)
	}
	if st := f.Stats(); st.Recovered != 1 || st.Migrated != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestFleetReplayBitIdentical pins the acceptance criterion: the same
// schedule produces the same journal hash on every run, at any node
// count.
func TestFleetReplayBitIdentical(t *testing.T) {
	run := func(nodes int) string {
		f := newTestFleet(t, nodes, Options{PowerWeight: 0.1})
		f.Ledger().DefineClass("std", admit.ClassBudget{Slices: 3000, ConfigBytesPerSec: 64 * 1024})
		for i := 0; i < 4; i++ {
			f.Ledger().BindTenant(fmt.Sprintf("t%d", i), "std")
		}
		var placed []Placement
		for i := 0; i < 12; i++ {
			tenant := fmt.Sprintf("t%d", i%4)
			p, err := f.Allocate(tenant, "mp3", casebase.PaperRequest(), 3+i%5)
			if err == nil {
				placed = append(placed, *p)
			}
			if err := f.AdvanceTo(device.Micros(i+1) * 700); err != nil {
				t.Fatal(err)
			}
			if i == 6 && len(placed) > 0 {
				if err := f.Release(placed[0].Node, placed[0].Task); err != nil {
					t.Fatal(err)
				}
			}
		}
		f.Rebalance()
		return f.ReplayHash()
	}
	for _, nodes := range []int{1, 2, 4} {
		a, b := run(nodes), run(nodes)
		if a != b {
			t.Errorf("%d-node replay diverged: %s vs %s", nodes, a, b)
		}
	}
}

// noisyScenario is the fleetcheck isolation scenario: tenant "victim"
// holds work on node0 when a device failure degrades it; tenant
// "noisy" then floods the fleet at roughly 10× its class budget. The
// victim's recovery must not see the neighbor at all.
func noisyScenario(t *testing.T, withNoisy bool) (victimRecoveries []string, budgetRejects int, fleetHash string) {
	t.Helper()
	f := newTestFleet(t, 2, Options{})
	reg := obs.NewRegistry()
	f.Instrument(reg)
	led := f.Ledger()
	led.DefineClass("gold", admit.ClassBudget{})
	led.DefineClass("bronze", admit.ClassBudget{Slices: 920, ConfigBytesPerSec: 1, ConfigBurstBytes: 36 * 1024})
	led.BindTenant("victim", "gold")
	led.BindTenant("noisy", "bronze")

	// The victim spreads four MP3 tasks across the fleet; two land on
	// node0 (the name tie-break, then alternating free capacity).
	var victims []Placement
	for i := 0; i < 4; i++ {
		p, err := f.Allocate("victim", "mp3", casebase.PaperRequest(), 5)
		if err != nil {
			t.Fatal(err)
		}
		victims = append(victims, *p)
	}
	if victims[0].Node != "node0" || victims[2].Node != "node0" {
		t.Fatalf("victim placements landed %s/%s, want node0 twice", victims[0].Node, victims[2].Node)
	}
	if err := f.AdvanceTo(2000); err != nil {
		t.Fatal(err)
	}

	// Storm scoped to node0: its DSP dies, stranding the victim's two
	// DSP placements there. node1 never sees a fault.
	storm, err := fault.ParsePlan("5000:devfail:node0-dsp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.InjectFaults("node0", storm.ForDevices("node0-dsp")); err != nil {
		t.Fatal(err)
	}
	if err := f.AdvanceTo(6000); err != nil {
		t.Fatal(err)
	}

	// The noisy neighbor floods the degraded fleet: 20 requests against
	// a budget that admits roughly 2 bitstreams' worth of bandwidth.
	if withNoisy {
		for i := 0; i < 20; i++ {
			_, err := f.Allocate("noisy", "mp3", casebase.PaperRequest(), 9)
			var be *admit.ErrBudgetExceeded
			if errors.As(err, &be) {
				budgetRejects++
			} else if err != nil && !errors.Is(err, alloc.ErrNoViableVariant) {
				t.Fatalf("noisy request %d: unexpected error %v", i, err)
			}
		}
	}

	// Recovery: the stranded victim tasks re-place onto node0's FPGA
	// (same-node first; the DSP target class is dead there).
	for _, r := range f.RecoverAll() {
		if r.Tenant != "victim" {
			continue
		}
		out := fmt.Sprintf("task=%d node=%s degraded=%v rejected=%v",
			r.Task, placementNode(r), r.Degraded, r.Placement == nil)
		if r.Placement != nil {
			out += fmt.Sprintf(" impl=%d dev=%s ready=%d", r.Placement.Impl, r.Placement.Device, r.Placement.ReadyAt)
		}
		victimRecoveries = append(victimRecoveries, out)
	}
	return victimRecoveries, budgetRejects, f.ReplayHash()
}

func placementNode(r Recovery) string {
	if r.Placement == nil {
		return "-"
	}
	return r.Placement.Node
}

// TestFleetNoisyNeighborIsolation pins the tentpole acceptance
// criterion: under a single-node fault storm, a tenant at ~10× budget
// is throttled with typed errors while the degraded tenant's recovery
// outcome is unchanged against the no-neighbor baseline.
func TestFleetNoisyNeighborIsolation(t *testing.T) {
	baseRecs, _, _ := noisyScenario(t, false)
	noisyRecs, rejects, _ := noisyScenario(t, true)
	if len(baseRecs) == 0 {
		t.Fatal("baseline produced no victim recoveries; scenario is vacuous")
	}
	if rejects < 10 {
		t.Errorf("noisy tenant saw %d typed budget rejections, want >= 10", rejects)
	}
	if len(baseRecs) != len(noisyRecs) {
		t.Fatalf("recovery count changed: baseline %d, with neighbor %d\nbase: %v\nnoisy: %v",
			len(baseRecs), len(noisyRecs), baseRecs, noisyRecs)
	}
	for i := range baseRecs {
		if baseRecs[i] != noisyRecs[i] {
			t.Errorf("recovery %d diverged under noisy neighbor:\nbaseline: %s\nneighbor: %s",
				i, baseRecs[i], noisyRecs[i])
		}
	}
}

// pinnedNoisyHash is the fleetcheck golden: the full journal hash of
// the seeded noisy-neighbor scenario. Any change to fleet placement,
// budget, or recovery order shows up here first. Regenerate by running
// this test with -run TestFleetCheckGolden -v after an intentional
// policy change and copying the reported hash.
const pinnedNoisyHash = "fnv64a:aa284eabb6018b98"

func TestFleetCheckGolden(t *testing.T) {
	_, _, hash := noisyScenario(t, true)
	if hash != pinnedNoisyHash {
		t.Errorf("noisy-neighbor scenario hash = %s, want %s", hash, pinnedNoisyHash)
	}
}
