package fleet

import (
	"fmt"

	"qosalloc/internal/obs"
)

// metrics is the fleet's observability bundle. Fixed counters follow
// the dangling-bundle pattern (a nil registry yields no-op
// instruments, so increment sites never branch); the per-node and
// per-tenant series are materialized lazily through the registry's
// get-or-create methods with constant-format label names, the same
// idiom the fault injector uses for its per-kind counters.
type metrics struct {
	reg *obs.Registry

	requests       *obs.Counter
	placed         *obs.Counter
	budgetRejected *obs.Counter
	infeasible     *obs.Counter
	recovered      *obs.Counter
	migrated       *obs.Counter
	degraded       *obs.Counter
	faultRejected  *obs.Counter
	rebalanced     *obs.Counter
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		reg:            reg,
		requests:       reg.Counter("qos_fleet_requests_total", "fleet allocation requests received"),
		placed:         reg.Counter("qos_fleet_placed_total", "successful fleet placements"),
		budgetRejected: reg.Counter("qos_fleet_budget_rejected_total", "requests rejected over a tenant budget"),
		infeasible:     reg.Counter("qos_fleet_infeasible_total", "requests with matches but no placeable variant on any node"),
		recovered:      reg.Counter("qos_fleet_recovered_total", "fault-stranded tasks re-placed by fleet degrade-and-retry"),
		migrated:       reg.Counter("qos_fleet_migrated_total", "tasks moved to a different node (recovery or rebalance)"),
		degraded:       reg.Counter("qos_fleet_degraded_total", "recoveries that landed on a worse-matching variant"),
		faultRejected:  reg.Counter("qos_fleet_fault_rejected_total", "stranded tasks no node could host"),
		rebalanced:     reg.Counter("qos_fleet_rebalanced_total", "waiting tasks re-placed by Rebalance"),
	}
}

// nodePlaced returns the per-node placement counter.
func (m *metrics) nodePlaced(node string) *obs.Counter {
	return m.reg.Counter(fmt.Sprintf("qos_fleet_node_placed_total{node=%q}", node),
		"placements by node")
}

// nodeRecovered returns the per-node recovery-landing counter.
func (m *metrics) nodeRecovered(node string) *obs.Counter {
	return m.reg.Counter(fmt.Sprintf("qos_fleet_node_recovered_total{node=%q}", node),
		"recovery placements landing on the node")
}

// tenantPlaced returns the per-tenant placement counter.
func (m *metrics) tenantPlaced(tenant string) *obs.Counter {
	return m.reg.Counter(fmt.Sprintf("qos_fleet_tenant_placed_total{tenant=%q}", tenant),
		"placements by tenant")
}

// tenantThrottled returns the per-tenant budget-rejection counter.
func (m *metrics) tenantThrottled(tenant string) *obs.Counter {
	return m.reg.Counter(fmt.Sprintf("qos_fleet_tenant_throttled_total{tenant=%q}", tenant),
		"budget rejections by tenant")
}

// tenantSlices returns the tenant's live slice-holdings gauge.
func (m *metrics) tenantSlices(tenant string) *obs.Gauge {
	return m.reg.Gauge(fmt.Sprintf("qos_fleet_tenant_slices{tenant=%q}", tenant),
		"FPGA slices currently attributed to the tenant")
}

// tenantBRAMs returns the tenant's live BRAM-holdings gauge.
func (m *metrics) tenantBRAMs(tenant string) *obs.Gauge {
	return m.reg.Gauge(fmt.Sprintf("qos_fleet_tenant_brams{tenant=%q}", tenant),
		"BRAMs currently attributed to the tenant")
}
