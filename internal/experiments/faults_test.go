package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"qosalloc/internal/fault"
)

// scriptedPlan is the acceptance scenario: permanent FPGA-slot failures
// mid-run plus transient configuration errors (and one SEU), scripted so
// the whole run replays bit-identically.
const scriptedPlan = "20500:configerr:fpga0;33500:configerr:fpga0;" +
	"45500:slotfail:fpga0:0;47500:configerr:dsp0;" +
	"60500:slotfail:fpga0:1;72500:configerr:fpga0;90500:seu:fpga1"

func TestFaultSweepScriptedPlanExactOutcome(t *testing.T) {
	plan, err := fault.ParsePlan(scriptedPlan)
	if err != nil {
		t.Fatal(err)
	}
	spec := FaultSweepSpec{Requests: 120, Seed: 11, Plan: &plan}
	d, err := FaultSweepRun(spec)
	if err != nil {
		t.Fatal(err)
	}
	// The exact deterministic outcome for this seed and plan. Any change
	// here means the simulation is no longer replay-stable (or the fault
	// semantics changed — update deliberately, not accidentally).
	want := FaultSweepData{
		Requests: 120, Granted: 120, Denied: 0,
		EventsApplied: 7, NoVictim: 1, Stranded: 2,
		ConfigErrors: 3, SEUs: 1, Retries: 4,
		Recovered: 2, Degraded: 1, Rejected: 0, Dropped: 0,
		RecMeanUs: 1522.5, RecP95Us: 2336, RecMaxUs: 2336,
		LostAttrsTotal: 2,
	}
	if !reflect.DeepEqual(d, want) {
		t.Errorf("outcome drifted:\n got %+v\nwant %+v", d, want)
	}
	// The hard robustness contract, restated independently of the pinned
	// numbers: every scripted fault completed the run with zero tasks
	// dropped without a report.
	if d.Dropped != 0 {
		t.Fatalf("%d task(s) dropped silently", d.Dropped)
	}
	if d.Stranded != d.Recovered+d.Rejected {
		t.Errorf("stranded %d != recovered %d + rejected %d",
			d.Stranded, d.Recovered, d.Rejected)
	}
	// Replay: an identical spec yields an identical outcome.
	again, err := FaultSweepRun(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, again) {
		t.Errorf("replay differs:\n run1 %+v\n run2 %+v", d, again)
	}
}

func TestFaultSweepStormIsDeterministicAndDropFree(t *testing.T) {
	a, err := FaultSweepRun(FaultSweepSpec{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FaultSweepRun(FaultSweepSpec{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("storm replay differs:\n run1 %+v\n run2 %+v", a, b)
	}
	if a.Dropped != 0 {
		t.Errorf("%d task(s) dropped silently", a.Dropped)
	}
	if a.EventsApplied == 0 || a.Stranded == 0 {
		t.Errorf("storm too gentle to test anything: %+v", a)
	}
	// A different seed perturbs the run.
	c, err := FaultSweepRun(FaultSweepSpec{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds should (overwhelmingly) differ")
	}
	if c.Dropped != 0 {
		t.Errorf("seed 8: %d task(s) dropped silently", c.Dropped)
	}
}

func TestFaultSweepRenders(t *testing.T) {
	var buf bytes.Buffer
	if err := FaultSweep(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, marker := range []string{
		"faults applied", "re-placed", "rejected w/report", "dropped silently:  0",
	} {
		if !strings.Contains(out, marker) {
			t.Errorf("output missing %q:\n%s", marker, out)
		}
	}
}
