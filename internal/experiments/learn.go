package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"reflect"

	"qosalloc/internal/attr"
	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
	"qosalloc/internal/learn"
	"qosalloc/internal/retrieval"
	"qosalloc/internal/rtsys"
	"qosalloc/internal/serve"
	"qosalloc/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "learn",
		Title: "Live case-base mutation: epoch snapshots and deferred net-commit under load",
		Paper: "fig. 2 closes the CBR cycle (retain/revise) — here the cycle runs against a serving case base, with fold points and epoch numbering replayed bit-identically at any shard count",
		Run:   LearnChurn,
	})
}

// LearnChurnSpec parameterizes the mutation replay.
type LearnChurnSpec struct {
	// Steps is the schedule length. Zero means 200.
	Steps int
	// Shards is the service partition count. Zero means 4.
	Shards int
	// Seed drives both the workload and the churn schedule.
	Seed int64
}

// LearnChurnOutcome is the deterministic result of one replay. Fold
// points depend only on the global pending counters and the sim clock,
// so every field — including the epoch journal digest — is
// replay-stable and shard-count invariant.
type LearnChurnOutcome struct {
	Steps      int
	Shards     int
	Mismatches int // served results differing from a fresh walk of the committed tree
	Epoch      uint64
	Stats      serve.EpochStats
	Journal    []string
	ReplayHash string
}

// LearnChurnRun drives one seeded schedule of retrievals interleaved
// with observations, retains and retires against a learning service.
// The driver is sequential (lockstep), so the journal is a pure
// function of the spec; every retrieval is checked against a fresh
// sequential engine walk over the epoch's committed tree.
func LearnChurnRun(spec LearnChurnSpec) (LearnChurnOutcome, error) {
	if spec.Steps <= 0 {
		spec.Steps = 200
	}
	if spec.Shards <= 0 {
		spec.Shards = 4
	}
	out := LearnChurnOutcome{Steps: spec.Steps, Shards: spec.Shards}

	cb, areg, err := workload.GenCaseBase(workload.CaseBaseSpec{
		Types: 8, ImplsPerType: 5, AttrsPerImpl: 5, AttrUniverse: 6, Seed: spec.Seed,
	})
	if err != nil {
		return out, err
	}
	reqs, err := workload.GenRequests(cb, areg, workload.RequestStreamSpec{
		N: 120, ConstraintsPer: 3, RepeatFraction: 0.3, Seed: spec.Seed + 1,
	})
	if err != nil {
		return out, err
	}
	repo := device.NewRepository(64)
	if err := repo.PopulateFromCaseBase(cb); err != nil {
		return out, err
	}
	sys := rtsys.NewSystem(repo,
		device.NewFPGA("fpga0", []device.Slot{
			{Slices: 1500, BRAMs: 8, Multipliers: 16},
			{Slices: 1500, BRAMs: 8, Multipliers: 16},
		}, 66),
		device.NewProcessor("dsp0", casebase.TargetDSP, 2000, 1<<20),
		device.NewProcessor("gpp0", casebase.TargetGPP, 2000, 1<<21),
	)
	svc := serve.New(cb, sys, serve.Config{
		Shards: spec.Shards, MaxBatch: 8,
		Learning: serve.LearnConfig{Enabled: true, Alpha: 0.5, FoldThreshold: 4, MaxAge: 5_000},
	})
	defer svc.Close()

	ctx := context.Background()
	rng := rand.New(rand.NewSource(spec.Seed + 2))
	types := cb.Types()
	// eng walks the committed tree sequentially; rebuilt on epoch change.
	eng := retrieval.NewEngine(svc.CaseBase(), retrieval.Options{})
	engEpoch := svc.Epoch()
	now := device.Micros(0)
	for step := 0; step < spec.Steps; step++ {
		now += 25
		svc.Tick(now)
		switch k := rng.Intn(10); {
		case k < 5:
			lo := rng.Intn(len(reqs) - 4)
			got, err := svc.RetrieveBatch(ctx, reqs[lo:lo+4])
			if err != nil {
				return out, err
			}
			if e := svc.Epoch(); e != engEpoch {
				eng = retrieval.NewEngine(svc.CaseBase(), retrieval.Options{})
				engEpoch = e
			}
			for i, o := range got {
				want, wantErr := eng.Retrieve(reqs[lo+i])
				if (o.Err == nil) != (wantErr == nil) || !reflect.DeepEqual(o.Result, want) {
					out.Mismatches++
				}
			}
		case k < 9:
			ft := types[rng.Intn(len(types))]
			im := ft.Impls[rng.Intn(len(ft.Impls))]
			p := im.Attrs[rng.Intn(len(im.Attrs))]
			// Fails deterministically once the schedule retired the impl;
			// the error sequence is part of the replayed behavior.
			_ = svc.Observe(learn.Observation{Type: ft.ID, Impl: im.ID,
				Measured: []attr.Pair{{ID: p.ID, Value: p.Value + attr.Value(rng.Intn(3))}}})
		case rng.Intn(2) == 0:
			ft := types[rng.Intn(len(types))]
			src := ft.Impls[rng.Intn(len(ft.Impls))]
			_, _ = svc.Retain(ft.ID, casebase.Implementation{
				Name: fmt.Sprintf("churn-%d", step), Target: src.Target,
				Attrs: append([]attr.Pair(nil), src.Attrs...), Foot: src.Foot,
			}, 0)
		default:
			ft := types[rng.Intn(len(types))]
			// Never the first variant, so no type ever empties out.
			_ = svc.Retire(ft.ID, ft.Impls[1+rng.Intn(len(ft.Impls)-1)].ID, 0)
		}
	}
	out.Epoch = svc.Epoch()
	out.Stats = svc.EpochStats()
	out.Journal = svc.Journal()
	out.ReplayHash = svc.ReplayHash()
	return out, nil
}

// LearnChurn renders the mutation replay (E21): one schedule at the
// default shard count, then the same schedule resharded to prove the
// epoch journal — fold points, epoch numbers, commit reasons — is
// shard-count invariant.
func LearnChurn(w io.Writer) error {
	spec := LearnChurnSpec{Steps: 200, Shards: 4, Seed: 21}
	out, err := LearnChurnRun(spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "live mutation under load (%d steps, %d shards, seed %d):\n\n",
		out.Steps, out.Shards, spec.Seed)
	fmt.Fprintf(w, "  committed epoch                     %d\n", out.Epoch)
	fmt.Fprintf(w, "  commits (fold/structural/manual)    %d (%d folds)\n", out.Stats.Commits, out.Stats.Folds)
	fmt.Fprintf(w, "  observations accepted               %d (%d folded)\n", out.Stats.Observations, out.Stats.FoldedObs)
	fmt.Fprintf(w, "  variants retained / retired         %d / %d\n", out.Stats.Retained, out.Stats.Retired)
	fmt.Fprintf(w, "  served results vs fresh walks       %d mismatch(es)\n", out.Mismatches)
	fmt.Fprintf(w, "  epoch journal                       %d commits, head %q\n", len(out.Journal), out.Journal[0])
	fmt.Fprintf(w, "  replay hash                         %s\n", out.ReplayHash)

	fmt.Fprintf(w, "\nresharding the identical schedule:\n")
	for _, shards := range []int{1, 8} {
		re, err := LearnChurnRun(LearnChurnSpec{Steps: spec.Steps, Shards: shards, Seed: spec.Seed})
		if err != nil {
			return err
		}
		same := "identical"
		if re.ReplayHash != out.ReplayHash {
			same = "DIVERGED"
		}
		fmt.Fprintf(w, "  shards=%d                            %s (%s)\n", shards, re.ReplayHash, same)
	}
	fmt.Fprintf(w, "\nFold points trip on global pending counters and the sim clock —\n")
	fmt.Fprintf(w, "never on how keys stripe across writers — so the journal replays\n")
	fmt.Fprintf(w, "bit for bit at any shard count.\n")
	return nil
}
