package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"qosalloc/internal/alloc"
	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
	"qosalloc/internal/fault"
	"qosalloc/internal/obs"
	"qosalloc/internal/rtsys"
	"qosalloc/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "obs",
		Title: "Observability: deterministic counters across the allocation pipeline",
		Paper: "§4.2 cycle accounting generalized — every layer's work is counted, and a replay reproduces every number bit-exactly",
		Run:   Obs,
	})
}

// ObsSpec parameterizes the instrumented replay.
type ObsSpec struct {
	// Requests is the synthetic stream length. Zero means 200.
	Requests int
	// Seed drives the workload and, when Plan is nil, the fault storm.
	Seed int64
	// Plan overrides the generated storm with a scripted schedule.
	Plan *fault.Plan
}

// ObsRun replays a deterministic request stream under a fault storm with
// every layer instrumented on one shared registry, and returns that
// registry. Because the simulation is event-free sim time (no wall
// clock, no unseeded randomness), every counter, gauge, histogram bucket
// and trace event is identical across replays of the same spec — which
// is exactly what the golden test pins.
func ObsRun(spec ObsSpec) (*obs.Registry, error) {
	if spec.Requests <= 0 {
		spec.Requests = 200
	}
	reg := obs.NewRegistry()

	cb, areg, err := workload.GenCaseBase(workload.PaperScale())
	if err != nil {
		return nil, err
	}
	reqs, err := workload.GenRequests(cb, areg, workload.RequestStreamSpec{
		N: spec.Requests, ConstraintsPer: 4, RepeatFraction: 0.3, Seed: spec.Seed,
	})
	if err != nil {
		return nil, err
	}
	repo := device.NewRepository(20)
	if err := repo.PopulateFromCaseBase(cb); err != nil {
		return nil, err
	}
	slots := []device.Slot{
		{Slices: 1500, BRAMs: 8, Multipliers: 16},
		{Slices: 1500, BRAMs: 8, Multipliers: 16},
		{Slices: 1500, BRAMs: 8, Multipliers: 16},
	}
	sys := rtsys.NewSystem(repo,
		device.NewFPGA("fpga0", slots, 66),
		device.NewFPGA("fpga1", slots, 66),
		device.NewProcessor("dsp0", casebase.TargetDSP, 2000, 1<<20),
		device.NewProcessor("gpp0", casebase.TargetGPP, 2000, 1<<21),
	)
	m := alloc.New(cb, sys, alloc.Options{
		NBest: 5, AllowPreemption: true, UseBypassTokens: true,
	})

	plan := fault.Plan{}
	if spec.Plan != nil {
		plan = *spec.Plan
	} else {
		r := rand.New(rand.NewSource(spec.Seed))
		horizon := device.Micros(spec.Requests) * 1000
		plan, err = fault.Storm(r, fault.StormSpec{
			Horizon:   horizon,
			SlotFails: 2, DeviceFails: 1, ConfigErrors: 6, SEUs: 4,
			Targets: []fault.StormTarget{
				{Device: "fpga0", Slots: len(slots)},
				{Device: "fpga1", Slots: len(slots)},
				{Device: "dsp0"},
			},
		})
		if err != nil {
			return nil, err
		}
	}
	inj := fault.NewInjector(sys, plan)

	// One registry, every layer. Manager.Instrument also instruments the
	// retrieval engines it owns.
	m.Instrument(reg)
	sys.Instrument(reg)
	inj.Instrument(reg)

	var live []rtsys.TaskID
	for i, req := range reqs {
		applied, err := inj.AdvanceTo(device.Micros(i+1) * 1000)
		if err != nil {
			return nil, err
		}
		if len(applied) > 0 {
			m.RecoverFromFaults()
		}
		if len(live) >= 12 {
			_ = m.Release(live[0])
			live = live[1:]
			m.ReplacePending()
		}
		dec, err := m.Request(fmt.Sprintf("app%d", i%8), req, 1+i%9)
		if err != nil {
			continue
		}
		live = append(live, dec.Task.ID)
	}
	if _, err := inj.AdvanceTo(sys.Now() + 100_000); err != nil {
		return nil, err
	}
	m.RecoverFromFaults()
	return reg, nil
}

// Obs renders the instrumented replay: the full counter set, the
// sim-time histograms, and the trace-ring totals. Every line is
// replay-stable.
func Obs(w io.Writer) error {
	reg, err := ObsRun(ObsSpec{Seed: 7})
	if err != nil {
		return err
	}
	snap := reg.Snapshot()

	fmt.Fprintf(w, "counters (deterministic; identical on every replay of seed 7):\n")
	for _, name := range reg.CounterNames() {
		v, _ := reg.CounterValue(name)
		fmt.Fprintf(w, "  %-52s %d\n", name, v)
	}

	fmt.Fprintf(w, "\nsim-time histograms:\n")
	for _, name := range []string{"qos_rtsys_wait_micros", "qos_rtsys_config_micros",
		"qos_retrieval_impls_per_retrieval", "qos_alloc_nbest_depth"} {
		h, ok := snap.Histograms[name]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "  %-36s count %-5d sum %d\n", name, h.Count, h.Sum)
	}

	fmt.Fprintf(w, "\ntrace rings:\n")
	ringNames := make([]string, 0, len(snap.Rings))
	for name := range snap.Rings {
		ringNames = append(ringNames, name)
	}
	sort.Strings(ringNames)
	for _, name := range ringNames {
		r := snap.Rings[name]
		fmt.Fprintf(w, "  %-24s %d event(s) recorded, last %d retained\n",
			name, r.Total, len(r.Events))
	}

	fmt.Fprintf(w, "\nThe registry never reads the wall clock or an unseeded random\n")
	fmt.Fprintf(w, "source: timestamps are simulation microseconds supplied by the\n")
	fmt.Fprintf(w, "caller, so the numbers above are bit-exact across replays — the\n")
	fmt.Fprintf(w, "same property the paper's cycle counts rely on.\n")
	return nil
}
