package experiments

import (
	"fmt"
	"io"

	"qosalloc/internal/casebase"
	"qosalloc/internal/retrieval"
)

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Retrieval similarity example (FIR equalizer)",
		Paper: "S = 0.85 (FPGA), 0.96 (DSP, best), 0.43 (GP-Proc)",
		Run:   Table1,
	})
}

// Table1Data computes the paper's Table 1: per-implementation local
// similarities and globals for the fig. 3 request.
func Table1Data() ([]retrieval.Result, error) {
	cb, err := casebase.PaperCaseBase()
	if err != nil {
		return nil, err
	}
	e := retrieval.NewEngine(cb, retrieval.Options{KeepLocals: true})
	return e.RetrieveAll(casebase.PaperRequest())
}

// Table1 renders the reproduction of Table 1.
func Table1(w io.Writer) error {
	all, err := Table1Data()
	if err != nil {
		return err
	}
	cb, _ := casebase.PaperCaseBase()
	ft, _ := cb.Type(casebase.TypeFIREqualizer)
	for _, r := range all {
		im, _ := ft.Impl(r.Impl)
		fmt.Fprintf(w, "Impl ID=%d : %-8s  w=1/3\n", r.Impl, im.Target)
		fmt.Fprintf(w, "  %-3s %-6s %-6s %-6s %-6s %s\n", "i", "AReq", "ACB", "d", "dmax", "s_i")
		for _, l := range r.Locals {
			cbv := fmt.Sprintf("%d", l.Impl)
			if !l.Found {
				cbv = "-"
			}
			fmt.Fprintf(w, "  %-3d %-6d %-6s %-6d %-6d %.2f\n",
				l.ID, l.Req, cbv, absDiff(l.Req, l.Impl, l.Found), l.DMax, l.Sim)
		}
		marker := ""
		if r.Impl == all[0].Impl {
			marker = "   <-- best"
		}
		fmt.Fprintf(w, "  S_global = %.2f%s\n\n", r.Similarity, marker)
	}
	return nil
}

func absDiff(a, b uint16, found bool) int {
	if !found {
		return 0
	}
	if a > b {
		return int(a - b)
	}
	return int(b - a)
}
