package experiments

import (
	"fmt"
	"io"

	"qosalloc/internal/retrieval"
	"qosalloc/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "bypass",
		Title: "Bypass tokens on repeated function calls (§3)",
		Paper: "\"a kind of bypass-token ... so that only an availability check has to be done\"",
		Run:   Bypass,
	})
}

// BypassPoint is one sample of the repetition sweep.
type BypassPoint struct {
	RepeatFraction  float64
	Requests        int
	Retrievals      int
	TokenHits       int
	RetrievalsSaved float64 // fraction of retrievals avoided
}

// BypassSweep replays request streams with growing repetition through a
// token cache and counts the retrievals avoided.
func BypassSweep() ([]BypassPoint, error) {
	cb, reg, err := workload.GenCaseBase(workload.PaperScale())
	if err != nil {
		return nil, err
	}
	e := retrieval.NewEngine(cb, retrieval.Options{})
	var out []BypassPoint
	for _, rf := range []float64{0, 0.25, 0.5, 0.75, 0.9} {
		reqs, err := workload.GenRequests(cb, reg, workload.RequestStreamSpec{
			N: 400, ConstraintsPer: 4, RepeatFraction: rf, Seed: 77,
		})
		if err != nil {
			return nil, err
		}
		tc := retrieval.NewTokenCache()
		pt := BypassPoint{RepeatFraction: rf, Requests: len(reqs)}
		for _, req := range reqs {
			if _, ok := tc.Lookup(req); ok {
				pt.TokenHits++
				continue
			}
			best, err := e.Retrieve(req)
			if err != nil {
				return nil, err
			}
			pt.Retrievals++
			tc.Store(req, retrieval.Token{Type: req.Type, Impl: best.Impl, Similarity: best.Similarity})
		}
		pt.RetrievalsSaved = float64(pt.TokenHits) / float64(pt.Requests)
		out = append(out, pt)
	}
	return out, nil
}

// Bypass renders the E9 sweep.
func Bypass(w io.Writer) error {
	pts, err := BypassSweep()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %9s %11s %10s %8s\n", "repeat", "requests", "retrievals", "token hits", "saved")
	for _, p := range pts {
		fmt.Fprintf(w, "%-8.2f %9d %11d %10d %7.1f%%\n",
			p.RepeatFraction, p.Requests, p.Retrievals, p.TokenHits, 100*p.RetrievalsSaved)
	}
	fmt.Fprintf(w, "\nEvery repeated call skips the retrieval scan entirely; only the\n")
	fmt.Fprintf(w, "availability check remains, as §3 sketches.\n")
	return nil
}
