// Package experiments regenerates every quantitative table and figure of
// the paper (DESIGN.md §4, experiments E1–E10). Each experiment is a
// function from parameters to a data struct plus a formatter, so the
// same code backs the cmd/repro CLI, the test suite's assertions and the
// root-level benchmarks.
package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is one registered reproduction driver.
type Experiment struct {
	ID    string
	Title string
	Paper string // what the paper reports, for side-by-side reading
	Run   func(w io.Writer) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the registered experiments sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment in ID order, writing a header per
// experiment.
func RunAll(w io.Writer) error {
	for _, e := range All() {
		fmt.Fprintf(w, "\n=== %s — %s ===\n", e.ID, e.Title)
		fmt.Fprintf(w, "    paper: %s\n\n", e.Paper)
		if err := e.Run(w); err != nil {
			return fmt.Errorf("experiment %s: %w", e.ID, err)
		}
	}
	return nil
}
