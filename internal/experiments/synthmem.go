package experiments

import (
	"fmt"
	"io"

	"qosalloc/internal/memlist"
	"qosalloc/internal/synth"
	"qosalloc/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "table2",
		Title: "Synthesis results of the retrieval unit on XC2V3000",
		Paper: "441 CLB slices (3 %), 2 MULT18X18 (2 %), 2 BRAM (2 %), 75 MHz",
		Run:   Table2,
	})
	register(Experiment{
		ID:    "table3",
		Title: "Case-base memory consumption at the paper's capacity",
		Paper: "case base ≈4.5 kB, request 64 bytes (15 types × 10 impls × 10 attrs)",
		Run:   Table3,
	})
}

// Table2Report computes the synthesis estimate behind Table 2.
func Table2Report() synth.Report {
	return synth.Estimate(synth.RetrievalUnitNetlist(13), synth.XC2V3000, synth.VirtexII())
}

// Table2 renders the synthesis reproduction, including the structural
// (hand-RTL quality) estimate the generated flow inflates.
func Table2(w io.Writer) error {
	r := Table2Report()
	fmt.Fprint(w, r.String())
	fmt.Fprintf(w, "  structural estimate without JVHDLgen overhead: %d slices\n", r.RawSlices)
	fmt.Fprintf(w, "  netlist: %d FFs, %d LUT4s, %d FSM states\n",
		r.Netlist.FlipFlops, r.Netlist.LUT4s, r.Netlist.FSMStates)
	for _, it := range r.Netlist.Items {
		fmt.Fprintf(w, "    %-34s %4d FF %4d LUT\n", it.What, it.FFs, it.LUTs)
	}
	return nil
}

// Table3Data computes the memory figures at the Table 3 capacity point,
// and verifies the closed form against a real encoding of a generated
// case base of exactly that shape.
func Table3Data() (memlist.MemoryReport, int, error) {
	rep := memlist.Report(15, 10, 10, 10, 10)
	cb, _, err := workload.GenCaseBase(workload.PaperScale())
	if err != nil {
		return rep, 0, err
	}
	img, err := memlist.EncodeTree(cb)
	if err != nil {
		return rep, 0, err
	}
	return rep, img.Size(), nil
}

// Table3 renders the memory-consumption reproduction.
func Table3(w io.Writer) error {
	rep, measured, err := Table3Data()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Types of basic functions in total:   15\n")
	fmt.Fprintf(w, "Implementations per function type:   10\n")
	fmt.Fprintf(w, "Attributes per Implementation:       10\n")
	fmt.Fprintf(w, "Different types of attributes:       10\n")
	fmt.Fprintf(w, "Attributes per Request (worst case): 10\n\n")
	fmt.Fprintf(w, "Memory consumption of request:    %4d bytes   (paper: 64 bytes)\n", rep.RequestBytes)
	fmt.Fprintf(w, "Memory consumption of case-base:  %4d bytes   (paper: ~4.5 kB)\n", rep.TreeBytes)
	fmt.Fprintf(w, "  encoder cross-check (generated 15x10x10 base): %d bytes\n", measured)
	fmt.Fprintf(w, "  supplemental list:              %4d bytes\n", rep.SupplementalBytes)
	fmt.Fprintf(w, "Note: the fully pointer-linked fig. 5 layout with per-list NULL\n")
	fmt.Fprintf(w, "terminators needs %d 16-bit words; the paper's ~4.5 kB suggests a\n", rep.TreeWords)
	fmt.Fprintf(w, "denser packing whose exact layout the paper does not specify.\n")
	return nil
}
