package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestServeGoldenOutcome pins the exact replay outcome of the serve
// experiment: batch composition is pre-formed from the input order and
// placement runs in input order, so shard concurrency must never move
// these numbers. Drift here means the batching, dedup, or token-bypass
// behavior changed — a deliberate-change-only event.
func TestServeGoldenOutcome(t *testing.T) {
	out, err := ServeRun(ServeSpec{Requests: 240, Shards: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if out.Mismatches != 0 {
		t.Errorf("batched retrieval diverged from sequential %d time(s)", out.Mismatches)
	}
	if out.Retrieval.Batches != 23 || out.Retrieval.MaxBatch != 16 {
		t.Errorf("batches = %d, max %d; want 23, 16", out.Retrieval.Batches, out.Retrieval.MaxBatch)
	}
	if out.Retrieval.EngineRetrievals != 122 || out.Retrieval.DedupHits != 62 || out.Retrieval.TokenHits != 56 {
		t.Errorf("walks/dedup/tokens = %d/%d/%d, want 122/62/56",
			out.Retrieval.EngineRetrievals, out.Retrieval.DedupHits, out.Retrieval.TokenHits)
	}
	if out.Placed != 96 || out.NoFeasible != 144 || out.OtherErrors != 0 {
		t.Errorf("placed/noFeasible/other = %d/%d/%d, want 96/144/0",
			out.Placed, out.NoFeasible, out.OtherErrors)
	}
}

// TestServeShardCountInvariance checks the equivalence half is shard-
// count independent: resharding changes batch composition but never a
// result.
func TestServeShardCountInvariance(t *testing.T) {
	for _, shards := range []int{1, 8} {
		out, err := ServeRun(ServeSpec{Requests: 96, Shards: shards, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		if out.Mismatches != 0 {
			t.Errorf("shards=%d: %d mismatches", shards, out.Mismatches)
		}
	}
}

// TestServeRendersStableReport smoke-checks the printed report.
func TestServeRendersStableReport(t *testing.T) {
	var a, b bytes.Buffer
	if err := Serve(&a); err != nil {
		t.Fatal(err)
	}
	if err := Serve(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("serve report not replay-stable")
	}
	for _, want := range []string{
		"results differing from sequential   0",
		"walks saved",
		"placed                              96",
	} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("report missing %q", want)
		}
	}
}
