package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"reflect"

	"qosalloc/internal/alloc"
	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
	"qosalloc/internal/retrieval"
	"qosalloc/internal/rtsys"
	"qosalloc/internal/serve"
	"qosalloc/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "serve",
		Title: "Service layer: sharded micro-batch retrieval equals sequential, deterministically",
		Paper: "§3 system model scaled out — many concurrent applications against one allocation manager, with the bypass-token shortcut amortized across clients",
		Run:   Serve,
	})
}

// ServeSpec parameterizes the service-layer replay.
type ServeSpec struct {
	// Requests is the synthetic stream length. Zero means 240.
	Requests int
	// Shards is the service partition count. Zero means 4.
	Shards int
	// Seed drives the workload.
	Seed int64
}

// ServeOutcome is the deterministic result of one replay: batch
// composition and placement decisions depend only on the spec, never on
// goroutine interleaving, so every field is replay-stable.
type ServeOutcome struct {
	Requests    int
	Mismatches  int // batched results differing from sequential retrieval
	Retrieval   serve.Stats
	Placed      int
	NoFeasible  int
	OtherErrors int
}

// ServeRun drives the serve experiment: phase A checks every batched
// retrieval against a plain sequential engine walk; phase B allocates
// the same stream in batches with releases between chunks.
func ServeRun(spec ServeSpec) (ServeOutcome, error) {
	if spec.Requests <= 0 {
		spec.Requests = 240
	}
	if spec.Shards <= 0 {
		spec.Shards = 4
	}
	out := ServeOutcome{Requests: spec.Requests}

	cb, areg, err := workload.GenCaseBase(workload.PaperScale())
	if err != nil {
		return out, err
	}
	reqs, err := workload.GenRequests(cb, areg, workload.RequestStreamSpec{
		N: spec.Requests, ConstraintsPer: 4, RepeatFraction: 0.4, Seed: spec.Seed,
	})
	if err != nil {
		return out, err
	}
	newSystem := func() (*rtsys.System, error) {
		repo := device.NewRepository(20)
		if err := repo.PopulateFromCaseBase(cb); err != nil {
			return nil, err
		}
		slots := []device.Slot{
			{Slices: 1500, BRAMs: 8, Multipliers: 16},
			{Slices: 1500, BRAMs: 8, Multipliers: 16},
		}
		return rtsys.NewSystem(repo,
			device.NewFPGA("fpga0", slots, 66),
			device.NewProcessor("dsp0", casebase.TargetDSP, 2000, 1<<20),
			device.NewProcessor("gpp0", casebase.TargetGPP, 2000, 1<<21),
		), nil
	}

	// Phase A: batched retrieval must be bit-identical to a sequential
	// engine walk over the same stream.
	sys, err := newSystem()
	if err != nil {
		return out, err
	}
	svc := serve.New(cb, sys, serve.Config{Shards: spec.Shards, MaxBatch: 16})
	defer svc.Close()
	eng := retrieval.NewEngine(cb, retrieval.Options{})
	ctx := context.Background()
	for lo := 0; lo < len(reqs); lo += 48 {
		hi := min(lo+48, len(reqs))
		got, err := svc.RetrieveBatch(ctx, reqs[lo:hi])
		if err != nil {
			return out, err
		}
		for k, o := range got {
			want, wantErr := eng.Retrieve(reqs[lo+k])
			if !reflect.DeepEqual(o.Result, want) || (o.Err == nil) != (wantErr == nil) {
				out.Mismatches++
			}
		}
	}
	out.Retrieval = svc.Stats()

	// Phase B: batched allocation of the same stream on a fresh
	// platform, releasing each chunk's placements before the next.
	sysB, err := newSystem()
	if err != nil {
		return out, err
	}
	svcB := serve.New(cb, sysB, serve.Config{
		Shards:  spec.Shards,
		Manager: alloc.Options{NBest: 4, AllowPreemption: true},
	})
	defer svcB.Close()
	for lo := 0; lo < len(reqs); lo += 32 {
		hi := min(lo+32, len(reqs))
		placed, err := svcB.AllocateBatch(ctx, fmt.Sprintf("app%d", lo/32), reqs[lo:hi], 5)
		if err != nil {
			return out, err
		}
		for _, r := range placed {
			switch {
			case r.Err == nil:
				out.Placed++
				if err := svcB.Release(r.Decision.Task.ID); err != nil {
					return out, err
				}
			case isNoFeasibleErr(r.Err):
				out.NoFeasible++
			default:
				out.OtherErrors++
			}
		}
		if err := svcB.Advance(svcB.System().Now() + 1000); err != nil {
			return out, err
		}
	}
	return out, nil
}

func isNoFeasibleErr(err error) bool {
	var nf *alloc.ErrNoFeasible
	return errors.As(err, &nf)
}

// Serve renders the service-layer replay. Every line is replay-stable:
// pre-formed batch composition and in-order placement make the
// concurrent service deterministic for a deterministic stream.
func Serve(w io.Writer) error {
	spec := ServeSpec{Requests: 240, Shards: 4, Seed: 9}
	out, err := ServeRun(spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "service layer over the Table 3 case base (%d requests, %d shards, seed %d):\n\n",
		out.Requests, spec.Shards, spec.Seed)
	fmt.Fprintf(w, "phase A — batched retrieval vs sequential engine:\n")
	fmt.Fprintf(w, "  results differing from sequential   %d\n", out.Mismatches)
	fmt.Fprintf(w, "  micro-batches                       %d\n", out.Retrieval.Batches)
	fmt.Fprintf(w, "  largest batch coalesced             %d\n", out.Retrieval.MaxBatch)
	fmt.Fprintf(w, "  engine list walks                   %d\n", out.Retrieval.EngineRetrievals)
	fmt.Fprintf(w, "  singleflight dedup hits             %d\n", out.Retrieval.DedupHits)
	fmt.Fprintf(w, "  bypass-token hits                   %d\n", out.Retrieval.TokenHits)
	saved := out.Retrieval.DedupHits + out.Retrieval.TokenHits
	fmt.Fprintf(w, "  walks saved                         %d of %d (%.0f%%)\n",
		saved, out.Requests, 100*float64(saved)/float64(out.Requests))
	fmt.Fprintf(w, "\nphase B — batched allocation with releases between chunks:\n")
	fmt.Fprintf(w, "  placed                              %d\n", out.Placed)
	fmt.Fprintf(w, "  no feasible variant                 %d\n", out.NoFeasible)
	fmt.Fprintf(w, "  other errors                        %d\n", out.OtherErrors)
	fmt.Fprintf(w, "\nBatch composition is pre-formed from the input order and placement\n")
	fmt.Fprintf(w, "runs in input order under one lock, so these numbers are identical\n")
	fmt.Fprintf(w, "on every replay — shard parallelism never leaks into the outcome.\n")
	return nil
}
