package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"qosalloc/internal/alloc"
	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
	"qosalloc/internal/rtsys"
	"qosalloc/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "latency",
		Title: "Function-ready latency by execution target",
		Paper: "§1: soft time constraints; §3: bitstream/opcode fetch from the FLASH repository gates instantiation",
		Run:   Latency,
	})
}

// LatencyStats summarizes ready-latency for one target class.
type LatencyStats struct {
	Target casebase.Target
	Count  int
	MeanUs float64
	P50Us  device.Micros
	P95Us  device.Micros
	MaxUs  device.Micros
}

// LatencyRun replays a Poisson-like arrival stream and measures, per
// execution target, how long a granted function takes to become usable:
// allocation decision + repository fetch + reconfiguration or program
// load. The split by target shows the paper's fundamental trade —
// hardware variants match QoS best but pay tens of milliseconds of
// bitstream transfer, software variants start in microseconds.
func LatencyRun() ([]LatencyStats, error) {
	cb, reg, err := workload.GenCaseBase(workload.PaperScale())
	if err != nil {
		return nil, err
	}
	reqs, err := workload.GenRequests(cb, reg, workload.RequestStreamSpec{
		N: 300, ConstraintsPer: 4, Seed: 909,
	})
	if err != nil {
		return nil, err
	}
	repo := device.NewRepository(20)
	if err := repo.PopulateFromCaseBase(cb); err != nil {
		return nil, err
	}
	sys := rtsys.NewSystem(repo,
		device.NewFPGA("fpga0", []device.Slot{
			{Slices: 1500, BRAMs: 8, Multipliers: 16},
			{Slices: 1500, BRAMs: 8, Multipliers: 16},
			{Slices: 1500, BRAMs: 8, Multipliers: 16},
		}, 66),
		device.NewProcessor("dsp0", casebase.TargetDSP, 2000, 1<<20),
		device.NewProcessor("gpp0", casebase.TargetGPP, 2000, 1<<21),
	)
	m := alloc.New(cb, sys, alloc.Options{NBest: 3})

	// Exponential-ish inter-arrival times (mean 1.5 ms), deterministic
	// seed.
	r := rand.New(rand.NewSource(31))
	lat := map[casebase.Target][]device.Micros{}
	var live []rtsys.TaskID
	for i, req := range reqs {
		dt := device.Micros(1 + r.ExpFloat64()*1500)
		if err := sys.Advance(dt); err != nil {
			return nil, err
		}
		if len(live) >= 8 {
			_ = m.Release(live[0])
			live = live[1:]
		}
		d, err := m.Request(fmt.Sprintf("a%d", i), req, 5)
		if err != nil {
			continue
		}
		live = append(live, d.Task.ID)
		lat[d.Target] = append(lat[d.Target], d.ReadyAt-sys.Now())
	}

	var out []LatencyStats
	for _, target := range []casebase.Target{casebase.TargetFPGA, casebase.TargetDSP, casebase.TargetGPP} {
		ls := lat[target]
		if len(ls) == 0 {
			continue
		}
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		var sum float64
		for _, v := range ls {
			sum += float64(v)
		}
		out = append(out, LatencyStats{
			Target: target,
			Count:  len(ls),
			MeanUs: sum / float64(len(ls)),
			P50Us:  ls[len(ls)/2],
			P95Us:  ls[len(ls)*95/100],
			MaxUs:  ls[len(ls)-1],
		})
	}
	return out, nil
}

// Latency renders the E17 distribution.
func Latency(w io.Writer) error {
	stats, err := LatencyRun()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-9s %7s %12s %10s %10s %10s\n", "target", "placed", "mean", "p50", "p95", "max")
	for _, s := range stats {
		fmt.Fprintf(w, "%-9s %7d %9.0f us %7d us %7d us %7d us\n",
			s.Target, s.Count, s.MeanUs, s.P50Us, s.P95Us, s.MaxUs)
	}
	fmt.Fprintf(w, "\nHardware variants pay the FLASH fetch plus the serialized\n")
	fmt.Fprintf(w, "reconfiguration port (milliseconds); software variants start in\n")
	fmt.Fprintf(w, "tens to hundreds of microseconds — the reason the §3 bypass token\n")
	fmt.Fprintf(w, "and the feasibility check against already-resident functions matter.\n")
	return nil
}
