package experiments

import (
	"fmt"
	"io"

	"qosalloc/internal/alloc"
	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
	"qosalloc/internal/rtsys"
	"qosalloc/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "powertrade",
		Title: "Similarity-vs-power trade-off of the allocation policy",
		Paper: "§1: \"we conceive to gain increases of system-performance and energy/power-efficiency\"",
		Run:   PowerTrade,
	})
}

// PowerTradePoint is one point of the Pareto sweep.
type PowerTradePoint struct {
	PowerWeight float64
	MeanSim     float64
	MeanPowerW  float64
	Placed      int
	Failed      int
}

// PowerTradeSweep replays the same stream with growing power weight: at
// zero the manager ranks purely by similarity (the paper's policy);
// larger weights sacrifice similarity for lower-power variants, tracing
// the quality/power Pareto front the introduction's efficiency goal
// implies.
func PowerTradeSweep() ([]PowerTradePoint, error) {
	cb, reg, err := workload.GenCaseBase(workload.PaperScale())
	if err != nil {
		return nil, err
	}
	reqs, err := workload.GenRequests(cb, reg, workload.RequestStreamSpec{
		N: 200, ConstraintsPer: 4, Seed: 616,
	})
	if err != nil {
		return nil, err
	}

	var out []PowerTradePoint
	for _, pw := range []float64{0, 0.5, 1, 2, 4} {
		repo := device.NewRepository(20)
		if err := repo.PopulateFromCaseBase(cb); err != nil {
			return nil, err
		}
		sys := rtsys.NewSystem(repo,
			device.NewFPGA("fpga0", []device.Slot{
				{Slices: 1500, BRAMs: 8, Multipliers: 16},
				{Slices: 1500, BRAMs: 8, Multipliers: 16},
				{Slices: 1500, BRAMs: 8, Multipliers: 16},
			}, 66),
			device.NewProcessor("dsp0", casebase.TargetDSP, 2000, 1<<20),
			device.NewProcessor("gpp0", casebase.TargetGPP, 2000, 1<<21),
		)
		m := alloc.New(cb, sys, alloc.Options{NBest: 3, PowerWeight: pw})

		pt := PowerTradePoint{PowerWeight: pw}
		var simSum, powSum float64
		var live []rtsys.TaskID
		for i, req := range reqs {
			_ = sys.Advance(1000)
			if len(live) >= 12 {
				_ = m.Release(live[0])
				live = live[1:]
			}
			d, err := m.Request(fmt.Sprintf("a%d", i), req, 5)
			if err != nil {
				pt.Failed++
			} else {
				pt.Placed++
				simSum += d.Similarity
				live = append(live, d.Task.ID)
			}
			powSum += float64(sys.PowerMW())
		}
		if pt.Placed > 0 {
			pt.MeanSim = simSum / float64(pt.Placed)
		}
		pt.MeanPowerW = powSum / float64(len(reqs)) / 1000
		out = append(out, pt)
	}
	return out, nil
}

// PowerTrade renders the sweep.
func PowerTrade(w io.Writer) error {
	pts, err := PowerTradeSweep()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-12s %10s %12s %8s %8s\n", "power weight", "mean S", "mean power", "placed", "failed")
	for _, p := range pts {
		fmt.Fprintf(w, "%-12.1f %10.3f %9.2f W %8d %8d\n",
			p.PowerWeight, p.MeanSim, p.MeanPowerW, p.Placed, p.Failed)
	}
	fmt.Fprintf(w, "\nWeight 0 is the paper's pure-similarity ranking; growing weights\n")
	fmt.Fprintf(w, "buy platform power with QoS similarity, tracing the Pareto front\n")
	fmt.Fprintf(w, "behind the introduction's energy-efficiency motivation.\n")
	return nil
}
