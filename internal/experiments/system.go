package experiments

import (
	"fmt"
	"io"
	"sort"

	"qosalloc/internal/alloc"
	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
	"qosalloc/internal/rtsys"
	"qosalloc/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "system",
		Title: "End-to-end allocation of the fig. 1 application mix",
		Paper: "fig. 1 platform: FPGAs + DSP + CPU, QoS negotiation, preemption of lower-priority tasks",
		Run:   System,
	})
}

// SystemResult summarizes the end-to-end run.
type SystemResult struct {
	Decisions   []SystemDecision
	Failures    int
	Preemptions int
	PeakPowerMW int
	Completed   int
}

// SystemDecision is one timeline entry.
type SystemDecision struct {
	At         device.Micros
	App        string
	Type       casebase.TypeID
	Impl       casebase.ImplID
	Device     device.ID
	Similarity float64
	ReadyAt    device.Micros
	Preempted  int
	ViaToken   bool
}

// SystemRun plays the fig. 1 application mix against a two-FPGA + DSP +
// GPP platform through the allocation manager.
func SystemRun() (SystemResult, error) {
	cb, _, err := workload.InfotainmentCaseBase()
	if err != nil {
		return SystemResult{}, err
	}
	repo := device.NewRepository(20)
	if err := repo.PopulateFromCaseBase(cb); err != nil {
		return SystemResult{}, err
	}
	fpga0 := device.NewFPGA("fpga0", []device.Slot{
		{Slices: 1500, BRAMs: 8, Multipliers: 16},
		{Slices: 1500, BRAMs: 8, Multipliers: 16},
	}, 66)
	fpga1 := device.NewFPGA("fpga1", []device.Slot{
		{Slices: 1000, BRAMs: 4, Multipliers: 8},
	}, 66)
	dsp := device.NewProcessor("dsp0", casebase.TargetDSP, 1000, 192*1024)
	gpp := device.NewProcessor("gpp0", casebase.TargetGPP, 1000, 512*1024)
	sys := rtsys.NewSystem(repo, fpga0, fpga1, dsp, gpp)
	m := alloc.New(cb, sys, alloc.Options{
		Threshold: 0.3, NBest: 3, AllowPreemption: true, UseBypassTokens: true,
	})

	// Flatten the app scripts into a time-ordered event list.
	type ev struct {
		at   device.Micros
		app  string
		prio int
		req  casebase.Request
		hold device.Micros
	}
	var evs []ev
	for _, app := range workload.Apps() {
		for _, st := range app.Steps {
			evs = append(evs, ev{at: st.At, app: app.Name, prio: app.Prio, req: st.Req, hold: st.Hold})
		}
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].at < evs[j].at })

	type lease struct {
		task rtsys.TaskID
		end  device.Micros
	}
	var leases []lease
	var res SystemResult

	release := func(now device.Micros) {
		kept := leases[:0]
		for _, l := range leases {
			if l.end <= now {
				t, ok := sys.Task(l.task)
				if ok && t.State != rtsys.Done {
					_ = m.Release(l.task)
				}
				continue
			}
			kept = append(kept, l)
		}
		leases = kept
		// Freed capacity may readmit preempted work.
		m.ReplacePending()
	}

	for _, e := range evs {
		if err := sys.AdvanceTo(e.at); err != nil {
			return res, err
		}
		release(e.at)
		d, err := m.Request(e.app, e.req, e.prio)
		if err != nil {
			res.Failures++
			continue
		}
		leases = append(leases, lease{task: d.Task.ID, end: e.at + e.hold})
		res.Decisions = append(res.Decisions, SystemDecision{
			At: e.at, App: e.app, Type: e.req.Type, Impl: d.Impl,
			Device: d.Device, Similarity: d.Similarity, ReadyAt: d.ReadyAt,
			Preempted: len(d.Preempted), ViaToken: d.ViaToken,
		})
		if p := sys.PowerMW(); p > res.PeakPowerMW {
			res.PeakPowerMW = p
		}
	}
	// Drain.
	if err := sys.AdvanceTo(2_000_000); err != nil {
		return res, err
	}
	release(2_000_000)
	res.Preemptions = sys.Metrics().Preemptions
	res.Completed = sys.Metrics().Completed
	return res, nil
}

// System renders the E10 timeline.
func System(w io.Writer) error {
	res, err := SystemRun()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %-15s %-6s %-6s %-8s %6s %10s %s\n",
		"t (us)", "app", "type", "impl", "device", "S", "ready(us)", "notes")
	for _, d := range res.Decisions {
		notes := ""
		if d.Preempted > 0 {
			notes = fmt.Sprintf("preempted %d task(s)", d.Preempted)
		}
		if d.ViaToken {
			notes += " [bypass token]"
		}
		fmt.Fprintf(w, "%-10d %-15s %-6d %-6d %-8s %6.2f %10d %s\n",
			d.At, d.App, d.Type, d.Impl, d.Device, d.Similarity, d.ReadyAt, notes)
	}
	fmt.Fprintf(w, "\nallocations: %d   failures: %d   preemptions: %d   completed: %d   peak power: %d mW\n",
		len(res.Decisions), res.Failures, res.Preemptions, res.Completed, res.PeakPowerMW)
	return nil
}
