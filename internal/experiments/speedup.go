package experiments

import (
	"fmt"
	"io"

	"qosalloc/internal/hwsim"
	"qosalloc/internal/mb32"
	"qosalloc/internal/swret"
	"qosalloc/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "speedup",
		Title: "Hardware vs MicroBlaze software retrieval at equal clock",
		Paper: "hardware ≈8.5x faster than the C version at 66 MHz",
		Run:   Speedup,
	})
}

// SpeedupPoint is one sweep sample.
type SpeedupPoint struct {
	Types, Impls, Attrs    int
	HWCycles, SWCycles     uint64
	SWBarrelCycles         uint64 // software on a core with barrel shifter
	Speedup, BarrelSpeedup float64
}

// SpeedupSweep measures HW and SW retrieval cycles over case-base
// shapes, averaged over a short request stream per shape.
func SpeedupSweep() ([]SpeedupPoint, error) {
	shapes := []struct{ t, i, a int }{
		{1, 3, 3}, // the paper's §3 example scale
		{5, 5, 5},
		{15, 10, 10}, // the Table 3 capacity point
		{15, 10, 4},
		{30, 10, 10},
	}
	base := swret.NewRunner()
	barrel := swret.NewRunnerWithCosts(mb32.MicroBlazeCosts())
	var out []SpeedupPoint
	for _, sh := range shapes {
		cb, reg, err := workload.GenCaseBase(workload.CaseBaseSpec{
			Types: sh.t, ImplsPerType: sh.i, AttrsPerImpl: sh.a,
			AttrUniverse: max(sh.a, 10), Seed: 11,
		})
		if err != nil {
			return nil, err
		}
		reqs, err := workload.GenRequests(cb, reg, workload.RequestStreamSpec{
			N: 10, ConstraintsPer: min(sh.a, 6), Seed: 5,
		})
		if err != nil {
			return nil, err
		}
		var pt SpeedupPoint
		pt.Types, pt.Impls, pt.Attrs = sh.t, sh.i, sh.a
		for _, req := range reqs {
			hw, err := hwsim.Retrieve(cb, req, hwsim.Config{})
			if err != nil {
				return nil, err
			}
			sw, err := base.Retrieve(cb, req)
			if err != nil {
				return nil, err
			}
			sb, err := barrel.Retrieve(cb, req)
			if err != nil {
				return nil, err
			}
			if hw.ImplID != sw.ImplID || hw.Sim != sw.Sim {
				return nil, fmt.Errorf("speedup: hw/sw disagreement at shape %+v", sh)
			}
			pt.HWCycles += hw.Cycles
			pt.SWCycles += sw.Cycles
			pt.SWBarrelCycles += sb.Cycles
		}
		n := uint64(len(reqs))
		pt.HWCycles /= n
		pt.SWCycles /= n
		pt.SWBarrelCycles /= n
		pt.Speedup = float64(pt.SWCycles) / float64(pt.HWCycles)
		pt.BarrelSpeedup = float64(pt.SWBarrelCycles) / float64(pt.HWCycles)
		out = append(out, pt)
	}
	return out, nil
}

// Speedup renders the sweep, including wall-clock at the paper's
// frequencies (both at 66 MHz for the like-for-like comparison).
func Speedup(w io.Writer) error {
	pts, err := SpeedupSweep()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-18s %10s %10s %10s %9s %9s\n",
		"shape (TxIxA)", "HW cyc", "SW cyc", "SW(barrel)", "speedup", "(barrel)")
	for _, p := range pts {
		fmt.Fprintf(w, "%3dx%-3dx%-9d %10d %10d %10d %8.2fx %8.2fx\n",
			p.Types, p.Impls, p.Attrs, p.HWCycles, p.SWCycles, p.SWBarrelCycles,
			p.Speedup, p.BarrelSpeedup)
	}
	last := pts[len(pts)-1]
	usHW := float64(last.HWCycles) / 66.0
	usSW := float64(last.SWCycles) / 66.0
	fmt.Fprintf(w, "\nAt 66 MHz, largest shape: HW %.1f us, SW %.1f us per retrieval.\n", usHW, usSW)
	fmt.Fprintf(w, "Paper reports ~8.5x for compiler-generated C on MicroBlaze; our\n")
	fmt.Fprintf(w, "hand-written assembly baseline is tighter, so the measured ratio is\n")
	fmt.Fprintf(w, "a lower bound on the paper's setting. Shape preserved: the hardware\n")
	fmt.Fprintf(w, "unit wins by roughly an order of magnitude's half at every scale.\n")
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
