package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"qosalloc/internal/alloc"
	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
	"qosalloc/internal/fault"
	"qosalloc/internal/rtsys"
	"qosalloc/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "faults",
		Title: "Allocation survival under an injected fault storm",
		Paper: "§2: \"an alternative implementation can be offered to the calling application\" — here forced by device faults instead of load",
		Run:   FaultSweep,
	})
}

// FaultSweepSpec parameterizes the sweep.
type FaultSweepSpec struct {
	// Requests is the synthetic stream length. Zero means 400.
	Requests int
	// Seed drives both the workload and, when Plan is nil, the storm.
	Seed int64
	// Plan overrides the generated storm with a scripted schedule.
	Plan *fault.Plan
}

// FaultSweepData summarizes one sweep.
type FaultSweepData struct {
	Requests int
	Granted  int
	Denied   int // ordinary admission failures (no capacity/threshold)

	EventsApplied int
	NoVictim      int // faults that hit idle capacity
	Stranded      int // tasks knocked off their device
	ConfigErrors  int
	SEUs          int
	Retries       int

	Recovered int // stranded tasks re-placed by degrade-and-retry
	Degraded  int // …of which on a worse-matching variant
	Rejected  int // stranded tasks rejected with a DegradationReport
	Dropped   int // stranded tasks left unresolved — must be zero

	// Recovery latency: fault hit → substitute placement ready.
	RecMeanUs float64
	RecP95Us  device.Micros
	RecMaxUs  device.Micros

	// LostAttrsTotal sums the QoS attributes named across all
	// degradations and rejections — the "what did we lose" signal.
	LostAttrsTotal int
}

// FaultSweepRun replays a request stream while a fault storm (or a
// scripted plan) kills slots and devices and corrupts configurations,
// then lets the allocation layer's degrade-and-retry policy re-place or
// reject every stranded task. Fully deterministic for a fixed spec.
func FaultSweepRun(spec FaultSweepSpec) (FaultSweepData, error) {
	if spec.Requests <= 0 {
		spec.Requests = 400
	}
	var d FaultSweepData

	cb, reg, err := workload.GenCaseBase(workload.PaperScale())
	if err != nil {
		return d, err
	}
	reqs, err := workload.GenRequests(cb, reg, workload.RequestStreamSpec{
		N: spec.Requests, ConstraintsPer: 4, RepeatFraction: 0.3, Seed: spec.Seed,
	})
	if err != nil {
		return d, err
	}
	repo := device.NewRepository(20)
	if err := repo.PopulateFromCaseBase(cb); err != nil {
		return d, err
	}
	slots := []device.Slot{
		{Slices: 1500, BRAMs: 8, Multipliers: 16},
		{Slices: 1500, BRAMs: 8, Multipliers: 16},
		{Slices: 1500, BRAMs: 8, Multipliers: 16},
	}
	sys := rtsys.NewSystem(repo,
		device.NewFPGA("fpga0", slots, 66),
		device.NewFPGA("fpga1", slots, 66),
		device.NewProcessor("dsp0", casebase.TargetDSP, 2000, 1<<20),
		device.NewProcessor("gpp0", casebase.TargetGPP, 2000, 1<<21),
	)
	m := alloc.New(cb, sys, alloc.Options{
		NBest: 5, AllowPreemption: true, UseBypassTokens: true,
	})

	plan := fault.Plan{}
	if spec.Plan != nil {
		plan = *spec.Plan
	} else {
		r := rand.New(rand.NewSource(spec.Seed))
		horizon := device.Micros(spec.Requests) * 1000
		plan, err = fault.Storm(r, fault.StormSpec{
			Horizon:   horizon,
			SlotFails: 3, DeviceFails: 1, ConfigErrors: 8, SEUs: 6,
			Targets: []fault.StormTarget{
				{Device: "fpga0", Slots: len(slots)},
				{Device: "fpga1", Slots: len(slots)},
				{Device: "dsp0"},
			},
		})
		if err != nil {
			return d, err
		}
	}
	inj := fault.NewInjector(sys, plan)

	var lats []device.Micros
	absorb := func(recs []alloc.Recovery) {
		for _, rec := range recs {
			switch {
			case rec.Decision != nil:
				d.Recovered++
				lats = append(lats, rec.Decision.ReadyAt-sys.Now())
				if rec.Decision.Degraded != nil {
					d.Degraded++
					d.LostAttrsTotal += len(rec.Decision.Degraded.LostAttrs)
				}
			case rec.Report != nil:
				d.Rejected++
				d.LostAttrsTotal += len(rec.Report.LostAttrs)
			}
		}
	}

	var live []rtsys.TaskID
	for i, req := range reqs {
		applied, err := inj.AdvanceTo(device.Micros(i+1) * 1000)
		if err != nil {
			return d, err
		}
		for _, a := range applied {
			d.EventsApplied++
			if a.NoVictim {
				d.NoVictim++
			}
		}
		if len(applied) > 0 {
			absorb(m.RecoverFromFaults())
		}
		if len(live) >= 12 {
			_ = m.Release(live[0])
			live = live[1:]
			m.ReplacePending()
		}
		dec, err := m.Request(fmt.Sprintf("app%d", i%8), req, 1+i%9)
		if err != nil {
			d.Denied++
			continue
		}
		d.Granted++
		live = append(live, dec.Task.ID)
	}
	// Drain: fire any remaining faults, give retries time to resolve,
	// run a final recovery sweep.
	if _, err := inj.AdvanceTo(sys.Now() + 100_000); err != nil {
		return d, err
	}
	absorb(m.RecoverFromFaults())

	mt := sys.Metrics()
	d.Requests = len(reqs)
	d.Stranded = mt.Stranded
	d.ConfigErrors = mt.ConfigErrors
	d.SEUs = mt.SEUs
	d.Retries = mt.Retries
	for _, t := range sys.Tasks() {
		if t.State == rtsys.Failed || (t.State == rtsys.Pending && t.Faults > 0) {
			d.Dropped++
		}
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		var sum float64
		for _, l := range lats {
			sum += float64(l)
		}
		d.RecMeanUs = sum / float64(len(lats))
		d.RecP95Us = lats[len(lats)*95/100]
		d.RecMaxUs = lats[len(lats)-1]
	}
	return d, nil
}

// FaultSweep renders the sweep.
func FaultSweep(w io.Writer) error {
	d, err := FaultSweepRun(FaultSweepSpec{Seed: 7})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "requests:            %d (granted %d, denied %d)\n", d.Requests, d.Granted, d.Denied)
	fmt.Fprintf(w, "faults applied:      %d (%d hit idle capacity)\n", d.EventsApplied, d.NoVictim)
	fmt.Fprintf(w, "  config errors:     %d (reconfig retries fired: %d)\n", d.ConfigErrors, d.Retries)
	fmt.Fprintf(w, "  SEU hits:          %d\n", d.SEUs)
	fmt.Fprintf(w, "tasks stranded:      %d\n", d.Stranded)
	fmt.Fprintf(w, "  re-placed:         %d (degraded: %d)\n", d.Recovered, d.Degraded)
	fmt.Fprintf(w, "  rejected w/report: %d\n", d.Rejected)
	fmt.Fprintf(w, "  dropped silently:  %d\n", d.Dropped)
	fmt.Fprintf(w, "QoS attrs lost:      %d (named across degradations/rejections)\n", d.LostAttrsTotal)
	if d.Recovered > 0 {
		fmt.Fprintf(w, "recovery latency:    mean %.0f us, p95 %d us, max %d us\n",
			d.RecMeanUs, d.RecP95Us, d.RecMaxUs)
	}
	fmt.Fprintf(w, "\nEvery fault-stranded task is either re-placed on an alternative\n")
	fmt.Fprintf(w, "variant (falling down the similarity-ranked N-best list) or rejected\n")
	fmt.Fprintf(w, "with a structured DegradationReport naming the lost QoS attributes —\n")
	fmt.Fprintf(w, "the paper's negotiation contract, upheld under hardware failure.\n")
	return nil
}
