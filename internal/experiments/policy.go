package experiments

import (
	"fmt"
	"io"

	"qosalloc/internal/alloc"
	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
	"qosalloc/internal/retrieval"
	"qosalloc/internal/rtsys"
	"qosalloc/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "policy",
		Title: "QoS-aware allocation vs fixed-target baselines",
		Paper: "§1: fixed design-time targets are the \"weak points\"; run-time selection should gain performance and power efficiency",
		Run:   Policy,
	})
}

// PolicyResult aggregates one policy's run over a request stream.
type PolicyResult struct {
	Name       string
	Placed     int
	Failed     int
	MeanSim    float64 // mean QoS similarity of placed requests
	MeanPowerW float64 // time-averaged platform power, watts (sampled per request)
}

// PolicyRun replays the same request stream under three allocation
// policies on identical platforms:
//
//   - qos-cbr: the paper's approach — retrieval-ranked candidates,
//     feasibility-checked best-first;
//   - software-only: the conventional embedded baseline, every function
//     as a software task on the GPP (the §1 "slow software ... only"
//     weak point);
//   - first-fit: ignore QoS similarity, place the first variant (by
//     implementation ID) with free capacity.
func PolicyRun() ([]PolicyResult, error) {
	cb, reg, err := workload.GenCaseBase(workload.PaperScale())
	if err != nil {
		return nil, err
	}
	reqs, err := workload.GenRequests(cb, reg, workload.RequestStreamSpec{
		N: 200, ConstraintsPer: 4, Seed: 101,
	})
	if err != nil {
		return nil, err
	}
	eng := retrieval.NewEngine(cb, retrieval.Options{})

	makePlatform := func() *rtsys.System {
		repo := device.NewRepository(20)
		if err := repo.PopulateFromCaseBase(cb); err != nil {
			panic(err)
		}
		return rtsys.NewSystem(repo,
			device.NewFPGA("fpga0", []device.Slot{
				{Slices: 1500, BRAMs: 8, Multipliers: 16},
				{Slices: 1500, BRAMs: 8, Multipliers: 16},
				{Slices: 1500, BRAMs: 8, Multipliers: 16},
			}, 66),
			device.NewProcessor("dsp0", casebase.TargetDSP, 2000, 1<<20),
			device.NewProcessor("gpp0", casebase.TargetGPP, 2000, 1<<21),
		)
	}

	// similarityOf scores what a placed implementation delivers
	// against the request, measured with the paper's measure so all
	// policies are judged on the same scale.
	similarityOf := func(req casebase.Request, id casebase.ImplID) float64 {
		all, err := eng.RetrieveAll(req)
		if err != nil {
			return 0
		}
		for _, r := range all {
			if r.Impl == id {
				return r.Similarity
			}
		}
		return 0
	}

	var out []PolicyResult

	// Policy 1: the paper's QoS-CBR manager.
	{
		sys := makePlatform()
		m := alloc.New(cb, sys, alloc.Options{NBest: 3})
		res := PolicyResult{Name: "qos-cbr"}
		var simSum, powSum float64
		var live []rtsys.TaskID
		for i, req := range reqs {
			_ = sys.Advance(1000)
			if len(live) >= 12 {
				_ = m.Release(live[0])
				live = live[1:]
			}
			d, err := m.Request(fmt.Sprintf("a%d", i), req, 5)
			if err != nil {
				res.Failed++
			} else {
				res.Placed++
				simSum += d.Similarity
				live = append(live, d.Task.ID)
			}
			powSum += float64(sys.PowerMW())
		}
		res.MeanSim = simSum / float64(maxInt(res.Placed, 1))
		res.MeanPowerW = powSum / float64(len(reqs)) / 1000
		out = append(out, res)
	}

	// Policy 2 and 3: fixed strategies sharing a placement loop.
	type picker func(req casebase.Request, sys *rtsys.System) (*casebase.Implementation, device.Device)
	fixedPolicies := []struct {
		name string
		pick picker
	}{
		{"software-only", func(req casebase.Request, sys *rtsys.System) (*casebase.Implementation, device.Device) {
			ft, _ := cb.Type(req.Type)
			for i := range ft.Impls {
				im := &ft.Impls[i]
				if im.Target != casebase.TargetGPP {
					continue
				}
				for _, d := range sys.DevicesByKind(casebase.TargetGPP) {
					if d.CanPlace(im.Foot) {
						return im, d
					}
				}
			}
			return nil, nil
		}},
		{"first-fit", func(req casebase.Request, sys *rtsys.System) (*casebase.Implementation, device.Device) {
			ft, _ := cb.Type(req.Type)
			for i := range ft.Impls {
				im := &ft.Impls[i]
				for _, d := range sys.DevicesByKind(im.Target) {
					if d.CanPlace(im.Foot) {
						return im, d
					}
				}
			}
			return nil, nil
		}},
	}
	for _, pol := range fixedPolicies {
		sys := makePlatform()
		res := PolicyResult{Name: pol.name}
		var simSum, powSum float64
		var live []*rtsys.Task
		for i, req := range reqs {
			_ = sys.Advance(1000)
			if len(live) >= 12 {
				_ = sys.Complete(live[0])
				live = live[1:]
			}
			im, dev := pol.pick(req, sys)
			if im == nil {
				res.Failed++
			} else {
				task := sys.CreateTask(fmt.Sprintf("a%d", i), req.Type, 5)
				if err := sys.Place(task, dev, im); err != nil {
					res.Failed++
					_ = sys.Complete(task)
				} else {
					res.Placed++
					simSum += similarityOf(req, im.ID)
					live = append(live, task)
				}
			}
			powSum += float64(sys.PowerMW())
		}
		res.MeanSim = simSum / float64(maxInt(res.Placed, 1))
		res.MeanPowerW = powSum / float64(len(reqs)) / 1000
		out = append(out, res)
	}
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Policy renders the E12 comparison.
func Policy(w io.Writer) error {
	rs, err := PolicyRun()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-14s %8s %8s %10s %12s\n", "policy", "placed", "failed", "mean S", "mean power")
	for _, r := range rs {
		fmt.Fprintf(w, "%-14s %8d %8d %10.3f %9.2f W\n",
			r.Name, r.Placed, r.Failed, r.MeanSim, r.MeanPowerW)
	}
	fmt.Fprintf(w, "\nThe QoS-CBR manager delivers the highest satisfied-constraint\n")
	fmt.Fprintf(w, "similarity; software-only matches the §1 \"weak point\" baseline\n")
	fmt.Fprintf(w, "(every function as a slow software task) and first-fit shows what\n")
	fmt.Fprintf(w, "ignoring QoS costs even when hardware is used.\n")
	return nil
}
