package experiments

import (
	"fmt"
	"io"

	"qosalloc/internal/casebase"
	"qosalloc/internal/retrieval"
	"qosalloc/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "bitwidth",
		Title: "Datapath bitwidth sweep: is 16 bit really sufficient?",
		Paper: "§4.2: \"our tests showed that this bitwidth is sufficient even for fixed point calculations without seriously losing accuracy\"",
		Run:   Bitwidth,
	})
}

// BitwidthPoint is one sweep sample.
type BitwidthPoint struct {
	Bits        int
	Agree       int // best-match agreement with float64
	Trials      int
	WorstAbsErr float64
}

// scoreAtWidth evaluates eq. (1)/(2) with a w-bit datapath: similarities
// carry w-1 fractional bits, the reciprocal w fractional bits, and every
// product truncates exactly as a w-bit multiplier-and-shift would. At
// w=16 this reproduces the Q15 engine bit-for-bit (asserted in tests).
func scoreAtWidth(cb *casebase.CaseBase, im *casebase.Implementation, req casebase.Request, w int) int64 {
	one := int64(1)<<(w-1) - 1
	recipScale := int64(1) << w

	// Equal weights in w-bit precision, matching fixed.EqualWeights'
	// remainder-to-first policy.
	n := int64(len(req.Constraints))
	base := (one + 1) / n
	rem := (one + 1) - base*n
	weight := func(i int) int64 {
		if i == 0 {
			return base + rem
		}
		return base
	}

	var acc int64
	for i, c := range req.Constraints {
		v, found := im.Attr(c.ID)
		if !found {
			continue
		}
		dmax, _ := cb.Registry().DMax(c.ID)
		den := int64(dmax) + 1
		recip := (recipScale + den/2) / den
		if recip > recipScale-1 {
			recip = recipScale - 1
		}
		d := int64(c.Value) - int64(v)
		if d < 0 {
			d = -d
		}
		q := (d * recip) >> 1 // align w fractional bits to w-1
		if q > one {
			q = one
		}
		s := one - q
		if s < 0 {
			s = 0
		}
		acc += (weight(i) * s) >> (w - 1)
		if acc > one {
			acc = one
		}
	}
	return acc
}

// BitwidthSweep measures best-match agreement against the float64
// engine for datapath widths from 6 to 16 bits.
func BitwidthSweep() ([]BitwidthPoint, error) {
	cb, reg, err := workload.GenCaseBase(workload.CaseBaseSpec{
		Types: 4, ImplsPerType: 10, AttrsPerImpl: 6, AttrUniverse: 8, Seed: 77,
	})
	if err != nil {
		return nil, err
	}
	reqs, err := workload.GenRequests(cb, reg, workload.RequestStreamSpec{
		N: 150, ConstraintsPer: 4, Seed: 78,
	})
	if err != nil {
		return nil, err
	}
	eng := retrieval.NewEngine(cb, retrieval.Options{})

	var out []BitwidthPoint
	for _, w := range []int{6, 8, 10, 12, 14, 16} {
		pt := BitwidthPoint{Bits: w}
		one := float64(int64(1)<<(w-1) - 1)
		for _, req := range reqs {
			pt.Trials++
			ranked, err := eng.RetrieveAll(req)
			if err != nil {
				return nil, err
			}
			ft, _ := cb.Type(req.Type)
			var bestID casebase.ImplID
			bestS := int64(-1)
			for i := range ft.Impls {
				im := &ft.Impls[i]
				s := scoreAtWidth(cb, im, req, w)
				if s > bestS {
					bestS = s
					bestID = im.ID
				}
				// Track the similarity error against float64.
				for _, r := range ranked {
					if r.Impl == im.ID {
						if e := absf(float64(s)/one - r.Similarity); e > pt.WorstAbsErr {
							pt.WorstAbsErr = e
						}
					}
				}
			}
			if bestID == ranked[0].Impl {
				pt.Agree++
			}
		}
		out = append(out, pt)
	}
	return out, nil
}

func absf(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// Bitwidth renders the E16 sweep.
func Bitwidth(w io.Writer) error {
	pts, err := BitwidthSweep()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-6s %12s %14s\n", "bits", "agreement", "worst |ΔS|")
	for _, p := range pts {
		fmt.Fprintf(w, "%-6d %9.1f %% %14.4f\n",
			p.Bits, 100*float64(p.Agree)/float64(p.Trials), p.WorstAbsErr)
	}
	fmt.Fprintf(w, "\nAgreement with double precision saturates by 12–16 bits while\n")
	fmt.Fprintf(w, "narrow datapaths visibly misrank — the quantitative backing for the\n")
	fmt.Fprintf(w, "paper's choice of a 16-bit processing bitwidth.\n")
	return nil
}
