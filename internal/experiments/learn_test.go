package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestLearnChurnGoldenReplay pins the exact E21 replay: the epoch
// journal — fold points, epoch numbers, commit reasons, fold sizes —
// is a pure function of the seeded schedule, and the replay hash is
// its bit-exact digest. Drift here means fold-policy evaluation, the
// commit pipeline, or epoch numbering changed — a
// deliberate-change-only event (update DESIGN.md §14 alongside).
func TestLearnChurnGoldenReplay(t *testing.T) {
	out, err := LearnChurnRun(LearnChurnSpec{Steps: 200, Shards: 4, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if out.Mismatches != 0 {
		t.Errorf("served results diverged from fresh walks %d time(s)", out.Mismatches)
	}
	if out.ReplayHash != "fnv64a:58264aecece4db43" {
		t.Errorf("replay hash = %s, want fnv64a:58264aecece4db43", out.ReplayHash)
	}
	if out.Epoch != 24 || out.Stats.Commits != 23 || out.Stats.Folds != 4 {
		t.Errorf("epoch/commits/folds = %d/%d/%d, want 24/23/4",
			out.Epoch, out.Stats.Commits, out.Stats.Folds)
	}
	if out.Stats.Observations != 70 || out.Stats.FoldedObs != 68 {
		t.Errorf("observations = %d (%d folded), want 70 (68)",
			out.Stats.Observations, out.Stats.FoldedObs)
	}
	if out.Stats.Retained != 11 || out.Stats.Retired != 8 {
		t.Errorf("retained/retired = %d/%d, want 11/8", out.Stats.Retained, out.Stats.Retired)
	}
	if len(out.Journal) != 23 || out.Journal[0] != "epoch=2 t=125 reason=retire changed=2 folded_obs=4" {
		t.Errorf("journal head = %q (%d lines)", out.Journal[0], len(out.Journal))
	}
}

// TestLearnChurnShardInvariance is the acceptance criterion: the same
// schedule at any shard count replays the identical journal — fold
// points depend on the global pending counters, never on striping.
func TestLearnChurnShardInvariance(t *testing.T) {
	base, err := LearnChurnRun(LearnChurnSpec{Steps: 200, Shards: 4, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 8} {
		out, err := LearnChurnRun(LearnChurnSpec{Steps: 200, Shards: shards, Seed: 21})
		if err != nil {
			t.Fatal(err)
		}
		if out.ReplayHash != base.ReplayHash {
			t.Errorf("shards=%d: replay hash %s != %s at shards=4", shards, out.ReplayHash, base.ReplayHash)
		}
		if out.Mismatches != 0 {
			t.Errorf("shards=%d: %d retrieval mismatches", shards, out.Mismatches)
		}
	}
}

// TestLearnChurnRendersStableReport smoke-checks the printed report.
func TestLearnChurnRendersStableReport(t *testing.T) {
	var a, b bytes.Buffer
	if err := LearnChurn(&a); err != nil {
		t.Fatal(err)
	}
	if err := LearnChurn(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("learn report not replay-stable")
	}
	for _, want := range []string{"replay hash", "identical", "committed epoch"} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(a.String(), "DIVERGED") {
		t.Error("resharded replay diverged")
	}
}
