package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"qosalloc/internal/fault"
)

// TestObsGoldenCounters pins the exact counter values of the scripted
// acceptance scenario. The registry is fed only simulation-time data, so
// any drift here means an instrumentation site moved or the simulation
// lost replay stability — both deliberate-change-only events.
func TestObsGoldenCounters(t *testing.T) {
	plan, err := fault.ParsePlan(scriptedPlan)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := ObsRun(ObsSpec{Requests: 120, Seed: 11, Plan: &plan})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{
		"qos_alloc_requests_total":                     120,
		"qos_alloc_placed_total":                       120,
		"qos_alloc_token_hits_total":                   24,
		"qos_alloc_retrievals_total":                   96,
		"qos_alloc_recovered_total":                    2,
		"qos_alloc_degraded_total":                     1,
		"qos_alloc_fault_rejected_total":               0,
		"qos_alloc_infeasible_total":                   0,
		"qos_retrieval_total":                          99,
		"qos_retrieval_impls_scored_total":             990,
		"qos_retrieval_attrs_compared_total":           3960,
		"qos_retrieval_no_match_total":                 0,
		"qos_rtsys_device_faults_total":                0,
		"qos_rtsys_slot_faults_total":                  2,
		`qos_fault_injections_total{kind="slotfail"}`:  2,
		`qos_fault_injections_total{kind="devfail"}`:   0,
		`qos_fault_injections_total{kind="configerr"}`: 4,
		`qos_fault_injections_total{kind="seu"}`:       1,
		"qos_fault_no_victim_total":                    1,
		`qos_rtsys_transitions_total{event="create"}`:  120,
		`qos_rtsys_transitions_total{event="strand"}`:  2,
		`qos_rtsys_transitions_total{event="fail"}`:    0,
	}
	for name, wv := range want {
		got, ok := reg.CounterValue(name)
		if !ok {
			t.Errorf("counter %s not registered", name)
			continue
		}
		if got != wv {
			t.Errorf("%s = %d, want %d", name, got, wv)
		}
	}
}

// TestObsReplayIsBitExact asserts the determinism contract over the
// whole registry, not just a counter subset: two runs of the same spec
// produce identical snapshots — every counter, gauge, histogram bucket
// and trace event (timestamps included).
func TestObsReplayIsBitExact(t *testing.T) {
	a, err := ObsRun(ObsSpec{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ObsRun(ObsSpec{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Snapshot(), b.Snapshot()) {
		t.Error("replay produced a different snapshot")
	}
	// And the Prometheus exposition is byte-identical.
	var pa, pb bytes.Buffer
	if err := a.WriteProm(&pa); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteProm(&pb); err != nil {
		t.Fatal(err)
	}
	if pa.String() != pb.String() {
		t.Error("replay produced different Prometheus exposition text")
	}
}

func TestObsRenders(t *testing.T) {
	var buf bytes.Buffer
	if err := Obs(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, marker := range []string{
		"qos_alloc_requests_total", "qos_fault_injections_total",
		"qos_rtsys_wait_micros", "trace rings:", "bit-exact",
	} {
		if !strings.Contains(out, marker) {
			t.Errorf("output missing %q", marker)
		}
	}
}
