package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"qosalloc/internal/casebase"
	"qosalloc/internal/retrieval"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"bitwidth", "bypass", "capacity", "compact", "faults",
		"fixedpoint", "latency", "learn", "learning", "mahalanobis", "nbest",
		"negotiate", "obs", "policy", "powertrade", "serve", "speedup",
		"system", "table1", "table2", "table3",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registered %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %q, want %q", i, e.ID, want[i])
		}
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
	}
	if _, ok := ByID("table1"); !ok {
		t.Error("ByID(table1) missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID(nope) should miss")
	}
}

func TestTable1DataMatchesPaper(t *testing.T) {
	all, err := Table1Data()
	if err != nil {
		t.Fatal(err)
	}
	if all[0].Impl != 2 || math.Abs(all[0].Similarity-0.96) > 0.005 {
		t.Errorf("best = impl %d S=%.3f, want impl 2 S≈0.96", all[0].Impl, all[0].Similarity)
	}
}

func TestTable2ReportMatchesPaper(t *testing.T) {
	r := Table2Report()
	if r.Slices < 420 || r.Slices > 463 {
		t.Errorf("slices = %d, want 441 ± 5%%", r.Slices)
	}
	if r.BRAMs != 2 || r.Mults != 2 {
		t.Errorf("BRAM/MULT = %d/%d", r.BRAMs, r.Mults)
	}
	if math.Abs(r.FmaxMHz-75) > 5 {
		t.Errorf("fmax = %.1f", r.FmaxMHz)
	}
}

func TestTable3DataConsistent(t *testing.T) {
	rep, measured, err := Table3Data()
	if err != nil {
		t.Fatal(err)
	}
	if rep.RequestBytes != 64 {
		t.Errorf("request bytes = %d, want 64 (Table 3)", rep.RequestBytes)
	}
	if rep.TreeBytes != measured {
		t.Errorf("closed form %d != encoder %d", rep.TreeBytes, measured)
	}
	// Same order of magnitude as the paper's ~4.5 kB.
	if rep.TreeBytes < 4000 || rep.TreeBytes > 9000 {
		t.Errorf("tree bytes = %d, out of the paper's ballpark", rep.TreeBytes)
	}
}

func TestSpeedupSweepShape(t *testing.T) {
	pts, err := SpeedupSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Speedup < 3 {
			t.Errorf("shape %dx%dx%d: speedup %.2f too low — hardware must win clearly",
				p.Types, p.Impls, p.Attrs, p.Speedup)
		}
		if p.Speedup > 30 {
			t.Errorf("shape %dx%dx%d: speedup %.2f implausibly high", p.Types, p.Impls, p.Attrs, p.Speedup)
		}
		// The barrel-shifter core is faster software, so its speedup
		// over hardware is smaller.
		if p.BarrelSpeedup > p.Speedup {
			t.Errorf("barrel-shifter software slower than base? %+v", p)
		}
	}
	t.Logf("paper-scale (15x10x10) speedup: %.2fx (paper: 8.5x)", pts[2].Speedup)
}

func TestFixedPointRunAgrees(t *testing.T) {
	d, err := FixedPointRun(40)
	if err != nil {
		t.Fatal(err)
	}
	if d.Disagreements != 0 {
		t.Errorf("fixed point disagreed on %d unambiguous trials", d.Disagreements)
	}
	if d.Agree == 0 {
		t.Error("no unambiguous agreement recorded")
	}
	if d.WorstAbsErr > 0.01 {
		t.Errorf("worst similarity error = %v", d.WorstAbsErr)
	}
}

func TestCompactSweepMeetsFactorTwo(t *testing.T) {
	pts, err := CompactSweep()
	if err != nil {
		t.Fatal(err)
	}
	// The §5 estimate: at least factor 2 at realistic scale (the
	// largest shapes are fetch-dominated).
	last := pts[len(pts)-1]
	if last.Speedup < 1.8 {
		t.Errorf("compact speedup at scale = %.2f, want ≈2x", last.Speedup)
	}
}

func TestBypassSweepMonotone(t *testing.T) {
	pts, err := BypassSweep()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].RetrievalsSaved+0.02 < pts[i-1].RetrievalsSaved {
			t.Errorf("savings not monotone: %+v then %+v", pts[i-1], pts[i])
		}
	}
	if pts[0].TokenHits != 0 {
		t.Errorf("zero-repeat stream recorded %d token hits", pts[0].TokenHits)
	}
	last := pts[len(pts)-1]
	if last.RetrievalsSaved < 0.5 {
		t.Errorf("high-repeat stream saved only %.1f%%", 100*last.RetrievalsSaved)
	}
}

func TestSystemRunAllocatesEverything(t *testing.T) {
	res, err := SystemRun()
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 {
		t.Errorf("failures = %d, the platform should fit the fig. 1 mix", res.Failures)
	}
	if len(res.Decisions) != 6 {
		t.Errorf("decisions = %d, want 6 (one per app step)", len(res.Decisions))
	}
	if res.PeakPowerMW == 0 {
		t.Error("power accounting dead")
	}
	// The ECU's engine-control request must land on the FPGA (its
	// latency constraint only the hardware variant satisfies well).
	foundECU := false
	for _, d := range res.Decisions {
		if d.App == "automotive-ecu" && d.Type == 5 {
			foundECU = true
			if !strings.HasPrefix(string(d.Device), "fpga") {
				t.Errorf("engine control landed on %s, want an FPGA", d.Device)
			}
		}
	}
	if !foundECU {
		t.Error("engine-control decision missing")
	}
}

func TestMahalanobisRunMostlyAgrees(t *testing.T) {
	d, err := MahalanobisRun()
	if err != nil {
		t.Fatal(err)
	}
	if d.Requests == 0 {
		t.Fatal("no requests compared")
	}
	// The paper calls the method "very effective concerning the
	// results": the two measures should usually agree, and when they
	// differ the eq. winner should still rank near the top.
	if rate := float64(d.Agree) / float64(d.Requests); rate < 0.5 {
		t.Errorf("agreement rate %.2f implausibly low", rate)
	}
	if d.MeanRank > 3 {
		t.Errorf("mean rank of eq. winner = %.2f, too deep", d.MeanRank)
	}
	if d.OpsMahal <= d.OpsLinear {
		t.Error("Mahalanobis must cost more arithmetic")
	}
}

func TestBitwidthSixteenMatchesFixedEngine(t *testing.T) {
	// The width-parameterized scorer at w=16 must reproduce the Q15
	// engine bit-for-bit — otherwise the sweep measures the wrong
	// arithmetic.
	cb, err := casebase.PaperCaseBase()
	if err != nil {
		t.Fatal(err)
	}
	fe := retrieval.NewFixedEngine(cb)
	req := casebase.PaperRequest()
	ft, _ := cb.Type(req.Type)
	for i := range ft.Impls {
		im := &ft.Impls[i]
		want := fe.Score(im, req)
		got := scoreAtWidth(cb, im, req, 16)
		if int64(want) != got {
			t.Errorf("impl %d: width-16 scorer %d != Q15 engine %d", im.ID, got, want)
		}
	}
}

func TestBitwidthSweepShape(t *testing.T) {
	pts, err := BitwidthSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("points = %d", len(pts))
	}
	// Agreement must be non-decreasing in width and saturate at 16.
	for i := 1; i < len(pts); i++ {
		if pts[i].Agree < pts[i-1].Agree {
			t.Errorf("agreement not monotone: %d bits %d vs %d bits %d",
				pts[i-1].Bits, pts[i-1].Agree, pts[i].Bits, pts[i].Agree)
		}
		if pts[i].WorstAbsErr > pts[i-1].WorstAbsErr {
			t.Errorf("error not shrinking with width")
		}
	}
	last := pts[len(pts)-1]
	if last.Agree != last.Trials {
		t.Errorf("16-bit agreement %d of %d — the paper's sufficiency claim fails", last.Agree, last.Trials)
	}
	if pts[0].Agree == pts[0].Trials {
		t.Error("6-bit datapath should visibly misrank — sweep not discriminating")
	}
}

func TestCapacitySweepMonotone(t *testing.T) {
	pts, err := CapacitySweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	first, last := pts[0], pts[len(pts)-1]
	if last.Failed >= first.Failed {
		t.Errorf("more slots must reduce failures: %d -> %d", first.Failed, last.Failed)
	}
	if last.Preemptions >= first.Preemptions {
		t.Errorf("more slots must reduce preemptions: %d -> %d", first.Preemptions, last.Preemptions)
	}
	for _, p := range pts {
		if p.Placed+p.Failed != 200 {
			t.Errorf("slots=%d: placed+failed = %d, want 200", p.FPGASlots, p.Placed+p.Failed)
		}
	}
}

func TestLearningRunImproves(t *testing.T) {
	d, err := LearningRun()
	if err != nil {
		t.Fatal(err)
	}
	if d.DriftedImpls == 0 {
		t.Fatal("scenario generated no drift")
	}
	if d.Rebuilds == 0 {
		t.Fatal("no rebuilds happened")
	}
	if d.MeanSimLearning <= d.MeanSimStatic {
		t.Errorf("learning (%.3f) must beat static (%.3f)",
			d.MeanSimLearning, d.MeanSimStatic)
	}
}

func TestPolicyRunOrdering(t *testing.T) {
	rs, err := PolicyRun()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("policies = %d", len(rs))
	}
	byName := map[string]PolicyResult{}
	for _, r := range rs {
		byName[r.Name] = r
	}
	cbr, swo, ff := byName["qos-cbr"], byName["software-only"], byName["first-fit"]
	// The paper's motivation: QoS-aware selection beats both fixed
	// strategies on delivered QoS similarity.
	if cbr.MeanSim <= swo.MeanSim || cbr.MeanSim <= ff.MeanSim {
		t.Errorf("qos-cbr S=%.3f must beat software-only %.3f and first-fit %.3f",
			cbr.MeanSim, swo.MeanSim, ff.MeanSim)
	}
	// Software-only collapses under load (the §1 weak point).
	if swo.Failed <= cbr.Failed {
		t.Errorf("software-only should fail more: %d vs %d", swo.Failed, cbr.Failed)
	}
	if cbr.Placed == 0 || cbr.MeanPowerW <= 0 {
		t.Errorf("qos-cbr result degenerate: %+v", cbr)
	}
}

func TestLatencyRunOrdering(t *testing.T) {
	stats, err := LatencyRun()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("targets = %d", len(stats))
	}
	byTarget := map[casebase.Target]LatencyStats{}
	for _, s := range stats {
		byTarget[s.Target] = s
		if s.Count < 20 {
			t.Errorf("%v placed only %d — scenario starved", s.Target, s.Count)
		}
		if s.P50Us > s.P95Us || s.P95Us > s.MaxUs {
			t.Errorf("%v percentiles inverted: %+v", s.Target, s)
		}
	}
	// The paper's trade: FPGA (bitstream over the serialized port) is
	// the slowest to become ready, the GPP the fastest.
	if !(byTarget[casebase.TargetFPGA].MeanUs > byTarget[casebase.TargetDSP].MeanUs &&
		byTarget[casebase.TargetDSP].MeanUs > byTarget[casebase.TargetGPP].MeanUs) {
		t.Errorf("latency ordering violated: FPGA %.0f, DSP %.0f, GPP %.0f",
			byTarget[casebase.TargetFPGA].MeanUs,
			byTarget[casebase.TargetDSP].MeanUs,
			byTarget[casebase.TargetGPP].MeanUs)
	}
}

func TestPowerTradeSweep(t *testing.T) {
	pts, err := PowerTradeSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].PowerWeight != 0 {
		t.Fatal("first point must be the paper policy")
	}
	// Moderate power weights must reduce platform power below the
	// pure-similarity baseline while similarity degrades gracefully.
	base := pts[0]
	mid := pts[2] // weight 1.0
	if mid.MeanPowerW >= base.MeanPowerW {
		t.Errorf("power weight must reduce power: %.2f -> %.2f W", base.MeanPowerW, mid.MeanPowerW)
	}
	if mid.MeanSim > base.MeanSim {
		t.Errorf("similarity should not improve for free: %.3f -> %.3f", base.MeanSim, mid.MeanSim)
	}
	if base.MeanSim-mid.MeanSim > 0.1 {
		t.Errorf("similarity collapse: %.3f -> %.3f", base.MeanSim, mid.MeanSim)
	}
}

func TestRunAllRenders(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAll(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, e := range All() {
		if !strings.Contains(out, e.ID) {
			t.Errorf("output missing experiment %q", e.ID)
		}
	}
	if len(out) < 2000 {
		t.Errorf("suspiciously short report (%d bytes)", len(out))
	}
}
