package experiments

import (
	"fmt"
	"io"

	"qosalloc/internal/alloc"
	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
	"qosalloc/internal/rtsys"
	"qosalloc/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "capacity",
		Title: "Platform sizing: allocation success vs reconfigurable capacity",
		Paper: "fig. 1: \"one or several low-cost reconfigurable devices plus dedicated hardware\" — how many are enough?",
		Run:   Capacity,
	})
}

// CapacityPoint is one sweep sample.
type CapacityPoint struct {
	FPGASlots   int
	Placed      int
	Failed      int
	Preemptions int
	FallbackPct float64 // share of placements not on the best-ranked variant's target
	MeanSim     float64
}

// CapacitySweep replays one fixed request stream against platforms with
// a growing number of FPGA slots and reports how allocation quality
// scales — the sizing question an adopter of the fig. 1 architecture
// faces.
func CapacitySweep() ([]CapacityPoint, error) {
	cb, reg, err := workload.GenCaseBase(workload.PaperScale())
	if err != nil {
		return nil, err
	}
	reqs, err := workload.GenRequests(cb, reg, workload.RequestStreamSpec{
		N: 200, ConstraintsPer: 4, Seed: 424,
	})
	if err != nil {
		return nil, err
	}

	var out []CapacityPoint
	for slots := 1; slots <= 5; slots++ {
		repo := device.NewRepository(20)
		if err := repo.PopulateFromCaseBase(cb); err != nil {
			return nil, err
		}
		fslots := make([]device.Slot, slots)
		for i := range fslots {
			fslots[i] = device.Slot{Slices: 1500, BRAMs: 8, Multipliers: 16}
		}
		sys := rtsys.NewSystem(repo,
			device.NewFPGA("fpga0", fslots, 66),
			device.NewProcessor("dsp0", casebase.TargetDSP, 1500, 1<<20),
			device.NewProcessor("gpp0", casebase.TargetGPP, 1500, 1<<21),
		)
		m := alloc.New(cb, sys, alloc.Options{NBest: 3, AllowPreemption: true})

		pt := CapacityPoint{FPGASlots: slots}
		var simSum float64
		fallbacks := 0
		var live []rtsys.TaskID
		for i, req := range reqs {
			_ = sys.Advance(1000)
			if len(live) >= 12 {
				_ = m.Release(live[0])
				live = live[1:]
				m.ReplacePending()
			}
			// What would the unconstrained best have been?
			ranked, err := m.Engine().RetrieveAll(req)
			if err != nil {
				return nil, err
			}
			d, err := m.Request(fmt.Sprintf("a%d", i), req, 1+i%9)
			if err != nil {
				pt.Failed++
				continue
			}
			pt.Placed++
			simSum += d.Similarity
			if d.Impl != ranked[0].Impl {
				fallbacks++
			}
			live = append(live, d.Task.ID)
		}
		pt.Preemptions = m.Stats().Preemptions
		if pt.Placed > 0 {
			pt.MeanSim = simSum / float64(pt.Placed)
			pt.FallbackPct = 100 * float64(fallbacks) / float64(pt.Placed)
		}
		out = append(out, pt)
	}
	return out, nil
}

// Capacity renders the sweep.
func Capacity(w io.Writer) error {
	pts, err := CapacitySweep()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %8s %8s %12s %10s %9s\n",
		"FPGA slots", "placed", "failed", "preemptions", "fallback", "mean S")
	for _, p := range pts {
		fmt.Fprintf(w, "%-10d %8d %8d %12d %9.1f%% %9.3f\n",
			p.FPGASlots, p.Placed, p.Failed, p.Preemptions, p.FallbackPct, p.MeanSim)
	}
	fmt.Fprintf(w, "\nMore reconfigurable capacity converts fallbacks and failures into\n")
	fmt.Fprintf(w, "best-variant placements; the curve flattens once the FPGA stops\n")
	fmt.Fprintf(w, "being the bottleneck — the sizing signal for a fig. 1 platform.\n")
	return nil
}
