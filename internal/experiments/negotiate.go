package experiments

import (
	"errors"
	"fmt"
	"io"

	"qosalloc/internal/casebase"
	"qosalloc/internal/hwsim"
	"qosalloc/internal/retrieval"
	"qosalloc/internal/swret"
)

func init() {
	register(Experiment{
		ID:    "negotiate",
		Title: "Threshold rejection and relaxed-constraint re-request",
		Paper: "§3: reject below threshold; re-request with relaxed constraints admits the low-performance variant",
		Run:   Negotiate,
	})
	register(Experiment{
		ID:    "nbest",
		Title: "n-most-similar retrieval (§5 outlook)",
		Paper: "\"extension for getting n most similar solutions ... checking the feasibility of different matching variants\"",
		Run:   NBest,
	})
}

// Negotiate demonstrates the §3 negotiation loop on the paper case base.
func Negotiate(w io.Writer) error {
	cb, err := casebase.PaperCaseBase()
	if err != nil {
		return err
	}
	e := retrieval.NewEngine(cb, retrieval.Options{Threshold: 0.5})
	req := casebase.PaperRequest()

	all, err := e.RetrieveAll(req)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "threshold 0.50, request {bitwidth=16, stereo, 40 kS/s}:\n")
	for _, r := range all {
		verdict := "accepted"
		if r.Similarity < 0.5 {
			verdict = "REJECTED (below threshold)"
		}
		fmt.Fprintf(w, "  impl %d (%s): S = %.2f  %s\n", r.Impl, r.Target, r.Similarity, verdict)
	}

	// Strict threshold: nothing qualifies; the application must relax.
	strict := retrieval.NewEngine(cb, retrieval.Options{Threshold: 0.99})
	_, err = strict.Retrieve(req)
	var nm *retrieval.ErrNoMatch
	if !errors.As(err, &nm) {
		return fmt.Errorf("negotiate: expected ErrNoMatch at threshold 0.99, got %w", err)
	}
	fmt.Fprintf(w, "\nthreshold 0.99: no match (best %.2f) -> application relaxes\n", nm.Best)

	relaxed, _ := req.Relax(casebase.AttrBitwidth)
	all2, err := e.RetrieveAll(relaxed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "relaxed request (bitwidth constraint dropped):\n")
	for _, r := range all2 {
		fmt.Fprintf(w, "  impl %d (%s): S = %.2f\n", r.Impl, r.Target, r.Similarity)
	}
	fmt.Fprintf(w, "the low-performance GP-Proc variant now clears the 0.50 threshold,\n")
	fmt.Fprintf(w, "exactly the \"giving a chance to the third low performance\n")
	fmt.Fprintf(w, "implementation\" path of §3.\n")
	return nil
}

// NBestData retrieves the n best variants for the paper request.
func NBestData(n int) ([]retrieval.Result, error) {
	cb, err := casebase.PaperCaseBase()
	if err != nil {
		return nil, err
	}
	e := retrieval.NewEngine(cb, retrieval.Options{})
	return e.RetrieveN(casebase.PaperRequest(), n)
}

// NBest demonstrates the §5 n-best extension on every engine.
func NBest(w io.Writer) error {
	for _, n := range []int{1, 2, 3} {
		rs, err := NBestData(n)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "n = %d:", n)
		for _, r := range rs {
			fmt.Fprintf(w, "  (impl %d, S=%.2f)", r.Impl, r.Similarity)
		}
		fmt.Fprintln(w)
	}

	// The same 3-best on the three fixed-point implementations.
	cb, err := casebase.PaperCaseBase()
	if err != nil {
		return err
	}
	req := casebase.PaperRequest()
	fe := retrieval.NewFixedEngine(cb)
	fx, err := fe.RetrieveN(req, 3)
	if err != nil {
		return err
	}
	hwUnit, err := hwsim.Build(cb, req, hwsim.Config{NBest: 3})
	if err != nil {
		return err
	}
	hwRes, err := hwUnit.Run(1 << 22)
	if err != nil {
		return err
	}
	sw, err := swret.NewRunner().RetrieveN(cb, req, 3)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n3-best agreement across implementations (impl: Q15):\n")
	fmt.Fprintf(w, "  fixed engine: ")
	for _, e := range fx {
		fmt.Fprintf(w, " (%d: %d)", e.Impl, e.Similarity)
	}
	fmt.Fprintf(w, "\n  hardware:     ")
	for _, e := range hwUnit.TopN() {
		fmt.Fprintf(w, " (%d: %d)", e.ImplID, e.Sim)
	}
	fmt.Fprintf(w, "  [%d cycles]", hwRes.Cycles)
	fmt.Fprintf(w, "\n  software:     ")
	for _, e := range sw.Entries {
		fmt.Fprintf(w, " (%d: %d)", e.ImplID, e.Sim)
	}
	fmt.Fprintf(w, "  [%d cycles]\n", sw.Cycles)
	fmt.Fprintf(w, "\nThe allocation manager checks feasibility best-first over this\n")
	fmt.Fprintf(w, "list instead of re-running retrieval per fallback.\n")
	return nil
}
