package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"qosalloc/internal/attr"
	"qosalloc/internal/casebase"
	"qosalloc/internal/learn"
	"qosalloc/internal/retrieval"
	"qosalloc/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "learning",
		Title: "Self-learning case-base update (fig. 2 cycle, §5 outlook)",
		Paper: "\"dynamic update mechanisms of Case-Base-data structures ... enabling for a self-learning system\"",
		Run:   Learning,
	})
}

// LearningData summarizes the self-learning run.
type LearningData struct {
	Requests        int
	DriftedImpls    int
	MeanSimStatic   float64 // delivered similarity without learning
	MeanSimLearning float64 // delivered similarity with revise/retain
	Rebuilds        int
}

// LearningRun simulates attribute drift: a fraction of implementations
// deliver worse QoS than their design-time case descriptions advertise
// (aged silicon, contention, optimistic characterization). Without
// learning, retrieval keeps trusting the stale advertisements; with the
// fig. 2 revise loop, run-time observations fold the real values back
// into the case base and later retrievals choose better.
func LearningRun() (LearningData, error) {
	advertised, reg, err := workload.GenCaseBase(workload.CaseBaseSpec{
		Types: 6, ImplsPerType: 6, AttrsPerImpl: 6, AttrUniverse: 6, Seed: 9,
	})
	if err != nil {
		return LearningData{}, err
	}

	// Ground truth: 40 % of implementations drift on every attribute
	// by a large fraction of its range.
	r := rand.New(rand.NewSource(2))
	truth := map[[2]uint16][]attr.Pair{} // (type, impl) → true attrs
	var d LearningData
	for _, ft := range advertised.Types() {
		for i := range ft.Impls {
			im := &ft.Impls[i]
			key := [2]uint16{uint16(ft.ID), uint16(im.ID)}
			pairs := append([]attr.Pair(nil), im.Attrs...)
			if r.Float64() < 0.4 {
				d.DriftedImpls++
				for j := range pairs {
					def, _ := reg.Lookup(pairs[j].ID)
					span := int(def.Hi - def.Lo)
					drift := attr.Value(r.Intn(span/2 + 1))
					if int(pairs[j].Value)-int(drift) >= int(def.Lo) {
						pairs[j].Value -= drift
					} else {
						pairs[j].Value = def.Lo
					}
				}
			}
			truth[key] = pairs
		}
	}
	trueCB, err := rebuildWith(advertised, truth)
	if err != nil {
		return d, err
	}
	trueEngine := retrieval.NewEngine(trueCB, retrieval.Options{})

	reqs, err := workload.GenRequests(advertised, reg, workload.RequestStreamSpec{
		N: 240, ConstraintsPer: 4, Seed: 33,
	})
	if err != nil {
		return d, err
	}
	d.Requests = len(reqs)

	// deliveredSim scores what impl actually provides for req.
	deliveredSim := func(req casebase.Request, impl casebase.ImplID) (float64, error) {
		all, err := trueEngine.RetrieveAll(req)
		if err != nil {
			return 0, err
		}
		for _, res := range all {
			if res.Impl == impl {
				return res.Similarity, nil
			}
		}
		return 0, fmt.Errorf("learning: impl %d missing from true ranking", impl)
	}

	// Static policy: trust the advertisements forever.
	{
		eng := retrieval.NewEngine(advertised, retrieval.Options{})
		var sum float64
		for _, req := range reqs {
			best, err := eng.Retrieve(req)
			if err != nil {
				return d, err
			}
			s, err := deliveredSim(req, best.Impl)
			if err != nil {
				return d, err
			}
			sum += s
		}
		d.MeanSimStatic = sum / float64(len(reqs))
	}

	// Learning policy: observe the true attributes of every deployed
	// variant, rebuild the case base every 40 requests.
	{
		current := advertised
		eng := retrieval.NewEngine(current, retrieval.Options{})
		learner, err := learn.NewLearner(current, 0.5)
		if err != nil {
			return d, err
		}
		var sum float64
		for i, req := range reqs {
			best, err := eng.Retrieve(req)
			if err != nil {
				return d, err
			}
			s, err := deliveredSim(req, best.Impl)
			if err != nil {
				return d, err
			}
			sum += s
			if err := learner.Observe(learn.Observation{
				Type: req.Type, Impl: best.Impl,
				Measured: truth[[2]uint16{uint16(req.Type), uint16(best.Impl)}],
			}); err != nil {
				return d, err
			}
			if (i+1)%40 == 0 {
				next, _, err := learner.Rebuild()
				if err != nil {
					return d, err
				}
				current = next
				eng = retrieval.NewEngine(current, retrieval.Options{})
				learner, err = learn.NewLearner(current, 0.5)
				if err != nil {
					return d, err
				}
				d.Rebuilds++
			}
		}
		d.MeanSimLearning = sum / float64(len(reqs))
	}
	return d, nil
}

// rebuildWith clones a case base substituting attribute sets.
func rebuildWith(cb *casebase.CaseBase, attrs map[[2]uint16][]attr.Pair) (*casebase.CaseBase, error) {
	b := casebase.NewBuilder(cb.Registry())
	for _, ft := range cb.Types() {
		b.AddType(ft.ID, ft.Name)
		for i := range ft.Impls {
			im := ft.Impls[i]
			if ps, ok := attrs[[2]uint16{uint16(ft.ID), uint16(im.ID)}]; ok {
				im.Attrs = ps
			}
			b.AddImpl(ft.ID, im)
		}
	}
	return b.Build()
}

// Learning renders the E13 run.
func Learning(w io.Writer) error {
	d, err := LearningRun()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "requests:                       %d\n", d.Requests)
	fmt.Fprintf(w, "implementations with QoS drift: %d\n", d.DriftedImpls)
	fmt.Fprintf(w, "case-base rebuilds:             %d\n", d.Rebuilds)
	fmt.Fprintf(w, "mean delivered similarity:\n")
	fmt.Fprintf(w, "  static case base:             %.3f\n", d.MeanSimStatic)
	fmt.Fprintf(w, "  with revise/retain loop:      %.3f\n", d.MeanSimLearning)
	fmt.Fprintf(w, "\nObserving delivered QoS and folding it back into the case base\n")
	fmt.Fprintf(w, "(the fig. 2 revise step) recovers similarity lost to stale\n")
	fmt.Fprintf(w, "advertisements — the self-learning system of the paper's outlook.\n")
	return nil
}
