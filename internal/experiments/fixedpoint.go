package experiments

import (
	"fmt"
	"io"
	"math"

	"qosalloc/internal/retrieval"
	"qosalloc/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fixedpoint",
		Title: "16-bit fixed point vs double-precision retrieval results",
		Paper: "\"same retrieval results in high precision floating point Matlab simulation as from VHDL simulation\"",
		Run:   FixedPoint,
	})
}

// FixedPointData summarizes fixed-vs-float agreement over randomized
// case bases.
type FixedPointData struct {
	Trials        int
	Agree         int
	Ambiguous     int // float margin below fixed-point resolution
	Disagreements int
	WorstAbsErr   float64
}

// FixedPointRun measures best-match agreement and similarity error
// between the Q15 engine and the float64 engine.
func FixedPointRun(trials int) (FixedPointData, error) {
	var d FixedPointData
	const margin = 6.0 / 32768
	for seed := int64(0); seed < int64(trials); seed++ {
		cb, reg, err := workload.GenCaseBase(workload.CaseBaseSpec{
			Types: 3, ImplsPerType: 8, AttrsPerImpl: 5, AttrUniverse: 10, Seed: seed,
		})
		if err != nil {
			return d, err
		}
		reqs, err := workload.GenRequests(cb, reg, workload.RequestStreamSpec{N: 3, ConstraintsPer: 4, Seed: seed})
		if err != nil {
			return d, err
		}
		fe := retrieval.NewFixedEngine(cb)
		e := retrieval.NewEngine(cb, retrieval.Options{})
		for _, req := range reqs {
			d.Trials++
			all, err := e.RetrieveAll(req)
			if err != nil {
				return d, err
			}
			fbest, err := fe.Retrieve(req)
			if err != nil {
				return d, err
			}
			// Track the worst absolute similarity error across the
			// whole scored field, not just the winner.
			ft, _ := cb.Type(req.Type)
			for _, res := range all {
				im, _ := ft.Impl(res.Impl)
				fs := fe.Score(im, req).Float()
				if e := math.Abs(fs - res.Similarity); e > d.WorstAbsErr {
					d.WorstAbsErr = e
				}
			}
			if len(all) > 1 && all[0].Similarity-all[1].Similarity < margin {
				d.Ambiguous++
				continue
			}
			if fbest.Impl == all[0].Impl {
				d.Agree++
			} else {
				d.Disagreements++
			}
		}
	}
	return d, nil
}

// FixedPoint renders the agreement experiment.
func FixedPoint(w io.Writer) error {
	d, err := FixedPointRun(100)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "randomized trials:         %d\n", d.Trials)
	fmt.Fprintf(w, "best-match agreement:      %d\n", d.Agree)
	fmt.Fprintf(w, "ambiguous (margin < 6 LSB): %d\n", d.Ambiguous)
	fmt.Fprintf(w, "disagreements:             %d\n", d.Disagreements)
	rate := float64(d.Agree) / math.Max(1, float64(d.Agree+d.Disagreements)) * 100
	fmt.Fprintf(w, "agreement on unambiguous:  %.1f %%\n", rate)
	fmt.Fprintf(w, "worst |S_fixed - S_float|: %.6f\n", d.WorstAbsErr)
	fmt.Fprintf(w, "\nThe paper's claim holds: whenever double precision separates the\n")
	fmt.Fprintf(w, "candidates by more than the 16-bit resolution, the fixed-point unit\n")
	fmt.Fprintf(w, "returns the identical best match.\n")
	return nil
}
