package experiments

import (
	"fmt"
	"io"

	"qosalloc/internal/attr"
	"qosalloc/internal/retrieval"
	"qosalloc/internal/similarity"
	"qosalloc/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "mahalanobis",
		Title: "Mahalanobis distance vs the paper's Manhattan measure (§2.2)",
		Paper: "\"very effective concerning the results but the computational efforts would be too large\"",
		Run:   MahalanobisCompare,
	})
}

// MahalanobisData summarizes the rejected-design-point comparison.
type MahalanobisData struct {
	Requests  int
	Agree     int     // both measures pick the same winner
	MeanRank  float64 // rank of the eq. (2) winner under Mahalanobis
	OpsLinear int     // multiply-accumulate ops per comparison, eq. (1)/(2)
	OpsMahal  int     // ops per comparison, Mahalanobis (n² + n)
}

// MahalanobisRun compares winners and operation counts on a fully
// specified case base (complete attribute vectors, as the covariance
// method needs).
func MahalanobisRun() (MahalanobisData, error) {
	const nAttrs = 8
	cb, reg, err := workload.GenCaseBase(workload.CaseBaseSpec{
		Types: 4, ImplsPerType: 12, AttrsPerImpl: nAttrs, AttrUniverse: nAttrs, Seed: 13,
	})
	if err != nil {
		return MahalanobisData{}, err
	}
	ids := reg.IDs()

	// Train the covariance on the whole library, per the paper ("the
	// co-variance matrix of the whole set of function attributes").
	var samples [][]float64
	for _, ft := range cb.Types() {
		for i := range ft.Impls {
			samples = append(samples, vectorOf(&ft.Impls[i], ids))
		}
	}
	mah, err := similarity.NewMahalanobis(samples)
	if err != nil {
		return MahalanobisData{}, err
	}

	reqs, err := workload.GenRequests(cb, reg, workload.RequestStreamSpec{
		N: 100, ConstraintsPer: nAttrs, Seed: 19,
	})
	if err != nil {
		return MahalanobisData{}, err
	}
	eng := retrieval.NewEngine(cb, retrieval.Options{})

	d := MahalanobisData{
		OpsLinear: nAttrs * 2,             // n distance ops + n weighted accumulates
		OpsMahal:  nAttrs*nAttrs + nAttrs, // matrix-vector + dot product
	}
	var rankSum int
	for _, req := range reqs {
		d.Requests++
		ranked, err := eng.RetrieveAll(req)
		if err != nil {
			return d, err
		}
		linWinner := ranked[0].Impl

		// Mahalanobis ranking of the same sub-list.
		reqVec := make([]float64, len(ids))
		for i, id := range ids {
			for _, c := range req.Constraints {
				if c.ID == id {
					reqVec[i] = float64(c.Value)
				}
			}
		}
		ft, _ := cb.Type(req.Type)
		bestSim := -1.0
		var mahWinner uint16
		rank := 1
		linSim := -1.0
		for i := range ft.Impls {
			im := &ft.Impls[i]
			s := mah.Similarity(reqVec, vectorOf(im, ids))
			if s > bestSim {
				bestSim = s
				mahWinner = uint16(im.ID)
			}
			if im.ID == linWinner {
				linSim = s
			}
		}
		for i := range ft.Impls {
			im := &ft.Impls[i]
			if im.ID == linWinner {
				continue
			}
			if mah.Similarity(reqVec, vectorOf(im, ids)) > linSim {
				rank++
			}
		}
		rankSum += rank
		if mahWinner == uint16(linWinner) {
			d.Agree++
		}
	}
	d.MeanRank = float64(rankSum) / float64(d.Requests)
	return d, nil
}

func vectorOf(im interface {
	Attr(attr.ID) (attr.Value, bool)
}, ids []attr.ID) []float64 {
	v := make([]float64, len(ids))
	for i, id := range ids {
		if x, ok := im.Attr(id); ok {
			v[i] = float64(x)
		}
	}
	return v
}

// MahalanobisCompare renders the E11 comparison.
func MahalanobisCompare(w io.Writer) error {
	d, err := MahalanobisRun()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "requests compared:                   %d\n", d.Requests)
	fmt.Fprintf(w, "same winner as eq. (1)/(2):          %d (%.0f %%)\n",
		d.Agree, 100*float64(d.Agree)/float64(d.Requests))
	fmt.Fprintf(w, "mean Mahalanobis rank of eq. winner: %.2f\n", d.MeanRank)
	fmt.Fprintf(w, "ops per comparison, Manhattan:       %d (O(n) MAC)\n", d.OpsLinear)
	fmt.Fprintf(w, "ops per comparison, Mahalanobis:     %d (O(n²) MAC + sqrt)\n", d.OpsMahal)
	fmt.Fprintf(w, "\nThe measures mostly agree while the covariance method costs %.1fx\n",
		float64(d.OpsMahal)/float64(d.OpsLinear))
	fmt.Fprintf(w, "the arithmetic per comparison (plus an O(n³) design-time inversion\n")
	fmt.Fprintf(w, "and a hardware divider/sqrt) — the trade-off behind the paper's\n")
	fmt.Fprintf(w, "choice of Manhattan metrics for the datapath.\n")
	return nil
}
