package experiments

import (
	"fmt"
	"io"

	"qosalloc/internal/hwsim"
	"qosalloc/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "compact",
		Title: "Block-compacted attribute fetch (§5 outlook)",
		Paper: "\"loading IDs and values as blocks within one step speeding everything up at least by factor 2\"",
		Run:   Compact,
	})
}

// CompactPoint is one sweep sample of baseline vs compact fetch.
type CompactPoint struct {
	Types, Impls, Attrs int
	Base, Compact       uint64
	Speedup             float64
}

// CompactSweep measures the compact-fetch speedup across case-base
// shapes.
func CompactSweep() ([]CompactPoint, error) {
	shapes := []struct{ t, i, a int }{
		{1, 3, 3},
		{5, 5, 5},
		{15, 10, 10},
		{30, 10, 10},
	}
	var out []CompactPoint
	for _, sh := range shapes {
		cb, reg, err := workload.GenCaseBase(workload.CaseBaseSpec{
			Types: sh.t, ImplsPerType: sh.i, AttrsPerImpl: sh.a,
			AttrUniverse: max(sh.a, 10), Seed: 23,
		})
		if err != nil {
			return nil, err
		}
		reqs, err := workload.GenRequests(cb, reg, workload.RequestStreamSpec{
			N: 8, ConstraintsPer: min(sh.a, 6), Seed: 9,
		})
		if err != nil {
			return nil, err
		}
		var pt CompactPoint
		pt.Types, pt.Impls, pt.Attrs = sh.t, sh.i, sh.a
		for _, req := range reqs {
			b, err := hwsim.Retrieve(cb, req, hwsim.Config{})
			if err != nil {
				return nil, err
			}
			c, err := hwsim.Retrieve(cb, req, hwsim.Config{Compact: true})
			if err != nil {
				return nil, err
			}
			if b.ImplID != c.ImplID || b.Sim != c.Sim {
				return nil, fmt.Errorf("compact: result changed at shape %+v", sh)
			}
			pt.Base += b.Cycles
			pt.Compact += c.Cycles
		}
		n := uint64(len(reqs))
		pt.Base /= n
		pt.Compact /= n
		pt.Speedup = float64(pt.Base) / float64(pt.Compact)
		out = append(out, pt)
	}
	return out, nil
}

// Compact renders the E8 ablation.
func Compact(w io.Writer) error {
	pts, err := CompactSweep()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-18s %12s %12s %9s\n", "shape (TxIxA)", "base cyc", "compact cyc", "speedup")
	for _, p := range pts {
		fmt.Fprintf(w, "%3dx%-3dx%-9d %12d %12d %8.2fx\n",
			p.Types, p.Impls, p.Attrs, p.Base, p.Compact, p.Speedup)
	}
	fmt.Fprintf(w, "\nDual-port block fetch plus pipelined list scanning delivers the\n")
	fmt.Fprintf(w, "paper's predicted >=2x, with identical retrieval results.\n")
	return nil
}
