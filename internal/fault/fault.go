// Package fault is a deterministic fault injector for the rtsys
// timeline. Real reconfigurable platforms lose FPGA regions to
// configuration-port defects, see transient bitstream-transfer errors,
// and take SEU hits in configuration memory; the paper's allocation
// layer is explicitly negotiation-based ("an alternative implementation
// can be offered to the calling application", §2), so the system must
// survive these faults by re-placing or degrading work, never by
// silently dropping it.
//
// Faults are scripted, not sampled at run time: a Plan is a list of
// (time, kind, target) events, written by hand, parsed from the compact
// DSL ("at:kind:device[:slot]", ';'-separated), or generated from an
// explicit *rand.Rand by Storm. No wall clock and no global rand are
// consulted anywhere, so a fault sweep replays bit-identically for a
// fixed seed.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"qosalloc/internal/device"
	"qosalloc/internal/obs"
	"qosalloc/internal/rtsys"
)

// Kind classifies one injected fault.
type Kind uint8

// Fault kinds: SlotFail permanently kills one FPGA slot, DeviceFail a
// whole device, ConfigError corrupts an in-flight configuration
// (transient; the run-time system retries with backoff), SEU flips
// configuration memory under a running task (recovered by scrubbing).
const (
	SlotFail Kind = iota
	DeviceFail
	ConfigError
	SEU
)

var kindNames = map[Kind]string{
	SlotFail: "slotfail", DeviceFail: "devfail", ConfigError: "configerr", SEU: "seu",
}

var kindByName = map[string]Kind{
	"slotfail": SlotFail, "devfail": DeviceFail, "configerr": ConfigError, "seu": SEU,
}

// String returns the DSL name of the kind.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one scripted fault.
type Event struct {
	At     device.Micros
	Kind   Kind
	Device device.ID
	Slot   int // SlotFail only
}

// String renders the event in the plan DSL.
func (e Event) String() string {
	if e.Kind == SlotFail {
		return fmt.Sprintf("%d:%s:%s:%d", e.At, e.Kind, e.Device, e.Slot)
	}
	return fmt.Sprintf("%d:%s:%s", e.At, e.Kind, e.Device)
}

// Plan is a fault schedule. Events need not be pre-sorted; the injector
// orders them by time (stable, so same-time events keep plan order).
type Plan struct {
	Events []Event
}

// String renders the plan in the DSL accepted by ParsePlan.
func (p Plan) String() string {
	parts := make([]string, len(p.Events))
	for i, e := range p.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, ";")
}

// ParsePlan parses the fault-plan DSL: ';'-separated events of the form
// "at:kind:device" or "at:slotfail:device:slot", e.g.
//
//	"5000:slotfail:fpga0:1;9000:configerr:fpga0;40000:devfail:dsp0"
//
// An empty string is a valid empty plan.
func ParsePlan(s string) (Plan, error) {
	var p Plan
	if strings.TrimSpace(s) == "" {
		return p, nil
	}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 3 {
			return Plan{}, fmt.Errorf("fault: event %q: want at:kind:device[:slot]", part)
		}
		at, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return Plan{}, fmt.Errorf("fault: event %q: bad time: %w", part, err)
		}
		kind, ok := kindByName[fields[1]]
		if !ok {
			return Plan{}, fmt.Errorf("fault: event %q: unknown kind %q", part, fields[1])
		}
		e := Event{At: device.Micros(at), Kind: kind, Device: device.ID(fields[2])}
		switch {
		case kind == SlotFail:
			if len(fields) != 4 {
				return Plan{}, fmt.Errorf("fault: event %q: slotfail needs a slot index", part)
			}
			slot, err := strconv.Atoi(fields[3])
			if err != nil {
				return Plan{}, fmt.Errorf("fault: event %q: bad slot: %w", part, err)
			}
			e.Slot = slot
		case len(fields) != 3:
			return Plan{}, fmt.Errorf("fault: event %q: %s takes no slot", part, kind)
		}
		p.Events = append(p.Events, e)
	}
	return p, nil
}

// ForDevices filters the plan to events hitting only the named devices
// — how a fleet scopes one storm to a single node's platform while the
// other nodes run clean. Event order is preserved.
func (p Plan) ForDevices(devs ...device.ID) Plan {
	keep := make(map[device.ID]bool, len(devs))
	for _, d := range devs {
		keep[d] = true
	}
	var out Plan
	for _, e := range p.Events {
		if keep[e.Device] {
			out.Events = append(out.Events, e)
		}
	}
	return out
}

// StormTarget names one device a storm may hit. Slots must be the slot
// count for FPGAs and 0 for processors (which then only receive
// device-level and configuration faults).
type StormTarget struct {
	Device device.ID
	Slots  int
}

// StormSpec parameterizes a generated fault storm.
type StormSpec struct {
	// Horizon bounds event times: each event is drawn uniformly from
	// [1, Horizon].
	Horizon device.Micros
	// Counts per fault kind.
	SlotFails, DeviceFails, ConfigErrors, SEUs int
	// Targets are the devices the storm may hit.
	Targets []StormTarget
}

// Storm draws a fault schedule from an explicit random source. The same
// *rand.Rand state always yields the same plan.
func Storm(r *rand.Rand, spec StormSpec) (Plan, error) {
	if len(spec.Targets) == 0 {
		return Plan{}, fmt.Errorf("fault: storm needs at least one target")
	}
	if spec.Horizon == 0 {
		return Plan{}, fmt.Errorf("fault: storm needs a positive horizon")
	}
	var fpgas []StormTarget
	for _, t := range spec.Targets {
		if t.Slots > 0 {
			fpgas = append(fpgas, t)
		}
	}
	if spec.SlotFails > 0 && len(fpgas) == 0 {
		return Plan{}, fmt.Errorf("fault: storm wants slot failures but no target has slots")
	}
	var p Plan
	at := func() device.Micros { return 1 + device.Micros(r.Int63n(int64(spec.Horizon))) }
	for i := 0; i < spec.SlotFails; i++ {
		t := fpgas[r.Intn(len(fpgas))]
		p.Events = append(p.Events, Event{At: at(), Kind: SlotFail, Device: t.Device, Slot: r.Intn(t.Slots)})
	}
	for i := 0; i < spec.DeviceFails; i++ {
		t := spec.Targets[r.Intn(len(spec.Targets))]
		p.Events = append(p.Events, Event{At: at(), Kind: DeviceFail, Device: t.Device})
	}
	for i := 0; i < spec.ConfigErrors; i++ {
		t := spec.Targets[r.Intn(len(spec.Targets))]
		p.Events = append(p.Events, Event{At: at(), Kind: ConfigError, Device: t.Device})
	}
	for i := 0; i < spec.SEUs; i++ {
		t := spec.Targets[r.Intn(len(spec.Targets))]
		p.Events = append(p.Events, Event{At: at(), Kind: SEU, Device: t.Device})
	}
	return p, nil
}

// Applied records one injected event and what it hit.
type Applied struct {
	Event    Event
	Affected []rtsys.TaskID
	// NoVictim is set when a ConfigError/SEU found no eligible task on
	// the target device (the fault hit an idle region) or a
	// SlotFail/DeviceFail hit already-failed or empty capacity.
	NoVictim bool
}

// Observer receives one applied fault event. Observers run
// synchronously on the injecting goroutine, in subscription order,
// after the event has been applied to the system and accounted on the
// metric bundle — an observer sees the platform state the fault left
// behind. Serving layers subscribe their circuit breakers here so
// admission control reacts to platform health, not just to per-request
// failures.
type Observer func(Applied)

// Injector replays a Plan against a run-time system. It never advances
// the clock on its own: the owner either advances the system and calls
// ApplyDue, or lets AdvanceTo stop at each fault time.
type Injector struct {
	sys       *rtsys.System
	events    []Event // sorted by At, stable
	next      int
	log       []Applied
	met       *injMetrics
	observers []Observer
}

// injMetrics is the injector's observability bundle: injections by
// kind, no-victim hits, and a trace of applied events at sim time.
type injMetrics struct {
	enabled  bool
	byKind   map[Kind]*obs.Counter
	noVictim *obs.Counter
	trace    *obs.Ring
}

func newInjMetrics(reg *obs.Registry) *injMetrics {
	m := &injMetrics{
		enabled: reg != nil,
		byKind:  make(map[Kind]*obs.Counter, len(kindNames)),
		noVictim: reg.Counter("qos_fault_no_victim_total",
			"injected faults that hit idle capacity"),
		trace: reg.Ring("qos_fault_trace", "applied fault events (sim micros)", 128),
	}
	for k, name := range kindNames {
		m.byKind[k] = reg.Counter(
			fmt.Sprintf("qos_fault_injections_total{kind=%q}", name),
			"faults injected by kind")
	}
	return m
}

// NewInjector binds a plan to a system.
func NewInjector(sys *rtsys.System, p Plan) *Injector {
	evs := append([]Event(nil), p.Events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return &Injector{sys: sys, events: evs, met: newInjMetrics(nil)}
}

// Instrument registers the injector's metric set on reg.
func (in *Injector) Instrument(reg *obs.Registry) { in.met = newInjMetrics(reg) }

// Subscribe registers fn to be called for every event applied from now
// on (events already in the log are not replayed). Not safe to call
// concurrently with ApplyDue/AdvanceTo — wire observers before the plan
// starts firing, from the driving goroutine.
func (in *Injector) Subscribe(fn Observer) {
	if fn != nil {
		in.observers = append(in.observers, fn)
	}
}

// Pending returns how many events have not fired yet.
func (in *Injector) Pending() int { return len(in.events) - in.next }

// NextAt returns the next event time, if any event remains.
func (in *Injector) NextAt() (device.Micros, bool) {
	if in.next >= len(in.events) {
		return 0, false
	}
	return in.events[in.next].At, true
}

// Log returns every event applied so far.
func (in *Injector) Log() []Applied { return in.log }

// ApplyDue fires every event whose time has been reached by the system
// clock and returns what was applied in this call.
func (in *Injector) ApplyDue() ([]Applied, error) {
	var out []Applied
	for in.next < len(in.events) && in.events[in.next].At <= in.sys.Now() {
		a, err := in.apply(in.events[in.next])
		if err != nil {
			return out, err
		}
		in.next++
		in.log = append(in.log, a)
		in.record(a)
		for _, fn := range in.observers {
			fn(a)
		}
		out = append(out, a)
	}
	return out, nil
}

// record accounts one applied event on the metric bundle.
func (in *Injector) record(a Applied) {
	if c, ok := in.met.byKind[a.Event.Kind]; ok {
		c.Inc()
	}
	if a.NoVictim {
		in.met.noVictim.Inc()
	}
	if in.met.enabled {
		detail := fmt.Sprintf("%s: %d victim(s)", a.Event, len(a.Affected))
		if a.NoVictim {
			detail = fmt.Sprintf("%s: no victim", a.Event)
		}
		in.met.trace.Append(obs.Event{
			At: int64(a.Event.At), Kind: a.Event.Kind.String(), Detail: detail,
		})
	}
}

// AdvanceTo advances the system clock to t, stopping at each due fault
// so configuration errors hit tasks that are genuinely mid-configuration
// at the fault time. It returns everything applied on the way.
func (in *Injector) AdvanceTo(t device.Micros) ([]Applied, error) {
	var out []Applied
	for {
		at, ok := in.NextAt()
		if !ok || at > t {
			break
		}
		if err := in.sys.AdvanceTo(at); err != nil {
			return out, err
		}
		applied, err := in.ApplyDue()
		out = append(out, applied...)
		if err != nil {
			return out, err
		}
	}
	if err := in.sys.AdvanceTo(t); err != nil {
		return out, err
	}
	return out, nil
}

// apply fires one event.
func (in *Injector) apply(e Event) (Applied, error) {
	a := Applied{Event: e}
	switch e.Kind {
	case SlotFail:
		t, err := in.sys.FailSlot(e.Device, e.Slot)
		if err != nil {
			return a, fmt.Errorf("fault: %s: %w", e, err)
		}
		if t == nil {
			a.NoVictim = true
		} else {
			a.Affected = append(a.Affected, t.ID)
		}
	case DeviceFail:
		ts, err := in.sys.FailDevice(e.Device)
		if err != nil {
			return a, fmt.Errorf("fault: %s: %w", e, err)
		}
		if len(ts) == 0 {
			a.NoVictim = true
		}
		for _, t := range ts {
			a.Affected = append(a.Affected, t.ID)
		}
	case ConfigError:
		t := in.victim(e.Device, rtsys.Configuring)
		if t == nil {
			a.NoVictim = true
			return a, nil
		}
		if err := in.sys.ConfigError(t); err != nil {
			return a, fmt.Errorf("fault: %s: %w", e, err)
		}
		a.Affected = append(a.Affected, t.ID)
	case SEU:
		t := in.victim(e.Device, rtsys.Running)
		if t == nil {
			a.NoVictim = true
			return a, nil
		}
		if err := in.sys.SEU(t); err != nil {
			return a, fmt.Errorf("fault: %s: %w", e, err)
		}
		a.Affected = append(a.Affected, t.ID)
	default:
		return a, fmt.Errorf("fault: unknown event kind %v", e.Kind)
	}
	return a, nil
}

// victim returns the lowest-ID task in the wanted state on the device —
// a deterministic choice, so replays are exact.
func (in *Injector) victim(dev device.ID, st rtsys.State) *rtsys.Task {
	for _, t := range in.sys.Tasks() {
		if t.Dev == dev && t.State == st {
			return t
		}
	}
	return nil
}
