package fault

import (
	"errors"
	"math/rand"
	"testing"

	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
	"qosalloc/internal/rtsys"
)

// platform builds the rtsys test platform: one two-slot FPGA, a DSP, a
// GPP, repository filled from the paper case base.
func platform(t *testing.T) (*rtsys.System, *casebase.CaseBase) {
	t.Helper()
	cb, err := casebase.PaperCaseBase()
	if err != nil {
		t.Fatal(err)
	}
	repo := device.NewRepository(20)
	if err := repo.PopulateFromCaseBase(cb); err != nil {
		t.Fatal(err)
	}
	fpga := device.NewFPGA("fpga0", []device.Slot{
		{Slices: 1500, BRAMs: 8, Multipliers: 16},
		{Slices: 1500, BRAMs: 8, Multipliers: 16},
	}, 66)
	dsp := device.NewProcessor("dsp0", casebase.TargetDSP, 1000, 128*1024)
	gpp := device.NewProcessor("gpp0", casebase.TargetGPP, 1000, 256*1024)
	return rtsys.NewSystem(repo, fpga, dsp, gpp), cb
}

func place(t *testing.T, s *rtsys.System, cb *casebase.CaseBase, app string, implID casebase.ImplID, kind casebase.Target) *rtsys.Task {
	t.Helper()
	ft, _ := cb.Type(casebase.TypeFIREqualizer)
	im, ok := ft.Impl(implID)
	if !ok {
		t.Fatalf("impl %d missing", implID)
	}
	task := s.CreateTask(app, casebase.TypeFIREqualizer, 5)
	if err := s.Place(task, s.DevicesByKind(kind)[0], im); err != nil {
		t.Fatal(err)
	}
	return task
}

func TestParsePlanRoundTrip(t *testing.T) {
	const dsl = "5000:slotfail:fpga0:1;9000:configerr:fpga0;40000:devfail:dsp0;60000:seu:fpga0"
	p, err := ParsePlan(dsl)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 4 {
		t.Fatalf("events = %d", len(p.Events))
	}
	want := []Event{
		{At: 5000, Kind: SlotFail, Device: "fpga0", Slot: 1},
		{At: 9000, Kind: ConfigError, Device: "fpga0"},
		{At: 40000, Kind: DeviceFail, Device: "dsp0"},
		{At: 60000, Kind: SEU, Device: "fpga0"},
	}
	for i, e := range p.Events {
		if e != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, e, want[i])
		}
	}
	if p.String() != dsl {
		t.Errorf("String() = %q, want %q", p.String(), dsl)
	}
	back, err := ParsePlan(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != dsl {
		t.Error("round trip not stable")
	}
	// Whitespace and empty fragments are tolerated.
	spaced, err := ParsePlan(" 5000:slotfail:fpga0:1 ;; 9000:configerr:fpga0 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(spaced.Events) != 2 {
		t.Errorf("spaced events = %d", len(spaced.Events))
	}
	// Empty string is a valid empty plan.
	if p, err := ParsePlan("   "); err != nil || len(p.Events) != 0 {
		t.Errorf("blank plan: %v, %d events", err, len(p.Events))
	}
}

func TestParsePlanRejectsMalformedEvents(t *testing.T) {
	for name, dsl := range map[string]string{
		"too few fields":     "5000:slotfail",
		"bad time":           "soon:configerr:fpga0",
		"negative time":      "-1:configerr:fpga0",
		"unknown kind":       "5000:meltdown:fpga0",
		"slotfail no slot":   "5000:slotfail:fpga0",
		"bad slot":           "5000:slotfail:fpga0:x",
		"configerr has slot": "5000:configerr:fpga0:1",
		"devfail has slot":   "5000:devfail:fpga0:0",
	} {
		if _, err := ParsePlan(dsl); err == nil {
			t.Errorf("%s: ParsePlan(%q) should fail", name, dsl)
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		SlotFail: "slotfail", DeviceFail: "devfail",
		ConfigError: "configerr", SEU: "seu", Kind(99): "Kind(99)",
	} {
		if k.String() != want {
			t.Errorf("%d → %q, want %q", k, k.String(), want)
		}
	}
}

func TestStormIsDeterministic(t *testing.T) {
	spec := StormSpec{
		Horizon:   100_000,
		SlotFails: 3, DeviceFails: 1, ConfigErrors: 5, SEUs: 4,
		Targets: []StormTarget{
			{Device: "fpga0", Slots: 2},
			{Device: "dsp0"},
		},
	}
	a, err := Storm(rand.New(rand.NewSource(7)), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Storm(rand.New(rand.NewSource(7)), spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("same seed, different storms:\n%s\n%s", a, b)
	}
	if len(a.Events) != 13 {
		t.Errorf("events = %d, want 13", len(a.Events))
	}
	for _, e := range a.Events {
		if e.At < 1 || e.At > spec.Horizon {
			t.Errorf("event time %d outside [1, %d]", e.At, spec.Horizon)
		}
		if e.Kind == SlotFail {
			if e.Device != "fpga0" || e.Slot < 0 || e.Slot >= 2 {
				t.Errorf("slot failure on %s slot %d", e.Device, e.Slot)
			}
		}
	}
	c, err := Storm(rand.New(rand.NewSource(8)), spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() == c.String() {
		t.Error("different seeds should (overwhelmingly) differ")
	}
}

func TestStormRejectsBadSpecs(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if _, err := Storm(r, StormSpec{Horizon: 100}); err == nil {
		t.Error("no targets must fail")
	}
	if _, err := Storm(r, StormSpec{Targets: []StormTarget{{Device: "x"}}}); err == nil {
		t.Error("zero horizon must fail")
	}
	if _, err := Storm(r, StormSpec{
		Horizon: 100, SlotFails: 1, Targets: []StormTarget{{Device: "dsp0"}},
	}); err == nil {
		t.Error("slot failures without slotted targets must fail")
	}
}

func TestInjectorSlotFailStrandsAndRequeues(t *testing.T) {
	s, cb := platform(t)
	task := place(t, s, cb, "mp3", 1, casebase.TargetFPGA) // slot 0
	if err := s.AdvanceTo(task.ReadyAt); err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(s, Plan{Events: []Event{
		{At: task.ReadyAt + 100, Kind: SlotFail, Device: "fpga0", Slot: 0},
	}})
	applied, err := inj.AdvanceTo(task.ReadyAt + 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 1 || applied[0].NoVictim {
		t.Fatalf("applied = %+v", applied)
	}
	if len(applied[0].Affected) != 1 || applied[0].Affected[0] != task.ID {
		t.Errorf("affected = %v, want [%d]", applied[0].Affected, task.ID)
	}
	// The stranded task is auto-requeued so it can re-bid for capacity.
	if task.State != rtsys.Pending || task.Dev != "" || task.Faults != 1 {
		t.Errorf("task after slot failure = %+v", task)
	}
	m := s.Metrics()
	if m.SlotFaults != 1 || m.Stranded != 1 || m.Requeued != 1 {
		t.Errorf("metrics = %+v", m)
	}
	fpga := s.DevicesByKind(casebase.TargetFPGA)[0].(*device.FPGA)
	if fpga.Health() != device.Degraded || fpga.FailedSlots() != 1 {
		t.Errorf("health = %v, failed slots = %d", fpga.Health(), fpga.FailedSlots())
	}
	if inj.Pending() != 0 || len(inj.Log()) != 1 {
		t.Errorf("pending = %d, log = %d", inj.Pending(), len(inj.Log()))
	}
}

func TestInjectorDeviceFailStrandsAll(t *testing.T) {
	s, cb := platform(t)
	t1 := place(t, s, cb, "a", 2, casebase.TargetDSP)
	t2 := place(t, s, cb, "b", 2, casebase.TargetDSP)
	inj := NewInjector(s, Plan{Events: []Event{
		{At: 10, Kind: DeviceFail, Device: "dsp0"},
	}})
	applied, err := inj.AdvanceTo(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 1 || len(applied[0].Affected) != 2 {
		t.Fatalf("applied = %+v", applied)
	}
	if applied[0].Affected[0] != t1.ID || applied[0].Affected[1] != t2.ID {
		t.Errorf("affected order = %v", applied[0].Affected)
	}
	dsp := s.DevicesByKind(casebase.TargetDSP)[0]
	if dsp.Health() != device.Failed {
		t.Errorf("health = %v", dsp.Health())
	}
	// A failed device refuses placements with the sentinel error.
	t3 := s.CreateTask("c", casebase.TypeFIREqualizer, 1)
	ft, _ := cb.Type(casebase.TypeFIREqualizer)
	im, _ := ft.Impl(2)
	err = s.Place(t3, dsp, im)
	if !errors.Is(err, device.ErrDeviceFailed) {
		t.Errorf("place on failed device: %v, want ErrDeviceFailed", err)
	}
}

func TestInjectorConfigErrorHitsConfiguringTask(t *testing.T) {
	s, cb := platform(t)
	task := place(t, s, cb, "mp3", 1, casebase.TargetFPGA)
	if task.ReadyAt <= 200 {
		t.Fatalf("config window too short for the test: ready at %d", task.ReadyAt)
	}
	// AdvanceTo must stop the clock AT the fault time: advancing straight
	// to ReadyAt would let the task reach Running and the transient
	// config error would find no victim.
	inj := NewInjector(s, Plan{Events: []Event{
		{At: 200, Kind: ConfigError, Device: "fpga0"},
	}})
	applied, err := inj.AdvanceTo(task.ReadyAt)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 1 || applied[0].NoVictim || len(applied[0].Affected) != 1 {
		t.Fatalf("applied = %+v", applied)
	}
	// At the horizon the task is still recovering or back to configuring;
	// the retry pushed ReadyAt out.
	if task.ConfigRetries != 1 {
		t.Errorf("retries = %d", task.ConfigRetries)
	}
	retryReady := task.NextRetryAt + task.ConfigCost
	if err := s.AdvanceTo(retryReady); err != nil {
		t.Fatal(err)
	}
	if task.State != rtsys.Running {
		t.Errorf("state after retry = %v", task.State)
	}
	m := s.Metrics()
	if m.ConfigErrors != 1 || m.Retries != 1 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestInjectorNoVictim(t *testing.T) {
	s, _ := platform(t)
	inj := NewInjector(s, Plan{Events: []Event{
		{At: 10, Kind: ConfigError, Device: "fpga0"},
		{At: 20, Kind: SEU, Device: "dsp0"},
		{At: 30, Kind: SlotFail, Device: "fpga0", Slot: 1},
	}})
	applied, err := inj.AdvanceTo(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 3 {
		t.Fatalf("applied = %d", len(applied))
	}
	for i, a := range applied {
		if !a.NoVictim || len(a.Affected) != 0 {
			t.Errorf("event %d on an idle platform must report NoVictim: %+v", i, a)
		}
	}
}

func TestInjectorSEUScrubsRunningTask(t *testing.T) {
	s, cb := platform(t)
	task := place(t, s, cb, "mp3", 1, casebase.TargetFPGA)
	if err := s.AdvanceTo(task.ReadyAt); err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(s, Plan{Events: []Event{
		{At: task.ReadyAt + 50, Kind: SEU, Device: "fpga0"},
	}})
	if _, err := inj.AdvanceTo(task.ReadyAt + 50); err != nil {
		t.Fatal(err)
	}
	if task.State != rtsys.Recovering {
		t.Fatalf("state = %v, want recovering (scrubbing)", task.State)
	}
	// Scrubbing keeps the placement: the slot is still held.
	if task.Dev != "fpga0" {
		t.Errorf("placement lost: dev = %q", task.Dev)
	}
	if err := s.AdvanceTo(task.NextRetryAt + task.ConfigCost); err != nil {
		t.Fatal(err)
	}
	if task.State != rtsys.Running {
		t.Errorf("state after scrub = %v", task.State)
	}
	if s.Metrics().SEUs != 1 {
		t.Errorf("metrics = %+v", s.Metrics())
	}
}

func TestInjectorOrdersEventsByTime(t *testing.T) {
	s, _ := platform(t)
	inj := NewInjector(s, Plan{Events: []Event{
		{At: 300, Kind: ConfigError, Device: "fpga0"},
		{At: 100, Kind: SlotFail, Device: "fpga0", Slot: 0},
		{At: 200, Kind: SEU, Device: "dsp0"},
	}})
	if at, ok := inj.NextAt(); !ok || at != 100 {
		t.Errorf("NextAt = %d, %v", at, ok)
	}
	applied, err := inj.AdvanceTo(1000)
	if err != nil {
		t.Fatal(err)
	}
	var times []device.Micros
	for _, a := range applied {
		times = append(times, a.Event.At)
	}
	if len(times) != 3 || times[0] != 100 || times[1] != 200 || times[2] != 300 {
		t.Errorf("apply order = %v", times)
	}
	if _, ok := inj.NextAt(); ok {
		t.Error("no events should remain")
	}
}

func TestInjectorUnknownDevice(t *testing.T) {
	s, _ := platform(t)
	inj := NewInjector(s, Plan{Events: []Event{
		{At: 10, Kind: DeviceFail, Device: "nosuch"},
	}})
	if _, err := inj.AdvanceTo(100); err == nil {
		t.Error("failing an unknown device must error")
	}
}

// TestInjectorObserversSeeEveryAppliedEvent pins the subscription
// contract: observers fire once per applied event, in apply order,
// after the event landed on the system — the hook admission-control
// breakers hang off.
func TestInjectorObserversSeeEveryAppliedEvent(t *testing.T) {
	s, _ := platform(t)
	inj := NewInjector(s, Plan{Events: []Event{
		{At: 300, Kind: ConfigError, Device: "fpga0"},
		{At: 100, Kind: SlotFail, Device: "fpga0", Slot: 0},
		{At: 200, Kind: SEU, Device: "dsp0"},
	}})
	var seen []Applied
	var healthAtEvent []device.Health
	inj.Subscribe(func(a Applied) { seen = append(seen, a) })
	inj.Subscribe(func(Applied) {
		// The observer runs after the fault hit: the first event kills
		// fpga0 slot 0, so the device is already degraded when seen.
		healthAtEvent = append(healthAtEvent, s.Devices()[0].Health())
	})
	inj.Subscribe(nil) // a nil observer is dropped, not called

	if _, err := inj.AdvanceTo(1000); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(inj.Log()) {
		t.Fatalf("observers saw %d events, log has %d", len(seen), len(inj.Log()))
	}
	for i, a := range inj.Log() {
		if seen[i].Event != a.Event {
			t.Errorf("event %d: observer saw %v, log has %v", i, seen[i].Event, a.Event)
		}
	}
	if len(healthAtEvent) == 0 || healthAtEvent[0] == device.Healthy {
		t.Errorf("observer ran before the slot failure landed: healths %v", healthAtEvent)
	}
}
