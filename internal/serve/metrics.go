package serve

import (
	"fmt"

	"qosalloc/internal/obs"
)

// batchBuckets are the batch-size histogram bounds: powers of two up to
// the largest batch a shard will ever coalesce.
var batchBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128}

// metrics is the observability bundle of the service layer. Like the
// retrieval bundle, an uninstrumented service carries a dangling bundle
// over a nil registry: the hot path never branches on "is observability
// on". Per-shard gauges are labeled series of one base metric, so the
// exposition groups them under shared HELP/TYPE.
type metrics struct {
	enqueued     *obs.Counter
	shed         *obs.Counter
	batches      *obs.Counter
	dedup        *obs.Counter
	tokenHits    *obs.Counter
	canceled     *obs.Counter
	drainFlushed *obs.Counter
	allocOK      *obs.Counter
	allocFail    *obs.Counter

	batchSize *obs.Histogram

	draining *obs.Gauge // 1 once Close/Drain has begun
	epoch    *obs.Gauge // committed case-base epoch (1 until a commit)

	commitsFold       *obs.Counter
	commitsStructural *obs.Counter
	commitsManual     *obs.Counter
	observations      *obs.Counter
	foldedObs         *obs.Counter
	staleRetries      *obs.Counter

	queueDepth []*obs.Gauge // per shard
	busy       []*obs.Gauge // per shard, 0/1 occupancy
}

// newMetrics registers the serve metric set for n shards on reg (nil
// yields a dangling bundle).
func newMetrics(reg *obs.Registry, n int) *metrics {
	m := &metrics{
		enqueued:  reg.Counter("qos_serve_enqueued_total", "requests admitted to a shard queue"),
		shed:      reg.Counter("qos_serve_shed_total", "requests refused by admission control (ErrOverload)"),
		batches:   reg.Counter("qos_serve_batches_total", "micro-batches processed across all shards"),
		dedup:     reg.Counter("qos_serve_dedup_hits_total", "in-batch requests served by another job's retrieval (singleflight)"),
		tokenHits: reg.Counter("qos_serve_token_hits_total", "retrievals bypassed by a shard token-cache hit"),
		canceled:  reg.Counter("qos_serve_canceled_total", "jobs dropped because the caller's context died"),
		drainFlushed: reg.Counter("qos_serve_drain_flushed_total",
			"queued jobs answered during the shutdown flush"),
		draining:  reg.Gauge("qos_serve_draining", "1 once service shutdown (drain) has begun"),
		allocOK:   reg.Counter("qos_serve_allocations_total{outcome=\"placed\"}", "allocation calls that placed a variant"),
		allocFail: reg.Counter("qos_serve_allocations_total{outcome=\"failed\"}", "allocation calls that returned an error"),
		batchSize: reg.Histogram("qos_serve_batch_size", "requests coalesced per micro-batch", batchBuckets),
		epoch:     reg.Gauge("qos_serve_epoch", "committed case-base epoch installed by the snapshot swap"),
		commitsFold: reg.Counter("qos_serve_commits_total{reason=\"fold\"}",
			"epoch commits tripped by the fold policy (threshold or age)"),
		commitsStructural: reg.Counter("qos_serve_commits_total{reason=\"structural\"}",
			"epoch commits forced by Retain/Retire"),
		commitsManual: reg.Counter("qos_serve_commits_total{reason=\"manual\"}",
			"epoch commits forced by CommitNow"),
		observations: reg.Counter("qos_serve_observations_total",
			"run-time observations accumulated into writer deltas"),
		foldedObs: reg.Counter("qos_serve_folded_attrs_total",
			"attribute values folded from deltas into committed snapshots"),
		staleRetries: reg.Counter("qos_serve_stale_retries_total",
			"Allocate candidate fetches retried because a commit landed in between"),
	}
	for i := 0; i < n; i++ {
		m.queueDepth = append(m.queueDepth, reg.Gauge(
			fmt.Sprintf("qos_serve_queue_depth{shard=%q}", fmt.Sprint(i)),
			"requests waiting in a shard's admission queue"))
		m.busy = append(m.busy, reg.Gauge(
			fmt.Sprintf("qos_serve_shard_busy{shard=%q}", fmt.Sprint(i)),
			"1 while the shard's engine is scoring a batch"))
	}
	return m
}
