// Package serve is the concurrent allocation service layer (DESIGN.md
// §9): a sharded, batching front end between many application clients
// and the single allocation manager of fig. 1.
//
// The paper's retrieval unit wins by streaming pre-sorted linear lists
// through a fixed datapath; its system model assumes many concurrent
// applications negotiating QoS against one allocation manager. This
// package closes that gap for the software system:
//
//   - Sharding. The case base is partitioned by TypeID across N
//     retrieval engines, so requests for unrelated function types score
//     in parallel. Each shard owns a single-threaded Engine (the
//     paper's FSM is single-threaded too), a bypass TokenCache, and an
//     admission queue.
//
//   - Micro-batching. Concurrent requests landing on one shard coalesce
//     into bounded batches. Within a batch, identical request
//     signatures are deduplicated singleflight-style — one list walk
//     serves every waiter — and across batches the shard's TokenCache
//     bypasses retrieval for signatures it has already resolved. The
//     optional linger budget is measured in sim-time, never a wall
//     clock, so instrumented runs stay deterministic.
//
//   - Admission control. Each shard queue is bounded; beyond it the
//     service sheds load with a typed *ErrOverload carrying a
//     retry-after hint instead of queuing without bound.
//
// Placements feed the alloc.Manager under one serialization lock — the
// manager and run-time system model a single platform and are not
// concurrency-safe — so throughput comes from the retrieval side:
// parallel shards, deduplication, and token bypass.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"qosalloc/internal/alloc"
	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
	"qosalloc/internal/obs"
	"qosalloc/internal/retrieval"
	"qosalloc/internal/rtsys"
)

// Defaults for zero Config fields.
const (
	DefaultShards   = 4
	DefaultMaxBatch = 32
	DefaultMaxQueue = 256
)

// Config tunes the service. The zero value gives the defaults above, no
// linger, the paper's retrieval measure, and the manager's default
// policy.
type Config struct {
	// Shards is the number of retrieval engines the case base is
	// partitioned across (by TypeID modulo Shards).
	Shards int
	// MaxBatch bounds how many requests one shard coalesces per
	// micro-batch.
	MaxBatch int
	// MaxQueue bounds each shard's admission queue; submissions beyond
	// it are shed with *ErrOverload.
	MaxQueue int
	// BatchWindow is the linger budget in sim-time microseconds: a
	// shard with a partial batch keeps accepting arrivals until the
	// oldest queued job has aged past the window on the sim clock
	// (published by Advance/Tick). Zero flushes as soon as the queue
	// runs dry. The worker never sleeps on a wall clock.
	BatchWindow device.Micros
	// Engine configures every shard engine.
	Engine retrieval.Options
	// Manager tunes the allocation policy fed by AllocateBatch and
	// Allocate.
	Manager alloc.Options
	// Learning enables live case-base mutation: Observe/Retain/Retire/
	// CommitNow accumulate into volatile deltas and commit through the
	// epoch-snapshot swap pipeline. The zero value leaves the case base
	// frozen (mutation calls return ErrLearningOff).
	Learning LearnConfig
}

// Learning defaults for zero LearnConfig fields (with Enabled set).
const (
	DefaultAlpha         = 0.5
	DefaultFoldThreshold = 64
)

// LearnConfig tunes the deferred net-commit layer (DESIGN.md §14).
type LearnConfig struct {
	// Enabled turns the mutation API on.
	Enabled bool
	// Alpha is the EWMA weight of new observations in (0, 1];
	// out-of-range values (including zero) fall back to DefaultAlpha.
	Alpha float64
	// FoldThreshold trips a commit once this many attribute values have
	// pending LSB-visible revisions across all writer stripes; <= 0
	// falls back to DefaultFoldThreshold.
	FoldThreshold int
	// MaxAge trips a commit once the oldest pending observation is this
	// old on the sim clock, checked at every mutation entry point and
	// CommitNow (never from a wall clock). Zero disables the age bound.
	MaxAge device.Micros
}

// ErrClosed reports a call into a service whose Close has begun.
var ErrClosed = errors.New("serve: service closed")

// ErrDraining reports a call into a service whose shutdown has begun:
// the service stopped admitting work and is flushing the jobs already
// queued. It wraps ErrClosed, so existing errors.Is(err, ErrClosed)
// checks keep rejecting, while errors.Is(err, ErrDraining) lets a
// front end distinguish shutdown (permanent for this process — fail
// over) from overload (*ErrOverload — retry here after the hint).
var ErrDraining = fmt.Errorf("%w: draining", ErrClosed)

// ErrOverload is the typed admission-control rejection: the target
// shard's queue is full. RetryAfter is a coarse sim-time hint — the
// linger window plus the §4.2 software-retrieval scale (~10 µs) per
// queued request — after which the queue has likely drained.
type ErrOverload struct {
	Shard      int
	QueueLen   int
	RetryAfter device.Micros
}

func (e *ErrOverload) Error() string {
	return fmt.Sprintf("serve: shard %d overloaded (%d queued); retry after ~%d µs",
		e.Shard, e.QueueLen, e.RetryAfter)
}

// Stats counts service activity. All fields are monotone except
// MaxBatch (a high-water mark).
type Stats struct {
	Enqueued         int64 // jobs admitted to shard queues
	Shed             int64 // jobs refused with ErrOverload
	Batches          int64 // micro-batches processed (queued + pre-formed)
	BatchedJobs      int64 // jobs across those batches
	DedupHits        int64 // jobs served by another job's walk (singleflight)
	TokenHits        int64 // retrievals bypassed by a shard token cache
	Canceled         int64 // jobs dropped on a dead caller context
	DrainFlushed     int64 // queued jobs answered during the drain flush
	MaxBatch         int64 // largest batch coalesced so far
	EngineRetrievals int64 // actual engine list walks across shards
	Allocated        int64 // allocation calls that placed a variant
	AllocFailed      int64 // allocation calls that returned an error
}

type jobKind uint8

const (
	jobRetrieve   jobKind = iota // best match for the caller
	jobCandidates                // N-best list feeding a placement
)

// job is one queued retrieval unit.
type job struct {
	ctx  context.Context
	kind jobKind
	req  casebase.Request
	n    int    // candidate depth for jobCandidates
	sig  string // request signature (dedup key)
	at   device.Micros
	done chan jobResult // buffered(1); the worker always sends
}

type jobResult struct {
	best  retrieval.Result
	list  []retrieval.Result
	epoch uint64 // snapshot epoch the retrieval ran against
	err   error
}

// jobKey is the singleflight key: kind-qualified signature, so a
// best-match walk never masks a deeper candidate walk.
func jobKey(j *job) string {
	if j.kind == jobCandidates {
		return fmt.Sprintf("c%d|%s", j.n, j.sig)
	}
	return "r|" + j.sig
}

// shard is one partition: a queue plus the mutex serializing its slice
// of the current snapshot (engine and token cache). The engine itself
// lives in the snapshot — an epoch swap replaces it wholesale — but the
// shard mutex persists across swaps, which is what makes it the swap
// fence: a committer that locks and unlocks every shard mutex after
// storing the new snapshot pointer knows no reader still works on the
// old epoch.
type shard struct {
	idx int
	q   chan *job

	mu sync.Mutex // serializes this shard's engine and token cache
}

// Service is the concurrent allocation front end. Create with New,
// dispose with Close. Retrieve/RetrieveBatch/Allocate/AllocateBatch are
// safe for concurrent use by many goroutines; the underlying manager
// and run-time system are serialized internally.
type Service struct {
	cfg Config
	sys *rtsys.System
	mgr *alloc.Manager

	shards []*shard
	// snap is the committed epoch: case base + per-shard engines +
	// per-shard token caches, swapped as one unit. Readers load it once
	// per batch under their shard mutex and never take any other lock.
	snap atomic.Pointer[snapshot]
	met  atomic.Pointer[metrics]

	// commitMu serializes the swap pipeline (and guards retMet, which
	// every freshly built epoch's engines are instrumented with).
	commitMu sync.Mutex
	retMet   *retrieval.Metrics
	// mgrEpoch is the epoch the manager's case base matches; guarded by
	// allocMu so placement can detect candidates from a stale epoch.
	mgrEpoch uint64
	// pastRetrievals accumulates engine walk counts from retired
	// snapshots so Stats stays cumulative across epochs.
	pastRetrievals atomic.Int64

	// ls is the deferred net-commit state; nil when learning is off.
	ls *learnState

	// journal is the epoch replay witness: one line per commit, hashed
	// by ReplayHash. Fold points and epoch numbering are part of the
	// replay contract (DESIGN.md §14).
	journalMu sync.Mutex
	journal   []string

	// now mirrors the sim clock for the linger budget and overload
	// hints; reading rtsys.System.Now directly from workers would race
	// the driver advancing it.
	now    atomic.Uint64
	tickMu sync.Mutex
	tickCh chan struct{} // closed and replaced on every clock advance

	allocMu sync.Mutex // serializes Manager and rtsys access

	enqueued, shed, batches, batchedJobs atomic.Int64
	dedupHits, tokenHits, canceled       atomic.Int64
	maxBatch, drainFlushed               atomic.Int64
	allocated, allocFailed               atomic.Int64
	commits, folds, observations         atomic.Int64
	foldedObs, retainedN, retiredN       atomic.Int64
	staleRetries                         atomic.Int64

	// drainMu fences admission against shutdown: submissions hold the
	// read side across the draining check and the queue send, Close
	// holds the write side while raising the flag — so a job is either
	// refused with ErrDraining or fully enqueued before the workers
	// start their final flush. Nothing admitted is ever abandoned.
	drainMu   sync.RWMutex
	draining  bool
	drain     chan struct{}  // closed when shutdown begins
	inflight  sync.WaitGroup // Allocate/*Batch calls past admission
	drainOnce sync.Once
	done      chan struct{} // closed when the flush has finished
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// New builds the service over a shared immutable case base and a
// run-time system, and starts one worker per shard. The caller must
// Close it to stop the workers.
func New(cb *casebase.CaseBase, sys *rtsys.System, cfg Config) *Service {
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = DefaultMaxQueue
	}
	if cfg.Manager.NBest <= 0 {
		cfg.Manager.NBest = 3
	}
	if cfg.Learning.Enabled {
		if cfg.Learning.Alpha <= 0 || cfg.Learning.Alpha > 1 {
			cfg.Learning.Alpha = DefaultAlpha
		}
		if cfg.Learning.FoldThreshold <= 0 {
			cfg.Learning.FoldThreshold = DefaultFoldThreshold
		}
	}
	s := &Service{
		cfg:      cfg,
		sys:      sys,
		mgr:      alloc.New(cb, sys, cfg.Manager),
		mgrEpoch: 1,
		tickCh:   make(chan struct{}),
		drain:    make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.snap.Store(newSnapshot(1, cb, cfg.Shards, cfg.Engine, nil))
	s.met.Store(newMetrics(nil, cfg.Shards))
	s.met.Load().epoch.Set(1)
	s.now.Store(uint64(sys.Now()))
	if cfg.Learning.Enabled {
		s.ls = newLearnState(cb, cfg.Learning, cfg.Shards)
	}
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{
			idx: i,
			q:   make(chan *job, cfg.MaxQueue),
		}
		s.shards = append(s.shards, sh)
		s.wg.Add(1)
		go s.worker(sh)
	}
	return s
}

// Close drains the service and stops the shard workers: admission ends
// immediately (new submissions are refused with ErrDraining), every
// job already queued is batched, scored and answered, and only then do
// the workers exit. Callers blocked in Retrieve/Allocate therefore get
// their results, not an error. Close is idempotent and safe to call
// concurrently; every call blocks until the flush has finished.
func (s *Service) Close() {
	s.drainOnce.Do(func() {
		s.drainMu.Lock()
		s.draining = true
		s.drainMu.Unlock()
		s.met.Load().draining.Set(1)
		close(s.drain)
	})
	s.wg.Wait()       // shard workers flush their queues and exit
	s.inflight.Wait() // Allocate/*Batch calls finish their placements
	s.closeOnce.Do(func() { close(s.done) })
}

// Drain is Close under the name shutdown paths read naturally:
// stop admitting, flush in-flight batches, stop.
func (s *Service) Drain() { s.Close() }

// Draining reports whether shutdown has begun (Close/Drain called).
func (s *Service) Draining() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	return s.draining
}

// Shards returns the shard count.
func (s *Service) Shards() int { return len(s.shards) }

// Manager returns the underlying allocation manager. Direct calls on it
// must not race the service's Allocate*/Advance/Release — drive it from
// the same goroutine that drives the service, or not at all.
func (s *Service) Manager() *alloc.Manager { return s.mgr }

// System returns the underlying run-time system (same caveat as
// Manager).
func (s *Service) System() *rtsys.System { return s.sys }

// Instrument registers the serve metric set on reg and threads the
// registry through the current epoch's shard engines and the manager.
// Engines built by later commits inherit the same retrieval metric set.
func (s *Service) Instrument(reg *obs.Registry) {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	m := newMetrics(reg, len(s.shards))
	sn := s.snap.Load()
	m.epoch.Set(int64(sn.epoch))
	s.met.Store(m)
	s.retMet = retrieval.NewMetrics(reg)
	for _, sh := range s.shards {
		sh.mu.Lock()
		sn.engines[sh.idx].Instrument(s.retMet)
		sh.mu.Unlock()
	}
	s.allocMu.Lock()
	s.mgr.Instrument(reg)
	s.allocMu.Unlock()
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	st := Stats{
		Enqueued:     s.enqueued.Load(),
		Shed:         s.shed.Load(),
		Batches:      s.batches.Load(),
		BatchedJobs:  s.batchedJobs.Load(),
		DedupHits:    s.dedupHits.Load(),
		TokenHits:    s.tokenHits.Load(),
		Canceled:     s.canceled.Load(),
		DrainFlushed: s.drainFlushed.Load(),
		MaxBatch:     s.maxBatch.Load(),
		Allocated:    s.allocated.Load(),
		AllocFailed:  s.allocFailed.Load(),
	}
	// Walk counts live in the epoch's engines; retired epochs roll into
	// pastRetrievals at commit. A commit racing this loop can transiently
	// undercount — acceptable for a monitoring snapshot.
	st.EngineRetrievals = s.pastRetrievals.Load()
	for _, sh := range s.shards {
		sh.mu.Lock()
		sn := s.snap.Load()
		st.EngineRetrievals += int64(sn.engines[sh.idx].Stats().Retrievals)
		sh.mu.Unlock()
	}
	return st
}

// --- Clock plumbing ----------------------------------------------------

// Advance moves the shared sim clock under the service's serialization
// lock and publishes the new time to the linger budget.
func (s *Service) Advance(to device.Micros) error {
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	err := s.sys.AdvanceTo(to)
	s.tick(s.sys.Now())
	return err
}

// Tick publishes sim-clock progress made outside Advance (a driver
// advancing the runtime directly must call it, or lingering shards
// never see time pass).
func (s *Service) Tick(now device.Micros) { s.tick(now) }

func (s *Service) tick(now device.Micros) {
	s.now.Store(uint64(now))
	s.tickMu.Lock()
	close(s.tickCh)
	s.tickCh = make(chan struct{})
	s.tickMu.Unlock()
}

// tickSignal returns a channel closed at the next clock advance.
func (s *Service) tickSignal() <-chan struct{} {
	s.tickMu.Lock()
	defer s.tickMu.Unlock()
	return s.tickCh
}

// Release completes a task under the serialization lock.
func (s *Service) Release(id rtsys.TaskID) error {
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	return s.mgr.Release(id)
}

// Exclusive runs fn with the runtime serialization lock held, then
// republishes the sim clock to the shards. It is the safe way for a
// driver to compose external platform mutation — fault injection,
// recovery sweeps, manual task surgery on Manager()/System() — with
// live service traffic; without it such calls race the shard workers'
// placements. fn must not call back into the service's locked entry
// points (Advance, Release, Allocate*, ReplacePending, Exclusive).
func (s *Service) Exclusive(fn func()) {
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	fn()
	s.tick(s.sys.Now())
}

// ReplacePending re-places preempted tasks under the serialization
// lock, returning how many came back.
func (s *Service) ReplacePending() int {
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	return s.mgr.ReplacePending()
}

// --- Public request paths ---------------------------------------------

// Retrieve returns the most similar implementation for req, batched and
// deduplicated with concurrent callers on the same shard.
func (s *Service) Retrieve(ctx context.Context, req casebase.Request) (retrieval.Result, error) {
	if err := retrieval.Canceled(ctx); err != nil {
		return retrieval.Result{}, err
	}
	j := &job{ctx: ctx, kind: jobRetrieve, req: req, done: make(chan jobResult, 1)}
	if err := s.submit(j); err != nil {
		return retrieval.Result{}, err
	}
	select {
	case r := <-j.done:
		return r.best, r.err
	case <-ctx.Done():
		return retrieval.Result{}, retrieval.Canceled(ctx)
	case <-s.done:
		// done closes only after the drain flush answered every
		// admitted job, so the reply is already buffered — but select
		// picks arms at random when both are ready; prefer the result.
		select {
		case r := <-j.done:
			return r.best, r.err
		default:
		}
		return retrieval.Result{}, ErrDraining
	}
}

// Allocate retrieves the N-best candidates for req on its shard, then
// feeds them to the allocation manager under the serialization lock.
// It is Manager.Request with the retrieval half sharded and batched.
// Candidates scored against an epoch a commit has since retired are
// re-fetched (the manager's case base moved under them); after
// maxStaleRetries re-fetches the call fails with *ErrStaleEpoch.
func (s *Service) Allocate(ctx context.Context, app string, req casebase.Request, basePrio int) (*alloc.Decision, error) {
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.inflight.Done()
	met := s.met.Load()
	for attempt := 0; ; attempt++ {
		cands, epoch, err := s.candidates(ctx, req)
		if err == nil {
			err = retrieval.Canceled(ctx)
		}
		if err != nil {
			s.allocFailed.Add(1)
			met.allocFail.Inc()
			return nil, err
		}
		s.allocMu.Lock()
		if epoch != s.mgrEpoch {
			committed := s.mgrEpoch
			s.allocMu.Unlock()
			if attempt < maxStaleRetries {
				s.staleRetries.Add(1)
				met.staleRetries.Inc()
				continue
			}
			s.allocFailed.Add(1)
			met.allocFail.Inc()
			return nil, &ErrStaleEpoch{At: epoch, Committed: committed}
		}
		d, err := s.mgr.PlaceCandidates(app, req, append([]retrieval.Result(nil), cands...), basePrio)
		s.now.Store(uint64(s.sys.Now()))
		s.allocMu.Unlock()
		if err != nil {
			s.allocFailed.Add(1)
			met.allocFail.Inc()
			return nil, err
		}
		s.allocated.Add(1)
		met.allocOK.Inc()
		return d, nil
	}
}

// maxStaleRetries bounds how many times Allocate re-fetches candidates
// when commits keep landing between its retrieval and its placement.
const maxStaleRetries = 2

// candidates fetches the N-best list for one request through the shard
// queue, returning the epoch it was scored against.
func (s *Service) candidates(ctx context.Context, req casebase.Request) ([]retrieval.Result, uint64, error) {
	j := &job{ctx: ctx, kind: jobCandidates, req: req, n: s.cfg.Manager.NBest, done: make(chan jobResult, 1)}
	if err := s.submit(j); err != nil {
		return nil, 0, err
	}
	select {
	case r := <-j.done:
		return r.list, r.epoch, r.err
	case <-ctx.Done():
		return nil, 0, retrieval.Canceled(ctx)
	case <-s.done:
		select { // prefer the buffered reply (see Retrieve)
		case r := <-j.done:
			return r.list, r.epoch, r.err
		default:
		}
		return nil, 0, ErrDraining
	}
}

// RetrieveOutcome is one RetrieveBatch element: the result or the
// per-request error (e.g. *retrieval.ErrNoMatch).
type RetrieveOutcome struct {
	Result retrieval.Result
	Err    error
}

// RetrieveBatch retrieves every request, grouping them by shard into
// pre-formed micro-batches processed in parallel across shards. Batch
// composition depends only on the input order and the shard map, so a
// deterministic caller gets deterministic batching — the property the
// serve experiment pins. Results are positionally aligned with reqs.
func (s *Service) RetrieveBatch(ctx context.Context, reqs []casebase.Request) ([]RetrieveOutcome, error) {
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.inflight.Done()
	bests, _, _, errs, err := s.fanout(ctx, reqs, jobRetrieve, 0)
	if err != nil {
		return nil, err
	}
	out := make([]RetrieveOutcome, len(reqs))
	for i := range reqs {
		out[i] = RetrieveOutcome{Result: bests[i], Err: errs[i]}
	}
	return out, nil
}

// BatchResult is one AllocateBatch element: the decision or the
// per-request error (e.g. *alloc.ErrNoFeasible).
type BatchResult struct {
	Decision *alloc.Decision
	Err      error
}

// AllocateBatch retrieves candidates for every request in parallel
// across shards (pre-formed batches, like RetrieveBatch), then places
// them strictly in input order under the serialization lock — so the
// allocation outcome of a deterministic input is deterministic, no
// matter how the shards interleave. An element whose candidates were
// scored against an epoch a commit has since retired fails with a
// per-item *ErrStaleEpoch (the batch is not re-fetched; the caller
// retries the marked items).
func (s *Service) AllocateBatch(ctx context.Context, app string, reqs []casebase.Request, basePrio int) ([]BatchResult, error) {
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.inflight.Done()
	_, lists, epochs, errs, err := s.fanout(ctx, reqs, jobCandidates, s.cfg.Manager.NBest)
	if err != nil {
		return nil, err
	}
	met := s.met.Load()
	out := make([]BatchResult, len(reqs))
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	for i := range reqs {
		if errs[i] != nil {
			s.allocFailed.Add(1)
			met.allocFail.Inc()
			out[i].Err = errs[i]
			continue
		}
		if epochs[i] != s.mgrEpoch {
			s.allocFailed.Add(1)
			met.allocFail.Inc()
			out[i].Err = &ErrStaleEpoch{At: epochs[i], Committed: s.mgrEpoch}
			continue
		}
		d, err := s.mgr.PlaceCandidates(app, reqs[i], append([]retrieval.Result(nil), lists[i]...), basePrio)
		if err != nil {
			s.allocFailed.Add(1)
			met.allocFail.Inc()
			out[i].Err = err
			continue
		}
		s.allocated.Add(1)
		met.allocOK.Inc()
		out[i].Decision = d
	}
	s.now.Store(uint64(s.sys.Now()))
	return out, nil
}

// acquire guards the Allocate/*Batch entry points and registers the
// call on the in-flight group Close waits for: a call either sees
// ErrDraining here, or its placements finish before Close returns. The
// check and the Add sit under the drain fence so the group can never
// grow after Close started waiting on it.
func (s *Service) acquire(ctx context.Context) error {
	if err := retrieval.Canceled(ctx); err != nil {
		return err
	}
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining {
		return ErrDraining
	}
	s.inflight.Add(1)
	return nil
}

// --- Shard routing & admission ----------------------------------------

func (s *Service) shardFor(t casebase.TypeID) *shard {
	return s.shards[int(t)%len(s.shards)]
}

// submit routes a job to its shard queue, shedding with *ErrOverload
// when the queue is full. The admission check and the queue send sit
// under the drain fence: a submission either lands before the workers'
// final flush or is refused with ErrDraining — never admitted and then
// abandoned.
func (s *Service) submit(j *job) error {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining {
		return ErrDraining
	}
	sh := s.shardFor(j.req.Type)
	j.sig = retrieval.Signature(j.req)
	j.at = device.Micros(s.now.Load())
	met := s.met.Load()
	select {
	case sh.q <- j:
		s.enqueued.Add(1)
		met.enqueued.Inc()
		met.queueDepth[sh.idx].Set(int64(len(sh.q)))
		return nil
	default:
		s.shed.Add(1)
		met.shed.Inc()
		qn := len(sh.q)
		return &ErrOverload{Shard: sh.idx, QueueLen: qn, RetryAfter: s.retryAfter(qn)}
	}
}

// retrievalCostMicros is the §4.2 software-retrieval scale: one list
// walk on the MicroBlaze-class baseline costs on the order of 10 µs.
// It prices the queued work behind an overload rejection.
const retrievalCostMicros = 10

// retryAfter derives the *ErrOverload hint from the observed queue
// depth at shed time: every queued job ahead costs one list walk on
// the §4.2 software scale, and every micro-batch dispatch the backlog
// still needs pays one linger window. The hint is monotone in the
// observed depth — a deeper queue never promises a sooner retry — so
// clients backing off on it spread out instead of re-colliding.
func (s *Service) retryAfter(queued int) device.Micros {
	dispatches := device.Micros((queued + s.cfg.MaxBatch) / s.cfg.MaxBatch) // ceil((queued+1)/MaxBatch)
	return dispatches*s.cfg.BatchWindow + device.Micros(queued+1)*retrievalCostMicros
}

// --- Workers & batch execution ----------------------------------------

// worker drains one shard's queue, coalescing micro-batches. When
// shutdown begins it switches to the final flush: every job already
// admitted is batched and answered before the worker exits.
func (s *Service) worker(sh *shard) {
	defer s.wg.Done()
	batch := make([]*job, 0, s.cfg.MaxBatch)
	for {
		// Drain wins over new queue picks: once shutdown has begun the
		// worker must settle the backlog via the flush path, not start
		// another coalescing round.
		select {
		case <-s.drain:
			s.flush(sh, batch[:0])
			return
		default:
		}
		select {
		case <-s.drain:
			s.flush(sh, batch[:0])
			return
		case j := <-sh.q:
			batch = append(batch[:0], j)
			s.gather(sh, &batch)
			s.met.Load().queueDepth[sh.idx].Set(int64(len(sh.q)))
			s.runBatch(sh, batch)
		}
	}
}

// flush answers everything left in the shard queue at shutdown. By the
// time the worker gets here the drain fence guarantees no new sends
// can start, so a dry queue means the shard is done. Linger windows no
// longer apply — the goal is to finish, not to coalesce.
func (s *Service) flush(sh *shard, batch []*job) {
	for {
		batch = batch[:0]
		for len(batch) < s.cfg.MaxBatch {
			select {
			case j := <-sh.q:
				batch = append(batch, j)
				continue
			default:
			}
			break
		}
		if len(batch) == 0 {
			s.met.Load().queueDepth[sh.idx].Set(0)
			return
		}
		s.drainFlushed.Add(int64(len(batch)))
		s.met.Load().drainFlushed.Add(int64(len(batch)))
		s.runBatch(sh, batch)
	}
}

// gather coalesces queued jobs behind the first one, up to MaxBatch.
// Draining is greedy; when the queue runs dry and a BatchWindow is set,
// the worker lingers for more arrivals until the oldest job has aged
// past the window on the sim clock — woken by new jobs or by tick
// broadcasts, never by a wall clock.
func (s *Service) gather(sh *shard, batch *[]*job) {
	for len(*batch) < s.cfg.MaxBatch {
		select {
		case j := <-sh.q:
			*batch = append(*batch, j)
			continue
		default:
		}
		w := s.cfg.BatchWindow
		if w == 0 || device.Micros(s.now.Load())-(*batch)[0].at >= w {
			return
		}
		select {
		case j := <-sh.q:
			*batch = append(*batch, j)
		case <-s.tickSignal():
			// Clock advanced; re-check the window.
		case <-s.drain:
			// Shutdown: stop lingering so the partial batch flushes now.
			return
		}
	}
}

// runBatch executes one coalesced batch of queued jobs, deduplicating
// identical signatures, and replies to every job. The snapshot is
// loaded once per batch, after the shard mutex is held — the ordering
// the commit fence relies on: a committer that has swapped the pointer
// and then cycled this mutex knows every later batch sees the new
// epoch.
func (s *Service) runBatch(sh *shard, batch []*job) {
	met := s.met.Load()
	met.busy[sh.idx].Set(1)
	defer met.busy[sh.idx].Set(0)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sn := s.snap.Load()
	s.noteBatch(met, len(batch))
	seen := make(map[string]*jobResult, len(batch))
	for _, j := range batch {
		if err := retrieval.Canceled(j.ctx); err != nil {
			s.canceled.Add(1)
			met.canceled.Inc()
			j.done <- jobResult{err: err}
			continue
		}
		j.done <- s.resolve(sn, sh, j, seen, met)
	}
}

// runGroup is the pre-formed twin of runBatch for the *Batch entry
// points: it scores one shard group of reqs (selected by idxs) and
// writes results positionally. The caller splits groups at MaxBatch.
func (s *Service) runGroup(ctx context.Context, sh *shard, reqs []casebase.Request, idxs []int, kind jobKind, n int,
	bests []retrieval.Result, lists [][]retrieval.Result, epochs []uint64, errs []error) {
	met := s.met.Load()
	met.busy[sh.idx].Set(1)
	defer met.busy[sh.idx].Set(0)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sn := s.snap.Load() // after sh.mu — see runBatch
	s.noteBatch(met, len(idxs))
	seen := make(map[string]*jobResult, len(idxs))
	for _, i := range idxs {
		if err := retrieval.Canceled(ctx); err != nil {
			s.canceled.Add(1)
			met.canceled.Inc()
			errs[i] = err
			continue
		}
		j := &job{ctx: ctx, kind: kind, req: reqs[i], n: n, sig: retrieval.Signature(reqs[i])}
		r := s.resolve(sn, sh, j, seen, met)
		bests[i], lists[i], epochs[i], errs[i] = r.best, r.list, r.epoch, r.err
	}
}

// noteBatch records batch accounting. Caller holds sh.mu.
func (s *Service) noteBatch(met *metrics, n int) {
	s.batches.Add(1)
	s.batchedJobs.Add(int64(n))
	met.batches.Inc()
	met.batchSize.Observe(int64(n))
	for {
		cur := s.maxBatch.Load()
		if int64(n) <= cur || s.maxBatch.CompareAndSwap(cur, int64(n)) {
			break
		}
	}
}

// resolve serves one job from the singleflight map, the token cache, or
// an engine walk against the sn epoch. Caller holds sh.mu.
func (s *Service) resolve(sn *snapshot, sh *shard, j *job, seen map[string]*jobResult, met *metrics) jobResult {
	key := jobKey(j)
	if r, ok := seen[key]; ok {
		s.dedupHits.Add(1)
		met.dedup.Inc()
		return *r
	}
	r := s.runJob(sn, sh, j, met)
	seen[key] = &r
	return r
}

// runJob performs the actual retrieval for one deduplicated job against
// the sn epoch. Caller holds sh.mu.
func (s *Service) runJob(sn *snapshot, sh *shard, j *job, met *metrics) jobResult {
	eng, tokens := sn.engines[sh.idx], sn.tokens[sh.idx]
	if j.kind == jobCandidates {
		list, err := eng.RetrieveN(j.req, j.n)
		return jobResult{list: list, epoch: sn.epoch, err: err}
	}
	// Best-match path: the shard token cache bypasses the walk for
	// signatures it has already resolved ("only an availability check
	// ... has to be done", §3). The cache lives inside the snapshot and
	// is born empty at each epoch, so a token can only ever bypass
	// retrieval against the exact tree it was minted from. Disabled when
	// locals are kept — a token cannot carry the per-attribute breakdown,
	// and the bit-identical contract with sequential retrieval must hold.
	if !s.cfg.Engine.KeepLocals {
		if tok, ok := tokens.LookupSig(j.sig); ok {
			if r, live := sn.resultFromToken(tok); live {
				s.tokenHits.Add(1)
				met.tokenHits.Inc()
				return jobResult{best: r, epoch: sn.epoch}
			}
		}
	}
	r, err := eng.Retrieve(j.req)
	if err != nil {
		return jobResult{epoch: sn.epoch, err: err}
	}
	tokens.StoreSig(j.sig, retrieval.Token{Type: r.Type, Impl: r.Impl, Similarity: r.Similarity})
	return jobResult{best: r, epoch: sn.epoch}
}

// fanout routes reqs to shards and processes each shard's group as
// pre-formed micro-batches (split at MaxBatch) in parallel across
// shards. Results are positionally aligned with reqs.
func (s *Service) fanout(ctx context.Context, reqs []casebase.Request, kind jobKind, n int) (
	bests []retrieval.Result, lists [][]retrieval.Result, epochs []uint64, errs []error, err error) {
	bests = make([]retrieval.Result, len(reqs))
	lists = make([][]retrieval.Result, len(reqs))
	epochs = make([]uint64, len(reqs))
	errs = make([]error, len(reqs))
	groups := make([][]int, len(s.shards))
	for i, r := range reqs {
		si := int(r.Type) % len(s.shards)
		groups[si] = append(groups[si], i)
	}
	var wg sync.WaitGroup
	for si, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh *shard, idxs []int) {
			defer wg.Done()
			for len(idxs) > 0 {
				nb := min(len(idxs), s.cfg.MaxBatch)
				s.runGroup(ctx, sh, reqs, idxs[:nb], kind, n, bests, lists, epochs, errs)
				idxs = idxs[nb:]
			}
		}(s.shards[si], idxs)
	}
	wg.Wait()
	if cerr := retrieval.Canceled(ctx); cerr != nil {
		return nil, nil, nil, nil, cerr
	}
	return bests, lists, epochs, errs, nil
}
