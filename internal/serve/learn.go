package serve

// Live case-base mutation (DESIGN.md §14): the service closes the
// paper's fig. 2 CBR cycle under full read traffic. Observations
// accumulate in volatile per-stripe deltas off the read path
// (learn.Delta); when the fold policy trips — or a structural
// Retain/Retire/CommitNow forces it — the committer folds every stripe
// into a learn.Learner, rebuilds a validated CaseBase, and installs a
// fresh snapshot (tree + engines + empty epoch-bound token caches)
// behind the atomic pointer. The shard mutexes double as the swap
// fence: cycling each one after the pointer store guarantees no reader
// still works on the retired epoch.
//
// The deadlock discipline is declared below and machine-checked by
// qosvet's locklint (see internal/lint/locklint.go): commitMu is
// acquired before every stripe mutex (taken in index order, held
// across fold, swap and rebase), which come before each shard mutex in
// turn, which come before allocMu. Observe takes only its stripe
// mutex, and never while holding commitMu; the sim-time age bound is
// evaluated at mutation entry points and CommitNow, never from the
// tick path (which runs under allocMu).
//
//qosvet:lockorder commitMu < learnStripe.mu < shard.mu < allocMu

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
	"qosalloc/internal/learn"
)

// ErrLearningOff reports a mutation call on a service built without
// Learning.Enabled: its case base is frozen for the process lifetime.
var ErrLearningOff = fmt.Errorf("serve: learning disabled (case base is frozen)")

// ErrStaleEpoch reports work prepared against an epoch that a commit
// has since retired: an Allocate whose candidates were scored before a
// swap landed, or a Retain/Retire conditioned on an epoch that moved.
// The caller re-reads the committed state and retries.
type ErrStaleEpoch struct {
	At        uint64 // epoch the work was prepared against
	Committed uint64 // epoch committed when the work tried to land
}

func (e *ErrStaleEpoch) Error() string {
	return fmt.Sprintf("serve: epoch %d is stale (committed epoch is %d)", e.At, e.Committed)
}

// EpochStats snapshots the mutation-side counters.
type EpochStats struct {
	Epoch        uint64 // committed epoch (1 until the first commit)
	Commits      int64  // snapshot swaps installed (all reasons)
	Folds        int64  // commits tripped by the fold policy
	Observations int64  // observations accepted into writer deltas
	FoldedObs    int64  // observations folded into committed epochs
	PendingObs   int64  // observations still pending in deltas
	PendingRevs  int64  // LSB-visible attribute revisions pending
	Retained     int64  // implementations retained
	Retired      int64  // implementations retired
	StaleRetries int64  // Allocate candidate re-fetches after a swap
}

// noPending is the firstAt sentinel: no observation is pending.
const noPending = ^uint64(0)

// learnStripe is one writer lane of the deferred net-commit layer. The
// delta's EWMA state is key-local, so which stripe holds a key changes
// contention only, never values or fold points.
type learnStripe struct {
	mu    sync.Mutex
	delta *learn.Delta
}

// learnState is the service's mutation state (nil when learning is
// off): per-shard writer stripes plus the global fold-policy counters.
// The counters are global — not per stripe — precisely so fold points
// are invariant under the shard count (part of the replay contract).
type learnState struct {
	cfg     LearnConfig
	stripes []*learnStripe

	pendingRevs atomic.Int64  // LSB-visible revisions pending across stripes
	pendingObs  atomic.Int64  // observations pending across stripes
	firstAt     atomic.Uint64 // sim-time of the oldest pending observation
}

func newLearnState(cb *casebase.CaseBase, cfg LearnConfig, stripes int) *learnState {
	ls := &learnState{cfg: cfg}
	ls.firstAt.Store(noPending)
	for i := 0; i < stripes; i++ {
		d, err := learn.NewDelta(cb, cfg.Alpha)
		if err != nil {
			panic(err) // unreachable: New normalized Alpha into (0, 1]
		}
		ls.stripes = append(ls.stripes, &learnStripe{delta: d})
	}
	return ls
}

func (ls *learnState) stripeFor(t casebase.TypeID) *learnStripe {
	return ls.stripes[int(t)%len(ls.stripes)]
}

// due evaluates the fold policy against the global counters. Pending
// sub-LSB residue alone never trips a fold — it stays in the deltas
// compounding until it becomes an LSB-visible revision.
func (ls *learnState) due(now device.Micros) bool {
	revs := ls.pendingRevs.Load()
	first := ls.firstAt.Load()
	p := learn.FoldPolicy{Threshold: ls.cfg.FoldThreshold, MaxAge: ls.cfg.MaxAge}
	return p.Due(int(revs), device.Micros(first), now, revs > 0 && first != noPending)
}

// --- Mutation API ------------------------------------------------------

// Observe folds one run-time QoS measurement into the deferred
// net-commit layer. It never blocks readers: the observation lands in
// a per-stripe delta, and only when the fold policy trips does the
// caller pay for a commit (threshold reached, or pending state older
// than the configured age bound on the sim clock).
func (s *Service) Observe(o learn.Observation) error {
	if s.ls == nil {
		return ErrLearningOff
	}
	if err := s.acquireMut(); err != nil {
		return err
	}
	defer s.inflight.Done()
	st := s.ls.stripeFor(o.Type)
	st.mu.Lock()
	revDelta, err := st.delta.Observe(o)
	st.mu.Unlock()
	if revDelta != 0 {
		s.ls.pendingRevs.Add(int64(revDelta))
	}
	if err != nil {
		return err
	}
	s.ls.pendingObs.Add(1)
	s.observations.Add(1)
	s.met.Load().observations.Inc()
	now := device.Micros(s.now.Load())
	s.ls.firstAt.CompareAndSwap(noPending, uint64(now))
	if s.ls.due(now) {
		s.commitMu.Lock()
		defer s.commitMu.Unlock()
		if !s.ls.due(device.Micros(s.now.Load())) {
			return nil // another writer committed while we waited
		}
		_, err := s.commitLocked("fold", nil, nil)
		if err == nil {
			s.met.Load().commitsFold.Inc()
		}
		return err
	}
	return nil
}

// Retain adds a new implementation variant to the case base through the
// commit pipeline and registers its configuration blob (sized by
// Foot.ConfigBytes) in the function repository. A zero im.ID is
// assigned the next free ID of the type; the assigned ID is returned.
// atEpoch optimistically conditions the commit: non-zero and different
// from the committed epoch fails with *ErrStaleEpoch before anything
// changes (zero commits unconditionally). Pending observation deltas
// fold into the same commit.
func (s *Service) Retain(t casebase.TypeID, im casebase.Implementation, atEpoch uint64) (casebase.ImplID, error) {
	if s.ls == nil {
		return 0, ErrLearningOff
	}
	if err := s.acquireMut(); err != nil {
		return 0, err
	}
	defer s.inflight.Done()
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	if err := s.checkEpochLocked(atEpoch); err != nil {
		return 0, err
	}
	var id casebase.ImplID
	target, cfgBytes := im.Target, im.Foot.ConfigBytes
	_, err := s.commitLocked("retain",
		func(l *learn.Learner) error {
			var err error
			id, err = l.Retain(t, im)
			return err
		},
		func() {
			// Under allocMu, atomically with the manager's case-base
			// update: a placement can never see the new variant without
			// its repository blob. A reused ID (retire then retain)
			// keeps its existing blob.
			repo := s.sys.Repository()
			if _, ok := repo.Lookup(t, id); !ok {
				_ = repo.Store(t, id, device.Blob{Target: target, Bytes: cfgBytes})
			}
		})
	if err != nil {
		return 0, err
	}
	s.retainedN.Add(1)
	s.met.Load().commitsStructural.Inc()
	return id, nil
}

// Retire withdraws an implementation variant through the commit
// pipeline. atEpoch conditions the commit like Retain's. Retiring the
// last variant of a type fails validation and commits nothing (pending
// deltas survive for the next commit).
func (s *Service) Retire(t casebase.TypeID, impl casebase.ImplID, atEpoch uint64) error {
	if s.ls == nil {
		return ErrLearningOff
	}
	if err := s.acquireMut(); err != nil {
		return err
	}
	defer s.inflight.Done()
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	if err := s.checkEpochLocked(atEpoch); err != nil {
		return err
	}
	_, err := s.commitLocked("retire",
		func(l *learn.Learner) error { return l.Retire(t, impl) }, nil)
	if err != nil {
		return err
	}
	s.retiredN.Add(1)
	s.met.Load().commitsStructural.Inc()
	return nil
}

// CommitNow forces a commit of whatever is pending — or a pure epoch
// bump when nothing is — and returns the newly committed epoch. It is
// the manual flush for drivers that want fold points at places of
// their own choosing.
func (s *Service) CommitNow() (uint64, error) {
	if s.ls == nil {
		return 0, ErrLearningOff
	}
	if err := s.acquireMut(); err != nil {
		return 0, err
	}
	defer s.inflight.Done()
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	epoch, err := s.commitLocked("manual", nil, nil)
	if err != nil {
		return 0, err
	}
	s.met.Load().commitsManual.Inc()
	return epoch, nil
}

// Epoch returns the committed epoch (1 until the first commit).
func (s *Service) Epoch() uint64 { return s.snap.Load().epoch }

// EpochStats snapshots the mutation counters. On a service without
// learning every field but Epoch is zero.
func (s *Service) EpochStats() EpochStats {
	st := EpochStats{
		Epoch:        s.snap.Load().epoch,
		Commits:      s.commits.Load(),
		Folds:        s.folds.Load(),
		Observations: s.observations.Load(),
		FoldedObs:    s.foldedObs.Load(),
		Retained:     s.retainedN.Load(),
		Retired:      s.retiredN.Load(),
		StaleRetries: s.staleRetries.Load(),
	}
	if s.ls != nil {
		st.PendingObs = s.ls.pendingObs.Load()
		st.PendingRevs = s.ls.pendingRevs.Load()
	}
	return st
}

// Journal returns a copy of the epoch journal: one line per commit
// (`epoch= t= reason= changed= folded_obs=`), in commit order. Fold
// points and epoch numbering are part of the replay contract — a
// deterministic driver replays the identical journal at any shard
// count.
func (s *Service) Journal() []string {
	s.journalMu.Lock()
	defer s.journalMu.Unlock()
	return append([]string(nil), s.journal...)
}

// ReplayHash folds the epoch journal into a printable fnv64a digest —
// two runs of the same schedule must produce the same hash, bit for
// bit, no matter the shard count.
func (s *Service) ReplayHash() string {
	s.journalMu.Lock()
	defer s.journalMu.Unlock()
	h := fnv.New64a()
	for _, line := range s.journal {
		h.Write([]byte(line))
		h.Write([]byte{'\n'})
	}
	return fmt.Sprintf("fnv64a:%016x", h.Sum64())
}

// --- Commit pipeline ---------------------------------------------------

// acquireMut is the mutation twin of acquire: it registers the call on
// the in-flight group Close waits for, so a mutation either sees
// ErrDraining or fully commits before Close returns.
func (s *Service) acquireMut() error {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining {
		return ErrDraining
	}
	s.inflight.Add(1)
	return nil
}

// checkEpochLocked enforces an optimistic epoch precondition (zero
// means unconditional). Caller holds commitMu, so the check cannot race
// another commit.
func (s *Service) checkEpochLocked(atEpoch uint64) error {
	if atEpoch == 0 {
		return nil
	}
	if cur := s.snap.Load().epoch; cur != atEpoch {
		return &ErrStaleEpoch{At: atEpoch, Committed: cur}
	}
	return nil
}

// commitLocked runs one swap: fold every stripe's pending delta into a
// Learner over the old epoch's tree, apply the structural mutation (if
// any), rebuild a validated CaseBase, install the new snapshot, fence
// the shards, rebase the manager and the stripes, and journal the
// commit. Caller holds commitMu. On any error nothing is installed and
// the stripes keep their pending state for the next attempt.
//
// post, when non-nil, runs inside the allocMu critical section right
// after the manager's case base moved — the hook for state that must
// become visible atomically with placement seeing the new epoch (e.g.
// Retain's repository blob).
func (s *Service) commitLocked(reason string, structural func(*learn.Learner) error, post func()) (uint64, error) {
	old := s.snap.Load()
	// Alpha 1: the fold replaces stored values outright with the
	// LSB-quantized delta state (the delta already did the EWMA).
	l, err := learn.NewLearner(old.cb, 1)
	if err != nil {
		return old.epoch, err
	}
	// Hold every stripe across fold+swap+rebase so no observation lands
	// against the old base mid-commit and gets silently discarded.
	for _, st := range s.ls.stripes {
		st.mu.Lock()
	}
	defer func() {
		for i := len(s.ls.stripes) - 1; i >= 0; i-- {
			s.ls.stripes[i].mu.Unlock()
		}
	}()
	foldedObs := int64(0)
	for _, st := range s.ls.stripes {
		if _, err := st.delta.FoldInto(l); err != nil {
			return old.epoch, err
		}
		foldedObs += int64(st.delta.Observations())
	}
	if structural != nil {
		if err := structural(l); err != nil {
			return old.epoch, err
		}
	}
	cb, changed, err := l.Rebuild()
	if err != nil {
		return old.epoch, err
	}
	next := newSnapshot(old.epoch+1, cb, len(s.shards), s.cfg.Engine, s.retMet)
	s.snap.Store(next)
	// Swap fence: cycle every shard mutex. A batch loads the snapshot
	// only after taking its shard mutex, so once we have held and
	// released each one, no reader still works on the old epoch — its
	// engines and token caches are garbage. Fold their walk counts into
	// the cumulative stats on the way out.
	for _, sh := range s.shards {
		sh.mu.Lock()
		s.pastRetrievals.Add(int64(old.engines[sh.idx].Stats().Retrievals))
		sh.mu.Unlock()
	}
	s.allocMu.Lock()
	s.mgr.UpdateCaseBase(cb)
	s.mgrEpoch = next.epoch
	if post != nil {
		post()
	}
	s.allocMu.Unlock()
	// Rebase the stripes onto the new tree and zero the fold counters;
	// everything folded is committed, sub-LSB residue restarts from the
	// committed values by design (DESIGN.md §14).
	for _, st := range s.ls.stripes {
		st.delta.Reset(cb)
	}
	s.ls.pendingRevs.Store(0)
	s.ls.pendingObs.Store(0)
	s.ls.firstAt.Store(noPending)
	s.commits.Add(1)
	if reason == "fold" {
		s.folds.Add(1)
	}
	s.foldedObs.Add(foldedObs)
	met := s.met.Load()
	met.epoch.Set(int64(next.epoch))
	met.foldedObs.Add(foldedObs)
	line := fmt.Sprintf("epoch=%d t=%d reason=%s changed=%d folded_obs=%d",
		next.epoch, s.now.Load(), reason, changed, foldedObs)
	s.journalMu.Lock()
	s.journal = append(s.journal, line)
	s.journalMu.Unlock()
	return next.epoch, nil
}
