package serve

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"qosalloc/internal/admit"
	"qosalloc/internal/alloc"
	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
	"qosalloc/internal/fault"
	"qosalloc/internal/obs"
	"qosalloc/internal/retrieval"
	"qosalloc/internal/rtsys"
)

// TestServeUnderFaultStorm composes the full robustness stack the qosd
// daemon runs — serve.Service traffic, a scripted fault storm feeding
// admit breakers through the injector's observer hook — under -race
// with concurrent callers, and asserts the two invariants the daemon
// depends on: every submitted request reaches exactly one terminal
// outcome (nothing is silently dropped), and every tripped breaker
// recovers to Closed once the storm passes and probes succeed.
func TestServeUnderFaultStorm(t *testing.T) {
	const (
		shards  = 4
		workers = 8
		horizon = device.Micros(300_000)
	)
	cb, _, reqs := genWorkload(t, 480, 0.3)
	reg := obs.NewRegistry()
	s := New(cb, fig1System(t, cb), Config{
		Shards: shards, MaxBatch: 8, MaxQueue: 64,
		Engine:  retrieval.Options{Threshold: 0.3},
		Manager: alloc.Options{AllowPreemption: true},
	})
	defer s.Close()
	s.Instrument(reg)

	plan, err := fault.Storm(rand.New(rand.NewSource(99)), fault.StormSpec{
		Horizon:   horizon,
		SlotFails: 6, DeviceFails: 3, ConfigErrors: 3, SEUs: 4,
		Targets: []fault.StormTarget{
			{Device: "fpga0", Slots: 2}, {Device: "dsp0"}, {Device: "gpp0"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(s.System(), plan)

	gate := admit.NewGate(admit.GateConfig{
		Shards: shards,
		// Tight breaker so the storm actually trips it, short backoff so
		// recovery happens inside the test horizon.
		Breaker: admit.BreakerConfig{Window: 8, MinSamples: 2, TripRatio: 0.5, Backoff: 20_000},
		// Roomy buckets: this test is about breakers, not rate limits.
		Limiter: admit.LimiterConfig{RatePerSec: 1_000_000, Burst: 1_000},
	}, reg)

	// Mirror the daemon's fault→breaker plumbing: affected tasks map to
	// their type's shard; victimless events broadcast to every shard.
	inj.Subscribe(func(a fault.Applied) {
		idxs := make(map[int]bool)
		for _, id := range a.Affected {
			if task, ok := s.System().Task(id); ok {
				idxs[gate.Shard(task.Type)] = true
			}
		}
		if len(idxs) == 0 {
			for i := 0; i < shards; i++ {
				idxs[i] = true
			}
		}
		sorted := make([]int, 0, len(idxs))
		for i := range idxs {
			sorted = append(sorted, i)
		}
		sort.Ints(sorted)
		for _, i := range sorted {
			gate.RecordFault(i, a.Event.At)
		}
	})

	// A single pacer owns the sim clock: it advances the injector and
	// sweeps stranded tasks while workers read the clock for admission.
	var clock atomic.Uint64
	clock.Store(1)
	pace := func(to device.Micros) {
		clock.Store(uint64(to))
		s.Exclusive(func() {
			if _, err := inj.AdvanceTo(to); err != nil {
				t.Errorf("AdvanceTo(%d): %v", to, err)
			}
			s.Manager().RecoverFromFaults()
		})
	}

	type tally struct{ ok, admitRefused, semantic, device, other int64 }
	var got tally
	var allocated sync.Map // rtsys.TaskID → struct{}

	var wg sync.WaitGroup
	per := len(reqs) / workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int, mine []casebase.Request) {
			defer wg.Done()
			client := string(rune('a' + w))
			for i, req := range mine {
				now := device.Micros(clock.Load())
				shard := gate.Shard(req.Type)
				if err := gate.Admit(client, shard, now); err != nil {
					atomic.AddInt64(&got.admitRefused, 1)
					continue
				}
				var err error
				if i%3 == 0 {
					var dec *alloc.Decision
					dec, err = s.Allocate(context.Background(), client, req, 3)
					if err == nil {
						allocated.Store(dec.Task.ID, struct{}{})
					}
				} else {
					_, err = s.Retrieve(context.Background(), req)
				}
				gate.Record(shard, now, stormFailure(err))
				switch {
				case err == nil:
					atomic.AddInt64(&got.ok, 1)
				case isSemantic(err):
					atomic.AddInt64(&got.semantic, 1)
				case errors.Is(err, device.ErrDeviceFailed):
					atomic.AddInt64(&got.device, 1)
				default:
					atomic.AddInt64(&got.other, 1)
				}
			}
		}(w, reqs[w*per:(w+1)*per])
	}

	// Drive the storm across its horizon while the workers hammer the
	// service, then join.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for at := device.Micros(10_000); at <= horizon+20_000; at += 10_000 {
			pace(at)
		}
	}()
	wg.Wait()
	<-done

	issued := int64(per * workers)
	sum := got.ok + got.admitRefused + got.semantic + got.device + got.other
	if sum != issued {
		t.Fatalf("outcome accounting leaked requests: ok=%d refused=%d semantic=%d device=%d other=%d sum=%d, issued %d",
			got.ok, got.admitRefused, got.semantic, got.device, got.other, sum, issued)
	}
	if got.ok == 0 {
		t.Fatal("no request succeeded under the storm; traffic never reached the service")
	}
	if inj.Pending() != 0 {
		t.Fatalf("%d storm events never applied", inj.Pending())
	}

	// Every allocation must still be individually accounted for: release
	// succeeds, or the storm already took the task — in which case it
	// must not still claim to be running. A running-but-unreleasable
	// task would be a silent drop.
	allocated.Range(func(k, _ any) bool {
		id := k.(rtsys.TaskID)
		if err := s.Release(id); err != nil {
			if task, ok := s.System().Task(id); ok && task.State == rtsys.Running {
				t.Errorf("task %d running but release failed: %v", id, err)
			}
		}
		return true
	})

	// Force at least one trip deterministically (the storm usually trips
	// breakers on its own, but its victims depend on placement), then
	// prove the Open → HalfOpen → Closed recovery path.
	now := device.Micros(clock.Load())
	for i := 0; i < 4; i++ {
		gate.RecordFault(0, now)
	}
	if gate.Trips() == 0 {
		t.Fatal("no breaker trip recorded after a solid run of faults")
	}
	for shard := 0; shard < shards; shard++ {
		recovered := false
		for attempt := 0; attempt < 200 && !recovered; attempt++ {
			now += 25_000
			if err := gate.Admit("probe", shard, now); err != nil {
				continue
			}
			gate.Record(shard, now, false)
			recovered = gate.BreakerState(shard, now) == admit.Closed
		}
		if !recovered {
			t.Fatalf("shard %d breaker never recovered to Closed after the storm", shard)
		}
	}
}

// stormFailure mirrors cmd/qosd's breakerFailure for the error classes
// this test can see: semantic misses and shedding are healthy, device
// failures and anything unclassified are not.
func stormFailure(err error) bool {
	if err == nil || isSemantic(err) {
		return false
	}
	var ov *ErrOverload
	if errors.As(err, &ov) || errors.Is(err, ErrClosed) {
		return false
	}
	return true
}

func isSemantic(err error) bool {
	var nm *retrieval.ErrNoMatch
	var nf *alloc.ErrNoFeasible
	return errors.As(err, &nm) || errors.As(err, &nf)
}
