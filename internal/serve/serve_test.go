package serve

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"qosalloc/internal/alloc"
	"qosalloc/internal/attr"
	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
	"qosalloc/internal/obs"
	"qosalloc/internal/retrieval"
	"qosalloc/internal/rtsys"
	"qosalloc/internal/workload"
)

// fig1System builds the paper's fig. 1 style platform: 2-slot FPGA,
// DSP, GPP over a given case base.
func fig1System(t testing.TB, cb *casebase.CaseBase) *rtsys.System {
	t.Helper()
	repo := device.NewRepository(64)
	if err := repo.PopulateFromCaseBase(cb); err != nil {
		t.Fatal(err)
	}
	fpga := device.NewFPGA("fpga0", []device.Slot{
		{Slices: 1500, BRAMs: 8, Multipliers: 16},
		{Slices: 1500, BRAMs: 8, Multipliers: 16},
	}, 66)
	dsp := device.NewProcessor("dsp0", casebase.TargetDSP, 1000, 128*1024)
	gpp := device.NewProcessor("gpp0", casebase.TargetGPP, 1000, 256*1024)
	return rtsys.NewSystem(repo, fpga, dsp, gpp)
}

// genWorkload builds a moderate synthetic case base plus a repeat-heavy
// request stream exercising dedup and the token bypass.
func genWorkload(t testing.TB, nReqs int, repeat float64) (*casebase.CaseBase, *attr.Registry, []casebase.Request) {
	t.Helper()
	cb, reg, err := workload.GenCaseBase(workload.CaseBaseSpec{
		Types: 8, ImplsPerType: 5, AttrsPerImpl: 5, AttrUniverse: 6, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.GenRequests(cb, reg, workload.RequestStreamSpec{
		N: nReqs, ConstraintsPer: 3, RepeatFraction: repeat, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cb, reg, reqs
}

// TestRetrieveBatchBitIdenticalToSequential is the golden equivalence
// test: every batched result — deduplicated, token-bypassed, sharded —
// must be bit-identical to a plain sequential engine walk.
func TestRetrieveBatchBitIdenticalToSequential(t *testing.T) {
	cb, _, reqs := genWorkload(t, 240, 0.5)
	eng := retrieval.NewEngine(cb, retrieval.Options{})

	s := New(cb, fig1System(t, cb), Config{Shards: 4, MaxBatch: 16})
	defer s.Close()

	ctx := context.Background()
	for lo := 0; lo < len(reqs); lo += 48 {
		hi := min(lo+48, len(reqs))
		out, err := s.RetrieveBatch(ctx, reqs[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		for k, o := range out {
			want, wantErr := eng.Retrieve(reqs[lo+k])
			if (o.Err == nil) != (wantErr == nil) {
				t.Fatalf("req %d: err = %v, sequential err = %v", lo+k, o.Err, wantErr)
			}
			if !reflect.DeepEqual(o.Result, want) {
				t.Fatalf("req %d: batched %+v != sequential %+v", lo+k, o.Result, want)
			}
		}
	}

	st := s.Stats()
	if st.TokenHits == 0 {
		t.Error("repeat-heavy stream produced no token bypasses")
	}
	if st.DedupHits == 0 {
		t.Error("repeat-heavy stream produced no in-batch dedups")
	}
	if st.EngineRetrievals+st.TokenHits+st.DedupHits != int64(len(reqs)) {
		t.Errorf("walks(%d)+tokens(%d)+dedups(%d) != %d requests",
			st.EngineRetrievals, st.TokenHits, st.DedupHits, len(reqs))
	}
	if st.EngineRetrievals >= int64(len(reqs)) {
		t.Errorf("no retrieval was saved: %d walks for %d requests", st.EngineRetrievals, len(reqs))
	}
}

// TestRetrieveCompactLayoutShardInvariant pins the PR 7 acceptance
// criterion: with CompactLayout on, every shard count yields results
// bit-identical to a sequential compact engine walk (similarities at
// datapath precision, no locals).
func TestRetrieveCompactLayoutShardInvariant(t *testing.T) {
	cb, _, reqs := genWorkload(t, 120, 0.4)
	opt := retrieval.Options{CompactLayout: true}
	eng := retrieval.NewEngine(cb, opt)

	for _, shards := range []int{1, 2, 4, 7} {
		s := New(cb, fig1System(t, cb), Config{Shards: shards, MaxBatch: 16, Engine: opt})
		out, err := s.RetrieveBatch(context.Background(), reqs)
		s.Close()
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		for k, o := range out {
			want, wantErr := eng.Retrieve(reqs[k])
			if (o.Err == nil) != (wantErr == nil) {
				t.Fatalf("shards=%d req %d: err = %v, sequential err = %v", shards, k, o.Err, wantErr)
			}
			if !reflect.DeepEqual(o.Result, want) {
				t.Fatalf("shards=%d req %d: batched %+v != sequential %+v", shards, k, o.Result, want)
			}
		}
	}
}

// TestRetrieveKeepLocalsBitIdentical pins the KeepLocals contract: the
// token fast-path is disabled (tokens cannot carry locals) and results
// still match sequential walks including the per-attribute breakdown.
func TestRetrieveKeepLocalsBitIdentical(t *testing.T) {
	cb, _, reqs := genWorkload(t, 60, 0.5)
	opt := retrieval.Options{KeepLocals: true}
	eng := retrieval.NewEngine(cb, opt)

	s := New(cb, fig1System(t, cb), Config{Shards: 2, Engine: opt})
	defer s.Close()

	out, err := s.RetrieveBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for k, o := range out {
		want, _ := eng.Retrieve(reqs[k])
		if !reflect.DeepEqual(o.Result, want) {
			t.Fatalf("req %d: batched %+v != sequential %+v", k, o.Result, want)
		}
		if o.Err == nil && o.Result.Locals == nil {
			t.Fatalf("req %d: KeepLocals result lost its locals", k)
		}
	}
	if st := s.Stats(); st.TokenHits != 0 {
		t.Errorf("token fast-path ran %d times with KeepLocals on", st.TokenHits)
	}
}

// TestAllocatePicksTableOneBest mirrors the alloc-layer golden: the
// paper's request through the service lands impl 2 on the DSP.
func TestAllocatePicksTableOneBest(t *testing.T) {
	cb, err := casebase.PaperCaseBase()
	if err != nil {
		t.Fatal(err)
	}
	s := New(cb, fig1System(t, cb), Config{})
	defer s.Close()

	d, err := s.Allocate(context.Background(), "mp3", casebase.PaperRequest(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if d.Impl != 2 || d.Target != casebase.TargetDSP || d.Device != "dsp0" {
		t.Errorf("decision = %+v, want DSP impl 2 on dsp0", d)
	}
	st := s.Stats()
	if st.Allocated != 1 || st.AllocFailed != 0 {
		t.Errorf("stats = %+v", st)
	}
	if ms := s.Manager().Stats(); ms.Requests != 1 || ms.Placed != 1 {
		t.Errorf("manager stats = %+v", ms)
	}
}

// runAllocBatches drives one service through the stream in fixed chunks
// with releases between chunks, returning a decision fingerprint.
func runAllocBatches(t *testing.T, s *Service, reqs []casebase.Request) []string {
	t.Helper()
	ctx := context.Background()
	var fp []string
	for lo := 0; lo < len(reqs); lo += 32 {
		hi := min(lo+32, len(reqs))
		out, err := s.AllocateBatch(ctx, fmt.Sprintf("app%d", lo/32), reqs[lo:hi], 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range out {
			if r.Err != nil {
				fp = append(fp, "err:"+fmt.Sprintf("%T", r.Err))
				continue
			}
			fp = append(fp, fmt.Sprintf("%d/%d@%s", r.Decision.Impl, r.Decision.Target, r.Decision.Device))
			if err := s.Release(r.Decision.Task.ID); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Advance(s.System().Now() + 500); err != nil {
			t.Fatal(err)
		}
	}
	return fp
}

// TestAllocateBatchDeterministic runs the same stream through two
// independently built services and requires identical decisions and
// identical batching/bypass accounting — the property that lets the
// serve experiment pin its outcome.
func TestAllocateBatchDeterministic(t *testing.T) {
	run := func() ([]string, Stats) {
		cb, _, reqs := genWorkload(t, 96, 0.4)
		s := New(cb, fig1System(t, cb), Config{Shards: 4, MaxBatch: 8})
		defer s.Close()
		fp := runAllocBatches(t, s, reqs)
		return fp, s.Stats()
	}
	fp1, st1 := run()
	fp2, st2 := run()
	if !reflect.DeepEqual(fp1, fp2) {
		t.Fatalf("decision sequences diverged:\n%v\n%v", fp1, fp2)
	}
	if st1 != st2 {
		t.Fatalf("stats diverged:\n%+v\n%+v", st1, st2)
	}
	if st1.Batches == 0 || st1.BatchedJobs != 96 {
		t.Errorf("stats = %+v", st1)
	}
}

// TestOverloadShedsTyped pins admission control: with the single shard
// wedged (its mutex held) and a queue of one, the third request must be
// refused with a typed *ErrOverload carrying a retry hint.
func TestOverloadShedsTyped(t *testing.T) {
	cb, _, reqs := genWorkload(t, 4, 0)
	s := New(cb, fig1System(t, cb), Config{Shards: 1, MaxBatch: 1, MaxQueue: 1})
	defer s.Close()

	sh := s.shards[0]
	sh.mu.Lock() // wedge the worker mid-batch

	ctx := context.Background()
	done := make(chan error, 2)
	// NB: Stats() locks sh.mu (engine counters), which this test holds —
	// poll the atomic counters directly.
	go func() { _, err := s.Retrieve(ctx, reqs[0]); done <- err }()
	waitFor(t, "worker to take the first job", func() bool { return len(sh.q) == 0 && s.enqueued.Load() == 1 })

	go func() { _, err := s.Retrieve(ctx, reqs[1]); done <- err }()
	waitFor(t, "second job to fill the queue", func() bool { return len(sh.q) == 1 })

	_, err := s.Retrieve(ctx, reqs[2])
	var ov *ErrOverload
	if !errors.As(err, &ov) {
		t.Fatalf("err = %v, want *ErrOverload", err)
	}
	if ov.Shard != 0 || ov.QueueLen != 1 || ov.RetryAfter == 0 {
		t.Errorf("overload = %+v", ov)
	}
	if !strings.Contains(ov.Error(), "retry after") {
		t.Errorf("Error() = %q", ov.Error())
	}
	if shed := s.shed.Load(); shed != 1 {
		t.Errorf("Shed = %d, want 1", shed)
	}

	sh.mu.Unlock() // unwedge; both queued callers must complete
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Errorf("queued caller %d: %v", i, err)
		}
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestContextCancellation covers the entry guard and the batch entry
// points: a dead context yields ErrCanceled wrapping the cause.
func TestContextCancellation(t *testing.T) {
	cb, _, reqs := genWorkload(t, 2, 0)
	s := New(cb, fig1System(t, cb), Config{Shards: 1})
	defer s.Close()

	cause := errors.New("client gave up")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)

	if _, err := s.Retrieve(ctx, reqs[0]); !errors.Is(err, retrieval.ErrCanceled) || !errors.Is(err, cause) {
		t.Errorf("Retrieve err = %v", err)
	}
	if _, err := s.RetrieveBatch(ctx, reqs); !errors.Is(err, retrieval.ErrCanceled) {
		t.Errorf("RetrieveBatch err = %v", err)
	}
	if _, err := s.AllocateBatch(ctx, "app", reqs, 5); !errors.Is(err, retrieval.ErrCanceled) {
		t.Errorf("AllocateBatch err = %v", err)
	}
	if _, err := s.Allocate(ctx, "app", reqs[0], 5); !errors.Is(err, retrieval.ErrCanceled) {
		t.Errorf("Allocate err = %v", err)
	}
}

// TestCloseRejectsAndIsIdempotent pins the shutdown contract.
func TestCloseRejectsAndIsIdempotent(t *testing.T) {
	cb, _, reqs := genWorkload(t, 1, 0)
	s := New(cb, fig1System(t, cb), Config{Shards: 2})
	s.Close()
	s.Close() // idempotent
	if _, err := s.Retrieve(context.Background(), reqs[0]); !errors.Is(err, ErrClosed) {
		t.Errorf("Retrieve after Close = %v, want ErrClosed", err)
	}
	if _, err := s.RetrieveBatch(context.Background(), reqs); !errors.Is(err, ErrClosed) {
		t.Errorf("RetrieveBatch after Close = %v, want ErrClosed", err)
	}
}

// TestBatchWindowLinger pins the sim-time linger: with a window set and
// the clock frozen, a partial batch waits for more arrivals; a Tick past
// the window flushes it. Both jobs must land in one batch.
func TestBatchWindowLinger(t *testing.T) {
	cb, reg, _ := genWorkload(t, 1, 0)
	// Two distinct signatures on the same shard (single shard).
	reqA := lingerReq(t, cb, reg, 0)
	reqB := lingerReq(t, cb, reg, 1)
	s := New(cb, fig1System(t, cb), Config{Shards: 1, BatchWindow: 100})
	defer s.Close()

	ctx := context.Background()
	done := make(chan error, 2)
	go func() { _, err := s.Retrieve(ctx, reqA); done <- err }()
	go func() { _, err := s.Retrieve(ctx, reqB); done <- err }()
	waitFor(t, "both jobs to reach the shard", func() bool {
		return s.Stats().Enqueued == 2 && len(s.shards[0].q) == 0
	})
	if got := s.Stats().Batches; got != 0 {
		t.Fatalf("batch flushed before the window expired (%d batches)", got)
	}

	s.Tick(200) // sim clock leaps past the window

	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.Batches != 1 || st.BatchedJobs != 2 || st.MaxBatch != 2 {
		t.Errorf("linger stats = %+v, want one batch of two", st)
	}
}

// lingerReq builds a valid single-constraint request with a
// value-distinct signature (offset off above the attribute's lower
// design bound).
func lingerReq(t *testing.T, cb *casebase.CaseBase, reg *attr.Registry, off attr.Value) casebase.Request {
	t.Helper()
	ft := cb.Types()[0]
	id := ft.Impls[0].Attrs[0].ID
	d, ok := reg.Lookup(id)
	if !ok {
		t.Fatalf("attribute %d undefined", id)
	}
	return casebase.NewRequest(ft.ID, casebase.Constraint{ID: id, Value: d.Lo + off}).EqualWeights()
}

// TestInstrumentExportsServeSeries wires a registry mid-flight and
// checks the serve metric family shows up in the Prometheus exposition
// with per-shard labels.
func TestInstrumentExportsServeSeries(t *testing.T) {
	cb, _, reqs := genWorkload(t, 40, 0.5)
	s := New(cb, fig1System(t, cb), Config{Shards: 2, MaxBatch: 8})
	defer s.Close()

	reg := obs.NewRegistry()
	s.Instrument(reg)
	if _, err := s.RetrieveBatch(context.Background(), reqs); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"qos_serve_batches_total",
		"qos_serve_batch_size_bucket",
		`qos_serve_queue_depth{shard="1"}`,
		`qos_serve_shard_busy{shard="0"}`,
		"qos_serve_token_hits_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if v, ok := reg.CounterValue("qos_serve_batches_total"); !ok || v == 0 {
		t.Errorf("qos_serve_batches_total = %d, %v", v, ok)
	}
}

// TestServeRaceStress hammers the service from 64 client goroutines
// while a driver advances the sim clock and placements run — the test
// is mainly for -race, but also checks every retrieval succeeds.
func TestServeRaceStress(t *testing.T) {
	cb, _, reqs := genWorkload(t, 64, 0.3)
	s := New(cb, fig1System(t, cb), Config{Shards: 8, MaxBatch: 8, MaxQueue: 512})
	defer s.Close()

	ctx := context.Background()
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for c := 0; c < 64; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				req := reqs[(c*7+i)%len(reqs)]
				if _, err := s.Retrieve(ctx, req); err != nil {
					var ov *ErrOverload
					if errors.As(err, &ov) {
						continue // shed under pressure is legitimate
					}
					errc <- fmt.Errorf("client %d: %w", c, err)
					return
				}
			}
		}(c)
	}
	// Driver goroutine: clock ticks and occasional allocations.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := s.Advance(s.System().Now() + 100); err != nil {
				errc <- err
				return
			}
			d, err := s.Allocate(ctx, "driver", reqs[i], 5)
			if err == nil {
				if err := s.Release(d.Task.ID); err != nil {
					errc <- err
					return
				}
			} else if !isNoFeasible(err) {
				var ov *ErrOverload
				if !errors.As(err, &ov) {
					errc <- err
					return
				}
			}
			_ = s.Stats()
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

func isNoFeasible(err error) bool {
	var nf *alloc.ErrNoFeasible
	return errors.As(err, &nf)
}

// TestRetryAfterScalesWithQueueDepth pins the overload hint's shape:
// monotone non-decreasing in the observed queue depth (a deeper queue
// never promises a sooner retry), and strictly later once the backlog
// needs another micro-batch dispatch.
func TestRetryAfterScalesWithQueueDepth(t *testing.T) {
	cb, _, _ := genWorkload(t, 1, 0)
	s := New(cb, fig1System(t, cb), Config{Shards: 1, MaxBatch: 8, BatchWindow: 100})
	defer s.Close()

	prev := device.Micros(0)
	for q := 0; q <= 64; q++ {
		got := s.retryAfter(q)
		if got == 0 {
			t.Fatalf("retryAfter(%d) = 0; the hint must always buy the backlog time", q)
		}
		if got < prev {
			t.Fatalf("retryAfter(%d) = %d < retryAfter(%d) = %d; hint must be monotone in depth", q, got, q-1, prev)
		}
		prev = got
	}
	if a, b := s.retryAfter(0), s.retryAfter(8); b <= a {
		t.Fatalf("one extra dispatch did not push the hint: retryAfter(0)=%d, retryAfter(8)=%d", a, b)
	}
	if a, b := s.retryAfter(0), s.retryAfter(40); b <= a {
		t.Fatalf("a 5-dispatch backlog did not push the hint: %d vs %d", a, b)
	}
}

// TestErrDrainingIdentity pins the sentinel contract: ErrDraining is
// its own errors.Is target and also satisfies ErrClosed, so pre-existing
// shutdown checks keep working while new callers can tell drain apart.
func TestErrDrainingIdentity(t *testing.T) {
	if !errors.Is(ErrDraining, ErrClosed) {
		t.Error("ErrDraining must wrap ErrClosed")
	}
	if !errors.Is(ErrDraining, ErrDraining) {
		t.Error("ErrDraining must match itself")
	}
	if errors.Is(ErrClosed, ErrDraining) {
		t.Error("plain ErrClosed must not read as draining")
	}
	if !strings.Contains(ErrDraining.Error(), "draining") {
		t.Errorf("Error() = %q, want it to mention draining", ErrDraining.Error())
	}
}

// TestDrainFlushesQueuedJobs pins the graceful-drain contract: once
// Close begins, new submissions get ErrDraining (distinguishable from
// overload, still matching ErrClosed), while every job admitted before
// the drain is answered — the wedged batch and the queued backlog both
// complete, and the backlog goes through the shutdown flush.
func TestDrainFlushesQueuedJobs(t *testing.T) {
	cb, _, reqs := genWorkload(t, 4, 0)
	s := New(cb, fig1System(t, cb), Config{Shards: 1, MaxBatch: 1, MaxQueue: 4})

	sh := s.shards[0]
	sh.mu.Lock() // wedge the worker mid-batch

	ctx := context.Background()
	done := make(chan error, 2)
	go func() { _, err := s.Retrieve(ctx, reqs[0]); done <- err }()
	waitFor(t, "worker to take the first job", func() bool { return len(sh.q) == 0 && s.enqueued.Load() == 1 })
	go func() { _, err := s.Retrieve(ctx, reqs[1]); done <- err }()
	waitFor(t, "second job to queue", func() bool { return len(sh.q) == 1 })

	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	waitFor(t, "drain to begin", s.Draining)

	// New work is refused with the typed sentinel, not *ErrOverload.
	_, err := s.Retrieve(ctx, reqs[2])
	if !errors.Is(err, ErrDraining) {
		t.Errorf("Retrieve during drain = %v, want ErrDraining", err)
	}
	if !errors.Is(err, ErrClosed) {
		t.Errorf("Retrieve during drain = %v, want it to also match ErrClosed", err)
	}
	var ov *ErrOverload
	if errors.As(err, &ov) {
		t.Errorf("drain rejection must not read as overload: %v", err)
	}
	if _, err := s.RetrieveBatch(ctx, reqs); !errors.Is(err, ErrDraining) {
		t.Errorf("RetrieveBatch during drain = %v, want ErrDraining", err)
	}
	if _, err := s.AllocateBatch(ctx, "app", reqs, 5); !errors.Is(err, ErrDraining) {
		t.Errorf("AllocateBatch during drain = %v, want ErrDraining", err)
	}

	sh.mu.Unlock() // unwedge: the flush must settle the backlog
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Errorf("admitted caller %d got %v during drain; admitted jobs must complete", i, err)
		}
	}
	<-closed

	st := s.Stats()
	if st.DrainFlushed != 1 {
		t.Errorf("DrainFlushed = %d, want 1 (the queued job settles via the shutdown flush)", st.DrainFlushed)
	}
	if st.Shed != 0 {
		t.Errorf("Shed = %d; drain rejections must not count as overload sheds", st.Shed)
	}
}

// TestDrainMetricsExported pins the drain observability: the draining
// gauge flips to 1 and the flush counter lands in the registry.
func TestDrainMetricsExported(t *testing.T) {
	cb, _, reqs := genWorkload(t, 2, 0)
	s := New(cb, fig1System(t, cb), Config{Shards: 1, MaxBatch: 1, MaxQueue: 4})
	reg := obs.NewRegistry()
	s.Instrument(reg)

	sh := s.shards[0]
	sh.mu.Lock()
	ctx := context.Background()
	done := make(chan error, 2)
	go func() { _, err := s.Retrieve(ctx, reqs[0]); done <- err }()
	waitFor(t, "worker to take the first job", func() bool { return len(sh.q) == 0 && s.enqueued.Load() == 1 })
	go func() { _, err := s.Retrieve(ctx, reqs[1]); done <- err }()
	waitFor(t, "second job to queue", func() bool { return len(sh.q) == 1 })

	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	waitFor(t, "drain to begin", s.Draining)
	sh.mu.Unlock()
	<-done
	<-done
	<-closed

	snap := reg.Snapshot()
	if got := snap.Gauges["qos_serve_draining"]; got != 1 {
		t.Errorf("qos_serve_draining = %d, want 1", got)
	}
	if got, ok := reg.CounterValue("qos_serve_drain_flushed_total"); !ok || got != 1 {
		t.Errorf("qos_serve_drain_flushed_total = %d (present %v), want 1", got, ok)
	}
}
