package serve

import (
	"qosalloc/internal/casebase"
	"qosalloc/internal/retrieval"
)

// snapshot is one committed epoch of the case base: the immutable tree
// plus the per-shard retrieval engines and bypass token caches built
// over it, installed behind Service.snap as a single unit. Readers load
// the pointer once per batch (under their shard mutex) and never see a
// half-updated epoch: engines, token caches and the tree a token is
// validated against always agree.
//
// Epochs are numbered from 1 (the snapshot New builds). Every commit —
// fold, structural retain/retire, or manual CommitNow — installs epoch
// N+1 with freshly built engines and empty token caches bound to the
// new epoch via TokenCache.SetEpoch, so a token minted against epoch N
// can never bypass retrieval against epoch N+1.
type snapshot struct {
	epoch   uint64
	cb      *casebase.CaseBase
	engines []*retrieval.Engine
	tokens  []*retrieval.TokenCache
}

// CaseBase returns the committed epoch's case base — the immutable tree
// the service currently retrieves against. After a commit it returns
// the new tree; callers validating requests against it must tolerate a
// request racing a commit (the service's own epoch checks do).
func (s *Service) CaseBase() *casebase.CaseBase { return s.snap.Load().cb }

// newSnapshot builds the epoch's per-shard engines and token caches
// over cb. rm may be nil (uninstrumented service).
func newSnapshot(epoch uint64, cb *casebase.CaseBase, shards int, opt retrieval.Options, rm *retrieval.Metrics) *snapshot {
	sn := &snapshot{epoch: epoch, cb: cb}
	for i := 0; i < shards; i++ {
		eng := retrieval.NewEngine(cb, opt)
		if rm != nil {
			eng.Instrument(rm)
		}
		tc := retrieval.NewTokenCache()
		tc.SetEpoch(epoch)
		sn.engines = append(sn.engines, eng)
		sn.tokens = append(sn.tokens, tc)
	}
	return sn
}

// resultFromToken rebuilds the full Result a fresh engine walk would
// return for the token's signature against THIS epoch's tree: the
// engine is deterministic over the immutable snapshot, so (Type, Impl,
// Similarity) plus the tree's Target/Name reproduce it bit for bit —
// with nil Locals, exactly like a KeepLocals-off walk. A token whose
// implementation is gone from this epoch reports live=false and the
// caller walks the engine instead.
func (sn *snapshot) resultFromToken(tok retrieval.Token) (retrieval.Result, bool) {
	ft, ok := sn.cb.Type(tok.Type)
	if !ok {
		return retrieval.Result{}, false
	}
	im, ok := ft.Impl(tok.Impl)
	if !ok {
		return retrieval.Result{}, false
	}
	return retrieval.Result{
		Type: tok.Type, Impl: tok.Impl, Target: im.Target, Name: im.Name,
		Similarity: tok.Similarity,
	}, true
}
