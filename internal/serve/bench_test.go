package serve

import (
	"context"
	"testing"

	"qosalloc/internal/casebase"
	"qosalloc/internal/retrieval"
	"qosalloc/internal/workload"
)

// benchWorkload is the Table-3 capacity point (15 types × 10 impls × 10
// attrs) with a repeat-heavy client stream: 64 concurrent clients
// replaying each other's requests is exactly the regime the batching
// layer targets.
func benchWorkload(b *testing.B) (*casebase.CaseBase, []casebase.Request) {
	b.Helper()
	cb, reg, err := workload.GenCaseBase(workload.PaperScale())
	if err != nil {
		b.Fatal(err)
	}
	reqs, err := workload.GenRequests(cb, reg, workload.RequestStreamSpec{
		N: 512, ConstraintsPer: 5, RepeatFraction: 0.5, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	return cb, reqs
}

// BenchmarkServeSequential is the baseline: one engine, one request at
// a time, no batching, no dedup, no token bypass. One op = the whole
// 512-request stream.
func BenchmarkServeSequential(b *testing.B) {
	cb, reqs := benchWorkload(b)
	eng := retrieval.NewEngine(cb, retrieval.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, req := range reqs {
			if _, err := eng.Retrieve(req); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkServeBatch drives the same stream through the service as 64
// client-sized micro-batches over 8 shards. The win on a single CPU
// comes from singleflight dedup and the shard token caches — repeated
// signatures skip the linear list walk entirely; extra cores add shard
// parallelism on top. One op = the whole 512-request stream.
func BenchmarkServeBatch(b *testing.B) {
	cb, reqs := benchWorkload(b)
	s := New(cb, fig1System(b, cb), Config{Shards: 8, MaxBatch: 64})
	defer s.Close()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for lo := 0; lo < len(reqs); lo += 64 {
			out, err := s.RetrieveBatch(ctx, reqs[lo:lo+64])
			if err != nil {
				b.Fatal(err)
			}
			for _, o := range out {
				if o.Err != nil {
					b.Fatal(o.Err)
				}
			}
		}
	}
	b.StopTimer()
	st := s.Stats()
	b.ReportMetric(float64(st.TokenHits)/float64(b.N), "tokenhits/op")
	b.ReportMetric(float64(st.DedupHits)/float64(b.N), "deduphits/op")
}
