package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"qosalloc/internal/attr"
	"qosalloc/internal/casebase"
	"qosalloc/internal/device"
	"qosalloc/internal/learn"
	"qosalloc/internal/obs"
	"qosalloc/internal/retrieval"
)

// learnConfig is the test default: deterministic EWMA replacement and a
// small fold threshold so tests trip commits without bulk traffic.
func learnConfig(threshold int, maxAge device.Micros) LearnConfig {
	return LearnConfig{Enabled: true, Alpha: 1, FoldThreshold: threshold, MaxAge: maxAge}
}

// nudged returns a measured value guaranteed to differ from the
// committed one by exactly one LSB while staying inside design bounds.
func nudged(t *testing.T, cb *casebase.CaseBase, id attr.ID, committed attr.Value) attr.Value {
	t.Helper()
	d, ok := cb.Registry().Lookup(id)
	if !ok {
		t.Fatalf("attribute %d undefined", id)
	}
	if committed < d.Hi {
		return committed + 1
	}
	return committed - 1
}

func TestMutationAPIRequiresLearning(t *testing.T) {
	cb, _, _ := genWorkload(t, 1, 0)
	s := New(cb, fig1System(t, cb), Config{Shards: 2})
	defer s.Close()

	ft := cb.Types()[0]
	if err := s.Observe(learn.Observation{Type: ft.ID, Impl: ft.Impls[0].ID}); !errors.Is(err, ErrLearningOff) {
		t.Errorf("Observe = %v, want ErrLearningOff", err)
	}
	if _, err := s.Retain(ft.ID, casebase.Implementation{}, 0); !errors.Is(err, ErrLearningOff) {
		t.Errorf("Retain = %v, want ErrLearningOff", err)
	}
	if err := s.Retire(ft.ID, 1, 0); !errors.Is(err, ErrLearningOff) {
		t.Errorf("Retire = %v, want ErrLearningOff", err)
	}
	if _, err := s.CommitNow(); !errors.Is(err, ErrLearningOff) {
		t.Errorf("CommitNow = %v, want ErrLearningOff", err)
	}
	if e := s.Epoch(); e != 1 {
		t.Errorf("Epoch = %d, want 1", e)
	}
	// The empty journal has a fixed digest (fnv64a offset basis).
	if h := s.ReplayHash(); h != "fnv64a:cbf29ce484222325" {
		t.Errorf("empty ReplayHash = %q", h)
	}
}

func TestCommitNowBumpsEpochAndJournals(t *testing.T) {
	cb, _, _ := genWorkload(t, 1, 0)
	s := New(cb, fig1System(t, cb), Config{Shards: 2, Learning: learnConfig(64, 0)})
	defer s.Close()

	s.Tick(123)
	epoch, err := s.CommitNow()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 || s.Epoch() != 2 {
		t.Fatalf("epoch = %d / %d, want 2", epoch, s.Epoch())
	}
	j := s.Journal()
	if len(j) != 1 || j[0] != "epoch=2 t=123 reason=manual changed=0 folded_obs=0" {
		t.Fatalf("journal = %q", j)
	}
	st := s.EpochStats()
	if st.Commits != 1 || st.Folds != 0 || st.Epoch != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestFoldThresholdTripsCommit pins the deferred net-commit contract:
// observations accumulate without committing until the configured number
// of LSB-visible revisions is pending, then one fold installs them all.
func TestFoldThresholdTripsCommit(t *testing.T) {
	cb, _, _ := genWorkload(t, 1, 0)
	s := New(cb, fig1System(t, cb), Config{Shards: 4, Learning: learnConfig(4, 0)})
	defer s.Close()

	ft := cb.Types()[0]
	im := ft.Impls[0]
	want := make(map[attr.ID]attr.Value)
	for i := 0; i < 4; i++ {
		p := im.Attrs[i]
		v := nudged(t, cb, p.ID, p.Value)
		want[p.ID] = v
		err := s.Observe(learn.Observation{
			Type: ft.ID, Impl: im.ID,
			Measured: []attr.Pair{{ID: p.ID, Value: v}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if i < 3 && s.Epoch() != 1 {
			t.Fatalf("committed after %d observations, want 4", i+1)
		}
	}
	if s.Epoch() != 2 {
		t.Fatalf("epoch = %d after threshold, want 2", s.Epoch())
	}
	st := s.EpochStats()
	if st.Folds != 1 || st.Commits != 1 || st.Observations != 4 || st.FoldedObs != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if st.PendingObs != 0 || st.PendingRevs != 0 {
		t.Fatalf("pending state survived the fold: %+v", st)
	}
	j := s.Journal()
	if len(j) != 1 || !strings.Contains(j[0], "reason=fold") || !strings.Contains(j[0], "folded_obs=4") {
		t.Fatalf("journal = %q", j)
	}
	// The committed tree carries the folded values.
	ft2, _ := s.CaseBase().Type(ft.ID)
	im2, _ := ft2.Impl(im.ID)
	for id, v := range want {
		if got, _ := im2.Attr(id); got != v {
			t.Errorf("attr %d = %d after fold, want %d", id, got, v)
		}
	}
}

// TestMaxAgeTripsCommit pins the sim-time age bound: pending LSB-visible
// state older than MaxAge commits at the next mutation entry point.
func TestMaxAgeTripsCommit(t *testing.T) {
	cb, _, _ := genWorkload(t, 1, 0)
	s := New(cb, fig1System(t, cb), Config{Shards: 2, Learning: learnConfig(1000, 100)})
	defer s.Close()

	ft := cb.Types()[0]
	im := ft.Impls[0]
	obsFor := func(i int) learn.Observation {
		p := im.Attrs[i]
		return learn.Observation{Type: ft.ID, Impl: im.ID,
			Measured: []attr.Pair{{ID: p.ID, Value: nudged(t, cb, p.ID, p.Value)}}}
	}
	s.Tick(10)
	if err := s.Observe(obsFor(0)); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 1 {
		t.Fatal("committed before the age bound")
	}
	s.Tick(200) // 190 µs past the first pending observation
	if err := s.Observe(obsFor(1)); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2 (age bound)", s.Epoch())
	}
	if st := s.EpochStats(); st.Folds != 1 || st.FoldedObs != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRetainAssignsIDAndStoresBlob(t *testing.T) {
	cb, _, _ := genWorkload(t, 1, 0)
	s := New(cb, fig1System(t, cb), Config{Shards: 2, Learning: learnConfig(64, 0)})
	defer s.Close()

	ft := cb.Types()[0]
	src := ft.Impls[0]
	im := casebase.Implementation{
		Name: "retained-v1", Target: src.Target,
		Attrs: append([]attr.Pair(nil), src.Attrs...),
		Foot:  src.Foot,
	}
	id, err := s.Retain(ft.ID, im, 0)
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Fatal("Retain assigned ID 0")
	}
	if s.Epoch() != 2 {
		t.Fatalf("epoch = %d after retain, want 2", s.Epoch())
	}
	ft2, _ := s.CaseBase().Type(ft.ID)
	got, ok := ft2.Impl(id)
	if !ok || got.Name != "retained-v1" {
		t.Fatalf("retained variant missing from committed tree: %+v, %v", got, ok)
	}
	// The repository blob landed atomically with the epoch.
	if _, ok := s.System().Repository().Lookup(ft.ID, id); !ok {
		t.Fatal("retained variant has no repository blob")
	}
	if st := s.EpochStats(); st.Retained != 1 {
		t.Fatalf("stats = %+v", st)
	}

	if err := s.Retire(ft.ID, id, 0); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 3 {
		t.Fatalf("epoch = %d after retire, want 3", s.Epoch())
	}
	ft3, _ := s.CaseBase().Type(ft.ID)
	if _, ok := ft3.Impl(id); ok {
		t.Fatal("retired variant still in committed tree")
	}
	if st := s.EpochStats(); st.Retired != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStaleEpochPrecondition(t *testing.T) {
	cb, _, _ := genWorkload(t, 1, 0)
	s := New(cb, fig1System(t, cb), Config{Shards: 2, Learning: learnConfig(64, 0)})
	defer s.Close()

	before := s.Epoch() // 1
	if _, err := s.CommitNow(); err != nil {
		t.Fatal(err)
	}
	ft := cb.Types()[0]
	err := s.Retire(ft.ID, ft.Impls[1].ID, before)
	var stale *ErrStaleEpoch
	if !errors.As(err, &stale) {
		t.Fatalf("Retire at stale epoch = %v, want *ErrStaleEpoch", err)
	}
	if stale.At != before || stale.Committed != 2 {
		t.Fatalf("stale = %+v", stale)
	}
	if _, err := s.Retain(ft.ID, casebase.Implementation{}, before); !errors.As(err, &stale) {
		t.Fatalf("Retain at stale epoch = %v, want *ErrStaleEpoch", err)
	}
	// Conditioning on the committed epoch succeeds.
	if err := s.Retire(ft.ID, ft.Impls[1].ID, s.Epoch()); err != nil {
		t.Fatal(err)
	}
}

// TestRetireInvalidatesBypassTokens is the token-staleness regression:
// tokenize a variant through the repeat path, retire it, and the next
// retrieval must re-walk the new epoch's engine — never serve the
// retired implementation from a stale token.
func TestRetireInvalidatesBypassTokens(t *testing.T) {
	cb, _, reqs := genWorkload(t, 24, 0)
	s := New(cb, fig1System(t, cb), Config{Shards: 2, MaxBatch: 8, Learning: learnConfig(64, 0)})
	defer s.Close()

	ctx := context.Background()
	req := []casebase.Request{reqs[0]}
	out, err := s.RetrieveBatch(ctx, req)
	if err != nil || out[0].Err != nil {
		t.Fatal(err, out[0].Err)
	}
	victim := out[0].Result
	// Second pass serves from the minted token.
	if _, err := s.RetrieveBatch(ctx, req); err != nil {
		t.Fatal(err)
	}
	if s.Stats().TokenHits == 0 {
		t.Fatal("repeat retrieval minted no token")
	}

	if err := s.Retire(victim.Type, victim.Impl, 0); err != nil {
		t.Fatal(err)
	}
	out, err = s.RetrieveBatch(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Err == nil && out[0].Result.Type == victim.Type && out[0].Result.Impl == victim.Impl {
		t.Fatalf("stale bypass: retired variant %d/%d still served", victim.Type, victim.Impl)
	}
	// And the post-retire answer is exactly a fresh walk of the new tree.
	want, wantErr := retrieval.NewEngine(s.CaseBase(), retrieval.Options{}).Retrieve(reqs[0])
	if (out[0].Err == nil) != (wantErr == nil) || !reflect.DeepEqual(out[0].Result, want) {
		t.Fatalf("post-retire result %+v (err %v) != fresh walk %+v (err %v)",
			out[0].Result, out[0].Err, want, wantErr)
	}
}

// TestSwapMatchesFromScratchRebuild is the equivalence guard: after a
// run of observations and structural mutations, batched retrieval
// through the long-lived service must be bit-identical to a sequential
// engine walk over the committed tree — the swap pipeline leaves no
// residue a from-scratch rebuild wouldn't have.
func TestSwapMatchesFromScratchRebuild(t *testing.T) {
	cb, _, reqs := genWorkload(t, 120, 0.4)
	s := New(cb, fig1System(t, cb), Config{Shards: 4, MaxBatch: 16, Learning: learnConfig(8, 0)})
	defer s.Close()

	rng := rand.New(rand.NewSource(7))
	types := cb.Types()
	for i := 0; i < 40; i++ {
		ft := types[rng.Intn(len(types))]
		im := ft.Impls[rng.Intn(len(ft.Impls))]
		p := im.Attrs[rng.Intn(len(im.Attrs))]
		err := s.Observe(learn.Observation{Type: ft.ID, Impl: im.ID,
			Measured: []attr.Pair{{ID: p.ID, Value: nudged(t, cb, p.ID, p.Value)}}})
		if err != nil {
			t.Fatal(err)
		}
	}
	src := types[0].Impls[0]
	if _, err := s.Retain(types[0].ID, casebase.Implementation{
		Name: "equiv-v1", Target: src.Target,
		Attrs: append([]attr.Pair(nil), src.Attrs...), Foot: src.Foot,
	}, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Retire(types[1].ID, types[1].Impls[2].ID, 0); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() < 3 {
		t.Fatalf("epoch = %d, want several commits", s.Epoch())
	}

	eng := retrieval.NewEngine(s.CaseBase(), retrieval.Options{})
	out, err := s.RetrieveBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for k, o := range out {
		want, wantErr := eng.Retrieve(reqs[k])
		if (o.Err == nil) != (wantErr == nil) {
			t.Fatalf("req %d: err = %v, sequential err = %v", k, o.Err, wantErr)
		}
		if !reflect.DeepEqual(o.Result, want) {
			t.Fatalf("req %d: served %+v != fresh walk %+v", k, o.Result, want)
		}
	}
}

// runLearnSchedule drives one fixed seeded schedule of retrievals and
// mutations sequentially against a service with the given shard count
// and returns the epoch journal, replay hash and retrieval outcomes.
func runLearnSchedule(t *testing.T, shards int) (journal []string, hash string, results []string) {
	t.Helper()
	cb, _, reqs := genWorkload(t, 120, 0.3)
	s := New(cb, fig1System(t, cb), Config{
		Shards: shards, MaxBatch: 8,
		Learning: LearnConfig{Enabled: true, Alpha: 0.5, FoldThreshold: 4, MaxAge: 5_000},
	})
	defer s.Close()

	ctx := context.Background()
	rng := rand.New(rand.NewSource(99))
	types := cb.Types()
	now := device.Micros(0)
	for step := 0; step < 200; step++ {
		now += 25
		s.Tick(now)
		switch k := rng.Intn(10); {
		case k < 5:
			lo := rng.Intn(len(reqs) - 4)
			out, err := s.RetrieveBatch(ctx, reqs[lo:lo+4])
			if err != nil {
				t.Fatalf("shards=%d step %d: %v", shards, step, err)
			}
			for _, o := range out {
				if o.Err != nil {
					results = append(results, fmt.Sprintf("err:%v", o.Err))
					continue
				}
				results = append(results, fmt.Sprintf("%d:%d:%.9f", o.Result.Type, o.Result.Impl, o.Result.Similarity))
			}
		case k < 9:
			ft := types[rng.Intn(len(types))]
			im := ft.Impls[rng.Intn(len(ft.Impls))]
			p := im.Attrs[rng.Intn(len(im.Attrs))]
			// May fail deterministically once the schedule retired the
			// impl — the error sequence is part of the replayed behavior.
			_ = s.Observe(learn.Observation{Type: ft.ID, Impl: im.ID,
				Measured: []attr.Pair{{ID: p.ID, Value: p.Value + attr.Value(rng.Intn(3))}}})
		case rng.Intn(2) == 0:
			ft := types[rng.Intn(len(types))]
			src := ft.Impls[rng.Intn(len(ft.Impls))]
			_, _ = s.Retain(ft.ID, casebase.Implementation{
				Name: fmt.Sprintf("sched-%d", step), Target: src.Target,
				Attrs: append([]attr.Pair(nil), src.Attrs...), Foot: src.Foot,
			}, 0)
		default:
			ft := types[rng.Intn(len(types))]
			// Never the first variant, so no type ever empties out.
			_ = s.Retire(ft.ID, ft.Impls[1+rng.Intn(len(ft.Impls)-1)].ID, 0)
		}
	}
	if st := s.EpochStats(); st.Commits == 0 || st.Folds == 0 {
		t.Fatalf("shards=%d: schedule exercised no fold commits: %+v", shards, st)
	}
	return s.Journal(), s.ReplayHash(), results
}

// TestReplayShardInvariant pins the replay contract of DESIGN.md §14: a
// deterministic lockstep schedule produces the identical epoch journal,
// replay hash AND retrieval outcomes at any shard count — fold points
// depend on the global counters, never on how keys stripe.
func TestReplayShardInvariant(t *testing.T) {
	j1, h1, r1 := runLearnSchedule(t, 1)
	for _, shards := range []int{4, 8} {
		j, h, r := runLearnSchedule(t, shards)
		if h != h1 {
			t.Errorf("shards=%d: replay hash %s != %s at shards=1", shards, h, h1)
		}
		if !reflect.DeepEqual(j, j1) {
			t.Errorf("shards=%d: journal diverged:\n got %q\nwant %q", shards, j, j1)
		}
		if !reflect.DeepEqual(r, r1) {
			t.Errorf("shards=%d: retrieval outcomes diverged (%d vs %d lines)", shards, len(r), len(r1))
		}
	}
}

// TestLearnChurnRaceStress hammers a learning service from concurrent
// readers and writers — the test is mainly for -race; it also checks
// that commits land and no call fails outside the tolerated classes.
func TestLearnChurnRaceStress(t *testing.T) {
	cb, _, reqs := genWorkload(t, 64, 0.3)
	s := New(cb, fig1System(t, cb), Config{
		Shards: 4, MaxBatch: 8, MaxQueue: 512,
		Learning: LearnConfig{Enabled: true, Alpha: 0.5, FoldThreshold: 16},
	})
	defer s.Close()

	ctx := context.Background()
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				lo := (c*5 + i) % (len(reqs) - 4)
				if _, err := s.RetrieveBatch(ctx, reqs[lo:lo+4]); err != nil {
					var ov *ErrOverload
					if !errors.As(err, &ov) {
						errc <- fmt.Errorf("reader %d: %w", c, err)
					}
					return
				}
			}
		}(c)
	}
	types := cb.Types()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var mine []casebase.ImplID
			ft := types[w%len(types)]
			for i := 0; i < 40; i++ {
				switch {
				case i%10 == 9 && len(mine) > 0:
					// Retire only variants this writer retained: seed
					// variants stay, so observations stay valid.
					id := mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					if err := s.Retire(ft.ID, id, 0); err != nil {
						errc <- fmt.Errorf("writer %d retire: %w", w, err)
						return
					}
				case i%10 == 4 && len(mine) < 4:
					src := ft.Impls[0]
					id, err := s.Retain(ft.ID, casebase.Implementation{
						Name: fmt.Sprintf("churn-%d-%d", w, i), Target: src.Target,
						Attrs: append([]attr.Pair(nil), src.Attrs...), Foot: src.Foot,
					}, 0)
					if err != nil {
						errc <- fmt.Errorf("writer %d retain: %w", w, err)
						return
					}
					mine = append(mine, id)
				default:
					im := ft.Impls[rng.Intn(len(ft.Impls))]
					p := im.Attrs[rng.Intn(len(im.Attrs))]
					err := s.Observe(learn.Observation{Type: ft.ID, Impl: im.ID,
						Measured: []attr.Pair{{ID: p.ID, Value: p.Value + attr.Value(rng.Intn(3))}}})
					if err != nil {
						errc <- fmt.Errorf("writer %d observe: %w", w, err)
						return
					}
				}
			}
		}(w)
	}
	// Driver: clock ticks, allocations (tolerating typed outcomes), stats.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := s.Advance(s.System().Now() + 100); err != nil {
				errc <- err
				return
			}
			_, err := s.Allocate(ctx, "driver", reqs[i], 5)
			if err != nil && !isNoFeasible(err) {
				var ov *ErrOverload
				var stale *ErrStaleEpoch
				var nm *retrieval.ErrNoMatch
				if !errors.As(err, &ov) && !errors.As(err, &stale) && !errors.As(err, &nm) {
					errc <- err
					return
				}
			}
			_ = s.Stats()
			_ = s.EpochStats()
			_ = s.ReplayHash()
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if st := s.EpochStats(); st.Commits == 0 || st.Retained == 0 {
		t.Errorf("churn produced no commits: %+v", st)
	}
}

func TestLearnMetricsExported(t *testing.T) {
	cb, _, _ := genWorkload(t, 1, 0)
	s := New(cb, fig1System(t, cb), Config{Shards: 2, Learning: learnConfig(2, 0)})
	defer s.Close()
	reg := obs.NewRegistry()
	s.Instrument(reg)

	ft := cb.Types()[0]
	im := ft.Impls[0]
	for i := 0; i < 2; i++ {
		p := im.Attrs[i]
		err := s.Observe(learn.Observation{Type: ft.ID, Impl: im.ID,
			Measured: []attr.Pair{{ID: p.ID, Value: nudged(t, cb, p.ID, p.Value)}}})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.CommitNow(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"qos_serve_epoch",
		`qos_serve_commits_total{reason="fold"}`,
		`qos_serve_commits_total{reason="manual"}`,
		"qos_serve_observations_total",
		"qos_serve_folded_attrs_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if want := fmt.Sprintf("qos_serve_epoch %d", s.Epoch()); !strings.Contains(out, want) {
		t.Errorf("exposition missing %q", want)
	}
}
