package memlist

import (
	"bytes"
	"reflect"
	"testing"

	"qosalloc/internal/casebase"
	"qosalloc/internal/workload"
)

func compactSpec(seed int64) workload.CaseBaseSpec {
	return workload.CaseBaseSpec{
		Types: 5, ImplsPerType: 4, AttrsPerImpl: 6, AttrUniverse: 9, Seed: seed,
	}
}

func mustCompact(t *testing.T, cb *casebase.CaseBase) *CompactCaseBase {
	t.Helper()
	cc, err := CompactFromCaseBase(cb)
	if err != nil {
		t.Fatalf("CompactFromCaseBase: %v", err)
	}
	return cc
}

// TestCompactFromImagesMatchesCaseBase asserts the migration path from
// serialized fig. 4/5 images produces exactly the structure the direct
// case-base builder produces — the Encode→Compact→Decode round-trip
// property of the issue, on random case bases.
func TestCompactFromImagesMatchesCaseBase(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		cb, reg, err := workload.GenCaseBase(compactSpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		direct := mustCompact(t, cb)
		tree, err := EncodeTree(cb)
		if err != nil {
			t.Fatal(err)
		}
		supp := EncodeSupplemental(reg)
		viaImages, err := CompactFromImages(tree, supp)
		if err != nil {
			t.Fatalf("seed %d: CompactFromImages: %v", seed, err)
		}
		if !reflect.DeepEqual(direct, viaImages) {
			t.Fatalf("seed %d: compact via images differs from compact via case base", seed)
		}
	}
}

// TestCompactEncodeDecodeRoundTrip asserts EncodeCompact/DecodeCompact
// are exact inverses, at the struct level and at the byte level.
func TestCompactEncodeDecodeRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		cb, _, err := workload.GenCaseBase(compactSpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		cc := mustCompact(t, cb)
		im, err := cc.EncodeCompact()
		if err != nil {
			t.Fatal(err)
		}
		if len(im.Words) != cc.Words() {
			t.Fatalf("seed %d: image is %d words, Words() says %d", seed, len(im.Words), cc.Words())
		}
		back, err := DecodeCompact(im)
		if err != nil {
			t.Fatalf("seed %d: DecodeCompact: %v", seed, err)
		}
		if !reflect.DeepEqual(cc, back) {
			t.Fatalf("seed %d: decode(encode(cc)) != cc", seed)
		}
		// Byte round-trip through the serialization used for BRAM
		// initialization files.
		im2, err := FromBytes(im.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		re, err := back.EncodeCompact()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(im2.Bytes(), re.Bytes()) {
			t.Fatalf("seed %d: re-encoded bytes differ", seed)
		}
	}
}

// TestCompactWordsClosedForm checks the closed-form size predictions
// against the encoder, word for word, for the regular shapes Table 3
// prices.
func TestCompactWordsClosedForm(t *testing.T) {
	shapes := []workload.CaseBaseSpec{
		{Types: 1, ImplsPerType: 1, AttrsPerImpl: 1, AttrUniverse: 1, Seed: 1},
		{Types: 3, ImplsPerType: 2, AttrsPerImpl: 4, AttrUniverse: 4, Seed: 2},
		{Types: 15, ImplsPerType: 10, AttrsPerImpl: 10, AttrUniverse: 10, Seed: 3},
	}
	for _, spec := range shapes {
		cb, _, err := workload.GenCaseBase(spec)
		if err != nil {
			t.Fatal(err)
		}
		cc := mustCompact(t, cb)
		im, err := cc.EncodeCompact()
		if err != nil {
			t.Fatal(err)
		}
		want := CompactWords(spec.Types, spec.ImplsPerType, spec.AttrsPerImpl, spec.AttrUniverse)
		if len(im.Words) != want {
			t.Fatalf("%+v: encoded %d words, CompactWords predicts %d", spec, len(im.Words), want)
		}
	}
}

// TestCompactReportPaperScale records the Table 3 footprint delta at the
// paper's capacity point: the compacted layout must be strictly smaller
// than tree+supplemental because extents replace per-impl pointers and
// per-list terminators.
func TestCompactReportPaperScale(t *testing.T) {
	r := CompactReport(15, 10, 10, 10)
	if r.UncompactedWords != TreeWords(15, 10, 10)+SupplementalWords(10) {
		t.Fatalf("uncompacted = %d", r.UncompactedWords)
	}
	if r.CompactWords >= r.UncompactedWords {
		t.Fatalf("compact layout (%d words) not smaller than uncompacted (%d words)",
			r.CompactWords, r.UncompactedWords)
	}
	if r.SavedWords != r.UncompactedWords-r.CompactWords {
		t.Fatalf("SavedWords = %d", r.SavedWords)
	}
	if r.SavedFraction <= 0 {
		t.Fatalf("SavedFraction = %v", r.SavedFraction)
	}
	t.Logf("Table 3 delta at 15×10×10: uncompacted %d words, compact %d words, saved %d (%.1f%%)",
		r.UncompactedWords, r.CompactWords, r.SavedWords, 100*r.SavedFraction)
}

// validCompactImage builds a small hand-checkable compacted image:
// 2 types, 3 impls, 4 attribute pairs, 2 supplemental entries.
func validCompactImage(t *testing.T) *Image {
	t.Helper()
	cc := &CompactCaseBase{
		TypeIDs:   []uint16{1, 4},
		ImplOff:   []uint16{0, 2, 3},
		ImplIDs:   []uint16{10, 11, 12},
		AttrOff:   []uint16{0, 2, 3, 4},
		AttrIDs:   []uint16{1, 2, 1, 2},
		AttrVals:  []uint16{7, 9, 8, 3},
		SuppIDs:   []uint16{1, 2},
		SuppLo:    []uint16{0, 0},
		SuppHi:    []uint16{100, 50},
		SuppRecip: []uint16{648, 1285},
	}
	im, err := cc.EncodeCompact()
	if err != nil {
		t.Fatal(err)
	}
	return im
}

// TestDecodeCompactRejectsCorrupt drives DecodeCompact through every
// rejection class by corrupting single words of a valid image.
func TestDecodeCompactRejectsCorrupt(t *testing.T) {
	base := validCompactImage(t)
	if _, err := DecodeCompact(base); err != nil {
		t.Fatalf("valid image rejected: %v", err)
	}
	// Word addresses inside the valid image, for targeted corruption.
	// header 0..5, TypeIDs 6..7, ImplOff 8..10, ImplIDs 11..13,
	// AttrOff 14..17, AttrIDs 18..21, AttrVals 22..25, SuppIDs 26..27,
	// SuppLo 28..29, SuppHi 30..31, SuppRecip 32..33, End 34.
	cases := []struct {
		name string
		addr int
		word uint16
	}{
		{"bad magic", 0, 0x1234},
		{"bad version", 1, 2},
		{"count changes shape", 2, 3},
		{"missing terminator", 34, 5},
		{"reserved type ID", 6, 0xFFFF},
		{"zero type ID", 6, 0},
		{"type IDs not ascending", 7, 1},
		{"impl extents nonzero start", 8, 1},
		{"impl extents decrease", 9, 5},
		{"impl extents open", 10, 2},
		{"reserved impl ID", 11, 0xFFFF},
		{"impl IDs not ascending", 12, 10},
		{"attr extents open", 17, 3},
		{"reserved attr ID", 18, 0xFFFF},
		{"attr IDs not ascending", 19, 1},
		{"reserved supp ID", 26, 0xFFFF},
		{"supp IDs not ascending", 27, 1},
	}
	for _, tc := range cases {
		im := &Image{Words: append([]uint16(nil), base.Words...)}
		im.Words[tc.addr] = tc.word
		if _, err := DecodeCompact(im); err == nil {
			t.Errorf("%s: decoded without error", tc.name)
		}
	}
	// Truncation and padding must both fail the exact-length check.
	trunc := &Image{Words: base.Words[:len(base.Words)-1]}
	if _, err := DecodeCompact(trunc); err == nil {
		t.Error("truncated image decoded without error")
	}
	padded := &Image{Words: append(append([]uint16(nil), base.Words...), EndMarker)}
	if _, err := DecodeCompact(padded); err == nil {
		t.Error("padded image decoded without error")
	}
	short := &Image{Words: []uint16{CompactMagic, CompactVersion}}
	if _, err := DecodeCompact(short); err == nil {
		t.Error("header-less image decoded without error")
	}
}

// TestCompactBuilderRejectsMalformed covers the builder-side check()
// paths that no encoder output can reach but hand-built structures can.
func TestCompactBuilderRejectsMalformed(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*CompactCaseBase)
	}{
		{"misaligned attr values", func(cc *CompactCaseBase) { cc.AttrVals = cc.AttrVals[:1] }},
		{"misaligned supplemental", func(cc *CompactCaseBase) { cc.SuppRecip = cc.SuppRecip[:1] }},
		{"extents wrong length", func(cc *CompactCaseBase) { cc.ImplOff = cc.ImplOff[:2] }},
	}
	for _, tc := range cases {
		cb, _, err := workload.GenCaseBase(compactSpec(1))
		if err != nil {
			t.Fatal(err)
		}
		cc := mustCompact(t, cb)
		tc.mutate(cc)
		if _, err := cc.EncodeCompact(); err == nil {
			t.Errorf("%s: encoded without error", tc.name)
		}
	}
}
