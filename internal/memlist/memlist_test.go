package memlist

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"qosalloc/internal/attr"
	"qosalloc/internal/casebase"
	"qosalloc/internal/fixed"
	"qosalloc/internal/workload"
)

func TestEncodeRequestLayout(t *testing.T) {
	im, err := EncodeRequest(casebase.PaperRequest())
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 4 left, word for word: type, then (ID, value, weight)
	// blocks sorted by ID, then the NULL terminator.
	if len(im.Words) != RequestWords(3) {
		t.Fatalf("words = %d, want %d", len(im.Words), RequestWords(3))
	}
	third := uint16(fixed.EqualWeights(3)[1])
	first := uint16(fixed.EqualWeights(3)[0])
	want := []uint16{
		1,            // function type: FIR equalizer
		1, 16, first, // bitwidth = 16
		3, 1, third, // output mode = stereo
		4, 40, third, // sample rate = 40
		EndMarker,
	}
	for i, w := range want {
		if im.Words[i] != w {
			t.Errorf("word %d = %d, want %d", i, im.Words[i], w)
		}
	}
}

func TestRequestRoundTrip(t *testing.T) {
	req := casebase.PaperRequest()
	im, err := EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeRequest(im)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Type != uint16(req.Type) {
		t.Errorf("type = %d", dec.Type)
	}
	if len(dec.Constraints) != len(req.Constraints) {
		t.Fatalf("constraints = %d", len(dec.Constraints))
	}
	for i, c := range req.Constraints {
		d := dec.Constraints[i]
		if d.ID != uint16(c.ID) || d.Value != uint16(c.Value) {
			t.Errorf("constraint %d = %+v", i, d)
		}
		if math.Abs(d.Weight.Float()-c.Weight) > 1e-4 {
			t.Errorf("weight %d = %v, want %v", i, d.Weight.Float(), c.Weight)
		}
	}
}

func TestEncodeRequestRejectsBadInput(t *testing.T) {
	if _, err := EncodeRequest(casebase.Request{Type: 0}); err == nil {
		t.Error("type 0 must be rejected")
	}
	bad := casebase.Request{Type: 1, Constraints: []casebase.Constraint{
		{ID: 0, Value: 1, Weight: 1},
	}}
	if _, err := EncodeRequest(bad); err == nil {
		t.Error("attribute ID 0 must be rejected")
	}
	unsorted := casebase.Request{Type: 1, Constraints: []casebase.Constraint{
		{ID: 4, Value: 1, Weight: 0.5}, {ID: 1, Value: 1, Weight: 0.5},
	}}
	if _, err := EncodeRequest(unsorted); err == nil {
		t.Error("unsorted constraints must be rejected")
	}
}

func TestTableThreeRequestBytes(t *testing.T) {
	// Table 3: "Attributes per Request: 10 (worst case)" →
	// "Memory consumption of request: 64 Bytes".
	if got := RequestWords(10) * 2; got != 64 {
		t.Errorf("request bytes at 10 attrs = %d, want 64 (Table 3)", got)
	}
}

func TestSupplementalRoundTrip(t *testing.T) {
	reg := casebase.PaperRegistry()
	im := EncodeSupplemental(reg)
	if len(im.Words) != SupplementalWords(4) {
		t.Fatalf("words = %d, want %d", len(im.Words), SupplementalWords(4))
	}
	entries, err := DecodeSupplemental(im)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("entries = %d", len(entries))
	}
	// Spot-check the sample-rate block: ID 4, bounds [8, 44],
	// reciprocal of 37.
	e := entries[3]
	if e.ID != 4 || e.Lo != 8 || e.Hi != 44 {
		t.Errorf("entry = %+v", e)
	}
	if e.Recip != fixed.Recip(36) {
		t.Errorf("recip = %v, want %v", e.Recip, fixed.Recip(36))
	}
}

func TestTreeRoundTrip(t *testing.T) {
	cb, err := casebase.PaperCaseBase()
	if err != nil {
		t.Fatal(err)
	}
	im, err := EncodeTree(cb)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeTree(im)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != cb.NumTypes() {
		t.Fatalf("decoded %d types, want %d", len(dec), cb.NumTypes())
	}
	for _, dt := range dec {
		ft, ok := cb.Type(casebase.TypeID(dt.ID))
		if !ok {
			t.Fatalf("decoded unknown type %d", dt.ID)
		}
		if len(dt.Impls) != len(ft.Impls) {
			t.Fatalf("type %d: decoded %d impls, want %d", dt.ID, len(dt.Impls), len(ft.Impls))
		}
		for j, di := range dt.Impls {
			im := &ft.Impls[j]
			if di.ID != uint16(im.ID) {
				t.Errorf("type %d impl %d: ID %d", dt.ID, j, di.ID)
			}
			if len(di.Attrs) != len(im.Attrs) {
				t.Fatalf("impl %d: %d attrs, want %d", di.ID, len(di.Attrs), len(im.Attrs))
			}
			for k, da := range di.Attrs {
				if da.ID != uint16(im.Attrs[k].ID) || da.Value != uint16(im.Attrs[k].Value) {
					t.Errorf("impl %d attr %d = %+v", di.ID, k, da)
				}
			}
		}
	}
}

func TestTreeLevelZeroLayout(t *testing.T) {
	cb, _ := casebase.PaperCaseBase()
	im, _ := EncodeTree(cb)
	// Level 0 (fig. 5): (type ID, pointer) pairs then the terminator.
	if im.Words[0] != 1 {
		t.Errorf("word 0 = %d, want type ID 1", im.Words[0])
	}
	if im.Words[2] != 2 {
		t.Errorf("word 2 = %d, want type ID 2", im.Words[2])
	}
	if im.Words[4] != EndMarker {
		t.Errorf("word 4 = %d, want terminator", im.Words[4])
	}
	// The first impl-list pointer lands right after level 0.
	if got := int(im.Words[1]); got != 5 {
		t.Errorf("impl list pointer = %d, want 5", got)
	}
}

func TestTreeWordsMatchesEncoder(t *testing.T) {
	cb, _ := casebase.PaperCaseBase()
	im, _ := EncodeTree(cb)
	// The paper tree is ragged (different attr counts), so compare
	// against a sum of the closed form per shape.
	want := 2*cb.NumTypes() + 1
	for _, ft := range cb.Types() {
		want += 2*len(ft.Impls) + 1
		for _, imp := range ft.Impls {
			want += 2*len(imp.Attrs) + 1
		}
	}
	if len(im.Words) != want {
		t.Errorf("encoded %d words, closed form %d", len(im.Words), want)
	}
}

func TestTableThreeTreeCapacity(t *testing.T) {
	// Table 3's capacity: 15 types × 10 implementations × 10
	// attributes, 16-bit words. The paper states "about 4.5 kB"; the
	// fully faithful fig. 5 layout with per-list terminators and
	// 2-word entries needs 6992 bytes — same order, and the closed
	// form must match exactly what the encoder emits (checked by
	// construction below at a smaller shape).
	w := TreeWords(15, 10, 10)
	if w != 3496 {
		t.Errorf("TreeWords(15,10,10) = %d, want 3496", w)
	}
	if w*2 != 6992 {
		t.Errorf("bytes = %d", w*2)
	}
	rep := Report(15, 10, 10, 10, 10)
	if rep.TreeBytes != 6992 || rep.RequestBytes != 64 {
		t.Errorf("report = %+v", rep)
	}
	if rep.SupplementalWords != SupplementalWords(10) {
		t.Errorf("supplemental words = %d", rep.SupplementalWords)
	}
}

func TestImageBytesRoundTrip(t *testing.T) {
	cb, _ := casebase.PaperCaseBase()
	im, _ := EncodeTree(cb)
	b := im.Bytes()
	back, err := FromBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Words) != len(im.Words) {
		t.Fatalf("round trip lost words")
	}
	for i := range im.Words {
		if back.Words[i] != im.Words[i] {
			t.Fatalf("word %d differs", i)
		}
	}
	if !bytes.Equal(b, back.Bytes()) {
		t.Error("byte round trip differs")
	}
	if _, err := FromBytes([]byte{1}); err == nil {
		t.Error("odd byte count must error")
	}
}

func TestImageAtOutOfRange(t *testing.T) {
	im := &Image{Words: []uint16{5}}
	if im.At(-1) != EndMarker || im.At(1) != EndMarker {
		t.Error("out-of-range reads must return EndMarker")
	}
	if im.At(0) != 5 {
		t.Error("in-range read broken")
	}
}

func TestDecodeRejectsCorruptImages(t *testing.T) {
	// Truncated request block.
	if _, err := DecodeRequest(&Image{Words: []uint16{1, 4, 16}}); err == nil {
		t.Error("truncated request must error")
	}
	// Non-ascending request IDs.
	bad := &Image{Words: []uint16{1, 4, 16, 0x2AAA, 2, 1, 0x2AAA, EndMarker}}
	if _, err := DecodeRequest(bad); err == nil {
		t.Error("descending request IDs must error")
	}
	// Type 0 request.
	if _, err := DecodeRequest(&Image{Words: []uint16{0, EndMarker}}); err == nil {
		t.Error("type 0 must error")
	}
	// Tree with a pointer outside the image.
	tb := &Image{Words: []uint16{1, 999, EndMarker}}
	if _, err := DecodeTree(tb); err == nil {
		t.Error("wild pointer must error")
	}
	// Tree with backwards pointer.
	tb2 := &Image{Words: []uint16{1, 0, EndMarker}}
	if _, err := DecodeTree(tb2); err == nil {
		t.Error("backwards pointer must error")
	}
	// Supplemental with non-ascending IDs.
	sb := &Image{Words: []uint16{4, 0, 1, 9, 2, 0, 1, 9, EndMarker}}
	if _, err := DecodeSupplemental(sb); err == nil {
		t.Error("descending supplemental IDs must error")
	}
	// Truncated supplemental.
	if _, err := DecodeSupplemental(&Image{Words: []uint16{4, 0, 1}}); err == nil {
		t.Error("truncated supplemental must error")
	}
}

// TestDecodeRejectsReservedIDs pins the decoder half of the ID-domain
// contract: EncodeRequest rejects the reserved attribute ID 0xFFFF, and
// the decoders must enforce the same [1, 0xFFFE] domain — for request
// and supplemental (and tree) images alike — instead of accepting words
// the encoder could never have emitted.
func TestDecodeRejectsReservedIDs(t *testing.T) {
	// Request with the reserved attribute ID 0xFFFF.
	req := &Image{Words: []uint16{1, 0xFFFF, 16, 0x2AAA, EndMarker}}
	if _, err := DecodeRequest(req); err == nil {
		t.Error("request attribute ID 0xFFFF must be rejected")
	}
	// Supplemental with the reserved attribute ID 0xFFFF.
	supp := &Image{Words: []uint16{0xFFFF, 0, 1, 9, EndMarker}}
	if _, err := DecodeSupplemental(supp); err == nil {
		t.Error("supplemental attribute ID 0xFFFF must be rejected")
	}
	// Tree with reserved type / impl / attr IDs.
	if _, err := DecodeTree(&Image{Words: []uint16{0xFFFF, 2, EndMarker}}); err == nil {
		t.Error("tree type ID 0xFFFF must be rejected")
	}
	if _, err := DecodeTree(&Image{Words: []uint16{1, 3, EndMarker, 0xFFFF, 6, EndMarker, EndMarker}}); err == nil {
		t.Error("tree impl ID 0xFFFF must be rejected")
	}
	if _, err := DecodeTree(&Image{Words: []uint16{1, 3, EndMarker, 5, 6, EndMarker, 0xFFFF, 7, EndMarker}}); err == nil {
		t.Error("tree attribute ID 0xFFFF must be rejected")
	}
}

// TestDecodeRequiresExplicitTerminator pins the truncation contract:
// images that simply run out of words where the terminator belongs must
// fail to decode, even though Image.At would read the missing word as
// 0x0000 off the zero-padded bus. Untrusted input via FromBytes relies
// on this failing loudly.
func TestDecodeRequiresExplicitTerminator(t *testing.T) {
	// Complete constraint block, missing trailing EndMarker.
	req := &Image{Words: []uint16{1, 4, 16, 0x2AAA}}
	if _, err := DecodeRequest(req); err == nil {
		t.Error("request image without terminator must error")
	}
	// Complete supplemental block, missing trailing EndMarker.
	supp := &Image{Words: []uint16{4, 0, 1, 9}}
	if _, err := DecodeSupplemental(supp); err == nil {
		t.Error("supplemental image without terminator must error")
	}
	// Empty supplemental image: not even the terminator.
	if _, err := DecodeSupplemental(&Image{}); err == nil {
		t.Error("empty supplemental image must error")
	}
	// Tree whose attribute list runs off the end without terminating.
	tree := &Image{Words: []uint16{1, 3, EndMarker, 5, 6, EndMarker, 2, 7}}
	if _, err := DecodeTree(tree); err == nil {
		t.Error("tree image without attr-list terminator must error")
	}
	// The truncation must be detected via serialized round trips too:
	// chop the last word (the terminator) off a valid request image.
	im, err := EncodeRequest(casebase.PaperRequest())
	if err != nil {
		t.Fatal(err)
	}
	chopped, err := FromBytes(im.Bytes()[:len(im.Bytes())-2])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeRequest(chopped); err == nil {
		t.Error("request truncated through FromBytes must error")
	}
}

// TestTreeRoundTripProperty: for arbitrary generated case-base shapes,
// Encode∘Decode is the identity on the hierarchy.
func TestTreeRoundTripProperty(t *testing.T) {
	f := func(seed int64, t8, i8, a8 uint8) bool {
		spec := workload.CaseBaseSpec{
			Types:        1 + int(t8%6),
			ImplsPerType: 1 + int(i8%8),
			AttrsPerImpl: 1 + int(a8%8),
			AttrUniverse: 10,
			Seed:         seed,
		}
		cb, _, err := workload.GenCaseBase(spec)
		if err != nil {
			return false
		}
		img, err := EncodeTree(cb)
		if err != nil {
			return false
		}
		dec, err := DecodeTree(img)
		if err != nil {
			return false
		}
		if len(dec) != cb.NumTypes() {
			return false
		}
		for _, dt := range dec {
			ft, ok := cb.Type(casebase.TypeID(dt.ID))
			if !ok || len(dt.Impls) != len(ft.Impls) {
				return false
			}
			for j, di := range dt.Impls {
				im := &ft.Impls[j]
				if di.ID != uint16(im.ID) || len(di.Attrs) != len(im.Attrs) {
					return false
				}
				for k, da := range di.Attrs {
					if da.ID != uint16(im.Attrs[k].ID) || da.Value != uint16(im.Attrs[k].Value) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestRequestRoundTripProperty mirrors the tree property for request
// images over random constraint sets.
func TestRequestRoundTripProperty(t *testing.T) {
	f := func(tid uint16, ids []uint16) bool {
		if tid == 0 || tid == 0xFFFF {
			tid = 1
		}
		seen := map[uint16]bool{}
		var cs []casebase.Constraint
		for _, id := range ids {
			if id == 0 || id == 0xFFFF || seen[id] {
				continue
			}
			seen[id] = true
			cs = append(cs, casebase.Constraint{
				ID: attr.ID(id), Value: attr.Value(id ^ 0x5A5A), Weight: 0.5,
			})
		}
		req := casebase.NewRequest(casebase.TypeID(tid), cs...).EqualWeights()
		img, err := EncodeRequest(req)
		if err != nil {
			return false
		}
		dec, err := DecodeRequest(img)
		if err != nil {
			return false
		}
		if dec.Type != uint16(req.Type) || len(dec.Constraints) != len(req.Constraints) {
			return false
		}
		for i, c := range req.Constraints {
			if dec.Constraints[i].ID != uint16(c.ID) || dec.Constraints[i].Value != uint16(c.Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
