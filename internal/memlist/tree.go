package memlist

import (
	"fmt"

	"qosalloc/internal/casebase"
)

// EncodeTree lays out the three-level implementation tree of fig. 5 as
// one linear block: the top-level function-type list at address 0,
// followed by the per-type implementation lists, followed by the
// per-implementation attribute lists. "All partial lists are generated at
// design time creating one big block of linear concatenated lists" (§4.1).
func EncodeTree(cb *casebase.CaseBase) (*Image, error) {
	types := cb.Types()

	// Pass 1: compute section addresses.
	level0Len := 2*len(types) + 1
	implListAddr := make([]int, len(types))
	a := level0Len
	for i := range types {
		implListAddr[i] = a
		a += 2*len(types[i].Impls) + 1
	}
	attrListAddr := make(map[[2]int]int) // (type idx, impl idx) → address
	for i := range types {
		for j := range types[i].Impls {
			attrListAddr[[2]int{i, j}] = a
			a += 2*len(types[i].Impls[j].Attrs) + 1
		}
	}
	total := a
	if total > 1<<16 {
		return nil, fmt.Errorf("memlist: tree needs %d words, exceeding the 16-bit address space", total)
	}

	// Pass 2: emit.
	im := &Image{Words: make([]uint16, 0, total)}
	for i := range types {
		im.Words = append(im.Words, uint16(types[i].ID), uint16(implListAddr[i]))
	}
	im.Words = append(im.Words, EndMarker)
	for i := range types {
		for j := range types[i].Impls {
			im.Words = append(im.Words,
				uint16(types[i].Impls[j].ID), uint16(attrListAddr[[2]int{i, j}]))
		}
		im.Words = append(im.Words, EndMarker)
	}
	for i := range types {
		for j := range types[i].Impls {
			for _, p := range types[i].Impls[j].Attrs {
				im.Words = append(im.Words, uint16(p.ID), uint16(p.Value))
			}
			im.Words = append(im.Words, EndMarker)
		}
	}
	if len(im.Words) != total {
		return nil, fmt.Errorf("memlist: internal error, emitted %d words, planned %d", len(im.Words), total)
	}
	return im, nil
}

// TreeWords predicts the tree image size in words from the case-base
// shape: per type 2 words + terminator at level 0 plus one terminator at
// the end of the type list; per implementation 2 words + its attribute
// list; per attribute 2 words. This closed form is checked against
// EncodeTree word-for-word in tests and drives the Table 3 experiment.
func TreeWords(types, implsPerType, attrsPerImpl int) int {
	level0 := 2*types + 1
	level1 := types * (2*implsPerType + 1)
	level2 := types * implsPerType * (2*attrsPerImpl + 1)
	return level0 + level1 + level2
}

// DecodedImpl is one implementation read back from a tree image.
type DecodedImpl struct {
	ID    uint16
	Attrs []DecodedAttr
}

// DecodedAttr is one attribute pair of a level-2 list.
type DecodedAttr struct {
	ID    uint16
	Value uint16
}

// DecodedType is one function type read back from a tree image.
type DecodedType struct {
	ID    uint16
	Impls []DecodedImpl
}

// DecodeTree parses a tree image back into its hierarchy, validating
// pointers and sort order. It is the verification inverse of EncodeTree
// and doubles as the reference reader for debugging hardware traces.
// Every local list must close with an explicit in-bounds EndMarker and
// every ID must lie in [1, 0xFFFE] — the domain EncodeTree emits — so a
// truncated or corrupt image never decodes by accident off the
// zero-padded bus semantics of Image.At.
func DecodeTree(im *Image) ([]DecodedType, error) {
	var out []DecodedType
	a := 0
	prevType := uint16(0)
	for {
		if a >= len(im.Words) {
			return nil, fmt.Errorf("memlist: type list missing terminator (ends at word %d)", a)
		}
		tid := im.Words[a]
		if tid == EndMarker {
			break
		}
		if tid == 0xFFFF {
			return nil, fmt.Errorf("memlist: reserved type ID 0xFFFF at word %d", a)
		}
		if a+1 >= len(im.Words) {
			return nil, fmt.Errorf("memlist: truncated type entry at word %d", a)
		}
		if tid <= prevType {
			return nil, fmt.Errorf("memlist: type IDs not ascending at word %d", a)
		}
		prevType = tid
		implPtr := int(im.Words[a+1])
		if implPtr <= a || implPtr >= len(im.Words) {
			return nil, fmt.Errorf("memlist: type %d has invalid impl pointer %d", tid, implPtr)
		}
		dt := DecodedType{ID: tid}
		b := implPtr
		prevImpl := uint16(0)
		for {
			if b >= len(im.Words) {
				return nil, fmt.Errorf("memlist: impl list missing terminator (ends at word %d)", b)
			}
			iid := im.Words[b]
			if iid == EndMarker {
				break
			}
			if iid == 0xFFFF {
				return nil, fmt.Errorf("memlist: reserved impl ID 0xFFFF at word %d", b)
			}
			if b+1 >= len(im.Words) {
				return nil, fmt.Errorf("memlist: truncated impl entry at word %d", b)
			}
			if iid <= prevImpl {
				return nil, fmt.Errorf("memlist: impl IDs not ascending at word %d", b)
			}
			prevImpl = iid
			attrPtr := int(im.Words[b+1])
			if attrPtr <= b || attrPtr >= len(im.Words) {
				return nil, fmt.Errorf("memlist: impl %d has invalid attr pointer %d", iid, attrPtr)
			}
			di := DecodedImpl{ID: iid}
			c := attrPtr
			prevAttr := uint16(0)
			for {
				if c >= len(im.Words) {
					return nil, fmt.Errorf("memlist: attr list missing terminator (ends at word %d)", c)
				}
				aid := im.Words[c]
				if aid == EndMarker {
					break
				}
				if aid == 0xFFFF {
					return nil, fmt.Errorf("memlist: reserved attribute ID 0xFFFF at word %d", c)
				}
				if c+1 >= len(im.Words) {
					return nil, fmt.Errorf("memlist: truncated attr entry at word %d", c)
				}
				if aid <= prevAttr {
					return nil, fmt.Errorf("memlist: attr IDs not ascending at word %d", c)
				}
				prevAttr = aid
				di.Attrs = append(di.Attrs, DecodedAttr{ID: aid, Value: im.Words[c+1]})
				c += 2
			}
			dt.Impls = append(dt.Impls, di)
			b += 2
		}
		out = append(out, dt)
		a += 2
	}
	return out, nil
}

// MemoryReport summarizes a complete retrieval-unit memory configuration,
// the quantities Table 3 reports.
type MemoryReport struct {
	TreeWords         int
	TreeBytes         int
	SupplementalWords int
	SupplementalBytes int
	RequestWords      int
	RequestBytes      int
}

// Report computes the Table 3 memory figures for a capacity of the given
// shape (types × implsPerType × attrsPerImpl, requests with reqAttrs
// constraints, attrUniverse distinct attribute types in the supplemental
// list).
func Report(types, implsPerType, attrsPerImpl, reqAttrs, attrUniverse int) MemoryReport {
	tw := TreeWords(types, implsPerType, attrsPerImpl)
	sw := SupplementalWords(attrUniverse)
	rw := RequestWords(reqAttrs)
	return MemoryReport{
		TreeWords: tw, TreeBytes: 2 * tw,
		SupplementalWords: sw, SupplementalBytes: 2 * sw,
		RequestWords: rw, RequestBytes: 2 * rw,
	}
}
