package memlist

import (
	"testing"

	"qosalloc/internal/workload"
)

// FuzzDecodeCompact asserts the compacted decoder's contract on
// arbitrary bytes, mirroring wire.FuzzDecodeAllocRequest: it either
// returns a fully validated CompactCaseBase or an error — never a
// panic, never a half-validated structure. Because DecodeCompact is
// exact-length and re-encoding is deterministic, every accepted input
// must also re-encode to byte-identical output (decode∘encode = id on
// the accepted set).
func FuzzDecodeCompact(f *testing.F) {
	// Seed with a real encoded case base plus each rejection corner.
	cb, _, err := workload.GenCaseBase(workload.CaseBaseSpec{
		Types: 3, ImplsPerType: 2, AttrsPerImpl: 3, AttrUniverse: 5, Seed: 7,
	})
	if err != nil {
		f.Fatal(err)
	}
	cc, err := CompactFromCaseBase(cb)
	if err != nil {
		f.Fatal(err)
	}
	im, err := cc.EncodeCompact()
	if err != nil {
		f.Fatal(err)
	}
	good := im.Bytes()
	f.Add(good)
	f.Add(good[:len(good)-2])            // truncated terminator
	f.Add(append([]byte(nil), good...)[:8]) // header only
	f.Add([]byte{})
	f.Add([]byte{0x16, 0xCB})            // magic alone
	f.Add([]byte{0x16, 0xCB, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	mutated := append([]byte(nil), good...)
	mutated[12] = 0xFF
	mutated[13] = 0xFF
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, b []byte) {
		img, err := FromBytes(b)
		if err != nil {
			return // odd byte count, not a decoder concern
		}
		dec, err := DecodeCompact(img)
		if err != nil {
			if dec != nil {
				t.Fatalf("returned both a structure and an error: %v", err)
			}
			return
		}
		re, err := dec.EncodeCompact()
		if err != nil {
			t.Fatalf("accepted structure fails to re-encode: %v", err)
		}
		if len(re.Words) != len(img.Words) {
			t.Fatalf("re-encoded to %d words from %d", len(re.Words), len(img.Words))
		}
		for i := range re.Words {
			if re.Words[i] != img.Words[i] {
				t.Fatalf("re-encoded word %d = %#04x, input %#04x", i, re.Words[i], img.Words[i])
			}
		}
	})
}
