package memlist

// Block-compacted case-base representation, the §5 "compacted attribute
// block representation" the paper projects would roughly double
// retrieval speed. Where the fig. 4/5 layout chains (ID, value) entry
// pairs and reference pointers through linear lists — one 16-bit word
// per fetch, one NULL entry per local list — the compacted layout is a
// structure of arrays: every ID stream, value stream and offset table
// is a densely packed 16-bit block, and per-type/per-impl *extents*
// (half-open index ranges into the next level's block) replace the
// pointer-chased sub-lists. A scan never dereferences a pointer and
// never steps over interleaved non-key words, so the software kernel
// streams IDs at one comparison per word and the dual-port hardware
// fetch picks up entry pairs in a single cycle.
//
// Flat word image (all 16-bit words, serialized like every other
// Image):
//
//	header:  [ magic, version, #types, #impls, #pairs, #supp ]
//	types:   TypeIDs  [#types]        ascending IDs
//	         ImplOff  [#types+1]      extents into ImplIDs
//	impls:   ImplIDs  [#impls]        ascending per type extent
//	         AttrOff  [#impls+1]      extents into AttrIDs/AttrVals
//	attrs:   AttrIDs  [#pairs]        ascending per impl extent
//	         AttrVals [#pairs]
//	supp:    SuppIDs  [#supp]         ascending
//	         SuppLo   [#supp]
//	         SuppHi   [#supp]
//	         SuppRecip[#supp]         UQ16 reciprocals of (1+dmax)
//	footer:  [ EndMarker ]
//
// The trailing EndMarker is explicit and must be the image's final
// word: DecodeCompact rejects truncated or padded images, exactly like
// the (post-bugfix) fig. 4/5 decoders.

import (
	"fmt"

	"qosalloc/internal/casebase"
	"qosalloc/internal/fixed"
)

const (
	// CompactMagic marks a compacted case-base image ("CB" over a
	// 16-bit bus).
	CompactMagic uint16 = 0xCB16
	// CompactVersion is the current layout version.
	CompactVersion uint16 = 1
	// compactHeaderWords is the fixed header size.
	compactHeaderWords = 6
)

// CompactCaseBase is the decoded structure-of-arrays view of a
// block-compacted case base: the implementation tree and the attribute-
// supplemental table in one representation, extents instead of
// pointers. All slices are index-aligned as documented on each field;
// callers must treat them as immutable.
type CompactCaseBase struct {
	// TypeIDs lists the function type IDs in ascending order.
	TypeIDs []uint16
	// ImplOff has len(TypeIDs)+1 entries; the implementations of
	// TypeIDs[t] occupy ImplIDs[ImplOff[t]:ImplOff[t+1]].
	ImplOff []uint16
	// ImplIDs lists implementation IDs, ascending within each type
	// extent.
	ImplIDs []uint16
	// AttrOff has len(ImplIDs)+1 entries; the attribute pairs of
	// ImplIDs[i] occupy AttrIDs/AttrVals[AttrOff[i]:AttrOff[i+1]].
	AttrOff []uint16
	// AttrIDs and AttrVals are the packed attribute blocks, IDs
	// ascending within each implementation extent.
	AttrIDs  []uint16
	AttrVals []uint16
	// SuppIDs/SuppLo/SuppHi/SuppRecip are the supplemental table as
	// four parallel arrays, IDs ascending.
	SuppIDs   []uint16
	SuppLo    []uint16
	SuppHi    []uint16
	SuppRecip []uint16
}

// NumTypes returns the number of function types.
func (cc *CompactCaseBase) NumTypes() int { return len(cc.TypeIDs) }

// NumImpls returns the total number of implementation variants.
func (cc *CompactCaseBase) NumImpls() int { return len(cc.ImplIDs) }

// NumPairs returns the total number of packed attribute pairs.
func (cc *CompactCaseBase) NumPairs() int { return len(cc.AttrIDs) }

// Words returns the flat-image word count of the compacted layout.
func (cc *CompactCaseBase) Words() int {
	return CompactWordsShape(len(cc.TypeIDs), len(cc.ImplIDs), len(cc.AttrIDs), len(cc.SuppIDs))
}

// CompactWordsShape returns the flat-image word count for a compacted
// case base with the given section sizes: header + types + extents +
// impls + extents + 2·pairs + 4·supp + terminator.
func CompactWordsShape(types, impls, pairs, supp int) int {
	return compactHeaderWords + types + (types + 1) + impls + (impls + 1) + 2*pairs + 4*supp + 1
}

// CompactWords returns the word count for the regular shape Table 3
// prices: types × implsPerType × attrsPerImpl with attrUniverse
// supplemental entries. Compare TreeWords + SupplementalWords for the
// uncompacted footprint of the same shape.
func CompactWords(types, implsPerType, attrsPerImpl, attrUniverse int) int {
	return CompactWordsShape(types, types*implsPerType, types*implsPerType*attrsPerImpl, attrUniverse)
}

// CompactFromCaseBase builds the compacted representation directly from
// a validated case base and its registry — the design-time path a list
// generator would take.
func CompactFromCaseBase(cb *casebase.CaseBase) (*CompactCaseBase, error) {
	cc := &CompactCaseBase{}
	for _, ft := range cb.Types() {
		cc.TypeIDs = append(cc.TypeIDs, uint16(ft.ID))
		cc.ImplOff = append(cc.ImplOff, uint16(len(cc.ImplIDs)))
		for i := range ft.Impls {
			im := &ft.Impls[i]
			cc.ImplIDs = append(cc.ImplIDs, uint16(im.ID))
			cc.AttrOff = append(cc.AttrOff, uint16(len(cc.AttrIDs)))
			for _, p := range im.Attrs {
				cc.AttrIDs = append(cc.AttrIDs, uint16(p.ID))
				cc.AttrVals = append(cc.AttrVals, uint16(p.Value))
			}
		}
	}
	cc.ImplOff = append(cc.ImplOff, uint16(len(cc.ImplIDs)))
	cc.AttrOff = append(cc.AttrOff, uint16(len(cc.AttrIDs)))
	reg := cb.Registry()
	for _, id := range reg.IDs() {
		d, _ := reg.Lookup(id)
		cc.SuppIDs = append(cc.SuppIDs, uint16(id))
		cc.SuppLo = append(cc.SuppLo, uint16(d.Lo))
		cc.SuppHi = append(cc.SuppHi, uint16(d.Hi))
		cc.SuppRecip = append(cc.SuppRecip, uint16(fixed.Recip(d.DMax())))
	}
	if err := cc.check(); err != nil {
		return nil, err
	}
	return cc, nil
}

// CompactFromImages re-encodes validated fig. 4/5 images into the
// compacted representation — the migration path for memory images that
// exist only in their uncompacted serialized form. The inputs pass
// through the strict DecodeTree/DecodeSupplemental validation first, so
// a compacted image can never be built from words the linear-list
// encoders could not have emitted.
func CompactFromImages(tree, supp *Image) (*CompactCaseBase, error) {
	types, err := DecodeTree(tree)
	if err != nil {
		return nil, fmt.Errorf("memlist: compacting tree image: %w", err)
	}
	entries, err := DecodeSupplemental(supp)
	if err != nil {
		return nil, fmt.Errorf("memlist: compacting supplemental image: %w", err)
	}
	cc := &CompactCaseBase{}
	for _, dt := range types {
		cc.TypeIDs = append(cc.TypeIDs, dt.ID)
		cc.ImplOff = append(cc.ImplOff, uint16(len(cc.ImplIDs)))
		for _, di := range dt.Impls {
			cc.ImplIDs = append(cc.ImplIDs, di.ID)
			cc.AttrOff = append(cc.AttrOff, uint16(len(cc.AttrIDs)))
			for _, da := range di.Attrs {
				cc.AttrIDs = append(cc.AttrIDs, da.ID)
				cc.AttrVals = append(cc.AttrVals, da.Value)
			}
		}
	}
	cc.ImplOff = append(cc.ImplOff, uint16(len(cc.ImplIDs)))
	cc.AttrOff = append(cc.AttrOff, uint16(len(cc.AttrIDs)))
	for _, e := range entries {
		cc.SuppIDs = append(cc.SuppIDs, e.ID)
		cc.SuppLo = append(cc.SuppLo, e.Lo)
		cc.SuppHi = append(cc.SuppHi, e.Hi)
		cc.SuppRecip = append(cc.SuppRecip, uint16(e.Recip))
	}
	if err := cc.check(); err != nil {
		return nil, err
	}
	return cc, nil
}

// check validates the structural invariants shared by the builders and
// the decoder: section sizes within the 16-bit address space, extents
// monotone and closed, IDs inside [1, 0xFFFE] and ascending within
// their scope.
func (cc *CompactCaseBase) check() error {
	nT, nI, nP, nS := len(cc.TypeIDs), len(cc.ImplIDs), len(cc.AttrIDs), len(cc.SuppIDs)
	if nT > 0xFFFF || nI > 0xFFFF || nP > 0xFFFF || nS > 0xFFFF {
		return fmt.Errorf("memlist: compact section exceeds 16-bit count (types=%d impls=%d pairs=%d supp=%d)", nT, nI, nP, nS)
	}
	if total := cc.Words(); total > 1<<16 {
		return fmt.Errorf("memlist: compact image needs %d words, exceeding the 16-bit address space", total)
	}
	if len(cc.ImplOff) != nT+1 || len(cc.AttrOff) != nI+1 {
		return fmt.Errorf("memlist: compact extents malformed (|ImplOff|=%d for %d types, |AttrOff|=%d for %d impls)",
			len(cc.ImplOff), nT, len(cc.AttrOff), nI)
	}
	if len(cc.AttrVals) != nP {
		return fmt.Errorf("memlist: compact attr streams misaligned (%d IDs, %d values)", nP, len(cc.AttrVals))
	}
	if len(cc.SuppLo) != nS || len(cc.SuppHi) != nS || len(cc.SuppRecip) != nS {
		return fmt.Errorf("memlist: compact supplemental streams misaligned")
	}
	if err := checkExtents(cc.ImplOff, nI, "impl"); err != nil {
		return err
	}
	if err := checkExtents(cc.AttrOff, nP, "attr"); err != nil {
		return err
	}
	if err := checkIDStream(cc.TypeIDs, "type"); err != nil {
		return err
	}
	for t := 0; t < nT; t++ {
		if err := checkIDStream(cc.ImplIDs[cc.ImplOff[t]:cc.ImplOff[t+1]], "impl"); err != nil {
			return fmt.Errorf("%w (type %d)", err, cc.TypeIDs[t])
		}
	}
	for i := 0; i < nI; i++ {
		if err := checkIDStream(cc.AttrIDs[cc.AttrOff[i]:cc.AttrOff[i+1]], "attribute"); err != nil {
			return fmt.Errorf("%w (impl %d)", err, cc.ImplIDs[i])
		}
	}
	if err := checkIDStream(cc.SuppIDs, "supplemental"); err != nil {
		return err
	}
	return nil
}

// checkExtents validates an offset table: first 0, last equal to the
// target section length, never decreasing.
func checkExtents(off []uint16, end int, kind string) error {
	if off[0] != 0 {
		return fmt.Errorf("memlist: %s extents start at %d, want 0", kind, off[0])
	}
	if int(off[len(off)-1]) != end {
		return fmt.Errorf("memlist: %s extents close at %d, want %d", kind, off[len(off)-1], end)
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			return fmt.Errorf("memlist: %s extents decrease at %d", kind, i)
		}
	}
	return nil
}

// checkIDStream validates one ID scope: [1, 0xFFFE], strictly
// ascending.
func checkIDStream(ids []uint16, kind string) error {
	prev := uint16(0)
	for _, id := range ids {
		if id == 0 || id == 0xFFFF {
			return fmt.Errorf("memlist: reserved %s ID %d in compact image", kind, id)
		}
		if id <= prev {
			return fmt.Errorf("memlist: %s IDs not ascending in compact image", kind)
		}
		prev = id
	}
	return nil
}

// EncodeCompact serializes the compacted case base into its flat word
// image.
func (cc *CompactCaseBase) EncodeCompact() (*Image, error) {
	if err := cc.check(); err != nil {
		return nil, err
	}
	im := &Image{Words: make([]uint16, 0, cc.Words())}
	im.Words = append(im.Words, CompactMagic, CompactVersion,
		uint16(len(cc.TypeIDs)), uint16(len(cc.ImplIDs)), uint16(len(cc.AttrIDs)), uint16(len(cc.SuppIDs)))
	im.Words = append(im.Words, cc.TypeIDs...)
	im.Words = append(im.Words, cc.ImplOff...)
	im.Words = append(im.Words, cc.ImplIDs...)
	im.Words = append(im.Words, cc.AttrOff...)
	im.Words = append(im.Words, cc.AttrIDs...)
	im.Words = append(im.Words, cc.AttrVals...)
	im.Words = append(im.Words, cc.SuppIDs...)
	im.Words = append(im.Words, cc.SuppLo...)
	im.Words = append(im.Words, cc.SuppHi...)
	im.Words = append(im.Words, cc.SuppRecip...)
	im.Words = append(im.Words, EndMarker)
	if len(im.Words) != cc.Words() {
		return nil, fmt.Errorf("memlist: internal error, emitted %d compact words, planned %d", len(im.Words), cc.Words())
	}
	return im, nil
}

// DecodeCompact parses and validates a compacted image. It applies the
// same strictness as the fig. 4/5 decoders — reserved IDs rejected,
// explicit terminator required — plus the layout's own invariants:
// magic/version, section sizes that sum exactly to the image length,
// monotone closed extents. The returned view copies nothing back into
// the image; mutating the image after a successful decode is undefined.
func DecodeCompact(im *Image) (*CompactCaseBase, error) {
	if len(im.Words) < compactHeaderWords+1 {
		return nil, fmt.Errorf("memlist: compact image too short (%d words)", len(im.Words))
	}
	if im.Words[0] != CompactMagic {
		return nil, fmt.Errorf("memlist: compact magic %#04x, want %#04x", im.Words[0], CompactMagic)
	}
	if im.Words[1] != CompactVersion {
		return nil, fmt.Errorf("memlist: compact version %d, want %d", im.Words[1], CompactVersion)
	}
	nT, nI, nP, nS := int(im.Words[2]), int(im.Words[3]), int(im.Words[4]), int(im.Words[5])
	want := CompactWordsShape(nT, nI, nP, nS)
	if len(im.Words) != want {
		return nil, fmt.Errorf("memlist: compact image is %d words, header shape needs %d", len(im.Words), want)
	}
	if im.Words[len(im.Words)-1] != EndMarker {
		return nil, fmt.Errorf("memlist: compact image missing terminator")
	}
	a := compactHeaderWords
	section := func(n int) []uint16 {
		s := im.Words[a : a+n]
		a += n
		return s
	}
	cc := &CompactCaseBase{
		TypeIDs: section(nT),
		ImplOff: section(nT + 1),
		ImplIDs: section(nI),
		AttrOff: section(nI + 1),
		AttrIDs: section(nP),
	}
	cc.AttrVals = section(nP)
	cc.SuppIDs = section(nS)
	cc.SuppLo = section(nS)
	cc.SuppHi = section(nS)
	cc.SuppRecip = section(nS)
	if err := cc.check(); err != nil {
		return nil, err
	}
	return cc, nil
}

// CompactMemoryReport extends the Table 3 memory accounting with the
// compacted layout: the uncompacted tree+supplemental words, their
// compacted equivalent, and the saving.
type CompactMemoryReport struct {
	UncompactedWords int // TreeWords + SupplementalWords
	CompactWords     int // flat compacted image
	SavedWords       int
	SavedFraction    float64
}

// CompactReport prices the compacted layout against the uncompacted
// fig. 4/5 layout for a regular shape (types × implsPerType ×
// attrsPerImpl, attrUniverse supplemental entries) — the Table 3 delta.
func CompactReport(types, implsPerType, attrsPerImpl, attrUniverse int) CompactMemoryReport {
	un := TreeWords(types, implsPerType, attrsPerImpl) + SupplementalWords(attrUniverse)
	co := CompactWords(types, implsPerType, attrsPerImpl, attrUniverse)
	r := CompactMemoryReport{UncompactedWords: un, CompactWords: co, SavedWords: un - co}
	if un > 0 {
		r.SavedFraction = float64(un-co) / float64(un)
	}
	return r
}
