// Package memlist implements the linear-list memory representation of the
// paper's §4.1: "We decided to use linear lists which can be connected by
// reference pointers for creating complex tree structures. Each list
// contains several entries like IDs, values, pointers and is terminated
// by a dedicated NULL-entry. These lists can be easily mapped on linear
// organized RAM-blocks if all list elements use the same word length per
// entry (e.g. 16 or 32 bits)."
//
// Three images are defined, all streams of 16-bit words:
//
//	Request list (fig. 4 left):
//	    [ function type ID,
//	      { attribute ID, attribute value, attribute weight (Q15) }*,
//	      0 ]
//	Attribute-supplemental list (fig. 4 right):
//	    [ { attribute ID, lower bound, upper bound, maxrange-1 }*, 0 ]
//	    where maxrange-1 is the UQ16 reciprocal of (1+dmax), the
//	    pre-computed constant that lets the datapath multiply instead
//	    of divide.
//	Implementation tree (fig. 5), three concatenated levels:
//	    level 0:  [ { function type ID, pointer→impl list }*, 0 ]
//	    level 1:  per type: [ { impl ID, pointer→attr list }*, 0 ]
//	    level 2:  per impl: [ { attribute ID, attribute value }*, 0 ]
//	Pointers are absolute word addresses inside the tree image. All
//	attribute blocks are pre-sorted by ascending ID so the retrieval
//	scan never restarts from a list head (§4.1).
//
// The NULL terminator is the word 0x0000; IDs are defined on [1, 0xFFFE],
// and terminator checks happen only at block boundaries, so value or
// weight words that happen to be zero cannot truncate a list.
package memlist

import (
	"encoding/binary"
	"fmt"

	"qosalloc/internal/attr"
	"qosalloc/internal/casebase"
	"qosalloc/internal/fixed"
)

// EndMarker is the dedicated NULL entry terminating every local list.
const EndMarker uint16 = 0

// Image is a linear block of 16-bit words, the software stand-in for a
// BRAM content initialization.
type Image struct {
	Words []uint16
}

// Size returns the image size in bytes (16-bit words, Table 3 counts
// "16 bit-words each entry/pointer").
func (im *Image) Size() int { return 2 * len(im.Words) }

// At returns the word at address a, mimicking a synchronous RAM read.
// Out-of-range reads return the EndMarker, as an unconnected data bus
// would read on a zero-initialized BRAM.
func (im *Image) At(a int) uint16 {
	if a < 0 || a >= len(im.Words) {
		return EndMarker
	}
	return im.Words[a]
}

// Bytes serializes the image little-endian, two bytes per word.
func (im *Image) Bytes() []byte {
	b := make([]byte, 2*len(im.Words))
	for i, w := range im.Words {
		binary.LittleEndian.PutUint16(b[2*i:], w)
	}
	return b
}

// FromBytes rebuilds an image from its little-endian serialization.
func FromBytes(b []byte) (*Image, error) {
	if len(b)%2 != 0 {
		return nil, fmt.Errorf("memlist: odd byte count %d", len(b))
	}
	im := &Image{Words: make([]uint16, len(b)/2)}
	for i := range im.Words {
		im.Words[i] = binary.LittleEndian.Uint16(b[2*i:])
	}
	return im, nil
}

// EncodeRequest lays out a request list (fig. 4 left). Weights are
// converted to Q15 with the same policy as the fixed-point engine.
func EncodeRequest(req casebase.Request) (*Image, error) {
	if req.Type == 0 || uint16(req.Type) == 0xFFFF {
		return nil, fmt.Errorf("memlist: reserved function type ID %d", req.Type)
	}
	ws := make([]float64, len(req.Constraints))
	for i, c := range req.Constraints {
		ws[i] = c.Weight
	}
	q := fixed.WeightsQ15(ws)
	im := &Image{Words: make([]uint16, 0, 2+3*len(req.Constraints))}
	im.Words = append(im.Words, uint16(req.Type))
	prev := attr.ID(0)
	for i, c := range req.Constraints {
		if c.ID == 0 || c.ID == 0xFFFF {
			return nil, fmt.Errorf("memlist: reserved attribute ID %d", c.ID)
		}
		if c.ID <= prev {
			return nil, fmt.Errorf("memlist: request constraints not strictly ascending at %d", c.ID)
		}
		prev = c.ID
		im.Words = append(im.Words, uint16(c.ID), uint16(c.Value), uint16(q[i]))
	}
	im.Words = append(im.Words, EndMarker)
	return im, nil
}

// RequestWords returns the word count of a request list with n
// constraints: type + 3n + terminator. Table 3's "memory consumption of
// request: 64 Bytes" is RequestWords(10) × 2 = 64.
func RequestWords(n int) int { return 1 + 3*n + 1 }

// DecodedConstraint is one request-list block read back from an image.
type DecodedConstraint struct {
	ID     uint16
	Value  uint16
	Weight fixed.Q15
}

// DecodedRequest is a request list read back from an image.
type DecodedRequest struct {
	Type        uint16
	Constraints []DecodedConstraint
}

// DecodeRequest parses a request image, validating layout invariants.
// It enforces exactly the domain EncodeRequest emits: attribute IDs in
// [1, 0xFFFE] (0xFFFF is reserved, 0 is the terminator), strictly
// ascending blocks, and an explicit in-bounds EndMarker — a truncated
// image (e.g. untrusted bytes via FromBytes) fails loudly instead of
// decoding "successfully" off the zero-padded bus that Image.At models.
func DecodeRequest(im *Image) (DecodedRequest, error) {
	var out DecodedRequest
	if len(im.Words) < 2 {
		return out, fmt.Errorf("memlist: request image too short (%d words)", len(im.Words))
	}
	out.Type = im.Words[0]
	if out.Type == 0 || out.Type == 0xFFFF {
		return out, fmt.Errorf("memlist: invalid function type %d", out.Type)
	}
	a := 1
	prev := uint16(0)
	for {
		if a >= len(im.Words) {
			return out, fmt.Errorf("memlist: request image missing terminator (ends at word %d)", a)
		}
		id := im.Words[a]
		if id == EndMarker {
			break
		}
		if id == 0xFFFF {
			return out, fmt.Errorf("memlist: reserved attribute ID 0xFFFF at word %d", a)
		}
		if a+2 >= len(im.Words) {
			return out, fmt.Errorf("memlist: truncated constraint block at word %d", a)
		}
		if id <= prev {
			return out, fmt.Errorf("memlist: constraint IDs not ascending at word %d", a)
		}
		prev = id
		out.Constraints = append(out.Constraints, DecodedConstraint{
			ID: id, Value: im.Words[a+1], Weight: fixed.Q15(im.Words[a+2]),
		})
		a += 3
	}
	return out, nil
}

// EncodeSupplemental lays out the attribute-supplemental list (fig. 4
// right) from a registry: per attribute type its ID, design-global
// bounds and the pre-computed reciprocal of (1+dmax).
func EncodeSupplemental(reg *attr.Registry) *Image {
	ids := reg.IDs()
	im := &Image{Words: make([]uint16, 0, 4*len(ids)+1)}
	for _, id := range ids {
		d, _ := reg.Lookup(id)
		im.Words = append(im.Words,
			uint16(id), uint16(d.Lo), uint16(d.Hi), uint16(fixed.Recip(d.DMax())))
	}
	im.Words = append(im.Words, EndMarker)
	return im
}

// SupplementalWords returns the word count for n attribute types.
func SupplementalWords(n int) int { return 4*n + 1 }

// SupplementalEntry is one block of the supplemental list.
type SupplementalEntry struct {
	ID     uint16
	Lo, Hi uint16
	Recip  fixed.UQ16
}

// DecodeSupplemental parses a supplemental image. Like DecodeRequest it
// enforces the encoder's domain: IDs in [1, 0xFFFE], strictly ascending
// blocks, and an explicit in-bounds EndMarker.
func DecodeSupplemental(im *Image) ([]SupplementalEntry, error) {
	var out []SupplementalEntry
	a := 0
	prev := uint16(0)
	for {
		if a >= len(im.Words) {
			return nil, fmt.Errorf("memlist: supplemental image missing terminator (ends at word %d)", a)
		}
		id := im.Words[a]
		if id == EndMarker {
			break
		}
		if id == 0xFFFF {
			return nil, fmt.Errorf("memlist: reserved attribute ID 0xFFFF at word %d", a)
		}
		if a+3 >= len(im.Words) {
			return nil, fmt.Errorf("memlist: truncated supplemental block at word %d", a)
		}
		if id <= prev {
			return nil, fmt.Errorf("memlist: supplemental IDs not ascending at word %d", a)
		}
		prev = id
		out = append(out, SupplementalEntry{
			ID: id, Lo: im.Words[a+1], Hi: im.Words[a+2], Recip: fixed.UQ16(im.Words[a+3]),
		})
		a += 4
	}
	return out, nil
}
