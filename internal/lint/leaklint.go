package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// leaklint polices goroutine lifecycles in the deterministic packages
// and the qosd daemon: the places where drain/Close correctness depends
// on knowing every goroutine will stop. A `go` statement there must be
// tied to a tracked lifecycle, meaning at least one of:
//
//   - a sync.WaitGroup.Add call earlier in the same function (the
//     wg.Add(1); go ... idiom — Close can Wait for it),
//   - the goroutine body consults a context.Context (cancellation
//     reaches it),
//   - the goroutine body blocks on a channel receive, select, or
//     range-over-channel (a close can signal it),
//   - the goroutine body calls WaitGroup.Done or WaitGroup.Wait.
//
// For `go f(...)` where f is declared in the same package, f's body is
// inspected directly. For a callee outside the package the arguments
// stand in for the body: passing a context.Context or a channel is
// taken as wiring up a lifecycle; passing neither is a leak.
//
// Everything else — a bare `go func() { ... }()` with no signal in
// scope — is exactly the shape drain bugs are made of: the goroutine
// outlives Close, and the leak is invisible until a test hangs.
var LeakLint = &Analyzer{
	Name: "leaklint",
	Doc: "require goroutines in deterministic packages and cmd/qosd to be tied to a " +
		"tracked lifecycle (WaitGroup.Add, consulted context, or channel signal)",
	Run: runLeakLint,
}

// leakPoliced reports whether pkg is in the goroutine-discipline set:
// the deterministic packages plus the qosd daemon (package main, so
// matched by import path).
func leakPoliced(pkg *types.Package) bool {
	if deterministicPkgs[pkg.Name()] {
		return true
	}
	return strings.HasSuffix(pkg.Path(), "/qosd") || pkg.Path() == "qosd"
}

func runLeakLint(pass *Pass) {
	if !leakPoliced(pass.Pkg) {
		return
	}
	info := pass.TypesInfo

	// Same-package function bodies, for `go f(...)` with a named callee.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, isFunc := decl.(*ast.FuncDecl); isFunc && fd.Body != nil {
				if fn, isFn := info.Defs[fd.Name].(*types.Func); isFn {
					decls[fn] = fd
				}
			}
		}
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if !isFunc || fd.Body == nil {
				continue
			}
			// Positions of WaitGroup.Add calls in this function: a go
			// statement after one is accounted for.
			var addPos []token.Pos
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, isCall := n.(*ast.CallExpr); isCall && isWaitGroupMethod(info, call, "Add") {
					addPos = append(addPos, call.Pos())
				}
				return true
			})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, isGo := n.(*ast.GoStmt)
				if !isGo {
					return true
				}
				for _, p := range addPos {
					if p < gs.Pos() {
						return true
					}
				}
				if goStmtTracked(info, gs, decls) {
					return true
				}
				pass.Reportf(gs.Pos(), "goroutine is not tied to a tracked lifecycle "+
					"(WaitGroup.Add before the go statement, a consulted context.Context, or a channel signal)")
				return true
			})
		}
	}
}

// goStmtTracked reports whether the goroutine launched by gs has a
// visible lifecycle signal.
func goStmtTracked(info *types.Info, gs *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) bool {
	if lit, isLit := gs.Call.Fun.(*ast.FuncLit); isLit {
		return bodyTracked(info, lit.Body)
	}
	if callee := calleeFunc(info, gs.Call); callee != nil {
		if fd, samePkg := decls[callee]; samePkg {
			return bodyTracked(info, fd.Body)
		}
	}
	// Callee body out of reach: the arguments are the interface. A
	// context or channel handed in counts as a wired-up lifecycle.
	for _, arg := range gs.Call.Args {
		if t := typeOf(info, arg); t != nil {
			if isContextType(t) {
				return true
			}
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				return true
			}
		}
	}
	return false
}

// bodyTracked scans a goroutine body for a lifecycle signal.
func bodyTracked(info *types.Info, body *ast.BlockStmt) bool {
	tracked := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tracked {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				tracked = true // channel receive
			}
		case *ast.SelectStmt:
			tracked = true
		case *ast.RangeStmt:
			if t := typeOf(info, n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					tracked = true
				}
			}
		case *ast.CallExpr:
			if isWaitGroupMethod(info, n, "Done", "Wait") {
				tracked = true
			}
		case *ast.Ident:
			if t := typeOf(info, n); t != nil && isContextType(t) {
				tracked = true
			}
		}
		return !tracked
	})
	return tracked
}

// isWaitGroupMethod reports whether call invokes one of the named
// sync.WaitGroup methods.
func isWaitGroupMethod(info *types.Info, call *ast.CallExpr, names ...string) bool {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil || !namedFrom(sig.Recv().Type(), "sync", "WaitGroup") {
		return false
	}
	for _, name := range names {
		if fn.Name() == name {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return namedFrom(t, "context", "Context")
}
