package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// locklint machine-checks the deadlock discipline the serving core's
// correctness rests on. The lock hierarchy is declared once in source:
//
//	//qosvet:lockorder commitMu < learnStripe.mu < shard.mu < allocMu
//
// reads "commitMu is acquired before (outside of) the stripe mutexes,
// which come before the shard mutexes, which come before allocMu".
// Each token names a lock class by the trailing components of its key:
// a lock class is "pkg.Type.field" for a mutex struct field, "pkg.var"
// for a package-level mutex, or "pkg.Type" for a type that embeds its
// mutex. A token like "commitMu" matches any class whose final
// component is commitMu; "shard.mu" disambiguates mu fields by their
// owning type. The declared order travels as a package fact, so
// packages that import the declaring one inherit the hierarchy.
//
// On top of the order, locklint computes a per-function "locks
// acquired" summary — the set of lock classes a function may take,
// directly or through callees, propagated across package boundaries
// via LockSet object facts — and reports:
//
//	(a) acquiring a lock ranked earlier than one already held,
//	(b) calling a function whose summary acquires a lock ranked
//	    earlier than one already held (the cross-function, and with
//	    facts cross-package, half of the same deadlock),
//	(c) mutex-containing values copied: by-value parameters and
//	    receivers, plain value copies, and range-value copies,
//	(d) Unlock/RUnlock on a path where the lock is not held, and
//	    deferred unlocks in functions that never lock.
//
// Acquiring equally-ranked locks while holding one of the class is
// allowed: the stripe and shard sets are taken instance-wise in index
// order, a discipline ranks cannot express.
var LockLint = &Analyzer{
	Name: "locklint",
	Doc: "enforce the declared //qosvet:lockorder hierarchy across functions and packages, " +
		"flag mutex copies and unmatched unlocks",
	Run:       runLockLint,
	FactTypes: []Fact{&LockSet{}, &LockOrder{}},
}

// LockOrderDirective declares the lock hierarchy in source.
const LockOrderDirective = "//qosvet:lockorder"

// LockSet is the object fact on a function: the lock classes it may
// acquire, directly or transitively, sorted.
type LockSet struct {
	Acquires []string `json:"acquires"`
}

// AFact marks LockSet as a fact.
func (*LockSet) AFact() {}

// LockOrder is the package fact carrying the //qosvet:lockorder chains
// a package declares, in source order.
type LockOrder struct {
	Chains [][]string `json:"chains"`
}

// AFact marks LockOrder as a fact.
func (*LockOrder) AFact() {}

// --- Lock identification ------------------------------------------------

// lockRef identifies one mutex at a use site: a global class key when
// the mutex is a struct field, package variable or embedded mutex, or
// a local object identity otherwise.
type lockRef struct {
	class string       // "pkg.Type.field", "pkg.var", "pkg.Type"; "" for locals
	obj   types.Object // identity when class is ""
}

func (r lockRef) valid() bool { return r.class != "" || r.obj != nil }

// key returns the held-set key for r in the given mode. Read locks
// track separately so RUnlock must match RLock, not Lock.
func (r lockRef) key(read bool) string {
	k := r.class
	if k == "" {
		k = fmt.Sprintf("local:%s@%d", r.obj.Name(), r.obj.Pos())
	}
	if read {
		k += " [r]"
	}
	return k
}

// display is the name used in diagnostics: the class key without its
// package qualifier, or the local variable name.
func (r lockRef) display() string {
	if r.class == "" {
		return r.obj.Name()
	}
	if _, rest, ok := strings.Cut(r.class, "."); ok {
		return rest
	}
	return r.class
}

// lockOp classifies call as a sync.Mutex/sync.RWMutex method call and
// returns the resolved receiver plus the method name.
func lockOp(info *types.Info, call *ast.CallExpr) (ref lockRef, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return lockRef{}, "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return lockRef{}, "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil || !namedFrom(sig.Recv().Type(), "sync", "Mutex", "RWMutex") {
		return lockRef{}, "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
		return resolveLockExpr(info, sel.X), fn.Name(), true
	}
	return lockRef{}, "", false
}

// resolveLockExpr resolves the receiver expression of a mutex method to
// a lockRef. Index expressions resolve to their container's class: all
// elements of a mutex slice form one class, matching the instance-wise
// acquisition discipline.
func resolveLockExpr(info *types.Info, e ast.Expr) lockRef {
	switch x := ast.Unparen(e).(type) {
	case *ast.StarExpr:
		return resolveLockExpr(info, x.X)
	case *ast.IndexExpr:
		return resolveLockExpr(info, x.X)
	case *ast.SelectorExpr:
		v, isVar := info.Uses[x.Sel].(*types.Var)
		if !isVar {
			return lockRef{}
		}
		if v.IsField() {
			if owner := namedClassOf(info, x.X); owner != "" {
				return lockRef{class: owner + "." + x.Sel.Name}
			}
			return lockRef{obj: v}
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return lockRef{class: v.Pkg().Name() + "." + v.Name()}
		}
		return lockRef{obj: v}
	case *ast.Ident:
		v, isVar := info.Uses[x].(*types.Var)
		if !isVar {
			return lockRef{}
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return lockRef{class: v.Pkg().Name() + "." + v.Name()}
		}
		// A local whose named type embeds its mutex: the type is the
		// lock class. A plain local sync.Mutex keeps object identity.
		if cls := embeddedLockClass(v.Type()); cls != "" {
			return lockRef{class: cls}
		}
		return lockRef{obj: v}
	}
	return lockRef{}
}

// namedClassOf returns "pkg.TypeName" for the (possibly pointer) named
// type of e, or "".
func namedClassOf(info *types.Info, e ast.Expr) string {
	t := typeOf(info, e)
	if t == nil {
		return ""
	}
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Name() + "." + named.Obj().Name()
}

// embeddedLockClass returns "pkg.Type" when t is a named non-sync type
// (one that reaches a mutex method through embedding), else "".
func embeddedLockClass(t types.Type) string {
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return ""
	}
	if namedFrom(named, "sync", "Mutex", "RWMutex") {
		return ""
	}
	return named.Obj().Pkg().Name() + "." + named.Obj().Name()
}

// --- Rank table ---------------------------------------------------------

// lockRanks is the merged hierarchy: token → rank, lower rank = outer
// lock (acquired first).
type lockRanks struct {
	rank  map[string]int
	chain string // canonical rendering for diagnostics
}

// rankOf resolves a lock class against the declared tokens, preferring
// the most specific (longest) matching token.
func (lr *lockRanks) rankOf(class string) (rank int, tok string, ok bool) {
	if class == "" || lr == nil {
		return 0, "", false
	}
	best := -1
	for t, r := range lr.rank {
		if tokenMatchesClass(t, class) && len(t) > best {
			best, tok, rank, ok = len(t), t, r, true
		}
	}
	return rank, tok, ok
}

// tokenMatchesClass reports whether directive token t names class: the
// token's dot-separated components must equal the class's trailing
// components.
func tokenMatchesClass(t, class string) bool {
	tp := strings.Split(t, ".")
	cp := strings.Split(class, ".")
	if len(tp) > len(cp) {
		return false
	}
	tail := cp[len(cp)-len(tp):]
	for i := range tp {
		if tp[i] != tail[i] {
			return false
		}
	}
	return true
}

// parseLockChains extracts this package's //qosvet:lockorder chains,
// reporting malformed directives.
func parseLockChains(pass *Pass) ([][]string, []token.Pos) {
	var chains [][]string
	var poss []token.Pos
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, LockOrderDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, LockOrderDirective)
				parts := strings.Split(rest, "<")
				var chain []string
				bad := false
				for _, p := range parts {
					tok := strings.TrimSpace(p)
					if tok == "" || strings.ContainsAny(tok, " \t") {
						bad = true
						break
					}
					chain = append(chain, tok)
				}
				if bad || len(chain) < 2 {
					pass.Reportf(c.Pos(), "malformed lockorder directive: want //qosvet:lockorder a < b < c")
					continue
				}
				chains = append(chains, chain)
				poss = append(poss, c.Pos())
			}
		}
	}
	return chains, poss
}

// buildRanks merges the package's own chains with every imported
// LockOrder fact into one rank table. The hierarchy is a single global
// chain; declaring a token at two different positions is reported.
func buildRanks(pass *Pass, own [][]string, ownPos []token.Pos) *lockRanks {
	rank := make(map[string]int)
	conflictAt := func(pos token.Pos, tok string, a, b int) {
		pass.Reportf(pos, "conflicting lock order: %q ranked both %d and %d across lockorder declarations", tok, a, b)
	}
	addChain := func(chain []string, pos token.Pos) {
		for i, tok := range chain {
			if r, seen := rank[tok]; seen && r != i {
				conflictAt(pos, tok, r, i)
				continue
			}
			rank[tok] = i
		}
	}
	for _, pf := range pass.AllPackageFacts() {
		if pf.Pkg == pass.Pkg {
			continue // own chains added below with precise positions
		}
		order, isOrder := pf.Fact.(*LockOrder)
		if !isOrder {
			continue
		}
		pos := token.NoPos
		if len(pass.Files) > 0 {
			pos = pass.Files[0].Pos()
		}
		for _, chain := range order.Chains {
			addChain(chain, pos)
		}
	}
	for i, chain := range own {
		addChain(chain, ownPos[i])
	}
	if len(rank) == 0 {
		return nil
	}
	toks := make([]string, 0, len(rank))
	for t := range rank {
		toks = append(toks, t)
	}
	sort.Slice(toks, func(i, j int) bool {
		if rank[toks[i]] != rank[toks[j]] {
			return rank[toks[i]] < rank[toks[j]]
		}
		return toks[i] < toks[j]
	})
	return &lockRanks{rank: rank, chain: strings.Join(toks, " < ")}
}

// --- Acquisition summaries (the call-graph pass) ------------------------

// funcSummary is the per-function acquisition info feeding the LockSet
// fact: direct acquisitions plus same-package callees to propagate
// through, with the transitive closure accumulated in all.
type funcSummary struct {
	all   map[string]bool
	calls map[*types.Func]bool
}

// buildSummaries computes, for every function declared in the package,
// the set of lock classes it may acquire — directly, through
// same-package callees (fixpoint over the package call graph), or
// through imported callees' LockSet facts. Goroutine bodies are
// excluded: a lock taken asynchronously is not acquired by the caller.
func buildSummaries(pass *Pass) map[*types.Func]*funcSummary {
	info := pass.TypesInfo
	sums := make(map[*types.Func]*funcSummary)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if !isFunc || fd.Body == nil {
				continue
			}
			fn, isFn := info.Defs[fd.Name].(*types.Func)
			if !isFn {
				continue
			}
			s := &funcSummary{all: make(map[string]bool), calls: make(map[*types.Func]bool)}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, isGo := n.(*ast.GoStmt); isGo {
					return false
				}
				call, isCall := n.(*ast.CallExpr)
				if !isCall {
					return true
				}
				if ref, op, isLock := lockOp(info, call); isLock {
					if (op == "Lock" || op == "RLock") && ref.class != "" {
						s.all[ref.class] = true
					}
					return true
				}
				if callee := calleeFunc(info, call); callee != nil {
					s.calls[callee] = true
				}
				return true
			})
			sums[fn] = s
		}
	}

	// Seed cross-package callee facts once, then run the intra-package
	// fixpoint until no summary grows.
	for _, s := range sums {
		for callee := range s.calls {
			if _, samePkg := sums[callee]; samePkg {
				continue
			}
			var fact LockSet
			if pass.ImportObjectFact(callee, &fact) {
				for _, c := range fact.Acquires {
					s.all[c] = true
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, s := range sums {
			for callee := range s.calls {
				cs, samePkg := sums[callee]
				if !samePkg {
					continue
				}
				for c := range cs.all {
					if !s.all[c] {
						s.all[c] = true
						changed = true
					}
				}
			}
		}
	}
	return sums
}

// calleeFunc resolves a call to the function or method it invokes, or
// nil for builtins, conversions and function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// acquiresOf returns the lock classes fn may acquire: the in-package
// summary, or the imported LockSet fact.
func (lc *lockChecker) acquiresOf(fn *types.Func) []string {
	if s, samePkg := lc.sums[fn]; samePkg {
		out := make([]string, 0, len(s.all))
		for c := range s.all {
			out = append(out, c)
		}
		sort.Strings(out)
		return out
	}
	var fact LockSet
	if lc.pass.ImportObjectFact(fn, &fact) {
		return fact.Acquires
	}
	return nil
}

// --- Path-sensitive checking -------------------------------------------

// heldEntry is one held lock class on the current path.
type heldEntry struct {
	count   int
	display string
	tok     string
	rank    int
	ranked  bool
}

// lockState is the may-held set along one path. Branch merges take the
// per-key maximum count: "may be held" avoids false unmatched-unlock
// reports on conditional locking, at the cost of missing inversions
// that need mutually-exclusive branches to line up — a trade the
// fixtures pin.
type lockState struct {
	held map[string]heldEntry
}

func newLockState() *lockState { return &lockState{held: make(map[string]heldEntry)} }

func (st *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range st.held {
		c.held[k] = v
	}
	return c
}

func (st *lockState) mergeFrom(other *lockState) {
	for k, v := range other.held {
		cur, have := st.held[k]
		if !have || v.count > cur.count {
			st.held[k] = v
		}
	}
}

// lockChecker carries the per-package check context.
type lockChecker struct {
	pass  *Pass
	ranks *lockRanks
	sums  map[*types.Func]*funcSummary
}

// deferredOp is one deferred effect replayed at function exit.
type deferredOp struct {
	pos  token.Pos
	ref  lockRef // unlock target; nil ref when lit is set
	read bool
	lit  *ast.FuncLit
}

// funcCtx is the walk context of one function body.
type funcCtx struct {
	lc            *lockChecker
	deferred      []deferredOp
	locksAnywhere map[string]bool             // keys this function acquires somewhere
	methodVals    map[types.Object]deferredOp // ident → bound unlock method value
	pendingLits   []*ast.FuncLit              // literals to analyze as fresh functions
}

// checkFunc walks one function body, tracking the may-held set.
func (lc *lockChecker) checkFunc(body *ast.BlockStmt) {
	fc := &funcCtx{
		lc:            lc,
		locksAnywhere: make(map[string]bool),
		methodVals:    make(map[types.Object]deferredOp),
	}
	// Pre-scan every acquisition key (including ones inside closures)
	// so deferred unlocks can be judged position-independently.
	ast.Inspect(body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if ref, op, isLock := lockOp(lc.pass.TypesInfo, call); isLock && ref.valid() {
			switch op {
			case "Lock":
				fc.locksAnywhere[ref.key(false)] = true
			case "RLock":
				fc.locksAnywhere[ref.key(true)] = true
			}
		}
		return true
	})

	st := newLockState()
	fc.walkStmt(body, st)

	// Replay deferred effects at exit, LIFO. Deferred unlocks of locks
	// this function never takes are unmatched; deferred literals see
	// the exit-path state (the commitLocked shape: stripes locked in a
	// loop, unlocked by one deferred closure).
	for i := len(fc.deferred) - 1; i >= 0; i-- {
		d := fc.deferred[i]
		if d.lit != nil {
			fc.walkStmt(d.lit.Body, st)
			continue
		}
		key := d.ref.key(d.read)
		if !fc.locksAnywhere[key] {
			op, match := "Unlock", "Lock"
			if d.read {
				op, match = "RUnlock", "RLock"
			}
			lc.pass.Reportf(d.pos, "deferred %s.%s without a matching %s in this function",
				d.ref.display(), op, match)
		}
	}

	// Literals captured along the way (goroutine bodies, stored
	// closures) are their own locking scopes.
	for _, lit := range fc.pendingLits {
		lc.checkFunc(lit.Body)
	}
}

// walkStmt interprets one statement against st and reports whether the
// path terminates (return/branch).
func (fc *funcCtx) walkStmt(s ast.Stmt, st *lockState) bool {
	if s == nil {
		return false
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, sub := range s.List {
			if fc.walkStmt(sub, st) {
				return true
			}
		}
	case *ast.ExprStmt:
		fc.walkExpr(s.X, st)
	case *ast.SendStmt:
		fc.walkExpr(s.Chan, st)
		fc.walkExpr(s.Value, st)
	case *ast.IncDecStmt:
		fc.walkExpr(s.X, st)
	case *ast.AssignStmt:
		fc.noteMethodValue(s)
		for _, rhs := range s.Rhs {
			fc.walkExpr(rhs, st)
		}
	case *ast.DeclStmt:
		if gd, isGen := s.Decl.(*ast.GenDecl); isGen {
			for _, spec := range gd.Specs {
				if vs, isVal := spec.(*ast.ValueSpec); isVal {
					for _, v := range vs.Values {
						fc.walkExpr(v, st)
					}
				}
			}
		}
	case *ast.DeferStmt:
		fc.noteDefer(s, st)
	case *ast.GoStmt:
		for _, arg := range s.Call.Args {
			fc.walkExpr(arg, st)
		}
		if lit, isLit := s.Call.Fun.(*ast.FuncLit); isLit {
			fc.pendingLits = append(fc.pendingLits, lit)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			fc.walkExpr(r, st)
		}
		return true
	case *ast.BranchStmt:
		return s.Tok != token.FALLTHROUGH
	case *ast.LabeledStmt:
		return fc.walkStmt(s.Stmt, st)
	case *ast.IfStmt:
		fc.walkStmt(s.Init, st)
		fc.walkExpr(s.Cond, st)
		thenSt := st.clone()
		thenTerm := fc.walkStmt(s.Body, thenSt)
		if s.Else == nil {
			if !thenTerm {
				st.mergeFrom(thenSt)
			}
			return false
		}
		elseSt := st.clone()
		elseTerm := fc.walkStmt(s.Else, elseSt)
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			*st = *elseSt
		case elseTerm:
			*st = *thenSt
		default:
			*st = *thenSt
			st.mergeFrom(elseSt)
		}
	case *ast.ForStmt:
		fc.walkStmt(s.Init, st)
		fc.walkExpr(s.Cond, st)
		bodySt := st.clone()
		if !fc.walkStmt(s.Body, bodySt) {
			fc.walkStmt(s.Post, bodySt)
			st.mergeFrom(bodySt)
		}
	case *ast.RangeStmt:
		fc.walkExpr(s.X, st)
		bodySt := st.clone()
		if !fc.walkStmt(s.Body, bodySt) {
			st.mergeFrom(bodySt)
		}
	case *ast.SwitchStmt:
		fc.walkStmt(s.Init, st)
		fc.walkExpr(s.Tag, st)
		fc.walkCases(caseBodies(s.Body), st, hasDefaultClause(s.Body))
	case *ast.TypeSwitchStmt:
		fc.walkStmt(s.Init, st)
		fc.walkCases(caseBodies(s.Body), st, hasDefaultClause(s.Body))
	case *ast.SelectStmt:
		var branches [][]ast.Stmt
		for _, c := range s.Body.List {
			if cc, isComm := c.(*ast.CommClause); isComm {
				stmts := append([]ast.Stmt(nil), cc.Body...)
				if cc.Comm != nil {
					stmts = append([]ast.Stmt{cc.Comm}, stmts...)
				}
				branches = append(branches, stmts)
			}
		}
		fc.walkCases(branches, st, true)
	}
	return false
}

// caseBodies flattens a switch body into per-clause statement lists.
func caseBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range body.List {
		if cc, isCase := c.(*ast.CaseClause); isCase {
			out = append(out, cc.Body)
		}
	}
	return out
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, isCase := c.(*ast.CaseClause); isCase && cc.List == nil {
			return true
		}
	}
	return false
}

// walkCases interprets branch alternatives from a shared entry state
// and merges the surviving exits. When the construct may execute no
// branch (a switch without default), the entry state survives too.
func (fc *funcCtx) walkCases(branches [][]ast.Stmt, st *lockState, exhaustive bool) {
	entry := st.clone()
	var exits []*lockState
	for _, stmts := range branches {
		bst := entry.clone()
		terminated := false
		for _, s := range stmts {
			if fc.walkStmt(s, bst) {
				terminated = true
				break
			}
		}
		if !terminated {
			exits = append(exits, bst)
		}
	}
	if !exhaustive || len(branches) == 0 {
		exits = append(exits, entry)
	}
	if len(exits) == 0 {
		return // every branch terminated; caller continues with entry state
	}
	*st = *exits[0]
	for _, e := range exits[1:] {
		st.mergeFrom(e)
	}
}

// noteMethodValue records `u := mu.Unlock` bindings so `defer u()`
// resolves to the mutex.
func (fc *funcCtx) noteMethodValue(s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	info := fc.lc.pass.TypesInfo
	for i, rhs := range s.Rhs {
		sel, isSel := ast.Unparen(rhs).(*ast.SelectorExpr)
		if !isSel {
			continue
		}
		fn, isFn := info.Uses[sel.Sel].(*types.Func)
		if !isFn || (fn.Name() != "Unlock" && fn.Name() != "RUnlock") {
			continue
		}
		sig, isSig := fn.Type().(*types.Signature)
		if !isSig || sig.Recv() == nil || !namedFrom(sig.Recv().Type(), "sync", "Mutex", "RWMutex") {
			continue
		}
		id, isIdent := s.Lhs[i].(*ast.Ident)
		if !isIdent {
			continue
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			continue
		}
		ref := resolveLockExpr(info, sel.X)
		if ref.valid() {
			fc.methodVals[obj] = deferredOp{ref: ref, read: fn.Name() == "RUnlock"}
		}
	}
}

// noteDefer records one defer statement's exit-time effect.
func (fc *funcCtx) noteDefer(s *ast.DeferStmt, st *lockState) {
	for _, arg := range s.Call.Args {
		fc.walkExpr(arg, st)
	}
	info := fc.lc.pass.TypesInfo
	if lit, isLit := s.Call.Fun.(*ast.FuncLit); isLit {
		fc.deferred = append(fc.deferred, deferredOp{pos: s.Pos(), lit: lit})
		return
	}
	if ref, op, isLock := lockOp(info, s.Call); isLock {
		if (op == "Unlock" || op == "RUnlock") && ref.valid() {
			fc.deferred = append(fc.deferred, deferredOp{pos: s.Pos(), ref: ref, read: op == "RUnlock"})
		}
		return
	}
	if id, isIdent := ast.Unparen(s.Call.Fun).(*ast.Ident); isIdent {
		if obj := info.Uses[id]; obj != nil {
			if d, bound := fc.methodVals[obj]; bound {
				d.pos = s.Pos()
				fc.deferred = append(fc.deferred, d)
			}
		}
	}
}

// walkExpr interprets the lock effects of one expression in evaluation
// order: direct Lock/Unlock calls mutate st, calls to summarized
// functions are checked against the held set, and function literals are
// queued as independent scopes.
func (fc *funcCtx) walkExpr(e ast.Expr, st *lockState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, isLit := n.(*ast.FuncLit); isLit {
			fc.pendingLits = append(fc.pendingLits, lit)
			return false
		}
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if ref, op, isLock := lockOp(fc.lc.pass.TypesInfo, call); isLock {
			if ref.valid() {
				fc.applyLockOp(call.Pos(), ref, op, st)
			}
			return true
		}
		if callee := calleeFunc(fc.lc.pass.TypesInfo, call); callee != nil {
			fc.checkCallee(call.Pos(), callee, st)
		}
		return true
	})
}

// applyLockOp mutates the held set for one direct mutex operation,
// reporting order inversions and unmatched unlocks.
func (fc *funcCtx) applyLockOp(pos token.Pos, ref lockRef, op string, st *lockState) {
	lc := fc.lc
	read := op == "RLock" || op == "RUnlock"
	key := ref.key(read)
	switch op {
	case "Lock", "RLock":
		if rank, tok, ranked := lc.ranks.rankOf(ref.class); ranked {
			for _, h := range st.sortedHeld() {
				if h.ranked && h.count > 0 && rank < h.rank {
					lc.pass.Reportf(pos,
						"%s acquires %q (rank %d) while holding %q (rank %d); declared order: %s",
						ref.display()+"."+op, tok, rank, h.tok, h.rank, lc.ranks.chain)
					break
				}
			}
			ent := st.held[key]
			ent.count++
			ent.display, ent.tok, ent.rank, ent.ranked = ref.display(), tok, rank, true
			st.held[key] = ent
			return
		}
		ent := st.held[key]
		ent.count++
		ent.display = ref.display()
		st.held[key] = ent
	case "Unlock", "RUnlock":
		ent, have := st.held[key]
		if !have || ent.count == 0 {
			match := "Lock"
			if read {
				match = "RLock"
			}
			lc.pass.Reportf(pos, "%s.%s without a matching %s on this path",
				ref.display(), op, match)
			return
		}
		ent.count--
		st.held[key] = ent
	}
}

// checkCallee compares a callee's acquisition summary against the held
// set: calling into something that takes an earlier-ranked lock is the
// same inversion as taking it directly, one frame removed.
func (fc *funcCtx) checkCallee(pos token.Pos, callee *types.Func, st *lockState) {
	lc := fc.lc
	acquires := lc.acquiresOf(callee)
	if len(acquires) == 0 {
		return
	}
	for _, class := range acquires {
		rank, tok, ranked := lc.ranks.rankOf(class)
		if !ranked {
			continue
		}
		for _, h := range st.sortedHeld() {
			if h.ranked && h.count > 0 && rank < h.rank {
				lc.pass.Reportf(pos,
					"call to %s acquires %q (rank %d) while holding %q (rank %d); declared order: %s",
					callee.Name(), tok, rank, h.tok, h.rank, lc.ranks.chain)
				return // one report per call site is enough
			}
		}
	}
}

// sortedHeld returns the held entries in a deterministic order so
// reports do not depend on map iteration.
func (st *lockState) sortedHeld() []heldEntry {
	keys := make([]string, 0, len(st.held))
	for k := range st.held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]heldEntry, 0, len(keys))
	for _, k := range keys {
		out = append(out, st.held[k])
	}
	return out
}

// --- Copy checking ------------------------------------------------------

// containsLockType reports whether a value of type t embeds mutex
// state, so copying it forks the lock. Pointers, slices, maps and
// channels stop the walk: sharing is the point.
func containsLockType(t types.Type) bool {
	return containsLock(t, make(map[types.Type]bool))
}

func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if namedFrom(t, "sync", "Mutex", "RWMutex", "WaitGroup") {
		// namedFrom dereferences pointers; a *Mutex copy is fine.
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			return false
		}
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

// copySource reports whether e reads an existing addressable value (the
// shapes whose copy duplicates a live mutex). Composite literals,
// calls and conversions construct fresh values and are fine.
func copySource(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name != "_"
	case *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return true
	}
	return false
}

// checkCopies is the flat mutex-copy pass over one file: by-value
// parameters and receivers, plain assignments, range values, and call
// arguments.
func (lc *lockChecker) checkCopies(f *ast.File) {
	info := lc.pass.TypesInfo
	checkFieldList := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := typeOf(info, field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.(*types.Pointer); isPtr {
				continue
			}
			if containsLockType(t) {
				lc.pass.Reportf(field.Pos(), "%s passes lock by value: %s contains a sync mutex; use a pointer",
					what, types.TypeString(t, types.RelativeTo(lc.pass.Pkg)))
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			checkFieldList(n.Recv, "receiver")
			checkFieldList(n.Type.Params, "parameter")
		case *ast.FuncLit:
			checkFieldList(n.Type.Params, "parameter")
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if !copySource(rhs) {
					continue
				}
				if t := typeOf(info, rhs); t != nil && containsLockType(t) {
					lc.pass.Reportf(rhs.Pos(), "assignment copies lock value: %s contains a sync mutex",
						types.TypeString(t, types.RelativeTo(lc.pass.Pkg)))
				}
			}
		case *ast.RangeStmt:
			if n.Value == nil {
				return true
			}
			t := typeOf(info, n.Value)
			if t == nil {
				// A := range variable is a definition, not an expression
				// with a recorded type.
				if id, isIdent := n.Value.(*ast.Ident); isIdent {
					if obj := info.Defs[id]; obj != nil {
						t = obj.Type()
					}
				}
			}
			if t != nil && containsLockType(t) {
				lc.pass.Reportf(n.Value.Pos(), "range copies lock value per iteration: %s contains a sync mutex",
					types.TypeString(t, types.RelativeTo(lc.pass.Pkg)))
			}
		case *ast.CallExpr:
			if _, _, isLock := lockOp(info, n); isLock {
				return true
			}
			for _, arg := range n.Args {
				if !copySource(arg) {
					continue
				}
				if t := typeOf(info, arg); t != nil && containsLockType(t) {
					lc.pass.Reportf(arg.Pos(), "call passes lock by value: %s contains a sync mutex",
						types.TypeString(t, types.RelativeTo(lc.pass.Pkg)))
				}
			}
		}
		return true
	})
}

// --- Entry point --------------------------------------------------------

func runLockLint(pass *Pass) {
	own, ownPos := parseLockChains(pass)
	if len(own) > 0 {
		pass.ExportPackageFact(&LockOrder{Chains: own})
	}
	lc := &lockChecker{pass: pass}
	lc.ranks = buildRanks(pass, own, ownPos)
	lc.sums = buildSummaries(pass)

	// Export the acquisition summaries so importing packages see
	// through this package's calls.
	for fn, s := range lc.sums {
		if len(s.all) == 0 {
			continue
		}
		acq := make([]string, 0, len(s.all))
		for c := range s.all {
			acq = append(acq, c)
		}
		sort.Strings(acq)
		pass.ExportObjectFact(fn, &LockSet{Acquires: acq})
	}

	for _, f := range pass.Files {
		lc.checkCopies(f)
		for _, decl := range f.Decls {
			if fd, isFunc := decl.(*ast.FuncDecl); isFunc && fd.Body != nil {
				lc.checkFunc(fd.Body)
			}
		}
	}
}
