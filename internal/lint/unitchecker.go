package lint

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// This file implements the driver half of a vet tool: the JSON
// config protocol cmd/go speaks to a -vettool binary. It is a
// dependency-free reimplementation of the
// golang.org/x/tools/go/analysis/unitchecker contract:
//
//   - `qosvet -V=full` prints an identity line cmd/go hashes into its
//     action cache key (so editing an analyzer invalidates cached vet
//     results),
//   - `qosvet -flags` prints the tool's flags as JSON for validation,
//   - `qosvet <vet.cfg>` analyzes one compiled package unit: the cfg
//     names the Go sources plus the export-data file of every
//     dependency, so type checking needs no network, no GOPATH scan
//     and no second build.
//
// Facts make the suite interprocedural. cmd/go schedules every
// dependency of a vetted package as a VetxOnly unit first; for
// module-internal dependencies this driver type-checks the unit, runs
// the fact-bearing analyzers (diagnostics discarded), and serializes
// the resulting FactSet to cfg.VetxOutput. When the package itself is
// vetted, the vetx files of its dependencies (cfg.PackageVetx) are
// decoded back against the type-checked import graph, so an analyzer
// looking at a call into another package sees the callee's facts —
// locklint's acquired-locks summaries cross package boundaries this
// way. Standard-library VetxOnly units are answered with an empty
// facts payload without type-checking them: no analyzer here exports
// facts about the standard library, and skipping them keeps the vet
// pass fast.

// vetConfig mirrors the JSON object cmd/go writes for each vetted
// package unit. Unknown fields are ignored by encoding/json, which
// keeps the tool compatible across toolchain releases.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// jsonDiagnostic is the wire shape of one finding in -json mode; the
// schema is documented in doc.go. Suppressed findings are included so
// editor integrations can render them dimmed; only unsuppressed ones
// affect the text-mode exit code.
type jsonDiagnostic struct {
	Analyzer   string `json:"analyzer"`
	Posn       string `json:"posn"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// Main is the entry point of cmd/qosvet. It never returns.
func Main(analyzers []*Analyzer) {
	progname := filepath.Base(os.Args[0])

	// cmd/go probes the tool's identity before anything else; answer
	// before touching the flag package so odd flag orders can't break
	// the handshake.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		fmt.Printf("%s version devel buildID=%s\n", progname, selfHash())
		os.Exit(0)
	}

	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	jsonFlag := fs.Bool("json", false, "emit machine-readable JSON diagnostics (schema in internal/lint/doc.go)")
	_ = fs.Int("c", -1, "display offending line with this many lines of context (ignored)")
	flagsFlag := fs.Bool("flags", false, "print analyzer flags in JSON")
	vFlag := fs.String("V", "", "print version and exit")
	auditFlag := fs.Bool("audit", true, "report stale //qosvet:ignore directives (full-suite runs only)")
	enable := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enable[a.Name] = fs.Bool(a.Name, false, "enable only the "+a.Name+" analyzer (default: all)")
	}
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: go vet -vettool=$(which %s) ./...\n", progname)
		fmt.Fprintf(os.Stderr, "       %s [flags] <vet.cfg>\n\nAnalyzers:\n", progname)
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-8s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	_ = fs.Parse(os.Args[1:])

	if *vFlag != "" {
		fmt.Printf("%s version devel buildID=%s\n", progname, selfHash())
		os.Exit(0)
	}
	if *flagsFlag {
		printFlags(fs)
		os.Exit(0)
	}

	// Honor -<analyzer> selection: if any is set, run just those.
	selected := analyzers
	var any bool
	for _, a := range analyzers {
		if *enable[a.Name] {
			any = true
		}
	}
	if any {
		selected = nil
		for _, a := range analyzers {
			if *enable[a.Name] {
				selected = append(selected, a)
			}
		}
	}

	// The stale-suppression audit is only meaningful when every
	// analyzer runs: under a subset, a directive for an unselected
	// analyzer would look stale and fail a clean tree.
	audit := *auditFlag && !any

	if fs.NArg() != 1 || !strings.HasSuffix(fs.Arg(0), ".cfg") {
		fs.Usage()
		os.Exit(1)
	}

	diags, err := runUnit(fs.Arg(0), selected, audit)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	os.Exit(emit(os.Stdout, os.Stderr, diags, *jsonFlag))
}

// selfHash fingerprints the tool binary so cmd/go's vet-result cache
// turns over whenever the analyzers are rebuilt.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

// printFlags renders the flag set the way cmd/go's flag validation
// expects: a JSON array of {Name, Bool, Usage} objects.
func printFlags(fs *flag.FlagSet) {
	type jsonFlagDesc struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	var out []jsonFlagDesc
	fs.VisitAll(func(f *flag.Flag) {
		b, isBool := f.Value.(interface{ IsBoolFlag() bool })
		out = append(out, jsonFlagDesc{Name: f.Name, Bool: isBool && b.IsBoolFlag(), Usage: f.Usage})
	})
	data, _ := json.Marshal(out)
	os.Stdout.Write(data)
}

// unitDiagnostics is one package unit's findings keyed for output.
type unitDiagnostics struct {
	cfg   *vetConfig
	fset  *token.FileSet
	diags []Diagnostic // full list, suppressed findings marked
}

// needsFacts reports whether any selected analyzer declares fact
// types; without one, dependency units have nothing to export.
func needsFacts(analyzers []*Analyzer) bool {
	for _, a := range analyzers {
		if len(a.FactTypes) > 0 {
			return true
		}
	}
	return false
}

// writeVetx writes the unit's facts file. cmd/go requires the file to
// exist even when there is nothing to say.
func writeVetx(cfg *vetConfig, fs *FactSet) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	var data []byte
	if fs != nil {
		var err error
		if data, err = EncodeFacts(fs); err != nil {
			return fmt.Errorf("encoding facts for %s: %w", cfg.ImportPath, err)
		}
	}
	if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
		return fmt.Errorf("writing facts: %w", err)
	}
	return nil
}

// runUnit analyzes the package unit described by cfgFile.
func runUnit(cfgFile string, analyzers []*Analyzer, audit bool) (*unitDiagnostics, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", cfgFile, err)
	}

	// Dependency-only units exist to export facts. The standard
	// library never carries any of ours, and a suite with no
	// fact-bearing analyzer has none to record anywhere — both get an
	// empty payload without the cost of a type-check.
	if cfg.VetxOnly && (cfg.Standard[cfg.ImportPath] || !needsFacts(analyzers)) {
		return &unitDiagnostics{cfg: cfg}, writeVetx(cfg, nil)
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.VetxOnly || cfg.SucceedOnTypecheckFailure {
				// A dependency that fails to parse degrades to missing
				// facts, not a failed vet run.
				return &unitDiagnostics{cfg: cfg}, writeVetx(cfg, nil)
			}
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return &unitDiagnostics{cfg: cfg}, writeVetx(cfg, nil)
	}

	// Type-check against the export data cmd/go already compiled: the
	// cfg maps every dependency's import path to its build-cache
	// export file, including test variants ("pkg [pkg.test]").
	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		id, ok := cfg.ImportMap[path]
		if !ok {
			id = path
		}
		file, ok := cfg.PackageFile[id]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(cfg.Compiler, runtime.GOARCH),
		Error:     func(error) {}, // collect everything; first error returned below
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.VetxOnly || cfg.SucceedOnTypecheckFailure {
			return &unitDiagnostics{cfg: cfg}, writeVetx(cfg, nil)
		}
		return nil, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	// Rehydrate dependency facts against the materialized import
	// graph. Vetx payloads name packages by path; resolve them through
	// everything reachable from this unit so facts of indirect
	// dependencies (re-exported by intermediates) land too.
	facts := NewFactSet()
	pkgs := reachablePackages(pkg)
	var vetxPaths []string
	for _, p := range cfg.PackageVetx {
		vetxPaths = append(vetxPaths, p)
	}
	sort.Strings(vetxPaths)
	for _, p := range vetxPaths {
		raw, err := os.ReadFile(p)
		if err != nil {
			continue // missing dependency facts degrade precision, not correctness
		}
		if err := DecodeFacts(facts, raw, pkgs, analyzers); err != nil {
			return nil, fmt.Errorf("decoding facts for %s: %w", cfg.ImportPath, err)
		}
	}

	if cfg.VetxOnly {
		// Dependency unit: run only the fact-bearing analyzers and keep
		// nothing but their exports.
		var factful []*Analyzer
		for _, a := range analyzers {
			if len(a.FactTypes) > 0 {
				factful = append(factful, a)
			}
		}
		analyzePackage(fset, files, pkg, info, factful, facts, false)
		return &unitDiagnostics{cfg: cfg}, writeVetx(cfg, facts)
	}

	diags := analyzePackage(fset, files, pkg, info, analyzers, facts, audit)
	if err := writeVetx(cfg, facts); err != nil {
		return nil, err
	}
	return &unitDiagnostics{cfg: cfg, fset: fset, diags: diags}, nil
}

// reachablePackages collects every package visible from root through
// the import graph, keyed by path. Vetx keys may carry test-variant
// suffixes ("pkg [m.test]"); the payloads inside use plain paths, so
// plain paths are what this map holds.
func reachablePackages(root *types.Package) map[string]*types.Package {
	out := make(map[string]*types.Package)
	var visit func(p *types.Package)
	visit = func(p *types.Package) {
		if p == nil || out[p.Path()] == p {
			return
		}
		out[p.Path()] = p
		for _, im := range p.Imports() {
			visit(im)
		}
	}
	visit(root)
	return out
}

// emit writes the unit's findings and returns the process exit code:
// 0 for clean (or JSON mode, whose consumers read the stream), 2 when
// plain-text diagnostics were printed — the unitchecker convention
// go vet translates into its own failure. Suppressed findings are
// carried in JSON output but never gate.
func emit(stdout, stderr io.Writer, u *unitDiagnostics, asJSON bool) int {
	if asJSON {
		out := make([]jsonDiagnostic, 0, len(u.diags))
		for _, d := range u.diags {
			out = append(out, jsonDiagnostic{
				Analyzer:   d.Analyzer,
				Posn:       u.fset.Position(d.Pos).String(),
				Message:    d.Message,
				Suppressed: d.Suppressed,
			})
		}
		data, _ := json.MarshalIndent(out, "", "\t")
		fmt.Fprintf(stdout, "%s\n", data)
		return 0
	}
	gating := Keep(u.diags)
	for _, d := range gating {
		fmt.Fprintf(stderr, "%s: %s\n", u.fset.Position(d.Pos), d.Message)
	}
	if len(gating) > 0 {
		return 2
	}
	return 0
}
