package lint

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// This file implements the driver half of a vet tool: the JSON
// config protocol cmd/go speaks to a -vettool binary. It is a
// dependency-free reimplementation of the
// golang.org/x/tools/go/analysis/unitchecker contract:
//
//   - `qosvet -V=full` prints an identity line cmd/go hashes into its
//     action cache key (so editing an analyzer invalidates cached vet
//     results),
//   - `qosvet -flags` prints the tool's flags as JSON for validation,
//   - `qosvet <vet.cfg>` analyzes one compiled package unit: the cfg
//     names the Go sources plus the export-data file of every
//     dependency, so type checking needs no network, no GOPATH scan
//     and no second build.
//
// The suite carries no cross-package facts, so units whose cfg says
// VetxOnly (dependencies vetted only for their facts) are satisfied
// with an empty facts file.

// vetConfig mirrors the JSON object cmd/go writes for each vetted
// package unit. Unknown fields are ignored by encoding/json, which
// keeps the tool compatible across toolchain releases.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// jsonDiagnostic is the wire shape of one finding in -json mode,
// matching the unitchecker output consumed by editor integrations.
type jsonDiagnostic struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// Main is the entry point of cmd/qosvet. It never returns.
func Main(analyzers []*Analyzer) {
	progname := filepath.Base(os.Args[0])

	// cmd/go probes the tool's identity before anything else; answer
	// before touching the flag package so odd flag orders can't break
	// the handshake.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		fmt.Printf("%s version devel buildID=%s\n", progname, selfHash())
		os.Exit(0)
	}

	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	jsonFlag := fs.Bool("json", false, "emit JSON output")
	_ = fs.Int("c", -1, "display offending line with this many lines of context (ignored)")
	flagsFlag := fs.Bool("flags", false, "print analyzer flags in JSON")
	vFlag := fs.String("V", "", "print version and exit")
	enable := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enable[a.Name] = fs.Bool(a.Name, false, "enable only the "+a.Name+" analyzer (default: all)")
	}
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: go vet -vettool=$(which %s) ./...\n", progname)
		fmt.Fprintf(os.Stderr, "       %s [flags] <vet.cfg>\n\nAnalyzers:\n", progname)
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-8s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	_ = fs.Parse(os.Args[1:])

	if *vFlag != "" {
		fmt.Printf("%s version devel buildID=%s\n", progname, selfHash())
		os.Exit(0)
	}
	if *flagsFlag {
		printFlags(fs)
		os.Exit(0)
	}

	// Honor -<analyzer> selection: if any is set, run just those.
	selected := analyzers
	var any bool
	for _, a := range analyzers {
		if *enable[a.Name] {
			any = true
		}
	}
	if any {
		selected = nil
		for _, a := range analyzers {
			if *enable[a.Name] {
				selected = append(selected, a)
			}
		}
	}

	if fs.NArg() != 1 || !strings.HasSuffix(fs.Arg(0), ".cfg") {
		fs.Usage()
		os.Exit(1)
	}

	diags, err := runUnit(fs.Arg(0), selected)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	os.Exit(emit(os.Stdout, os.Stderr, diags, *jsonFlag))
}

// selfHash fingerprints the tool binary so cmd/go's vet-result cache
// turns over whenever the analyzers are rebuilt.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

// printFlags renders the flag set the way cmd/go's flag validation
// expects: a JSON array of {Name, Bool, Usage} objects.
func printFlags(fs *flag.FlagSet) {
	type jsonFlagDesc struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	var out []jsonFlagDesc
	fs.VisitAll(func(f *flag.Flag) {
		b, isBool := f.Value.(interface{ IsBoolFlag() bool })
		out = append(out, jsonFlagDesc{Name: f.Name, Bool: isBool && b.IsBoolFlag(), Usage: f.Usage})
	})
	data, _ := json.Marshal(out)
	os.Stdout.Write(data)
}

// unitDiagnostics is one package unit's findings keyed for output.
type unitDiagnostics struct {
	cfg   *vetConfig
	fset  *token.FileSet
	diags []Diagnostic
}

// runUnit analyzes the package unit described by cfgFile.
func runUnit(cfgFile string, analyzers []*Analyzer) (*unitDiagnostics, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", cfgFile, err)
	}

	// The facts file must exist for cmd/go's bookkeeping even though
	// this suite records none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, fmt.Errorf("writing facts: %w", err)
		}
	}
	if cfg.VetxOnly {
		// This unit is a dependency of the vetted packages; it was
		// scheduled only to export facts.
		return &unitDiagnostics{cfg: cfg}, nil
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return &unitDiagnostics{cfg: cfg}, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	// Type-check against the export data cmd/go already compiled: the
	// cfg maps every dependency's import path to its build-cache
	// export file, including test variants ("pkg [pkg.test]").
	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		id, ok := cfg.ImportMap[path]
		if !ok {
			id = path
		}
		file, ok := cfg.PackageFile[id]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(cfg.Compiler, runtime.GOARCH),
		Error:     func(error) {}, // collect everything; first error returned below
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return &unitDiagnostics{cfg: cfg}, nil
		}
		return nil, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	return &unitDiagnostics{
		cfg:   cfg,
		fset:  fset,
		diags: RunPackage(fset, files, pkg, info, analyzers),
	}, nil
}

// emit writes the unit's findings and returns the process exit code:
// 0 for clean (or JSON mode, whose consumers read the stream), 2 when
// plain-text diagnostics were printed — the unitchecker convention
// go vet translates into its own failure.
func emit(stdout, stderr io.Writer, u *unitDiagnostics, asJSON bool) int {
	if asJSON {
		byAnalyzer := make(map[string][]jsonDiagnostic)
		for _, d := range u.diags {
			name := d.Analyzer
			byAnalyzer[name] = append(byAnalyzer[name], jsonDiagnostic{
				Posn:    u.fset.Position(d.Pos).String(),
				Message: d.Message,
			})
		}
		out := map[string]map[string][]jsonDiagnostic{u.cfg.ID: byAnalyzer}
		data, _ := json.MarshalIndent(out, "", "\t")
		fmt.Fprintf(stdout, "%s\n", data)
		return 0
	}
	for _, d := range u.diags {
		fmt.Fprintf(stderr, "%s: %s\n", u.fset.Position(d.Pos), d.Message)
	}
	if len(u.diags) > 0 {
		return 2
	}
	return 0
}
