package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// ObsLint guards the observability conventions DESIGN.md §7 promises:
// metric names are constant and Prometheus-shaped (qos_ prefix,
// snake_case) so the exposition is stable across runs; histogram
// bucket sets are shared package-level variables so series of one
// metric are mergeable; and instrumented hot paths never branch on
// "is observability on" — the nil-registry dangling-bundle pattern
// makes a nil *obs.Registry a valid no-op target.
var ObsLint = &Analyzer{
	Name: "obslint",
	Doc: "metric names must be constant qos_[a-z0-9_]+ series, histogram buckets " +
		"package-level, and hot paths must not branch on a nil *obs.Registry",
	Run: runObsLint,
}

// metricBaseRE is the legal shape of a metric base name (the part
// before any {label="v"} suffix).
var metricBaseRE = regexp.MustCompile(`^qos_[a-z0-9_]*[a-z0-9]$`)

// registryFactories maps the Registry get-or-create methods to the
// index of their bucket/capacity argument (-1 when none needs checking).
var registryFactories = map[string]int{
	"Counter":   -1,
	"Gauge":     -1,
	"Histogram": 2,
	"Ring":      -1,
}

func runObsLint(pass *Pass) {
	if pass.Pkg.Name() == "obs" {
		return // the substrate itself implements the nil-receiver pattern
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				obsLintFactory(pass, n)
			case *ast.IfStmt:
				obsLintNilGuard(pass, n.Cond)
			}
			return true
		})
	}
}

// obsLintFactory checks one Registry.Counter/Gauge/Histogram/Ring call.
func obsLintFactory(pass *Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !namedFrom(sig.Recv().Type(), "obs", "Registry") {
		return
	}
	bucketArg, isFactory := registryFactories[fn.Name()]
	if !isFactory || len(call.Args) == 0 {
		return
	}

	checkMetricName(pass, call.Args[0])

	if bucketArg >= 0 && bucketArg < len(call.Args) {
		if v := packageLevelVar(pass.TypesInfo, call.Args[bucketArg]); v == nil {
			pass.Reportf(call.Args[bucketArg].Pos(),
				"histogram buckets must be a shared package-level bucket set (e.g. obs.LatencyBucketsMicros), not built at the call site")
		}
	}
}

// checkMetricName validates the name argument: either a constant
// string, or a fmt.Sprintf whose constant format carries the base name
// (the labeled-series idiom). Anything else is unauditable.
func checkMetricName(pass *Pass, arg ast.Expr) {
	if s, ok := constString(pass.TypesInfo, arg); ok {
		if !metricBaseRE.MatchString(metricBase(s)) {
			pass.Reportf(arg.Pos(),
				"metric name %q does not match qos_[a-z0-9_]+ (optionally with a {label=...} suffix)", s)
		}
		return
	}
	if call, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
		if fn := pkgFunc(pass.TypesInfo, call); fn != nil && isPkg(fn.Pkg(), "fmt") && fn.Name() == "Sprintf" && len(call.Args) > 0 {
			if format, ok := constString(pass.TypesInfo, call.Args[0]); ok {
				if !metricBaseRE.MatchString(metricBase(format)) {
					pass.Reportf(call.Args[0].Pos(),
						"metric series format %q does not start with a qos_[a-z0-9_]+ base name", format)
				}
				return
			}
		}
	}
	pass.Reportf(arg.Pos(),
		"metric name must be a constant string or a constant-format fmt.Sprintf series so the exposition is auditable")
}

// metricBase cuts a series name or Sprintf format down to the base
// metric name: everything before a {label...} suffix or a format verb.
func metricBase(s string) string {
	if i := strings.IndexByte(s, '{'); i >= 0 {
		s = s[:i]
	}
	if i := strings.IndexByte(s, '%'); i >= 0 {
		s = s[:i]
	}
	return s
}

// obsLintNilGuard flags if-conditions that compare a *obs.Registry
// against nil. The dangling-bundle pattern exists precisely so
// instrumented code paths never carry that branch: a nil registry
// hands out usable no-op metrics. (Storing reg != nil in a struct
// field at construction, as the metrics bundles do for trace
// formatting, is not an if-branch and stays legal.)
func obsLintNilGuard(pass *Pass, cond ast.Expr) {
	ast.Inspect(cond, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		if bin.Op != token.EQL && bin.Op != token.NEQ {
			return true
		}
		for _, pair := range [][2]ast.Expr{{bin.X, bin.Y}, {bin.Y, bin.X}} {
			if !isNilIdent(pass, pair[1]) {
				continue
			}
			t := typeOf(pass.TypesInfo, pair[0])
			if t != nil && namedFrom(t, "obs", "Registry") {
				pass.Reportf(bin.Pos(),
					"branching on a nil *obs.Registry; a nil registry is a valid no-op target (dangling-bundle pattern) — drop the guard")
			}
		}
		return true
	})
}

func isNilIdent(pass *Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNil
}
