package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Q15Lint guards the fixed-point datapath contract: Go code must
// combine Q15/UQ16 values exactly the way the hardware does — through
// the saturating helpers in internal/fixed that model the MULT18X18 +
// clamp pipeline (§4.2) — because raw int16 arithmetic wraps where the
// silicon saturates, and a float64() view of a Q15 without the scale
// shift is off by 2^15.
var Q15Lint = &Analyzer{
	Name: "q15lint",
	Doc: "forbid raw arithmetic on fixed.Q15/UQ16 outside internal/fixed " +
		"(use AddSat/SubSat/Mul/LocalSim) and float64 conversions that skip the Float() scale",
	Run: runQ15Lint,
}

// arithmeticOps are the binary/assign operators that wrap on int16
// where the datapath saturates. Comparisons and bit tests are fine.
var arithmeticOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true, token.REM: true,
	token.SHL: true, token.SHR: true,
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true, token.MUL_ASSIGN: true,
	token.QUO_ASSIGN: true, token.REM_ASSIGN: true,
	token.SHL_ASSIGN: true, token.SHR_ASSIGN: true,
}

func runQ15Lint(pass *Pass) {
	if pass.Pkg.Name() == "fixed" {
		return // the datapath implementation is the one sanctioned home
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if arithmeticOps[n.Op] && (isFixedPoint(pass, n.X) || isFixedPoint(pass, n.Y)) {
					pass.Reportf(n.OpPos,
						"raw %s on fixed-point value wraps where the hardware datapath saturates; use the fixed helpers (AddSat/SubSat/Mul)",
						n.Op)
				}
			case *ast.AssignStmt:
				if arithmeticOps[n.Tok] {
					for _, lhs := range n.Lhs {
						if isFixedPoint(pass, lhs) {
							pass.Reportf(n.TokPos,
								"raw %s on fixed-point value wraps where the hardware datapath saturates; use the fixed helpers (AddSat/SubSat/Mul)",
								n.Tok)
							break
						}
					}
				}
			case *ast.IncDecStmt:
				if isFixedPoint(pass, n.X) {
					pass.Reportf(n.TokPos,
						"raw %s on fixed-point value wraps where the hardware datapath saturates; use the fixed helpers (AddSat/SubSat)",
						n.Tok)
				}
			case *ast.CallExpr:
				q15LintConversion(pass, n)
			}
			return true
		})
	}
}

// isFixedPoint reports whether e has static type fixed.Q15 or
// fixed.UQ16.
func isFixedPoint(pass *Pass, e ast.Expr) bool {
	t := typeOf(pass.TypesInfo, e)
	return t != nil && namedFrom(t, "fixed", "Q15", "UQ16")
}

// q15LintConversion flags two conversion shapes:
//
//   - float64(q) / float32(q) of a Q15/UQ16: the raw counter value is
//     2^15 (2^16) times the represented number; the Float method exists
//     to apply the scale.
//   - Q15(a+b) / UQ16(expr): stuffing the result of raw arithmetic
//     into a fixed-point type launders a wrapping computation into the
//     datapath domain; the saturating helpers or FromFloat are the
//     sanctioned constructors. Plain reinterpretation of a single
//     loaded value (Q15(word), as the BRAM decoders do) stays legal.
func q15LintConversion(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	arg := ast.Unparen(call.Args[0])

	if b, ok := tv.Type.Underlying().(*types.Basic); ok &&
		(b.Kind() == types.Float64 || b.Kind() == types.Float32) && isFixedPoint(pass, arg) {
		pass.Reportf(call.Pos(),
			"%s of a fixed-point value drops the 2^-15 scale; use the Float method", b.Name())
		return
	}

	if namedFrom(tv.Type, "fixed", "Q15", "UQ16") {
		if inner, ok := arg.(*ast.BinaryExpr); ok && arithmeticOps[inner.Op] {
			pass.Reportf(call.Pos(),
				"conversion of raw arithmetic into a fixed-point type bypasses saturation; use fixed.AddSat/SubSat/Mul or FromFloat")
		}
	}
}
