package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// ErrLint guards the error-matching conventions the degrade-and-retry
// recovery path depends on: every layer wraps underlying failures with
// %w ("rtsys: place task 3: %w") and callers classify them with
// errors.Is/As against the sentinels (ErrDeviceFailed, ErrOverload,
// ErrCanceled, ...). An identity comparison or a %v wrap silently stops
// matching the moment any layer adds context.
var ErrLint = &Analyzer{
	Name: "errlint",
	Doc: "sentinel errors must be compared with errors.Is/As, never ==/!=, " +
		"and errors passed to fmt.Errorf must be wrapped with %w",
	Run: runErrLint,
}

func runErrLint(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				errLintCompare(pass, n)
			case *ast.CallExpr:
				errLintErrorf(pass, n)
			}
			return true
		})
	}
}

// errLintCompare flags ==/!= where one side is a package-level error
// variable — a sentinel. err == nil stays legal (nil is not a var),
// as do comparisons of local error values.
func errLintCompare(pass *Pass, bin *ast.BinaryExpr) {
	if bin.Op != token.EQL && bin.Op != token.NEQ {
		return
	}
	if isNilIdent(pass, bin.X) || isNilIdent(pass, bin.Y) {
		return // x == nil is a presence check, not sentinel matching
	}
	for _, side := range []ast.Expr{bin.X, bin.Y} {
		v := packageLevelVar(pass.TypesInfo, side)
		if v == nil || !implementsError(v.Type()) {
			continue
		}
		pass.Reportf(bin.Pos(),
			"sentinel error %s compared with %s; use errors.Is so wrapped errors still match", v.Name(), bin.Op)
		return
	}
}

// errLintErrorf flags fmt.Errorf calls that receive an error argument
// but whose constant format has no %w verb: the cause is flattened to
// text and errors.Is/As can no longer see it.
func errLintErrorf(pass *Pass, call *ast.CallExpr) {
	fn := pkgFunc(pass.TypesInfo, call)
	if fn == nil || !isPkg(fn.Pkg(), "fmt") || fn.Name() != "Errorf" || len(call.Args) < 2 {
		return
	}
	format, ok := constString(pass.TypesInfo, call.Args[0])
	if !ok || strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if t := typeOf(pass.TypesInfo, arg); t != nil && implementsError(t) {
			pass.Reportf(arg.Pos(),
				"error argument formatted without %%w; wrap it (\"...: %%w\") so errors.Is/As still match the cause")
		}
	}
}
