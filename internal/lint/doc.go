// Package lint is qosvet: a suite of project-specific static analyzers
// that machine-check the invariants the reproduction's verification
// story rests on, instead of trusting convention and catching drift in
// golden tests after the fact.
//
// The paper's retrieval unit is deterministic by construction — a fixed
// FSM walking pre-sorted BRAM lists with saturating 16-bit Q15
// arithmetic (§4.2) — and the repo's golden experiment outcomes
// (E18–E20), bit-exact replay tests and batched-vs-sequential
// bit-identity in internal/serve all depend on the Go side preserving
// that property. Each analyzer guards one invariant class:
//
//   - detlint: deterministic packages (alloc, rtsys, serve, retrieval,
//     obs, experiments, casebase) must not read the wall clock
//     (time.Now/time.Since), must not use the global math/rand source,
//     and must not do order-dependent work (slice appends, metric
//     writes, channel sends) inside map iteration — the exact bug class
//     behind the rtsys.AdvanceTo replay divergence fixed in PR 2.
//     Wall-clock seeding of rand sources is flagged in every package.
//
//   - q15lint: Q15/UQ16 fixed-point values may only be combined through
//     the saturating helpers in internal/fixed (AddSat, SubSat, Mul,
//     …), never with raw +, -, * that wrap where the hardware
//     MULT18X18-plus-clamp datapath saturates; float64 views of a Q15
//     must go through the Float method so the 2^-15 scale is applied.
//
//   - obslint: metric names must be constant (or constant-format
//     Sprintf series) matching qos_[a-z0-9_]+, histogram bucket sets
//     must be shared package-level variables, and instrumented code
//     must rely on the nil-registry dangling-bundle pattern instead of
//     branching on "is observability on" in hot paths.
//
//   - errlint: sentinel errors are compared with errors.Is/errors.As,
//     never ==/!=, and an error passed to fmt.Errorf must be wrapped
//     with %w so callers can still match it after wrapping.
//
//   - locklint: the serving core's deadlock discipline is declared once
//     in source with a directive,
//
//     //qosvet:lockorder commitMu < learnStripe.mu < shard.mu < allocMu
//
//     read left to right as outermost to innermost (commitMu is
//     acquired before the stripe mutexes, and so on). Tokens name lock
//     classes by trailing key components: a class is "pkg.Type.field"
//     for a struct-field mutex, "pkg.var" for a package-level one, so
//     the token shard.mu matches serve.shard.mu while commitMu matches
//     serve.Service.commitMu. The order is exported as a package fact
//     and inherited by importing packages; a per-function "may acquire"
//     summary (a LockSet object fact, propagated through vetx files and
//     a same-package call-graph fixpoint) lets the analyzer flag an
//     inversion even when the offending acquisition is buried behind
//     calls in another package. It also reports mutex-containing values
//     copied (parameters, receivers, assignments, range values, call
//     arguments) and Unlock/RUnlock calls with no matching acquisition
//     on the path. Acquiring equally-ranked instances (stripes/shards
//     in index order) is sanctioned.
//
//   - leaklint: go statements in the deterministic packages and
//     cmd/qosd must be tied to a tracked lifecycle: a WaitGroup.Add
//     earlier in the same function, a consulted context.Context in the
//     goroutine body, a channel receive/select/range, or a
//     WaitGroup.Done/Wait call. Same-package named callees are
//     inspected one hop deep; for out-of-package callees a context or
//     channel argument counts as the wiring. Untracked goroutines are
//     the raw material of drain/Close leaks.
//
// The suite runs as a standard vet tool: build cmd/qosvet and pass it
// to go vet -vettool (see make lint). locklint's facts make the run
// interprocedural: each dependency unit exports a JSON vetx payload
// ({"version":1,"facts":[{"pkg","obj","analyzer","type","fact"}...]},
// object facts keyed by "FuncName" or "Type.Method" paths) that
// downstream units decode against their import graph — see facts.go
// and unitchecker.go.
//
// Intentional, documented exceptions are suppressed in place with a
// comment on, or immediately above, the offending line:
//
//	//qosvet:ignore <analyzer> <reason>
//
// The reason is mandatory; a bare ignore is itself reported. In
// full-suite runs the suppression set is audited: a well-formed
// directive that no longer matches any finding is reported as stale,
// so the set can only shrink (disable with -audit=false).
//
// The -json flag switches output to a machine-readable stream for
// editor integrations: a flat JSON array, one element per diagnostic,
//
//	[{"analyzer": "locklint",
//	  "posn": "internal/serve/learn.go:212:2",
//	  "message": "locklint: ...",
//	  "suppressed": false}, ...]
//
// sorted by (file, line, column, analyzer). Suppressed findings are
// included with "suppressed": true so tools can render them dimmed;
// only unsuppressed findings affect the text-mode exit code.
//
// Test files (*_test.go) are exempt from all analyzers: tests may
// legitimately use wall-clock deadlines, identity assertions and
// short-lived goroutines, and the invariants gate the production
// pipeline that golden tests replay.
package lint
