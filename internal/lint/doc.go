// Package lint is qosvet: a suite of project-specific static analyzers
// that machine-check the invariants the reproduction's verification
// story rests on, instead of trusting convention and catching drift in
// golden tests after the fact.
//
// The paper's retrieval unit is deterministic by construction — a fixed
// FSM walking pre-sorted BRAM lists with saturating 16-bit Q15
// arithmetic (§4.2) — and the repo's golden experiment outcomes
// (E18–E20), bit-exact replay tests and batched-vs-sequential
// bit-identity in internal/serve all depend on the Go side preserving
// that property. Each analyzer guards one invariant class:
//
//   - detlint: deterministic packages (alloc, rtsys, serve, retrieval,
//     obs, experiments, casebase) must not read the wall clock
//     (time.Now/time.Since), must not use the global math/rand source,
//     and must not do order-dependent work (slice appends, metric
//     writes, channel sends) inside map iteration — the exact bug class
//     behind the rtsys.AdvanceTo replay divergence fixed in PR 2.
//     Wall-clock seeding of rand sources is flagged in every package.
//
//   - q15lint: Q15/UQ16 fixed-point values may only be combined through
//     the saturating helpers in internal/fixed (AddSat, SubSat, Mul,
//     …), never with raw +, -, * that wrap where the hardware
//     MULT18X18-plus-clamp datapath saturates; float64 views of a Q15
//     must go through the Float method so the 2^-15 scale is applied.
//
//   - obslint: metric names must be constant (or constant-format
//     Sprintf series) matching qos_[a-z0-9_]+, histogram bucket sets
//     must be shared package-level variables, and instrumented code
//     must rely on the nil-registry dangling-bundle pattern instead of
//     branching on "is observability on" in hot paths.
//
//   - errlint: sentinel errors are compared with errors.Is/errors.As,
//     never ==/!=, and an error passed to fmt.Errorf must be wrapped
//     with %w so callers can still match it after wrapping.
//
// The suite runs as a standard vet tool: build cmd/qosvet and pass it
// to go vet -vettool (see make lint). Intentional, documented
// exceptions are suppressed in place with a comment on, or immediately
// above, the offending line:
//
//	//qosvet:ignore <analyzer> <reason>
//
// The reason is mandatory; a bare ignore is itself reported.
// Test files (*_test.go) are exempt from all analyzers: tests may
// legitimately use wall-clock deadlines and identity assertions, and
// the invariants gate the production pipeline that golden tests replay.
package lint
