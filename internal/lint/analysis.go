package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. The shape deliberately mirrors
// golang.org/x/tools/go/analysis so the checks could migrate to the
// upstream framework wholesale; the framework itself is reimplemented
// here on the standard library because the module is dependency-free.
type Analyzer struct {
	// Name is the analyzer's identifier: the diagnostic prefix, the
	// //qosvet:ignore key and the enable-flag name on cmd/qosvet.
	Name string
	// Doc is a one-paragraph description of the invariant guarded.
	Doc string
	// Run inspects one package and reports findings on pass.
	Run func(*Pass)
	// FactTypes declares the concrete fact types this analyzer exports
	// and imports (see facts.go). An analyzer with fact types also runs
	// on dependency-only units so its facts flow downstream.
	FactTypes []Fact
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	facts *FactSet
	diags *[]Diagnostic
}

// Diagnostic is one finding, attributed to the analyzer that raised it.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
	// Suppressed marks a finding covered by a //qosvet:ignore
	// directive: excluded from text output and the exit code, but kept
	// for -json consumers and the stale-suppression audit.
	Suppressed bool
}

// Reportf records a finding at pos. The analyzer name is prefixed onto
// the message so a vet line reads "file:line: detlint: ...".
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  p.Analyzer.Name + ": " + fmt.Sprintf(format, args...),
	})
}

// All returns the full qosvet suite in registration order. Output
// order is positional, not registrational: analyzePackage sorts merged
// diagnostics by (file, line, column, analyzer).
func All() []*Analyzer {
	return []*Analyzer{DetLint, Q15Lint, ObsLint, ErrLint, LockLint, LeakLint}
}

// IgnoreDirective is the comment prefix of an in-source suppression:
//
//	//qosvet:ignore <analyzer> <reason>
//
// placed on the flagged line or on the line immediately above it.
const IgnoreDirective = "//qosvet:ignore"

// suppression is one parsed ignore directive.
type suppression struct {
	analyzer string // analyzer name or "all"
	ok       bool   // well-formed: has analyzer and a non-empty reason
	pos      token.Pos
	used     bool // matched at least one diagnostic (audit mode)
}

// fileLine keys a suppression or diagnostic to a source line.
type fileLine struct {
	file string
	line int
}

// collectSuppressions parses every //qosvet:ignore directive in files.
// Malformed directives (missing analyzer or reason) are returned
// separately so the driver can report them: a silent bad suppression
// would look like an active one.
func collectSuppressions(fset *token.FileSet, files []*ast.File) (map[fileLine][]*suppression, []Diagnostic) {
	sup := make(map[fileLine][]*suppression)
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, IgnoreDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, IgnoreDirective)
				fields := strings.Fields(rest)
				s := &suppression{pos: c.Pos()}
				if len(fields) >= 2 { // analyzer + at least one reason word
					s.analyzer = fields[0]
					s.ok = true
				} else {
					bad = append(bad, Diagnostic{
						Analyzer: "qosvet",
						Pos:      c.Pos(),
						Message:  "qosvet: malformed suppression: want //qosvet:ignore <analyzer> <reason>",
					})
				}
				p := fset.Position(c.Pos())
				k := fileLine{p.Filename, p.Line}
				sup[k] = append(sup[k], s)
			}
		}
	}
	return sup, bad
}

// suppressed reports whether a diagnostic from analyzer at pos is
// covered by a well-formed ignore directive on the same line or the
// line immediately above, marking the directive used for the audit.
func suppressed(fset *token.FileSet, sup map[fileLine][]*suppression, d Diagnostic) bool {
	p := fset.Position(d.Pos)
	hit := false
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, s := range sup[fileLine{p.Filename, line}] {
			if s.ok && (s.analyzer == d.Analyzer || s.analyzer == "all") {
				s.used = true
				hit = true
			}
		}
	}
	return hit
}

// RunPackage runs analyzers over one type-checked package and returns
// the surviving (unsuppressed) diagnostics in position order. It is
// the facts-blind convenience wrapper; drivers that thread
// cross-package facts or want suppressed findings call analyzePackage.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) []Diagnostic {
	return Keep(analyzePackage(fset, files, pkg, info, analyzers, NewFactSet(), false))
}

// Keep filters a full diagnostic list down to the findings that gate:
// everything not covered by a suppression.
func Keep(diags []Diagnostic) []Diagnostic {
	var kept []Diagnostic
	for _, d := range diags {
		if !d.Suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// analyzePackage runs analyzers over one type-checked package with the
// given fact store and returns every diagnostic — suppressed findings
// marked, not dropped — sorted by (file, line, column, analyzer,
// message) so merged multi-analyzer output is stable and diffable
// regardless of analyzer registration order.
//
// Test files (*_test.go) are excluded: the invariants gate production
// code, and go vet hands the tool test-augmented package variants
// whose prod files it has already analyzed.
//
// With audit set, every well-formed suppression that matched no
// finding is itself reported: the suppression set can only shrink.
// Audit requires the full suite — under a subset a directive for an
// unselected analyzer would look stale.
func analyzePackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, facts *FactSet, audit bool) []Diagnostic {
	var prod []*ast.File
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		prod = append(prod, f)
	}
	if len(prod) == 0 {
		return nil
	}

	sup, bad := collectSuppressions(fset, prod)

	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     prod,
			Pkg:       pkg,
			TypesInfo: info,
			facts:     facts,
			diags:     &diags,
		}
		a.Run(pass)
	}

	all := bad
	for _, d := range diags {
		d.Suppressed = suppressed(fset, sup, d)
		all = append(all, d)
	}
	if audit {
		var lines []fileLine
		for k := range sup {
			lines = append(lines, k)
		}
		sort.Slice(lines, func(i, j int) bool {
			if lines[i].file != lines[j].file {
				return lines[i].file < lines[j].file
			}
			return lines[i].line < lines[j].line
		})
		for _, k := range lines {
			for _, s := range sup[k] {
				if s.ok && !s.used {
					all = append(all, Diagnostic{
						Analyzer: "qosvet",
						Pos:      s.pos,
						Message: fmt.Sprintf(
							"qosvet: stale suppression: no %s finding left on this line; delete the //qosvet:ignore directive",
							s.analyzer),
					})
				}
			}
		}
	}
	sortDiagnostics(fset, all)
	return all
}

// sortDiagnostics orders findings by (file, line, column, analyzer,
// message) — the merged-output contract S6 pins: vet output must not
// depend on which analyzer happened to be registered first.
func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
}

// ---- shared type-inspection helpers ----

// pkgFunc resolves a call to a package-level function and returns it
// with its package, or nil if the callee is not a plain package
// function (methods, builtins, conversions, locals all return nil).
func pkgFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	return fn
}

// isPkg reports whether p is the package with the given import path.
// Matching tolerates the module prefix (qosalloc/internal/fixed matches
// "internal/fixed") so fixtures can stub project packages under short
// paths while the real tree matches too.
func isPkg(p *types.Package, path string) bool {
	if p == nil {
		return false
	}
	return p.Path() == path || strings.HasSuffix(p.Path(), "/"+path)
}

// namedFrom reports whether t (or the pointee/alias it resolves to) is
// the named type pkgName.typeName, where pkgName is the package's
// declared name — stable across the real module path and fixture stubs.
func namedFrom(t types.Type, pkgName string, typeNames ...string) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != pkgName {
		return false
	}
	for _, name := range typeNames {
		if obj.Name() == name {
			return true
		}
	}
	return false
}

// typeOf is info.Types[e].Type with a nil guard.
func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// implementsError reports whether t satisfies the builtin error
// interface (the type of a sentinel or a wrapped error value).
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	errType, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, errType)
}

// packageLevelVar resolves e to a package-level *types.Var, or nil.
func packageLevelVar(info *types.Info, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	return v
}

// constString returns the compile-time string value of e, if any.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
