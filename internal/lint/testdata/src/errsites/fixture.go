// Package errsites is the errlint fixture: sentinel identity
// comparisons and %w-less error wrapping are diagnosed; errors.Is/As
// and %w wrapping pass.
package errsites

import (
	"errors"
	"fmt"
)

// ErrDeviceFailed stands in for the repo's sentinel errors.
var ErrDeviceFailed = errors.New("device failed")

// ErrOverload is a second sentinel for the != form.
var ErrOverload = errors.New("overload")

func identityCompare(err error) bool {
	return err == ErrDeviceFailed // want `errlint: sentinel error ErrDeviceFailed compared with ==`
}

func identityCompareFlipped(err error) bool {
	if ErrOverload != err { // want `errlint: sentinel error ErrOverload compared with !=`
		return false
	}
	return true
}

// nilChecks are presence tests, not sentinel matching: legal.
func nilChecks(err error) bool {
	return err != nil
}

// properMatch is the sanctioned shape.
func properMatch(err error) bool {
	return errors.Is(err, ErrDeviceFailed)
}

func flattenedWrap(err error) error {
	return fmt.Errorf("placing task: %v", err) // want `errlint: error argument formatted without %w`
}

func properWrap(err error) error {
	return fmt.Errorf("placing task: %w", err)
}

// nonErrorArgs pass: only error-typed arguments need %w.
func nonErrorArgs(dev string, slot int) error {
	return fmt.Errorf("device %s slot %d", dev, slot)
}

// stringified arguments are not error-typed; converting the cause to
// text deliberately is expressed with err.Error().
func stringified(err error) error {
	return fmt.Errorf("flattened on purpose: %s", err.Error())
}

// suppressed carries a documented exception: no diagnostic.
func suppressed(err error) bool {
	//qosvet:ignore errlint fixture exercising the documented suppression path
	return err == ErrDeviceFailed
}
