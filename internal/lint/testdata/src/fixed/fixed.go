// Package fixed is a minimal stand-in for qosalloc/internal/fixed so
// the q15lint fixtures typecheck hermetically. The analyzer matches
// the Q15/UQ16 types by package name.
package fixed

// Q15 mirrors fixed.Q15.
type Q15 int16

// UQ16 mirrors fixed.UQ16.
type UQ16 uint16

// OneQ15 mirrors fixed.OneQ15.
const OneQ15 Q15 = 0x7FFF

// AddSat mirrors fixed.AddSat.
func AddSat(a, b Q15) Q15 { return a }

// SubSat mirrors fixed.SubSat.
func SubSat(a, b Q15) Q15 { return a }

// Mul mirrors fixed.Mul.
func Mul(a, b Q15) Q15 { return a }

// FromFloat mirrors fixed.FromFloat.
func FromFloat(f float64) Q15 { return 0 }

// Float mirrors (fixed.Q15).Float.
func (q Q15) Float() float64 { return 0 }

// Float mirrors (fixed.UQ16).Float.
func (u UQ16) Float() float64 { return 0 }
