// Package q15sites is the q15lint fixture: raw arithmetic on
// fixed-point values outside internal/fixed is diagnosed, saturating
// helpers and plain comparisons pass.
package q15sites

import "fixed"

func rawAdd(a, b fixed.Q15) fixed.Q15 {
	return a + b // want `q15lint: raw \+ on fixed-point value`
}

func rawMul(a, b fixed.Q15) fixed.Q15 {
	return a * b // want `q15lint: raw \* on fixed-point value`
}

func rawSubUQ16(a, b fixed.UQ16) fixed.UQ16 {
	return a - b // want `q15lint: raw - on fixed-point value`
}

func rawShift(a fixed.Q15) fixed.Q15 {
	return a >> 1 // want `q15lint: raw >> on fixed-point value`
}

func rawAssign(acc, w fixed.Q15) fixed.Q15 {
	acc += w // want `q15lint: raw \+= on fixed-point value`
	return acc
}

func rawIncrement(q fixed.Q15) fixed.Q15 {
	q++ // want `q15lint: raw \+\+ on fixed-point value`
	return q
}

func launderedArith(a, b fixed.Q15) fixed.Q15 {
	return fixed.Q15(int32(a) + int32(b)) // want `q15lint: conversion of raw arithmetic into a fixed-point type`
}

func rawToFloat(q fixed.Q15) float64 {
	return float64(q) // want `q15lint: float64 of a fixed-point value drops the 2\^-15 scale`
}

// saturating is the sanctioned shape: the helpers model the hardware
// MULT18X18 + clamp datapath.
func saturating(acc, w, s fixed.Q15) fixed.Q15 {
	return fixed.AddSat(acc, fixed.Mul(w, s))
}

// comparisons do not wrap; they stay legal.
func comparisons(a, b fixed.Q15) bool {
	return a > b && a != fixed.OneQ15
}

// reinterpret is the BRAM-decoder shape: converting a single loaded
// value is legal, only laundered arithmetic is not.
func reinterpret(word uint16) fixed.Q15 {
	return fixed.Q15(word)
}

// properFloat goes through the Float method, which applies the scale.
func properFloat(q fixed.Q15) float64 {
	return q.Float()
}

// suppressed carries a documented exception: no diagnostic.
func suppressed(a, b fixed.Q15) fixed.Q15 {
	//qosvet:ignore q15lint fixture exercising the documented suppression path
	return a + b
}
