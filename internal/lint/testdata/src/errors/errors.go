// Package errors is a minimal stand-in for the standard library
// package so the lint fixtures typecheck hermetically.
package errors

type simple struct{ s string }

func (e *simple) Error() string { return e.s }

// New mirrors errors.New.
func New(text string) error { return &simple{s: text} }

// Is mirrors errors.Is.
func Is(err, target error) bool { return err == target }

// As mirrors errors.As.
func As(err error, target any) bool { return false }
