// Package core declares a lock hierarchy and a helper that acquires
// the outermost lock. Importing packages must inherit the order (a
// LockOrder package fact) and see through WithCommit (a LockSet object
// fact) — the cross-package half of locklint.
package core

import "sync"

//qosvet:lockorder CommitMu < AllocMu

// Guard owns the two ranked mutexes.
type Guard struct {
	CommitMu sync.Mutex
	AllocMu  sync.Mutex
}

// WithCommit runs f under CommitMu.
func WithCommit(g *Guard, f func()) {
	g.CommitMu.Lock()
	defer g.CommitMu.Unlock()
	f()
}

// LockAlloc acquires the innermost lock; a second summary for the
// round-trip test.
func LockAlloc(g *Guard) {
	g.AllocMu.Lock()
	g.AllocMu.Unlock()
}
