// Package use imports core's hierarchy and helpers: the inversion here
// is invisible without imported facts — no lock is acquired directly
// out of order, the conflict only exists through core.WithCommit's
// acquisition summary.
package use

import "lockfacts/core"

// Bad calls into core while holding the later-ranked lock.
func Bad(g *core.Guard) {
	g.AllocMu.Lock()
	defer g.AllocMu.Unlock()
	core.WithCommit(g, func() {}) // want `locklint: call to WithCommit acquires "CommitMu" \(rank 0\) while holding "AllocMu" \(rank 1\)`
}

// Good nests the locks in declared order through the same helper.
func Good(g *core.Guard) {
	core.WithCommit(g, func() {
		g.AllocMu.Lock()
		g.AllocMu.Unlock()
	})
}

// Direct inherits the imported order for directly-acquired locks too.
func Direct(g *core.Guard) {
	g.AllocMu.Lock()
	defer g.AllocMu.Unlock()
	g.CommitMu.Lock() // want `locklint: .*acquires "CommitMu" \(rank 0\) while holding "AllocMu" \(rank 1\)`
	g.CommitMu.Unlock()
}
