// Package obssites is the obslint fixture: metric-name shape, shared
// bucket sets, and the nil-registry dangling-bundle invariant.
package obssites

import (
	"fmt"
	"obs"
)

// depthBuckets is a sanctioned package-level bucket set.
var depthBuckets = []int64{1, 2, 3, 5}

func register(reg *obs.Registry) {
	_ = reg.Counter("qos_good_total", "well-shaped name")
	_ = reg.Counter("qos_good_total{kind=\"hit\"}", "well-shaped labeled series")
	_ = reg.Counter("Bad-Name", "rejected") // want `obslint: metric name "Bad-Name" does not match`
	_ = reg.Counter("retrievals", "rejected: missing qos_ prefix") // want `obslint: metric name "retrievals" does not match`
	_ = reg.Gauge("qos_UPPER", "rejected: not snake_case") // want `obslint: metric name "qos_UPPER" does not match`
	_ = reg.Histogram("qos_wait_micros", "shared buckets pass", obs.LatencyBucketsMicros)
	_ = reg.Histogram("qos_depth", "local package-level buckets pass", depthBuckets)
	_ = reg.Histogram("qos_adhoc_micros", "inline buckets rejected", []int64{1, 2, 3}) // want `obslint: histogram buckets must be a shared package-level bucket set`
	_ = reg.Ring("qos_trace", "rings carry names too", 64)
}

// series is the sanctioned labeled-series idiom: a constant Sprintf
// format whose base name is auditable.
func series(reg *obs.Registry, shard int) {
	_ = reg.Gauge(fmt.Sprintf("qos_queue_depth{shard=%q}", fmt.Sprintf("%d", shard)), "per-shard depth")
	_ = reg.Gauge(fmt.Sprintf("%s{shard=%q}", "qos_queue_depth", shard), "opaque base") // want `obslint: metric series format "%s\{shard=%q\}" does not start with a qos_`
}

func dynamicName(reg *obs.Registry, name string) {
	_ = reg.Counter(name, "unauditable") // want `obslint: metric name must be a constant string`
}

func localBuckets(reg *obs.Registry) {
	mine := []int64{1, 2}
	_ = reg.Histogram("qos_local", "function-local buckets rejected", mine) // want `obslint: histogram buckets must be a shared package-level bucket set`
}

// hotPath must not branch on instrumentation: a nil registry hands out
// dangling no-op metrics.
func hotPath(reg *obs.Registry, c *obs.Counter) {
	if reg != nil { // want `obslint: branching on a nil \*obs\.Registry`
		c.Inc()
	}
	if nil == reg { // want `obslint: branching on a nil \*obs\.Registry`
		return
	}
}

// dangling is the sanctioned shape: record unconditionally; storing
// the enabled bit in a struct field at construction is also legal.
type bundle struct{ enabled bool }

func dangling(reg *obs.Registry, c *obs.Counter) bundle {
	c.Inc()
	return bundle{enabled: reg != nil}
}

// suppressed carries a documented exception: no diagnostic.
func suppressed(reg *obs.Registry) bool {
	//qosvet:ignore obslint fixture exercising the documented suppression path
	if reg == nil {
		return false
	}
	return true
}
