// Package locksites exercises locklint: the declared hierarchy below
// mirrors the serve package's (commit → stripes → shards → alloc), and
// the cases cover ordered acquisition, direct and cross-function
// inversions, deferred and method-value unlocks, unmatched unlocks,
// and mutex-by-value copies.
package locksites

import "sync"

//qosvet:lockorder commitMu < stripe.mu < shard.mu < allocMu

type stripe struct{ mu sync.Mutex }

type shard struct{ mu sync.Mutex }

// Service owns the ranked locks.
type Service struct {
	commitMu sync.Mutex
	stripes  []stripe
	shards   []shard
	allocMu  sync.Mutex
}

func sinkStripe(p *stripe) {}

// Ordered walks the full hierarchy in declared order: clean.
func (s *Service) Ordered() {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	for i := range s.stripes {
		s.stripes[i].mu.Lock()
	}
	defer func() {
		for i := range s.stripes {
			s.stripes[i].mu.Unlock()
		}
	}()
	s.shards[0].mu.Lock()
	s.allocMu.Lock()
	s.allocMu.Unlock()
	s.shards[0].mu.Unlock()
}

// StripesInOrder takes equal-rank instances while one is already held:
// sanctioned (the index-order discipline ranks cannot express).
func (s *Service) StripesInOrder() {
	for i := range s.stripes {
		s.stripes[i].mu.Lock()
	}
	for i := range s.stripes {
		s.stripes[i].mu.Unlock()
	}
}

// Inverted acquires the outermost lock while holding the innermost.
func (s *Service) Inverted() {
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	s.commitMu.Lock() // want `locklint: .*acquires "commitMu" \(rank 0\) while holding "allocMu" \(rank 3\)`
	s.commitMu.Unlock()
}

// lockCommit is the helper the cross-function case calls through.
func (s *Service) lockCommit() {
	s.commitMu.Lock()
	s.commitMu.Unlock()
}

// CrossFunction holds a shard mutex and calls a function whose
// acquisition summary includes the earlier-ranked commitMu.
func (s *Service) CrossFunction() {
	s.shards[0].mu.Lock()
	defer s.shards[0].mu.Unlock()
	s.lockCommit() // want `locklint: call to lockCommit acquires "commitMu" \(rank 0\) while holding "shard\.mu" \(rank 2\)`
}

// DeferMethodValue binds the unlock as a method value: still matched.
func (s *Service) DeferMethodValue() {
	s.allocMu.Lock()
	u := s.allocMu.Unlock
	defer u()
}

// DeferWithoutLock defers an unlock of a mutex this function never
// takes.
func (s *Service) DeferWithoutLock() {
	defer s.allocMu.Unlock() // want `locklint: deferred Service\.allocMu\.Unlock without a matching Lock in this function`
}

// UnlockTwice releases once per path, then once more.
func (s *Service) UnlockTwice(cond bool) {
	s.allocMu.Lock()
	if cond {
		s.allocMu.Unlock()
		return
	}
	s.allocMu.Unlock()
	s.allocMu.Unlock() // want `locklint: Service\.allocMu\.Unlock without a matching Lock on this path`
}

// ConditionalHold only sometimes locks: the unlock on the may-held
// path is accepted (no false positive).
func (s *Service) ConditionalHold(cond bool) {
	if cond {
		s.allocMu.Lock()
	}
	if cond {
		s.allocMu.Unlock()
	}
}

// Registry pins read-lock tracking: RUnlock matches RLock, not Lock.
type Registry struct {
	mu sync.RWMutex
}

// ReadThenWrite unlocks in write mode while holding only a read lock.
func (r *Registry) ReadThenWrite() {
	r.mu.RLock()
	r.mu.Unlock() // want `locklint: Registry\.mu\.Unlock without a matching Lock on this path`
	r.mu.RUnlock()
}

// GoBodyIsFresh: goroutine bodies are separate locking scopes; locks
// held at the go statement do not leak into the body's held set.
func (s *Service) GoBodyIsFresh(done chan struct{}) {
	s.allocMu.Lock()
	go func() {
		s.commitMu.Lock()
		s.commitMu.Unlock()
		<-done
	}()
	s.allocMu.Unlock()
}

// PointerUseIsFine: pointers share the lock rather than copying it.
func PointerUseIsFine(s *Service) {
	st := &s.stripes[0]
	st.mu.Lock()
	st.mu.Unlock()
}

// CopyByValue forks every mutex in the Service.
func CopyByValue(s Service) {} // want `locklint: parameter passes lock by value`

// CopyAssign duplicates a live stripe.
func CopyAssign(s *Service) {
	st := s.stripes[0] // want `locklint: assignment copies lock value`
	sinkStripe(&st)
}

// RangeCopy copies a stripe per iteration.
func RangeCopy(s *Service) {
	for _, st := range s.stripes { // want `locklint: range copies lock value`
		sinkStripe(&st)
	}
}
