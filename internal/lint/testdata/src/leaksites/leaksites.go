// Package serve (under the leaksites fixture path) exercises leaklint:
// the package name puts it in the policed deterministic set, and the
// cases cover each tracked-lifecycle shape against the leaked ones.
package serve

import (
	"context"
	"sync"
)

// TrackedByWaitGroup: Add precedes the go statement.
func TrackedByWaitGroup(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		wg.Done()
	}()
}

// TrackedByContext: the body consults its context.
func TrackedByContext(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// TrackedByChannel: a close-signaled channel bounds the body.
func TrackedByChannel(stop chan struct{}) {
	go func() {
		for range stop {
		}
	}()
}

// worker blocks on its jobs channel; callees one hop away are
// inspected for go statements naming them.
func worker(jobs chan int) {
	for range jobs {
	}
}

// TrackedByCallee launches a same-package function whose body is
// channel-bound.
func TrackedByCallee(jobs chan int) {
	go worker(jobs)
}

// spin has no lifecycle signal at all.
func spin() {
	for {
	}
}

// Leaked: an anonymous goroutine nothing can stop or wait for.
func Leaked() {
	go func() { // want `leaklint: goroutine is not tied to a tracked lifecycle`
		for {
		}
	}()
}

// LeakedNamed: a named same-package callee with no signal.
func LeakedNamed() {
	go spin() // want `leaklint: goroutine is not tied to a tracked lifecycle`
}

// SuppressedLeak documents the escape hatch: a reasoned ignore.
func SuppressedLeak() {
	//qosvet:ignore leaklint fixture pins that reasoned suppressions are honored
	go spin()
}
