// Package sort is a minimal stand-in for the standard library package
// so the detlint fixtures can exercise the collect-then-sort idiom.
package sort

// Interface mirrors sort.Interface.
type Interface interface {
	Len() int
	Less(i, j int) bool
	Swap(i, j int)
}

// Slice mirrors sort.Slice.
func Slice(x any, less func(i, j int) bool) {}

// Sort mirrors sort.Sort.
func Sort(data Interface) {}

// Ints mirrors sort.Ints.
func Ints(x []int) {}

// Strings mirrors sort.Strings.
func Strings(x []string) {}
