// Package sync is a minimal stand-in for the real sync package so
// locklint/leaklint fixtures typecheck hermetically. Only the identity
// of the named types and their method sets matter to the analyzers;
// the bodies are deliberately inert.
package sync

// Mutex is a stand-in mutual exclusion lock.
type Mutex struct{ state int32 }

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

// RWMutex is a stand-in reader/writer lock.
type RWMutex struct{ state int32 }

func (rw *RWMutex) Lock()    {}
func (rw *RWMutex) Unlock()  {}
func (rw *RWMutex) RLock()   {}
func (rw *RWMutex) RUnlock() {}

// WaitGroup is a stand-in goroutine counter.
type WaitGroup struct{ n int32 }

func (wg *WaitGroup) Add(delta int) {}
func (wg *WaitGroup) Done()         {}
func (wg *WaitGroup) Wait()         {}
