// Package obs is a minimal stand-in for qosalloc/internal/obs so the
// obslint and detlint fixtures typecheck hermetically. The analyzers
// match the Registry and metric types by package name.
package obs

// Counter mirrors obs.Counter.
type Counter struct{ v int64 }

// Inc mirrors (*obs.Counter).Inc.
func (c *Counter) Inc() { c.v++ }

// Add mirrors (*obs.Counter).Add.
func (c *Counter) Add(n int64) { c.v += n }

// Gauge mirrors obs.Gauge.
type Gauge struct{ v int64 }

// Set mirrors (*obs.Gauge).Set.
func (g *Gauge) Set(n int64) { g.v = n }

// Add mirrors (*obs.Gauge).Add.
func (g *Gauge) Add(n int64) { g.v += n }

// Histogram mirrors obs.Histogram.
type Histogram struct{ n int64 }

// Observe mirrors (*obs.Histogram).Observe.
func (h *Histogram) Observe(v int64) { h.n++ }

// Event mirrors obs.Event.
type Event struct {
	At     int64
	Kind   string
	Detail string
}

// Ring mirrors obs.Ring.
type Ring struct{ buf []Event }

// Append mirrors (*obs.Ring).Append.
func (r *Ring) Append(e Event) { r.buf = append(r.buf, e) }

// LatencyBucketsMicros mirrors the shared bucket set of the real
// package.
var LatencyBucketsMicros = []int64{10, 100, 1000}

// Registry mirrors obs.Registry.
type Registry struct{}

// NewRegistry mirrors obs.NewRegistry.
func NewRegistry() *Registry { return &Registry{} }

// Counter mirrors (*obs.Registry).Counter.
func (r *Registry) Counter(name, help string) *Counter { return &Counter{} }

// Gauge mirrors (*obs.Registry).Gauge.
func (r *Registry) Gauge(name, help string) *Gauge { return &Gauge{} }

// Histogram mirrors (*obs.Registry).Histogram.
func (r *Registry) Histogram(name, help string, bounds []int64) *Histogram { return &Histogram{} }

// Ring mirrors (*obs.Registry).Ring.
func (r *Registry) Ring(name, help string, capacity int) *Ring { return &Ring{} }
