// Package rand is a minimal stand-in for math/rand so the detlint
// fixtures typecheck hermetically. The analyzer matches it by import
// path.
package rand

// Source mirrors rand.Source.
type Source interface{ Int63() int64 }

type fixedSource int64

func (s fixedSource) Int63() int64 { return int64(s) }

// NewSource mirrors rand.NewSource.
func NewSource(seed int64) Source { return fixedSource(seed) }

// Rand mirrors rand.Rand.
type Rand struct{ src Source }

// New mirrors rand.New.
func New(src Source) *Rand { return &Rand{src: src} }

// Intn mirrors (*rand.Rand).Intn.
func (r *Rand) Intn(n int) int { return int(r.src.Int63()) % n }

// Float64 mirrors (*rand.Rand).Float64.
func (r *Rand) Float64() float64 { return 0 }

// Intn mirrors the package-level rand.Intn (global source).
func Intn(n int) int { return n - 1 }

// Float64 mirrors the package-level rand.Float64 (global source).
func Float64() float64 { return 0 }

// Seed mirrors the package-level rand.Seed (global source).
func Seed(seed int64) {}

// Shuffle mirrors the package-level rand.Shuffle (global source).
func Shuffle(n int, swap func(i, j int)) {}
