// Package time is a minimal stand-in for the standard library package,
// just enough surface for the lint fixtures to typecheck hermetically
// (no export data, no network). The analyzers match it by import path.
package time

// Duration mirrors time.Duration.
type Duration int64

// Time mirrors time.Time.
type Time struct{ wall int64 }

// Now mirrors time.Now.
func Now() Time { return Time{} }

// Since mirrors time.Since.
func Since(t Time) Duration { return Duration(t.wall) }

// UnixNano mirrors (time.Time).UnixNano.
func (t Time) UnixNano() int64 { return t.wall }
