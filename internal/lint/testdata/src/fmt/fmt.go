// Package fmt is a minimal stand-in for the standard library package
// so the lint fixtures typecheck hermetically. The analyzers match it
// by import path.
package fmt

// Errorf mirrors fmt.Errorf.
func Errorf(format string, a ...any) error { return nil }

// Sprintf mirrors fmt.Sprintf.
func Sprintf(format string, a ...any) string { return format }
