// Package context is a minimal stand-in for the real context package:
// leaklint only needs the named Context type and a constructor.
package context

// Context carries a cancelation signal.
type Context interface {
	Done() <-chan struct{}
	Err() error
}

type emptyCtx struct{}

func (emptyCtx) Done() <-chan struct{} { return nil }
func (emptyCtx) Err() error            { return nil }

// Background returns an empty root Context.
func Background() Context { return emptyCtx{} }
