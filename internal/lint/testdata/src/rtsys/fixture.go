// Package rtsys is the detlint fixture: its name places it in the
// deterministic set, so wall-clock reads, the global math/rand source
// and order-dependent map iteration are all diagnosed.
package rtsys

import (
	"math/rand"
	"obs"
	"sort"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want `detlint: time\.Now reads the wall clock`
}

func wallElapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `detlint: time\.Since reads the wall clock`
}

func globalRand() int {
	return rand.Intn(8) // want `detlint: global math/rand\.Intn`
}

func globalSeed() {
	rand.Seed(42) // want `detlint: global math/rand\.Seed`
}

func wallClockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `detlint: rand\.NewSource seeded from the wall clock` `detlint: time\.Now reads the wall clock`
}

// threadedRand is the sanctioned shape: an explicit generator with a
// caller-controlled seed.
func threadedRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(8)
}

func appendValues(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v) // want `detlint: append inside map iteration`
	}
	return out
}

// collectAndSort is the sanctioned shape: the sort after the loop
// erases the iteration order (PR 2's own fix).
func collectAndSort(m map[int]string) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

func sendValues(m map[int]string, ch chan string) {
	for _, v := range m {
		ch <- v // want `detlint: channel send inside map iteration`
	}
}

func observeValues(m map[int]int64, h *obs.Histogram, tr *obs.Ring) {
	for _, v := range m {
		h.Observe(v) // want `detlint: obs Observe inside map iteration`
	}
	for k := range m {
		tr.Append(obs.Event{At: int64(k), Kind: "seen"}) // want `detlint: obs Append inside map iteration`
	}
}

// suppressedClock carries a documented exception: no diagnostic.
func suppressedClock() int64 {
	//qosvet:ignore detlint fixture exercising the documented suppression path
	return time.Now().UnixNano()
}

// suppressedTrailing exercises the same-line suppression form.
func suppressedTrailing() int64 {
	return time.Now().UnixNano() //qosvet:ignore detlint fixture: trailing-comment suppression
}

// wrongAnalyzer shows suppressions are per-analyzer: an ignore naming
// another analyzer does not silence detlint.
func wrongAnalyzer() int64 {
	//qosvet:ignore q15lint suppressions are per-analyzer; this one does not match
	return time.Now().UnixNano() // want `detlint: time\.Now reads the wall clock`
}

func badSuppression() int64 {
	/* want `qosvet: malformed suppression` */ //qosvet:ignore detlint
	return time.Now().UnixNano() // want `detlint: time\.Now reads the wall clock`
}
