package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// The fixture harness is a dependency-free analogue of
// golang.org/x/tools/go/analysis/analysistest: fixture packages live
// under testdata/src/<importpath>, import only each other (including
// tiny stand-ins for time, math/rand, fmt, errors, sort), and annotate
// expected findings with trailing comments of the form
//
//	// want `regexp` `regexp`
//
// one regexp per expected diagnostic on that line. Because every
// import resolves inside testdata/src, the tests need no export data,
// no GOPATH and no network.

// fixtureLoader typechecks fixture packages from source, resolving
// imports under root. When facts is non-nil, every dependency load
// also runs the fact-bearing analyzers so the package under test sees
// its dependencies' facts — the in-process analogue of the vetx
// threading the unitchecker does under go vet.
type fixtureLoader struct {
	root  string
	fset  *token.FileSet
	pkgs  map[string]*types.Package
	facts *FactSet
}

func newFixtureLoader() *fixtureLoader {
	return &fixtureLoader{
		root:  filepath.Join("testdata", "src"),
		fset:  token.NewFileSet(),
		pkgs:  make(map[string]*types.Package),
		facts: NewFactSet(),
	}
}

func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	pkg, _, _, err := l.load(path, nil)
	return pkg, err
}

// factful returns the analyzers that export or import facts.
func factful(analyzers []*Analyzer) []*Analyzer {
	var out []*Analyzer
	for _, a := range analyzers {
		if len(a.FactTypes) > 0 {
			out = append(out, a)
		}
	}
	return out
}

// load parses and typechecks one fixture package. When info is
// non-nil it receives the package's type information (the package
// under test); dependency loads pass nil and contribute facts only.
func (l *fixtureLoader) load(path string, info *types.Info) (*types.Package, []*ast.File, *token.FileSet, error) {
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("fixture import %q is not stubbed under testdata/src: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	dep := info == nil
	if dep {
		info = newInfo()
	}
	cfg := &types.Config{Importer: l}
	pkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("typechecking fixture %q: %w", path, err)
	}
	l.pkgs[path] = pkg
	if dep && l.facts != nil {
		analyzePackage(l.fset, files, pkg, info, factful(All()), l.facts, false)
	}
	return pkg, files, l.fset, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// wantRE matches the expectation syntax: the word want followed by one
// or more backquoted regexps.
var wantRE = regexp.MustCompile("want((?:\\s+`[^`]*`)+)")

var wantArgRE = regexp.MustCompile("`([^`]*)`")

// expectations returns the want regexps of every annotated line.
func expectations(t *testing.T, fset *token.FileSet, files []*ast.File) map[fileLine][]*regexp.Regexp {
	t.Helper()
	wants := make(map[fileLine][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fileLine{pos.Filename, pos.Line}
				for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(arg[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, arg[1], err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants
}

// runFixture analyzes one fixture package with the given analyzers and
// checks its findings against the // want annotations, both ways:
// every finding must be expected, every expectation must be found.
func runFixture(t *testing.T, pkgPath string, analyzers ...*Analyzer) {
	t.Helper()
	loader := newFixtureLoader()
	info := newInfo()
	pkg, files, fset, err := loader.load(pkgPath, info)
	if err != nil {
		t.Fatal(err)
	}

	diags := Keep(analyzePackage(fset, files, pkg, info, analyzers, loader.facts, false))
	wants := expectations(t, fset, files)

	matched := make(map[fileLine][]bool)
	for key, res := range wants {
		matched[key] = make([]bool, len(res))
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fileLine{pos.Filename, pos.Line}
		found := false
		for i, re := range wants[key] {
			if !matched[key][i] && re.MatchString(d.Message) {
				matched[key][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	var keys []fileLine
	for key := range wants {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, key := range keys {
		for i, re := range wants[key] {
			if !matched[key][i] {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, re)
			}
		}
	}
}

func TestDetLintFixture(t *testing.T) { runFixture(t, "rtsys", DetLint) }

func TestQ15LintFixture(t *testing.T) { runFixture(t, "q15sites", Q15Lint) }

func TestObsLintFixture(t *testing.T) { runFixture(t, "obssites", ObsLint) }

func TestErrLintFixture(t *testing.T) { runFixture(t, "errsites", ErrLint) }

func TestLockLintFixture(t *testing.T) { runFixture(t, "locksites", LockLint) }

// TestLockLintCrossPackageFacts proves the interprocedural half: the
// inversion in lockfacts/use is only findable through the LockOrder
// and LockSet facts exported while loading lockfacts/core.
func TestLockLintCrossPackageFacts(t *testing.T) { runFixture(t, "lockfacts/use", LockLint) }

func TestLeakLintFixture(t *testing.T) { runFixture(t, "leaksites", LeakLint) }

// TestFullSuiteOnFixtures runs all six analyzers together over every
// fixture package: analyzers must not fire outside their own fixture
// (each package's want annotations already name their analyzer).
func TestFullSuiteOnFixtures(t *testing.T) {
	for _, pkg := range []string{"rtsys", "q15sites", "obssites", "errsites", "locksites", "lockfacts/use", "leaksites"} {
		t.Run(pkg, func(t *testing.T) { runFixture(t, pkg, All()...) })
	}
}

// TestStubsAreClean keeps the fixture stand-in packages diagnostic-free
// so fixture expectations stay attributable to fixture code.
func TestStubsAreClean(t *testing.T) {
	for _, pkg := range []string{"time", "math/rand", "fmt", "errors", "sort", "fixed", "obs", "sync", "context", "lockfacts/core"} {
		t.Run(pkg, func(t *testing.T) { runFixture(t, pkg, All()...) })
	}
}

// TestSuppressionRequiresReason pins the malformed-directive
// diagnostic: an ignore without a reason is reported, not honored.
// (The rtsys fixture carries the in-source variant; this covers the
// parser directly.)
func TestSuppressionRequiresReason(t *testing.T) {
	fset := token.NewFileSet()
	src := "package p\n\n//qosvet:ignore detlint\nvar X = 1\n"
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sup, bad := collectSuppressions(fset, []*ast.File{f})
	if len(bad) != 1 || !strings.Contains(bad[0].Message, "malformed suppression") {
		t.Fatalf("want one malformed-suppression diagnostic, got %v", bad)
	}
	if suppressed(fset, sup, Diagnostic{Analyzer: "detlint", Pos: f.Pos()}) {
		t.Fatal("malformed suppression must not silence diagnostics")
	}
}

// TestLoaderIsHermetic guards the fixture importer contract: loading
// never falls back to the real standard library, so the stand-in
// packages are guaranteed to be the ones exercised.
func TestLoaderIsHermetic(t *testing.T) {
	if _, err := newFixtureLoader().Import("no/such/fixture"); err == nil {
		t.Fatal("expected an error importing an unstubbed path")
	}
}

// TestFactsRoundTrip pins the vetx serialization contract: facts
// exported while analyzing lockfacts/core survive EncodeFacts →
// DecodeFacts into a fresh store, resolve back to the same objects,
// and re-encode byte-identically (cmd/go content-hashes vetx files).
func TestFactsRoundTrip(t *testing.T) {
	loader := newFixtureLoader()
	info := newInfo()
	pkg, files, fset, err := loader.load("lockfacts/core", info)
	if err != nil {
		t.Fatal(err)
	}
	facts := NewFactSet()
	analyzePackage(fset, files, pkg, info, factful(All()), facts, false)

	data, err := EncodeFacts(facts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte("LockSet")) || !bytes.Contains(data, []byte("LockOrder")) {
		t.Fatalf("encoded payload is missing fact types:\n%s", data)
	}

	fresh := NewFactSet()
	if err := DecodeFacts(fresh, data, map[string]*types.Package{"lockfacts/core": pkg}, All()); err != nil {
		t.Fatal(err)
	}
	pass := &Pass{Analyzer: LockLint, Pkg: pkg, facts: fresh}

	var ls LockSet
	if !pass.ImportObjectFact(pkg.Scope().Lookup("WithCommit"), &ls) {
		t.Fatal("no LockSet fact for WithCommit after round-trip")
	}
	if want := []string{"core.Guard.CommitMu"}; !reflect.DeepEqual(ls.Acquires, want) {
		t.Fatalf("WithCommit LockSet = %v, want %v", ls.Acquires, want)
	}
	if !pass.ImportObjectFact(pkg.Scope().Lookup("LockAlloc"), &ls) {
		t.Fatal("no LockSet fact for LockAlloc after round-trip")
	}
	if want := []string{"core.Guard.AllocMu"}; !reflect.DeepEqual(ls.Acquires, want) {
		t.Fatalf("LockAlloc LockSet = %v, want %v", ls.Acquires, want)
	}

	var lo LockOrder
	if !pass.ImportPackageFact(pkg, &lo) {
		t.Fatal("no LockOrder package fact after round-trip")
	}
	if want := [][]string{{"CommitMu", "AllocMu"}}; !reflect.DeepEqual(lo.Chains, want) {
		t.Fatalf("LockOrder chains = %v, want %v", lo.Chains, want)
	}

	again, err := EncodeFacts(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("re-encoding decoded facts is not byte-identical:\n%s\nvs\n%s", data, again)
	}
}

// TestAuditReportsStaleSuppressions pins the audit contract: a
// well-formed directive that silences nothing is itself a finding, but
// only when the audit is on (full-suite runs).
func TestAuditReportsStaleSuppressions(t *testing.T) {
	fset := token.NewFileSet()
	src := `package p

//qosvet:ignore detlint nothing on the next line triggers detlint
var X = 1
`
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := newInfo()
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}

	audited := analyzePackage(fset, []*ast.File{f}, pkg, info, All(), NewFactSet(), true)
	if len(audited) != 1 || !strings.Contains(audited[0].Message, "stale suppression") {
		t.Fatalf("audit run: want exactly one stale-suppression diagnostic, got %v", audited)
	}
	if quiet := analyzePackage(fset, []*ast.File{f}, pkg, info, All(), NewFactSet(), false); len(quiet) != 0 {
		t.Fatalf("non-audit run must not report stale suppressions, got %v", quiet)
	}
}

// TestDiagnosticsSortedByPosition pins the merged-output order: by
// (file, line, column, analyzer), never analyzer registration order.
func TestDiagnosticsSortedByPosition(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "z.go", "package p\n\nvar A = 1\nvar B = 2\n", 0)
	if err != nil {
		t.Fatal(err)
	}
	line3, line4 := f.Decls[0].Pos(), f.Decls[1].Pos()
	diags := []Diagnostic{
		{Analyzer: "zlint", Pos: line4, Message: "z"},
		{Analyzer: "alint", Pos: line4, Message: "a"},
		{Analyzer: "zlint", Pos: line3, Message: "z"},
	}
	sortDiagnostics(fset, diags)
	got := make([]string, len(diags))
	for i, d := range diags {
		got[i] = fmt.Sprintf("%d/%s", fset.Position(d.Pos).Line, d.Analyzer)
	}
	if want := []string{"3/zlint", "4/alint", "4/zlint"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("sorted order = %v, want %v", got, want)
	}
}

// TestEmitJSONSchema pins the -json wire shape documented in doc.go:
// a flat array of {analyzer, posn, message, suppressed}, suppressed
// findings included in JSON but never gating text mode.
func TestEmitJSONSchema(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "j.go", "package p\n\nvar A = 1\n", 0)
	if err != nil {
		t.Fatal(err)
	}
	u := &unitDiagnostics{cfg: &vetConfig{ID: "p"}, fset: fset, diags: []Diagnostic{
		{Analyzer: "locklint", Pos: f.Decls[0].Pos(), Message: "locklint: boom"},
		{Analyzer: "leaklint", Pos: f.Decls[0].Pos(), Message: "leaklint: hushed", Suppressed: true},
	}}

	var buf bytes.Buffer
	if code := emit(&buf, io.Discard, u, true); code != 0 {
		t.Fatalf("JSON mode exit code = %d, want 0", code)
	}
	var got []jsonDiagnostic
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not the documented schema: %v\n%s", err, buf.Bytes())
	}
	if len(got) != 2 || got[0].Analyzer != "locklint" || got[0].Suppressed ||
		got[1].Analyzer != "leaklint" || !got[1].Suppressed {
		t.Fatalf("unexpected JSON diagnostics: %+v", got)
	}
	if !strings.HasPrefix(got[0].Posn, "j.go:3") {
		t.Fatalf("posn = %q, want j.go:3:...", got[0].Posn)
	}

	if code := emit(io.Discard, io.Discard, u, false); code != 2 {
		t.Fatalf("text mode with a live finding: exit code = %d, want 2", code)
	}
	suppressedOnly := &unitDiagnostics{cfg: u.cfg, fset: fset, diags: u.diags[1:]}
	if code := emit(io.Discard, io.Discard, suppressedOnly, false); code != 0 {
		t.Fatalf("text mode with only suppressed findings: exit code = %d, want 0", code)
	}
}
