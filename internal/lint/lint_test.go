package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// The fixture harness is a dependency-free analogue of
// golang.org/x/tools/go/analysis/analysistest: fixture packages live
// under testdata/src/<importpath>, import only each other (including
// tiny stand-ins for time, math/rand, fmt, errors, sort), and annotate
// expected findings with trailing comments of the form
//
//	// want `regexp` `regexp`
//
// one regexp per expected diagnostic on that line. Because every
// import resolves inside testdata/src, the tests need no export data,
// no GOPATH and no network.

// fixtureLoader typechecks fixture packages from source, resolving
// imports under root.
type fixtureLoader struct {
	root string
	fset *token.FileSet
	pkgs map[string]*types.Package
}

func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	pkg, _, _, err := l.load(path, nil)
	return pkg, err
}

// load parses and typechecks one fixture package. When info is
// non-nil it receives the package's type information (the package
// under test); dependency loads pass nil.
func (l *fixtureLoader) load(path string, info *types.Info) (*types.Package, []*ast.File, *token.FileSet, error) {
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("fixture import %q is not stubbed under testdata/src: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	cfg := &types.Config{Importer: l}
	pkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("typechecking fixture %q: %w", path, err)
	}
	l.pkgs[path] = pkg
	return pkg, files, l.fset, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// wantRE matches the expectation syntax: the word want followed by one
// or more backquoted regexps.
var wantRE = regexp.MustCompile("want((?:\\s+`[^`]*`)+)")

var wantArgRE = regexp.MustCompile("`([^`]*)`")

// expectations returns the want regexps of every annotated line.
func expectations(t *testing.T, fset *token.FileSet, files []*ast.File) map[fileLine][]*regexp.Regexp {
	t.Helper()
	wants := make(map[fileLine][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fileLine{pos.Filename, pos.Line}
				for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(arg[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, arg[1], err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants
}

// runFixture analyzes one fixture package with the given analyzers and
// checks its findings against the // want annotations, both ways:
// every finding must be expected, every expectation must be found.
func runFixture(t *testing.T, pkgPath string, analyzers ...*Analyzer) {
	t.Helper()
	loader := &fixtureLoader{
		root: filepath.Join("testdata", "src"),
		fset: token.NewFileSet(),
		pkgs: make(map[string]*types.Package),
	}
	info := newInfo()
	pkg, files, fset, err := loader.load(pkgPath, info)
	if err != nil {
		t.Fatal(err)
	}

	diags := RunPackage(fset, files, pkg, info, analyzers)
	wants := expectations(t, fset, files)

	matched := make(map[fileLine][]bool)
	for key, res := range wants {
		matched[key] = make([]bool, len(res))
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fileLine{pos.Filename, pos.Line}
		found := false
		for i, re := range wants[key] {
			if !matched[key][i] && re.MatchString(d.Message) {
				matched[key][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	var keys []fileLine
	for key := range wants {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, key := range keys {
		for i, re := range wants[key] {
			if !matched[key][i] {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, re)
			}
		}
	}
}

func TestDetLintFixture(t *testing.T) { runFixture(t, "rtsys", DetLint) }

func TestQ15LintFixture(t *testing.T) { runFixture(t, "q15sites", Q15Lint) }

func TestObsLintFixture(t *testing.T) { runFixture(t, "obssites", ObsLint) }

func TestErrLintFixture(t *testing.T) { runFixture(t, "errsites", ErrLint) }

// TestFullSuiteOnFixtures runs all four analyzers together over every
// fixture package: analyzers must not fire outside their own fixture
// (each package's want annotations already name their analyzer).
func TestFullSuiteOnFixtures(t *testing.T) {
	for _, pkg := range []string{"rtsys", "q15sites", "obssites", "errsites"} {
		t.Run(pkg, func(t *testing.T) { runFixture(t, pkg, All()...) })
	}
}

// TestStubsAreClean keeps the fixture stand-in packages diagnostic-free
// so fixture expectations stay attributable to fixture code.
func TestStubsAreClean(t *testing.T) {
	for _, pkg := range []string{"time", "math/rand", "fmt", "errors", "sort", "fixed", "obs"} {
		t.Run(pkg, func(t *testing.T) { runFixture(t, pkg, All()...) })
	}
}

// TestSuppressionRequiresReason pins the malformed-directive
// diagnostic: an ignore without a reason is reported, not honored.
// (The rtsys fixture carries the in-source variant; this covers the
// parser directly.)
func TestSuppressionRequiresReason(t *testing.T) {
	fset := token.NewFileSet()
	src := "package p\n\n//qosvet:ignore detlint\nvar X = 1\n"
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sup, bad := collectSuppressions(fset, []*ast.File{f})
	if len(bad) != 1 || !strings.Contains(bad[0].Message, "malformed suppression") {
		t.Fatalf("want one malformed-suppression diagnostic, got %v", bad)
	}
	if suppressed(fset, sup, Diagnostic{Analyzer: "detlint", Pos: f.Pos()}) {
		t.Fatal("malformed suppression must not silence diagnostics")
	}
}

// TestLoaderIsHermetic guards the fixture importer contract: loading
// never falls back to the real standard library, so the stand-in
// packages are guaranteed to be the ones exercised.
func TestLoaderIsHermetic(t *testing.T) {
	if _, err := (&fixtureLoader{
		root: filepath.Join("testdata", "src"),
		fset: token.NewFileSet(),
		pkgs: make(map[string]*types.Package),
	}).Import("no/such/fixture"); err == nil {
		t.Fatal("expected an error importing an unstubbed path")
	}
}
