package lint

import (
	"go/ast"
	"go/types"
)

// deterministicPkgs are the packages whose behaviour the golden
// experiments (E18–E21) and bit-exact replay tests pin: everything on
// the sim-time retrieval/allocation pipeline, including the deferred
// net-commit layer whose fold points are part of the replay contract.
// Keyed by package name, which equals the final import-path element
// throughout the repo.
var deterministicPkgs = map[string]bool{
	"alloc":       true,
	"policy":      true,
	"fleet":       true,
	"rtsys":       true,
	"serve":       true,
	"retrieval":   true,
	"obs":         true,
	"experiments": true,
	"casebase":    true,
	"learn":       true,
}

// DetLint guards the determinism invariant: the pipeline replays
// bit-identically from a seed, like the paper's fixed-FSM hardware
// walking pre-sorted BRAM lists.
var DetLint = &Analyzer{
	Name: "detlint",
	Doc: "forbid wall-clock reads and global math/rand in deterministic packages, " +
		"wall-clock rand seeding anywhere, and order-dependent work in map iteration",
	Run: runDetLint,
}

func runDetLint(pass *Pass) {
	det := deterministicPkgs[pass.Pkg.Name()]
	for _, f := range pass.Files {
		// stack tracks the ancestors of the node being visited so the
		// map-range check can find its enclosing function body and look
		// for a sort call after the loop.
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				detLintCall(pass, n, det)
			case *ast.RangeStmt:
				if det {
					detLintRange(pass, n, enclosingBody(stack))
				}
			}
			stack = append(stack, n)
			return true
		})
	}
}

// enclosingBody returns the body of the innermost function on the
// ancestor stack.
func enclosingBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// isTimeNowCall reports whether call is time.Now() or time.Since(...).
func isTimeNowCall(info *types.Info, call *ast.CallExpr) bool {
	fn := pkgFunc(info, call)
	return fn != nil && isPkg(fn.Pkg(), "time") && (fn.Name() == "Now" || fn.Name() == "Since")
}

// randConstructors are the math/rand functions that build explicit
// sources and generators — the PR 1 convention detlint steers toward.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func detLintCall(pass *Pass, call *ast.CallExpr, det bool) {
	fn := pkgFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	switch {
	case det && isPkg(fn.Pkg(), "time") && (fn.Name() == "Now" || fn.Name() == "Since"):
		pass.Reportf(call.Pos(),
			"time.%s reads the wall clock in deterministic package %q; thread sim-time (rtsys clock) or a caller-supplied timestamp",
			fn.Name(), pass.Pkg.Name())

	case det && isRandPkg(fn.Pkg()) && !randConstructors[fn.Name()]:
		pass.Reportf(call.Pos(),
			"global math/rand.%s in deterministic package %q; thread an explicit *rand.Rand seeded by the caller",
			fn.Name(), pass.Pkg.Name())

	case isRandPkg(fn.Pkg()) && randConstructors[fn.Name()]:
		// Wall-clock seeding breaks replay in every package, not just
		// the deterministic set: a workload generator seeded from the
		// clock can never reproduce a failure.
		for _, arg := range call.Args {
			ast.Inspect(arg, func(n ast.Node) bool {
				inner, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				// A nested constructor (rand.New(rand.NewSource(...)))
				// checks its own arguments when visited.
				if innerFn := pkgFunc(pass.TypesInfo, inner); innerFn != nil &&
					isRandPkg(innerFn.Pkg()) && randConstructors[innerFn.Name()] {
					return false
				}
				if isTimeNowCall(pass.TypesInfo, inner) {
					pass.Reportf(inner.Pos(),
						"rand.%s seeded from the wall clock; use a fixed or caller-supplied seed so runs replay",
						fn.Name())
					return false
				}
				return true
			})
		}
	}
}

func isRandPkg(p *types.Package) bool {
	return isPkg(p, "math/rand") || isPkg(p, "math/rand/v2")
}

// detLintRange flags order-dependent work inside iteration over a map:
// slice appends, metric writes, and channel sends all leak Go's
// randomized map order into outputs — the rtsys.AdvanceTo trace bug
// fixed in PR 2. The one sanctioned shape is collect-then-sort: an
// append whose target slice is passed to a sort call later in the same
// function, which erases the iteration order (the shape of PR 2's own
// fix).
func detLintRange(pass *Pass, rng *ast.RangeStmt, body *ast.BlockStmt) {
	t := typeOf(pass.TypesInfo, rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"channel send inside map iteration publishes values in randomized map order; iterate a sorted key slice")

		case *ast.CallExpr:
			if isBuiltinAppend(pass.TypesInfo, n) {
				if sortedAfter(pass, body, rng, n) {
					return true // collect-then-sort: order erased below
				}
				pass.Reportf(n.Pos(),
					"append inside map iteration builds a slice in randomized map order; collect into a slice and sort it, or iterate sorted keys")
				return true
			}
			if name, ok := obsWriteMethod(pass.TypesInfo, n); ok {
				pass.Reportf(n.Pos(),
					"obs %s inside map iteration records metrics in randomized map order; iterate a sorted key slice",
					name)
			}
		}
		return true
	})
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortFuncs are the sorting entry points whose first argument is the
// slice being ordered.
var sortFuncs = map[string]bool{
	"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	"Strings": true, "Ints": true, "Float64s": true, // sort
	"SortFunc": true, "SortStableFunc": true, // slices
}

// sortedAfter reports whether the slice receiving appendCall's result
// is sorted by a sort/slices call after the range loop, inside the same
// function.
func sortedAfter(pass *Pass, body *ast.BlockStmt, rng *ast.RangeStmt, appendCall *ast.CallExpr) bool {
	if body == nil || len(appendCall.Args) == 0 {
		return false
	}
	target := exprObj(pass.TypesInfo, appendCall.Args[0])
	if target == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found || call.Pos() <= rng.End() || len(call.Args) == 0 {
			return !found
		}
		fn := pkgFunc(pass.TypesInfo, call)
		if fn == nil || !sortFuncs[fn.Name()] || !(isPkg(fn.Pkg(), "sort") || isPkg(fn.Pkg(), "slices")) {
			return true
		}
		if exprObj(pass.TypesInfo, call.Args[0]) == target {
			found = true
		}
		return !found
	})
	return found
}

// exprObj resolves e to the object of its leading identifier, looking
// through parens and single-argument conversions (sort.Sort(ByID(out))).
func exprObj(info *types.Info, e ast.Expr) types.Object {
	for {
		e = ast.Unparen(e)
		if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
			if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
				e = call.Args[0]
				continue
			}
		}
		break
	}
	if id, ok := e.(*ast.Ident); ok {
		return info.Uses[id]
	}
	return nil
}

// obsWriteMethod reports whether call is a mutating method on one of
// the internal/obs metric types (Counter.Inc/Add, Gauge.Set/Add,
// Histogram.Observe, Ring.Append).
func obsWriteMethod(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	recv := sig.Recv().Type()
	switch fn.Name() {
	case "Inc", "Add":
		if namedFrom(recv, "obs", "Counter", "Gauge") {
			return fn.Name(), true
		}
	case "Set":
		if namedFrom(recv, "obs", "Gauge") {
			return fn.Name(), true
		}
	case "Observe":
		if namedFrom(recv, "obs", "Histogram") {
			return fn.Name(), true
		}
	case "Append":
		if namedFrom(recv, "obs", "Ring") {
			return fn.Name(), true
		}
	}
	return "", false
}
