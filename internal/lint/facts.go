package lint

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// This file is the cross-package facts layer: the piece that turns the
// suite from a per-package checker into an interprocedural framework.
// An analyzer attaches serializable facts to functions and packages it
// analyzes; when a downstream package is analyzed, the facts of its
// dependencies are imported and the analyzer reasons across the call
// graph without re-reading dependency sources. The design mirrors
// golang.org/x/tools/go/analysis facts, reimplemented on the standard
// library:
//
//   - a Fact is a pointer to a JSON-serializable struct with an AFact
//     marker method, owned by exactly one analyzer (declared in its
//     FactTypes),
//   - object facts are keyed by types.Object and serialized under a
//     stable object path ("FuncName" or "Type.Method"), so they survive
//     the trip through a vetx file and re-resolve against the imported
//     package's type information,
//   - package facts are keyed by the package path alone.
//
// In-process (the fixture harness) the FactSet is shared directly; in
// the vet protocol it round-trips through the per-package .vetx files
// cmd/go threads between units (see unitchecker.go).

// Fact is a datum an analyzer exports for a types.Object or a package.
// Concrete fact types must be pointers to JSON-serializable structs and
// must be listed in their analyzer's FactTypes so the decoder can
// rebuild them from a vetx file.
type Fact interface{ AFact() }

// PackageFact pairs an imported package fact with its source package.
type PackageFact struct {
	Pkg  *types.Package
	Fact Fact
}

// FactSet accumulates the facts visible to one analysis unit: facts
// decoded from dependency vetx files plus facts exported by the
// analyzers running on the unit itself.
type FactSet struct {
	obj map[types.Object]map[string]Fact   // object → analyzer → fact
	pkg map[*types.Package]map[string]Fact // package → analyzer → fact
}

// NewFactSet returns an empty fact store.
func NewFactSet() *FactSet {
	return &FactSet{
		obj: make(map[types.Object]map[string]Fact),
		pkg: make(map[*types.Package]map[string]Fact),
	}
}

func (fs *FactSet) setObj(obj types.Object, analyzer string, f Fact) {
	m := fs.obj[obj]
	if m == nil {
		m = make(map[string]Fact)
		fs.obj[obj] = m
	}
	m[analyzer] = f
}

func (fs *FactSet) setPkg(pkg *types.Package, analyzer string, f Fact) {
	m := fs.pkg[pkg]
	if m == nil {
		m = make(map[string]Fact)
		fs.pkg[pkg] = m
	}
	m[analyzer] = f
}

// --- Pass-facing fact API ----------------------------------------------

// ExportObjectFact attaches f to obj for this analyzer. obj must belong
// to the package under analysis — facts about imported objects belong
// to the unit that analyzed their package.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if obj == nil || p.facts == nil {
		return
	}
	p.facts.setObj(obj, p.Analyzer.Name, f)
}

// ImportObjectFact copies the fact of this analyzer's type stored for
// obj into f (a pointer to the concrete fact struct) and reports
// whether one was found. Facts exported earlier in this unit and facts
// decoded from dependency vetx files are both visible.
func (p *Pass) ImportObjectFact(obj types.Object, f Fact) bool {
	if obj == nil || p.facts == nil {
		return false
	}
	stored, ok := p.facts.obj[obj][p.Analyzer.Name]
	if !ok {
		return false
	}
	return copyFact(stored, f)
}

// ExportPackageFact attaches f to the package under analysis.
func (p *Pass) ExportPackageFact(f Fact) {
	if p.facts == nil {
		return
	}
	p.facts.setPkg(p.Pkg, p.Analyzer.Name, f)
}

// ImportPackageFact copies pkg's fact of this analyzer's type into f
// and reports whether one was found.
func (p *Pass) ImportPackageFact(pkg *types.Package, f Fact) bool {
	if pkg == nil || p.facts == nil {
		return false
	}
	stored, ok := p.facts.pkg[pkg][p.Analyzer.Name]
	if !ok {
		return false
	}
	return copyFact(stored, f)
}

// AllPackageFacts returns every package fact of this analyzer's type in
// the store (dependencies and the package under analysis), sorted by
// package path so iteration is deterministic.
func (p *Pass) AllPackageFacts() []PackageFact {
	if p.facts == nil {
		return nil
	}
	var out []PackageFact
	for pkg, m := range p.facts.pkg {
		if f, ok := m[p.Analyzer.Name]; ok {
			out = append(out, PackageFact{Pkg: pkg, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pkg.Path() < out[j].Pkg.Path() })
	return out
}

// copyFact copies src's pointee into dst's pointee. Both must be
// pointers to the same concrete fact type.
func copyFact(src, dst Fact) bool {
	sv, dv := reflect.ValueOf(src), reflect.ValueOf(dst)
	if sv.Type() != dv.Type() || dv.Kind() != reflect.Pointer || dv.IsNil() {
		return false
	}
	dv.Elem().Set(sv.Elem())
	return true
}

// --- Object paths -------------------------------------------------------

// objectPath returns a stable in-package key for obj, resolvable
// against the imported package on the other side of a vetx file:
// "FuncName" for a package-level function, "Type.Method" for a method
// (pointer receivers normalized away). Objects without a stable path
// (locals, closures, fields) return "".
func objectPath(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	recv := sig.Recv()
	if recv == nil {
		if fn.Pkg() == nil || fn.Pkg().Scope().Lookup(fn.Name()) != fn {
			return "" // local function value, init, …
		}
		return fn.Name()
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name() + "." + fn.Name()
}

// resolveObjectPath finds the object named by an objectPath key in pkg,
// or nil.
func resolveObjectPath(pkg *types.Package, path string) types.Object {
	typeName, method, isMethod := strings.Cut(path, ".")
	obj := pkg.Scope().Lookup(typeName)
	if obj == nil {
		return nil
	}
	if !isMethod {
		if _, ok := obj.(*types.Func); ok {
			return obj
		}
		return nil
	}
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == method {
			return m
		}
	}
	return nil
}

// --- vetx serialization -------------------------------------------------

// vetxFact is one fact on the wire. Obj is empty for package facts.
type vetxFact struct {
	Pkg      string          `json:"pkg"`
	Obj      string          `json:"obj,omitempty"`
	Analyzer string          `json:"analyzer"`
	Type     string          `json:"type"`
	Fact     json.RawMessage `json:"fact"`
}

// vetxPayload is the whole facts file of one package unit. The file
// carries every fact visible to the unit — its own plus re-exported
// dependency facts — so downstream units see transitive facts even
// when they import the source package only indirectly.
type vetxPayload struct {
	Version int        `json:"version"`
	Facts   []vetxFact `json:"facts,omitempty"`
}

const vetxVersion = 1

// factTypeName is the registry key of a concrete fact type.
func factTypeName(f Fact) string {
	t := reflect.TypeOf(f)
	if t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t.Name()
}

// factRegistry maps analyzer → fact type name → concrete type, built
// from the analyzers' FactTypes declarations.
func factRegistry(analyzers []*Analyzer) map[string]map[string]reflect.Type {
	reg := make(map[string]map[string]reflect.Type)
	for _, a := range analyzers {
		for _, proto := range a.FactTypes {
			t := reflect.TypeOf(proto)
			if t.Kind() != reflect.Pointer {
				continue
			}
			m := reg[a.Name]
			if m == nil {
				m = make(map[string]reflect.Type)
				reg[a.Name] = m
			}
			m[t.Elem().Name()] = t.Elem()
		}
	}
	return reg
}

// EncodeFacts serializes every fact in fs into a vetx payload. Facts on
// objects without a stable path are dropped (nothing downstream could
// resolve them anyway). The output is sorted so identical analyses
// produce byte-identical files — cmd/go content-hashes them.
func EncodeFacts(fs *FactSet) ([]byte, error) {
	payload := vetxPayload{Version: vetxVersion}
	for obj, byAnalyzer := range fs.obj {
		path := objectPath(obj)
		if path == "" || obj.Pkg() == nil {
			continue
		}
		for analyzer, f := range byAnalyzer {
			raw, err := json.Marshal(f)
			if err != nil {
				return nil, fmt.Errorf("encoding %s fact for %s: %w", analyzer, path, err)
			}
			payload.Facts = append(payload.Facts, vetxFact{
				Pkg: obj.Pkg().Path(), Obj: path, Analyzer: analyzer,
				Type: factTypeName(f), Fact: raw,
			})
		}
	}
	for pkg, byAnalyzer := range fs.pkg {
		for analyzer, f := range byAnalyzer {
			raw, err := json.Marshal(f)
			if err != nil {
				return nil, fmt.Errorf("encoding %s package fact for %s: %w", analyzer, pkg.Path(), err)
			}
			payload.Facts = append(payload.Facts, vetxFact{
				Pkg: pkg.Path(), Analyzer: analyzer, Type: factTypeName(f), Fact: raw,
			})
		}
	}
	sort.Slice(payload.Facts, func(i, j int) bool {
		a, b := payload.Facts[i], payload.Facts[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Obj != b.Obj {
			return a.Obj < b.Obj
		}
		return a.Analyzer < b.Analyzer
	})
	return json.Marshal(payload)
}

// DecodeFacts merges the facts serialized in data into fs, resolving
// fact owners against pkgs (package path → package). Facts whose
// package is not in pkgs, whose object no longer resolves, or whose
// type is not registered by any analyzer are skipped silently — a
// missing fact degrades precision, never correctness.
func DecodeFacts(fs *FactSet, data []byte, pkgs map[string]*types.Package, analyzers []*Analyzer) error {
	if len(data) == 0 {
		return nil
	}
	var payload vetxPayload
	if err := json.Unmarshal(data, &payload); err != nil {
		return fmt.Errorf("decoding facts: %w", err)
	}
	reg := factRegistry(analyzers)
	for _, vf := range payload.Facts {
		concrete, ok := reg[vf.Analyzer][vf.Type]
		if !ok {
			continue
		}
		pkg := pkgs[vf.Pkg]
		if pkg == nil {
			continue
		}
		fv := reflect.New(concrete)
		if err := json.Unmarshal(vf.Fact, fv.Interface()); err != nil {
			continue
		}
		f, ok := fv.Interface().(Fact)
		if !ok {
			continue
		}
		if vf.Obj == "" {
			fs.setPkg(pkg, vf.Analyzer, f)
			continue
		}
		if obj := resolveObjectPath(pkg, vf.Obj); obj != nil {
			fs.setObj(obj, vf.Analyzer, f)
		}
	}
	return nil
}
