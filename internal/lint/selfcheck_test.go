package lint

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildQosvet compiles cmd/qosvet into dir and returns the binary path.
func buildQosvet(t *testing.T, dir string) string {
	t.Helper()
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool not found: %v", err)
	}
	bin := filepath.Join(dir, "qosvet")
	cmd := exec.Command(goTool, "build", "-o", bin, "qosalloc/cmd/qosvet")
	cmd.Dir = moduleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building qosvet: %v\n%s", err, out)
	}
	return bin
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not found at %s: %v", root, err)
	}
	return root
}

// TestRepoIsQosvetClean is the meta-test the CI lint gate mirrors: the
// full repository must carry zero qosvet diagnostics (intentional
// exceptions are suppressed in source with //qosvet:ignore).
func TestRepoIsQosvetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the vettool and re-vets the repository")
	}
	bin := buildQosvet(t, t.TempDir())
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = moduleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("repository is not qosvet-clean: %v\n%s", err, out)
	}
}

// TestSeededViolationFails proves the gate has teeth: a package named
// serve (deterministic set) containing a time.Now call must make
// go vet -vettool fail, and the diagnostic must name detlint.
func TestSeededViolationFails(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the vettool and runs go vet on a scratch module")
	}
	bin := buildQosvet(t, t.TempDir())

	scratch := t.TempDir()
	writeFile(t, filepath.Join(scratch, "go.mod"), "module scratch\n\ngo 1.22\n")
	writeFile(t, filepath.Join(scratch, "serve", "serve.go"), `package serve

import "time"

// Stamp is the seeded violation: a wall-clock read in a package whose
// name places it in qosvet's deterministic set.
func Stamp() int64 { return time.Now().UnixNano() }
`)

	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = scratch
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet passed over a seeded time.Now violation:\n%s", out)
	}
	if !strings.Contains(string(out), "detlint") || !strings.Contains(string(out), "time.Now") {
		t.Fatalf("diagnostic does not name detlint/time.Now:\n%s", out)
	}

	// The suppression mechanism must clear the same violation.
	writeFile(t, filepath.Join(scratch, "serve", "serve.go"), `package serve

import "time"

// Stamp is the same violation carrying a documented suppression.
func Stamp() int64 {
	//qosvet:ignore detlint scratch fixture: suppression must clear the gate
	return time.Now().UnixNano()
}
`)
	cmd = exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = scratch
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("suppressed violation still fails the gate: %v\n%s", err, out)
	}
}

// TestSeededLockInversionFails seeds the exact deadlock ISSUE 10 names
// — commitMu acquired after allocMu — split across two packages so the
// inversion is only visible through the vetx facts go vet threads
// between units: the caller package never touches CommitMu directly,
// it calls into core while holding the later-ranked lock.
func TestSeededLockInversionFails(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the vettool and runs go vet on a scratch module")
	}
	bin := buildQosvet(t, t.TempDir())

	scratch := t.TempDir()
	writeFile(t, filepath.Join(scratch, "go.mod"), "module scratch\n\ngo 1.22\n")
	writeFile(t, filepath.Join(scratch, "core", "core.go"), `// Package core declares the hierarchy (commitMu before allocMu) and a
// helper acquiring the outer lock.
package core

import "sync"

//qosvet:lockorder CommitMu < AllocMu

type Guard struct {
	CommitMu sync.Mutex
	AllocMu  sync.Mutex
}

// WithCommit runs f under CommitMu.
func WithCommit(g *Guard, f func()) {
	g.CommitMu.Lock()
	defer g.CommitMu.Unlock()
	f()
}
`)
	writeFile(t, filepath.Join(scratch, "caller", "caller.go"), `// Package caller seeds the commitMu-after-allocMu inversion one call
// deep: only core's exported facts can reveal it.
package caller

import "scratch/core"

func Bad(g *core.Guard) {
	g.AllocMu.Lock()
	defer g.AllocMu.Unlock()
	core.WithCommit(g, func() {})
}
`)

	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = scratch
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet passed over a seeded cross-package lock-order inversion:\n%s", out)
	}
	if !strings.Contains(string(out), "locklint") ||
		!strings.Contains(string(out), `"CommitMu"`) ||
		!strings.Contains(string(out), `"AllocMu"`) {
		t.Fatalf("diagnostic does not name locklint/CommitMu/AllocMu:\n%s", out)
	}
}

// TestSeededGoroutineLeakFails proves the leaklint half of the gate: an
// untracked go statement in a deterministic-set package fails go vet.
func TestSeededGoroutineLeakFails(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the vettool and runs go vet on a scratch module")
	}
	bin := buildQosvet(t, t.TempDir())

	scratch := t.TempDir()
	writeFile(t, filepath.Join(scratch, "go.mod"), "module scratch\n\ngo 1.22\n")
	writeFile(t, filepath.Join(scratch, "serve", "serve.go"), `package serve

// Run launches a goroutine with no WaitGroup, context, or channel tie
// — the seeded leak.
func Run() {
	go func() {
		for {
		}
	}()
}
`)

	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = scratch
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet passed over a seeded untracked goroutine:\n%s", out)
	}
	if !strings.Contains(string(out), "leaklint") {
		t.Fatalf("diagnostic does not name leaklint:\n%s", out)
	}
}

// TestStaleSuppressionFailsGate proves the audit has teeth end to end:
// a //qosvet:ignore that suppresses nothing fails the full-suite run.
func TestStaleSuppressionFailsGate(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the vettool and runs go vet on a scratch module")
	}
	bin := buildQosvet(t, t.TempDir())

	scratch := t.TempDir()
	writeFile(t, filepath.Join(scratch, "go.mod"), "module scratch\n\ngo 1.22\n")
	writeFile(t, filepath.Join(scratch, "serve", "serve.go"), `package serve

// N is clean; the directive above it suppresses nothing.
//qosvet:ignore detlint stale on purpose: nothing here trips detlint
var N = 1
`)

	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = scratch
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet passed over a stale suppression:\n%s", out)
	}
	if !strings.Contains(string(out), "stale suppression") {
		t.Fatalf("diagnostic does not name the stale suppression:\n%s", out)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
}
