package cbjson

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"qosalloc/internal/casebase"
)

// FuzzDecodeCaseBase asserts the decoder's contract on arbitrary input:
// it either returns a fully validated case base or an error wrapping
// ErrBadDocument — it must never panic and never hand back a half-built
// structure. Seeds cover the valid paper document plus each rejection
// class so the fuzzer starts from interesting shapes.
func FuzzDecodeCaseBase(f *testing.F) {
	cb, err := casebase.PaperCaseBase()
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, cb); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(``)
	f.Add(`{`)
	f.Add(`null`)
	f.Add(`{"version": 99, "attributes": [], "types": []}`)
	f.Add(`{"version": 1, "attributes": [{"id":1,"name":"a","kind":"weird","lo":0,"hi":1}], "types": []}`)
	f.Add(`{"version": 1, "attributes": [{"id":1,"name":"a","kind":"numeric","lo":0,"hi":1}], "types": [{"id":1,"name":"t","implementations":[{"id":1,"target":"asic","attributes":[]}]}]}`)
	f.Add(`{"version": 1, "attributes": [{"id":1,"name":"a","kind":"numeric","lo":5,"hi":2}], "types": []}`)
	f.Add(`{"version": 1, "attributes": [{"id":1,"name":"a","kind":"numeric","lo":0,"hi":1}], "types": [{"id":1,"name":"t","implementations":[{"id":1,"target":"gpp","attributes":[{"id":7,"value":0}]}]}]}`)

	f.Fuzz(func(t *testing.T, doc string) {
		got, err := Decode(strings.NewReader(doc))
		if err != nil {
			if got != nil {
				t.Fatalf("Decode returned both a case base and an error: %v", err)
			}
			if !errors.Is(err, ErrBadDocument) {
				t.Fatalf("content error does not wrap ErrBadDocument: %v", err)
			}
			return
		}
		// A successful decode must be internally consistent: it
		// re-encodes and decodes to the same shape.
		var out bytes.Buffer
		if err := Encode(&out, got); err != nil {
			t.Fatalf("re-encode of decoded case base failed: %v", err)
		}
		back, err := Decode(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.NumTypes() != got.NumTypes() || back.NumImpls() != got.NumImpls() {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				back.NumTypes(), back.NumImpls(), got.NumTypes(), got.NumImpls())
		}
	})
}
