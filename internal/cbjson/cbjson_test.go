package cbjson

import (
	"bytes"
	"strings"
	"testing"

	"qosalloc/internal/casebase"
	"qosalloc/internal/memlist"
	"qosalloc/internal/retrieval"
	"qosalloc/internal/workload"
)

func TestRoundTripPaperCaseBase(t *testing.T) {
	cb, err := casebase.PaperCaseBase()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, cb); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Structural equality via identical memory images — the strongest
	// cheap check.
	a, err := memlist.EncodeTree(cb)
	if err != nil {
		t.Fatal(err)
	}
	b, err := memlist.EncodeTree(back)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Words) != len(b.Words) {
		t.Fatalf("tree sizes differ: %d vs %d", len(a.Words), len(b.Words))
	}
	for i := range a.Words {
		if a.Words[i] != b.Words[i] {
			t.Fatalf("tree word %d differs", i)
		}
	}
	sa := memlist.EncodeSupplemental(cb.Registry())
	sb := memlist.EncodeSupplemental(back.Registry())
	if len(sa.Words) != len(sb.Words) {
		t.Fatal("supplemental sizes differ")
	}
	// Retrieval equivalence.
	e1 := retrieval.NewEngine(cb, retrieval.Options{})
	e2 := retrieval.NewEngine(back, retrieval.Options{})
	r1, _ := e1.Retrieve(casebase.PaperRequest())
	r2, _ := e2.Retrieve(casebase.PaperRequest())
	if r1.Impl != r2.Impl || r1.Similarity != r2.Similarity {
		t.Errorf("retrieval differs after round trip: %+v vs %+v", r1, r2)
	}
	// Footprints survive.
	ft, _ := back.Type(casebase.TypeFIREqualizer)
	im, _ := ft.Impl(1)
	if im.Foot.Slices != 920 || im.Foot.ConfigBytes != 96*1024 {
		t.Errorf("footprint lost: %+v", im.Foot)
	}
	if im.Target != casebase.TargetFPGA {
		t.Errorf("target lost: %v", im.Target)
	}
}

func TestRoundTripGeneratedCaseBase(t *testing.T) {
	cb, _, err := workload.GenCaseBase(workload.PaperScale())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, cb); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTypes() != cb.NumTypes() || back.NumImpls() != cb.NumImpls() {
		t.Errorf("shape lost: %d/%d vs %d/%d",
			back.NumTypes(), back.NumImpls(), cb.NumTypes(), cb.NumImpls())
	}
}

func TestDecodeRejectsBadDocuments(t *testing.T) {
	cases := map[string]string{
		"bad json":       `{`,
		"wrong version":  `{"version": 99, "attributes": [], "types": []}`,
		"unknown kind":   `{"version": 1, "attributes": [{"id":1,"name":"a","kind":"weird","lo":0,"hi":1}], "types": []}`,
		"unknown target": `{"version": 1, "attributes": [{"id":1,"name":"a","kind":"numeric","lo":0,"hi":1}], "types": [{"id":1,"name":"t","implementations":[{"id":1,"target":"asic","attributes":[]}]}]}`,
		"unknown field":  `{"version": 1, "bogus": true, "attributes": [], "types": []}`,
		"empty type":     `{"version": 1, "attributes": [{"id":1,"name":"a","kind":"numeric","lo":0,"hi":1}], "types": [{"id":1,"name":"t","implementations":[]}]}`,
		"oob attr value": `{"version": 1, "attributes": [{"id":1,"name":"a","kind":"numeric","lo":0,"hi":1}], "types": [{"id":1,"name":"t","implementations":[{"id":1,"target":"gpp","attributes":[{"id":1,"value":9}]}]}]}`,
		"dup attribute":  `{"version": 1, "attributes": [{"id":1,"name":"a","kind":"numeric","lo":0,"hi":1},{"id":1,"name":"b","kind":"numeric","lo":0,"hi":1}], "types": []}`,
	}
	for name, doc := range cases {
		if _, err := Decode(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: decode should fail", name)
		}
	}
}

func TestEncodeIsStable(t *testing.T) {
	cb, _ := casebase.PaperCaseBase()
	var a, b bytes.Buffer
	if err := Encode(&a, cb); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&b, cb); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("encoding must be deterministic")
	}
	if !strings.Contains(a.String(), `"version": 1`) {
		t.Error("version missing")
	}
}
