// Package cbjson persists attribute registries and case bases as JSON —
// the design-time interchange format a toolchain around the allocator
// needs (the paper's authors used Matlab scripts "for creating and
// exporting all needed data structures"; this is the equivalent
// exporter/importer for this library). The format is self-contained: one
// document carries the registry (with design-global bounds) and the full
// implementation tree, so a decoded case base revalidates from scratch.
package cbjson

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"qosalloc/internal/attr"
	"qosalloc/internal/casebase"
)

// FormatVersion guards against silently decoding incompatible documents.
const FormatVersion = 1

// ErrBadDocument is the sentinel wrapped by every Decode failure caused
// by document content (as opposed to I/O), so callers can errors.Is the
// format path apart from transport errors.
var ErrBadDocument = errors.New("cbjson: invalid document")

// Document is the on-disk shape.
type Document struct {
	Version    int        `json:"version"`
	Attributes []AttrJSON `json:"attributes"`
	Types      []TypeJSON `json:"types"`
}

// AttrJSON is one attribute definition.
type AttrJSON struct {
	ID      uint16   `json:"id"`
	Name    string   `json:"name"`
	Unit    string   `json:"unit,omitempty"`
	Kind    string   `json:"kind"`
	Lo      uint16   `json:"lo"`
	Hi      uint16   `json:"hi"`
	Symbols []string `json:"symbols,omitempty"`
}

// TypeJSON is one function type with its variants.
type TypeJSON struct {
	ID    uint16     `json:"id"`
	Name  string     `json:"name"`
	Impls []ImplJSON `json:"implementations"`
}

// ImplJSON is one implementation variant.
type ImplJSON struct {
	ID     uint16             `json:"id"`
	Name   string             `json:"name,omitempty"`
	Target string             `json:"target"`
	Attrs  []PairJSON         `json:"attributes"`
	Foot   casebase.Footprint `json:"footprint"`
}

// PairJSON is one attribute instance.
type PairJSON struct {
	ID    uint16 `json:"id"`
	Value uint16 `json:"value"`
}

var kindNames = map[attr.Kind]string{
	attr.Numeric: "numeric", attr.Ordinal: "ordinal", attr.Flag: "flag",
}

var kindByName = map[string]attr.Kind{
	"numeric": attr.Numeric, "ordinal": attr.Ordinal, "flag": attr.Flag,
}

var targetNames = map[casebase.Target]string{
	casebase.TargetFPGA: "fpga", casebase.TargetDSP: "dsp", casebase.TargetGPP: "gpp",
}

var targetByName = map[string]casebase.Target{
	"fpga": casebase.TargetFPGA, "dsp": casebase.TargetDSP, "gpp": casebase.TargetGPP,
}

// Encode writes cb (with its registry) to w as indented JSON.
func Encode(w io.Writer, cb *casebase.CaseBase) error {
	doc := Document{Version: FormatVersion}
	reg := cb.Registry()
	for _, id := range reg.IDs() {
		d, _ := reg.Lookup(id)
		doc.Attributes = append(doc.Attributes, AttrJSON{
			ID: uint16(d.ID), Name: d.Name, Unit: d.Unit,
			Kind: kindNames[d.Kind], Lo: uint16(d.Lo), Hi: uint16(d.Hi),
			Symbols: d.Symbols,
		})
	}
	for _, ft := range cb.Types() {
		tj := TypeJSON{ID: uint16(ft.ID), Name: ft.Name}
		for i := range ft.Impls {
			im := &ft.Impls[i]
			ij := ImplJSON{
				ID: uint16(im.ID), Name: im.Name,
				Target: targetNames[im.Target], Foot: im.Foot,
			}
			for _, p := range im.Attrs {
				ij.Attrs = append(ij.Attrs, PairJSON{ID: uint16(p.ID), Value: uint16(p.Value)})
			}
			tj.Impls = append(tj.Impls, ij)
		}
		doc.Types = append(doc.Types, tj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Decode reads a document and rebuilds a fully validated case base.
func Decode(r io.Reader) (*casebase.CaseBase, error) {
	var doc Document
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("cbjson: decode: %w (%w)", err, ErrBadDocument)
	}
	if doc.Version != FormatVersion {
		return nil, fmt.Errorf("cbjson: unsupported format version %d (want %d): %w", doc.Version, FormatVersion, ErrBadDocument)
	}
	reg := attr.NewRegistry()
	for _, a := range doc.Attributes {
		kind, ok := kindByName[a.Kind]
		if !ok {
			return nil, fmt.Errorf("cbjson: attribute %d has unknown kind %q: %w", a.ID, a.Kind, ErrBadDocument)
		}
		if err := reg.Define(attr.Def{
			ID: attr.ID(a.ID), Name: a.Name, Unit: a.Unit, Kind: kind,
			Lo: attr.Value(a.Lo), Hi: attr.Value(a.Hi), Symbols: a.Symbols,
		}); err != nil {
			return nil, fmt.Errorf("cbjson: define attribute %d: %w (%w)", a.ID, err, ErrBadDocument)
		}
	}
	b := casebase.NewBuilder(reg)
	for _, tj := range doc.Types {
		b.AddType(casebase.TypeID(tj.ID), tj.Name)
		for _, ij := range tj.Impls {
			target, ok := targetByName[ij.Target]
			if !ok {
				return nil, fmt.Errorf("cbjson: impl %d has unknown target %q: %w", ij.ID, ij.Target, ErrBadDocument)
			}
			var ps []attr.Pair
			for _, p := range ij.Attrs {
				ps = append(ps, attr.Pair{ID: attr.ID(p.ID), Value: attr.Value(p.Value)})
			}
			b.AddImpl(casebase.TypeID(tj.ID), casebase.Implementation{
				ID: casebase.ImplID(ij.ID), Name: ij.Name, Target: target,
				Attrs: ps, Foot: ij.Foot,
			})
		}
	}
	cb, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("cbjson: rebuild: %w (%w)", err, ErrBadDocument)
	}
	return cb, nil
}
