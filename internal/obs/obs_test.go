package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters only go up
	if c.Load() != 5 {
		t.Errorf("counter = %d, want 5", c.Load())
	}
	if r.Counter("x_total", "") != c {
		t.Error("same name must return the same counter")
	}
	g := r.Gauge("depth", "a gauge")
	g.Set(7)
	g.Add(-3)
	if g.Load() != 4 {
		t.Errorf("gauge = %d, want 4", g.Load())
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("a_total", "").Inc()
	r.Gauge("b", "").Set(1)
	r.Histogram("c", "", DepthBuckets).Observe(2)
	r.Ring("d", "", 4).Append(Event{At: 1, Kind: "x"})
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil WriteProm = %q, %v", buf.String(), err)
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 {
		t.Error("nil snapshot must be empty")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	want := []int64{2, 2, 0, 1} // ≤10: {5,10}; ≤100: {11,100}; ≤1000: {}; +Inf: {5000}
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket[%d] = %d, want %d (all %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 5 || h.Sum() != 5126 {
		t.Errorf("count/sum = %d/%d", h.Count(), h.Sum())
	}
	if q := h.Quantile(0.5); q != 100 {
		t.Errorf("p50 = %d, want 100", q)
	}
	if q := h.Quantile(1.0); q != 1000 {
		t.Errorf("p100 upper bound = %d, want last bound", q)
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRing(3)
	for i := int64(1); i <= 5; i++ {
		r.Append(Event{At: i, Kind: "e"})
	}
	ev := r.Events()
	if len(ev) != 3 || ev[0].At != 3 || ev[2].At != 5 {
		t.Errorf("events = %+v", ev)
	}
	if r.Total() != 5 {
		t.Errorf("total = %d, want 5", r.Total())
	}
	if r.Cap() != 3 {
		t.Errorf("cap = %d", r.Cap())
	}
}

func TestPromExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("qos_req_total", "requests").Add(3)
	r.Counter(`qos_faults_total{kind="seu"}`, "faults by kind").Add(2)
	r.Counter(`qos_faults_total{kind="devfail"}`, "").Inc()
	r.Gauge("qos_depth", "queue depth").Set(4)
	h := r.Histogram("qos_lat_micros", "latency", []int64{10, 100})
	h.Observe(7)
	h.Observe(70)
	h.Observe(700)
	r.Ring("qos_trace", "trace", 8).Append(Event{At: 1, Kind: "x"})

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE qos_req_total counter",
		"qos_req_total 3",
		`qos_faults_total{kind="devfail"} 1`,
		`qos_faults_total{kind="seu"} 2`,
		"# TYPE qos_depth gauge",
		"qos_depth 4",
		"# TYPE qos_lat_micros histogram",
		`qos_lat_micros_bucket{le="10"} 1`,
		`qos_lat_micros_bucket{le="100"} 2`,
		`qos_lat_micros_bucket{le="+Inf"} 3`,
		"qos_lat_micros_sum 777",
		"qos_lat_micros_count 3",
		"qos_trace_events_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One HELP/TYPE header per base name even with many series.
	if n := strings.Count(out, "# TYPE qos_faults_total"); n != 1 {
		t.Errorf("qos_faults_total TYPE headers = %d, want 1", n)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(9)
	r.Histogram("h", "", []int64{5}).Observe(3)
	r.Ring("tr", "", 2).Append(Event{At: 42, Kind: "k", Detail: "d"})

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["a_total"] != 9 {
		t.Errorf("counters = %v", s.Counters)
	}
	if hs := s.Histograms["h"]; hs.Count != 1 || hs.Sum != 3 {
		t.Errorf("histogram = %+v", hs)
	}
	if tr := s.Rings["tr"]; tr.Total != 1 || len(tr.Events) != 1 || tr.Events[0].At != 42 {
		t.Errorf("ring = %+v", tr)
	}
}

func TestRegistryKindClashPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("re-registering a name with a new kind must panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x", "")
	r.Gauge("x", "")
}

// TestConcurrentMetrics exercises the lock-free paths under -race.
func TestConcurrentMetrics(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("c_total", "")
			h := r.Histogram("h", "", DepthBuckets)
			rg := r.Ring("tr", "", 16)
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(int64(i % 25))
				if i%100 == 0 {
					rg.Append(Event{At: int64(i), Kind: "tick"})
				}
			}
		}(w)
	}
	wg.Wait()
	if got, _ := r.CounterValue("c_total"); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if r.Snapshot().Histograms["h"].Count != 8000 {
		t.Error("histogram lost observations")
	}
}
