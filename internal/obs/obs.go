// Package obs is the observability substrate of the allocation pipeline:
// atomic counters and gauges, fixed-bucket latency histograms, and a
// bounded event-trace ring, collected in a Registry that renders either a
// Prometheus-style text exposition or a JSON snapshot.
//
// The package is dependency-free (standard library only) and makes two
// promises the rest of the repo leans on:
//
//   - Determinism under sim-time. Nothing in this package reads the wall
//     clock or a random source. Every counter increment, histogram
//     observation and ring event carries a caller-supplied value, so a
//     simulation driven by the rtsys discrete clock produces bit-identical
//     metrics on every run (the repro -exp obs golden test pins this).
//     Under real load the caller passes wall-clock readings instead and
//     the same machinery yields live telemetry.
//
//   - Lock-free hot paths. Counter, Gauge and Histogram mutate through
//     sync/atomic only; instrumented code never takes a lock to count.
//     The Ring takes a mutex, which is why rings are reserved for
//     low-rate events (faults, health transitions, placement outcomes),
//     never per-attribute work.
//
// Metric names follow the Prometheus convention (snake_case, unit
// suffix, _total for counters) and may carry a label set in curly braces:
// "qos_fault_injections_total{kind=\"seu\"}" registers a series of the
// base metric qos_fault_injections_total. Series of one base name share
// HELP/TYPE in the exposition.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Negative deltas are ignored: counters only go up.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (queue depth, occupancy).
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Registry holds named metrics and renders them. The zero value is not
// usable; call NewRegistry. A nil *Registry is a valid no-op target for
// every Get-or-create method, so instrumented code can run uninstrumented
// without nil checks at each site.
type Registry struct {
	mu       sync.Mutex
	order    []string // full series names, registration order
	kind     map[string]metricKind
	help     map[string]string // by base name, first registration wins
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	rings    map[string]*Ring
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindRing
)

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		kind:     make(map[string]metricKind),
		help:     make(map[string]string),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		rings:    make(map[string]*Ring),
	}
}

// baseName strips the optional {label="v",...} suffix of a series name.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// register claims a series name for a kind, panicking on a kind clash —
// that is a programming error worth failing loudly on, like a duplicate
// expvar.
func (r *Registry) register(name, help string, k metricKind) {
	if prev, dup := r.kind[name]; dup {
		if prev != k {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		return
	}
	r.kind[name] = k
	r.order = append(r.order, name)
	base := baseName(name)
	if _, ok := r.help[base]; !ok && help != "" {
		r.help[base] = help
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Safe for concurrent use. A nil registry returns a usable
// dangling counter so instrumentation never branches.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.register(name, help, kindCounter)
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.register(name, help, kindGauge)
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds on first use (later calls reuse the
// first bounds).
func (r *Registry) Histogram(name, help string, bounds []int64) *Histogram {
	if r == nil {
		return newHistogram(bounds)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.register(name, help, kindHistogram)
	h := newHistogram(bounds)
	r.hists[name] = h
	return h
}

// Ring returns the event ring registered under name, creating it with
// the given capacity on first use.
func (r *Registry) Ring(name, help string, capacity int) *Ring {
	if r == nil {
		return NewRing(capacity)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if rg, ok := r.rings[name]; ok {
		return rg
	}
	r.register(name, help, kindRing)
	rg := NewRing(capacity)
	r.rings[name] = rg
	return rg
}

// seriesByKind returns the sorted series names of one kind. Caller holds
// no lock; the snapshot is taken under the registry lock.
func (r *Registry) seriesByKind(k metricKind) []string {
	var out []string
	for _, name := range r.order {
		if r.kind[name] == k {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
