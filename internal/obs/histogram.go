package obs

import (
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram with atomic buckets: bounds are
// upper bounds (inclusive, ascending) and one overflow bucket catches
// everything above the last bound — the Prometheus cumulative-bucket
// model, kept allocation-free after construction so Observe is safe on
// hot paths.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1, last = +Inf
	count   atomic.Int64
	sum     atomic.Int64
}

// Default bucket sets. Values are plain int64s: the unit is whatever the
// caller observes — simulation microseconds in the experiments,
// wall-clock nanoseconds under real load, or dimensionless depths.
var (
	// LatencyBucketsMicros spans the reconfiguration-dominated latency
	// range of the platform: tens of microseconds (DSP opcode loads) to
	// tens of milliseconds (large partial bitstreams over ICAP).
	LatencyBucketsMicros = []int64{10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000}
	// DepthBuckets suits small walk depths and queue lengths (N-best
	// list positions, pool idle lengths, retry counts).
	DepthBuckets = []int64{1, 2, 3, 5, 8, 13, 21}
	// CountBuckets suits per-operation work counts (implementations
	// scored, attributes compared per retrieval).
	CountBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256}
)

func newHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// NewHistogram returns an unregistered histogram with the given upper
// bounds (ascending).
func NewHistogram(bounds []int64) *Histogram { return newHistogram(bounds) }

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Bounds returns the bucket upper bounds.
func (h *Histogram) Bounds() []int64 {
	out := make([]int64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// BucketCounts returns the per-bucket (non-cumulative) counts; the last
// entry is the overflow bucket.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile returns an upper-bound estimate of quantile q in [0, 1]: the
// smallest bucket bound with cumulative count ≥ q·total (the overflow
// bucket reports the last bound). Zero observations yield 0.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	want := int64(math.Ceil(q * float64(total)))
	if want < 1 {
		want = 1
	}
	if want > total {
		want = total
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= want {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			break
		}
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}
