package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// withLabel splices an extra label into a series name: "x" becomes
// `x{extra}`, `x{a="b"}` becomes `x{a="b",extra}`.
func withLabel(name, extra string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:len(name)-1] + "," + extra + "}"
	}
	return name + "{" + extra + "}"
}

// WriteProm renders the registry in the Prometheus text exposition
// format (version 0.0.4): one HELP/TYPE header per base metric name,
// then every series sorted by name. Event rings have no Prometheus
// equivalent and only surface a <name>_events_total counter here; the
// retained events appear in the JSON snapshot.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	emitHeader := func(seen map[string]bool, name, typ string) {
		base := baseName(name)
		if seen[base] {
			return
		}
		seen[base] = true
		if h := r.help[base]; h != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", base, h)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", base, typ)
	}

	seen := make(map[string]bool)
	for _, name := range r.seriesByKind(kindCounter) {
		emitHeader(seen, name, "counter")
		fmt.Fprintf(w, "%s %d\n", name, r.counters[name].Load())
	}
	for _, name := range r.seriesByKind(kindGauge) {
		emitHeader(seen, name, "gauge")
		fmt.Fprintf(w, "%s %d\n", name, r.gauges[name].Load())
	}
	for _, name := range r.seriesByKind(kindHistogram) {
		emitHeader(seen, name, "histogram")
		h := r.hists[name]
		bounds, counts := h.Bounds(), h.BucketCounts()
		var cum int64
		for i, b := range bounds {
			cum += counts[i]
			fmt.Fprintf(w, "%s %d\n", withLabel(name+"_bucket", fmt.Sprintf("le=%q", fmt.Sprint(b))), cum)
		}
		cum += counts[len(counts)-1]
		fmt.Fprintf(w, "%s %d\n", withLabel(name+"_bucket", `le="+Inf"`), cum)
		fmt.Fprintf(w, "%s_sum %d\n", name, h.Sum())
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
	}
	for _, name := range r.seriesByKind(kindRing) {
		counterName := name + "_events_total"
		emitHeader(seen, counterName, "counter")
		fmt.Fprintf(w, "%s %d\n", counterName, r.rings[name].Total())
	}
	return nil
}

// HistogramSnapshot is the JSON form of one histogram.
type HistogramSnapshot struct {
	Bounds  []int64 `json:"bounds"`
	Buckets []int64 `json:"buckets"` // per-bucket counts; last = overflow
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
}

// RingSnapshot is the JSON form of one event ring.
type RingSnapshot struct {
	Total  uint64  `json:"total"`
	Events []Event `json:"events"`
}

// Snapshot is a point-in-time copy of every metric, JSON-serializable
// and independent of the live registry. Counters and gauges that move
// while the snapshot is taken land on whichever side of the copy their
// atomic update raced to — per-metric values are exact, cross-metric
// consistency is not promised (see DESIGN.md §7).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Rings      map[string]RingSnapshot      `json:"rings"`
}

// Snapshot copies every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
		Rings:      make(map[string]RingSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		s.Histograms[name] = HistogramSnapshot{
			Bounds: h.Bounds(), Buckets: h.BucketCounts(),
			Count: h.Count(), Sum: h.Sum(),
		}
	}
	for name, rg := range r.rings {
		s.Rings[name] = RingSnapshot{Total: rg.Total(), Events: rg.Events()}
	}
	return s
}

// WriteJSON renders the snapshot as indented JSON (keys sorted by
// encoding/json's map ordering, so output is deterministic).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// CounterValue returns the value of a registered counter series and
// whether it exists — the golden tests' accessor.
func (r *Registry) CounterValue(name string) (int64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		return 0, false
	}
	return c.Load(), true
}

// CounterNames returns every registered counter series, sorted.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.seriesByKind(kindCounter)
	sort.Strings(out)
	return out
}
