package obs

import "sync"

// Event is one entry of an event-trace ring. At is a caller-supplied
// timestamp: simulation microseconds in deterministic runs, wall-clock
// nanoseconds under real load — the ring itself never reads a clock.
type Event struct {
	At     int64  `json:"at"`
	Kind   string `json:"kind"`
	Detail string `json:"detail,omitempty"`
}

// Ring is a bounded event trace: the newest Cap events are retained,
// older ones are overwritten. Total keeps counting past the capacity so
// readers can tell how much history was shed.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total uint64
}

// NewRing returns a ring retaining up to capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Append records one event, evicting the oldest when full.
func (r *Ring) Append(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
}

// Events returns the retained events oldest-first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Total returns how many events were ever appended (≥ len(Events())).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Cap returns the retention capacity.
func (r *Ring) Cap() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return cap(r.buf)
}
