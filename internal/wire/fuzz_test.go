package wire

import (
	"errors"
	"strings"
	"testing"
)

// FuzzDecodeAllocRequest asserts the daemon decoder's contract on
// arbitrary bytes, mirroring FuzzDecodeCaseBase: it either returns a
// fully validated request or an error wrapping ErrBadRequest — never a
// panic, never a half-validated request. Seeds cover the valid shape
// plus each rejection class so the fuzzer starts from interesting
// corners.
func FuzzDecodeAllocRequest(f *testing.F) {
	f.Add(goodReq)
	f.Add(``)
	f.Add(`{`)
	f.Add(`null`)
	f.Add(`[]`)
	f.Add(`{"client":"c","type":1,"constraints":[{"id":1,"value":2}]}`)
	f.Add(`{"client":"","type":1,"constraints":[{"id":1,"value":2}]}`)
	f.Add(`{"client":"c","type":1,"constraints":[]}`)
	f.Add(`{"client":"c","type":1,"constraints":[{"id":1,"value":2},{"id":1,"value":3}]}`)
	f.Add(`{"client":"c","type":1,"constraints":[{"id":1,"value":2,"weight":2}]}`)
	f.Add(`{"client":"c","type":65535,"constraints":[{"id":65535,"value":65535,"weight":1}],"priority":-1}`)
	f.Add(`{"client":"c","type":1,"constraints":[{"id":1,"value":2}],"unknown":1}`)
	f.Add(`{"client":"c","type":1,"constraints":[{"id":1,"value":2}]} trailing`)

	f.Fuzz(func(t *testing.T, body string) {
		req, err := DecodeAllocRequest(strings.NewReader(body))
		if err != nil {
			if req != nil {
				t.Fatalf("returned both a request and an error: %v", err)
			}
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("content error does not wrap ErrBadRequest: %v", err)
			}
			return
		}
		// A decoded request must satisfy the documented invariants and
		// convert cleanly to the engine shape.
		if req.Client == "" {
			t.Fatal("accepted a request with no client")
		}
		if n := len(req.Constraints); n == 0 || n > MaxConstraints {
			t.Fatalf("accepted %d constraints", n)
		}
		cr := req.Request()
		if len(cr.Constraints) != len(req.Constraints) {
			t.Fatalf("conversion changed constraint count: %d vs %d", len(cr.Constraints), len(req.Constraints))
		}
		var sum float64
		for i, c := range cr.Constraints {
			if i > 0 && cr.Constraints[i-1].ID > c.ID {
				t.Fatal("converted constraints not sorted by attribute ID")
			}
			if c.Weight < 0 || c.Weight > 1 {
				t.Fatalf("converted weight %v outside [0,1]", c.Weight)
			}
			sum += c.Weight
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("converted weights sum to %v, want 1", sum)
		}
	})
}

// FuzzDecodeObserveRequest asserts the mutation decoder's contract the
// same way: arbitrary bytes produce either a validated request or an
// error wrapping ErrBadRequest — never a panic, never both.
func FuzzDecodeObserveRequest(f *testing.F) {
	f.Add(goodObserve)
	f.Add(``)
	f.Add(`{`)
	f.Add(`null`)
	f.Add(`[]`)
	f.Add(`{"client":"c","type":1,"impl":1,"measured":[{"id":1,"value":2}]}`)
	f.Add(`{"client":"","type":1,"impl":1,"measured":[{"id":1,"value":2}]}`)
	f.Add(`{"client":"c","type":1,"impl":0,"measured":[{"id":1,"value":2}]}`)
	f.Add(`{"client":"c","type":1,"impl":1,"measured":[]}`)
	f.Add(`{"client":"c","type":1,"impl":1,"measured":[{"id":1,"value":2},{"id":1,"value":3}]}`)
	f.Add(`{"client":"c","type":65535,"impl":65535,"measured":[{"id":65535,"value":65535}]}`)
	f.Add(`{"client":"c","type":1,"impl":1,"measured":[{"id":1,"value":2}],"unknown":1}`)
	f.Add(`{"client":"c","type":1,"impl":1,"measured":[{"id":1,"value":2}]} trailing`)

	f.Fuzz(func(t *testing.T, body string) {
		req, err := DecodeObserveRequest(strings.NewReader(body))
		if err != nil {
			if req != nil {
				t.Fatalf("returned both a request and an error: %v", err)
			}
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("content error does not wrap ErrBadRequest: %v", err)
			}
			return
		}
		if req.Client == "" {
			t.Fatal("accepted a request with no client")
		}
		if req.Impl == 0 {
			t.Fatal("accepted a request with no impl")
		}
		if n := len(req.Measured); n == 0 || n > MaxConstraints {
			t.Fatalf("accepted %d measurements", n)
		}
		o := req.Observation()
		if len(o.Measured) != len(req.Measured) {
			t.Fatalf("conversion changed measurement count: %d vs %d", len(o.Measured), len(req.Measured))
		}
		ids := make(map[uint16]bool, len(req.Measured))
		for _, m := range req.Measured {
			if ids[m.ID] {
				t.Fatalf("accepted a duplicate measurement of attribute %d", m.ID)
			}
			ids[m.ID] = true
		}
	})
}
