package wire

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

const goodReq = `{
  "client": "c1",
  "type": 1,
  "constraints": [
    {"id": 3, "value": 16, "weight": 0.5},
    {"id": 1, "value": 8, "weight": 0.5}
  ],
  "app": "radio",
  "priority": 5,
  "hold_us": 100
}`

func TestDecodeAllocRequestGood(t *testing.T) {
	req, err := DecodeAllocRequest(strings.NewReader(goodReq))
	if err != nil {
		t.Fatal(err)
	}
	if req.Client != "c1" || req.Type != 1 || req.App != "radio" || req.Priority != 5 || req.HoldUS != 100 {
		t.Fatalf("decoded %+v", req)
	}
	cr := req.Request()
	if cr.Type != 1 || len(cr.Constraints) != 2 {
		t.Fatalf("Request() = %+v", cr)
	}
	// NewRequest sorts by attribute ID; weights stay normalized.
	if cr.Constraints[0].ID != 1 || cr.Constraints[1].ID != 3 {
		t.Fatalf("constraints not sorted: %+v", cr.Constraints)
	}
	if w := cr.Constraints[0].Weight + cr.Constraints[1].Weight; w < 0.999 || w > 1.001 {
		t.Fatalf("weights sum to %v, want 1", w)
	}
}

func TestDecodeAllocRequestEqualWeightsWhenUnspecified(t *testing.T) {
	req, err := DecodeAllocRequest(strings.NewReader(
		`{"client":"c","type":1,"constraints":[{"id":1,"value":2},{"id":2,"value":3}]}`))
	if err != nil {
		t.Fatal(err)
	}
	cr := req.Request()
	for i, c := range cr.Constraints {
		if c.Weight < 0.499 || c.Weight > 0.501 {
			t.Fatalf("constraint %d weight %v, want 0.5", i, c.Weight)
		}
	}
}

func TestDecodeAllocRequestRejections(t *testing.T) {
	cases := map[string]string{
		"empty body":        ``,
		"not json":          `{`,
		"null":              `null is trailing`,
		"unknown field":     `{"client":"c","type":1,"constraints":[{"id":1,"value":2}],"bogus":true}`,
		"trailing data":     `{"client":"c","type":1,"constraints":[{"id":1,"value":2}]} {"again":1}`,
		"missing client":    `{"type":1,"constraints":[{"id":1,"value":2}]}`,
		"no constraints":    `{"client":"c","type":1,"constraints":[]}`,
		"dup constraint":    `{"client":"c","type":1,"constraints":[{"id":1,"value":2},{"id":1,"value":3}]}`,
		"weight above one":  `{"client":"c","type":1,"constraints":[{"id":1,"value":2,"weight":1.5}]}`,
		"negative weight":   `{"client":"c","type":1,"constraints":[{"id":1,"value":2,"weight":-0.1}]}`,
		"negative priority": `{"client":"c","type":1,"constraints":[{"id":1,"value":2}],"priority":-1}`,
	}
	for name, body := range cases {
		got, err := DecodeAllocRequest(strings.NewReader(body))
		if err == nil {
			t.Errorf("%s: decoded %+v, want error", name, got)
			continue
		}
		if !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: error %v does not wrap ErrBadRequest", name, err)
		}
		if got != nil {
			t.Errorf("%s: returned both a request and an error", name)
		}
	}
}

func TestDecodeAllocRequestTooManyConstraints(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(`{"client":"c","type":1,"constraints":[`)
	for i := 0; i <= MaxConstraints; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"id":%d,"value":1}`, i)
	}
	sb.WriteString(`]}`)
	if _, err := DecodeAllocRequest(strings.NewReader(sb.String())); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("oversized constraint list: %v, want ErrBadRequest", err)
	}
}

func validReport() *BenchReport {
	return &BenchReport{
		Version: BenchVersion, Scenario: "zipf", Mode: "lockstep",
		Seed: 42, Requests: 100, Clients: 8, RatePerSec: 500,
		OK: 90, Shed: 6, Rejected: 3, Failed: 1,
		BreakerTrip: 2, ThroughputRPS: 480.5, ShedRate: 0.06,
		LatencyUS:   BenchQuantiles{P50: 120, P95: 300, P99: 450, Max: 900},
		OutcomeHash: "fnv64a:deadbeef",
	}
}

func TestBenchReportRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeBenchReport(&buf, validReport()); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeBenchReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if *back != *validReport() {
		t.Fatalf("round trip changed the report:\n got %+v\nwant %+v", back, validReport())
	}
}

func TestBenchReportValidateRejections(t *testing.T) {
	mutate := map[string]func(*BenchReport){
		"bad version":         func(b *BenchReport) { b.Version = 99 },
		"empty scenario":      func(b *BenchReport) { b.Scenario = "" },
		"bad mode":            func(b *BenchReport) { b.Mode = "closed" },
		"zero requests":       func(b *BenchReport) { b.Requests = 0 },
		"zero clients":        func(b *BenchReport) { b.Clients = 0 },
		"outcomes mismatch":   func(b *BenchReport) { b.OK-- },
		"negative outcome":    func(b *BenchReport) { b.Shed = -1; b.OK += 7 },
		"shed rate range":     func(b *BenchReport) { b.ShedRate = 1.5 },
		"quantile disorder":   func(b *BenchReport) { b.LatencyUS.P95 = 10 },
		"missing hash":        func(b *BenchReport) { b.OutcomeHash = "" },
		"negative throughput": func(b *BenchReport) { b.ThroughputRPS = -1 },
	}
	for name, fn := range mutate {
		b := validReport()
		fn(b)
		if err := b.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, b)
		}
		var buf bytes.Buffer
		if err := EncodeBenchReport(&buf, b); !errors.Is(err, ErrBadReport) {
			t.Errorf("%s: Encode = %v, want ErrBadReport", name, err)
		}
	}
}

func TestDecodeBenchReportStrict(t *testing.T) {
	if _, err := DecodeBenchReport(strings.NewReader(`{"version":1,"bogus":true}`)); !errors.Is(err, ErrBadReport) {
		t.Fatalf("unknown field: %v, want ErrBadReport", err)
	}
}

const goodObserve = `{
  "client": "c1",
  "type": 2,
  "impl": 3,
  "measured": [
    {"id": 4, "value": 17},
    {"id": 1, "value": 9}
  ]
}`

func TestDecodeObserveRequestGood(t *testing.T) {
	req, err := DecodeObserveRequest(strings.NewReader(goodObserve))
	if err != nil {
		t.Fatal(err)
	}
	if req.Client != "c1" || req.Type != 2 || req.Impl != 3 || len(req.Measured) != 2 {
		t.Fatalf("decoded %+v", req)
	}
	o := req.Observation()
	if uint16(o.Type) != 2 || uint16(o.Impl) != 3 || len(o.Measured) != 2 {
		t.Fatalf("Observation() = %+v", o)
	}
	// Conversion preserves wire order and values verbatim.
	if uint16(o.Measured[0].ID) != 4 || o.Measured[0].Value != 17 {
		t.Fatalf("measured[0] = %+v", o.Measured[0])
	}
}

func TestDecodeObserveRequestRejections(t *testing.T) {
	cases := map[string]string{
		"empty body":      ``,
		"not json":        `{`,
		"unknown field":   `{"client":"c","type":1,"impl":1,"measured":[{"id":1,"value":2}],"bogus":1}`,
		"trailing data":   `{"client":"c","type":1,"impl":1,"measured":[{"id":1,"value":2}]} x`,
		"missing client":  `{"type":1,"impl":1,"measured":[{"id":1,"value":2}]}`,
		"missing impl":    `{"client":"c","type":1,"measured":[{"id":1,"value":2}]}`,
		"no measurements": `{"client":"c","type":1,"impl":1,"measured":[]}`,
		"dup measurement": `{"client":"c","type":1,"impl":1,"measured":[{"id":1,"value":2},{"id":1,"value":3}]}`,
	}
	for name, body := range cases {
		got, err := DecodeObserveRequest(strings.NewReader(body))
		if err == nil {
			t.Errorf("%s: decoded %+v, want error", name, got)
			continue
		}
		if !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: error %v does not wrap ErrBadRequest", name, err)
		}
	}
}

const goodRetain = `{
  "client": "c1",
  "type": 2,
  "name": "fir-v9",
  "target": "FPGA",
  "attrs": [
    {"id": 5, "value": 20},
    {"id": 2, "value": 11}
  ],
  "footprint": {"slices": 120, "brams": 2, "config_bytes": 4096},
  "at_epoch": 7
}`

func TestDecodeRetainRequestGood(t *testing.T) {
	req, err := DecodeRetainRequest(strings.NewReader(goodRetain))
	if err != nil {
		t.Fatal(err)
	}
	if req.Client != "c1" || req.Type != 2 || req.Impl != 0 || req.AtEpoch != 7 {
		t.Fatalf("decoded %+v", req)
	}
	im := req.Implementation()
	if im.Name != "fir-v9" || im.Target.String() != "FPGA" {
		t.Fatalf("Implementation() = %+v", im)
	}
	// Attributes come back sorted by ID, as the case-base builder needs.
	if len(im.Attrs) != 2 || im.Attrs[0].ID != 2 || im.Attrs[1].ID != 5 {
		t.Fatalf("attrs not sorted: %+v", im.Attrs)
	}
	if im.Foot.Slices != 120 || im.Foot.ConfigBytes != 4096 {
		t.Fatalf("footprint = %+v", im.Foot)
	}
}

func TestDecodeRetainRequestRejections(t *testing.T) {
	cases := map[string]string{
		"empty body":         ``,
		"unknown field":      `{"client":"c","type":1,"target":"FPGA","attrs":[{"id":1,"value":2}],"bogus":1}`,
		"trailing data":      `{"client":"c","type":1,"target":"FPGA","attrs":[{"id":1,"value":2}]} x`,
		"missing client":     `{"type":1,"target":"FPGA","attrs":[{"id":1,"value":2}]}`,
		"bad target":         `{"client":"c","type":1,"target":"ASIC","attrs":[{"id":1,"value":2}]}`,
		"missing target":     `{"client":"c","type":1,"attrs":[{"id":1,"value":2}]}`,
		"no attrs":           `{"client":"c","type":1,"target":"FPGA","attrs":[]}`,
		"dup attr":           `{"client":"c","type":1,"target":"FPGA","attrs":[{"id":1,"value":2},{"id":1,"value":3}]}`,
		"negative footprint": `{"client":"c","type":1,"target":"FPGA","attrs":[{"id":1,"value":2}],"footprint":{"slices":-1}}`,
	}
	for name, body := range cases {
		got, err := DecodeRetainRequest(strings.NewReader(body))
		if err == nil {
			t.Errorf("%s: decoded %+v, want error", name, got)
			continue
		}
		if !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: error %v does not wrap ErrBadRequest", name, err)
		}
	}
}

func TestDecodeRetireRequest(t *testing.T) {
	req, err := DecodeRetireRequest(strings.NewReader(
		`{"client":"c1","type":2,"impl":4,"at_epoch":3}`))
	if err != nil {
		t.Fatal(err)
	}
	if req.Client != "c1" || req.Type != 2 || req.Impl != 4 || req.AtEpoch != 3 {
		t.Fatalf("decoded %+v", req)
	}
	cases := map[string]string{
		"empty body":     ``,
		"unknown field":  `{"client":"c","type":1,"impl":1,"bogus":1}`,
		"trailing data":  `{"client":"c","type":1,"impl":1} x`,
		"missing client": `{"type":1,"impl":1}`,
		"missing impl":   `{"client":"c","type":1}`,
	}
	for name, body := range cases {
		if _, err := DecodeRetireRequest(strings.NewReader(body)); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: %v, want ErrBadRequest", name, err)
		}
	}
}

func TestParseTarget(t *testing.T) {
	for _, name := range []string{"FPGA", "DSP", "GP-Proc"} {
		tgt, err := ParseTarget(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tgt.String() != name {
			t.Fatalf("ParseTarget(%q).String() = %q", name, tgt.String())
		}
	}
	if _, err := ParseTarget("asic"); err == nil {
		t.Fatal("accepted an unknown target")
	}
}
