package wire

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

const goodReq = `{
  "client": "c1",
  "type": 1,
  "constraints": [
    {"id": 3, "value": 16, "weight": 0.5},
    {"id": 1, "value": 8, "weight": 0.5}
  ],
  "app": "radio",
  "priority": 5,
  "hold_us": 100
}`

func TestDecodeAllocRequestGood(t *testing.T) {
	req, err := DecodeAllocRequest(strings.NewReader(goodReq))
	if err != nil {
		t.Fatal(err)
	}
	if req.Client != "c1" || req.Type != 1 || req.App != "radio" || req.Priority != 5 || req.HoldUS != 100 {
		t.Fatalf("decoded %+v", req)
	}
	cr := req.Request()
	if cr.Type != 1 || len(cr.Constraints) != 2 {
		t.Fatalf("Request() = %+v", cr)
	}
	// NewRequest sorts by attribute ID; weights stay normalized.
	if cr.Constraints[0].ID != 1 || cr.Constraints[1].ID != 3 {
		t.Fatalf("constraints not sorted: %+v", cr.Constraints)
	}
	if w := cr.Constraints[0].Weight + cr.Constraints[1].Weight; w < 0.999 || w > 1.001 {
		t.Fatalf("weights sum to %v, want 1", w)
	}
}

func TestDecodeAllocRequestEqualWeightsWhenUnspecified(t *testing.T) {
	req, err := DecodeAllocRequest(strings.NewReader(
		`{"client":"c","type":1,"constraints":[{"id":1,"value":2},{"id":2,"value":3}]}`))
	if err != nil {
		t.Fatal(err)
	}
	cr := req.Request()
	for i, c := range cr.Constraints {
		if c.Weight < 0.499 || c.Weight > 0.501 {
			t.Fatalf("constraint %d weight %v, want 0.5", i, c.Weight)
		}
	}
}

func TestDecodeAllocRequestRejections(t *testing.T) {
	cases := map[string]string{
		"empty body":        ``,
		"not json":          `{`,
		"null":              `null is trailing`,
		"unknown field":     `{"client":"c","type":1,"constraints":[{"id":1,"value":2}],"bogus":true}`,
		"trailing data":     `{"client":"c","type":1,"constraints":[{"id":1,"value":2}]} {"again":1}`,
		"missing client":    `{"type":1,"constraints":[{"id":1,"value":2}]}`,
		"no constraints":    `{"client":"c","type":1,"constraints":[]}`,
		"dup constraint":    `{"client":"c","type":1,"constraints":[{"id":1,"value":2},{"id":1,"value":3}]}`,
		"weight above one":  `{"client":"c","type":1,"constraints":[{"id":1,"value":2,"weight":1.5}]}`,
		"negative weight":   `{"client":"c","type":1,"constraints":[{"id":1,"value":2,"weight":-0.1}]}`,
		"negative priority": `{"client":"c","type":1,"constraints":[{"id":1,"value":2}],"priority":-1}`,
	}
	for name, body := range cases {
		got, err := DecodeAllocRequest(strings.NewReader(body))
		if err == nil {
			t.Errorf("%s: decoded %+v, want error", name, got)
			continue
		}
		if !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: error %v does not wrap ErrBadRequest", name, err)
		}
		if got != nil {
			t.Errorf("%s: returned both a request and an error", name)
		}
	}
}

func TestDecodeAllocRequestTooManyConstraints(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(`{"client":"c","type":1,"constraints":[`)
	for i := 0; i <= MaxConstraints; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"id":%d,"value":1}`, i)
	}
	sb.WriteString(`]}`)
	if _, err := DecodeAllocRequest(strings.NewReader(sb.String())); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("oversized constraint list: %v, want ErrBadRequest", err)
	}
}

func validReport() *BenchReport {
	return &BenchReport{
		Version: BenchVersion, Scenario: "zipf", Mode: "lockstep",
		Seed: 42, Requests: 100, Clients: 8, RatePerSec: 500,
		OK: 90, Shed: 6, Rejected: 3, Failed: 1,
		BreakerTrip: 2, ThroughputRPS: 480.5, ShedRate: 0.06,
		LatencyUS:   BenchQuantiles{P50: 120, P95: 300, P99: 450, Max: 900},
		OutcomeHash: "fnv64a:deadbeef",
	}
}

func TestBenchReportRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeBenchReport(&buf, validReport()); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeBenchReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if *back != *validReport() {
		t.Fatalf("round trip changed the report:\n got %+v\nwant %+v", back, validReport())
	}
}

func TestBenchReportValidateRejections(t *testing.T) {
	mutate := map[string]func(*BenchReport){
		"bad version":         func(b *BenchReport) { b.Version = 99 },
		"empty scenario":      func(b *BenchReport) { b.Scenario = "" },
		"bad mode":            func(b *BenchReport) { b.Mode = "closed" },
		"zero requests":       func(b *BenchReport) { b.Requests = 0 },
		"zero clients":        func(b *BenchReport) { b.Clients = 0 },
		"outcomes mismatch":   func(b *BenchReport) { b.OK-- },
		"negative outcome":    func(b *BenchReport) { b.Shed = -1; b.OK += 7 },
		"shed rate range":     func(b *BenchReport) { b.ShedRate = 1.5 },
		"quantile disorder":   func(b *BenchReport) { b.LatencyUS.P95 = 10 },
		"missing hash":        func(b *BenchReport) { b.OutcomeHash = "" },
		"negative throughput": func(b *BenchReport) { b.ThroughputRPS = -1 },
	}
	for name, fn := range mutate {
		b := validReport()
		fn(b)
		if err := b.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, b)
		}
		var buf bytes.Buffer
		if err := EncodeBenchReport(&buf, b); !errors.Is(err, ErrBadReport) {
			t.Errorf("%s: Encode = %v, want ErrBadReport", name, err)
		}
	}
}

func TestDecodeBenchReportStrict(t *testing.T) {
	if _, err := DecodeBenchReport(strings.NewReader(`{"version":1,"bogus":true}`)); !errors.Is(err, ErrBadReport) {
		t.Fatalf("unknown field: %v, want ErrBadReport", err)
	}
}
