// Package wire is the qosd HTTP/JSON wire format: the request body the
// daemon accepts, the response and error bodies it emits, and the
// BENCH_qosd_*.json report schema the qosload harness writes. It is a
// strict format — unknown fields, trailing garbage, and out-of-range
// values are all rejected with a typed error — because the daemon edge
// is the one place malformed bytes can enter an otherwise fully
// validated pipeline.
package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"qosalloc/internal/attr"
	"qosalloc/internal/casebase"
	"qosalloc/internal/learn"
)

// MaxRequestBytes bounds a request body read; DecodeAllocRequest
// refuses anything longer. Generous for a request with a full
// constraint list, small enough that a hostile body cannot balloon.
const MaxRequestBytes = 1 << 16

// MaxConstraints bounds the constraint list length. The attribute
// universe is uint16, but no legitimate request constrains more than a
// handful of attributes.
const MaxConstraints = 64

// ErrBadRequest is the sentinel wrapped by every DecodeAllocRequest
// failure caused by body content (as opposed to transport I/O), so the
// daemon can map the whole class to one HTTP status.
var ErrBadRequest = errors.New("wire: invalid request")

// ConstraintJSON is one requested QoS attribute on the wire.
type ConstraintJSON struct {
	ID     uint16  `json:"id"`
	Value  uint16  `json:"value"`
	Weight float64 `json:"weight,omitempty"`
}

// AllocRequest is the body of POST /v1/retrieve and /v1/allocate. The
// allocate-only fields (App, Priority, HoldUS) are ignored by the
// retrieve endpoint.
type AllocRequest struct {
	// Client keys the admission rate limiter. Required.
	Client string `json:"client"`
	// Type is the requested function type.
	Type uint16 `json:"type"`
	// Constraints is the QoS attribute list. Required, deduplicated,
	// weights in [0,1]; the daemon normalizes weights before scoring.
	Constraints []ConstraintJSON `json:"constraints"`
	// App names the owning application for /v1/allocate.
	App string `json:"app,omitempty"`
	// Priority is the allocation base priority for /v1/allocate.
	Priority int `json:"priority,omitempty"`
	// HoldUS asks the daemon to auto-release the placed task after this
	// much sim time (0 = caller releases explicitly).
	HoldUS uint64 `json:"hold_us,omitempty"`
}

// DecodeAllocRequest reads one strict AllocRequest from r: unknown
// fields, trailing data, and semantic violations (empty client, no or
// duplicate constraints, weights outside [0,1], negative priority) all
// fail with an error wrapping ErrBadRequest. On success the request is
// safe to convert with Request().
func DecodeAllocRequest(r io.Reader) (*AllocRequest, error) {
	dec := json.NewDecoder(io.LimitReader(r, MaxRequestBytes))
	dec.DisallowUnknownFields()
	var req AllocRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after request object", ErrBadRequest)
	}
	if err := req.validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return &req, nil
}

func (a *AllocRequest) validate() error {
	if a.Client == "" {
		return errors.New("missing client")
	}
	if len(a.Constraints) == 0 {
		return errors.New("no constraints")
	}
	if len(a.Constraints) > MaxConstraints {
		return fmt.Errorf("%d constraints exceeds the limit of %d", len(a.Constraints), MaxConstraints)
	}
	seen := make(map[uint16]bool, len(a.Constraints))
	for _, c := range a.Constraints {
		if seen[c.ID] {
			return fmt.Errorf("duplicate constraint on attribute %d", c.ID)
		}
		seen[c.ID] = true
		if c.Weight < 0 || c.Weight > 1 {
			return fmt.Errorf("constraint %d weight %v outside [0,1]", c.ID, c.Weight)
		}
	}
	if a.Priority < 0 {
		return fmt.Errorf("negative priority %d", a.Priority)
	}
	return nil
}

// Request converts a decoded request to the engine shape: constraints
// sorted by attribute ID, weights normalized to sum to 1 (equal
// weights when none were given).
func (a *AllocRequest) Request() casebase.Request {
	cs := make([]casebase.Constraint, 0, len(a.Constraints))
	for _, c := range a.Constraints {
		cs = append(cs, casebase.Constraint{
			ID: attr.ID(c.ID), Value: attr.Value(c.Value), Weight: c.Weight,
		})
	}
	return casebase.NewRequest(casebase.TypeID(a.Type), cs...).NormalizeWeights()
}

// RetrieveResponse is the body of a successful /v1/retrieve.
type RetrieveResponse struct {
	Type       uint16  `json:"type"`
	Impl       uint16  `json:"impl"`
	Target     string  `json:"target"`
	Name       string  `json:"name,omitempty"`
	Similarity float64 `json:"similarity"`
}

// AllocResponse is the body of a successful /v1/allocate.
type AllocResponse struct {
	Task       int     `json:"task"`
	Type       uint16  `json:"type"`
	Impl       uint16  `json:"impl"`
	Target     string  `json:"target"`
	Device     string  `json:"device"`
	Similarity float64 `json:"similarity"`
	ReadyAtUS  uint64  `json:"ready_at_us"`
	ViaToken   bool    `json:"via_token,omitempty"`
	Degraded   bool    `json:"degraded,omitempty"`
}

// ReleaseRequest is the body of POST /v1/release.
type ReleaseRequest struct {
	Client string `json:"client"`
	Task   int    `json:"task"`
}

// --- Mutation endpoints (live case-base update, DESIGN.md §14) ---------

// MeasurementJSON is one observed or declared QoS attribute value on
// the wire (no weight — measurements are facts, not preferences).
type MeasurementJSON struct {
	ID    uint16 `json:"id"`
	Value uint16 `json:"value"`
}

// ObserveRequest is the body of POST /v1/observe: one run-time QoS
// measurement of a deployed variant, folded into the daemon's deferred
// net-commit layer.
type ObserveRequest struct {
	Client   string            `json:"client"`
	Type     uint16            `json:"type"`
	Impl     uint16            `json:"impl"`
	Measured []MeasurementJSON `json:"measured"`
}

// DecodeObserveRequest reads one strict ObserveRequest from r with the
// same discipline as DecodeAllocRequest: size-bounded body, unknown
// fields, trailing data and semantic violations all fail with an error
// wrapping ErrBadRequest.
func DecodeObserveRequest(r io.Reader) (*ObserveRequest, error) {
	dec := json.NewDecoder(io.LimitReader(r, MaxRequestBytes))
	dec.DisallowUnknownFields()
	var req ObserveRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after request object", ErrBadRequest)
	}
	if err := req.validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return &req, nil
}

func (o *ObserveRequest) validate() error {
	if o.Client == "" {
		return errors.New("missing client")
	}
	if o.Impl == 0 {
		return errors.New("missing impl")
	}
	if len(o.Measured) == 0 {
		return errors.New("no measurements")
	}
	if len(o.Measured) > MaxConstraints {
		return fmt.Errorf("%d measurements exceeds the limit of %d", len(o.Measured), MaxConstraints)
	}
	seen := make(map[uint16]bool, len(o.Measured))
	for _, m := range o.Measured {
		if seen[m.ID] {
			return fmt.Errorf("duplicate measurement of attribute %d", m.ID)
		}
		seen[m.ID] = true
	}
	return nil
}

// Observation converts a decoded request to the learn shape.
func (o *ObserveRequest) Observation() learn.Observation {
	ms := make([]attr.Pair, 0, len(o.Measured))
	for _, m := range o.Measured {
		ms = append(ms, attr.Pair{ID: attr.ID(m.ID), Value: attr.Value(m.Value)})
	}
	return learn.Observation{
		Type: casebase.TypeID(o.Type), Impl: casebase.ImplID(o.Impl), Measured: ms,
	}
}

// ObserveResponse is the body of a successful /v1/observe.
type ObserveResponse struct {
	Epoch       uint64 `json:"epoch"`        // epoch committed after the observation
	PendingRevs int64  `json:"pending_revs"` // LSB-visible revisions still pending
	PendingObs  int64  `json:"pending_obs"`  // observations still pending
}

// FootprintJSON is a resource footprint on the wire.
type FootprintJSON struct {
	Slices      int `json:"slices,omitempty"`
	BRAMs       int `json:"brams,omitempty"`
	Multipliers int `json:"multipliers,omitempty"`
	CPULoad     int `json:"cpu_load,omitempty"`
	MemBytes    int `json:"mem_bytes,omitempty"`
	PowerMW     int `json:"power_mw,omitempty"`
	ConfigBytes int `json:"config_bytes,omitempty"`
}

// Footprint converts to the casebase shape.
func (f FootprintJSON) Footprint() casebase.Footprint {
	return casebase.Footprint{
		Slices: f.Slices, BRAMs: f.BRAMs, Multipliers: f.Multipliers,
		CPULoad: f.CPULoad, MemBytes: f.MemBytes, PowerMW: f.PowerMW,
		ConfigBytes: f.ConfigBytes,
	}
}

// ParseTarget parses the conventional short target name emitted by
// casebase.Target.String ("FPGA", "DSP", "GP-Proc").
func ParseTarget(s string) (casebase.Target, error) {
	switch s {
	case "FPGA":
		return casebase.TargetFPGA, nil
	case "DSP":
		return casebase.TargetDSP, nil
	case "GP-Proc":
		return casebase.TargetGPP, nil
	}
	return 0, fmt.Errorf("unknown target %q (want FPGA, DSP or GP-Proc)", s)
}

// RetainRequest is the body of POST /v1/retain: a new implementation
// variant for the run-time repository, committed through the epoch
// snapshot pipeline.
type RetainRequest struct {
	Client string `json:"client"`
	Type   uint16 `json:"type"`
	// Impl 0 asks the daemon to assign the type's next free ID.
	Impl   uint16            `json:"impl,omitempty"`
	Name   string            `json:"name,omitempty"`
	Target string            `json:"target"`
	Attrs  []MeasurementJSON `json:"attrs"`
	Foot   FootprintJSON     `json:"footprint"`
	// AtEpoch optimistically conditions the commit on the committed
	// epoch (0 commits unconditionally); a mismatch fails with
	// CodeStaleEpoch.
	AtEpoch uint64 `json:"at_epoch,omitempty"`
}

// DecodeRetainRequest reads one strict RetainRequest from r (same
// discipline as DecodeAllocRequest).
func DecodeRetainRequest(r io.Reader) (*RetainRequest, error) {
	dec := json.NewDecoder(io.LimitReader(r, MaxRequestBytes))
	dec.DisallowUnknownFields()
	var req RetainRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after request object", ErrBadRequest)
	}
	if err := req.validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return &req, nil
}

func (rr *RetainRequest) validate() error {
	if rr.Client == "" {
		return errors.New("missing client")
	}
	if _, err := ParseTarget(rr.Target); err != nil {
		return err
	}
	if len(rr.Attrs) == 0 {
		return errors.New("no attributes")
	}
	if len(rr.Attrs) > MaxConstraints {
		return fmt.Errorf("%d attributes exceeds the limit of %d", len(rr.Attrs), MaxConstraints)
	}
	seen := make(map[uint16]bool, len(rr.Attrs))
	for _, a := range rr.Attrs {
		if seen[a.ID] {
			return fmt.Errorf("duplicate attribute %d", a.ID)
		}
		seen[a.ID] = true
	}
	f := rr.Foot
	for _, v := range []int{f.Slices, f.BRAMs, f.Multipliers, f.CPULoad, f.MemBytes, f.PowerMW, f.ConfigBytes} {
		if v < 0 {
			return errors.New("negative footprint field")
		}
	}
	return nil
}

// Implementation converts a decoded request to the casebase shape
// (attributes sorted by ID, as the builder requires).
func (rr *RetainRequest) Implementation() casebase.Implementation {
	t, _ := ParseTarget(rr.Target) // validated by decode
	attrs := make([]attr.Pair, 0, len(rr.Attrs))
	for _, a := range rr.Attrs {
		attrs = append(attrs, attr.Pair{ID: attr.ID(a.ID), Value: attr.Value(a.Value)})
	}
	sort.Slice(attrs, func(i, j int) bool { return attrs[i].ID < attrs[j].ID })
	return casebase.Implementation{
		ID: casebase.ImplID(rr.Impl), Name: rr.Name, Target: t,
		Attrs: attrs, Foot: rr.Foot.Footprint(),
	}
}

// RetainResponse is the body of a successful /v1/retain.
type RetainResponse struct {
	Type  uint16 `json:"type"`
	Impl  uint16 `json:"impl"`  // assigned ID
	Epoch uint64 `json:"epoch"` // epoch the variant is committed in
}

// RetireRequest is the body of POST /v1/retire.
type RetireRequest struct {
	Client  string `json:"client"`
	Type    uint16 `json:"type"`
	Impl    uint16 `json:"impl"`
	AtEpoch uint64 `json:"at_epoch,omitempty"` // see RetainRequest.AtEpoch
}

// DecodeRetireRequest reads one strict RetireRequest from r (same
// discipline as DecodeAllocRequest).
func DecodeRetireRequest(r io.Reader) (*RetireRequest, error) {
	dec := json.NewDecoder(io.LimitReader(r, MaxRequestBytes))
	dec.DisallowUnknownFields()
	var req RetireRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after request object", ErrBadRequest)
	}
	if req.Client == "" {
		return nil, fmt.Errorf("%w: missing client", ErrBadRequest)
	}
	if req.Impl == 0 {
		return nil, fmt.Errorf("%w: missing impl", ErrBadRequest)
	}
	return &req, nil
}

// RetireResponse is the body of a successful /v1/retire.
type RetireResponse struct {
	Type  uint16 `json:"type"`
	Impl  uint16 `json:"impl"`
	Epoch uint64 `json:"epoch"` // epoch the variant is gone from
}

// ErrorResponse is the body of every non-2xx qosd reply. Code is a
// stable machine-readable slug (see the Code* constants); RetryAfterUS
// carries the typed hint in sim microseconds when the error class has
// one (it also surfaces as an HTTP Retry-After header, rounded up to
// whole seconds).
type ErrorResponse struct {
	Code         string `json:"code"`
	Error        string `json:"error"`
	RetryAfterUS uint64 `json:"retry_after_us,omitempty"`
}

// Stable ErrorResponse.Code slugs.
const (
	CodeBadRequest  = "bad_request"  // 400: DecodeAllocRequest refused the body
	CodeNoMatch     = "no_match"     // 404: retrieval found no variant
	CodeNoFeasible  = "no_feasible"  // 409: allocation found no feasible placement
	CodeRateLimited = "rate_limited" // 429: client token bucket empty
	CodeOverload    = "overload"     // 429: shard queue full (serve.ErrOverload)
	CodeBreakerOpen = "breaker_open" // 503: shard circuit breaker open
	CodeDraining    = "draining"     // 503: daemon is draining for shutdown
	CodeDeadline    = "deadline"     // 504: request context expired in serve
	CodeInternal    = "internal"     // 500: anything unclassified
	CodeUnknownTask = "unknown_task" // 404: release of a task the runtime doesn't know
	// CodeBudgetExceeded (429) reports a tenant over its QoS class's
	// resource budget (admit.ErrBudgetExceeded); Retry-After is set only
	// for the bandwidth dimension, where waiting accrues headroom.
	CodeBudgetExceeded = "budget_exceeded"
	// CodeLearningOff (403) reports a mutation request to a daemon whose
	// case base is frozen (started without -learn).
	CodeLearningOff = "learning_off"
	// CodeStaleEpoch (409) reports a mutation conditioned on an epoch a
	// commit has since retired (wire at_epoch vs. committed epoch).
	CodeStaleEpoch = "stale_epoch"
)
