// Package wire is the qosd HTTP/JSON wire format: the request body the
// daemon accepts, the response and error bodies it emits, and the
// BENCH_qosd_*.json report schema the qosload harness writes. It is a
// strict format — unknown fields, trailing garbage, and out-of-range
// values are all rejected with a typed error — because the daemon edge
// is the one place malformed bytes can enter an otherwise fully
// validated pipeline.
package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"qosalloc/internal/attr"
	"qosalloc/internal/casebase"
)

// MaxRequestBytes bounds a request body read; DecodeAllocRequest
// refuses anything longer. Generous for a request with a full
// constraint list, small enough that a hostile body cannot balloon.
const MaxRequestBytes = 1 << 16

// MaxConstraints bounds the constraint list length. The attribute
// universe is uint16, but no legitimate request constrains more than a
// handful of attributes.
const MaxConstraints = 64

// ErrBadRequest is the sentinel wrapped by every DecodeAllocRequest
// failure caused by body content (as opposed to transport I/O), so the
// daemon can map the whole class to one HTTP status.
var ErrBadRequest = errors.New("wire: invalid request")

// ConstraintJSON is one requested QoS attribute on the wire.
type ConstraintJSON struct {
	ID     uint16  `json:"id"`
	Value  uint16  `json:"value"`
	Weight float64 `json:"weight,omitempty"`
}

// AllocRequest is the body of POST /v1/retrieve and /v1/allocate. The
// allocate-only fields (App, Priority, HoldUS) are ignored by the
// retrieve endpoint.
type AllocRequest struct {
	// Client keys the admission rate limiter. Required.
	Client string `json:"client"`
	// Type is the requested function type.
	Type uint16 `json:"type"`
	// Constraints is the QoS attribute list. Required, deduplicated,
	// weights in [0,1]; the daemon normalizes weights before scoring.
	Constraints []ConstraintJSON `json:"constraints"`
	// App names the owning application for /v1/allocate.
	App string `json:"app,omitempty"`
	// Priority is the allocation base priority for /v1/allocate.
	Priority int `json:"priority,omitempty"`
	// HoldUS asks the daemon to auto-release the placed task after this
	// much sim time (0 = caller releases explicitly).
	HoldUS uint64 `json:"hold_us,omitempty"`
}

// DecodeAllocRequest reads one strict AllocRequest from r: unknown
// fields, trailing data, and semantic violations (empty client, no or
// duplicate constraints, weights outside [0,1], negative priority) all
// fail with an error wrapping ErrBadRequest. On success the request is
// safe to convert with Request().
func DecodeAllocRequest(r io.Reader) (*AllocRequest, error) {
	dec := json.NewDecoder(io.LimitReader(r, MaxRequestBytes))
	dec.DisallowUnknownFields()
	var req AllocRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after request object", ErrBadRequest)
	}
	if err := req.validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return &req, nil
}

func (a *AllocRequest) validate() error {
	if a.Client == "" {
		return errors.New("missing client")
	}
	if len(a.Constraints) == 0 {
		return errors.New("no constraints")
	}
	if len(a.Constraints) > MaxConstraints {
		return fmt.Errorf("%d constraints exceeds the limit of %d", len(a.Constraints), MaxConstraints)
	}
	seen := make(map[uint16]bool, len(a.Constraints))
	for _, c := range a.Constraints {
		if seen[c.ID] {
			return fmt.Errorf("duplicate constraint on attribute %d", c.ID)
		}
		seen[c.ID] = true
		if c.Weight < 0 || c.Weight > 1 {
			return fmt.Errorf("constraint %d weight %v outside [0,1]", c.ID, c.Weight)
		}
	}
	if a.Priority < 0 {
		return fmt.Errorf("negative priority %d", a.Priority)
	}
	return nil
}

// Request converts a decoded request to the engine shape: constraints
// sorted by attribute ID, weights normalized to sum to 1 (equal
// weights when none were given).
func (a *AllocRequest) Request() casebase.Request {
	cs := make([]casebase.Constraint, 0, len(a.Constraints))
	for _, c := range a.Constraints {
		cs = append(cs, casebase.Constraint{
			ID: attr.ID(c.ID), Value: attr.Value(c.Value), Weight: c.Weight,
		})
	}
	return casebase.NewRequest(casebase.TypeID(a.Type), cs...).NormalizeWeights()
}

// RetrieveResponse is the body of a successful /v1/retrieve.
type RetrieveResponse struct {
	Type       uint16  `json:"type"`
	Impl       uint16  `json:"impl"`
	Target     string  `json:"target"`
	Name       string  `json:"name,omitempty"`
	Similarity float64 `json:"similarity"`
}

// AllocResponse is the body of a successful /v1/allocate.
type AllocResponse struct {
	Task       int     `json:"task"`
	Type       uint16  `json:"type"`
	Impl       uint16  `json:"impl"`
	Target     string  `json:"target"`
	Device     string  `json:"device"`
	Similarity float64 `json:"similarity"`
	ReadyAtUS  uint64  `json:"ready_at_us"`
	ViaToken   bool    `json:"via_token,omitempty"`
	Degraded   bool    `json:"degraded,omitempty"`
}

// ReleaseRequest is the body of POST /v1/release.
type ReleaseRequest struct {
	Client string `json:"client"`
	Task   int    `json:"task"`
}

// ErrorResponse is the body of every non-2xx qosd reply. Code is a
// stable machine-readable slug (see the Code* constants); RetryAfterUS
// carries the typed hint in sim microseconds when the error class has
// one (it also surfaces as an HTTP Retry-After header, rounded up to
// whole seconds).
type ErrorResponse struct {
	Code         string `json:"code"`
	Error        string `json:"error"`
	RetryAfterUS uint64 `json:"retry_after_us,omitempty"`
}

// Stable ErrorResponse.Code slugs.
const (
	CodeBadRequest  = "bad_request"  // 400: DecodeAllocRequest refused the body
	CodeNoMatch     = "no_match"     // 404: retrieval found no variant
	CodeNoFeasible  = "no_feasible"  // 409: allocation found no feasible placement
	CodeRateLimited = "rate_limited" // 429: client token bucket empty
	CodeOverload    = "overload"     // 429: shard queue full (serve.ErrOverload)
	CodeBreakerOpen = "breaker_open" // 503: shard circuit breaker open
	CodeDraining    = "draining"     // 503: daemon is draining for shutdown
	CodeDeadline    = "deadline"     // 504: request context expired in serve
	CodeInternal    = "internal"     // 500: anything unclassified
	CodeUnknownTask = "unknown_task" // 404: release of a task the runtime doesn't know
	// CodeBudgetExceeded (429) reports a tenant over its QoS class's
	// resource budget (admit.ErrBudgetExceeded); Retry-After is set only
	// for the bandwidth dimension, where waiting accrues headroom.
	CodeBudgetExceeded = "budget_exceeded"
)
