package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// ErrBadReport is the sentinel wrapped by every DecodeBenchReport
// failure, mirroring ErrBadRequest for the harness output path. The
// loadcheck CI target validates emitted reports through it.
var ErrBadReport = errors.New("wire: invalid bench report")

// BenchVersion guards the BENCH_qosd_*.json schema.
const BenchVersion = 1

// BenchReport is the machine-readable result of one qosload scenario —
// the BENCH_qosd_<scenario>.json schema. Latency quantiles are wall
// time at the harness (the one number sim time cannot give), everything
// else is deterministic under a fixed seed and pinned by OutcomeHash.
type BenchReport struct {
	Version  int    `json:"version"`
	Scenario string `json:"scenario"` // "zipf" | "uniform" | ...
	Mode     string `json:"mode"`     // "open" | "lockstep"
	Seed     int64  `json:"seed"`
	Requests int    `json:"requests"`
	Clients  int    `json:"clients"`

	// RatePerSec is the open-loop arrival rate the schedule was built
	// for (requests per second of schedule time).
	RatePerSec int `json:"rate_per_sec"`

	// Outcome counts; they sum to Requests.
	OK          int `json:"ok"`
	Shed        int `json:"shed"`     // 429s: rate-limited + overload
	Rejected    int `json:"rejected"` // 503s: breaker open or draining
	Failed      int `json:"failed"`   // 4xx/5xx outside the shed/reject classes
	BreakerTrip int `json:"breaker_trips"`

	// ThroughputRPS is completed-OK requests per wall second.
	ThroughputRPS float64 `json:"throughput_rps"`

	// Latency quantiles in wall microseconds, OK requests only.
	LatencyUS BenchQuantiles `json:"latency_us"`

	// ShedRate is Shed / Requests.
	ShedRate float64 `json:"shed_rate"`

	// OutcomeHash is an FNV-64a digest over the per-request outcome
	// sequence (index, HTTP status, response code slug) — latency
	// excluded. Two runs of the same seed in lockstep mode must agree.
	OutcomeHash string `json:"outcome_hash"`
}

// BenchQuantiles are the latency summary points.
type BenchQuantiles struct {
	P50 int64 `json:"p50"`
	P95 int64 `json:"p95"`
	P99 int64 `json:"p99"`
	Max int64 `json:"max"`
}

// Validate checks a report for internal consistency: version, known
// scenario fields, outcome counts summing to Requests, quantile
// ordering, and rates in range. The loadcheck target runs emitted
// reports through this before they are committed.
func (b *BenchReport) Validate() error {
	if b.Version != BenchVersion {
		return fmt.Errorf("version %d, want %d", b.Version, BenchVersion)
	}
	if b.Scenario == "" {
		return errors.New("missing scenario")
	}
	if b.Mode != "open" && b.Mode != "lockstep" {
		return fmt.Errorf("mode %q, want open or lockstep", b.Mode)
	}
	if b.Requests <= 0 {
		return fmt.Errorf("requests %d, want > 0", b.Requests)
	}
	if b.Clients <= 0 || b.RatePerSec <= 0 {
		return fmt.Errorf("clients %d / rate %d, want > 0", b.Clients, b.RatePerSec)
	}
	if b.OK < 0 || b.Shed < 0 || b.Rejected < 0 || b.Failed < 0 || b.BreakerTrip < 0 {
		return errors.New("negative outcome count")
	}
	if sum := b.OK + b.Shed + b.Rejected + b.Failed; sum != b.Requests {
		return fmt.Errorf("outcomes sum to %d, want requests %d", sum, b.Requests)
	}
	if b.ShedRate < 0 || b.ShedRate > 1 {
		return fmt.Errorf("shed_rate %v outside [0,1]", b.ShedRate)
	}
	if b.ThroughputRPS < 0 {
		return fmt.Errorf("throughput_rps %v negative", b.ThroughputRPS)
	}
	q := b.LatencyUS
	if q.P50 < 0 || q.P95 < q.P50 || q.P99 < q.P95 || q.Max < q.P99 {
		return fmt.Errorf("latency quantiles not ordered: p50=%d p95=%d p99=%d max=%d", q.P50, q.P95, q.P99, q.Max)
	}
	if b.OutcomeHash == "" {
		return errors.New("missing outcome_hash")
	}
	return nil
}

// EncodeBenchReport writes b as indented JSON, the committed
// BENCH_qosd_*.json form.
func EncodeBenchReport(w io.Writer, b *BenchReport) error {
	if err := b.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadReport, err)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// DecodeBenchReport reads and validates one report; every content
// failure wraps ErrBadReport.
func DecodeBenchReport(r io.Reader) (*BenchReport, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var b BenchReport
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadReport, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after report", ErrBadReport)
	}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadReport, err)
	}
	return &b, nil
}
